// Package predlift implements G-PCC's Predicting Transform attribute codec
// [52], the second of the three attribute methods the paper lists for the
// baseline G-PCC family (Sec. II-B: RAHT, Predicting Transform, Lifting
// Transform; the latter two are "based on the hierarchical nearest-neighbor
// interpolation").
//
// Points are visited in Morton order; each point's attribute is predicted
// as the inverse-distance-weighted average of its nearest already-coded
// neighbours inside a trailing search window, and the quantized prediction
// residual is arithmetic-coded. The visit order makes the codec strictly
// sequential — another instance of the "sequential update" pattern the
// paper's parallel designs remove — so it is accounted as serial CPU work
// and serves as an additional attribute baseline in the ablations.
package predlift

import (
	"errors"
	"math"

	"repro/internal/edgesim"
	"repro/internal/entropy"
	"repro/internal/geom"
	"repro/internal/morton"
)

// costPredict is the calibrated serial cost per point (neighbour search
// over the window plus prediction and residual coding).
var costPredict = edgesim.Cost{OpsPerItem: 900, BytesPerItem: 40}

// Params configures the codec.
type Params struct {
	// Neighbors is the number of nearest coded points used for prediction
	// (G-PCC uses 3).
	Neighbors int
	// Window is how many preceding (Morton-order) points are searched.
	Window int
	// QStep quantizes residuals (1 = lossless).
	QStep int
}

// DefaultParams mirrors G-PCC's common configuration.
func DefaultParams() Params { return Params{Neighbors: 3, Window: 32, QStep: 1} }

func (p Params) normalized() Params {
	if p.Neighbors < 1 {
		p.Neighbors = 1
	}
	if p.Window < p.Neighbors {
		p.Window = p.Neighbors
	}
	if p.QStep < 1 {
		p.QStep = 1
	}
	return p
}

// ErrGeometryMismatch reports attribute/geometry disagreement.
var ErrGeometryMismatch = errors.New("predlift: attribute count does not match geometry")

// predict computes the inverse-distance-weighted neighbour prediction for
// point i from already-coded attributes; both sides of the channel run it
// with identical inputs.
func predict(sorted []morton.Keyed, coded [][3]int32, i int, p Params) [3]int32 {
	lo := i - p.Window
	if lo < 0 {
		lo = 0
	}
	// Collect the p.Neighbors nearest among [lo, i).
	type cand struct {
		idx int
		d2  float64
	}
	best := make([]cand, 0, p.Neighbors)
	for j := lo; j < i; j++ {
		d2 := sorted[i].Voxel.Dist2(sorted[j].Voxel)
		c := cand{j, d2}
		// Insertion into the small top-K list.
		inserted := false
		for k := range best {
			if c.d2 < best[k].d2 {
				best = append(best[:k], append([]cand{c}, best[k:]...)...)
				inserted = true
				break
			}
		}
		if !inserted && len(best) < p.Neighbors {
			best = append(best, c)
		}
		if len(best) > p.Neighbors {
			best = best[:p.Neighbors]
		}
	}
	if len(best) == 0 {
		return [3]int32{128, 128, 128} // mid-grey prior for the first point
	}
	var wsum float64
	var acc [3]float64
	for _, c := range best {
		w := 1 / (1 + math.Sqrt(c.d2))
		wsum += w
		for ch := 0; ch < 3; ch++ {
			acc[ch] += w * float64(coded[c.idx][ch])
		}
	}
	var out [3]int32
	for ch := 0; ch < 3; ch++ {
		out[ch] = int32(math.Round(acc[ch] / wsum))
	}
	return out
}

// Encode compresses the attribute column of a Morton-sorted frame.
func Encode(dev *edgesim.Device, sorted []morton.Keyed, p Params) ([]byte, error) {
	p = p.normalized()
	enc := entropy.NewEncoder()
	nm := entropy.NewUintModel()
	nm.Encode(enc, uint64(len(sorted)))
	res := entropy.NewIntModel()

	coded := make([][3]int32, len(sorted))
	dev.CPUSerial("PredTransform", len(sorted), costPredict, func() {
		// The prediction loop depends on reconstructed values, not on the
		// coder, so the residual column is computed first and entropy-coded
		// as one batched slab (same symbol order, byte-identical).
		resv := make([]int64, 0, 3*len(sorted))
		q := int32(p.QStep)
		for i := range sorted {
			pred := predict(sorted, coded, i, p)
			c := sorted[i].Voxel.C
			actual := [3]int32{int32(c.R), int32(c.G), int32(c.B)}
			for ch := 0; ch < 3; ch++ {
				d := actual[ch] - pred[ch]
				qd := quantize(d, q)
				resv = append(resv, int64(qd))
				coded[i][ch] = clamp255(pred[ch] + qd*q)
			}
		}
		res.EncodeSlice(enc, resv)
	})
	return enc.Bytes(), nil
}

// Decode reconstructs attribute values given the decoded geometry in the
// same sorted order.
func Decode(dev *edgesim.Device, data []byte, sorted []morton.Keyed, p Params) ([]geom.Color, error) {
	p = p.normalized()
	dec, err := entropy.NewDecoder(data)
	if err != nil {
		return nil, err
	}
	nm := entropy.NewUintModel()
	n := nm.Decode(dec)
	if n != uint64(len(sorted)) {
		return nil, ErrGeometryMismatch
	}
	res := entropy.NewIntModel()
	coded := make([][3]int32, len(sorted))
	out := make([]geom.Color, len(sorted))
	dev.CPUSerial("PredInverse", len(sorted), costPredict, func() {
		// Residuals sit consecutively in the stream, so the whole column is
		// decoded as one batched slab before the reconstruction loop.
		resv := make([]int64, 3*len(sorted))
		res.DecodeSlice(dec, resv)
		q := int32(p.QStep)
		for i := range sorted {
			pred := predict(sorted, coded, i, p)
			for ch := 0; ch < 3; ch++ {
				qd := int32(resv[3*i+ch])
				coded[i][ch] = clamp255(pred[ch] + qd*q)
			}
			out[i] = geom.Color{
				R: uint8(coded[i][0]), G: uint8(coded[i][1]), B: uint8(coded[i][2]),
			}
		}
	})
	if err := dec.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func quantize(v, q int32) int32 {
	if q <= 1 {
		return v
	}
	if v >= 0 {
		return (v + q/2) / q
	}
	return -((-v + q/2) / q)
}

func clamp255(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}
