// Streaming: the paper's end-to-end pipeline (Fig. 1) over real network
// sockets, served by the concurrent pcc/stream pipeline. One capture
// process encodes an IPP video for two viewers at once — each viewer gets
// its own isolated session (encoder, per-stage device ledgers, bounded
// queues) and its own modelled link:
//
//   - viewer wifi keeps a clean Wi-Fi link and the lossless Block policy;
//   - viewer edge sits behind a congested 1 Mbps link with the
//     drop-oldest-P policy, so the transmit queue sheds P-frames (never
//     I-frames) to bound latency while the stream stays decodable;
//   - viewer lossy streams real framed packets through a seeded
//     fault-injected link (5% drop + reordering): lost packets are NACKed
//     and retransmitted, unrecoverable P-frames are concealed, and a lost
//     I-frame forces a GOP refresh.
//
// The display side needs nothing but the socket bytes: the .pcv stream is
// self-describing.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"repro/internal/linksim"
	"repro/pcc"
	"repro/pcc/stream"
)

const (
	videoName = "redandblack"
	scale     = 0.08
	nFrames   = 9 // three IPP groups
)

// viewer describes one streaming client and its modelled network.
type viewer struct {
	name   string
	link   linksim.Link
	policy stream.Policy
	pace   float64 // real seconds per simulated link second
	scored bool    // PSNR against originals (only valid when lossless)
}

func main() {
	viewers := []viewer{
		{name: "wifi", link: linksim.WiFi, policy: stream.Block, scored: true},
		{name: "edge", policy: stream.DropOldestP, pace: 0.2,
			link: linksim.Link{Name: "1mbps", BandwidthMbps: 1, RTTMs: 40,
				TxNanojoulePerByte: 1000, RxNanojoulePerByte: 500}},
	}

	video := pcc.NewVideo(videoName, scale)
	originals := make([]*pcc.PointCloud, nFrames)
	var err error
	for i := range originals {
		if originals[i], err = video.Frame(i); err != nil {
			log.Fatal(err)
		}
	}

	opts := pcc.DefaultOptions(pcc.IntraInterV1)
	opts.IntraAttr.Segments = 2500
	opts.Inter.Segments = 4000

	var wg sync.WaitGroup
	for _, v := range viewers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(2)
		go capture(&wg, ln, v, originals, opts)
		go display(&wg, ln.Addr().String(), v, originals)
	}
	wg.Wait()

	lossyViewer(originals, opts)
}

// lossyViewer streams the same video as real framed packets across a
// fault-injected link. The receiver reassembles, NACKs gaps, conceals
// unrecoverable P-frames, and requests an I-frame refresh if a GOP
// reference is lost — every frame's fate is reported, never silently
// wrong.
func lossyViewer(frames []*pcc.PointCloud, opts pcc.Options) {
	faults := linksim.FaultProfile{DropRate: 0.05, ReorderRate: 0.03, Seed: 7}
	fl := linksim.NewFaultyLink(linksim.WiFi, faults)
	pipe := stream.NewLossyPipe(fl, stream.ReceiverConfig{
		Options: opts,
		OnFrame: func(f stream.DecodedFrame) {
			switch f.Status {
			case stream.FrameDecoded:
				fmt.Printf("[viewer lossy] frame %d: %s decoded, %6d pts (delay %v)\n",
					f.Index, f.Type, f.Cloud.Len(), f.Delay.Round(1e5))
			case stream.FrameConcealed:
				fmt.Printf("[viewer lossy] frame %d: %s CONCEALED (%v)\n", f.Index, f.Type, f.Err)
			case stream.FrameSkipped:
				fmt.Printf("[viewer lossy] frame %d: %s SKIPPED (%v)\n", f.Index, f.Type, f.Err)
			}
		},
	})
	s := stream.New(context.Background(), stream.Config{
		Options:   opts,
		PacketOut: pipe.PacketOut,
	})
	pipe.Attach(s)
	col := stream.NewCollector(s)
	for _, f := range frames {
		if err := s.Submit(context.Background(), f); err != nil {
			log.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}
	col.Wait()
	if err := pipe.Finish(len(frames)); err != nil {
		log.Fatal(err)
	}
	st, rs, sm := fl.Stats(), pipe.Receiver().Metrics(), s.Metrics()
	fmt.Printf("[viewer lossy] link dropped %d/%d packets (%d reordered); %d NACKs → %d retransmits, %d refreshes\n",
		st.Dropped+st.BurstDrops, st.Sent, st.Reordered, rs.NACKsSent, sm.Retransmits, sm.Refreshes)
	fmt.Printf("[viewer lossy] frames: %d decoded, %d concealed, %d skipped (decoded ratio %.3f)\n",
		rs.FramesDecoded, rs.FramesConcealed, rs.FramesSkipped, rs.DecodedRatio())
}

// capture accepts the viewer's connection and streams all frames through a
// pipelined session whose transmit stage writes straight to the socket.
func capture(wg *sync.WaitGroup, ln net.Listener, v viewer, frames []*pcc.PointCloud, opts pcc.Options) {
	defer wg.Done()
	defer ln.Close()
	conn, err := ln.Accept()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	w := pcc.NewPipelinedWriterConfig(stream.Config{
		Options: opts,
		Link:    v.link,
		Queue:   2,
		Policy:  v.policy,
		Pace:    v.pace,
		Output:  conn,
	})
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			log.Fatal(err)
		}
	}
	results, err := w.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fate := fmt.Sprintf("%6.1f KB, %2d pkts, link %5.1f ms",
			float64(r.WireBytes)/1e3, r.Packets, r.Link.Latency.Seconds()*1000)
		if r.Dropped {
			fate = "DROPPED by backpressure policy"
		}
		fmt.Printf("[capture %s] frame %d: %s, sim %6.2f ms, %s\n",
			v.name, r.Seq, r.Stats.Type, r.Stats.TotalTime.Seconds()*1000, fate)
	}
	m := w.Metrics()
	fmt.Printf("[capture %s] %s link, %s policy: %d/%d delivered, %d dropped, tx queue peak %d\n",
		v.name, v.link.Name, v.policy, m.Delivered, m.Submitted, m.Dropped, m.Queues[3].MaxDepth)
	fmt.Printf("[capture %s] encode sim: geometry %v + attributes %v (overlapped), link %v\n",
		v.name, m.GeometrySim.Round(1e5), m.AttrSim.Round(1e5), m.LinkTime.Round(1e5))
}

// display dials the capture side, decodes the self-describing stream, and
// scores quality when the stream is lossless (frame indices line up).
func display(wg *sync.WaitGroup, addr string, v viewer, originals []*pcc.PointCloud) {
	defer wg.Done()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	r, err := pcc.NewStreamReader(conn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[display %s] receiving %v stream\n", v.name, r.Options().Design)
	decoded := 0
	for {
		frame, _, err := r.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if v.scored {
			psnr, err := pcc.GeometryPSNR(originals[decoded], frame)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[display %s] frame %d: %6d pts, geometry PSNR %5.1f dB\n",
				v.name, decoded, frame.Len(), min(psnr, 120))
		} else {
			fmt.Printf("[display %s] frame %d: %6d pts\n", v.name, decoded, frame.Len())
		}
		decoded++
	}
	fmt.Printf("[display %s] %d frames decoded, decoder sim %v / %.2f J\n",
		v.name, decoded, r.Device().SimTime().Round(1e5), r.Device().EnergyJ())
}
