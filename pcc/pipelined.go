package pcc

import (
	"context"
	"io"

	"repro/pcc/stream"
)

// PipelinedWriter is the concurrent counterpart of StreamWriter: frames are
// encoded through the pcc/stream pipeline, so the geometry encode of frame
// N+1 overlaps the attribute coding of frame N and the link transmission of
// frame N-1. The produced .pcv byte stream is identical to StreamWriter's —
// same frames, same order, same bits — only the wall-clock schedule differs.
//
// For link modelling, backpressure policies, multi-session serving, or a
// custom transport, use package pcc/stream directly; this wrapper covers
// the common encode-to-writer case.
type PipelinedWriter struct {
	s   *stream.Session
	col *stream.Collector
}

// NewPipelinedWriter starts a pipelined encoder writing a .pcv stream to w.
func NewPipelinedWriter(w io.Writer, o Options) *PipelinedWriter {
	return NewPipelinedWriterConfig(stream.Config{Options: o, Output: w})
}

// NewPipelinedWriterConfig starts a pipelined encoder with full control over
// the session (link model, queue depth, drop policy, transport hooks).
func NewPipelinedWriterConfig(cfg stream.Config) *PipelinedWriter {
	s := stream.New(context.Background(), cfg)
	return &PipelinedWriter{s: s, col: stream.NewCollector(s)}
}

// WriteFrame submits one frame to the pipeline. It returns as soon as the
// ingest queue accepts the frame; encoding completes asynchronously, and
// errors surface on Close.
func (p *PipelinedWriter) WriteFrame(vc *PointCloud) error {
	return p.s.Submit(context.Background(), vc)
}

// Close drains the pipeline and returns every frame's outcome in submission
// order along with the first pipeline error, if any.
func (p *PipelinedWriter) Close() ([]stream.Result, error) {
	err := p.s.Close()
	return p.col.Wait(), err
}

// Metrics snapshots the underlying session's pipeline counters.
func (p *PipelinedWriter) Metrics() stream.Metrics { return p.s.Metrics() }

// Session exposes the underlying stream session (e.g. for Cancel).
func (p *PipelinedWriter) Session() *stream.Session { return p.s }
