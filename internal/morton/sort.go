package morton

import (
	"sort"

	"repro/internal/geom"
)

// Keyed pairs a voxel with its Morton code. The compression pipelines carry
// this form around: the codes are computed once during geometry compression
// and reused for attribute compression "without any additional overhead"
// (Sec. IV-C1).
type Keyed struct {
	Code  Code
	Voxel geom.Voxel
}

// EncodeCloud computes the Morton code of every voxel in the cloud through
// the batched LUT path. The returned slice is in the cloud's original order.
func EncodeCloud(vc *geom.VoxelCloud) []Keyed {
	return EncodeCloudInto(nil, vc)
}

// Sort orders keyed voxels by Morton code ascending (stable order for equal
// codes, which occur only for duplicate voxels).
func Sort(ks []Keyed) {
	sort.SliceStable(ks, func(i, j int) bool { return ks[i].Code < ks[j].Code })
}

// IsSorted reports whether ks is in ascending Morton order.
func IsSorted(ks []Keyed) bool {
	return sort.SliceIsSorted(ks, func(i, j int) bool { return ks[i].Code < ks[j].Code })
}

// RadixSort sorts keyed voxels by Morton code with an LSD radix sort over
// 8-bit digits. This is the data-parallel-friendly sort the GPU pipeline
// models (a CUDA implementation would use the same digit histogram +
// prefix-sum + scatter structure); it is also the fastest scalar path for
// million-point frames.
func RadixSort(ks []Keyed) {
	if len(ks) < 2 {
		return
	}
	buf := make([]Keyed, len(ks))
	src, dst := ks, buf
	// 63-bit codes: 8 passes of 8 bits cover them.
	for shift := uint(0); shift < 64; shift += 8 {
		var count [257]int
		for _, k := range src {
			count[int(uint8(k.Code>>shift))+1]++
		}
		for i := 1; i < 257; i++ {
			count[i] += count[i-1]
		}
		for _, k := range src {
			d := uint8(k.Code >> shift)
			dst[count[d]] = k
			count[d]++
		}
		src, dst = dst, src
	}
	// 8 passes: src ends up back at ks. (Even number of swaps.)
	if &src[0] != &ks[0] {
		copy(ks, src)
	}
}

// Dedup removes consecutive entries with equal codes from a sorted slice,
// keeping the first occurrence. Returns the deduplicated prefix.
func Dedup(ks []Keyed) []Keyed {
	if len(ks) == 0 {
		return ks
	}
	w := 1
	for i := 1; i < len(ks); i++ {
		if ks[i].Code != ks[w-1].Code {
			ks[w] = ks[i]
			w++
		}
	}
	return ks[:w]
}

// Codes extracts just the code column.
func Codes(ks []Keyed) []Code {
	out := make([]Code, len(ks))
	for i, k := range ks {
		out[i] = k.Code
	}
	return out
}

// Voxels extracts just the voxel column.
func Voxels(ks []Keyed) []geom.Voxel {
	out := make([]geom.Voxel, len(ks))
	for i, k := range ks {
		out[i] = k.Voxel
	}
	return out
}
