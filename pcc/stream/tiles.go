package stream

// Viewport-adaptive tile fan-out: per-viewer culling of tiled frames.
//
// The encoder publishes one tiled container per frame into the ring; the
// layout parsed at publish time (sharedFrame.layout) maps every tile's
// geometry and attribute chunk to a byte span of the immutable payload.
// A viewer with a viewport rewrites the frame for its own camera as PURE
// DROP: the container header is re-written (directory lengths zeroed for
// culled tiles) and the kept tiles' spans are gathered straight out of
// the shared payload at packetize time — no re-encode, no per-viewer
// frame materialization. Tiles fully inside the frustum ship complete;
// tiles only inside a widened "prefetch" frustum ship coarse (geometry
// only, the receiver renders them colourless until the camera settles);
// everything else is omitted. Point counts in the directory stay at the
// encoder's full values so the receiver's decoder keeps global indexing
// and conceals the missing reference ranges (see codec.RewriteHeader).
//
// Determinism for NACKs: a sent-record stores the omit/coarse masks used
// at send time, so a retransmit rebuilds the identical plan from the
// cached frame layout even if the camera has moved since.

import (
	"math"
	"sort"

	"repro/internal/codec"
	"repro/internal/viewport"
)

// coarseMarginDeg widens the camera's cone for the coarse (geometry-only)
// band, and coarseDistScale its far plane: tiles a small head turn would
// bring into view arrive as geometry ahead of time instead of popping in.
const (
	coarseMarginDeg = 25.0
	coarseDistScale = 1.25
)

// tileMasks classifies every tile of a laid-out frame against a camera:
// bit t of omit / coarse set means tile t is dropped / shipped without
// attributes. Tiles the encoder already omitted keep their flag but take
// no mask bit (RewriteHeader preserves them). When the camera sees no
// tile at all, the nearest tile to the eye is kept in full — a viewer
// looking away still receives a decodable (and re-orientable) frame.
func tileMasks(l *codec.FrameLayout, cam viewport.Camera) (omit, coarse uint64) {
	wide := cam
	if wide.FOVDegrees > 0 && wide.FOVDegrees < 360 {
		wide.FOVDegrees += 2 * coarseMarginDeg
	}
	if wide.MaxDist > 0 {
		wide.MaxDist *= coarseDistScale
	}
	anyKept := false
	for t, ti := range l.Tiles {
		if ti.Omitted() {
			continue
		}
		mn := [3]float64{float64(ti.Min[0]), float64(ti.Min[1]), float64(ti.Min[2])}
		mx := [3]float64{float64(ti.Max[0]) + 1, float64(ti.Max[1]) + 1, float64(ti.Max[2]) + 1}
		switch {
		case cam.SeesAABB(mn, mx):
			anyKept = true
		case wide.SeesAABB(mn, mx):
			coarse |= 1 << uint(t)
		default:
			omit |= 1 << uint(t)
		}
	}
	if !anyKept && omit|coarse != 0 {
		best, bestD := -1, math.Inf(1)
		for t, ti := range l.Tiles {
			if ti.Omitted() {
				continue
			}
			var d float64
			for a := 0; a < 3; a++ {
				c := (float64(ti.Min[a]) + float64(ti.Max[a]) + 1) / 2
				d += (c - cam.Pos[a]) * (c - cam.Pos[a])
			}
			if d < bestD {
				best, bestD = t, d
			}
		}
		if best >= 0 {
			keep := uint64(1) << uint(best)
			omit &^= keep
			coarse &^= keep
		}
	}
	return omit, coarse
}

// viewPlan is one viewer's culled view of a published tiled frame: the
// rewritten header plus the kept tiles' payload spans, in container order
// (header, geometry chunks, attribute chunks). Fragments are gathered
// from the spans at packetize time; only the ≤MTU gather buffer is ever
// materialized per packet.
type viewPlan struct {
	spans   [][]byte // spans[0] is the rewritten header (the only copy)
	tileOf  []uint16 // tile id per span; TileNone for the header
	layerOf []uint8  // layer id per span; LayerNone for the header / unlayered
	cum     []int    // len(spans)+1 prefix byte offsets
	total   int      // culled frame length (== cum[len(spans)])
}

// buildViewPlan assembles a viewer's plan for one published frame. wire
// is the immutable ring payload; only the rewritten header is copied.
// sub truncates layered frames to their first sub layers (0 = keep all);
// it is ignored for unlayered frames.
func buildViewPlan(l *codec.FrameLayout, wire []byte, omit, coarse uint64, sub uint8) *viewPlan {
	units := l.LayerUnits()
	p := &viewPlan{
		spans:   make([][]byte, 0, 1+2*units),
		tileOf:  make([]uint16, 0, 1+2*units),
		layerOf: make([]uint8, 0, 1+2*units),
	}
	add := func(b []byte, tile uint16, layer uint8) {
		if len(b) == 0 {
			return
		}
		p.spans = append(p.spans, b)
		p.tileOf = append(p.tileOf, tile)
		p.layerOf = append(p.layerOf, layer)
	}
	tileID := func(u int) uint16 {
		if len(l.Tiles) == 0 {
			return TileNone
		}
		return uint16(u)
	}
	add(l.RewriteHeaderSub(wire, omit, coarse, sub), TileNone, LayerNone)
	if !l.Layered() {
		for t := range l.Tiles {
			if l.Tiles[t].Omitted() || omit&(1<<uint(t)) != 0 {
				continue
			}
			add(wire[l.GeomOff[t]:l.GeomOff[t+1]], uint16(t), LayerNone)
		}
		for t := range l.Tiles {
			if l.Tiles[t].Omitted() || (omit|coarse)&(1<<uint(t)) != 0 {
				continue
			}
			add(wire[l.AttrOff[t]:l.AttrOff[t+1]], uint16(t), LayerNone)
		}
	} else {
		subEff := int(sub)
		if subEff == 0 || subEff > l.Layers {
			subEff = l.Layers
		}
		for u := 0; u < units; u++ {
			if len(l.Tiles) > 0 && (l.Tiles[u].Omitted() || omit&(1<<uint(u)) != 0) {
				continue
			}
			pos := l.GeomOff[u]
			for lay := 0; lay < subEff; lay++ {
				n := int(l.LayerGeom[u*l.Layers+lay])
				add(wire[pos:pos+n], tileID(u), uint8(lay))
				pos += n
			}
		}
		for u := 0; u < units; u++ {
			if len(l.Tiles) > 0 && (l.Tiles[u].Omitted() || (omit|coarse)&(1<<uint(u)) != 0) {
				continue
			}
			pos := l.AttrOff[u]
			for lay := 0; lay < subEff; lay++ {
				n := int(l.LayerAttr[u*l.Layers+lay])
				add(wire[pos:pos+n], tileID(u), uint8(lay))
				pos += n
			}
		}
	}
	p.cum = make([]int, len(p.spans)+1)
	for i, s := range p.spans {
		p.cum[i+1] = p.cum[i] + len(s)
	}
	p.total = p.cum[len(p.spans)]
	return p
}

// gather appends fragment frag's payload bytes (at the given MTU split of
// the culled frame) to dst and returns it with the tile and layer ids the
// fragment STARTS in (TileNone/LayerNone for the header). Mirrors
// PacketizeFrame's split of a contiguous wire buffer, byte for byte.
func (p *viewPlan) gather(dst []byte, frag, mtu int) ([]byte, uint16, uint8) {
	lo := frag * mtu
	hi := min(lo+mtu, p.total)
	if lo >= hi {
		return dst, TileNone, LayerNone // empty frame's single empty fragment
	}
	// First span containing byte lo: cum[i] <= lo < cum[i+1].
	i := sort.SearchInts(p.cum, lo+1) - 1
	tile, layer := p.tileOf[i], p.layerOf[i]
	for at := lo; at < hi; i++ {
		s := p.spans[i]
		off := at - p.cum[i]
		take := min(len(s)-off, hi-at)
		dst = append(dst, s[off:off+take]...)
		at += take
	}
	return dst, tile, layer
}

// parityBody XORs one parity group's fragments of the culled frame,
// exactly as buildParityBody does for a contiguous wire buffer. scratch
// is reused between calls for the gathered fragment bytes.
func (p *viewPlan) parityBody(g groupSpec, mtu int, scratch []byte) ([]byte, []byte) {
	width := 0
	for i := 0; i < g.count; i++ {
		lo := (g.base + i*g.stride) * mtu
		hi := min(lo+mtu, p.total)
		if hi-lo > width {
			width = hi - lo
		}
	}
	if width < 0 {
		width = 0
	}
	body := make([]byte, 2+width)
	for i := 0; i < g.count; i++ {
		lo := (g.base + i*g.stride) * mtu
		if lo >= p.total {
			xorRecord(body, nil)
			continue
		}
		scratch, _, _ = p.gather(scratch[:0], g.base+i*g.stride, mtu)
		xorRecord(body, scratch)
	}
	return body, scratch
}
