package stream

// Receiver is the decode side of the lossy transport: it reassembles
// framed packets (packet.go) into frame containers, detects gaps via
// sequence numbers, and applies a GOP-aware recovery policy:
//
//   - Missing packets are NACKed back to the sender with a timeout and
//     exponential backoff. I-frame packets get a deep retry budget — the
//     stream is undecodable without them. P-frame packets get a shallow
//     one: after it is exhausted the frame is concealed (the last good
//     frame is repeated) and the stream moves on.
//   - When an I-frame itself cannot be recovered the GOP reference is
//     lost: the receiver sends a ControlRefresh asking the sender to force
//     the next frame to be an I-frame, resets the decoder, and skips
//     P-frames until that refresh I-frame arrives.
//
// Frames are delivered in order through OnFrame; every submitted frame is
// eventually reported exactly once as decoded (byte-correct), concealed,
// or skipped — there is no silent corruption path, because every packet
// payload is checksummed and every decode failure is typed
// (codec.ErrCorruptFrame / codec.ErrMissingReference).
//
// Threading: a Receiver is driven by ONE transport goroutine (Ingest /
// Tick / Finish). Callbacks (SendControl, OnFrame) run on that goroutine
// and may synchronously feed retransmitted packets back into Ingest — the
// receiver queues re-entrant ingests instead of recursing. Metrics() is
// safe from any goroutine.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/codec"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/viewport"
)

// FrameStatus is the receiver's verdict on one frame.
type FrameStatus int

const (
	// FrameDecoded frames decoded byte-correct.
	FrameDecoded FrameStatus = iota
	// FrameConcealed frames were lost P-frames: the last good frame is
	// repeated in their place and the GOP stays decodable.
	FrameConcealed
	// FrameSkipped frames could not be presented at all: a lost I-frame,
	// a P-frame without its reference, or a frame the sender never sent.
	FrameSkipped
)

func (s FrameStatus) String() string {
	switch s {
	case FrameDecoded:
		return "decoded"
	case FrameConcealed:
		return "concealed"
	case FrameSkipped:
		return "skipped"
	default:
		return fmt.Sprintf("FrameStatus(%d)", int(s))
	}
}

// ErrFrameLost reports a frame whose packets could not be recovered within
// the NACK retry budget.
var ErrFrameLost = errors.New("stream: frame lost in transit")

// ErrSenderDropped reports a frame the sender's backpressure policy shed
// before transmission (its sequence numbers were never used).
var ErrSenderDropped = errors.New("stream: frame dropped by sender")

// DecodedFrame is the fate of one frame at the receiver, delivered in
// frame order.
type DecodedFrame struct {
	Index int
	Type  codec.FrameType
	// Status tells whether Cloud is a byte-correct decode, a concealment
	// (last good frame), or absent.
	Status FrameStatus
	Cloud  *geom.VoxelCloud
	// Err explains concealed/skipped frames (ErrFrameLost,
	// ErrSenderDropped, codec.ErrMissingReference, codec.ErrCorruptFrame).
	Err error
	// Delay is the recovery delay: first fragment seen → frame resolved
	// (zero for frames that never arrived at all).
	Delay time.Duration
}

// ReceiverConfig configures a Receiver. Options must match the sender's.
type ReceiverConfig struct {
	// Options selects and configures the codec (as the sender's Config).
	Options codec.Options
	// Mode selects the modelled decode board's power budget.
	Mode edgesim.PowerMode
	// StreamID, when non-zero, rejects packets from other streams;
	// zero adopts the first stream seen.
	StreamID uint32
	// SendControl transmits a control message (NACK, refresh) back to the
	// sender — typically Session.HandleControl or a socket write. Nil
	// disables active recovery: losses conceal/skip on timeout alone.
	SendControl func(Control) error
	// OnFrame receives every frame's fate, in frame order.
	OnFrame func(DecodedFrame)
	// NACKTimeout is the base retransmit timeout; retry n waits
	// NACKTimeout << n (default 15ms).
	NACKTimeout time.Duration
	// IFrameRetries / PFrameRetries bound the NACK retries for packets of
	// I-frames (deep: the stream needs them) and P-frames (shallow: they
	// conceal). Defaults 6 and 2.
	IFrameRetries int
	PFrameRetries int
	// FeedbackEvery emits a ControlFeedback report through SendControl after
	// every N delivered frames: windowed loss rate, NACK work, and frame
	// outcomes for the sender's congestion controller. 0 disables feedback
	// (the default — the transport behaves exactly as before).
	FeedbackEvery int
	// Now is the clock (default time.Now). Simulated transports inject a
	// virtual clock to make timeouts deterministic.
	Now func() time.Time
}

func (c ReceiverConfig) normalized() ReceiverConfig {
	if c.NACKTimeout <= 0 {
		c.NACKTimeout = 15 * time.Millisecond
	}
	if c.IFrameRetries <= 0 {
		c.IFrameRetries = 6
	}
	if c.PFrameRetries <= 0 {
		c.PFrameRetries = 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// partialFrame is one frame being reassembled.
type partialFrame struct {
	index     uint32
	ftype     codec.FrameType
	firstSeq  uint32
	frags     [][]byte
	have      int
	failed    bool // retry budget exhausted; resolve as concealed/skipped
	firstSeen time.Time
	// parity holds the frame's pending FEC groups: each repairs its single
	// missing member as soon as the rest arrive, and is dropped once spent
	// (repaired, or nothing left to repair).
	parity []*ParityGroup
}

// lossState tracks one missing sequence number's NACK schedule.
type lossState struct {
	deadline time.Time
	attempts int
}

// Receiver reassembles and decodes a lossy packet stream. Create with
// NewReceiver; see the package comment for the threading model.
type Receiver struct {
	cfg      ReceiverConfig
	dev      *edgesim.Device
	dec      *codec.Decoder
	counters metrics.RecoveryCounters
	fec      metrics.FECCounters

	inbox [][]byte
	busy  bool

	streamID  uint32
	nextSeq   uint32 // next expected sequence number
	missing   map[uint32]*lossState
	frames    map[uint32]*partialFrame
	nextFrame uint32 // next frame index to deliver
	// prehealed marks sequence numbers repaired from parity BEFORE any
	// later arrival revealed their loss (a repaired tail fragment): when
	// the gap detector later sweeps past one, it must not open a missing
	// entry for an already-healed packet.
	prehealed map[uint32]struct{}
	// gapLost marks that packets of entirely-unseen frames were given up:
	// the frames in the current index gap were lost (not sender-dropped).
	gapLost bool
	// refValid tracks whether the decoder holds a usable GOP reference.
	refValid bool
	// refreshPending suppresses duplicate refresh requests until the next
	// I-frame decodes.
	refreshPending bool
	lastCloud      *geom.VoxelCloud
	finished       bool
	err            error

	// Feedback reporting (FeedbackEvery > 0): fbReport numbers the reports
	// monotonically; fbBase is the counter snapshot at the previous report,
	// so each report carries window deltas, not lifetime totals.
	fbReport uint32
	fbBase   metrics.RecoverySnapshot
}

// NewReceiver creates a receiver decoding on a fresh device model.
func NewReceiver(cfg ReceiverConfig) *Receiver {
	cfg = cfg.normalized()
	dev := edgesim.NewXavier(cfg.Mode)
	return &Receiver{
		cfg:       cfg,
		dev:       dev,
		dec:       codec.NewDecoder(dev, cfg.Options),
		missing:   make(map[uint32]*lossState),
		frames:    make(map[uint32]*partialFrame),
		prehealed: make(map[uint32]struct{}),
		streamID:  cfg.StreamID,
	}
}

// Device exposes the decode-side device model.
func (r *Receiver) Device() *edgesim.Device { return r.dev }

// Metrics snapshots the receiver's recovery counters, including its FEC
// parity counters (safe from any goroutine).
func (r *Receiver) Metrics() metrics.RecoverySnapshot {
	snap := r.counters.Snapshot()
	snap.FEC = r.fec.Snapshot()
	return snap
}

// Err returns the first control-channel error, if any.
func (r *Receiver) Err() error { return r.err }

// SendViewport reports this viewer's camera to the sender: tiled frames
// are culled against it server-side from the next send on (tiles outside
// the frustum dropped, near-misses sent geometry-only — see
// Viewer.SetViewport). A camera with FOVDegrees <= 0 clears the viewport
// and full frames resume. Like every Receiver method it runs on the
// receiver's driving goroutine.
func (r *Receiver) SendViewport(cam viewport.Camera) {
	r.sendControl(Control{Kind: ControlViewport, StreamID: r.streamID, Camera: cam})
}

// SendLayers asks the sender to truncate layered frames to their first sub
// layers for this viewer from the next send on (see Viewer.SetLayers). Zero
// clears the override: the sender's per-viewer layer controller (if any)
// resumes, or full frames do. A no-op for unlayered streams.
func (r *Receiver) SendLayers(sub uint8) {
	r.sendControl(Control{Kind: ControlLayers, StreamID: r.streamID, Layers: sub})
}

// Ingest feeds one received packet (header + payload, as framed by the
// sender). Safe to call re-entrantly from SendControl/OnFrame callbacks.
func (r *Receiver) Ingest(raw []byte) {
	r.inbox = append(r.inbox, raw)
	if r.busy {
		return
	}
	r.busy = true
	r.drain()
	r.busy = false
}

// Tick advances the NACK timeout machinery without a packet arrival. Call
// it periodically on live transports (packet arrivals also check).
func (r *Receiver) Tick() {
	if r.busy || r.finished {
		return
	}
	r.busy = true
	now := r.cfg.Now()
	r.checkTimeouts(now, false)
	r.advance(now)
	r.drain()
	r.busy = false
}

// drain processes queued packets, including ones enqueued re-entrantly by
// retransmissions triggered from within processing.
func (r *Receiver) drain() {
	for len(r.inbox) > 0 {
		raw := r.inbox[0]
		r.inbox = r.inbox[1:]
		r.ingestOne(raw)
	}
}

func (r *Receiver) ingestOne(raw []byte) {
	if r.finished {
		return
	}
	now := r.cfg.Now()
	r.counters.PacketReceived()
	pkt, err := ParsePacket(raw)
	if err != nil {
		// Corrupt in flight: indistinguishable from a loss; the sequence
		// gap it leaves behind drives recovery.
		r.counters.PacketCorrupt()
		return
	}
	h := pkt.Header
	if h.Flags&FlagControl != 0 {
		return // control flows sender-ward; not ours to consume
	}
	if r.streamID == 0 {
		r.streamID = h.StreamID
	}
	if h.StreamID != r.streamID {
		r.counters.PacketCorrupt()
		return
	}
	if h.Flags&FlagParity != 0 {
		// Parity packets occupy no slot in the data sequence stream: route
		// them to repair before any sequence bookkeeping.
		r.ingestParity(pkt, now)
		return
	}
	if h.Flags&FlagRetransmit != 0 {
		r.counters.RetransmitReceived()
	}
	if h.Flags&FlagCached != 0 {
		r.counters.CachedReceived()
	}

	// Sequence tracking: a jump past nextSeq opens a gap of missing seqs;
	// an arrival inside the missing set heals it (retransmit or reorder).
	if h.Seq >= r.nextSeq {
		for s := r.nextSeq; s < h.Seq; s++ {
			if _, ok := r.prehealed[s]; ok {
				delete(r.prehealed, s) // parity already rebuilt this one
				continue
			}
			r.missing[s] = &lossState{deadline: now.Add(r.cfg.NACKTimeout)}
		}
		delete(r.prehealed, h.Seq) // a repaired original arriving late
		r.nextSeq = h.Seq + 1
	} else if ls, open := r.missing[h.Seq]; open {
		if ls.attempts >= 1 {
			// Late retransmit landing after its first NACK timeout already
			// counted it lost — net it back out of the next feedback window.
			r.counters.PacketRecovered()
		}
		delete(r.missing, h.Seq)
	} else {
		r.counters.PacketDuplicate()
		return
	}

	// Frame reassembly.
	if h.FrameIndex >= uint32(len(r.frames))+r.nextFrame+1<<20 {
		// Absurd jump (corrupt header that passed CRC of its payload only).
		r.counters.PacketCorrupt()
		return
	}
	if h.FrameIndex < r.nextFrame {
		r.counters.PacketDuplicate() // frame already resolved; late copy
		return
	}
	pf := r.frames[h.FrameIndex]
	if pf == nil {
		pf = &partialFrame{
			index:     h.FrameIndex,
			ftype:     h.FrameType,
			firstSeq:  h.Seq - uint32(h.Frag),
			frags:     make([][]byte, h.FragCount),
			firstSeen: now,
		}
		r.frames[h.FrameIndex] = pf
	}
	if int(h.FragCount) != len(pf.frags) || pf.firstSeq != h.Seq-uint32(h.Frag) || pf.ftype != h.FrameType {
		r.counters.PacketCorrupt() // inconsistent with sibling fragments
		return
	}
	if pf.frags[h.Frag] != nil {
		r.counters.PacketDuplicate()
		return
	}
	pf.frags[h.Frag] = pkt.Payload
	pf.have++
	if len(pf.parity) > 0 {
		// This arrival may have reduced one of the frame's parity groups to
		// a single missing member — repairable now.
		r.tryRepair(pf)
	}

	r.advance(now)
	r.checkTimeouts(now, false)
}

// ingestParity folds one parity packet into its frame's reassembly state
// and repairs whatever it can. Malformed or frame-inconsistent parity
// counts corrupt; parity for already-resolved frames counts wasted.
func (r *Receiver) ingestParity(pkt Packet, now time.Time) {
	h := pkt.Header
	pg, err := ParseParity(pkt.Payload)
	if err != nil {
		r.counters.PacketCorrupt()
		return
	}
	r.fec.ParityReceived()
	if h.FrameIndex < r.nextFrame {
		r.fec.ParityWasted() // frame already resolved; nothing to repair
		return
	}
	if h.FrameIndex >= uint32(len(r.frames))+r.nextFrame+1<<20 {
		r.counters.PacketCorrupt()
		return
	}
	pf := r.frames[h.FrameIndex]
	if pf == nil {
		// Parity alone carries the frame geometry: set up reassembly state
		// even when every data packet is still in flight (or lost).
		pf = &partialFrame{
			index:     h.FrameIndex,
			ftype:     h.FrameType,
			firstSeq:  pg.FrameFirstSeq,
			frags:     make([][]byte, pg.FragCount),
			firstSeen: now,
		}
		r.frames[h.FrameIndex] = pf
	}
	if int(pg.FragCount) != len(pf.frags) || pf.firstSeq != pg.FrameFirstSeq || pf.ftype != h.FrameType {
		r.counters.PacketCorrupt() // inconsistent with sibling fragments
		return
	}
	for _, g := range pf.parity {
		if g.BaseSeq == pg.BaseSeq && g.Stride == pg.Stride {
			r.counters.PacketDuplicate()
			return
		}
	}
	// Repair XORs arrivals into the body in place: keep a private copy so a
	// duplicated parity packet (same backing bytes) stays parseable.
	pg.Body = append([]byte(nil), pg.Body...)
	pf.parity = append(pf.parity, &pg)
	r.tryRepair(pf)
	r.advance(now)
}

// tryRepair runs every pending parity group of pf, dropping the spent
// ones (repaired a member, or had nothing to repair).
func (r *Receiver) tryRepair(pf *partialFrame) {
	kept := pf.parity[:0]
	for _, g := range pf.parity {
		if r.repairGroup(pf, g) {
			kept = append(kept, g)
		}
	}
	for i := len(kept); i < len(pf.parity); i++ {
		pf.parity[i] = nil
	}
	pf.parity = kept
}

// repairGroup reconstructs the group's single missing member if exactly
// one is missing. Returns true when the group is still pending (≥ 2
// members missing — the NACK path keeps chasing them), false when spent.
func (r *Receiver) repairGroup(pf *partialFrame, g *ParityGroup) bool {
	miss := -1
	for i := 0; i < int(g.Count); i++ {
		frag := int(g.BaseSeq-pf.firstSeq) + i*int(g.Stride)
		if pf.frags[frag] == nil {
			if miss >= 0 {
				return true // two or more missing: XOR cannot resolve yet
			}
			miss = frag
		}
	}
	if miss < 0 {
		r.fec.ParityWasted() // every member arrived on its own
		return false
	}
	// XOR the present members into the body: what remains is the missing
	// member's [len16 || payload] record.
	for i := 0; i < int(g.Count); i++ {
		frag := int(g.BaseSeq-pf.firstSeq) + i*int(g.Stride)
		if frag != miss {
			xorRecord(g.Body, pf.frags[frag])
		}
	}
	plen := int(g.Body[0]) | int(g.Body[1])<<8
	if plen > len(g.Body)-2 {
		r.counters.PacketCorrupt() // parity/data disagree on geometry
		return false
	}
	seq := pf.firstSeq + uint32(miss)
	if ls, open := r.missing[seq]; open {
		if ls.attempts >= 1 {
			r.counters.PacketRecovered()
		}
		delete(r.missing, seq)
	} else if seq >= r.nextSeq {
		// Repaired before any later arrival revealed the loss: remember so
		// the gap detector won't re-open it.
		r.prehealed[seq] = struct{}{}
	}
	pf.frags[miss] = g.Body[2 : 2+plen]
	pf.have++
	r.fec.ParityRepair()
	return false
}

// findFrame returns the pending frame whose sequence range contains seq.
func (r *Receiver) findFrame(seq uint32) *partialFrame {
	for _, pf := range r.frames {
		if seq >= pf.firstSeq && seq < pf.firstSeq+uint32(len(pf.frags)) {
			return pf
		}
	}
	return nil
}

// retryBudget returns the NACK retry budget for one missing seq: deep for
// I-frame (and unattributed — possibly-I) packets, shallow for P.
func (r *Receiver) retryBudget(seq uint32) int {
	if pf := r.findFrame(seq); pf != nil && pf.ftype == codec.PFrame {
		return r.cfg.PFrameRetries
	}
	return r.cfg.IFrameRetries
}

// checkTimeouts re-NACKs every missing seq whose deadline passed (force
// treats all as due) with exponential backoff, and gives up on seqs whose
// retry budget is exhausted.
func (r *Receiver) checkTimeouts(now time.Time, force bool) {
	var due []uint32
	for s, ls := range r.missing {
		if force || !now.Before(ls.deadline) {
			due = append(due, s)
		}
	}
	if len(due) == 0 {
		return
	}
	// Sorted processing keeps the NACK (and so the retransmit) order
	// deterministic across runs.
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	var nack []uint32
	for _, s := range due {
		ls := r.missing[s]
		if ls == nil {
			continue // healed by a retransmit earlier in this pass
		}
		if ls.attempts >= r.retryBudget(s) {
			r.giveUp(s)
			continue
		}
		ls.attempts++
		if ls.attempts == 1 {
			// First NACK timeout expired without the packet arriving: count
			// it lost. Reorders that heal inside the timeout never get here.
			r.counters.PacketLost()
		}
		ls.deadline = now.Add(r.cfg.NACKTimeout << uint(ls.attempts))
		nack = append(nack, s)
	}
	if len(nack) > 0 {
		r.sendControl(Control{Kind: ControlNACK, StreamID: r.streamID, Seqs: nack})
		r.counters.NACKSent(len(nack))
	}
	r.advance(now)
}

// giveUp abandons one missing seq: its frame (if known) is marked failed;
// unattributed seqs mean whole frames vanished, which the index-gap logic
// in advance resolves via gapLost.
func (r *Receiver) giveUp(seq uint32) {
	delete(r.missing, seq)
	r.counters.NACKGiveUp()
	if pf := r.findFrame(seq); pf != nil {
		pf.failed = true
	} else {
		r.gapLost = true
	}
}

// minPending returns the smallest pending frame index.
func (r *Receiver) minPending() (uint32, bool) {
	var best uint32
	found := false
	for idx := range r.frames {
		if !found || idx < best {
			best, found = idx, true
		}
	}
	return best, found
}

// missingBefore reports whether any missing seq precedes firstSeq.
func (r *Receiver) missingBefore(firstSeq uint32) bool {
	for s := range r.missing {
		if s < firstSeq {
			return true
		}
	}
	return false
}

// advance delivers frames in order while the head of line is resolvable:
// complete frames decode, failed frames conceal or skip, and index gaps
// with fully-accounted sequence numbers resolve as sender-dropped or lost.
// Each pass ends with a feedback check (maybeFeedback).
func (r *Receiver) advance(now time.Time) {
	r.deliver(now)
	r.maybeFeedback()
}

func (r *Receiver) deliver(now time.Time) {
	for {
		if pf, ok := r.frames[r.nextFrame]; ok {
			if pf.failed {
				r.resolveFailed(pf, now)
			} else if pf.have == len(pf.frags) {
				r.decodeAndEmit(pf, now)
			} else {
				return // head of line still recovering
			}
			r.nextFrame++
			continue
		}
		// Frame index never seen. If no missing seq precedes the next
		// pending frame, the gap's seqs are all accounted for: the sender
		// never sent this index (backpressure drop — always a P-frame) or
		// its packets were given up on (gapLost).
		next, ok := r.minPending()
		if !ok || next <= r.nextFrame {
			return
		}
		if r.missingBefore(r.frames[next].firstSeq) {
			return // the gap may still fill in via retransmits
		}
		if r.gapLost {
			// Unknown frame type: the lost frame may have been the GOP
			// reference — recover conservatively.
			r.loseReference(r.nextFrame)
			r.emit(DecodedFrame{Index: int(r.nextFrame), Type: codec.PFrame,
				Status: FrameSkipped, Err: ErrFrameLost})
			r.counters.FrameSkipped()
		} else {
			r.emit(DecodedFrame{Index: int(r.nextFrame), Type: codec.PFrame,
				Status: FrameSkipped, Err: ErrSenderDropped})
			r.counters.FrameSkipped()
		}
		r.nextFrame++
		if r.nextFrame == next {
			r.gapLost = false
		}
	}
}

// maybeFeedback emits a ControlFeedback report once FeedbackEvery frames
// have resolved since the previous report. Runs on the transport goroutine
// after the in-order delivery loop, so a report reflects a consistent
// prefix of the stream.
func (r *Receiver) maybeFeedback() {
	if r.cfg.FeedbackEvery <= 0 || r.cfg.SendControl == nil {
		return
	}
	cur := r.counters.Snapshot()
	if cur.Frames()-r.fbBase.Frames() < int64(r.cfg.FeedbackEvery) {
		return
	}
	// Net recoveries (parity repairs and late retransmits that already
	// counted lost) out of the window's losses: a healed packet must not
	// keep inflating the controller's loss signal. Clamped at zero — a
	// recovery can land a window after its loss was reported.
	lost := cur.PacketsLost - r.fbBase.PacketsLost
	if rec := cur.PacketsRecovered - r.fbBase.PacketsRecovered; rec < lost {
		lost -= rec
	} else {
		lost = 0
	}
	r.fbReport++
	fb := Feedback{
		Report:       r.fbReport,
		HighestFrame: r.nextFrame,
		Received:     uint32(cur.PacketsReceived - r.fbBase.PacketsReceived),
		Lost:         uint32(lost),
		NACKs:        uint32(cur.NACKSeqs - r.fbBase.NACKSeqs),
		Decoded:      uint32(cur.FramesDecoded - r.fbBase.FramesDecoded),
		Concealed:    uint32(cur.FramesConcealed - r.fbBase.FramesConcealed),
		Skipped:      uint32(cur.FramesSkipped - r.fbBase.FramesSkipped),
	}
	r.fbBase = cur
	r.sendControl(Control{Kind: ControlFeedback, StreamID: r.streamID,
		FrameIndex: r.nextFrame, Feedback: fb})
}

// resolveFailed conceals or skips a frame whose retry budget ran out.
func (r *Receiver) resolveFailed(pf *partialFrame, now time.Time) {
	r.forgetFrame(pf)
	switch {
	case pf.ftype == codec.IFrame:
		// The GOP reference is gone: ask the sender for a fresh I-frame
		// and skip until it arrives.
		r.loseReference(pf.index)
		r.emit(DecodedFrame{Index: int(pf.index), Type: pf.ftype, Status: FrameSkipped,
			Err: ErrFrameLost, Delay: now.Sub(pf.firstSeen)})
		r.counters.FrameSkipped()
	case !r.refValid:
		r.emit(DecodedFrame{Index: int(pf.index), Type: pf.ftype, Status: FrameSkipped,
			Err: codec.ErrMissingReference, Delay: now.Sub(pf.firstSeen)})
		r.counters.FrameSkipped()
	default:
		// Lost P-frame with a healthy GOP: conceal by repeating the last
		// good frame; later P-frames still predict from the intact I.
		r.emit(DecodedFrame{Index: int(pf.index), Type: pf.ftype, Status: FrameConcealed,
			Cloud: r.lastCloud, Err: ErrFrameLost, Delay: now.Sub(pf.firstSeen)})
		r.counters.FrameConcealed()
	}
}

// decodeAndEmit decodes a fully reassembled frame.
func (r *Receiver) decodeAndEmit(pf *partialFrame, now time.Time) {
	r.forgetFrame(pf)
	size := 0
	for _, f := range pf.frags {
		size += len(f)
	}
	payload := make([]byte, 0, size)
	for _, f := range pf.frags {
		payload = append(payload, f...)
	}
	ef, err := codec.ReadFrameFrom(bytes.NewReader(payload))
	var cloud *geom.VoxelCloud
	if err == nil {
		cloud, err = r.dec.DecodeFrame(ef)
	}
	delay := now.Sub(pf.firstSeen)
	switch {
	case err == nil:
		if pf.ftype == codec.IFrame {
			r.refValid = true
			r.refreshPending = false
		}
		r.lastCloud = cloud
		r.emit(DecodedFrame{Index: int(pf.index), Type: pf.ftype, Status: FrameDecoded,
			Cloud: cloud, Delay: delay})
		r.counters.FrameDecoded()
	case errors.Is(err, codec.ErrMissingReference):
		// P-frame arrived intact but its I was skipped.
		r.loseReference(pf.index)
		r.emit(DecodedFrame{Index: int(pf.index), Type: pf.ftype, Status: FrameSkipped,
			Err: err, Delay: delay})
		r.counters.FrameSkipped()
	case pf.ftype == codec.IFrame:
		// Corrupt I despite per-packet checksums (defense in depth).
		r.loseReference(pf.index)
		r.emit(DecodedFrame{Index: int(pf.index), Type: pf.ftype, Status: FrameSkipped,
			Err: err, Delay: delay})
		r.counters.FrameSkipped()
	default:
		r.emit(DecodedFrame{Index: int(pf.index), Type: pf.ftype, Status: FrameConcealed,
			Cloud: r.lastCloud, Err: err, Delay: delay})
		r.counters.FrameConcealed()
	}
}

// forgetFrame drops a frame's reassembly state, including any still-missing
// seqs in its range (late copies will count as duplicates).
func (r *Receiver) forgetFrame(pf *partialFrame) {
	delete(r.frames, pf.index)
	for i := range pf.frags {
		delete(r.missing, pf.firstSeq+uint32(i))
		delete(r.prehealed, pf.firstSeq+uint32(i))
	}
	for range pf.parity {
		r.fec.ParityWasted() // still pending at resolution: bought nothing
	}
	pf.parity = nil
}

// loseReference records GOP reference loss: the decoder resets, P-frames
// skip until the next I, and (once per loss) a refresh request goes back
// to the sender.
func (r *Receiver) loseReference(frameIndex uint32) {
	r.refValid = false
	r.dec.Reset()
	if r.refreshPending {
		return
	}
	r.refreshPending = true
	r.counters.RefreshRequest()
	r.sendControl(Control{Kind: ControlRefresh, StreamID: r.streamID, FrameIndex: frameIndex})
}

func (r *Receiver) sendControl(c Control) {
	if r.cfg.SendControl == nil {
		return
	}
	if err := r.cfg.SendControl(c); err != nil && r.err == nil {
		r.err = err
	}
}

func (r *Receiver) emit(f DecodedFrame) {
	if r.cfg.OnFrame != nil {
		r.cfg.OnFrame(f)
	}
}

// Finish ends the stream: totalFrames is the sender's submitted frame
// count. Outstanding gaps get a final forced NACK round per remaining
// retry, then everything unrecovered is concealed/skipped, including tail
// frames that never arrived at all. Returns the first control error.
func (r *Receiver) Finish(totalFrames int) error {
	if r.finished {
		return r.err
	}
	r.busy = true
	defer func() { r.busy = false; r.finished = true }()
	r.drain()
	now := r.cfg.Now()

	// Declare the invisible tail: fragments of partially received frames
	// whose loss no later packet revealed.
	for _, pf := range r.frames {
		for i := range pf.frags {
			seq := pf.firstSeq + uint32(i)
			if pf.frags[i] == nil && seq >= r.nextSeq {
				r.missing[seq] = &lossState{deadline: now}
			}
		}
		if end := pf.firstSeq + uint32(len(pf.frags)); end > r.nextSeq {
			r.nextSeq = end
		}
	}

	// Final recovery rounds: force every missing seq due, let synchronous
	// retransmissions land, until the budget gives out or nothing is left.
	for i := 0; i <= r.cfg.IFrameRetries && len(r.missing) > 0; i++ {
		r.checkTimeouts(now, true)
		r.drain()
	}
	var rest []uint32
	for s := range r.missing {
		rest = append(rest, s)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, s := range rest {
		r.giveUp(s)
	}
	r.advance(now)
	r.drain()

	// Frames that never produced a single packet and have no successor to
	// reveal them: lost tail.
	for r.nextFrame < uint32(totalFrames) {
		if pf, ok := r.frames[r.nextFrame]; ok {
			pf.failed = true
			r.advance(now)
			continue
		}
		r.refValid = false
		r.emit(DecodedFrame{Index: int(r.nextFrame), Type: codec.PFrame,
			Status: FrameSkipped, Err: ErrFrameLost})
		r.counters.FrameSkipped()
		r.nextFrame++
	}
	return r.err
}
