package main

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/trace"
	"repro/internal/viewport"
)

// runViewport evaluates ViVo-style viewpoint-dependent transmission
// (related work [24]) composed with the proposed intra attribute codec:
// blocks outside the viewer's field of view are neither encoded nor sent.
func runViewport(cfg benchConfig) error {
	spec := cfg.Videos[0]
	frames, err := loadFrames(spec, cfg.Scale, 1)
	if err != nil {
		return err
	}
	sorted := sortedVoxels(frames[0])
	segments := max(8, int(30000*cfg.Scale))

	tb := trace.NewTable(
		fmt.Sprintf("ViVo-style viewport culling + proposed intra codec, %s (%d pts)", spec.Name, len(sorted)),
		"FOV", "visible pts", "culled", "attr bytes", "attr sim ms")
	for _, fov := range []float64{360, 120, 60, 30} {
		cam := viewport.DefaultCamera(1 << frames[0].Depth)
		cam.FOVDegrees = fov
		kept, _, res := viewport.Cull(sorted, segments, cam)
		colors := make([]geom.Color, len(kept))
		for i, v := range kept {
			colors[i] = v.C
		}
		dev := edgesim.NewXavier(edgesim.Mode15W)
		p := attr.DefaultParams()
		p.Segments = segments
		data, err := attr.Encode(dev, colors, p)
		if err != nil {
			return err
		}
		tb.Row(fmt.Sprintf("%.0f°", fov), res.VisiblePoints,
			fmt.Sprintf("%.0f%%", res.CulledFraction()*100),
			len(data), dev.SimTime().Seconds()*1000)
	}
	emit(tb)
	fmt.Println("narrower views encode and ship proportionally less — the ViVo observation,")
	fmt.Println("composing for free with the proposed Morton-block pipelines.")
	return nil
}
