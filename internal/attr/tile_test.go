package attr

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randColors(seed int64, n int) []geom.Color {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Color, n)
	for i := range out {
		// Smooth-ish field with noise, like Morton-sorted scans.
		base := uint8(128 + 100*ri(rng, i))
		out[i] = geom.Color{
			R: base + uint8(rng.Intn(17)),
			G: base/2 + uint8(rng.Intn(9)),
			B: 255 - base + uint8(rng.Intn(5)),
		}
	}
	return out
}

func ri(rng *rand.Rand, i int) float64 { return float64(i%97)/97 - 0.5 + rng.Float64()*0.02 }

// TestTileIntraDecodeExact pins the tiled attribute invariant: splitting the
// frame's segments into contiguous tile windows and coding each tile
// independently reproduces exactly the untiled decoder's output — per
// segment the Base+Deltas math is identical; only the framing differs.
func TestTileIntraDecodeExact(t *testing.T) {
	d := dev()
	for _, tc := range []struct {
		n     int
		p     Params
		tiles int
	}{
		{5000, Params{Segments: 64, QStep: 4, Layers: 2}, 4},
		{5000, Params{Segments: 64, QStep: 4, Layers: 2, YCoCg: true}, 3},
		{5000, Params{Segments: 64, QStep: 1, Layers: 1}, 8},
		{5000, Params{Segments: 64, QStep: 8, Layers: 2, Entropy: true}, 2},
		{37, Params{Segments: 100, QStep: 4, Layers: 2}, 5}, // n < Segments
		{64, Params{Segments: 64, QStep: 2, Layers: 2}, 64}, // one point per tile
	} {
		colors := randColors(int64(tc.n), tc.n)
		full, err := Encode(d, colors, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Decode(d, full)
		if err != nil {
			t.Fatal(err)
		}

		p := tc.p.normalized()
		gbounds := SegmentBounds(tc.n, p.Segments)
		nSeg := len(gbounds) - 1
		cuts := SegmentBounds(nSeg, tc.tiles)
		var sc TileScratch
		got := make([]geom.Color, 0, tc.n)
		for ti := 0; ti+1 < len(cuts); ti++ {
			segLo, segHi := cuts[ti], cuts[ti+1]
			if segLo == segHi {
				continue
			}
			lo, hi := gbounds[segLo], gbounds[segHi]
			recon := make([]geom.Color, hi-lo)
			stream, err := EncodeIntraTile(colors[lo:hi], tc.p, tc.n, gbounds, segLo, segHi-segLo, &sc, recon)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeIntraTile(stream)
			if err != nil {
				t.Fatal(err)
			}
			if len(dec) != hi-lo {
				t.Fatalf("n=%d tiles=%d tile %d: decoded %d colours, want %d", tc.n, tc.tiles, ti, len(dec), hi-lo)
			}
			for i := range dec {
				if dec[i] != recon[i] {
					t.Fatalf("n=%d tiles=%d tile %d: recon differs from decode at %d: %v vs %v", tc.n, tc.tiles, ti, i, recon[i], dec[i])
				}
			}
			got = append(got, dec...)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d tiles=%d: reassembled %d colours, want %d", tc.n, tc.tiles, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d tiles=%d: colour %d differs: tiled %v untiled %v", tc.n, tc.tiles, i, got[i], want[i])
			}
		}
	}
}

func TestTileIntraErrors(t *testing.T) {
	var sc TileScratch
	colors := randColors(1, 100)
	gb := SegmentBounds(100, 10)
	p := Params{Segments: 10, QStep: 4, Layers: 2}
	if _, err := EncodeIntraTile(colors[:5], p, 100, gb, 0, 2, &sc, nil); err == nil {
		t.Fatal("size mismatch must error")
	}
	if _, err := EncodeIntraTile(colors, p, 100, gb, 8, 3, &sc, nil); err == nil {
		t.Fatal("window past end must error")
	}
	if _, err := EncodeIntraTile(colors[:20], p, 100, gb, 0, 2, &sc, colors[:3]); err == nil {
		t.Fatal("bad recon length must error")
	}
	if _, err := DecodeIntraTile(nil); err == nil {
		t.Fatal("empty stream must error")
	}
	if _, err := DecodeIntraTile([]byte{7, 1, 2}); err == nil {
		t.Fatal("bad flag byte must error")
	}
	// Valid tile stream, then truncate: every prefix must fail cleanly.
	stream, err := EncodeIntraTile(colors[:20], p, 100, gb, 0, 2, &sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(stream); cut++ {
		if _, err := DecodeIntraTile(stream[:cut]); err == nil {
			t.Fatalf("truncated stream (len %d) must error", cut)
		}
	}
}
