package dataset

import (
	"testing"

	"repro/internal/geom"
)

func TestSparsePresetsResolve(t *testing.T) {
	for _, p := range SparsePresets() {
		s, err := SpecByName(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !s.LiDAR {
			t.Fatalf("%s: LiDAR flag not set", p.Name)
		}
	}
	if _, err := SpecByName("velodyne-unknown"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestLiDARFrameDeterministicAndOnTarget(t *testing.T) {
	spec, err := SpecByName("kitti-sparse")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(spec, 0.1)
	a, err := g.Frame(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Frame(3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("nondeterministic frame: %d vs %d voxels", a.Len(), b.Len())
	}
	for i := range a.Voxels {
		if a.Voxels[i] != b.Voxels[i] {
			t.Fatalf("voxel %d differs between identical generations", i)
		}
	}
	target := g.TargetPoints()
	if a.Len() < target/2 || a.Len() > target*2 {
		t.Fatalf("frame has %d voxels, want within 2x of target %d", a.Len(), target)
	}
	next, err := g.Frame(4)
	if err != nil {
		t.Fatal(err)
	}
	if next.Len() == 0 {
		t.Fatal("ego-motion produced an empty frame")
	}
}

// blockOccupancy measures the mean point count per occupied 64^3 macro-block
// — the "how crowded are occupied regions" statistic that separates the
// dense photogrammetry regime from automotive scans.
func blockOccupancy(vc *geom.VoxelCloud) float64 {
	blocks := map[[3]uint32]int{}
	for _, v := range vc.Voxels {
		blocks[[3]uint32{v.X >> 6, v.Y >> 6, v.Z >> 6}]++
	}
	if len(blocks) == 0 {
		return 0
	}
	return float64(vc.Len()) / float64(len(blocks))
}

// TestLiDARRegimeIsSparse pins the point of the preset: at matched scale the
// LiDAR frames occupy their blocks at least 10x more sparsely than the dense
// redandblack regime (the SparsePCGC KITTI/Ford contrast).
func TestLiDARRegimeIsSparse(t *testing.T) {
	dense, err := SpecByName("redandblack")
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := SpecByName("kitti-sparse")
	if err != nil {
		t.Fatal(err)
	}
	df, err := NewGenerator(dense, 0.1).Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NewGenerator(sparse, 0.1).Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	do, so := blockOccupancy(df), blockOccupancy(sf)
	if so == 0 || do == 0 {
		t.Fatalf("degenerate occupancy: dense=%f sparse=%f", do, so)
	}
	if ratio := do / so; ratio < 10 {
		t.Fatalf("dense/sparse occupancy ratio %.1f, want >= 10 (dense %.1f pts/block, sparse %.1f pts/block)", ratio, do, so)
	}
}
