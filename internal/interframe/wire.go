package interframe

import (
	"bytes"
	"encoding/binary"
	"io"
	"slices"
)

// Small wire helpers shared by the inter-frame stream: varints, medians,
// quantization, and per-block fixed-width residual packing (the same
// GPU-friendly format internal/attr uses, duplicated in miniature here to
// keep the block payloads self-contained).

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func writeVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func readVarint(r *bytes.Reader) (int64, error) {
	return binary.ReadVarint(r)
}

func appendVarint(dst []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func io_ReadFull(r *bytes.Reader, p []byte) (int, error) {
	return io.ReadFull(r, p)
}

// medianI32 returns the lower median of vs via the caller's reusable copy
// buffer (vs is not modified).
func medianI32(vs []int32, scratch *[]int32) int32 {
	if len(vs) == 0 {
		return 0
	}
	if scratch == nil {
		scratch = new([]int32)
	}
	s := append((*scratch)[:0], vs...)
	*scratch = s
	slices.Sort(s)
	return s[(len(s)-1)/2]
}

func quantizeI32(v, q int32) int32 {
	if q <= 1 {
		return v
	}
	if v >= 0 {
		return (v + q/2) / q
	}
	return -((-v + q/2) / q)
}

func zig32(v int32) uint32   { return uint32(v<<1) ^ uint32(v>>31) }
func unzig32(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }

// appendResiduals appends a width byte followed by fixed-width zig-zag
// codes.
func appendResiduals(dst []byte, vs []int32) []byte {
	var maxZ uint32
	for _, v := range vs {
		if z := zig32(v); z > maxZ {
			maxZ = z
		}
	}
	w := uint(0)
	for maxZ != 0 {
		w++
		maxZ >>= 1
	}
	dst = append(dst, byte(w))
	var bits uint64
	var n uint
	for _, v := range vs {
		bits |= (uint64(zig32(v)) & (1<<w - 1)) << n
		n += w
		for n >= 8 {
			dst = append(dst, byte(bits))
			bits >>= 8
			n -= 8
		}
	}
	if n > 0 {
		dst = append(dst, byte(bits))
	}
	return dst
}

// unpackResiduals reads count fixed-width residuals.
func unpackResiduals(r *bytes.Reader, count int) ([]int32, error) {
	wb, err := r.ReadByte()
	if err != nil {
		return nil, ErrBadStream
	}
	w := uint(wb)
	if w > 33 {
		return nil, ErrBadStream
	}
	nbytes := (uint(count)*w + 7) / 8
	raw := make([]byte, nbytes)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, ErrBadStream
	}
	out := make([]int32, count)
	if w == 0 {
		return out, nil
	}
	var bits uint64
	var n uint
	pos := 0
	for i := range out {
		for n < w {
			bits |= uint64(raw[pos]) << n
			pos++
			n += 8
		}
		out[i] = unzig32(uint32(bits & (1<<w - 1)))
		bits >>= w
		n -= w
	}
	return out, nil
}
