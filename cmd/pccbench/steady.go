package main

// Steady-state encode throughput benchmark and regression gate.
//
// `pccbench bench` measures the real-execution encode hot path — wall-clock
// frames/s, Mpts/s, output MB/s and allocations/frame — over a fixed
// 60-frame GOP workload, independent of the -scale/-frames flags so the
// numbers stay comparable across runs and machines. With -benchout it
// writes the machine-readable BENCH_3.json tracked at the repo root; with
// -baseline it compares against a previous BENCH_3.json and fails (exit 1)
// when frames/s or allocs/frame regress beyond -gate (default 20%).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/edgesim"
	"repro/internal/geom"
)

// benchWorkload pins the measured workload: redandblack at 5% scale,
// 60 frames, paper-scale segment counts (matching BenchmarkEncodeSteadyState).
const (
	benchVideo    = "redandblack"
	benchScale    = 0.05
	benchFrames   = 60
	benchSegIntra = 1500
	benchSegInter = 2500
)

// BenchResult is one design's steady-state measurement.
type BenchResult struct {
	FPS            float64 `json:"fps"`
	MptsPerS       float64 `json:"mpts_per_s"`
	MBPerS         float64 `json:"mb_per_s"`
	AllocsPerFrame float64 `json:"allocs_per_frame"`
}

// BenchFile is the BENCH_3.json schema.
type BenchFile struct {
	Benchmark  string  `json:"benchmark"`
	Video      string  `json:"video"`
	Scale      float64 `json:"scale"`
	Frames     int     `json:"frames"`
	GoMaxProcs int     `json:"gomaxprocs"`
	// Seed records the pre-optimization numbers (PR 3 starting point) for
	// the speedup table; Designs holds the current measurements.
	Seed    map[string]BenchResult `json:"seed,omitempty"`
	Designs map[string]BenchResult `json:"designs"`
}

// seedNumbers are the measured pre-optimization figures (same workload,
// same machine class) kept for the README speedup table. MBPerS is zero
// here because the seed run predates byte accounting; runBench derives it
// from the current run's bytes/frame — the output stream is golden-pinned
// byte-identical, so the seed produced exactly the same bytes per frame.
var seedNumbers = map[string]BenchResult{
	codec.IntraOnly.String():    {FPS: 46.46, MptsPerS: 1.72, AllocsPerFrame: 45301},
	codec.IntraInterV1.String(): {FPS: 36.76, MptsPerS: 1.36, AllocsPerFrame: 36305},
}

func benchFrameSet() ([]*geom.VoxelCloud, error) {
	spec, err := dataset.SpecByName(benchVideo)
	if err != nil {
		return nil, err
	}
	g := dataset.NewGenerator(spec, benchScale)
	frames := make([]*geom.VoxelCloud, benchFrames)
	for i := range frames {
		if frames[i], err = g.Frame(i % spec.Frames); err != nil {
			return nil, err
		}
	}
	return frames, nil
}

func benchOptions(d codec.Design) codec.Options {
	o := codec.OptionsFor(d)
	o.IntraAttr.Segments = benchSegIntra
	o.Inter.Segments = benchSegInter
	return o
}

// benchDesign measures one design: a full warmup session brings the arenas
// to steady state, then sessions run until at least minWall of timed work.
// bytesPerFrame reports the measured compressed output size per frame.
func benchDesign(d codec.Design, frames []*geom.VoxelCloud) (res BenchResult, bytesPerFrame float64, err error) {
	return benchDesignOpts(benchOptions(d), frames)
}

// benchDesignOpts is benchDesign for an explicit option set (ablation and
// sparse-regime rows in the hotpath benchmark reuse the same measurement
// discipline with non-default options).
func benchDesignOpts(opts codec.Options, frames []*geom.VoxelCloud) (res BenchResult, bytesPerFrame float64, err error) {
	enc := codec.NewEncoder(edgesim.NewXavier(edgesim.Mode15W), opts)
	runSession := func() (pts, bytes int64, err error) {
		for _, f := range frames {
			frame, st, err := enc.EncodeFrame(f)
			if err != nil {
				return 0, 0, err
			}
			pts += int64(st.Points)
			bytes += frame.Size()
		}
		return pts, bytes, nil
	}
	if _, _, err := runSession(); err != nil { // warmup
		return BenchResult{}, 0, err
	}

	// Allocation pass: one session bracketed by mallocs counters.
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	if _, _, err := runSession(); err != nil {
		return BenchResult{}, 0, err
	}
	runtime.ReadMemStats(&m1)
	allocsPerFrame := float64(m1.Mallocs-m0.Mallocs) / float64(benchFrames)

	// Throughput pass: repeat sessions until enough timed wall clock.
	const minWall = 2 * time.Second
	var pts, bytes, nframes int64
	start := time.Now()
	for time.Since(start) < minWall {
		p, b, err := runSession()
		if err != nil {
			return BenchResult{}, 0, err
		}
		pts += p
		bytes += b
		nframes += benchFrames
	}
	sec := time.Since(start).Seconds()
	return BenchResult{
		FPS:            round2(float64(nframes) / sec),
		MptsPerS:       round3(float64(pts) / sec / 1e6),
		MBPerS:         round2(float64(bytes) / sec / 1e6),
		AllocsPerFrame: round2(allocsPerFrame),
	}, float64(bytes) / float64(nframes), nil
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }

// runBench is the `bench` experiment entry point.
func runBench(cfg benchConfig) error {
	frames, err := benchFrameSet()
	if err != nil {
		return err
	}
	out := BenchFile{
		Benchmark:  "steady-state-encode",
		Video:      benchVideo,
		Scale:      benchScale,
		Frames:     benchFrames,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       make(map[string]BenchResult, len(seedNumbers)),
		Designs:    make(map[string]BenchResult),
	}
	fmt.Printf("steady-state encode: %s @ %.2f, %d-frame GOP sessions, GOMAXPROCS=%d\n\n",
		benchVideo, benchScale, benchFrames, out.GoMaxProcs)
	fmt.Printf("%-16s %10s %10s %10s %14s\n", "design", "frames/s", "Mpts/s", "MB/s", "allocs/frame")
	for _, d := range []codec.Design{codec.IntraOnly, codec.IntraInterV1} {
		r, bytesPerFrame, err := benchDesign(d, frames)
		if err != nil {
			return err
		}
		out.Designs[d.String()] = r
		fmt.Printf("%-16s %10.2f %10.3f %10.2f %14.1f\n", d, r.FPS, r.MptsPerS, r.MBPerS, r.AllocsPerFrame)
		if s, ok := seedNumbers[d.String()]; ok {
			// The output stream is golden-pinned byte-identical across the
			// optimization, so the seed's MB/s is its frames/s times the
			// bytes/frame measured now.
			s.MBPerS = round2(s.FPS * bytesPerFrame / 1e6)
			out.Seed[d.String()] = s
			fmt.Printf("%-16s %9.2fx %30s %13.0fx\n", "  vs seed",
				r.FPS/s.FPS, "", s.AllocsPerFrame/r.AllocsPerFrame)
		}
	}

	if *flagBenchOut != "" {
		if err := writeBenchFile(*flagBenchOut, out); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *flagBenchOut)
	}
	if *flagBaseline != "" {
		return gateAgainst(*flagBaseline, out, *flagGate)
	}
	return nil
}

func writeBenchFile(path string, f BenchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gateAgainst fails when any design's frames/s fell, or allocs/frame rose,
// more than tol (fraction) beyond the baseline file's figures.
func gateAgainst(path string, cur BenchFile, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench gate: %w", err)
	}
	var base BenchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench gate: %s: %w", path, err)
	}
	fmt.Printf("\nregression gate vs %s (tolerance %.0f%%):\n", path, tol*100)
	var failed bool
	for name, b := range base.Designs {
		c, ok := cur.Designs[name]
		if !ok {
			fmt.Printf("  %-16s MISSING from current run\n", name)
			failed = true
			continue
		}
		fpsFloor := b.FPS * (1 - tol)
		allocCap := b.AllocsPerFrame * (1 + tol)
		status := "ok"
		if c.FPS < fpsFloor || c.AllocsPerFrame > allocCap {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("  %-16s fps %8.2f (floor %8.2f)  allocs/frame %8.1f (cap %8.1f)  %s\n",
			name, c.FPS, fpsFloor, c.AllocsPerFrame, allocCap, status)
	}
	if failed {
		return fmt.Errorf("bench gate: steady-state throughput regressed beyond %.0f%% tolerance", tol*100)
	}
	fmt.Println("  gate passed")
	return nil
}
