// Package paroctree implements the paper's CONTRIBUTION geometry pipeline
// (Sec. IV-B): Morton-code generation → data-parallel sort → level-wise
// parallel octree construction (Karras [31] / PCL-GPU [64] family) →
// parallel occupy-bit post-processing (paper Algorithm 1).
//
// The key idea: once points are sorted by Morton code, the topology of the
// whole octree is implied by the code sequence — a node exists at depth d
// wherever a new length-3d prefix begins — so every level can be built with
// independent per-element work (flag, scan, compact) instead of the
// baseline's point-by-point tree updates. The construction emits the
// relationship arrays the paper shows in Fig. 5 (code array + parent array),
// and Algorithm 1 folds them into per-node occupy bits.
//
// Every stage runs as a kernel on an edgesim.Device, so the latency/energy
// ledger reflects the paper's GPU pipeline.
package paroctree

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/morton"
)

// Calibrated per-item kernel costs (ops / bytes). These reproduce the
// paper's stage latencies for ~0.8 M-point frames on the Xavier model:
// Morton generation ≈0.5 ms, full geometry pipeline ≈42 ms (Sec. VI-C).
var (
	costMortonGen  = edgesim.Cost{OpsPerItem: 12, BytesPerItem: 16}
	costSortPass   = edgesim.Cost{OpsPerItem: 69, BytesPerItem: 32} // per item per pass
	costDedup      = edgesim.Cost{OpsPerItem: 9, BytesPerItem: 16}
	costLevelBuild = edgesim.Cost{OpsPerItem: 289, BytesPerItem: 24} // per child node
	costOccupy     = edgesim.Cost{OpsPerItem: 46, BytesPerItem: 9}   // per non-root node
	costPack       = edgesim.Cost{OpsPerItem: 35, BytesPerItem: 2}   // per node
)

// Tree is the array-form octree the parallel construction produces.
// Nodes are stored level by level: depth 0 (the root, code 0) first, leaves
// (depth Depth) last; within a level nodes are in ascending Morton order.
type Tree struct {
	Depth uint
	// Codes holds each node's Morton code *at its own depth* (i.e. the
	// leaf code right-shifted by 3*(Depth-depth)).
	Codes []morton.Code
	// Parent[i] is the index of node i's parent in Codes; -1 for the root.
	Parent []int32
	// LevelOffsets[d] is the index of the first node of depth d;
	// LevelOffsets[Depth+1] == len(Codes).
	LevelOffsets []int
	// Occupy[i] is the 8-bit child mask of node i (0 for leaves).
	Occupy []byte
	// NumLeaves is the number of distinct occupied voxels.
	NumLeaves int
}

// LevelNodes returns the node count at each depth.
func (t *Tree) LevelNodes() []int {
	out := make([]int, t.Depth+1)
	for d := uint(0); d <= t.Depth; d++ {
		out[d] = t.LevelOffsets[d+1] - t.LevelOffsets[d]
	}
	return out
}

// Leaves returns the slice of leaf codes (ascending Morton order).
func (t *Tree) Leaves() []morton.Code {
	return t.Codes[t.LevelOffsets[t.Depth]:]
}

// ErrNoPoints is returned when building from an empty cloud.
var ErrNoPoints = errors.New("paroctree: no points")

// BuildResult bundles the tree with the sorted keyed voxels — the Morton
// codes are the "intermediate result" the attribute pipelines reuse at no
// extra cost (Sec. IV-C1).
type BuildResult struct {
	Tree *Tree
	// Sorted is the frame's voxels in ascending Morton order, duplicates
	// removed (matching the tree's leaves one-to-one).
	Sorted []morton.Keyed
}

// Build runs the full parallel construction on dev. The input cloud does
// not need to be sorted or deduplicated.
func Build(dev *edgesim.Device, vc *geom.VoxelCloud) (*BuildResult, error) {
	if vc.Len() == 0 {
		return nil, ErrNoPoints
	}
	depth := vc.Depth
	n := vc.Len()

	// Kernel 1: Morton code generation — one independent work-item per
	// point ("in one shot ... only takes 0.5ms", Sec. IV-A2).
	keyed := make([]morton.Keyed, n)
	dev.GPUKernelIdx("MortonGen", n, costMortonGen, func(i int) {
		v := vc.Voxels[i]
		keyed[i] = morton.Keyed{Code: morton.Encode(v.X, v.Y, v.Z), Voxel: v}
	})

	// Kernel 2: data-parallel radix sort (8 digit passes).
	sortCost := costSortPass
	sortCost.OpsPerItem *= 8
	sortCost.BytesPerItem *= 8
	dev.GPUKernel("RadixSort", n, sortCost, func(start, end int) {
		// The sort is a global operation; run it once from the range that
		// owns index 0 (other ranges are accounted but the algorithm
		// internally parallelizes across the same worker budget).
		if start == 0 {
			morton.ParallelRadixSort(keyed, 8)
		}
	})

	// Kernel 3: deduplicate equal codes (captured voxel duplicates).
	// Flag + compact; serially compacted here, accounted per item.
	var sorted []morton.Keyed
	dev.GPUKernel("Dedup", n, costDedup, func(start, end int) {
		if start == 0 {
			sorted = morton.Dedup(keyed)
		}
	})

	tree, err := buildFromSorted(dev, morton.Codes(sorted), depth)
	if err != nil {
		return nil, err
	}
	return &BuildResult{Tree: tree, Sorted: sorted}, nil
}

// buildFromSorted performs the level-wise construction over sorted unique
// leaf codes.
func buildFromSorted(dev *edgesim.Device, leaves []morton.Code, depth uint) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, ErrNoPoints
	}
	for i := 1; i < len(leaves); i++ {
		if leaves[i] <= leaves[i-1] {
			return nil, fmt.Errorf("paroctree: leaf codes not strictly ascending at %d", i)
		}
	}

	// Build levels bottom-up: levelCodes[d] for d = depth down to 0.
	levelCodes := make([][]morton.Code, depth+1)
	levelCodes[depth] = leaves
	// parentRank[d][i] = index (within level d-1) of node i's parent.
	parentRank := make([][]int32, depth+1)

	for d := depth; d >= 1; d-- {
		child := levelCodes[d]
		flags := make([]int32, len(child))
		// Kernel: flag new parent prefixes (independent per element).
		dev.GPUKernelIdx("LevelFlag", len(child), edgesim.Cost{OpsPerItem: 6, BytesPerItem: 8}, func(i int) {
			if i == 0 || child[i].Parent() != child[i-1].Parent() {
				flags[i] = 1
			}
		})
		// Scan + compact. A GPU implements this as a prefix sum; the cost
		// model charges the per-node level-build cost here.
		ranks := make([]int32, len(child))
		var parents []morton.Code
		dev.GPUKernel("LevelCompact", len(child), costLevelBuild, func(start, end int) {
			if start != 0 {
				return
			}
			var r int32 = -1
			for i := range child {
				if flags[i] == 1 {
					r++
					parents = append(parents, child[i].Parent())
				}
				ranks[i] = r
			}
		})
		levelCodes[d-1] = parents
		parentRank[d] = ranks
		if d == 1 {
			break
		}
	}
	if len(levelCodes[0]) != 1 || levelCodes[0][0] != 0 {
		return nil, fmt.Errorf("paroctree: construction did not converge to a single root (got %v)", levelCodes[0])
	}

	// Flatten into the Fig. 5 array form (root first).
	t := &Tree{Depth: depth, NumLeaves: len(leaves)}
	t.LevelOffsets = make([]int, depth+2)
	total := 0
	for d := uint(0); d <= depth; d++ {
		t.LevelOffsets[d] = total
		total += len(levelCodes[d])
	}
	t.LevelOffsets[depth+1] = total
	t.Codes = make([]morton.Code, 0, total)
	for d := uint(0); d <= depth; d++ {
		t.Codes = append(t.Codes, levelCodes[d]...)
	}
	t.Parent = make([]int32, total)
	t.Parent[0] = -1
	for d := uint(1); d <= depth; d++ {
		off := t.LevelOffsets[d]
		parentOff := int32(t.LevelOffsets[d-1])
		ranks := parentRank[d]
		dev.GPUKernelIdx("ParentLink", len(ranks), edgesim.Cost{OpsPerItem: 4, BytesPerItem: 8}, func(i int) {
			t.Parent[off+i] = parentOff + ranks[i]
		})
	}

	// Algorithm 1: occupy-bit generation. Every non-root node ORs its
	// octant bit into its parent's mask; children of one parent may be
	// split across work-items, so the OR is atomic (a CUDA kernel would
	// use atomicOr identically).
	occ32 := make([]uint32, total)
	nonRoot := total - 1
	dev.GPUKernelIdx("OccupyBits", nonRoot, costOccupy, func(i int) {
		j := i + 1
		p := t.Parent[j]
		atomic.OrUint32(&occ32[p], 1<<uint(t.Codes[j]&7))
	})
	t.Occupy = make([]byte, total)
	dev.GPUKernelIdx("OccupyPack", total, costPack, func(i int) {
		t.Occupy[i] = byte(occ32[i])
	})
	return t, nil
}
