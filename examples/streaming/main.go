// Streaming: the paper's end-to-end pipeline (Fig. 1) served to many
// viewers at once by the fan-out stream.Server. One capture feed is
// encoded ONCE — the server pays a single shared encode pipeline — and
// every attached viewer gets its own bounded send queue, packet sequence
// space, retransmit buffer, and modelled link:
//
//   - viewer wifi receives framed packets over a real TCP socket and
//     decodes them with a stream.Receiver, scoring geometry PSNR;
//   - viewer slow sits behind a paced 1 Mbps link with a 2-frame queue:
//     overflow sheds P-frames and I-frames force a resync (flush to the
//     fresh keyframe) — the slow viewer degrades alone, the rest don't;
//   - viewer lossy streams through a seeded fault-injected link with 5%
//     drop and reordering: lost packets are NACKed back through the
//     server to this viewer's retransmit buffer, unrecoverable P-frames
//     conceal, and a lost I-frame forces a (coalesced) GOP refresh; its
//     receiver also emits periodic congestion-feedback reports that the
//     server aggregates into the shared encoder's adaptive controller
//     (Options.Adapt), which trades GOP length and quantization against
//     the observed loss;
//   - viewer late attaches mid-GOP and starts instantly from the server's
//     cached keyframe — no re-encode, no wait for the next GOP;
//   - viewer vp announces a 60° overhead camera in-band (its receiver
//     sends a ControlViewport packet): the frames are encoded as eight
//     self-contained Morton-range tiles, and the server slices each
//     published frame per viewer — visible tiles ship in full, a widened
//     margin ships geometry only, everything else is dropped. Same
//     encode, a fraction of the bytes.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/linksim"
	"repro/internal/viewport"
	"repro/pcc"
	"repro/pcc/stream"
)

const (
	videoName = "redandblack"
	scale     = 0.08
	nFrames   = 9 // three IPP groups
)

func main() {
	video := pcc.NewVideo(videoName, scale)
	originals := make([]*pcc.PointCloud, nFrames)
	var err error
	for i := range originals {
		if originals[i], err = video.Frame(i); err != nil {
			log.Fatal(err)
		}
	}

	opts := pcc.DefaultOptions(pcc.IntraInterV1)
	opts.IntraAttr.Segments = 2500
	opts.Inter.Segments = 4000
	opts.Adapt = pcc.AdaptiveRate{Enabled: true} // close the loop on viewer feedback
	opts.Tiles = 8                               // tiled frames: parallel encode + per-viewer viewport culling

	srv := stream.NewServer(context.Background(), stream.ServerConfig{
		Options:     opts,
		ViewerQueue: 32,
		Shards:      2, // relay tree: viewers partitioned over two shard workers
	})

	// Viewer wifi: framed packets over a real TCP socket, decoded by a
	// Receiver on the display side.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go displayWifi(&wg, ln, originals)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	wifi, err := srv.Attach(stream.ViewerConfig{
		Link:      linksim.WiFi,
		PacketOut: func(_ context.Context, pkt []byte) error { return writePacket(conn, pkt) },
	})
	if err != nil {
		log.Fatal(err)
	}

	// Viewer slow: a 1 Mbps link paced into real time with a 2-frame
	// queue, so the send queue genuinely overflows mid-stream.
	slowRx := newLocalReceiver("slow", opts, nil)
	slow, err := srv.Attach(stream.ViewerConfig{
		Queue: 2,
		Pace:  0.2,
		Link: linksim.Link{Name: "1mbps", BandwidthMbps: 1, RTTMs: 40,
			TxNanojoulePerByte: 1000, RxNanojoulePerByte: 500},
		PacketOut: slowRx.packetOut,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Viewer lossy: a seeded fault-injected link with the NACK/refresh
	// control loop routed back through the server.
	faults := linksim.FaultProfile{DropRate: 0.05, ReorderRate: 0.03, Seed: 7}
	pipe := stream.NewLossyPipe(linksim.NewFaultyLink(linksim.WiFi, faults), stream.ReceiverConfig{
		Options:       opts,
		FeedbackEvery: 3, // report loss back to the server's controller each GOP
		OnFrame:       reportFrame("lossy", nil),
	})
	pipe.AttachServer(srv)
	lossy, err := srv.Attach(stream.ViewerConfig{Link: linksim.WiFi, PacketOut: pipe.PacketOut})
	if err != nil {
		log.Fatal(err)
	}

	// Viewer vp: announces its camera in-band, so the server culls tiles
	// outside the frustum from this viewer's copy of every frame.
	vpRx := newLocalReceiver("vp", opts, nil)
	vp, err := srv.Attach(stream.ViewerConfig{Link: linksim.WiFi, PacketOut: vpRx.packetOut})
	if err != nil {
		log.Fatal(err)
	}
	vpRx.bind(vp) // route the receiver's control packets back to its viewer
	vpRx.rx.SendViewport(overheadCamera(originals[0]))

	// Stream the first two GOPs, then attach the late joiner mid-stream.
	for _, f := range originals[:6] {
		if err := srv.Submit(context.Background(), f); err != nil {
			log.Fatal(err)
		}
	}
	for srv.Metrics().FramesEncoded < 6 {
		time.Sleep(time.Millisecond)
	}
	lateRx := newLocalReceiver("late", opts, nil)
	late, err := srv.Attach(stream.ViewerConfig{Link: linksim.WiFi, PacketOut: lateRx.packetOut})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range originals[6:] {
		if err := srv.Submit(context.Background(), f); err != nil {
			log.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	conn.Close() // EOF ends the wifi display
	wg.Wait()

	// Resolve the in-process receivers' tails against each viewer's own
	// frame-index space (queue sheds leave index gaps, counted as sender
	// drops, not loss).
	slowRx.finish(int(slow.Metrics().FramesEnqueued))
	lateRx.finish(int(late.Metrics().FramesEnqueued))
	vpRx.finish(int(vp.Metrics().FramesEnqueued))
	if err := pipe.Finish(int(lossy.Metrics().FramesEnqueued)); err != nil {
		log.Fatal(err)
	}

	m := srv.Metrics()
	fmt.Printf("\n[server] %d viewers served from %d frame encodes (%d I), geometry %v + attributes %v — encode paid once\n",
		m.Viewers, m.FramesEncoded, m.IFrames,
		m.Pipeline.GeometrySim.Round(1e5), m.Pipeline.AttrSim.Round(1e5))
	fmt.Printf("[server] cached-keyframe joins %d, refreshes %d (+%d coalesced)\n",
		m.CachedJoins, m.Refreshes, m.RefreshesCoalesced)
	for _, s := range m.PerShard {
		fmt.Printf("[shard %d] %d viewers (peak %d): relayed %d frames (%d enqueues), retx cache %d frames/%d pkts (%d hits, %d misses), %d feedback reports\n",
			s.Shard, s.Viewers, s.PeakViewers, s.FramesRelayed, s.Enqueues,
			s.CacheFrames, s.CachePackets, s.RetxHits, s.RetxMisses, s.FeedbackReports)
	}
	for _, tag := range []struct {
		name string
		v    *stream.Viewer
	}{{"wifi", wifi}, {"slow", slow}, {"lossy", lossy}, {"late", late}, {"vp", vp}} {
		vm := tag.v.Metrics()
		extra := ""
		if vm.Resyncs > 0 {
			extra = fmt.Sprintf(", %d forced I-frame resyncs", vm.Resyncs)
		}
		if vm.CachedJoin {
			extra = fmt.Sprintf(", joined from cached keyframe in %v", vm.JoinLatency.Round(1e5))
		}
		fmt.Printf("[viewer %-5s] sent %d/%d frames (%d shed), %d pkts / %.1f KB, %d retransmits%s\n",
			tag.name, vm.FramesSent, vm.FramesEnqueued, vm.FramesDropped,
			vm.Packets, float64(vm.WireBytes)/1e3, vm.Retransmits, extra)
	}
	vpm, wifim := vp.Metrics(), wifi.Metrics()
	fmt.Printf("[viewer vp   ] viewport culling: %d tiles omitted, %d geometry-only, %.1f KB saved — %.2fx the full viewer's bytes\n",
		vpm.TilesCulled, vpm.TilesCoarse, float64(vpm.CulledBytes)/1e3,
		float64(vpm.WireBytes)/float64(wifim.WireBytes))
	st, rs := pipe.FaultyLink().Stats(), pipe.Receiver().Metrics()
	fmt.Printf("[viewer lossy] link dropped %d/%d packets (%d reordered); %d NACKs sent, %d retransmits received\n",
		st.Dropped+st.BurstDrops, st.Sent, st.Reordered, rs.NACKsSent, rs.RetransmitsReceived)
	fmt.Printf("[viewer lossy] frames: %d decoded, %d concealed, %d skipped (decoded ratio %.3f)\n",
		rs.FramesDecoded, rs.FramesConcealed, rs.FramesSkipped, rs.DecodedRatio())
	snap := srv.Controller().Snapshot()
	fmt.Printf("[adaptation  ] %d feedback reports aggregated (worst-percentile loss ewma %.3f); knobs: gop %d, qscale x%d, reuse x%.0f; %d knob moves\n",
		snap.Counters.FeedbackReports, snap.LossEWMA,
		snap.Knobs.GOP, snap.Knobs.QScale, snap.Knobs.Threshold/opts.Inter.Threshold,
		snap.Counters.Transitions())
}

// writePacket frames one packet onto the TCP stream (length-prefixed).
func writePacket(w io.Writer, pkt []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(pkt)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(pkt)
	return err
}

// displayWifi accepts the capture side's connection, reassembles the
// length-prefixed packets into a Receiver, and scores geometry PSNR.
func displayWifi(wg *sync.WaitGroup, ln net.Listener, originals []*pcc.PointCloud) {
	defer wg.Done()
	defer ln.Close()
	conn, err := ln.Accept()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	rx := stream.NewReceiver(stream.ReceiverConfig{
		Options: pcc.DefaultOptions(pcc.IntraInterV1),
		OnFrame: reportFrame("wifi", originals),
	})
	var hdr [4]byte
	got := 0
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			break // EOF: capture side closed
		}
		pkt := make([]byte, binary.BigEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(conn, pkt); err != nil {
			log.Fatal(err)
		}
		rx.Ingest(pkt)
		got++
	}
	if err := rx.Finish(nFrames); err != nil {
		log.Fatal(err)
	}
	rs := rx.Metrics()
	fmt.Printf("[display wifi ] %d packets over TCP: %d/%d frames decoded, decode sim %v\n",
		got, rs.FramesDecoded, nFrames, rx.Device().SimTime().Round(1e5))
}

// localReceiver is an in-process display: packets go straight from the
// viewer's sender into a Receiver, and — once bound — control packets
// (viewport announcements, NACKs) straight back to the viewer.
type localReceiver struct {
	mu   sync.Mutex
	name string
	rx   *stream.Receiver
	v    *stream.Viewer
}

func newLocalReceiver(name string, opts pcc.Options, originals []*pcc.PointCloud) *localReceiver {
	lr := &localReceiver{name: name}
	lr.rx = stream.NewReceiver(stream.ReceiverConfig{
		Options:     opts,
		OnFrame:     reportFrame(name, originals),
		SendControl: lr.sendControl,
	})
	return lr
}

func (lr *localReceiver) bind(v *stream.Viewer) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	lr.v = v
}

func (lr *localReceiver) sendControl(c stream.Control) error {
	lr.mu.Lock()
	v := lr.v
	lr.mu.Unlock()
	if v == nil {
		return nil // unbound displays drop their control uplink
	}
	return v.HandleControl(c)
}

// overheadCamera is the vp viewer's pose: a 60° close-up hovering an
// eighth of the figure's height above its head, looking straight down
// with range limited to the top quarter — head and shoulders in full,
// torso as a geometry-only halo, the rest culled.
func overheadCamera(f *pcc.PointCloud) viewport.Camera {
	mn := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	mx := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for _, v := range f.Voxels {
		for a, c := range [3]float64{float64(v.X), float64(v.Y), float64(v.Z)} {
			mn[a] = math.Min(mn[a], c)
			mx[a] = math.Max(mx[a], c)
		}
	}
	height := mx[1] - mn[1] + 1
	return viewport.Camera{
		Pos:        [3]float64{(mn[0] + mx[0]) / 2, mx[1] + height/8, (mn[2] + mx[2]) / 2},
		Dir:        [3]float64{0, -1, 0},
		FOVDegrees: 60,
		MaxDist:    height * 0.25,
	}
}

func (lr *localReceiver) packetOut(_ context.Context, pkt []byte) error {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	lr.rx.Ingest(pkt)
	return nil
}

func (lr *localReceiver) finish(totalFrames int) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if err := lr.rx.Finish(totalFrames); err != nil {
		log.Fatal(err)
	}
}

// reportFrame prints each frame's fate; with originals it also scores
// geometry PSNR (only meaningful when frame indices line up with the
// source, i.e. a from-the-start lossless viewer).
func reportFrame(name string, originals []*pcc.PointCloud) func(stream.DecodedFrame) {
	return func(f stream.DecodedFrame) {
		switch f.Status {
		case stream.FrameDecoded:
			if originals != nil && f.Index < len(originals) {
				psnr, err := pcc.GeometryPSNR(originals[f.Index], f.Cloud)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("[viewer %-5s] frame %d: %s decoded, %6d pts, geometry PSNR %5.1f dB\n",
					name, f.Index, f.Type, f.Cloud.Len(), min(psnr, 120))
				return
			}
			fmt.Printf("[viewer %-5s] frame %d: %s decoded, %6d pts\n",
				name, f.Index, f.Type, f.Cloud.Len())
		case stream.FrameConcealed:
			fmt.Printf("[viewer %-5s] frame %d: %s CONCEALED (%v)\n", name, f.Index, f.Type, f.Err)
		case stream.FrameSkipped:
			fmt.Printf("[viewer %-5s] frame %d: %s skipped (%v)\n", name, f.Index, f.Type, f.Err)
		}
	}
}
