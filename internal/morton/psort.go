package morton

import "sync"

// ParallelRadixSort sorts keyed voxels by Morton code using a data-parallel
// LSD radix sort: the same histogram → exclusive-scan → scatter structure a
// GPU sort uses. Each pass splits the input into one chunk per worker;
// workers build local digit histograms in parallel, a serial scan turns them
// into disjoint scatter offsets (stable across chunks), and workers scatter
// in parallel into disjoint regions. The result is identical to RadixSort.
func ParallelRadixSort(ks []Keyed, workers int) {
	if len(ks) < 2 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(ks) {
		workers = len(ks)
	}
	buf := make([]Keyed, len(ks))
	src, dst := ks, buf

	chunk := (len(ks) + workers - 1) / workers
	bounds := make([][2]int, 0, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(ks) {
			break
		}
		hi := lo + chunk
		if hi > len(ks) {
			hi = len(ks)
		}
		bounds = append(bounds, [2]int{lo, hi})
	}
	nw := len(bounds)
	hist := make([][256]int, nw)

	for shift := uint(0); shift < 64; shift += 8 {
		// Phase 1: local histograms (parallel).
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := &hist[w]
				*h = [256]int{}
				for _, k := range src[bounds[w][0]:bounds[w][1]] {
					h[uint8(k.Code>>shift)]++
				}
			}(w)
		}
		wg.Wait()

		// Phase 2: exclusive scan over (digit, chunk) — serial, 256*nw steps.
		// offset[w][d] = items with smaller digit anywhere, plus items with
		// digit d in earlier chunks (stability).
		pos := 0
		offsets := make([][256]int, nw)
		for d := 0; d < 256; d++ {
			for w := 0; w < nw; w++ {
				offsets[w][d] = pos
				pos += hist[w][d]
			}
		}

		// Phase 3: scatter (parallel; write regions are disjoint by
		// construction of the offsets).
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				off := offsets[w]
				for _, k := range src[bounds[w][0]:bounds[w][1]] {
					d := uint8(k.Code >> shift)
					dst[off[d]] = k
					off[d]++
				}
			}(w)
		}
		wg.Wait()
		src, dst = dst, src
	}
	// 8 passes (even): src is ks again.
	if &src[0] != &ks[0] {
		copy(ks, src)
	}
}
