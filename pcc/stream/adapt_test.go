package stream

// Closed-loop congestion adaptation tests. The deterministic harness runs
// the sender LOCKSTEP — submit one frame, wait for its Result — so each
// frame's full cycle (encode → transmit → faulty link → receiver ingest →
// feedback report → HandleControl → controller step) completes before the
// next frame's encode reads the knobs. Combined with the virtual-clock
// LossyPipe and the seeded FaultyLink, an entire adaptation trajectory —
// fault pattern, feedback cadence, knob moves, decoded bytes — replays
// identically from the seed alone.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/geom"
	"repro/internal/linksim"
	"repro/internal/metrics"
)

// adaptOptions is testOptions plus the congestion controller.
func adaptOptions(d codec.Design) codec.Options {
	o := testOptions(d)
	o.Adapt = codec.AdaptiveRate{Enabled: true}
	return o
}

// adaptRun captures one lockstep adaptive session end to end.
type adaptRun struct {
	gops     []int // GOP knob after each frame's cycle
	qscales  []int // quality knob after each frame's cycle
	statuses []FrameStatus
	wireHash string // sha256 of the sender's clean .pcv output
	sender   Metrics
	recovery metrics.RecoverySnapshot
	faults   linksim.FaultStats
}

// runAdaptive streams frames lockstep through a seeded FaultyLink with the
// controller closed over receiver feedback, stepping the drop rate from
// pre to post before frame stepAt.
func runAdaptive(t testing.TB, frames []*geom.VoxelCloud, seed int64, stepAt int, pre, post float64) adaptRun {
	t.Helper()
	opts := adaptOptions(codec.IntraInterV2)
	fl := linksim.NewFaultyLink(linksim.WiFi, linksim.FaultProfile{DropRate: pre, Seed: seed})
	var run adaptRun
	pipe := NewLossyPipe(fl, ReceiverConfig{
		Options:       opts,
		FeedbackEvery: 4,
		OnFrame:       func(f DecodedFrame) { run.statuses = append(run.statuses, f.Status) },
	})
	var wire bytes.Buffer
	s := New(context.Background(), Config{
		Options:   opts,
		PacketOut: pipe.PacketOut,
		Output:    &wire,
	})
	pipe.Attach(s)
	results := s.Results()
	for i, f := range frames {
		if i == stepAt {
			fl.SetDropRate(post)
		}
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if _, ok := <-results; !ok {
			t.Fatalf("results closed at frame %d: %v", i, s.Err())
		}
		k := s.Controller().Knobs()
		run.gops = append(run.gops, k.GOP)
		run.qscales = append(run.qscales, k.QScale)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := pipe.Finish(len(frames)); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	run.sender = s.Metrics()
	run.recovery = pipe.Receiver().Metrics()
	run.faults = fl.Stats()
	sum := sha256.Sum256(wire.Bytes())
	run.wireHash = hex.EncodeToString(sum[:])
	return run
}

// TestAdaptConvergesOnDropStep is the step-response acceptance run: a
// clean link for 16 frames, then a 15% drop step. The controller must
// shrink the GOP within the frame budget, degrade quality, and the
// decoded ratio over the trailing window must stay above the floor —
// exactly the contract the CI adapt-smoke sweep enforces at larger scale.
func TestAdaptConvergesOnDropStep(t *testing.T) {
	const (
		total      = 48
		stepAt     = 16
		budget     = 24 // frames after the step for the GOP to shrink
		tailFloor  = 0.70
		tailWindow = 12
	)
	frames := lossyFrames(t, total, 0.008)
	run := runAdaptive(t, frames, 42, stepAt, 0, 0.15)

	if len(run.statuses) != total || len(run.gops) != total {
		t.Fatalf("accounting: %d statuses, %d knob samples, want %d", len(run.statuses), len(run.gops), total)
	}
	// Pre-step: a clean link must never shrink the GOP below its base.
	for i := 0; i < stepAt; i++ {
		if run.gops[i] < 3 {
			t.Fatalf("frame %d (clean link): GOP knob %d below base", i, run.gops[i])
		}
	}
	// Post-step: the GOP must shrink within the budget...
	shrunkAt := -1
	for i := stepAt; i < stepAt+budget && i < total; i++ {
		if run.gops[i] < run.gops[stepAt-1] {
			shrunkAt = i
			break
		}
	}
	if shrunkAt < 0 {
		t.Fatalf("GOP never shrank within %d frames of the drop step (trajectory %v)", budget, run.gops)
	}
	// ...and quality must have degraded with it.
	if run.qscales[total-1] <= 1 {
		t.Errorf("quality knob never degraded under 15%% loss (trajectory %v)", run.qscales)
	}
	// Controller bookkeeping must reflect the story.
	if run.sender.FeedbackReports == 0 {
		t.Fatal("no feedback reports consumed")
	}
	a := run.sender.Adapt.Counters
	if a.GOPShrinks == 0 || a.QualityDrops == 0 || a.CongestedEnters == 0 {
		t.Errorf("controller counters missing the step response: %+v", a)
	}
	// Recovery: the trailing window (shrunken GOP in effect) must decode.
	decoded := 0
	for _, st := range run.statuses[total-tailWindow:] {
		if st == FrameDecoded {
			decoded++
		}
	}
	ratio := float64(decoded) / float64(tailWindow)
	t.Logf("GOP shrank at frame %d (%d→%d); tail decoded %d/%d (%.2f); gops=%v qscales=%v",
		shrunkAt, run.gops[stepAt-1], run.gops[total-1], decoded, tailWindow, ratio,
		run.gops, run.qscales)
	if ratio < tailFloor {
		t.Fatalf("trailing decoded ratio %.2f below the %.2f floor", ratio, tailFloor)
	}
}

// TestAdaptDeterministic: the same seed must replay the same knob
// trajectory, frame fates, recovery counters, and the exact same encoded
// bytes — the adaptation loop adds no nondeterminism to the pipeline.
func TestAdaptDeterministic(t *testing.T) {
	frames := lossyFrames(t, 30, 0.008)
	a := runAdaptive(t, frames, 9, 10, 0, 0.15)
	b := runAdaptive(t, frames, 9, 10, 0, 0.15)
	if a.wireHash != b.wireHash {
		t.Errorf("encoded bytes diverged across identical seeded runs:\n a=%s\n b=%s", a.wireHash, b.wireHash)
	}
	for i := range a.gops {
		if a.gops[i] != b.gops[i] || a.qscales[i] != b.qscales[i] {
			t.Fatalf("knob trajectory diverged at frame %d: (%d,%d) vs (%d,%d)",
				i, a.gops[i], a.qscales[i], b.gops[i], b.qscales[i])
		}
	}
	for i := range a.statuses {
		if a.statuses[i] != b.statuses[i] {
			t.Fatalf("frame %d fate diverged: %v vs %v", i, a.statuses[i], b.statuses[i])
		}
	}
	if a.recovery != b.recovery {
		t.Errorf("recovery counters diverged:\n a=%+v\n b=%+v", a.recovery, b.recovery)
	}
	if a.faults != b.faults {
		t.Errorf("fault stats diverged:\n a=%+v\n b=%+v", a.faults, b.faults)
	}
	// A different seed must produce a different fault pattern (and is
	// allowed — expected — to steer the knobs differently).
	c := runAdaptive(t, frames, 10, 10, 0, 0.15)
	if c.faults == a.faults {
		t.Error("different seeds replayed identical fault sequences")
	}
}

// TestHandleControlFeedback is the table over duplicate, stale, zero, and
// fresh feedback reports at the Session: only strictly increasing report
// numbers may reach the controller.
func TestHandleControlFeedback(t *testing.T) {
	steps := []struct {
		name        string
		report      uint32
		loss        float64
		wantReports int64
		wantStale   int64
	}{
		{"first report accepted", 1, 0.5, 1, 0},
		{"duplicate dropped", 1, 0.5, 1, 1},
		{"older dropped", 0, 0.5, 1, 2}, // report 0 is never valid
		{"regression dropped", 1, 0.9, 1, 3},
		{"next accepted", 2, 0.5, 2, 3},
		{"gap accepted", 9, 0.5, 3, 3}, // lost reports don't wedge the stream
		{"post-gap stale dropped", 5, 0.5, 3, 4},
	}
	s := New(context.Background(), Config{Options: adaptOptions(codec.IntraInterV2)})
	defer func() {
		_ = s.Close()
	}()
	for _, st := range steps {
		fb := Feedback{Report: st.report, Received: 100, Lost: uint32(100 * st.loss / (1 - st.loss))}
		if err := s.HandleControl(Control{Kind: ControlFeedback, StreamID: 1, Feedback: fb}); err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		m := s.Metrics()
		if m.FeedbackReports != st.wantReports || m.FeedbackStale != st.wantStale {
			t.Fatalf("%s: reports=%d stale=%d, want %d/%d",
				st.name, m.FeedbackReports, m.FeedbackStale, st.wantReports, st.wantStale)
		}
		if m.Adapt.Counters.FeedbackReports != st.wantReports {
			t.Fatalf("%s: controller saw %d reports, want %d",
				st.name, m.Adapt.Counters.FeedbackReports, st.wantReports)
		}
	}
}

// TestReceiverEmitsFeedback: a receiver configured with FeedbackEvery must
// emit monotonically numbered reports whose window deltas sum to its
// lifetime counters.
func TestReceiverEmitsFeedback(t *testing.T) {
	frames := lossyFrames(t, 12, 0.01)
	opts := testOptions(codec.IntraInterV1)
	fl := linksim.NewFaultyLink(linksim.WiFi, linksim.FaultProfile{})
	var reports []Feedback
	pipe := NewLossyPipe(fl, ReceiverConfig{Options: opts, FeedbackEvery: 3})
	s := New(context.Background(), Config{Options: opts, PacketOut: pipe.PacketOut})
	// Intercept the control path to record reports while still forwarding.
	pipe.ctrl = controlFunc(func(c Control) error {
		if c.Kind == ControlFeedback {
			reports = append(reports, c.Feedback)
		}
		return s.HandleControl(c)
	})
	col := NewCollector(s)
	for _, f := range frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	col.Wait()
	if err := pipe.Finish(len(frames)); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 { // 12 frames / FeedbackEvery 3
		t.Fatalf("got %d reports, want 4: %+v", len(reports), reports)
	}
	var frameSum int64
	for i, fb := range reports {
		if fb.Report != uint32(i+1) {
			t.Errorf("report %d numbered %d", i, fb.Report)
		}
		frameSum += int64(fb.Decoded) + int64(fb.Concealed) + int64(fb.Skipped)
	}
	if got := pipe.Receiver().Metrics().Frames(); frameSum != got {
		t.Errorf("window deltas sum to %d frames, lifetime counters say %d", frameSum, got)
	}
	if s.Metrics().FeedbackReports != int64(len(reports)) {
		t.Errorf("session consumed %d reports, receiver sent %d", s.Metrics().FeedbackReports, len(reports))
	}
}

// controlFunc adapts a closure to the LossyPipe's sender interface.
type controlFunc func(Control) error

func (f controlFunc) HandleControl(c Control) error { return f(c) }

// TestFeedbackRoundTrip: a feedback report survives the payload encoding
// and the full control-packet framing byte-for-byte.
func TestFeedbackRoundTrip(t *testing.T) {
	fb := Feedback{
		Report: 7, HighestFrame: 41, Received: 1200, Lost: 37,
		NACKs: 44, Decoded: 33, Concealed: 5, Skipped: 2,
	}
	payload := AppendFeedback(nil, fb)
	if len(payload) != FeedbackSize {
		t.Fatalf("payload is %d bytes, want %d", len(payload), FeedbackSize)
	}
	got, err := ParseFeedback(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != fb {
		t.Fatalf("payload roundtrip: %+v != %+v", got, fb)
	}
	raw := MarshalControl(Control{Kind: ControlFeedback, StreamID: 9, FrameIndex: 42, Feedback: fb})
	pkt, err := ParsePacket(raw)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ParseControl(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != ControlFeedback || c.StreamID != 9 || c.Feedback != fb {
		t.Fatalf("control roundtrip: %+v", c)
	}
	if fb.LossRate() != float64(37)/float64(1200+37) {
		t.Errorf("LossRate = %v", fb.LossRate())
	}
	if (Feedback{}).LossRate() != 0 {
		t.Error("empty window must report zero loss")
	}
}

// TestParseFeedbackRejectsBadSizes: anything but exactly FeedbackSize
// bytes is malformed — truncated, padded, or empty.
func TestParseFeedbackRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, FeedbackSize - 1, FeedbackSize + 1, 2 * FeedbackSize} {
		if _, err := ParseFeedback(make([]byte, n)); !errors.Is(err, ErrBadPacket) {
			t.Errorf("%d bytes: err = %v, want ErrBadPacket", n, err)
		}
	}
	// And the error propagates through ParseControl for a framed feedback
	// packet whose payload was truncated in flight.
	raw := MarshalPacket(PacketHeader{
		Flags:     FlagControl,
		FrameType: codec.FrameType(ControlFeedback),
		FragCount: 1,
	}, make([]byte, FeedbackSize-4))
	pkt, err := ParsePacket(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseControl(pkt); !errors.Is(err, ErrBadPacket) {
		t.Errorf("truncated feedback control: err = %v, want ErrBadPacket", err)
	}
}

// FuzzParseFeedback: ParseFeedback must never panic, must accept exactly
// FeedbackSize-byte inputs (every bit pattern is a valid report), and
// accepted reports must re-encode to the identical bytes.
func FuzzParseFeedback(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, FeedbackSize))
	f.Add(make([]byte, FeedbackSize-1))
	f.Add(make([]byte, FeedbackSize+1))
	f.Add(AppendFeedback(nil, Feedback{
		Report: 3, HighestFrame: 17, Received: 900, Lost: 45,
		NACKs: 51, Decoded: 14, Concealed: 2, Skipped: 1,
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		fb, err := ParseFeedback(data)
		if err != nil {
			if len(data) == FeedbackSize {
				t.Fatalf("rejected a %d-byte payload: %v", FeedbackSize, err)
			}
			if !errors.Is(err, ErrBadPacket) {
				t.Fatalf("non-ErrBadPacket failure: %v", err)
			}
			return
		}
		if len(data) != FeedbackSize {
			t.Fatalf("accepted %d bytes", len(data))
		}
		if out := AppendFeedback(nil, fb); !bytes.Equal(out, data) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data, out)
		}
		if lr := fb.LossRate(); lr < 0 || lr > 1 {
			t.Fatalf("loss rate %v outside [0,1] for %+v", lr, fb)
		}
	})
}

// TestServerFeedbackAggregation: the shared controller must see the
// worst-percentile viewer loss, not the average and not a lone outlier
// (at the default 0.9 quantile with few viewers, the worst).
func TestServerFeedbackAggregation(t *testing.T) {
	sv := NewServer(context.Background(), ServerConfig{Options: adaptOptions(codec.IntraInterV2)})
	defer func() { _ = sv.Close() }()
	var vs []*Viewer
	for i := 0; i < 4; i++ {
		v, err := sv.Attach(ViewerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, v)
	}
	// Three clean viewers, one at 50% loss. Quantile 0.9 over 4 viewers
	// picks index ceil(0.9*4)-1 = 3: the worst.
	for i, v := range vs {
		var lost uint32
		if i == 3 {
			lost = 100
		}
		err := sv.HandleControl(Control{Kind: ControlFeedback, StreamID: v.StreamID(),
			Feedback: Feedback{Report: 1, Received: 100, Lost: lost}})
		if err != nil {
			t.Fatal(err)
		}
	}
	snap := sv.Controller().Snapshot()
	if snap.Counters.FeedbackReports != 4 {
		t.Fatalf("controller saw %d reports, want 4", snap.Counters.FeedbackReports)
	}
	// The last aggregation mixed 0.5 (the worst viewer) into the EWMA; had
	// it averaged (0.125) or taken the best (0), the EWMA could not reach
	// the high-loss region that shrinks the GOP.
	if !snap.Congested || snap.Knobs.GOP >= 3 {
		t.Errorf("worst-percentile signal did not drive congestion: %+v", snap)
	}
	// Per-viewer stale handling: a replayed report must not re-steer.
	before := sv.Controller().Snapshot().Counters.FeedbackReports
	err := sv.HandleControl(Control{Kind: ControlFeedback, StreamID: vs[3].StreamID(),
		Feedback: Feedback{Report: 1, Received: 100, Lost: 100}})
	if err != nil {
		t.Fatal(err)
	}
	vm := vs[3].Metrics()
	if vm.FeedbackStale != 1 || vm.FeedbackReports != 1 {
		t.Errorf("viewer stale handling: %+v", vm)
	}
	if after := sv.Controller().Snapshot().Counters.FeedbackReports; after != before {
		t.Error("stale viewer report reached the controller")
	}
	// Unknown stream ids drop silently (viewer just detached).
	if err := sv.HandleControl(Control{Kind: ControlFeedback, StreamID: 999,
		Feedback: Feedback{Report: 1, Received: 1, Lost: 1}}); err != nil {
		t.Fatal(err)
	}
}

// TestServerFeedbackChurnRace floods a live fan-out server with feedback
// reports, refresh requests, and viewer attach/detach churn concurrently
// with the broadcast — the -race acceptance for the aggregation lock
// order (server mu, then viewer mu).
func TestServerFeedbackChurnRace(t *testing.T) {
	frames := lossyFrames(t, 10, 0.01)
	sv := NewServer(context.Background(), ServerConfig{Options: adaptOptions(codec.IntraInterV2)})

	stable, err := sv.Attach(ViewerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // viewer churn
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			v, err := sv.Attach(ViewerConfig{})
			if err != nil {
				return // server closed
			}
			_ = sv.HandleControl(Control{Kind: ControlFeedback, StreamID: v.StreamID(),
				Feedback: Feedback{Report: 1, Received: 10, Lost: uint32(i % 5)}})
			sv.Detach(v)
		}
	}()
	go func() { // feedback storm at the stable viewer, reports ascending
		defer wg.Done()
		for i := uint32(1); ; i++ {
			select {
			case <-done:
				return
			default:
			}
			_ = sv.HandleControl(Control{Kind: ControlFeedback, StreamID: stable.StreamID(),
				Feedback: Feedback{Report: i, Received: 100, Lost: i % 30}})
		}
	}()
	go func() { // refresh storm: ForceIFrame coalescing under churn
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = sv.HandleControl(Control{Kind: ControlRefresh, StreamID: stable.StreamID()})
		}
	}()

	for _, f := range frames {
		if err := sv.Submit(context.Background(), f); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	close(done)
	wg.Wait()
	if err := sv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	m := sv.Metrics()
	if m.Pipeline.Adapt.Counters.FeedbackReports == 0 {
		t.Error("no feedback reached the controller under churn")
	}
	if stable.Metrics().FeedbackReports == 0 {
		t.Error("stable viewer consumed no reports")
	}
}
