package dataset

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// VideoSpec describes one synthetic video, mirroring one Table I entry.
type VideoSpec struct {
	Name string
	// Dataset is "8iVFB" (full body, 42-camera capture) or "MVUB"
	// (upper body, 4 frontal RGBD cameras).
	Dataset string
	// Frames is the video length (Table I).
	Frames int
	// PointsPerFrame is the target voxel count per frame (Table I).
	PointsPerFrame int
	// UpperBody restricts the model to head+torso+arms (MVUB).
	UpperBody bool
	// MotionAmp scales the articulation amplitude (radians).
	MotionAmp float64
	// MotionPeriod is the swing period in frames (30 fps captures).
	MotionPeriod float64
	// SensorNoise is the per-frame capture-noise amplitude (RGB levels);
	// 8iVFB's RGB rig is cleaner than MVUB's RGBD cameras.
	SensorNoise float64
	// Seed decorrelates textures across videos.
	Seed uint32
	// LiDAR selects the sparse spinning-scanner generator (lidar.go)
	// instead of the dense body model.
	LiDAR bool
}

// TableI returns the six video presets of the paper's Table I with the
// paper's exact frame and point counts.
func TableI() []VideoSpec {
	return []VideoSpec{
		{Name: "redandblack", Dataset: "8iVFB", Frames: 300, PointsPerFrame: 727070, MotionAmp: 0.35, MotionPeriod: 70, SensorNoise: 2.5, Seed: 11},
		{Name: "longdress", Dataset: "8iVFB", Frames: 300, PointsPerFrame: 834315, MotionAmp: 0.30, MotionPeriod: 85, SensorNoise: 2.5, Seed: 23},
		{Name: "loot", Dataset: "8iVFB", Frames: 300, PointsPerFrame: 793821, MotionAmp: 0.40, MotionPeriod: 60, SensorNoise: 2.5, Seed: 37},
		{Name: "soldier", Dataset: "8iVFB", Frames: 300, PointsPerFrame: 1075299, MotionAmp: 0.45, MotionPeriod: 55, SensorNoise: 2.5, Seed: 41},
		{Name: "andrew10", Dataset: "MVUB", Frames: 318, PointsPerFrame: 1298699, UpperBody: true, MotionAmp: 0.25, MotionPeriod: 90, SensorNoise: 3.2, Seed: 53},
		{Name: "phil10", Dataset: "MVUB", Frames: 245, PointsPerFrame: 1486648, UpperBody: true, MotionAmp: 0.28, MotionPeriod: 75, SensorNoise: 3.2, Seed: 67},
	}
}

// SparsePresets returns the LiDAR-regime presets. These are NOT Table I
// entries — they model the automotive-scan regime (KITTI/Ford, the datasets
// SparsePCGC evaluates on) whose per-region occupancy is 10-100x below the
// photogrammetry videos, so the codecs can be benchmarked at the opposite
// density extreme. Point count and frame rate follow a KITTI HDL-64 sweep.
func SparsePresets() []VideoSpec {
	return []VideoSpec{
		{Name: "kitti-sparse", Dataset: "LiDAR", Frames: 300, PointsPerFrame: 72000, SensorNoise: 0.6, Seed: 71, LiDAR: true},
		{Name: "ford-sparse", Dataset: "LiDAR", Frames: 300, PointsPerFrame: 52000, SensorNoise: 0.9, Seed: 83, LiDAR: true},
	}
}

// SpecByName returns the preset with the given name (Table I video or
// sparse LiDAR regime).
func SpecByName(name string) (VideoSpec, error) {
	for _, s := range TableI() {
		if s.Name == name {
			return s, nil
		}
	}
	for _, s := range SparsePresets() {
		if s.Name == name {
			return s, nil
		}
	}
	return VideoSpec{}, fmt.Errorf("dataset: unknown video %q (have redandblack, longdress, loot, soldier, andrew10, phil10, kitti-sparse, ford-sparse)", name)
}

// Depth is the voxelization depth used by 8iVFB/MVUB (1024^3).
const Depth = 10

// Generator produces the frames of one video. Scale uniformly reduces the
// per-frame point count (Scale = 1 targets the Table I count; experiments
// at laptop scale typically run Scale 0.05-0.2 and the cost model scales
// with N, so latency/energy extrapolate linearly).
type Generator struct {
	Spec  VideoSpec
	Scale float64

	// densityFactor converts target point counts into (u,v) grid
	// resolutions; fitted once at construction.
	density float64
}

// NewGenerator creates a generator. Scale <= 0 defaults to 1.
//
// Construction runs a short calibration: because voxelization deduplicates
// coincident samples, the surface sampling density needed to hit the target
// voxel count is data-dependent (heavily oversampled surfaces saturate).
// Two fitting iterations on frame 0 land within a few percent of the
// target, deterministically.
func NewGenerator(spec VideoSpec, scale float64) *Generator {
	if scale <= 0 {
		scale = 1
	}
	g := &Generator{Spec: spec, Scale: scale}
	target := float64(spec.PointsPerFrame) * scale
	g.density = target * 1.2
	for iter := 0; iter < 2; iter++ {
		vc, err := g.Frame(0)
		if err != nil || vc.Len() == 0 {
			break
		}
		ratio := float64(vc.Len()) / target
		if ratio > 0.97 && ratio < 1.03 {
			break
		}
		adj := 1 / ratio
		// Saturation makes the response sublinear near full coverage;
		// over-correct slightly and clamp.
		adj = math.Pow(adj, 1.3)
		if adj > 4 {
			adj = 4
		}
		if adj < 0.25 {
			adj = 0.25
		}
		g.density *= adj
	}
	return g
}

// TargetPoints returns the scaled per-frame voxel target.
func (g *Generator) TargetPoints() int {
	return int(float64(g.Spec.PointsPerFrame) * g.Scale)
}

// pose holds the articulation state at one frame.
type pose struct {
	armSwing  float64 // shoulder rotation around Z (radians)
	legSwing  float64
	torsoSway float64 // rotation around Y
	bobY      float64 // vertical bob (voxels)
}

func (g *Generator) poseAt(frame int) pose {
	t := float64(frame)
	w := 2 * math.Pi / g.Spec.MotionPeriod
	a := g.Spec.MotionAmp
	return pose{
		armSwing:  a * math.Sin(w*t),
		legSwing:  0.6 * a * math.Sin(w*t+math.Pi),
		torsoSway: 0.15 * a * math.Sin(0.5*w*t),
		bobY:      6 * math.Sin(2*w*t),
	}
}

// Frame generates frame index t (0-based), voxelized into the 1024^3
// lattice. The output voxel order is the generator's sampling order (NOT
// Morton-sorted; the codecs sort internally).
func (g *Generator) Frame(t int) (*geom.VoxelCloud, error) {
	if t < 0 || t >= g.Spec.Frames {
		return nil, fmt.Errorf("dataset: frame %d outside [0,%d)", t, g.Spec.Frames)
	}
	if g.Spec.LiDAR {
		return g.lidarFrame(t)
	}
	p := g.poseAt(t)
	pts := g.samplePose(p, frameSalt(t))
	cloud := &geom.Cloud{Points: make([]geom.Point, 0, len(pts))}
	for _, sp := range pts {
		cloud.Points = append(cloud.Points, geom.Point{
			X: float32(sp.pos.X), Y: float32(sp.pos.Y + p.bobY), Z: float32(sp.pos.Z), C: sp.col,
		})
	}
	// The body occupies most of the lattice height by construction, and
	// Voxelize scales the largest dimension to the lattice — matching the
	// datasets' "voxelized into 1024^3" description.
	return geom.Voxelize(cloud, Depth)
}

// frameSalt decorrelates the sensor noise across frames.
func frameSalt(t int) uint32 {
	return uint32(t)*0x27D4EB2F + 0x165667B1
}

// samplePose emits the surface samples of the articulated body at a pose.
func (g *Generator) samplePose(p pose, salt uint32) []surfacePoint {
	s := g.Spec
	// Part surface weights (fractions of total samples).
	type partW struct{ w float64 }
	var (
		torsoW = 0.34
		headW  = 0.10
		armW   = 0.10 // per arm (upper+lower together)
		legW   = 0.18 // per leg
	)
	if s.UpperBody {
		torsoW, headW, armW = 0.52, 0.16, 0.16
		legW = 0
	}
	res := func(w float64, aspect float64) (nu, nv int) {
		total := g.density * w
		nv = int(math.Sqrt(total/aspect)) + 1
		nu = int(total/float64(nv)) + 1
		return nu, nv
	}

	center := vec{512, 0, 512}
	var out []surfacePoint

	// Torso.
	torsoC := vec{512, 560, 512}
	nu, nv := res(torsoW, 1.4)
	tex := texture{base: palette(s.Seed, 0), bandAmp: 22, bandFreq: 3, noiseAmp: 8, sensorAmp: s.SensorNoise, tSalt: salt, id: s.Seed*8 + 0}
	tp := ellipsoid(nil, torsoC, 115, 150, 75, nu, nv, tex)
	for _, sp := range tp {
		sp.pos = rotateY(sp.pos, center, p.torsoSway)
		out = append(out, sp)
	}

	// Head (skin tone, low noise).
	nu, nv = res(headW, 1)
	headTex := texture{base: geom.Color{R: 224, G: 172, B: 140}, bandAmp: 5, bandFreq: 1, noiseAmp: 4, sensorAmp: s.SensorNoise, tSalt: salt, id: s.Seed*8 + 1}
	hp := ellipsoid(nil, vec{512, 755, 512}, 52, 62, 55, nu, nv, headTex)
	for _, sp := range hp {
		sp.pos = rotateY(sp.pos, center, p.torsoSway)
		out = append(out, sp)
	}

	// Arms: shoulder joints, swing around Z.
	for side, sign := range []float64{-1, 1} {
		shoulder := vec{512 + sign*125, 680, 512}
		elbow := vec{512 + sign*150, 560, 512}
		wrist := vec{512 + sign*160, 450, 512}
		swing := p.armSwing * sign
		elbow = rotateZ(elbow, shoulder, swing)
		wrist = rotateZ(wrist, shoulder, swing)
		nu, nv = res(armW*0.55, 3)
		armTex := texture{base: palette(s.Seed, 1), bandAmp: 14, bandFreq: 5, noiseAmp: 6, sensorAmp: s.SensorNoise, tSalt: salt, id: s.Seed*8 + 2 + uint32(side)}
		out = capsule(out, shoulder, elbow, 30, nu, nv, armTex)
		nu, nv = res(armW*0.45, 3)
		skin := texture{base: geom.Color{R: 222, G: 170, B: 138}, bandAmp: 4, bandFreq: 2, noiseAmp: 4, sensorAmp: s.SensorNoise, tSalt: salt, id: s.Seed*8 + 4 + uint32(side)}
		out = capsule(out, elbow, wrist, 25, nu, nv, skin)
	}

	if !s.UpperBody {
		// Legs: hip joints, swing around Z with opposite phases.
		for side, sign := range []float64{-1, 1} {
			hip := vec{512 + sign*58, 420, 512}
			knee := vec{512 + sign*60, 230, 512}
			ankle := vec{512 + sign*62, 40, 512}
			swing := p.legSwing * sign
			knee = rotateZ(knee, hip, swing)
			ankle = rotateZ(ankle, hip, swing)
			nu, nv = res(legW*0.55, 3)
			legTex := texture{base: palette(s.Seed, 2), bandAmp: 10, bandFreq: 4, noiseAmp: 6, sensorAmp: s.SensorNoise, tSalt: salt, id: s.Seed*8 + 6 + uint32(side)}
			out = capsule(out, hip, knee, 44, nu, nv, legTex)
			nu, nv = res(legW*0.45, 3)
			out = capsule(out, knee, ankle, 36, nu, nv, legTex)
		}
	}
	return out
}

// palette derives a part base colour from the video seed, so each of the
// six videos has distinct "clothing".
func palette(seed uint32, part int) geom.Color {
	h := hash2(seed, part, 9173)
	return geom.Color{
		R: uint8(60 + h%160),
		G: uint8(60 + (h>>8)%160),
		B: uint8(60 + (h>>16)%160),
	}
}
