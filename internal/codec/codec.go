package codec

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/attr"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/interframe"
)

// Design selects one of the five evaluated PCC designs.
type Design int

const (
	// TMC13 is the state-of-the-art intra-frame baseline [56].
	TMC13 Design = iota
	// CWIPC is the state-of-the-art inter-frame baseline [13], [48].
	CWIPC
	// IntraOnly is the paper's intra-frame proposal (Sec. IV).
	IntraOnly
	// IntraInterV1 is intra + inter with the quality-oriented threshold.
	IntraInterV1
	// IntraInterV2 is intra + inter with the compression-oriented threshold.
	IntraInterV2
)

// Designs lists all five in the paper's presentation order.
func Designs() []Design { return []Design{TMC13, CWIPC, IntraOnly, IntraInterV1, IntraInterV2} }

func (d Design) String() string {
	switch d {
	case TMC13:
		return "TMC13"
	case CWIPC:
		return "CWIPC"
	case IntraOnly:
		return "Intra-Only"
	case IntraInterV1:
		return "Intra-Inter-V1"
	case IntraInterV2:
		return "Intra-Inter-V2"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// UsesInter reports whether the design codes P-frames.
func (d Design) UsesInter() bool { return d == CWIPC || d == IntraInterV1 || d == IntraInterV2 }

// Options configures an Encoder/Decoder pair.
type Options struct {
	Design Design
	// GOP is the group-of-pictures length for inter designs: 3 means IPP
	// (paper Sec. V-B). 1 forces all-intra.
	GOP int
	// IntraAttr configures the proposed intra attribute codec.
	IntraAttr attr.Params
	// Inter configures the proposed inter-frame codec (threshold etc.).
	Inter interframe.Params
	// RAHTQStep is the baseline RAHT quantization step.
	RAHTQStep float64
	// Lossless disables the proposed geometry pipeline's tight-cuboid
	// rescale (see paroctree.Rescale); the paper's design keeps it on.
	Lossless bool
	// EntropyGeometry adds the optional entropy stage to the proposed
	// geometry stream (the Sec. IV-B3 ablation; default off = fast path).
	EntropyGeometry bool
	// Tiles partitions each proposed-design frame into up to this many
	// spatial tiles (contiguous Morton-key ranges, balanced by point count)
	// that encode as self-contained units fanned out across the worker
	// pool, and that viewers can drop per-viewport without a re-encode.
	// 0 or 1 keeps the untiled path (byte-identical streams); capped at
	// MaxTiles. Baseline designs ignore it.
	Tiles int
	// Layers splits every proposed-design frame (and each tile of a tiled
	// frame) into a base layer plus enhancement layers along the octree's
	// BFS levels, each a self-contained byte range in the container
	// directory, so per-viewer quality becomes a drop decision (see
	// layer.go). 0 or 1 keeps the unlayered format (byte-identical
	// streams); capped at MaxLayers and at the frame depth. Baseline
	// designs ignore it.
	Layers int
	// Rate optionally closes the loop on the inter-frame threshold to hit
	// a target compressed rate (extension of the Sec. VI-E knob).
	Rate RateControl
	// Adapt optionally attaches the closed-loop congestion controller
	// (ratecontrol.go): receiver feedback and local pipeline state steer
	// the reuse threshold, attribute quantization, and GOP length.
	Adapt AdaptiveRate
}

// OptionsFor returns the paper's configuration for a design (Sec. VI-B).
func OptionsFor(d Design) Options {
	o := Options{
		Design:    d,
		GOP:       3,
		IntraAttr: attr.DefaultParams(),
		RAHTQStep: 2,
	}
	switch d {
	case IntraInterV1:
		o.Inter = interframe.DefaultParamsV1()
	case IntraInterV2:
		o.Inter = interframe.DefaultParamsV2()
	default:
		o.Inter = interframe.DefaultParamsV1()
	}
	return o
}

func (o Options) normalized() Options {
	if o.GOP < 1 {
		o.GOP = 3
	}
	if o.RAHTQStep <= 0 {
		o.RAHTQStep = 1
	}
	if o.IntraAttr.Segments == 0 {
		o.IntraAttr = attr.DefaultParams()
	}
	if o.Inter.Segments == 0 {
		o.Inter = interframe.DefaultParamsV1()
	}
	if o.Tiles < 1 {
		o.Tiles = 1
	}
	if o.Tiles > MaxTiles {
		o.Tiles = MaxTiles
	}
	if o.Layers < 2 {
		o.Layers = 0
	}
	if o.Layers > MaxLayers {
		o.Layers = MaxLayers
	}
	return o
}

// FrameStats reports per-frame encode metrics (feeding Figs. 8a-8c).
type FrameStats struct {
	Type      FrameType
	Points    int
	SizeBytes int64
	// Simulated edge-board time/energy, split by pipeline half.
	GeometryTime time.Duration
	AttrTime     time.Duration
	TotalTime    time.Duration
	EnergyJ      float64
	// Inter holds block-reuse statistics for inter-coded frames.
	Inter interframe.Stats
}

// Encoder encodes a stream of frames under one design.
//
// EncodeFrame is not safe for concurrent use; but the split-phase API
// (EncodeGeometryOn + FinishFrame, see pipeline.go) may run the geometry
// phase of frame N+1 concurrently with the attribute phase of frame N:
// the inter-frame reference handoff is guarded by refMu, and the geometry
// phase touches no mutable encoder state.
type Encoder struct {
	dev  *edgesim.Device
	opts Options

	// ctrl is the congestion controller (nil unless Options.Adapt.Enabled).
	// Its knob state is copied into opts at each frame boundary by
	// applyKnobs, on the goroutine that owns the attribute phase; the bases
	// below anchor the quality knob so repeated scaling never drifts.
	ctrl       *Controller
	baseIntraQ int
	baseInterQ int

	frameIdx int
	// refMu guards refSorted and forceI: the reference is written by the
	// attribute phase of I-frames and read by the attribute phase of
	// P-frames, which may race with Reset/Threshold/ForceIFrame calls from
	// a supervising goroutine.
	refMu sync.Mutex
	// forceI requests that the next frame open a fresh GOP (set by
	// ForceIFrame when a receiver reports reference loss).
	forceI bool
	// refSorted is the reconstructed reference I-frame (sorted voxels with
	// decoded colours) for P-frame prediction — the encoder tracks exactly
	// what the decoder will have, avoiding drift.
	refSorted []geom.Voxel
	// lastInterStats captures the block-reuse statistics of the most
	// recently encoded inter frame.
	lastInterStats interframe.Stats

	// Steady-state arenas. The attribute phase is serialized (FinishFrame
	// order), so one scratch of each kind suffices; geometry phases may run
	// concurrently under the pipeline's lookahead, so their arenas come from
	// a pool and travel with the GeometryIntermediate until FinishFrame
	// returns them.
	geomPool     sync.Pool
	attrScratch  attr.Scratch
	interScratch interframe.EncodeScratch
	colors       []geom.Color
	pvox         []geom.Voxel
	recon        []geom.Color
	// iBounds is the tiled P-path's reference-frame segment grid.
	iBounds []int
	// layerCols/layerRuns are the layerizer's per-unit scratch: the unit's
	// leaf colours and the base-cell run boundaries over them.
	layerCols []geom.Color
	layerRuns []int
	// refBufs ping-pong the reference voxel storage: the buffer installed at
	// one I-frame is reused two I-frames later, when no P-frame can still
	// read it.
	refBufs  [2][]geom.Voxel
	refWhich int
}

func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// NewEncoder creates an encoder running on dev.
func NewEncoder(dev *edgesim.Device, opts Options) *Encoder {
	e := &Encoder{
		dev:  dev,
		opts: opts.normalized(),
	}
	e.geomPool.New = func() any { return new(geomScratch) }
	if e.opts.Adapt.Enabled {
		e.baseIntraQ = e.opts.IntraAttr.QStep
		e.baseInterQ = e.opts.Inter.QStep
		e.ctrl = newController(e.opts)
	}
	return e
}

// Device exposes the accounting device (for harnesses).
func (e *Encoder) Device() *edgesim.Device { return e.dev }

// Options returns the normalized options in effect.
func (e *Encoder) Options() Options { return e.opts }

// Reset clears GOP state (e.g. when seeking).
func (e *Encoder) Reset() {
	e.frameIdx = 0
	e.setRef(nil)
}

// setRef installs the reconstructed reference frame under the handoff lock.
func (e *Encoder) setRef(ref []geom.Voxel) {
	e.refMu.Lock()
	e.refSorted = ref
	e.refMu.Unlock()
}

// ref returns the current reference frame under the handoff lock.
func (e *Encoder) ref() []geom.Voxel {
	e.refMu.Lock()
	defer e.refMu.Unlock()
	return e.refSorted
}

// hasRef reports whether an I-frame reference is available.
func (e *Encoder) hasRef() bool { return e.ref() != nil }

// ForceIFrame makes the next encoded frame open a fresh GOP (an I-frame)
// regardless of the current GOP position — the sender side of a receiver's
// I-frame refresh request after reference loss. Safe to call from any
// goroutine; it takes effect on the next frame to finish encoding.
//
// It reports whether this call armed the restart: false means a restart was
// already pending, so the request coalesced into it — requests arriving
// between two encodes cost at most one GOP restart however many callers
// (e.g. fan-out viewers) raise them.
func (e *Encoder) ForceIFrame() bool {
	e.refMu.Lock()
	defer e.refMu.Unlock()
	armed := !e.forceI
	e.forceI = true
	return armed
}

// takeForceI consumes a pending ForceIFrame request.
func (e *Encoder) takeForceI() bool {
	e.refMu.Lock()
	defer e.refMu.Unlock()
	v := e.forceI
	e.forceI = false
	return v
}

// ErrEmptyFrame is returned for frames without points.
var ErrEmptyFrame = errors.New("codec: empty frame")

// ErrCorruptFrame reports a frame whose payload is truncated, bit-flipped,
// or otherwise fails validation during decode. The decoder's GOP state is
// left untouched: callers may keep decoding and resync at the next I-frame.
var ErrCorruptFrame = errors.New("codec: corrupt frame payload")

// ErrMissingReference reports a P-frame decoded without its GOP reference
// (the preceding I-frame was lost, corrupt, or skipped). Recovery is to
// skip P-frames until the next I-frame arrives, or to request an I-frame
// refresh from the sender.
var ErrMissingReference = errors.New("codec: P-frame without reference")

// EncodeFrame compresses the next frame of the stream.
func (e *Encoder) EncodeFrame(vc *geom.VoxelCloud) (*EncodedFrame, FrameStats, error) {
	if vc.Len() == 0 {
		return nil, FrameStats{}, ErrEmptyFrame
	}
	e.applyKnobs()
	isP := e.opts.Design.UsesInter() && e.frameIdx%e.opts.GOP != 0 && e.hasRef()
	if e.takeForceI() {
		isP = false
		e.frameIdx = 0 // restart the GOP so the following frames predict from this I
	}

	start := e.dev.Snapshot()
	var (
		frame *EncodedFrame
		err   error
	)
	var geomDelta, attrDelta edgesim.Snapshot
	switch e.opts.Design {
	case TMC13:
		frame, geomDelta, attrDelta, err = e.encodeTMC13(vc)
	case CWIPC:
		frame, geomDelta, attrDelta, err = e.encodeCWIPC(vc, isP)
	case IntraOnly, IntraInterV1, IntraInterV2:
		frame, geomDelta, attrDelta, err = e.encodeProposed(vc, isP)
	default:
		return nil, FrameStats{}, fmt.Errorf("codec: unknown design %v", e.opts.Design)
	}
	if err != nil {
		return nil, FrameStats{}, err
	}
	total := e.dev.Since(start)

	st := FrameStats{
		Type:         frame.Type,
		Points:       int(frame.NumPoints),
		SizeBytes:    frame.Size(),
		GeometryTime: geomDelta.SimTime,
		AttrTime:     attrDelta.SimTime,
		TotalTime:    total.SimTime,
		EnergyJ:      total.EnergyJ,
		Inter:        e.lastInterStats,
	}
	e.lastInterStats = interframe.Stats{}
	e.frameIdx++
	e.applyRateControl(st)
	return frame, st, nil
}

// Decoder decodes a stream produced by an Encoder with the same Options.
type Decoder struct {
	dev  *edgesim.Device
	opts Options
	// refSorted is the last decoded I-frame in sorted order.
	refSorted []geom.Voxel
}

// NewDecoder creates a decoder running on dev.
func NewDecoder(dev *edgesim.Device, opts Options) *Decoder {
	return &Decoder{dev: dev, opts: opts.normalized()}
}

// Device exposes the accounting device.
func (d *Decoder) Device() *edgesim.Device { return d.dev }

// Reset clears reference state.
func (d *Decoder) Reset() { d.refSorted = nil }

// DecodeFrame reconstructs a frame. The returned cloud's voxels are in the
// codec's canonical (Morton-sorted) order.
//
// Every decode failure is typed: errors.Is(err, ErrMissingReference) means
// a P-frame arrived without its GOP reference, and any other failure wraps
// ErrCorruptFrame (truncated or bit-flipped payload, header lies, wrong
// design). A failed decode never mutates reference state, so the decoder
// resyncs cleanly at the next I-frame.
func (d *Decoder) DecodeFrame(f *EncodedFrame) (*geom.VoxelCloud, error) {
	var (
		vc  *geom.VoxelCloud
		err error
	)
	switch d.opts.Design {
	case TMC13:
		vc, err = d.decodeTMC13(f)
	case CWIPC:
		vc, err = d.decodeCWIPC(f)
	case IntraOnly, IntraInterV1, IntraInterV2:
		vc, err = d.decodeProposed(f)
	default:
		return nil, fmt.Errorf("codec: unknown design %v", d.opts.Design)
	}
	if err != nil && !errors.Is(err, ErrMissingReference) && !errors.Is(err, ErrCorruptFrame) {
		err = fmt.Errorf("%w: %w", ErrCorruptFrame, err)
	}
	return vc, err
}
