package paroctree

import (
	"fmt"

	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/morton"
)

// Level-of-detail decoding. Because the proposed pipeline serializes the
// octree breadth-first (level by level), any PREFIX of the geometry stream
// is a complete coarse octree: a receiver can decode the first L levels and
// display a lower-resolution cloud before the rest arrives. This implements
// the progressive-transmission property octree PCC systems ship with
// (Schnabel & Klein [74]) and that the paper's BFS layout gets for free —
// the DFS layout of the sequential baseline cannot be cut this way.

// LoDResult is a partially-decoded frame.
type LoDResult struct {
	// Level is the decoded depth (== requested level, clamped).
	Level uint
	// Codes are the occupied node codes at that level (ascending).
	Codes []morton.Code
	// PrefixBytes is how many stream bytes were consumed — the amount a
	// progressive receiver needs to have before it can show this level.
	PrefixBytes int
}

// DeserializeLoD decodes only the first `level` levels of a BFS occupancy
// stream (level == depth reproduces Deserialize).
func DeserializeLoD(dev *edgesim.Device, stream []byte, depth, level uint) (*LoDResult, error) {
	if depth == 0 || depth > 21 {
		return nil, fmt.Errorf("paroctree: depth %d out of range [1,21]", depth)
	}
	if level > depth {
		level = depth
	}
	if len(stream) == 0 {
		return &LoDResult{Level: level}, nil
	}
	codes := []morton.Code{0}
	pos := 0
	for d := uint(0); d < level; d++ {
		if pos+len(codes) > len(stream) {
			return nil, ErrBadStream
		}
		masks := stream[pos : pos+len(codes)]
		pos += len(codes)
		offsets := make([]int, len(codes)+1)
		for i, m := range masks {
			if m == 0 {
				return nil, fmt.Errorf("paroctree: zero occupancy mask at depth %d node %d", d, i)
			}
			offsets[i+1] = offsets[i] + popcount8(m)
		}
		next := make([]morton.Code, offsets[len(codes)])
		parent := codes
		dev.GPUKernelIdx("DecodeExpand", len(parent), edgesim.Cost{OpsPerItem: 30, BytesPerItem: 10}, func(i int) {
			w := offsets[i]
			base := parent[i] << 3
			for b := uint(0); b < 8; b++ {
				if masks[i]>>b&1 == 1 {
					next[w] = base | morton.Code(b)
					w++
				}
			}
		})
		codes = next
	}
	return &LoDResult{Level: level, Codes: codes, PrefixBytes: pos}, nil
}

// UpscaleToLattice maps level-L node codes back into full-lattice voxel
// positions at the centres of their cells, so a coarse decode can be
// rendered in the same coordinate frame as a full decode.
func (r *LoDResult) UpscaleToLattice(dev *edgesim.Device, depth uint) []geom.Voxel {
	if r.Level > depth {
		return nil
	}
	shift := depth - r.Level
	half := uint32(0)
	if shift > 0 {
		half = 1 << (shift - 1)
	}
	out := make([]geom.Voxel, len(r.Codes))
	dev.GPUKernel("LoDUpscale", len(r.Codes), costMortonGen, func(lo, hi int) {
		morton.DecodeVoxels(out[lo:hi], r.Codes[lo:hi])
		for i := lo; i < hi; i++ {
			out[i] = geom.Voxel{X: out[i].X<<shift | half, Y: out[i].Y<<shift | half, Z: out[i].Z<<shift | half}
		}
	})
	return out
}
