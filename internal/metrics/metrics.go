// Package metrics computes the four quantities the paper evaluates
// (Sec. VI): execution latency and energy come from internal/edgesim;
// this package provides the other two — video quality (PSNR, as MPEG's
// pc_error computes it) and compression efficiency (compressed size /
// compression ratio) — plus the CDF machinery behind the Fig. 3 locality
// studies.
package metrics

import (
	"errors"
	"math"
	"sort"

	"repro/internal/geom"
)

// PeakValue is the attribute peak for 8-bit channels.
const PeakValue = 255.0

// ErrEmpty is returned when a metric needs at least one point.
var ErrEmpty = errors.New("metrics: empty input")

// PSNRFromMSE converts a mean squared error to dB against a peak value.
// Returns +Inf for zero error.
func PSNRFromMSE(mse, peak float64) float64 {
	if mse <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(peak*peak/mse)
}

// AttributePSNR compares decoded colours against the originals point-by-
// point (same order, same geometry) and returns luma and per-channel RGB
// PSNR in dB.
func AttributePSNR(orig, decoded []geom.Color) (lumaDB, rgbDB float64, err error) {
	if len(orig) == 0 {
		return 0, 0, ErrEmpty
	}
	if len(orig) != len(decoded) {
		return 0, 0, errors.New("metrics: length mismatch")
	}
	var lumaMSE, rgbMSE float64
	for i := range orig {
		dl := orig[i].Luma() - decoded[i].Luma()
		lumaMSE += dl * dl
		dr, dg, db := orig[i].Sub(decoded[i])
		rgbMSE += float64(dr*dr+dg*dg+db*db) / 3
	}
	n := float64(len(orig))
	return PSNRFromMSE(lumaMSE/n, PeakValue), PSNRFromMSE(rgbMSE/n, PeakValue), nil
}

// GeometryPSNR computes the symmetric D1 (point-to-point) geometry PSNR
// between an original and a decoded voxel cloud, following pc_error: for
// each point, the squared distance to its nearest neighbour in the other
// cloud; MSE is the max of the two directional means; the peak is the
// diagonal of the lattice. Identical clouds give +Inf.
func GeometryPSNR(orig, decoded *geom.VoxelCloud) (float64, error) {
	if orig.Len() == 0 || decoded.Len() == 0 {
		return 0, ErrEmpty
	}
	peak := float64(orig.GridSize()) * math.Sqrt(3)
	d1 := directionalMSE(orig, decoded)
	d2 := directionalMSE(decoded, orig)
	return PSNRFromMSE(math.Max(d1, d2), peak), nil
}

func directionalMSE(from, to *geom.VoxelCloud) float64 {
	idx := geom.NewGridIndex(to, 2)
	var sum float64
	for _, v := range from.Voxels {
		_, d2 := idx.Nearest(v)
		sum += d2
	}
	return sum / float64(from.Len())
}

// CompressionRatio is inputBytes/compressedBytes (the paper's Fig. 10b
// x-axis; their intra design reaches ~5.95, intra+inter ~10.43).
func CompressionRatio(rawBytes, compressedBytes int64) float64 {
	if compressedBytes <= 0 {
		return 0
	}
	return float64(rawBytes) / float64(compressedBytes)
}

// CDF is an empirical cumulative distribution over float samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied, then sorted).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(q * float64(len(c.sorted)))
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// SegmentAttributeRanges computes, for a Morton-sorted frame partitioned
// into `segments` blocks, the per-block attribute range Max_red - Min_red —
// exactly the statistic Fig. 3a plots as a CDF to demonstrate spatial
// locality ("more segments -> smaller deltas").
func SegmentAttributeRanges(sorted []geom.Voxel, segments int, channel int) []float64 {
	if len(sorted) == 0 {
		return nil
	}
	if segments < 1 {
		segments = 1
	}
	if segments > len(sorted) {
		segments = len(sorted)
	}
	out := make([]float64, 0, segments)
	for s := 0; s < segments; s++ {
		lo := s * len(sorted) / segments
		hi := (s + 1) * len(sorted) / segments
		if lo == hi {
			continue
		}
		mn, mx := 255, 0
		for _, v := range sorted[lo:hi] {
			c := channelOf(v.C, channel)
			if c < mn {
				mn = c
			}
			if c > mx {
				mx = c
			}
		}
		out = append(out, float64(mx-mn))
	}
	return out
}

// SegmentTemporalDeltas computes, for two Morton-sorted frames partitioned
// into `segments` blocks each, the per-block mean attribute distance to the
// BEST matching block within a candidate window (window <= 0 compares
// co-indexed blocks only) — the Fig. 3b statistic.
func SegmentTemporalDeltas(iFrame, pFrame []geom.Voxel, segments, window int) []float64 {
	if len(iFrame) == 0 || len(pFrame) == 0 {
		return nil
	}
	if segments < 1 {
		segments = 1
	}
	out := make([]float64, 0, segments)
	for s := 0; s < segments; s++ {
		plo := s * len(pFrame) / segments
		phi := (s + 1) * len(pFrame) / segments
		if plo == phi {
			continue
		}
		best := math.Inf(1)
		for c := s - window; c <= s+window; c++ {
			if c < 0 || c >= segments {
				continue
			}
			ilo := c * len(iFrame) / segments
			ihi := (c + 1) * len(iFrame) / segments
			if ilo == ihi {
				continue
			}
			d := meanBlockDistance(iFrame[ilo:ihi], pFrame[plo:phi])
			if d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) {
			out = append(out, best)
		}
	}
	return out
}

func meanBlockDistance(iv, pv []geom.Voxel) float64 {
	kp, ki := len(pv), len(iv)
	var sum float64
	for i := 0; i < kp; i++ {
		j := i * ki / kp
		sum += float64(pv[i].C.Dist2(iv[j].C))
	}
	return sum / float64(kp)
}

func channelOf(c geom.Color, ch int) int {
	switch ch {
	case 0:
		return int(c.R)
	case 1:
		return int(c.G)
	default:
		return int(c.B)
	}
}
