# Common targets for the pcc reproduction.

GO ?= go

.PHONY: all build test race bench vet fmt experiments experiments-full clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# One benchmark per paper table/figure (simulated edge-board metrics).
bench:
	$(GO) test -bench=. -benchmem ./...

# Quick sweep of every experiment at 10% dataset scale (~2 min).
experiments:
	$(GO) run ./cmd/pccbench -scale 0.1 all

# Paper-scale canonical run (~30-45 min); regenerates results_full_scale.txt.
experiments-full:
	$(GO) build -o /tmp/pccbench ./cmd/pccbench
	/tmp/pccbench -scale 1.0 -frames 3 -csv results_csv all | tee results_full_scale.txt

clean:
	rm -rf results_csv
