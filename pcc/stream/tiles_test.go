package stream

// Viewport-adaptive tile fan-out tests. The acceptance claims under test:
//
//   - wire framing: FlagTiled packets round-trip their tile id, untiled
//     packets carry no extra bytes, and ControlViewport round-trips a
//     camera (rejecting non-finite fields);
//   - plan equivalence: gathering a culled frame fragment-by-fragment
//     from the shared payload's spans reproduces, byte for byte, the
//     frame a full rewrite would produce — at any MTU — and its parity
//     bodies match buildParityBody over that rewritten frame;
//   - per-viewer drop: a viewer with a camera receives fewer bytes and
//     fewer points than a viewer without one, both decode every frame,
//     and the no-viewport viewer's stream carries no FlagTiled packet;
//   - NACKs on culled frames rebuild from the recorded masks;
//   - churn safety: viewers flipping cameras mid-GOP (locally and via
//     ControlViewport) while frames stream never corrupt a decode.

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/edgesim"
	"repro/internal/viewport"
)

func tiledTestOptions() codec.Options {
	o := testOptions(codec.IntraInterV1)
	o.Tiles = 4
	return o
}

// awayCamera sees nothing of the lattice (far eye, 1-unit range), so every
// tile is culled and the nearest-tile fallback keeps exactly one.
func awayCamera() viewport.Camera {
	return viewport.Camera{
		Pos:        [3]float64{-4096, -4096, -4096},
		Dir:        [3]float64{0, 0, 1},
		FOVDegrees: 60,
		MaxDist:    1,
	}
}

func TestPacketTiledHeader(t *testing.T) {
	payload := []byte("tile payload")
	h := PacketHeader{
		Flags: FlagTiled, StreamID: 9, FrameIndex: 3, FrameType: codec.IFrame,
		Frag: 1, FragCount: 4, Seq: 77, Tile: 2,
	}
	pkt := MarshalPacket(h, payload)
	if len(pkt) != PacketHeaderSize+TileIDSize+len(payload) {
		t.Fatalf("tiled packet is %d bytes, want %d", len(pkt), PacketHeaderSize+TileIDSize+len(payload))
	}
	got, err := ParsePacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != h || !bytes.Equal(got.Payload, payload) {
		t.Fatalf("round-trip mismatch: %+v", got.Header)
	}
	// TileNone round-trips too (header/directory fragments).
	h.Tile = TileNone
	if got, err = ParsePacket(MarshalPacket(h, payload)); err != nil || got.Header.Tile != TileNone {
		t.Fatalf("TileNone round-trip: %+v, %v", got.Header, err)
	}
	// An untiled packet spends no bytes on the tile id.
	h.Flags, h.Tile = 0, 0
	pkt = MarshalPacket(h, payload)
	if len(pkt) != PacketHeaderSize+len(payload) {
		t.Fatalf("untiled packet is %d bytes, want %d", len(pkt), PacketHeaderSize+len(payload))
	}
	// A tiled packet truncated inside its tile id is structurally bad.
	h.Flags = FlagTiled
	pkt = MarshalPacket(h, nil)
	if _, err := ParsePacket(pkt[:PacketHeaderSize+1]); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("truncated tiled packet: %v, want ErrBadPacket", err)
	}
}

func TestControlViewportRoundTrip(t *testing.T) {
	want := Control{
		Kind:     ControlViewport,
		StreamID: 12,
		Camera: viewport.Camera{
			Pos: [3]float64{1.5, -2, 4096}, Dir: [3]float64{0, 0.25, -1},
			FOVDegrees: 72.5, MaxDist: 900,
		},
	}
	pkt, err := ParsePacket(MarshalControl(want))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseControl(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != ControlViewport || got.StreamID != want.StreamID || got.Camera != want.Camera {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	// Non-finite camera fields are rejected, not installed.
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		c := want
		c.Camera.FOVDegrees = bad
		pkt, err := ParsePacket(MarshalControl(c))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseControl(pkt); !errors.Is(err, ErrBadPacket) {
			t.Fatalf("non-finite viewport parsed: %v", err)
		}
	}
	// The clear convention: FOVDegrees <= 0 round-trips (the sender-side
	// SetViewport interprets it as "remove the viewport").
	c := want
	c.Camera = viewport.Camera{}
	pkt, _ = ParsePacket(MarshalControl(c))
	if got, err := ParseControl(pkt); err != nil || got.Camera.FOVDegrees != 0 {
		t.Fatalf("clear round-trip: %+v, %v", got, err)
	}
}

// TestTileMasksAndViewPlan checks the mask policy and the span-gather path
// against a straight rewrite of a real tiled frame.
func TestTileMasksAndViewPlan(t *testing.T) {
	frames := testFrames(t, 1)
	opts := tiledTestOptions()
	enc := codec.NewEncoder(edgesim.NewXavier(edgesim.Mode15W), opts)
	ef, _, err := enc.EncodeFrame(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ef.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	l := codec.ParseFrameLayout(wire)
	if l == nil {
		t.Fatal("ParseFrameLayout returned nil for a tiled frame")
	}
	if len(l.Tiles) < 2 {
		t.Fatalf("need >=2 tiles, got %d", len(l.Tiles))
	}

	// A camera that sees everything culls nothing.
	if o, c := tileMasks(l, viewport.Camera{FOVDegrees: 400}); o|c != 0 {
		t.Fatalf("all-seeing camera produced masks %x/%x", o, c)
	}
	// A camera that sees nothing keeps exactly one tile (the fallback).
	omit, coarse := tileMasks(l, awayCamera())
	if coarse != 0 || bits.OnesCount64(omit) != len(l.Tiles)-1 {
		t.Fatalf("away camera masks omit=%x coarse=%x with %d tiles", omit, coarse, len(l.Tiles))
	}

	plan := buildViewPlan(l, wire, omit, coarse, 0)
	want := []byte(nil)
	for _, s := range plan.spans {
		want = append(want, s...)
	}
	if plan.total != len(want) || plan.total >= len(wire) {
		t.Fatalf("plan total %d (spans %d, full frame %d)", plan.total, len(want), len(wire))
	}
	// The culled frame is a valid container and decodes to the kept points.
	rt, err := codec.ReadFrameFrom(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("culled frame rejected: %v", err)
	}
	dec := codec.NewDecoder(edgesim.NewXavier(edgesim.Mode15W), opts)
	vc, err := dec.DecodeFrame(rt)
	if err != nil {
		t.Fatalf("culled frame decode: %v", err)
	}
	keptPts := 0
	for ti, info := range l.Tiles {
		if omit&(1<<uint(ti)) == 0 {
			keptPts += int(info.Points)
		}
	}
	if vc.Len() != keptPts {
		t.Fatalf("culled decode has %d points, want %d", vc.Len(), keptPts)
	}

	// Fragment gathering reproduces the rewrite byte-for-byte at any MTU,
	// with the first fragment starting in the header (TileNone).
	for _, mtu := range []int{7, 256, 1400, 1 << 20} {
		n := fragsAtMTU(plan.total, mtu)
		var got []byte
		var scratch []byte
		for i := 0; i < n; i++ {
			var tile uint16
			scratch, tile, _ = plan.gather(scratch[:0], i, mtu)
			if i == 0 && tile != TileNone {
				t.Fatalf("mtu %d: first fragment tile %d, want TileNone", mtu, tile)
			}
			got = append(got, scratch...)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("mtu %d: gathered frame differs from rewrite", mtu)
		}
		// Parity bodies over the plan match buildParityBody over the
		// materialized culled frame.
		for _, g := range parityGroups(n, 4, l.Type) {
			body, _ := plan.parityBody(g, mtu, nil)
			if !bytes.Equal(body, buildParityBody(want, mtu, g)) {
				t.Fatalf("mtu %d group %+v: parity body mismatch", mtu, g)
			}
		}
	}
}

// flagWatch wraps a viewerSink's PacketOut, tallying data/tiled/parity
// packets as they pass.
type flagWatch struct {
	sink                *viewerSink
	data, tiled, parity atomic.Int64
	tileIDs             atomic.Int64 // data fragments starting inside a tile
}

func (w *flagWatch) packetOut(ctx context.Context, pkt []byte) error {
	p, err := ParsePacket(pkt)
	if err == nil && p.Header.Flags&FlagControl == 0 {
		switch {
		case p.Header.Flags&FlagParity != 0:
			w.parity.Add(1)
			if p.Header.Flags&FlagTiled != 0 {
				return errors.New("parity packet carries FlagTiled")
			}
		default:
			w.data.Add(1)
			if p.Header.Flags&FlagTiled != 0 {
				w.tiled.Add(1)
				if p.Header.Tile != TileNone {
					w.tileIDs.Add(1)
				}
			}
		}
	}
	return w.sink.packetOut(ctx, pkt)
}

func waitOutcomes(t *testing.T, vs *viewerSink, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		vs.mu.Lock()
		got := len(vs.outcomes)
		vs.mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d outcomes (have %d)", n, got)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServerViewportCulling is the per-viewer drop acceptance test: one
// server, one tiled encode, three viewers — no viewport, a config-time
// camera, and a camera installed through the ControlViewport path — with
// parity on. The camera viewers receive strictly fewer bytes and points;
// everyone decodes every frame.
func TestServerViewportCulling(t *testing.T) {
	frames := testFrames(t, 6)
	opts := tiledTestOptions()
	srv := NewServer(context.Background(), ServerConfig{
		Options: opts, ViewerQueue: 32, FEC: FECConfig{GroupLen: 4},
	})

	cam := awayCamera()
	watches := make([]*flagWatch, 3)
	views := make([]*Viewer, 3)
	for i := range watches {
		watches[i] = &flagWatch{sink: newViewerSink(opts)}
		cfg := ViewerConfig{PacketOut: watches[i].packetOut}
		if i == 1 {
			cfg.Viewport = &cam
		}
		v, err := srv.Attach(cfg)
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}
	// Viewer 2 gets its camera the way a real receiver would: a control
	// message.
	if err := views[2].HandleControl(Control{Kind: ControlViewport, StreamID: views[2].StreamID(), Camera: cam}); err != nil {
		t.Fatal(err)
	}

	for _, f := range frames {
		if err := srv.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range watches {
		waitOutcomes(t, w.sink, len(frames))
	}

	// NACK rebuild of a culled frame, from the recorded masks: the newest
	// sent record is still cached, so its first fragment must reconstruct
	// with FlagTiled intact.
	v := views[1]
	v.mu.Lock()
	if len(v.records) == 0 {
		v.mu.Unlock()
		t.Fatal("viewer 1 has no sent records")
	}
	rec := v.records[len(v.records)-1]
	v.mu.Unlock()
	if !rec.tiled {
		t.Fatalf("viewer 1's last record is not tiled: %+v", rec)
	}
	pkt := v.rebuildPacket(rec.firstSeq)
	if pkt == nil {
		t.Fatal("rebuildPacket returned nil for a cached culled frame")
	}
	rp, err := ParsePacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Header.Flags&(FlagRetransmit|FlagTiled) != FlagRetransmit|FlagTiled {
		t.Fatalf("rebuilt packet flags %02x, want retransmit|tiled", rp.Header.Flags)
	}
	if rp.Header.Tile != TileNone {
		t.Fatalf("rebuilt fragment 0 starts in tile %d, want TileNone", rp.Header.Tile)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	outs := make([][]DecodedFrame, 3)
	for i, w := range watches {
		outs[i] = w.sink.finish(t, len(frames))
		if len(outs[i]) != len(frames) {
			t.Fatalf("viewer %d: %d outcomes, want %d", i, len(outs[i]), len(frames))
		}
		for _, f := range outs[i] {
			if f.Status != FrameDecoded {
				t.Fatalf("viewer %d frame %d: %v (%v)", i, f.Index, f.Status, f.Err)
			}
		}
	}
	// The no-viewport viewer: untouched stream, no FlagTiled anywhere.
	m0 := views[0].Metrics()
	if watches[0].tiled.Load() != 0 || m0.TilesCulled != 0 || m0.CulledBytes != 0 || m0.HasViewport {
		t.Fatalf("no-viewport viewer saw culling: %d tiled packets, %+v", watches[0].tiled.Load(), m0)
	}
	for vi := 1; vi <= 2; vi++ {
		m := views[vi].Metrics()
		if !m.HasViewport || m.TilesCulled == 0 || m.CulledBytes == 0 {
			t.Fatalf("viewer %d culled nothing: %+v", vi, m)
		}
		if m.WireBytes >= m0.WireBytes {
			t.Fatalf("viewer %d wire bytes %d not below full %d", vi, m.WireBytes, m0.WireBytes)
		}
		if watches[vi].tiled.Load() != watches[vi].data.Load() {
			t.Fatalf("viewer %d: %d of %d data packets tiled", vi, watches[vi].tiled.Load(), watches[vi].data.Load())
		}
		if watches[vi].tileIDs.Load() == 0 {
			t.Fatalf("viewer %d: no fragment carried a real tile id", vi)
		}
		for i, f := range outs[vi] {
			if f.Cloud.Len() >= outs[0][i].Cloud.Len() {
				t.Fatalf("viewer %d frame %d: %d points, full view has %d",
					vi, i, f.Cloud.Len(), outs[0][i].Cloud.Len())
			}
		}
	}
	if watches[1].parity.Load() == 0 {
		t.Fatal("culled viewer sent no parity")
	}
}

// TestServerViewportChurn flips cameras mid-GOP from racing goroutines —
// locally, via control messages, and clearing — while frames stream to
// four viewers. Every frame still decodes on every viewer; the
// no-viewport viewer is never culled. Run under -race in CI.
func TestServerViewportChurn(t *testing.T) {
	frames := testFrames(t, 12)
	opts := tiledTestOptions()
	srv := NewServer(context.Background(), ServerConfig{Options: opts, ViewerQueue: 64})

	const nViewers = 4
	sinks := make([]*viewerSink, nViewers)
	views := make([]*Viewer, nViewers)
	for i := range sinks {
		sinks[i] = newViewerSink(opts)
		v, err := srv.Attach(ViewerConfig{PacketOut: sinks[i].packetOut})
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 1; i < nViewers; i++ {
		wg.Add(1)
		go func(v *Viewer, i int) {
			defer wg.Done()
			cams := []viewport.Camera{
				awayCamera(),
				{Pos: [3]float64{2048, 2048, -2048}, Dir: [3]float64{0, 0, 1}, FOVDegrees: 60},
				{FOVDegrees: 360, MaxDist: 100},
			}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				switch n % 4 {
				case 0, 1:
					v.SetViewport(cams[(n+i)%len(cams)])
				case 2:
					if err := v.HandleControl(Control{Kind: ControlViewport, Camera: cams[n%len(cams)]}); err != nil {
						t.Error(err)
						return
					}
				case 3:
					v.ClearViewport()
				}
				_ = v.Metrics()
			}
		}(views[i], i)
	}

	for _, f := range frames {
		if err := srv.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	for i, vs := range sinks {
		outcomes := vs.finish(t, len(frames))
		if len(outcomes) != len(frames) {
			t.Fatalf("viewer %d: %d outcomes, want %d", i, len(outcomes), len(frames))
		}
		for _, f := range outcomes {
			if f.Status != FrameDecoded {
				t.Fatalf("viewer %d frame %d: %v (%v)", i, f.Index, f.Status, f.Err)
			}
			if i == 0 && f.Cloud.Len() == 0 {
				t.Fatalf("viewer 0 frame %d decoded empty", f.Index)
			}
		}
		if err := views[i].Err(); err != nil {
			t.Fatalf("viewer %d: %v", i, err)
		}
	}
	m0 := views[0].Metrics()
	if m0.TilesCulled != 0 || m0.CulledBytes != 0 {
		t.Fatalf("no-viewport viewer was culled: %+v", m0)
	}
	for i := 1; i < nViewers; i++ {
		if m := views[i].Metrics(); m.ViewportUpdates == 0 {
			t.Fatalf("viewer %d recorded no viewport updates", i)
		}
	}
}
