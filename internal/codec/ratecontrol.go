package codec

// Rate control. The paper leaves the direct-reuse threshold as a manually
// tuned knob ("can be adjusted based on the application preference",
// Sec. III-B/VI-E) and evaluates fixed operating points on Fig. 10b's
// static trade-off curve. This file closes the loop twice over:
//
//   - RateControl (PR 1 of this subsystem) steers the inter-frame reuse
//     threshold after every P-frame so the stream converges onto a target
//     compressed rate — a per-frame proportional loop on ONE knob.
//
//   - Controller (this PR) is the closed-loop congestion controller: it
//     fuses receiver feedback reports (observed packet loss, NACK and
//     concealment counts) with local pipeline state (transmit-queue fill,
//     backpressure sheds, modelled link utilization) into a hysteresis
//     state machine that actuates THREE knobs — the reuse threshold, the
//     attribute quantization step, and the GOP length. Sustained loss
//     shrinks the GOP (more I-frames → faster resync after a lost
//     reference); clean links stretch it back to amortize I-frame cost;
//     congestion without loss degrades quality (bigger quantization step,
//     higher reuse threshold) instead of shedding frames.
//
// Every controller decision is pure integer/float math on explicit state —
// no clocks, no randomness — so a seeded virtual-time harness
// (pcc/stream.LossyPipe) replays an entire adaptation trajectory
// byte-for-byte.

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// RateControl configures the optional per-frame threshold controller.
type RateControl struct {
	// TargetBitsPerPoint is the desired compressed rate for P-frames
	// (0 disables rate control).
	TargetBitsPerPoint float64
	// Gain is the multiplicative step per frame (default 0.25): the
	// threshold moves by up to this fraction of itself per correction.
	Gain float64
	// MinThreshold / MaxThreshold clamp the knob (defaults 1 and 4096).
	MinThreshold, MaxThreshold float64
}

func (rc RateControl) normalized() RateControl {
	if rc.Gain <= 0 || rc.Gain > 1 {
		rc.Gain = 0.25
	}
	if rc.MinThreshold <= 0 {
		rc.MinThreshold = 1
	}
	if rc.MaxThreshold <= rc.MinThreshold {
		rc.MaxThreshold = 4096
	}
	return rc
}

// Enabled reports whether the controller is active.
func (rc RateControl) Enabled() bool { return rc.TargetBitsPerPoint > 0 }

// update adjusts the threshold given the last P-frame's achieved rate.
// A frame over budget raises the threshold (more direct reuse, smaller
// frames); under budget lowers it (more delta blocks, better quality).
func (rc RateControl) update(threshold, achievedBPP float64) float64 {
	rc = rc.normalized()
	if achievedBPP <= 0 {
		return threshold
	}
	err := achievedBPP/rc.TargetBitsPerPoint - 1 // >0: over budget
	step := err
	if step > 1 {
		step = 1
	}
	if step < -1 {
		step = -1
	}
	threshold *= 1 + rc.Gain*step
	if threshold < rc.MinThreshold {
		threshold = rc.MinThreshold
	}
	if threshold > rc.MaxThreshold {
		threshold = rc.MaxThreshold
	}
	return threshold
}

// applyRateControl is called after each encoded frame: the per-frame rate
// loop nudges the threshold on P-frames, and the congestion controller's
// knob state is refreshed for the NEXT frame (applyKnobs). Frames without
// points, and non-P frames, never move the rate loop.
func (e *Encoder) applyRateControl(st FrameStats) {
	rc := e.opts.Rate
	if !rc.Enabled() || st.Type != PFrame || st.Points == 0 {
		return
	}
	bpp := float64(st.SizeBytes) * 8 / float64(st.Points)
	e.opts.Inter.Threshold = rc.update(e.opts.Inter.Threshold, bpp)
}

// Threshold returns the encoder's current direct-reuse threshold (moves
// over time under rate control).
func (e *Encoder) Threshold() float64 { return e.opts.Inter.Threshold }

// AdaptiveRate configures the closed-loop congestion controller. The zero
// value is disabled; setting Enabled with every other field zero uses the
// documented defaults.
type AdaptiveRate struct {
	// Enabled turns the controller on. Off, the encoder's knobs never move
	// (beyond the independent RateControl loop) and the wire output is
	// byte-identical to a controller-free encoder.
	Enabled bool
	// HighLoss is the observed-loss EWMA above which the link counts as
	// lossy: the GOP shrinks and quality degrades (default 0.04).
	HighLoss float64
	// LowLoss is the loss EWMA below which the link counts as clean
	// (default 0.01). Between the two the controller holds its knobs —
	// the hysteresis band that stops actuation flapping.
	LowLoss float64
	// MinGOP / MaxGOP clamp the GOP-length knob (defaults 1 and
	// 4x the configured GOP). MinGOP 1 degrades to all-I streaming.
	MinGOP, MaxGOP int
	// MaxQScale clamps the quality knob: the attribute quantization steps
	// scale by up to this factor, doubling per degrade step (default 8).
	MaxQScale int
	// MaxBoost clamps the congestion boost on the reuse threshold
	// (default 8x the configured threshold). Ignored while the RateControl
	// loop is enabled — that loop owns the threshold.
	MaxBoost float64
	// CleanHold is how many consecutive clean observations ease the knobs
	// one notch (default 2).
	CleanHold int
	// LossGain is the EWMA weight of a new feedback report's loss rate
	// (default 0.5); local signals blend at half this gain.
	LossGain float64
	// HighUtil is the local link-utilization EWMA (modelled transmit time
	// per frame over FrameBudget) above which the sender counts as
	// congested even without receiver loss (default 1.0).
	HighUtil float64
	// FrameBudget is the real-time budget per frame used to normalize link
	// utilization (default 33ms ≈ 30 fps).
	FrameBudget time.Duration
	// LocalPeriod is how many local (per-frame) observations elapse
	// between controller steps driven by local state alone, so a session
	// without receiver feedback still adapts at report-like cadence
	// (default 8 frames).
	LocalPeriod int
	// MinParity / MaxParity clamp the FEC parity-overhead knob
	// (Knobs.Parity): the fraction of data packets re-sent as XOR parity.
	// Loss-driven degradation raises parity toward the observed loss rate
	// (times a safety factor); easing decays it back to MinParity.
	// Defaults 0 and 0.5 — no parity overhead on clean links.
	MinParity, MaxParity float64
	// ProbeAfter is how many non-congested controller steps the probing
	// upswitch waits, while the knobs are degraded, before provisionally
	// easing one notch on every knob (the probe: deliberately
	// larger-than-steady-state frames) and judging the next feedback
	// report's echo. A clean echo keeps the ease and compounds it; a
	// congested echo reverts and doubles the probe interval (capped at
	// ProbeBackoffMax). 0 defaults to 2; negative disables probing and
	// recovery falls back to passive CleanHold decay alone.
	ProbeAfter int
	// ProbeBackoffMax caps the probe-interval exponential backoff, in
	// controller steps (default 16).
	ProbeBackoffMax int
}

func (a AdaptiveRate) normalized(baseGOP int) AdaptiveRate {
	if a.HighLoss <= 0 {
		a.HighLoss = 0.04
	}
	if a.LowLoss <= 0 || a.LowLoss >= a.HighLoss {
		a.LowLoss = a.HighLoss / 4
	}
	if a.MinGOP < 1 {
		a.MinGOP = 1
	}
	if a.MaxGOP < baseGOP {
		a.MaxGOP = 4 * baseGOP
	}
	if a.MaxGOP < a.MinGOP {
		a.MaxGOP = a.MinGOP
	}
	if a.MaxQScale < 1 {
		a.MaxQScale = 8
	}
	if a.MaxBoost < 1 {
		a.MaxBoost = 8
	}
	if a.CleanHold < 1 {
		a.CleanHold = 2
	}
	if a.LossGain <= 0 || a.LossGain > 1 {
		a.LossGain = 0.5
	}
	if a.HighUtil <= 0 {
		a.HighUtil = 1.0
	}
	if a.FrameBudget <= 0 {
		a.FrameBudget = 33 * time.Millisecond
	}
	if a.LocalPeriod < 1 {
		a.LocalPeriod = 8
	}
	if a.MaxParity <= 0 {
		a.MaxParity = 0.5
	}
	if a.MaxParity > 1 {
		a.MaxParity = 1
	}
	if a.MinParity < 0 {
		a.MinParity = 0
	}
	if a.MinParity > a.MaxParity {
		a.MinParity = a.MaxParity
	}
	if a.ProbeAfter == 0 {
		a.ProbeAfter = 2
	}
	if a.ProbeBackoffMax < 1 {
		a.ProbeBackoffMax = 16
	}
	return a
}

// Signal is one receiver feedback observation: the report window's loss
// rate plus the recovery work it cost.
type Signal struct {
	// LossRate is the window's steering loss signal in [0,1]. Transports
	// feed Feedback.CongestionRate here: unrecovered losses plus NACK
	// round trips, with zero-RTT parity repairs in neither term — so FEC
	// absorbing the link's loss reads as clean and lets quality recover.
	LossRate float64
	// NACKs, Concealed and Skipped count the window's recovery events;
	// they are recorded for metrics but do not steer the knobs (the
	// transport folds round trips into LossRate before observing).
	NACKs, Concealed, Skipped int
}

// LocalSignal is one sender-side per-frame observation from the transmit
// stage.
type LocalSignal struct {
	// QueueFill is transmit-queue depth over capacity at observe time.
	QueueFill float64
	// Shed reports that this frame was sacrificed by the backpressure
	// policy before transmission.
	Shed bool
	// Utilization is the frame's modelled link time over FrameBudget
	// (>1 = the link alone cannot sustain the frame rate).
	Utilization float64
}

// Knobs is the controller's actuator state, applied by the encoder at the
// next frame boundary.
type Knobs struct {
	// Threshold is the effective inter-frame reuse threshold (base x
	// congestion boost). Ignored while RateControl owns the knob.
	Threshold float64
	// QScale multiplies the configured attribute quantization steps
	// (1 = configured quality).
	QScale int
	// GOP is the effective group-of-pictures length.
	GOP int
	// Parity is the FEC overhead knob: the target fraction of data packets
	// re-sent as XOR parity (0 = no parity). The transport turns it into a
	// parity group size via ParityGroupLen.
	Parity float64
}

// minParityKnob is the smallest parity fraction worth a packet: below
// 1/32 the knob reads as off.
const minParityKnob = 1.0 / 32

// ParityGroupLen converts the parity-overhead knob into an XOR group
// size — one parity packet per K data packets — clamped to [2, 16].
// Returns 0 when the knob is (effectively) off.
func (k Knobs) ParityGroupLen() int {
	if k.Parity < minParityKnob {
		return 0
	}
	g := int(1/k.Parity + 0.5)
	if g < 2 {
		g = 2
	}
	if g > 16 {
		g = 16
	}
	return g
}

// ControllerSnapshot is a point-in-time copy of the controller state.
type ControllerSnapshot struct {
	Knobs     Knobs
	LossEWMA  float64
	UtilEWMA  float64
	QueueEWMA float64
	ShedEWMA  float64
	Congested bool
	// Probing reports an in-flight probing upswitch: a provisional ease
	// whose feedback echo has not been judged yet.
	Probing  bool
	Counters metrics.AdaptSnapshot
	// FEC carries the probe-outcome counters.
	FEC metrics.FECSnapshot
}

// Controller is the closed-loop congestion controller. Create through
// Options.Adapt (NewEncoder attaches one); observe signals from any
// goroutine — the encoder consumes the knob state at frame boundaries.
type Controller struct {
	cfg AdaptiveRate
	// rateActive: the RateControl loop owns the threshold; the congestion
	// boost then stays inert.
	rateActive    bool
	baseThreshold float64
	baseGOP       int

	mu          sync.Mutex
	loss        float64 // receiver-observed loss EWMA
	util        float64 // local link-utilization EWMA
	queue       float64 // transmit-queue fill EWMA
	shed        float64 // backpressure-shed EWMA
	boost       float64 // current threshold congestion boost (>= 1)
	cleanStreak int
	congested   bool
	localCount  int
	k           Knobs

	// Probing upswitch state (see armProbe/step): probing marks an applied
	// provisional ease awaiting its feedback echo; probeCountdown counts
	// non-congested degraded steps down to the next probe; probeInterval is
	// the current (backed-off) rearm distance; probeAge bounds how many
	// steps a probe waits for a feedback verdict.
	probing        bool
	probeCountdown int
	probeInterval  int
	probeAge       int

	counters metrics.ControllerCounters
	fec      metrics.FECCounters
}

// newController builds the controller for normalized options.
func newController(o Options) *Controller {
	cfg := o.Adapt.normalized(o.GOP)
	return &Controller{
		cfg:            cfg,
		rateActive:     o.Rate.Enabled(),
		baseThreshold:  o.Inter.Threshold,
		baseGOP:        o.GOP,
		boost:          1,
		probeInterval:  cfg.ProbeAfter,
		probeCountdown: cfg.ProbeAfter,
		k: Knobs{
			Threshold: o.Inter.Threshold,
			QScale:    1,
			GOP:       o.GOP,
			Parity:    cfg.MinParity,
		},
	}
}

// Config returns the normalized controller configuration.
func (c *Controller) Config() AdaptiveRate { return c.cfg }

// Knobs returns the current actuator state.
func (c *Controller) Knobs() Knobs {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.k
}

// Snapshot copies the controller state and its transition counters.
func (c *Controller) Snapshot() ControllerSnapshot {
	c.mu.Lock()
	s := ControllerSnapshot{
		Knobs:     c.k,
		LossEWMA:  c.loss,
		UtilEWMA:  c.util,
		QueueEWMA: c.queue,
		ShedEWMA:  c.shed,
		Congested: c.congested,
		Probing:   c.probing,
	}
	c.mu.Unlock()
	s.Counters = c.counters.Snapshot()
	s.FEC = c.fec.Snapshot()
	return s
}

// AtBaseline reports whether every knob sits at its configured clean-link
// operating point — no residual degradation. This is the recovery target
// the probing upswitch races toward after congestion clears (a GOP
// stretched ABOVE its configured base still counts as baseline).
func (c *Controller) AtBaseline() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.degradedLocked()
}

// degradedLocked reports residual degradation on any knob. Runs under c.mu.
func (c *Controller) degradedLocked() bool {
	return c.k.QScale > 1 || c.k.GOP < c.baseGOP || c.boost > 1 || c.k.Parity > c.cfg.MinParity
}

func mix(old, sample, gain float64) float64 {
	return old*(1-gain) + sample*gain
}

// ObserveFeedback folds one receiver feedback report into the loss EWMA
// and runs a controller step.
func (c *Controller) ObserveFeedback(sig Signal) {
	c.counters.FeedbackReport()
	c.mu.Lock()
	defer c.mu.Unlock()
	if sig.LossRate < 0 {
		sig.LossRate = 0
	}
	if sig.LossRate > 1 {
		sig.LossRate = 1
	}
	c.loss = mix(c.loss, sig.LossRate, c.cfg.LossGain)
	c.step(true)
}

// ObserveLocal folds one per-frame transmit-stage observation into the
// local EWMAs. Steps driven by local state alone run every LocalPeriod
// frames, so a feedback-free session still adapts — at report cadence, not
// per frame.
func (c *Controller) ObserveLocal(sig LocalSignal) {
	c.counters.LocalSignal()
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.cfg.LossGain / 2
	c.util = mix(c.util, sig.Utilization, g)
	c.queue = mix(c.queue, sig.QueueFill, g)
	shed := 0.0
	if sig.Shed {
		shed = 1
	}
	c.shed = mix(c.shed, shed, g)
	c.localCount++
	if c.localCount%c.cfg.LocalPeriod == 0 {
		c.step(false)
	}
}

// probeTimeout is how many controller steps an in-flight probe waits for
// a feedback verdict before resolving as a quiet keep — a feedback-free
// session cannot wedge the prober (its local congestion signals still
// revert a bad probe through the congested classification).
const probeTimeout = 4

// step is the controller decision: classify the fused state as lossy,
// locally congested, clean, or in the hysteresis band, actuate, then run
// the probing upswitch state machine. Runs under c.mu.
func (c *Controller) step(fromFeedback bool) {
	lossHigh := c.loss >= c.cfg.HighLoss
	localHigh := c.util >= c.cfg.HighUtil || c.queue >= 0.9 || c.shed >= 0.25
	clean := c.loss <= c.cfg.LowLoss && c.util < c.cfg.HighUtil && c.queue < 0.5 && c.shed < 0.05

	switch {
	case lossHigh || localHigh:
		c.cleanStreak = 0
		if !c.congested {
			c.congested = true
			c.counters.CongestedEnter()
		}
		if c.probing {
			// The probe's echo came back congested: the link cannot absorb
			// the bigger frames yet. Revert the provisional ease and back
			// off the probe cadence.
			c.probeRevert()
		}
		c.degrade(lossHigh)
	case clean:
		if c.congested {
			c.congested = false
			c.counters.CongestedExit()
		}
		if c.probing && fromFeedback {
			// Clean echo: the link absorbed the probe's larger frames with
			// no loss. Keep the ease, compound it, and rearm immediately —
			// this is the upswitch-in-seconds path.
			c.probeWin(true)
		}
		c.cleanStreak++
		if c.cleanStreak >= c.cfg.CleanHold {
			c.cleanStreak = 0
			c.ease()
		}
	default:
		// Hysteresis band: hold every knob, restart the clean streak. No
		// hidden integrator accumulates here (anti-windup): the next clean
		// or congested classification acts from the clamped knobs alone.
		c.cleanStreak = 0
		if c.congested {
			c.congested = false
			c.counters.CongestedExit()
		}
		if c.probing && fromFeedback {
			// Band echo: the probe survived without pushing loss over
			// HighLoss. Keep the notch, rearm at normal cadence.
			c.probeWin(false)
		}
	}
	c.armProbe(lossHigh || localHigh)
}

// armProbe is the probing upswitch's idle side: while the knobs carry
// residual degradation and the link is not classified congested, count
// non-congested steps down to the next probe. Launching one applies a
// provisional easeFast — the deliberately larger-than-steady-state frames
// ARE the probe — whose echo the next feedback-driven step judges.
func (c *Controller) armProbe(congestedNow bool) {
	if c.cfg.ProbeAfter < 0 {
		return
	}
	if c.probing {
		c.probeAge++
		if c.probeAge >= probeTimeout {
			// No feedback verdict in time: resolve quietly as a keep.
			c.probing = false
			c.probeInterval = c.cfg.ProbeAfter
			c.probeCountdown = c.probeInterval
		}
		return
	}
	if congestedNow || !c.degradedLocked() {
		c.probeCountdown = c.probeInterval
		return
	}
	c.probeCountdown--
	if c.probeCountdown > 0 {
		return
	}
	c.probing = true
	c.probeAge = 0
	c.fec.Probe()
	c.easeFast()
}

// probeWin resolves an in-flight probe whose echo came back non-congested.
// A fully clean echo compounds the win (another fast ease) and rearms at
// the shortest cadence, so consecutive wins chain the knobs back to
// baseline in a few feedback windows.
func (c *Controller) probeWin(cleanEcho bool) {
	c.probing = false
	c.fec.ProbeWin()
	if cleanEcho {
		c.easeFast()
		c.probeInterval = 1
	} else {
		c.probeInterval = c.cfg.ProbeAfter
	}
	c.probeCountdown = c.probeInterval
}

// probeRevert rolls back a probe whose echo came back congested and
// doubles the probe interval (capped), so a persistently congested link
// is probed ever more rarely.
func (c *Controller) probeRevert() {
	c.probing = false
	c.fec.ProbeRevert()
	c.degradeFast()
	c.probeInterval *= 2
	if c.probeInterval > c.cfg.ProbeBackoffMax {
		c.probeInterval = c.cfg.ProbeBackoffMax
	}
	c.probeCountdown = c.probeInterval
}

// degrade steps the knobs one notch toward survival: quality halves
// (quantization doubles), loss-driven congestion halves the GOP for faster
// resync, and — when the rate loop is off — the reuse threshold boost
// doubles. Every knob saturates at its clamp with no windup.
func (c *Controller) degrade(lossDriven bool) {
	if q := c.k.QScale * 2; q <= c.cfg.MaxQScale {
		c.k.QScale = q
		c.counters.QualityDrop()
	}
	if lossDriven && c.k.GOP > c.cfg.MinGOP {
		g := c.k.GOP / 2
		if g < c.cfg.MinGOP {
			g = c.cfg.MinGOP
		}
		c.k.GOP = g
		c.counters.GOPShrink()
	}
	if !c.rateActive {
		if b := c.boost * 2; b <= c.cfg.MaxBoost {
			c.boost = b
			c.k.Threshold = c.baseThreshold * c.boost
			c.counters.ThresholdBoost()
		}
	}
	if lossDriven {
		c.raiseParity()
	}
}

// parityLossGain scales the observed loss EWMA into the parity-overhead
// knob: at 4x, a 5% lossy link gets ~20% parity (one packet per 5-packet
// group) — enough that single losses per group repair with no round trip.
const parityLossGain = 4

// raiseParity tracks the parity knob up to the observed loss (never down:
// ease decays it once the loss clears).
func (c *Controller) raiseParity() {
	p := parityLossGain * c.loss
	if p > c.cfg.MaxParity {
		p = c.cfg.MaxParity
	}
	if p < minParityKnob {
		p = c.cfg.MinParity
	}
	if p > c.k.Parity {
		c.k.Parity = p
	}
}

// easeParity halves the parity knob back toward MinParity.
func (c *Controller) easeParity() {
	if c.k.Parity <= c.cfg.MinParity {
		return
	}
	p := c.k.Parity / 2
	if p < minParityKnob || p < c.cfg.MinParity {
		p = c.cfg.MinParity
	}
	c.k.Parity = p
}

// ease relaxes the knobs one notch after a sustained clean window: quality
// recovers a halving, the GOP stretches by one frame (clean links amortize
// I-frames further — above the configured base, up to MaxGOP), and the
// threshold boost halves back toward 1.
func (c *Controller) ease() {
	if c.k.QScale > 1 {
		c.k.QScale /= 2
		c.counters.QualityRaise()
	}
	if c.k.GOP < c.cfg.MaxGOP {
		c.k.GOP++
		c.counters.GOPGrow()
	}
	if !c.rateActive && c.boost > 1 {
		c.boost /= 2
		if c.boost < 1 {
			c.boost = 1
		}
		c.k.Threshold = c.baseThreshold * c.boost
		c.counters.ThresholdEase()
	}
	c.easeParity()
}

// easeFast is the probe notch: one multiplicative step back toward the
// configured baseline on EVERY knob — the inverse of degrade, where the
// passive ease only grows the GOP additively. The GOP clamps at its
// configured base here (stretching beyond base stays the passive
// clean-link behavior); the threshold boost still belongs to the rate
// loop when that is active.
func (c *Controller) easeFast() {
	if c.k.QScale > 1 {
		c.k.QScale /= 2
		c.counters.QualityRaise()
	}
	if c.k.GOP < c.baseGOP {
		g := c.k.GOP * 2
		if g > c.baseGOP {
			g = c.baseGOP
		}
		c.k.GOP = g
		c.counters.GOPGrow()
	}
	if !c.rateActive && c.boost > 1 {
		c.boost /= 2
		if c.boost < 1 {
			c.boost = 1
		}
		c.k.Threshold = c.baseThreshold * c.boost
		c.counters.ThresholdEase()
	}
	c.easeParity()
}

// degradeFast rolls back one easeFast: the congested echo of a failed
// probe undoes exactly the notch the probe applied.
func (c *Controller) degradeFast() {
	if q := c.k.QScale * 2; q <= c.cfg.MaxQScale {
		c.k.QScale = q
		c.counters.QualityDrop()
	}
	if c.k.GOP > c.cfg.MinGOP {
		g := c.k.GOP / 2
		if g < c.cfg.MinGOP {
			g = c.cfg.MinGOP
		}
		c.k.GOP = g
		c.counters.GOPShrink()
	}
	if !c.rateActive {
		if b := c.boost * 2; b <= c.cfg.MaxBoost {
			c.boost = b
			c.k.Threshold = c.baseThreshold * c.boost
			c.counters.ThresholdBoost()
		}
	}
	c.raiseParity()
}

// applyKnobs copies the controller's actuator state into the encoder's
// options at a frame boundary. It runs on the goroutine that owns the
// attribute phase (EncodeFrame, or the pipeline's in-order FinishFrame), so
// every field it writes is read only by that same goroutine afterwards.
// With no observed congestion the knobs equal the configured options and
// the encoded bytes are untouched.
func (e *Encoder) applyKnobs() {
	if e.ctrl == nil {
		return
	}
	k := e.ctrl.Knobs()
	e.opts.GOP = k.GOP
	e.opts.IntraAttr.QStep = e.baseIntraQ * k.QScale
	e.opts.Inter.QStep = e.baseInterQ * k.QScale
	if !e.opts.Rate.Enabled() {
		e.opts.Inter.Threshold = k.Threshold
	}
}

// Controller returns the encoder's congestion controller, nil when
// Options.Adapt is disabled.
func (e *Encoder) Controller() *Controller { return e.ctrl }

// LayerAdapt configures the per-viewer layer controller (layer.go's drop
// decision). Unlike the shared Controller above — which re-tunes the
// ENCODER for everyone — a LayerController never touches the encoder: it
// turns one viewer's own feedback into how many of the published layers
// that viewer receives, so a bad link sheds its own enhancement layers
// while every other viewer keeps the full stream.
type LayerAdapt struct {
	// Enabled turns the controller on.
	Enabled bool
	// DropThreshold is the congestion rate (Feedback.CongestionRate) at or
	// above which one more enhancement layer is shed (default 0.05).
	DropThreshold float64
	// ClearThreshold is the congestion rate at or below which a report
	// counts as clean (default 0.01). Rates in between hold steady.
	ClearThreshold float64
	// Recover is how many consecutive clean reports restore one layer
	// (default 4) — hysteresis so a flapping link does not oscillate.
	Recover int
	// MaxDrop caps how many enhancement layers may be shed (default
	// MaxLayers-1); the base layer is never dropped.
	MaxDrop int
}

func (a LayerAdapt) normalized() LayerAdapt {
	if a.DropThreshold <= 0 {
		a.DropThreshold = 0.05
	}
	if a.ClearThreshold <= 0 {
		a.ClearThreshold = 0.01
	}
	if a.ClearThreshold > a.DropThreshold {
		a.ClearThreshold = a.DropThreshold
	}
	if a.Recover < 1 {
		a.Recover = 4
	}
	if a.MaxDrop < 1 || a.MaxDrop > MaxLayers-1 {
		a.MaxDrop = MaxLayers - 1
	}
	return a
}

// LayerController is the pure hysteresis state machine behind LayerAdapt:
// feed it one congestion rate per feedback report, read how many layers to
// drop. Like every controller in this file it is deterministic — no
// clocks, no randomness — so a seeded harness replays a whole trajectory;
// the caller (stream.Viewer) provides synchronization.
type LayerController struct {
	cfg    LayerAdapt
	drop   int
	streak int
}

// NewLayerController creates a controller with normalized defaults.
func NewLayerController(cfg LayerAdapt) *LayerController {
	return &LayerController{cfg: cfg.normalized()}
}

// Observe feeds one feedback report's congestion rate.
func (c *LayerController) Observe(congestion float64) {
	switch {
	case congestion >= c.cfg.DropThreshold:
		c.streak = 0
		if c.drop < c.cfg.MaxDrop {
			c.drop++
		}
	case congestion <= c.cfg.ClearThreshold:
		c.streak++
		if c.streak >= c.cfg.Recover && c.drop > 0 {
			c.drop--
			c.streak = 0
		}
	default:
		c.streak = 0
	}
}

// Drop returns how many enhancement layers to shed right now.
func (c *LayerController) Drop() int { return c.drop }
