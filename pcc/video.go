package pcc

import (
	"io"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/geom"
)

// StreamWriter encodes frames into a self-describing .pcv byte stream
// (header with the codec configuration, then one container per frame), so
// a receiver needs nothing but the stream to decode — the transmission
// format of the paper's end-to-end pipeline (Fig. 1). PipelinedWriter is
// the concurrent counterpart: same bytes, stages overlapped across frames.
type StreamWriter struct {
	vw  *core.VideoWriter
	dev *Device
}

// NewStreamWriter creates a stream writer on a fresh 15 W device model.
func NewStreamWriter(w io.Writer, o Options) *StreamWriter {
	dev := NewDevice(Mode15W)
	return &StreamWriter{vw: core.NewVideoWriter(w, dev, o), dev: dev}
}

// NewStreamWriterOn uses a caller-supplied device model.
func NewStreamWriterOn(w io.Writer, dev *Device, o Options) *StreamWriter {
	return &StreamWriter{vw: core.NewVideoWriter(w, dev, o), dev: dev}
}

// WriteFrame encodes and appends one frame.
func (s *StreamWriter) WriteFrame(vc *PointCloud) (FrameStats, error) { return s.vw.WriteFrame(vc) }

// Close flushes the stream.
func (s *StreamWriter) Close() error { return s.vw.Close() }

// Frames returns the number of frames written so far.
func (s *StreamWriter) Frames() int { return s.vw.Frames() }

// CompressedBytes returns the compressed payload bytes written so far.
func (s *StreamWriter) CompressedBytes() int64 { return s.vw.Bytes() }

// Stats returns per-frame encode statistics.
func (s *StreamWriter) Stats() []FrameStats { return s.vw.Stats() }

// Device returns the encoder's device model.
func (s *StreamWriter) Device() *Device { return s.dev }

// StreamReader decodes a .pcv byte stream.
type StreamReader struct {
	vr  *core.VideoReader
	dev *Device
}

// NewStreamReader parses the stream header on a fresh 15 W device model.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	dev := NewDevice(Mode15W)
	vr, err := core.NewVideoReader(r, dev)
	if err != nil {
		return nil, err
	}
	return &StreamReader{vr: vr, dev: dev}, nil
}

// NewStreamReaderOn uses a caller-supplied device model.
func NewStreamReaderOn(r io.Reader, dev *Device) (*StreamReader, error) {
	vr, err := core.NewVideoReader(r, dev)
	if err != nil {
		return nil, err
	}
	return &StreamReader{vr: vr, dev: dev}, nil
}

// Options returns the stream's codec configuration.
func (s *StreamReader) Options() Options { return s.vr.Options() }

// ReadFrame decodes the next frame; io.EOF at end of stream.
func (s *StreamReader) ReadFrame() (*PointCloud, *EncodedFrame, error) { return s.vr.ReadFrame() }

// Device returns the decoder's device model.
func (s *StreamReader) Device() *Device { return s.dev }

// Compile-time interface checks.
var (
	_ = codec.Options{}
	_ = geom.VoxelCloud{}
)
