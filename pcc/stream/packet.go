package stream

// Real packet framing for the transmit stage. The packetize stage used to
// only COUNT MTU-sized packets; these types emit actual framed packets —
// header, sequence number, fragment bookkeeping, payload checksum — so a
// lossy link (linksim.FaultyLink, or a real datagram socket) can drop,
// duplicate, and reorder them and the Receiver can still reassemble,
// detect gaps, and recover.
//
// Wire layout (little-endian, PacketHeaderSize = 27 bytes):
//
//	offset size field
//	     0    2 magic "PK"
//	     2    1 version (1)
//	     3    1 flags (bit0 retransmit, bit1 control, bit2 cached replay)
//	     4    4 stream/session id
//	     8    4 frame index (data) / control target frame (control)
//	    12    1 frame type: I=0, P=1 (data) / control kind (control)
//	    13    2 fragment index
//	    15    2 fragment count
//	    17    4 packet sequence number
//	    21    2 payload length
//	    23    4 CRC-32 (IEEE) of the payload
//	    27    2 tile id (FlagTiled packets only)
//	     +    1 layer id (FlagLayered packets only, after any tile id)
//	      ... - payload
//
// A frame's fragments carry consecutive sequence numbers, so the first
// fragment's seq is always Seq-Frag and a receiver can attribute a missing
// sequence number to a frame from any sibling fragment.
//
// FlagTiled packets extend the header by a 2-byte tile id: the tile of
// the viewer-culled frame whose bytes the fragment starts in (TileNone
// for the container header/directory). The id is observability metadata —
// reassembly stays a plain in-order concatenation of fragment payloads.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/codec"
	"repro/internal/viewport"
)

const (
	packetMagic0 = 'P'
	packetMagic1 = 'K'
	// PacketVersion is the framing version emitted by this package.
	PacketVersion = 1
	// PacketHeaderSize is the fixed per-packet header overhead in bytes.
	PacketHeaderSize = 27
	// TileIDSize is the FlagTiled header extension: a 2-byte tile id.
	TileIDSize = 2
	// LayerIDSize is the FlagLayered header extension: a 1-byte layer id.
	LayerIDSize = 1
	// MaxPayload is the largest payload one packet can carry.
	MaxPayload = math.MaxUint16
)

// TileNone is the tile id of fragments that start inside the frame's
// container header or tile directory rather than a tile's bytes.
const TileNone uint16 = 0xFFFF

// LayerNone is the layer id of fragments that start inside the frame's
// container header rather than a layer's bytes.
const LayerNone uint8 = 0xFF

// Packet flag bits.
const (
	// FlagRetransmit marks a packet re-sent in response to a NACK.
	FlagRetransmit byte = 1 << 0
	// FlagControl marks a receiver→sender control packet (NACK, refresh);
	// its FrameType byte holds the ControlKind.
	FlagControl byte = 1 << 1
	// FlagCached marks a packet replayed from a Server's keyframe cache: a
	// late-joining viewer's copy of the last encoded I-frame, sent so it
	// can start decoding mid-GOP without a re-encode. Like FlagRetransmit
	// it sits outside the payload CRC, so senders can set it on buffered
	// packet copies in place.
	FlagCached byte = 1 << 2
	// FlagParity marks a forward-error-correction parity packet: its
	// payload is a ParityGroup (XOR parity over a group of the frame's
	// data packets) rather than frame bytes. Parity packets consume no
	// sequence numbers and are never retransmitted — losing one costs only
	// its repair power.
	FlagParity byte = 1 << 3
	// FlagTiled marks a data packet of a viewport-culled tiled frame: the
	// header carries a 2-byte tile id after the CRC (TileIDSize), and the
	// frame's container was rewritten per viewer (omitted/coarse tiles).
	FlagTiled byte = 1 << 4
	// FlagLayered marks a data packet of a layer-truncated layered frame:
	// the header carries a 1-byte layer id after the (optional) tile id
	// (LayerIDSize), and the frame's container was rewritten per viewer to
	// its first Sub layers. Like the tile id, the layer id is observability
	// metadata — reassembly stays in-order concatenation.
	FlagLayered byte = 1 << 5
)

// ErrBadPacket reports a malformed packet (bad magic, version, or lengths).
var ErrBadPacket = errors.New("stream: malformed packet")

// ErrChecksum reports a packet whose payload fails its CRC — corruption in
// flight. The packet must be treated as lost.
var ErrChecksum = errors.New("stream: packet checksum mismatch")

// PacketHeader is the parsed fixed header of one packet.
type PacketHeader struct {
	Flags      byte
	StreamID   uint32
	FrameIndex uint32
	FrameType  codec.FrameType
	Frag       uint16 // fragment index within the frame
	FragCount  uint16 // total fragments of the frame
	Seq        uint32 // per-stream packet sequence number
	// Tile is the tile the fragment starts in (FlagTiled packets only;
	// TileNone for header/directory fragments).
	Tile uint16
	// Layer is the layer the fragment starts in (FlagLayered packets only;
	// LayerNone for header/directory fragments).
	Layer uint8
}

// Packet is one parsed packet: header plus payload (which aliases the
// buffer passed to ParsePacket).
type Packet struct {
	Header  PacketHeader
	Payload []byte
}

// AppendPacket appends the framed packet (header + payload) to dst.
func AppendPacket(dst []byte, h PacketHeader, payload []byte) []byte {
	dst = append(dst, packetMagic0, packetMagic1, PacketVersion, h.Flags)
	dst = binary.LittleEndian.AppendUint32(dst, h.StreamID)
	dst = binary.LittleEndian.AppendUint32(dst, h.FrameIndex)
	dst = append(dst, byte(h.FrameType))
	dst = binary.LittleEndian.AppendUint16(dst, h.Frag)
	dst = binary.LittleEndian.AppendUint16(dst, h.FragCount)
	dst = binary.LittleEndian.AppendUint32(dst, h.Seq)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	if h.Flags&FlagTiled != 0 {
		dst = binary.LittleEndian.AppendUint16(dst, h.Tile)
	}
	if h.Flags&FlagLayered != 0 {
		dst = append(dst, h.Layer)
	}
	return append(dst, payload...)
}

// MarshalPacket frames one packet.
func MarshalPacket(h PacketHeader, payload []byte) []byte {
	return AppendPacket(make([]byte, 0, PacketHeaderSize+len(payload)), h, payload)
}

// ParsePacket validates and parses one framed packet. The returned payload
// aliases b. Corrupt payloads return ErrChecksum; structural problems
// return ErrBadPacket.
func ParsePacket(b []byte) (Packet, error) {
	if len(b) < PacketHeaderSize {
		return Packet{}, fmt.Errorf("%w: %d bytes", ErrBadPacket, len(b))
	}
	if b[0] != packetMagic0 || b[1] != packetMagic1 {
		return Packet{}, fmt.Errorf("%w: bad magic", ErrBadPacket)
	}
	if b[2] != PacketVersion {
		return Packet{}, fmt.Errorf("%w: version %d", ErrBadPacket, b[2])
	}
	h := PacketHeader{
		Flags:      b[3],
		StreamID:   binary.LittleEndian.Uint32(b[4:8]),
		FrameIndex: binary.LittleEndian.Uint32(b[8:12]),
		FrameType:  codec.FrameType(b[12]),
		Frag:       binary.LittleEndian.Uint16(b[13:15]),
		FragCount:  binary.LittleEndian.Uint16(b[15:17]),
		Seq:        binary.LittleEndian.Uint32(b[17:21]),
	}
	hdrLen := PacketHeaderSize
	if h.Flags&FlagTiled != 0 {
		hdrLen += TileIDSize
		if len(b) < hdrLen {
			return Packet{}, fmt.Errorf("%w: tiled packet %d bytes", ErrBadPacket, len(b))
		}
		h.Tile = binary.LittleEndian.Uint16(b[hdrLen-TileIDSize : hdrLen])
	}
	if h.Flags&FlagLayered != 0 {
		hdrLen += LayerIDSize
		if len(b) < hdrLen {
			return Packet{}, fmt.Errorf("%w: layered packet %d bytes", ErrBadPacket, len(b))
		}
		h.Layer = b[hdrLen-1]
	}
	plen := int(binary.LittleEndian.Uint16(b[21:23]))
	if len(b) != hdrLen+plen {
		return Packet{}, fmt.Errorf("%w: payload length %d in a %d-byte packet", ErrBadPacket, plen, len(b))
	}
	payload := b[hdrLen:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[23:27]) {
		return Packet{}, ErrChecksum
	}
	if h.Flags&FlagControl == 0 {
		if h.FragCount == 0 || h.Frag >= h.FragCount {
			return Packet{}, fmt.Errorf("%w: fragment %d/%d", ErrBadPacket, h.Frag, h.FragCount)
		}
		if h.FrameType != codec.IFrame && h.FrameType != codec.PFrame {
			return Packet{}, fmt.Errorf("%w: frame type %d", ErrBadPacket, h.FrameType)
		}
	}
	return Packet{Header: h, Payload: payload}, nil
}

// PacketizeFrame splits one frame's wire bytes into MTU-sized framed
// packets with consecutive sequence numbers starting at firstSeq. mtu is
// the payload size per packet (the header adds PacketHeaderSize on top).
func PacketizeFrame(streamID, frameIndex uint32, ftype codec.FrameType, firstSeq uint32, wire []byte, mtu int) [][]byte {
	if mtu < 1 {
		mtu = 1400
	}
	if mtu > MaxPayload {
		mtu = MaxPayload
	}
	n := (len(wire) + mtu - 1) / mtu
	if n == 0 {
		n = 1 // an empty frame still ships one (empty) packet
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		lo := i * mtu
		hi := min(lo+mtu, len(wire))
		out = append(out, MarshalPacket(PacketHeader{
			StreamID:   streamID,
			FrameIndex: frameIndex,
			FrameType:  ftype,
			Frag:       uint16(i),
			FragCount:  uint16(n),
			Seq:        firstSeq + uint32(i),
		}, wire[lo:hi]))
	}
	return out
}

// Parity (forward error correction) payload framing.
//
// A parity packet carries the XOR of a group of the frame's data packets.
// Each covered packet contributes [uint16 len LE || payload] zero-padded
// to the widest member, so recovering the single missing member of a
// group yields both its exact payload length and its bytes. The covered
// sequence numbers are BaseSeq, BaseSeq+Stride, … (Count members): a
// stride of 1 covers consecutive fragments, a stride of 2 interleaves two
// groups over a span so two consecutive losses land in different groups.
//
// ParityGroup wire layout (the FlagParity payload, little-endian):
//
//	offset size field
//	     0    4 BaseSeq        first covered sequence number
//	     4    1 Count          covered packets (1..MaxParityGroup)
//	     5    1 Stride         sequence step between members (1..MaxParityStride)
//	     6    4 FrameFirstSeq  sequence number of the frame's fragment 0
//	    10    2 FragCount      the frame's fragment count
//	    12    - Body           XOR of [len16 || payload], ≥ 2 bytes
//
// FrameFirstSeq/FragCount repeat the frame geometry so a parity packet
// alone (every data packet of the frame lost or still in flight) is
// enough for the receiver to set up reassembly state.

const (
	// ParityHeaderSize is the fixed prefix of a ParityGroup payload.
	ParityHeaderSize = 12
	// MaxParityGroup caps how many data packets one parity packet covers.
	MaxParityGroup = 64
	// MaxParityStride caps the interleave stride.
	MaxParityStride = 8
)

// ParityGroup is one parsed parity payload.
type ParityGroup struct {
	BaseSeq       uint32
	Count         uint8
	Stride        uint8
	FrameFirstSeq uint32
	FragCount     uint16
	// Body is the XOR of the covered packets' [len16 || payload] records,
	// zero-padded to the widest member (so len(Body) = 2 + widest payload).
	Body []byte
}

// AppendParity appends g's wire form to dst.
func AppendParity(dst []byte, g ParityGroup) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, g.BaseSeq)
	dst = append(dst, g.Count, g.Stride)
	dst = binary.LittleEndian.AppendUint32(dst, g.FrameFirstSeq)
	dst = binary.LittleEndian.AppendUint16(dst, g.FragCount)
	return append(dst, g.Body...)
}

// ParseParity decodes a ParityGroup payload and validates that the group
// geometry is internally consistent: the covered sequence range must fall
// inside the frame [FrameFirstSeq, FrameFirstSeq+FragCount). The returned
// Body aliases b.
func ParseParity(b []byte) (ParityGroup, error) {
	if len(b) < ParityHeaderSize+2 {
		return ParityGroup{}, fmt.Errorf("%w: parity payload %d bytes", ErrBadPacket, len(b))
	}
	g := ParityGroup{
		BaseSeq:       binary.LittleEndian.Uint32(b[0:4]),
		Count:         b[4],
		Stride:        b[5],
		FrameFirstSeq: binary.LittleEndian.Uint32(b[6:10]),
		FragCount:     binary.LittleEndian.Uint16(b[10:12]),
		Body:          b[ParityHeaderSize:],
	}
	if g.Count < 1 || g.Count > MaxParityGroup {
		return ParityGroup{}, fmt.Errorf("%w: parity count %d", ErrBadPacket, g.Count)
	}
	if g.Stride < 1 || g.Stride > MaxParityStride {
		return ParityGroup{}, fmt.Errorf("%w: parity stride %d", ErrBadPacket, g.Stride)
	}
	if g.FragCount == 0 {
		return ParityGroup{}, fmt.Errorf("%w: parity over empty frame", ErrBadPacket)
	}
	base := g.BaseSeq - g.FrameFirstSeq // fragment index of the first member
	last := base + uint32(g.Count-1)*uint32(g.Stride)
	if base >= uint32(g.FragCount) || last >= uint32(g.FragCount) {
		return ParityGroup{}, fmt.Errorf("%w: parity span [%d,%d] outside %d fragments",
			ErrBadPacket, base, last, g.FragCount)
	}
	return g, nil
}

// xorRecord folds one covered packet's [len16 || payload] record into a
// parity body in place. The body must be at least 2+len(payload) bytes.
func xorRecord(body, payload []byte) {
	body[0] ^= byte(len(payload))
	body[1] ^= byte(len(payload) >> 8)
	for i, b := range payload {
		body[2+i] ^= b
	}
}

// ControlKind identifies a receiver→sender control message.
type ControlKind byte

const (
	// ControlNACK requests retransmission of the listed sequence numbers.
	ControlNACK ControlKind = 1
	// ControlRefresh reports GOP reference loss and asks the sender to
	// force the next frame to be an I-frame.
	ControlRefresh ControlKind = 2
	// ControlFeedback carries a periodic receiver feedback report
	// (Feedback): observed loss, NACK work, and frame outcomes over the
	// last report window. The sender's congestion controller consumes it.
	ControlFeedback ControlKind = 3
	// ControlViewport carries the receiver's camera (a 64-byte fixed
	// payload: Pos ×3, Dir ×3, FOVDegrees, MaxDist, all float64 LE). The
	// sender culls tiles of tiled frames outside the camera's frustum for
	// that viewer only. FOVDegrees <= 0 clears the viewport — the viewer
	// receives every tile again.
	ControlViewport ControlKind = 4
	// ControlLayers carries the receiver's layer subscription (a 1-byte
	// payload): ship only the first N layers of layered frames to this
	// viewer. 0 clears the explicit subscription — the viewer receives
	// every layer again (or whatever its adaptive controller decides).
	ControlLayers ControlKind = 5
)

func (k ControlKind) String() string {
	switch k {
	case ControlNACK:
		return "NACK"
	case ControlRefresh:
		return "REFRESH"
	case ControlFeedback:
		return "FEEDBACK"
	case ControlViewport:
		return "VIEWPORT"
	case ControlLayers:
		return "LAYERS"
	default:
		return fmt.Sprintf("ControlKind(%d)", byte(k))
	}
}

// FeedbackSize is the fixed wire size of a Feedback payload.
const FeedbackSize = 32

// Feedback is one receiver feedback report: windowed deltas of the
// receiver's recovery counters since its previous report, plus the
// monotonically increasing report number that lets the sender drop
// duplicated or reordered (stale) reports.
//
// Wire layout (the ControlFeedback payload; all fields uint32 LE):
//
//	offset field
//	     0 Report        report number, 1-based, monotonic per receiver
//	     4 HighestFrame  next in-order frame index the receiver needs
//	     8 Received      packets received in the window
//	    12 Lost          packets lost in the window (first-transmission
//	                     NACK-timeout losses; healed reorders excluded,
//	                     and losses later recovered — by parity or a late
//	                     retransmit — are netted back out)
//	    16 NACKs         sequence numbers NACKed in the window
//	    20 Decoded       frames decoded byte-correct in the window
//	    24 Concealed     frames concealed in the window
//	    28 Skipped       frames skipped in the window
type Feedback struct {
	Report       uint32
	HighestFrame uint32
	Received     uint32
	Lost         uint32
	NACKs        uint32
	Decoded      uint32
	Concealed    uint32
	Skipped      uint32
}

// LossRate returns the window's packet loss ratio, Lost/(Received+Lost)
// (0 when the window saw no packets). Lost is net of recoveries, so this
// is the unrecovered wire-loss rate.
func (f Feedback) LossRate() float64 {
	if n := uint64(f.Received) + uint64(f.Lost); n > 0 {
		return float64(f.Lost) / float64(n)
	}
	return 0
}

// CongestionRate returns the knob-steering congestion signal:
// (Lost+NACKs)/(Received+Lost+NACKs). A parity-repaired packet appears in
// neither term — the repair cost the viewer nothing — so FEC-absorbed loss
// reads as a clean link and the controller keeps quality up. A
// retransmit-recovered packet is netted out of Lost but still charges the
// NACK round trips it took, so congestion that FEC cannot absorb keeps
// degrading quality exactly as before parity existed.
func (f Feedback) CongestionRate() float64 {
	if n := uint64(f.Received) + uint64(f.Lost) + uint64(f.NACKs); n > 0 {
		return float64(uint64(f.Lost)+uint64(f.NACKs)) / float64(n)
	}
	return 0
}

// AppendFeedback appends the FeedbackSize-byte wire form to dst.
func AppendFeedback(dst []byte, f Feedback) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, f.Report)
	dst = binary.LittleEndian.AppendUint32(dst, f.HighestFrame)
	dst = binary.LittleEndian.AppendUint32(dst, f.Received)
	dst = binary.LittleEndian.AppendUint32(dst, f.Lost)
	dst = binary.LittleEndian.AppendUint32(dst, f.NACKs)
	dst = binary.LittleEndian.AppendUint32(dst, f.Decoded)
	dst = binary.LittleEndian.AppendUint32(dst, f.Concealed)
	return binary.LittleEndian.AppendUint32(dst, f.Skipped)
}

// ParseFeedback decodes a Feedback payload. Anything but exactly
// FeedbackSize bytes is ErrBadPacket.
func ParseFeedback(b []byte) (Feedback, error) {
	if len(b) != FeedbackSize {
		return Feedback{}, fmt.Errorf("%w: feedback payload %d bytes", ErrBadPacket, len(b))
	}
	return Feedback{
		Report:       binary.LittleEndian.Uint32(b[0:4]),
		HighestFrame: binary.LittleEndian.Uint32(b[4:8]),
		Received:     binary.LittleEndian.Uint32(b[8:12]),
		Lost:         binary.LittleEndian.Uint32(b[12:16]),
		NACKs:        binary.LittleEndian.Uint32(b[16:20]),
		Decoded:      binary.LittleEndian.Uint32(b[20:24]),
		Concealed:    binary.LittleEndian.Uint32(b[24:28]),
		Skipped:      binary.LittleEndian.Uint32(b[28:32]),
	}, nil
}

// ViewportSize is the fixed wire size of a ControlViewport payload:
// eight float64 fields (Pos ×3, Dir ×3, FOVDegrees, MaxDist).
const ViewportSize = 64

// appendViewport appends a camera's 64-byte wire form to dst.
func appendViewport(dst []byte, cam viewport.Camera) []byte {
	for _, f := range [8]float64{
		cam.Pos[0], cam.Pos[1], cam.Pos[2],
		cam.Dir[0], cam.Dir[1], cam.Dir[2],
		cam.FOVDegrees, cam.MaxDist,
	} {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return dst
}

// parseViewport decodes a ControlViewport payload. Anything but exactly
// ViewportSize bytes, or any non-finite field, is ErrBadPacket: NaN and
// Inf coordinates would poison every frustum comparison downstream.
func parseViewport(b []byte) (viewport.Camera, error) {
	if len(b) != ViewportSize {
		return viewport.Camera{}, fmt.Errorf("%w: viewport payload %d bytes", ErrBadPacket, len(b))
	}
	var vals [8]float64
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
			return viewport.Camera{}, fmt.Errorf("%w: non-finite viewport field", ErrBadPacket)
		}
	}
	return viewport.Camera{
		Pos:        [3]float64{vals[0], vals[1], vals[2]},
		Dir:        [3]float64{vals[3], vals[4], vals[5]},
		FOVDegrees: vals[6],
		MaxDist:    vals[7],
	}, nil
}

// Control is one receiver→sender control message.
type Control struct {
	Kind     ControlKind
	StreamID uint32
	// FrameIndex is the first frame the receiver could not recover
	// (ControlRefresh only).
	FrameIndex uint32
	// Seqs lists the missing packet sequence numbers (ControlNACK only).
	Seqs []uint32
	// Feedback is the receiver report (ControlFeedback only).
	Feedback Feedback
	// Camera is the receiver's viewport (ControlViewport only);
	// FOVDegrees <= 0 clears it.
	Camera viewport.Camera
	// Layers is the receiver's layer subscription (ControlLayers only);
	// 0 clears it.
	Layers uint8
}

// MarshalControl frames a control message as a packet (FlagControl set,
// checksummed like data).
func MarshalControl(c Control) []byte {
	var payload []byte
	switch c.Kind {
	case ControlNACK:
		payload = make([]byte, 0, 4*len(c.Seqs))
		for _, s := range c.Seqs {
			payload = binary.LittleEndian.AppendUint32(payload, s)
		}
	case ControlFeedback:
		payload = AppendFeedback(make([]byte, 0, FeedbackSize), c.Feedback)
	case ControlViewport:
		payload = appendViewport(make([]byte, 0, ViewportSize), c.Camera)
	case ControlLayers:
		payload = []byte{c.Layers}
	}
	return MarshalPacket(PacketHeader{
		Flags:      FlagControl,
		StreamID:   c.StreamID,
		FrameIndex: c.FrameIndex,
		FrameType:  codec.FrameType(c.Kind),
		FragCount:  1,
	}, payload)
}

// ParseControl decodes a control message from a parsed FlagControl packet.
func ParseControl(p Packet) (Control, error) {
	if p.Header.Flags&FlagControl == 0 {
		return Control{}, fmt.Errorf("%w: not a control packet", ErrBadPacket)
	}
	c := Control{
		Kind:       ControlKind(p.Header.FrameType),
		StreamID:   p.Header.StreamID,
		FrameIndex: p.Header.FrameIndex,
	}
	switch c.Kind {
	case ControlNACK:
		if len(p.Payload)%4 != 0 {
			return Control{}, fmt.Errorf("%w: NACK payload %d bytes", ErrBadPacket, len(p.Payload))
		}
		c.Seqs = make([]uint32, len(p.Payload)/4)
		for i := range c.Seqs {
			c.Seqs[i] = binary.LittleEndian.Uint32(p.Payload[4*i:])
		}
	case ControlRefresh:
	case ControlFeedback:
		fb, err := ParseFeedback(p.Payload)
		if err != nil {
			return Control{}, err
		}
		c.Feedback = fb
	case ControlViewport:
		cam, err := parseViewport(p.Payload)
		if err != nil {
			return Control{}, err
		}
		c.Camera = cam
	case ControlLayers:
		if len(p.Payload) != 1 {
			return Control{}, fmt.Errorf("%w: layers payload %d bytes", ErrBadPacket, len(p.Payload))
		}
		c.Layers = p.Payload[0]
	default:
		return Control{}, fmt.Errorf("%w: control kind %d", ErrBadPacket, byte(c.Kind))
	}
	return c, nil
}
