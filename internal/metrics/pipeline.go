package metrics

// Pipeline instrumentation: lock-free depth/watermark/drop counters for the
// bounded stage queues of the concurrent streaming pipeline (pcc/stream).
// The encode/transmit stages update gauges on their hot path, so everything
// here is a handful of atomic operations — safe under -race and cheap
// enough to leave enabled in production sessions.

import "sync/atomic"

// QueueGauge tracks one bounded queue: its instantaneous depth, high-water
// mark, and enqueue/dequeue/drop totals. The zero value is NOT usable; use
// NewQueueGauge. All methods are safe for concurrent use.
type QueueGauge struct {
	name     string
	depth    atomic.Int64
	maxDepth atomic.Int64
	enqueued atomic.Int64
	dequeued atomic.Int64
	dropped  atomic.Int64
}

// NewQueueGauge creates a gauge for the named stage queue.
func NewQueueGauge(name string) *QueueGauge { return &QueueGauge{name: name} }

// Name returns the stage-queue name.
func (g *QueueGauge) Name() string { return g.name }

// Enqueue records one item entering the queue, updating the watermark.
func (g *QueueGauge) Enqueue() {
	d := g.depth.Add(1)
	g.enqueued.Add(1)
	for {
		m := g.maxDepth.Load()
		if d <= m || g.maxDepth.CompareAndSwap(m, d) {
			return
		}
	}
}

// Dequeue records one item leaving the queue (transmitted or dropped).
func (g *QueueGauge) Dequeue() {
	g.depth.Add(-1)
	g.dequeued.Add(1)
}

// Drop records one queued item being abandoned by the backpressure policy.
// The item still leaves the queue through Dequeue when it is popped, so
// Enqueued == Dequeued holds at drain regardless of drops.
func (g *QueueGauge) Drop() { g.dropped.Add(1) }

// Depth returns the instantaneous queue depth.
func (g *QueueGauge) Depth() int64 { return g.depth.Load() }

// QueueSnapshot is a point-in-time copy of a gauge's counters.
type QueueSnapshot struct {
	Name     string
	Depth    int64
	MaxDepth int64
	Enqueued int64
	Dequeued int64
	Dropped  int64
}

// Snapshot captures the gauge's counters. Taken while producers are still
// running, the fields are individually — not mutually — consistent.
func (g *QueueGauge) Snapshot() QueueSnapshot {
	return QueueSnapshot{
		Name:     g.name,
		Depth:    g.depth.Load(),
		MaxDepth: g.maxDepth.Load(),
		Enqueued: g.enqueued.Load(),
		Dequeued: g.dequeued.Load(),
		Dropped:  g.dropped.Load(),
	}
}
