// Command gencorpus regenerates the checked-in seed corpora for the
// repository's fuzz targets (testdata/fuzz/<FuzzTarget>/ in each fuzzed
// package). Each corpus entry is a REAL stream produced by the matching
// encoder — a valid container, attribute stream, entropy stream, P-frame
// stream, or framed packet — plus a few deliberately damaged variants, so
// `go test -fuzz` and the CI fuzz smoke start from deep, structurally
// meaningful inputs instead of empty bytes.
//
// The generator is deterministic: running it twice produces identical
// files. Usage (from the repository root):
//
//	go run ./cmd/gencorpus
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/attr"
	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/edgesim"
	"repro/internal/entropy"
	"repro/internal/geom"
	"repro/internal/interframe"
	"repro/internal/morton"
	"repro/pcc/stream"
)

var root = flag.String("root", ".", "repository root to write testdata under")

// writeCorpus writes entries as Go fuzz corpus files (format "go test fuzz
// v1") named seed-000, seed-001, … under dir, replacing existing seeds.
func writeCorpus(dir string, entries [][]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, data := range entries {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		name := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("%-55s %d entries\n", dir, len(entries))
	return nil
}

func dev() *edgesim.Device { return edgesim.NewXavier(edgesim.Mode15W) }

// corrupt returns a copy of b with one byte XORed — a damaged sibling for
// every healthy seed, so the fuzzer starts on both sides of the fence.
func corrupt(b []byte, at int, mask byte) []byte {
	c := append([]byte(nil), b...)
	if len(c) > 0 {
		c[at%len(c)] ^= mask
	}
	return c
}

// videoFrames encodes n frames of the loot sequence at a tiny scale.
func videoFrames(n int) []*geom.VoxelCloud {
	spec, err := dataset.SpecByName("loot")
	if err != nil {
		log.Fatal(err)
	}
	g := dataset.NewGenerator(spec, 0.004)
	out := make([]*geom.VoxelCloud, n)
	for i := range out {
		if out[i], err = g.Frame(i); err != nil {
			log.Fatal(err)
		}
	}
	return out
}

// codecCorpus: serialized .pcv frame containers (I and P, two designs).
func codecCorpus() [][]byte {
	var entries [][]byte
	fs := videoFrames(2)
	for _, d := range []codec.Design{codec.IntraInterV1, codec.TMC13} {
		opts := codec.OptionsFor(d)
		opts.IntraAttr.Segments = 32
		opts.Inter.Segments = 48
		opts.Inter.Candidates = 8
		enc := codec.NewEncoder(dev(), opts)
		for _, f := range fs {
			ef, _, err := enc.EncodeFrame(f)
			if err != nil {
				log.Fatal(err)
			}
			var buf bytes.Buffer
			if _, err := ef.WriteTo(&buf); err != nil {
				log.Fatal(err)
			}
			entries = append(entries, buf.Bytes())
		}
	}
	full := entries[0]
	entries = append(entries,
		full[:len(full)/2],     // truncated mid-payload
		corrupt(full, 2, 0xFF), // frame-type byte damage
		corrupt(full, len(full)-4, 0x10),
	)
	return entries
}

// layerCorpus: serialized layered containers (tiled and untiled) for the
// layout/reader differential target, plus truncations and directory-byte
// damage straddling every layer-prologue validation fence.
func layerCorpus() [][]byte {
	var entries [][]byte
	fs := videoFrames(1)
	for _, tiles := range []int{0, 4} {
		opts := codec.OptionsFor(codec.IntraInterV1)
		opts.IntraAttr.Segments = 32
		opts.Inter.Segments = 48
		opts.Inter.Candidates = 8
		opts.Tiles = tiles
		opts.Layers = 3
		enc := codec.NewEncoder(dev(), opts)
		ef, _, err := enc.EncodeFrame(fs[0])
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ef.WriteTo(&buf); err != nil {
			log.Fatal(err)
		}
		entries = append(entries, buf.Bytes())
	}
	full := entries[len(entries)-1] // the tiled+layered container
	entries = append(entries,
		full[:len(full)/2],      // truncated mid-payload
		corrupt(full, 6, 0x04),  // flags byte: layered bit damage
		corrupt(full, 20, 0xFF), // tile-directory damage
		corrupt(full, 40, 0x01), // layer-prologue / record damage
		corrupt(full, len(full)-1, 0x80),
		[]byte("PCVF"), // magic alone
	)
	return entries
}

// attrCorpus: real intra attribute streams across parameter variants.
func attrCorpus() [][]byte {
	rng := rand.New(rand.NewSource(11))
	colors := make([]geom.Color, 400)
	r, g, b := 128.0, 100.0, 60.0
	for i := range colors {
		r += rng.Float64()*6 - 3
		g += rng.Float64()*6 - 3
		b += rng.Float64()*6 - 3
		colors[i] = geom.Color{R: uint8(r), G: uint8(g), B: uint8(b)}
	}
	var entries [][]byte
	for _, p := range []attr.Params{
		{Segments: 16, QStep: 1, Layers: 1},
		{Segments: 16, QStep: 4, Layers: 2},
		{Segments: 16, QStep: 4, Layers: 2, Entropy: true},
		{Segments: 16, QStep: 2, Layers: 2, YCoCg: true},
	} {
		data, err := attr.Encode(dev(), colors, p)
		if err != nil {
			log.Fatal(err)
		}
		entries = append(entries, data)
	}
	entries = append(entries, corrupt(entries[0], 1, 0x80), entries[2][:len(entries[2])/3])
	return entries
}

// entropyCorpus: compressed streams for the decompressor, raw inputs for
// the round-trip target.
func entropyCorpus() (decompress, roundTrip [][]byte) {
	rng := rand.New(rand.NewSource(12))
	noisy := make([]byte, 700)
	rng.Read(noisy)
	inputs := [][]byte{
		[]byte("the quick brown fox jumps over the lazy dog"),
		bytes.Repeat([]byte{0x42}, 900),
		noisy,
		{},
	}
	for _, in := range inputs {
		decompress = append(decompress, entropy.CompressBytes(in))
		roundTrip = append(roundTrip, in)
	}
	decompress = append(decompress, corrupt(decompress[0], 3, 0x55), decompress[1][:4])
	return decompress, roundTrip
}

// interframeCorpus: real P-frame streams against a synthetic reference.
func interframeCorpus() [][]byte {
	rng := rand.New(rand.NewSource(13))
	seen := map[morton.Code]bool{}
	keyed := make([]morton.Keyed, 0, 300)
	for len(keyed) < 300 {
		x, y, z := uint32(rng.Intn(512)), uint32(rng.Intn(512)), uint32(rng.Intn(512))
		c := morton.Encode(x, y, z)
		if seen[c] {
			continue
		}
		seen[c] = true
		keyed = append(keyed, morton.Keyed{Code: c, Voxel: geom.Voxel{
			X: x, Y: y, Z: z,
			C: geom.Color{R: uint8(x / 2), G: uint8(y / 2), B: uint8(z / 2)},
		}})
	}
	morton.Sort(keyed)
	iF := morton.Voxels(keyed)
	pF := make([]geom.Voxel, len(iF))
	copy(pF, iF)
	for i := range pF {
		pF[i].C = pF[i].C.Add(rng.Intn(9)-4, rng.Intn(9)-4, rng.Intn(9)-4)
	}
	var entries [][]byte
	for _, p := range []interframe.Params{
		{Segments: 20, Candidates: 10, Threshold: 50, QStep: 2},
		{Segments: 20, Candidates: 10, Threshold: -1, QStep: 2},
		{Segments: 40, Candidates: 4, Threshold: 1e9, QStep: 1},
	} {
		data, _, err := interframe.EncodeP(dev(), iF, pF, p)
		if err != nil {
			log.Fatal(err)
		}
		entries = append(entries, data)
	}
	entries = append(entries, corrupt(entries[0], 0, 0x01), entries[1][:2])
	return entries
}

// packetCorpus: framed data and control packets from the stream transport.
func packetCorpus() [][]byte {
	payload := bytes.Repeat([]byte{0xC3, 0x96}, 300)
	pkts := stream.PacketizeFrame(1, 4, codec.IFrame, 17, payload, 256)
	entries := [][]byte{
		pkts[0],
		pkts[len(pkts)-1],
		stream.PacketizeFrame(2, 5, codec.PFrame, 90, nil, 1400)[0], // empty frame
		stream.MarshalControl(stream.Control{Kind: stream.ControlNACK, StreamID: 1, Seqs: []uint32{3, 9, 1 << 20}}),
		stream.MarshalControl(stream.Control{Kind: stream.ControlRefresh, StreamID: 1, FrameIndex: 12}),
		stream.MarshalControl(stream.Control{Kind: stream.ControlFeedback, StreamID: 1, FrameIndex: 30,
			Feedback: stream.Feedback{Report: 2, HighestFrame: 30, Received: 480, Lost: 21,
				NACKs: 25, Decoded: 10, Concealed: 1, Skipped: 1}}),
		stream.MarshalPacket(stream.PacketHeader{Flags: stream.FlagLayered, StreamID: 3,
			FrameIndex: 6, FrameType: codec.PFrame, FragCount: 2, Seq: 44, Layer: 1}, payload[:80]),
		stream.MarshalPacket(stream.PacketHeader{Flags: stream.FlagTiled | stream.FlagLayered,
			StreamID: 3, FrameIndex: 6, FrameType: codec.IFrame, FragCount: 3, Frag: 1, Seq: 45,
			Tile: 2, Layer: 0}, payload[:80]),
		stream.MarshalControl(stream.Control{Kind: stream.ControlLayers, StreamID: 3, Layers: 2}),
	}
	entries = append(entries,
		corrupt(pkts[0], stream.PacketHeaderSize+1, 0x01), // payload bit → CRC fail
		corrupt(pkts[0], 0, 0xFF),                         // magic damage
		pkts[0][:stream.PacketHeaderSize-2],               // truncated header
	)
	return entries
}

// feedbackCorpus: receiver congestion-feedback payloads (the 32-byte
// ControlFeedback body) — healthy reports, boundary values, and damaged
// siblings on both sides of the size fence.
func feedbackCorpus() [][]byte {
	healthy := stream.AppendFeedback(nil, stream.Feedback{
		Report: 3, HighestFrame: 17, Received: 900, Lost: 45,
		NACKs: 51, Decoded: 14, Concealed: 2, Skipped: 1,
	})
	lossless := stream.AppendFeedback(nil, stream.Feedback{Report: 1, Received: 300, Decoded: 12})
	saturated := stream.AppendFeedback(nil, stream.Feedback{
		Report: 1 << 31, HighestFrame: ^uint32(0), Received: ^uint32(0), Lost: ^uint32(0),
		NACKs: ^uint32(0), Decoded: ^uint32(0), Concealed: ^uint32(0), Skipped: ^uint32(0),
	})
	return [][]byte{
		healthy,
		lossless,
		saturated,
		stream.AppendFeedback(nil, stream.Feedback{}), // all-zero report
		corrupt(healthy, 0, 0xFF),                     // report-number damage
		corrupt(healthy, 12, 0x80),                    // loss-count damage
		healthy[:stream.FeedbackSize/2],               // truncated
		append(append([]byte(nil), healthy...), 0),    // one byte long
	}
}

// parityCorpus: FEC parity payloads (the ParityGroup wire form) —
// healthy stride-1 and interleaved stride-2 groups, geometry boundary
// values, and damaged siblings on both sides of every validation fence.
func parityCorpus() [][]byte {
	rng := rand.New(rand.NewSource(14))
	body := make([]byte, 2+300)
	rng.Read(body)
	tail := make([]byte, 2+41) // ragged-tail group: short widest member
	rng.Read(tail)
	healthy := stream.AppendParity(nil, stream.ParityGroup{
		BaseSeq: 117, Count: 4, Stride: 1, FrameFirstSeq: 115, FragCount: 9, Body: body})
	interleaved := stream.AppendParity(nil, stream.ParityGroup{
		BaseSeq: 115, Count: 5, Stride: 2, FrameFirstSeq: 115, FragCount: 9, Body: body})
	entries := [][]byte{
		healthy,
		interleaved,
		stream.AppendParity(nil, stream.ParityGroup{ // singleton group
			BaseSeq: 40, Count: 1, Stride: 1, FrameFirstSeq: 40, FragCount: 1, Body: tail}),
		stream.AppendParity(nil, stream.ParityGroup{ // widest legal span
			BaseSeq: 1 << 30, Count: stream.MaxParityGroup, Stride: stream.MaxParityStride,
			FrameFirstSeq: 1 << 30, FragCount: 600, Body: tail}),
		stream.AppendParity(nil, stream.ParityGroup{ // seq-space wraparound
			BaseSeq: 2, Count: 3, Stride: 1, FrameFirstSeq: ^uint32(0) - 1, FragCount: 8, Body: tail}),
	}
	entries = append(entries,
		corrupt(healthy, 4, 0xFF),           // count beyond MaxParityGroup
		corrupt(healthy, 5, 0x0F),           // stride beyond MaxParityStride
		corrupt(healthy, 0, 0x80),           // base seq far outside the frame
		corrupt(healthy, 10, 0xFF),          // fragment-count damage
		healthy[:stream.ParityHeaderSize+1], // body too short
		healthy[:3],                         // truncated header
	)
	return entries
}

func main() {
	flag.Parse()
	decompress, roundTrip := entropyCorpus()
	for dir, entries := range map[string][][]byte{
		"internal/codec/testdata/fuzz/FuzzReadFrameFrom":       codecCorpus(),
		"internal/codec/testdata/fuzz/FuzzParseLayerDirectory": layerCorpus(),
		"internal/attr/testdata/fuzz/FuzzDecode":               attrCorpus(),
		"internal/entropy/testdata/fuzz/FuzzDecompressBytes":   decompress,
		"internal/entropy/testdata/fuzz/FuzzRoundTrip":         roundTrip,
		"internal/entropy/testdata/fuzz/FuzzSliceDecoder":      decompress,
		"internal/interframe/testdata/fuzz/FuzzDecodeP":        interframeCorpus(),
		"pcc/stream/testdata/fuzz/FuzzParsePacket":             packetCorpus(),
		"pcc/stream/testdata/fuzz/FuzzParseFeedback":           feedbackCorpus(),
		"pcc/stream/testdata/fuzz/FuzzParseParity":             parityCorpus(),
	} {
		if err := writeCorpus(filepath.Join(*root, dir), entries); err != nil {
			log.Fatal(err)
		}
	}
}
