package kdtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/edgesim"
	"repro/internal/geom"
)

func dev() *edgesim.Device { return edgesim.NewXavier(edgesim.Mode15W) }

func randomCloud(seed int64, n int, depth uint) *geom.VoxelCloud {
	rng := rand.New(rand.NewSource(seed))
	limit := int(uint32(1) << depth)
	vc := &geom.VoxelCloud{Depth: depth}
	for i := 0; i < n; i++ {
		vc.Voxels = append(vc.Voxels, geom.Voxel{
			X: uint32(rng.Intn(limit)), Y: uint32(rng.Intn(limit)), Z: uint32(rng.Intn(limit)),
		})
	}
	return vc
}

func voxelSet(vs []geom.Voxel) map[[3]uint32]bool {
	s := make(map[[3]uint32]bool, len(vs))
	for _, v := range vs {
		s[[3]uint32{v.X, v.Y, v.Z}] = true
	}
	return s
}

func TestRoundTripRandom(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		vc := randomCloud(seed, 3000, 8)
		data, err := Encode(dev(), vc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(dev(), data, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := voxelSet(vc.Voxels)
		if len(got) != len(want) {
			t.Fatalf("seed %d: decoded %d, want %d (deduplicated)", seed, len(got), len(want))
		}
		for _, v := range got {
			if !want[[3]uint32{v.X, v.Y, v.Z}] {
				t.Fatalf("seed %d: unexpected voxel %v", seed, v)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	d := dev()
	f := func(raw [][3]uint16) bool {
		vc := &geom.VoxelCloud{Depth: 5}
		for _, r := range raw {
			vc.Voxels = append(vc.Voxels, geom.Voxel{
				X: uint32(r[0] & 31), Y: uint32(r[1] & 31), Z: uint32(r[2] & 31)})
		}
		data, err := Encode(d, vc)
		if err != nil {
			return false
		}
		got, err := Decode(d, data, 5)
		if err != nil {
			return false
		}
		want := voxelSet(vc.Voxels)
		if len(got) != len(want) {
			return false
		}
		for _, v := range got {
			if !want[[3]uint32{v.X, v.Y, v.Z}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEmptyCloud(t *testing.T) {
	d := dev()
	data, err := Encode(d, &geom.VoxelCloud{Depth: 6})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(d, data, 6)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
}

func TestSinglePoint(t *testing.T) {
	d := dev()
	vc := &geom.VoxelCloud{Depth: 10, Voxels: []geom.Voxel{{X: 513, Y: 2, Z: 1000}}}
	data, err := Encode(d, vc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(d, data, 10)
	if err != nil || len(got) != 1 || got[0].X != 513 || got[0].Y != 2 || got[0].Z != 1000 {
		t.Fatalf("single point: %v %v", got, err)
	}
}

func TestDepthValidation(t *testing.T) {
	if _, err := Encode(dev(), &geom.VoxelCloud{Depth: 0}); err == nil {
		t.Error("bad depth encode must fail")
	}
	if _, err := Decode(dev(), []byte{0, 0, 0, 0, 0}, 0); err == nil {
		t.Error("bad depth decode must fail")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(dev(), nil, 5); err == nil {
		t.Error("nil stream must fail")
	}
	// A stream claiming an absurd point count must be rejected.
	vc := randomCloud(4, 10, 5)
	data, _ := Encode(dev(), vc)
	// Flip bits in the middle; decode must either fail or produce at most
	// the claimed count — never panic.
	for i := 5; i < len(data); i++ {
		corrupted := append([]byte{}, data...)
		corrupted[i] ^= 0x55
		_, _ = Decode(dev(), corrupted, 5)
	}
}

func TestCompressesStructuredData(t *testing.T) {
	spec, err := dataset.SpecByName("loot")
	if err != nil {
		t.Fatal(err)
	}
	vc, err := dataset.NewGenerator(spec, 0.02).Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(dev(), vc)
	if err != nil {
		t.Fatal(err)
	}
	rawGeo := 12 * vc.Len() // 3 x uint32
	if len(data) >= rawGeo/3 {
		t.Fatalf("kd stream %d bytes >= raw/3 %d", len(data), rawGeo/3)
	}
}

func TestSerialCPUAccounting(t *testing.T) {
	d := dev()
	vc := randomCloud(5, 2000, 8)
	if _, err := Encode(d, vc); err != nil {
		t.Fatal(err)
	}
	for _, k := range d.Kernels() {
		if k.Engine != edgesim.EngineCPU {
			t.Fatalf("kernel %s must be CPU-serial", k.Name)
		}
	}
	if d.SimTime() <= 0 {
		t.Fatal("no time accounted")
	}
}

func BenchmarkKDEncode10K(b *testing.B) {
	vc := randomCloud(6, 10000, 10)
	d := dev()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(d, vc); err != nil {
			b.Fatal(err)
		}
	}
}
