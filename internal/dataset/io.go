package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/geom"
)

// Frame I/O: a minimal binary container for voxelized frames (".pcf"),
// used by the CLI tools to pass frames between pccgen, pcc, and pccbench.
//
// Layout (little endian):
//
//	magic   [4]byte  "PCF1"
//	depth   uint8
//	count   uint32
//	voxels  count * (x,y,z uint32, r,g,b uint8)

var pcfMagic = [4]byte{'P', 'C', 'F', '1'}

// ErrBadFormat reports an unrecognized or corrupt frame file.
var ErrBadFormat = errors.New("dataset: bad frame format")

// WriteFrame serializes a voxel cloud.
func WriteFrame(w io.Writer, vc *geom.VoxelCloud) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(pcfMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(vc.Depth)); err != nil {
		return err
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(vc.Len()))
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	for _, v := range vc.Voxels {
		binary.LittleEndian.PutUint32(u32[:], v.X)
		bw.Write(u32[:])
		binary.LittleEndian.PutUint32(u32[:], v.Y)
		bw.Write(u32[:])
		binary.LittleEndian.PutUint32(u32[:], v.Z)
		bw.Write(u32[:])
		bw.WriteByte(v.C.R)
		bw.WriteByte(v.C.G)
		bw.WriteByte(v.C.B)
	}
	return bw.Flush()
}

// ReadFrame deserializes a voxel cloud written by WriteFrame.
func ReadFrame(r io.Reader) (*geom.VoxelCloud, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, ErrBadFormat
	}
	if magic != pcfMagic {
		return nil, ErrBadFormat
	}
	depth, err := br.ReadByte()
	if err != nil {
		return nil, ErrBadFormat
	}
	if depth == 0 || depth > 21 {
		return nil, fmt.Errorf("dataset: bad depth %d", depth)
	}
	var u32 [4]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, ErrBadFormat
	}
	count := binary.LittleEndian.Uint32(u32[:])
	const maxReasonable = 1 << 27
	if count > maxReasonable {
		return nil, fmt.Errorf("dataset: implausible point count %d", count)
	}
	vc := &geom.VoxelCloud{Depth: uint(depth), Voxels: make([]geom.Voxel, count)}
	rec := make([]byte, 15)
	for i := range vc.Voxels {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, ErrBadFormat
		}
		vc.Voxels[i] = geom.Voxel{
			X: binary.LittleEndian.Uint32(rec[0:4]),
			Y: binary.LittleEndian.Uint32(rec[4:8]),
			Z: binary.LittleEndian.Uint32(rec[8:12]),
			C: geom.Color{R: rec[12], G: rec[13], B: rec[14]},
		}
	}
	if err := vc.Validate(); err != nil {
		return nil, err
	}
	return vc, nil
}
