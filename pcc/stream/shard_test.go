package stream

// Relay-tree tests: the shard partition invariants and the lock-scope
// claims behind the 10k-viewer fan-out.
//
//   - partition: every attached viewer maps to exactly one shard (the
//     deterministic id % S function), explicit and assigned ids alike;
//   - detach-in-flight: a viewer detaching mid-stream never makes the
//     remaining viewers drop or double-receive a frame — relay delivers
//     each ring frame to each surviving viewer exactly once;
//   - frozen ring: a published payload is immutable until its last
//     reference is released, even while the publisher's scratch buffer is
//     recycled and slots are overwritten (checksum-verified);
//   - churn: 1k viewers attaching, storming the control plane (NACK,
//     feedback, refresh), and detaching while the stream runs — the
//     encode path never blocks on a viewer, proven under -race;
//   - shutdown: Close while viewers churn terminates without deadlock.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
)

// TestServerShardPartition proves the partition function: every viewer —
// explicit or server-assigned id — lands on exactly one shard, the one
// id % Shards names, and the per-shard gauges sum to the attachment count.
func TestServerShardPartition(t *testing.T) {
	ctx := context.Background()
	sv := NewServer(ctx, ServerConfig{
		Options: testOptions(codec.IntraInterV1),
		Shards:  4,
	})
	defer sv.Cancel()

	var viewers []*Viewer
	for _, id := range []uint32{7, 8, 9, 10} { // one per shard at S=4
		v, err := sv.Attach(ViewerConfig{StreamID: id})
		if err != nil {
			t.Fatalf("attach explicit %d: %v", id, err)
		}
		viewers = append(viewers, v)
	}
	for i := 0; i < 12; i++ { // server-assigned
		v, err := sv.Attach(ViewerConfig{})
		if err != nil {
			t.Fatalf("attach assigned: %v", err)
		}
		viewers = append(viewers, v)
	}
	if _, err := sv.Attach(ViewerConfig{StreamID: 9}); err == nil {
		t.Fatal("duplicate explicit id attached")
	}

	seen := map[uint32]int{}
	for _, v := range viewers {
		want := sv.shardOf(v.id)
		if v.shard != want {
			t.Fatalf("viewer %d owned by shard %d, partition function says %d",
				v.id, v.shard.idx, want.idx)
		}
		owners := 0
		for _, sh := range sv.shards {
			if sh.lookup(v.id) == v {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("viewer %d found on %d shards, want exactly 1", v.id, owners)
		}
		seen[v.id]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("stream id %d assigned %d times", id, n)
		}
	}

	m := sv.Metrics()
	if m.Shards != 4 || len(m.PerShard) != 4 {
		t.Fatalf("Shards=%d PerShard=%d, want 4/4", m.Shards, len(m.PerShard))
	}
	total := int64(0)
	for _, s := range m.PerShard {
		total += s.Viewers
	}
	if total != int64(len(viewers)) || m.Viewers != len(viewers) {
		t.Fatalf("per-shard viewers sum %d, Viewers %d, want %d",
			total, m.Viewers, len(viewers))
	}
}

// seqTracker is a PacketOut sink that fails on any duplicated data-packet
// sequence number and records which frame indices arrived.
type seqTracker struct {
	mu     sync.Mutex
	seqs   map[uint32]bool
	frames map[uint32]bool
	dup    error
}

func newSeqTracker() *seqTracker {
	return &seqTracker{seqs: map[uint32]bool{}, frames: map[uint32]bool{}}
}

func (s *seqTracker) packetOut(_ context.Context, pkt []byte) error {
	flags := pkt[3]
	seq := binary.LittleEndian.Uint32(pkt[17:21])
	frame := binary.LittleEndian.Uint32(pkt[8:12])
	s.mu.Lock()
	defer s.mu.Unlock()
	if flags&FlagRetransmit == 0 {
		if s.seqs[seq] {
			s.dup = fmt.Errorf("packet seq %d sent twice", seq)
		}
		s.seqs[seq] = true
	}
	s.frames[frame] = true
	return nil
}

// TestServerDetachInFlight churns detaches while the stream runs and
// proves the survivors' delivery is exact: every frame index arrives
// exactly once per surviving viewer (no drop, no double-send), even for
// frames in flight through the relay when a partition neighbour detached.
func TestServerDetachInFlight(t *testing.T) {
	frames := testFrames(t, 12)
	ctx := context.Background()
	sv := NewServer(ctx, ServerConfig{
		Options: testOptions(codec.IntraInterV1),
		Shards:  2,
	})

	const nKeep, nChurn = 4, 6
	keeps := make([]*seqTracker, nKeep)
	var keepViewers []*Viewer
	for i := range keeps {
		keeps[i] = newSeqTracker()
		v, err := sv.Attach(ViewerConfig{PacketOut: keeps[i].packetOut})
		if err != nil {
			t.Fatal(err)
		}
		keepViewers = append(keepViewers, v)
	}
	var churned []*Viewer
	for i := 0; i < nChurn; i++ {
		v, err := sv.Attach(ViewerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		churned = append(churned, v)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // detach the churn set while frames are in flight
		defer wg.Done()
		for _, v := range churned {
			sv.Detach(v)
		}
	}()
	for _, f := range frames {
		if err := sv.Submit(ctx, f); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}

	for i, v := range keepViewers {
		m := v.Metrics()
		if m.FramesEnqueued != int64(len(frames)) || m.FramesSent != int64(len(frames)) {
			t.Fatalf("survivor %d: enqueued %d sent %d, want %d/%d",
				i, m.FramesEnqueued, m.FramesSent, len(frames), len(frames))
		}
		tr := keeps[i]
		tr.mu.Lock()
		dup, got := tr.dup, len(tr.frames)
		tr.mu.Unlock()
		if dup != nil {
			t.Fatalf("survivor %d: %v", i, dup)
		}
		if got != len(frames) {
			t.Fatalf("survivor %d received %d distinct frames, want %d", i, got, len(frames))
		}
	}
	// Detached viewers must not have been offered frames after detach:
	// their sent count can trail their enqueue count, never exceed it.
	for i, v := range churned {
		m := v.Metrics()
		if m.FramesSent > m.FramesEnqueued {
			t.Fatalf("churned %d: sent %d > enqueued %d", i, m.FramesSent, m.FramesEnqueued)
		}
	}
}

// TestRingFrozenBytes proves the publish-freeze invariant: the ring copies
// the publisher's buffer, so later mutation of that buffer — the transmit
// stage recycles its scratch — and slot overwrite never touch a payload
// any holder can still read. Checksums are verified concurrently from
// consumer goroutines and again on long-held references at the end.
func TestRingFrozenBytes(t *testing.T) {
	const shards, total = 3, 64
	r := newFrameRing(4, shards)

	var held [shards][]*sharedFrame
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for {
				f, ok := r.waitNext(s)
				if !ok {
					return
				}
				if !f.p.frozen() {
					t.Errorf("shard %d: frame %d mutated after publish", s, f.seq)
				}
				if f.seq%7 == uint64(s) { // hold some refs across overwrites
					f.p.retain()
					held[s] = append(held[s], f)
				}
				r.advance(s)
				f.pending.Add(-1)
			}
		}(s)
	}

	scratch := make([]byte, 512)
	for i := 0; i < total; i++ {
		for j := range scratch {
			scratch[j] = byte(i + j)
		}
		f := &sharedFrame{index: i, ftype: codec.PFrame, p: newFramePayload(scratch)}
		f.pending.Store(shards)
		if !r.publish(f) {
			t.Fatal("publish refused")
		}
		for j := range scratch {
			scratch[j] = 0xAA // recycle the publisher's buffer immediately
		}
	}
	r.close()
	wg.Wait()

	for s := range held {
		for _, f := range held[s] {
			if !f.p.frozen() {
				t.Fatalf("held frame %d mutated after slot overwrite", f.seq)
			}
			f.p.release()
		}
	}
	r.drain()
}

// TestServerShardChurn1k is the lock-scope proof for the relay tree: 1000
// viewers attach, storm the control plane (NACKs, feedback, refresh
// requests), and detach while the shared pipeline streams — all under
// -race in CI. Viewer churn must touch only the owning shard, so the
// stream completes with every submitted frame encoded exactly once.
func TestServerShardChurn1k(t *testing.T) {
	const nViewers = 1000
	frames := testFrames(t, 10)
	ctx := context.Background()
	sv := NewServer(ctx, ServerConfig{
		Options: testOptions(codec.IntraInterV1),
		Shards:  8,
	})

	var wg sync.WaitGroup
	var attached atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < nViewers/8; i++ {
				v, err := sv.Attach(ViewerConfig{})
				if err != nil {
					t.Errorf("churn attach: %v", err)
					return
				}
				attached.Add(1)
				_ = sv.HandleControl(Control{Kind: ControlFeedback, StreamID: v.StreamID(),
					Feedback: Feedback{Report: 1, Received: 90, Lost: 10}})
				_ = sv.HandleControl(Control{Kind: ControlNACK, StreamID: v.StreamID(),
					Seqs: []uint32{0, 1, 2}})
				if i%16 == 0 {
					_ = sv.HandleControl(Control{Kind: ControlRefresh, StreamID: v.StreamID()})
				}
				if i%4 != 0 {
					sv.Detach(v)
				} else {
					defer sv.Detach(v)
				}
			}
		}(g)
	}
	for _, f := range frames {
		if err := sv.Submit(ctx, f); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}

	if n := attached.Load(); n != nViewers {
		t.Fatalf("attached %d viewers, want %d", n, nViewers)
	}
	m := sv.Metrics()
	if m.FramesEncoded != int64(len(frames)) {
		t.Fatalf("FramesEncoded %d, want %d (encode-once under churn)",
			m.FramesEncoded, len(frames))
	}
	if m.Viewers != 0 {
		t.Fatalf("%d viewers still attached after churn", m.Viewers)
	}
	reports := int64(0)
	for _, s := range m.PerShard {
		reports += s.FeedbackReports
	}
	if reports == 0 {
		t.Fatal("no feedback reports reached the shards")
	}
}

// TestServerCloseDuringChurn proves shutdown is deadlock-free while the
// control plane and partition are hot: Close races attaching, detaching,
// feedback-reporting viewers and must still terminate, after which Attach
// reports ErrServerClosed and no viewer is left attached.
func TestServerCloseDuringChurn(t *testing.T) {
	frames := testFrames(t, 6)
	ctx := context.Background()
	sv := NewServer(ctx, ServerConfig{
		Options: testOptions(codec.IntraInterV1),
		Shards:  4,
	})

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				v, err := sv.Attach(ViewerConfig{})
				if err != nil {
					if errors.Is(err, ErrServerClosed) {
						return // Close won the race mid-churn: the goal
					}
					t.Errorf("churn attach: %v", err)
					return
				}
				_ = v.HandleControl(Control{Kind: ControlFeedback,
					Feedback: Feedback{Report: uint32(i + 1), Received: 99, Lost: 1}})
				if i%32 == 0 {
					_ = sv.Metrics()
				}
				sv.Detach(v)
			}
		}(g)
	}

	for _, f := range frames {
		if err := sv.Submit(ctx, f); err != nil {
			t.Fatal(err)
		}
	}
	closed := make(chan error, 1)
	go func() { closed <- sv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked against viewer churn")
	}
	wg.Wait()

	if _, err := sv.Attach(ViewerConfig{}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("attach after close: err=%v, want ErrServerClosed", err)
	}
	if m := sv.Metrics(); m.Viewers != 0 {
		t.Fatalf("%d viewers attached after close + churn drain", m.Viewers)
	}
}

// waitRelayed blocks until every shard has finished relaying n frames.
func waitRelayed(t *testing.T, sv *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for sv.relayed.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d frames to relay (got %d)", n, sv.relayed.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// capturePayloads snapshots every live payload the server currently holds
// a reference to — keyframe cache, shard retransmit caches, ring slots —
// so a teardown test can assert the refcounts unwind to zero.
func capturePayloads(t *testing.T, sv *Server) []*framePayload {
	t.Helper()
	seen := make(map[*framePayload]bool)
	var ps []*framePayload
	add := func(p *framePayload) {
		if p != nil && !seen[p] {
			seen[p] = true
			ps = append(ps, p)
		}
	}
	sv.mu.Lock()
	if sv.cache != nil {
		add(sv.cache.p)
	}
	sv.mu.Unlock()
	for _, sh := range sv.shards {
		sh.mu.Lock()
		for _, e := range sh.retx {
			add(e.f.p)
		}
		sh.mu.Unlock()
	}
	sv.ring.mu.Lock()
	for _, f := range sv.ring.slots {
		if f != nil {
			add(f.p)
		}
	}
	sv.ring.mu.Unlock()
	if len(ps) == 0 {
		t.Fatal("captured no live payloads")
	}
	return ps
}

// TestServerCloseReleasesPayloadRefs proves the reference-count ledger
// balances on a clean close: every payload the relay tree held — ring
// slots, shard retransmit caches, the keyframe cache, and the late-join
// path's creation/cache/queue references — reaches zero references, so
// the buffers return to the pool.
func TestServerCloseReleasesPayloadRefs(t *testing.T) {
	frames := testFrames(t, 6)
	opts := testOptions(codec.IntraInterV1)
	ctx := context.Background()
	sv := NewServer(ctx, ServerConfig{Options: opts, Shards: 2, ViewerQueue: 32})

	for _, f := range frames[:4] {
		if err := sv.Submit(ctx, f); err != nil {
			t.Fatal(err)
		}
	}
	waitRelayed(t, sv, 4)

	// Late join through the keyframe cache: this path takes the creation,
	// retx-cache, and queue references that must all unwind by Close.
	sink := newViewerSink(opts)
	if _, err := sv.Attach(ViewerConfig{PacketOut: sink.packetOut}); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames[4:] {
		if err := sv.Submit(ctx, f); err != nil {
			t.Fatal(err)
		}
	}
	waitRelayed(t, sv, int64(len(frames)))

	payloads := capturePayloads(t, sv)
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if n := p.refs.Load(); n != 0 {
			t.Fatalf("payload %d: %d references after Close, want 0 (pool recycling defeated)", i, n)
		}
	}
}

// TestServerCancelReleasesPayloadRefs proves Cancel is a complete
// teardown, not just an abort: after it returns, the ring slots, shard
// retransmit caches, and keyframe cache have released their references
// and the server refuses further attaches.
func TestServerCancelReleasesPayloadRefs(t *testing.T) {
	frames := testFrames(t, 6)
	opts := testOptions(codec.IntraInterV1)
	ctx := context.Background()
	sv := NewServer(ctx, ServerConfig{Options: opts, Shards: 2, ViewerQueue: 32})

	if _, err := sv.Attach(ViewerConfig{}); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := sv.Submit(ctx, f); err != nil {
			t.Fatal(err)
		}
	}
	waitRelayed(t, sv, int64(len(frames)))

	payloads := capturePayloads(t, sv)
	sv.Cancel()
	for i, p := range payloads {
		if n := p.refs.Load(); n != 0 {
			t.Fatalf("payload %d: %d references after Cancel, want 0 (pool recycling defeated)", i, n)
		}
	}
	if _, err := sv.Attach(ViewerConfig{}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("attach after cancel: err=%v, want ErrServerClosed", err)
	}
}

// TestServerAttachCloseRaceNoDeadlock drives the narrow Attach-vs-Close
// window deterministically: the test holds the shard lock so an attacher
// that already passed the first closed check parks on the partition
// insert, lets Close set the closed flag, then releases the lock. The
// viewer is inserted after Close's flag, so it must tear itself down —
// without waiting on a sender goroutine that never started — and Close
// must not hang on it either.
func TestServerAttachCloseRaceNoDeadlock(t *testing.T) {
	sv := NewServer(context.Background(), ServerConfig{
		Options: testOptions(codec.IntraInterV1),
		Shards:  1,
	})
	sh := sv.shards[0]

	sh.mu.Lock()
	attachErr := make(chan error, 1)
	go func() {
		_, err := sv.Attach(ViewerConfig{})
		attachErr <- err
	}()
	// Give the attacher time to pass the first closed check and park on
	// sh.mu. (If it hasn't yet, the test degrades to the trivial
	// closed-up-front path rather than flaking.)
	time.Sleep(10 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- sv.Close() }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sv.mu.Lock()
		c := sv.closed
		sv.mu.Unlock()
		if c {
			break
		}
		if time.Now().After(deadline) {
			sh.mu.Unlock()
			t.Fatal("Close never set the closed flag")
		}
		time.Sleep(time.Millisecond)
	}
	sh.mu.Unlock()

	select {
	case err := <-attachErr:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("attach racing close: err=%v, want ErrServerClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Attach deadlocked tearing down a viewer inserted after Close")
	}
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked against the racing attacher")
	}
	if m := sv.Metrics(); m.Viewers != 0 {
		t.Fatalf("%d viewers attached after the race", m.Viewers)
	}
}

// TestViewerRetxRecordSeqWrap proves NACK record lookups survive the
// uint32 packet-sequence wraparound: records straddling 2^32 resolve to
// the right frame, and sequences outside the window miss cleanly on both
// sides of the wrap.
func TestViewerRetxRecordSeqWrap(t *testing.T) {
	v := &Viewer{}
	base := uint32(0xFFFFFFF8) // 8 sequence numbers before the wrap
	for i := 0; i < 4; i++ {   // 5-packet frames: two records cross the wrap
		v.records = append(v.records, sentRec{
			firstSeq: base + uint32(i*5),
			n:        5,
			frameSeq: uint64(i),
		})
		v.recPkts += 5
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := 0; i < 4; i++ {
		for off := uint32(0); off < 5; off++ {
			seq := base + uint32(i*5) + off
			rec, ok := v.findRecLocked(seq)
			if !ok || rec.frameSeq != uint64(i) {
				t.Fatalf("seq %#x: ok=%v frame=%d, want record %d", seq, ok, rec.frameSeq, i)
			}
		}
	}
	if _, ok := v.findRecLocked(base - 1); ok {
		t.Fatal("sequence before the record window resolved to a record")
	}
	if _, ok := v.findRecLocked(base + 20); ok {
		t.Fatal("sequence past the record window resolved to a record")
	}
}
