package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/linksim"
)

// congested is a link narrow enough that realistic frames take hundreds of
// simulated milliseconds each — the regime where the backpressure policy
// matters.
var congested = linksim.Link{Name: "congested", BandwidthMbps: 1, RTTMs: 40,
	TxNanojoulePerByte: 1000, RxNanojoulePerByte: 500}

// testFrames generates n small frames of one Table I video.
func testFrames(t testing.TB, n int) []*geom.VoxelCloud {
	t.Helper()
	spec, err := dataset.SpecByName("loot")
	if err != nil {
		t.Fatal(err)
	}
	g := dataset.NewGenerator(spec, 0.02)
	out := make([]*geom.VoxelCloud, n)
	for i := range out {
		if out[i], err = g.Frame(i); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// testOptions shrinks the paper's segment counts to the test scale.
func testOptions(d codec.Design) codec.Options {
	o := codec.OptionsFor(d)
	o.IntraAttr.Segments = 64
	o.Inter.Segments = 96
	o.Inter.Candidates = 16
	return o
}

// checkOrdered asserts results cover seqs 0..n-1 in strictly increasing
// order, that dropped frames are all P, and that every I-frame survived.
func checkOrdered(t *testing.T, results []Result, n int) (drops int) {
	t.Helper()
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Seq != i {
			t.Fatalf("result %d has seq %d: delivery out of order", i, r.Seq)
		}
		if r.Dropped {
			drops++
			if r.Stats.Type != codec.PFrame {
				t.Fatalf("frame %d dropped but is %v: only P-frames may drop", r.Seq, r.Stats.Type)
			}
		}
	}
	return drops
}

// The pipelined encoder must produce the exact byte stream of the
// sequential core.VideoWriter: same frames, same order, same bits — the
// strongest in-order-delivery check available.
func TestPipelineMatchesSequentialStream(t *testing.T) {
	frames := testFrames(t, 6)
	opts := testOptions(codec.IntraInterV1)

	var seq bytes.Buffer
	vw := core.NewVideoWriter(&seq, edgesim.NewXavier(edgesim.Mode15W), opts)
	for _, f := range frames {
		if _, err := vw.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := vw.Close(); err != nil {
		t.Fatal(err)
	}

	var piped bytes.Buffer
	s := New(context.Background(), Config{Options: opts, Output: &piped})
	col := NewCollector(s)
	for _, f := range frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	results := col.Wait()
	if drops := checkOrdered(t, results, len(frames)); drops != 0 {
		t.Fatalf("%d drops under the Block policy", drops)
	}
	if !bytes.Equal(seq.Bytes(), piped.Bytes()) {
		t.Fatalf("pipelined stream (%d B) differs from sequential stream (%d B)",
			piped.Len(), seq.Len())
	}
	m := s.Metrics()
	if m.Submitted != int64(len(frames)) || m.Delivered != int64(len(frames)) || m.Dropped != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.GeometrySim <= 0 || m.AttrSim <= 0 {
		t.Fatalf("per-stage device ledgers empty: geom=%v attr=%v", m.GeometrySim, m.AttrSim)
	}
}

// waitForDrop blocks until the transmit queue has marked at least one
// drop. While the gate is held this is a guaranteed event, not a timing
// hope: the transmitter is stuck inside Send, the transmit queue is full
// and frozen, and the packetizer holds the next frame — its only possible
// move is a push that marks the oldest P-frame.
func waitForDrop(s *Session) error {
	deadline := time.Now().Add(30 * time.Second)
	for s.gaugeTx.Snapshot().Dropped == 0 {
		if time.Now().After(deadline) {
			return errors.New("no drop marked while the transmit gate was held")
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// gatedSession runs one session whose transmitter is held at a gate until
// every frame has been submitted — a deterministic stand-in for a link so
// congested nothing drains during capture. Under DropOldestP the gate
// additionally stays shut until the first drop has been marked, so the
// policy provably fired before the queue is allowed to drain. Returns the
// results and the session's final metrics.
func gatedSession(t *testing.T, frames []*geom.VoxelCloud, policy Policy, out io.Writer) ([]Result, Metrics) {
	t.Helper()
	gate := make(chan struct{})
	s := New(context.Background(), Config{
		Options: testOptions(codec.IntraInterV1),
		Link:    congested,
		Queue:   2,
		Policy:  policy,
		Output:  out,
		Send: func(ctx context.Context, seq int, wire []byte) error {
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	col := NewCollector(s)
	for _, f := range frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if policy == DropOldestP {
		if err := waitForDrop(s); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return col.Wait(), s.Metrics()
}

// Under DropOldestP a congested link must shed P-frames (and only
// P-frames) while the stream stays in order and decodable.
func TestDropOldestPUnderCongestion(t *testing.T) {
	frames := testFrames(t, 8)
	var wire bytes.Buffer
	results, m := gatedSession(t, frames, DropOldestP, &wire)

	drops := checkOrdered(t, results, len(frames))
	if drops == 0 {
		t.Fatal("no P-frames dropped although the link was fully congested")
	}
	if m.Dropped != int64(drops) || m.Delivered != int64(len(frames)-drops) {
		t.Fatalf("metrics disagree with results: %+v vs %d drops", m, drops)
	}
	tx := m.Queues[3]
	if tx.MaxDepth > 2 {
		t.Fatalf("transmit queue watermark %d exceeds capacity 2", tx.MaxDepth)
	}
	if tx.Dropped != int64(drops) {
		t.Fatalf("gauge dropped=%d, results dropped=%d", tx.Dropped, drops)
	}

	// The surviving stream must decode: P-frames predict from the I-frame,
	// so shedding P-frames never breaks later frames.
	vr, err := core.NewVideoReader(bytes.NewReader(wire.Bytes()), edgesim.NewXavier(edgesim.Mode15W))
	if err != nil {
		t.Fatal(err)
	}
	decoded := 0
	for {
		_, _, err := vr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decoding survivor frame %d: %v", decoded, err)
		}
		decoded++
	}
	if decoded != len(frames)-drops {
		t.Fatalf("decoded %d frames, want %d survivors", decoded, len(frames)-drops)
	}
}

// The Block policy never drops, whatever the congestion.
func TestBlockPolicyIsLossless(t *testing.T) {
	frames := testFrames(t, 8)
	results, m := gatedSession(t, frames, Block, nil)
	if drops := checkOrdered(t, results, len(frames)); drops != 0 {
		t.Fatalf("%d drops under Block policy", drops)
	}
	if m.Delivered != int64(len(frames)) {
		t.Fatalf("delivered %d of %d", m.Delivered, len(frames))
	}
}

// Cancelling mid-GOP must tear the whole pipeline down promptly: Submit
// refuses further frames, Results closes, Close reports the cancellation.
func TestGracefulCancelMidGOP(t *testing.T) {
	frames := testFrames(t, 6)
	s := New(context.Background(), Config{
		Options: testOptions(codec.IntraInterV1),
		Queue:   2,
		// The link is stuck: only cancellation releases the transmitter.
		Send: func(ctx context.Context, _ int, _ []byte) error {
			<-ctx.Done()
			return ctx.Err()
		},
	})
	col := NewCollector(s)
	// Fill the pipeline partway into the second GOP (frames 0..4).
	for _, f := range frames[:5] {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	s.Cancel()
	if err := s.Submit(context.Background(), frames[5]); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit after Cancel = %v, want context.Canceled", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Close = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after Cancel: pipeline failed to drain")
	}
	for _, r := range col.Wait() {
		if r.Dropped {
			t.Fatalf("frame %d reported dropped on cancellation", r.Seq)
		}
	}
}

// A parent-context cancellation aborts the session the same way Cancel does.
func TestParentContextCancellation(t *testing.T) {
	frames := testFrames(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	s := New(ctx, Config{
		Options: testOptions(codec.IntraOnly),
		Queue:   1,
		Send: func(sctx context.Context, _ int, _ []byte) error {
			<-sctx.Done()
			return sctx.Err()
		},
	})
	col := NewCollector(s)
	for _, f := range frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	if err := s.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close = %v, want context.Canceled", err)
	}
	col.Wait()
}

// A transport failure surfaces as the session error.
func TestTransportErrorAborts(t *testing.T) {
	frames := testFrames(t, 2)
	boom := errors.New("link down")
	s := New(context.Background(), Config{
		Options: testOptions(codec.IntraOnly),
		Send:    func(context.Context, int, []byte) error { return boom },
	})
	col := NewCollector(s)
	for _, f := range frames {
		if err := s.Submit(context.Background(), f); err != nil {
			break // pipeline may already have aborted
		}
	}
	if err := s.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want transport error", err)
	}
	col.Wait()
}

// The acceptance test: ≥2 concurrent sessions, ≥8 frames each in an IPP
// GOP, full pipeline, congested link. Verifies per-session in-order
// delivery, bounded queue depth, and that only P-frames are dropped.
// Run with -race: the sessions share nothing but the Go runtime.
func TestMultiSessionCongestedRace(t *testing.T) {
	const nSessions, nFrames = 2, 9
	frames := testFrames(t, nFrames)

	var wg sync.WaitGroup
	errs := make(chan error, nSessions)
	for sid := 0; sid < nSessions; sid++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			gate := make(chan struct{})
			s := New(context.Background(), Config{
				Options: testOptions(codec.IntraInterV1),
				Link:    congested,
				Queue:   2,
				Policy:  DropOldestP,
				Send: func(ctx context.Context, _ int, _ []byte) error {
					select {
					case <-gate:
						return nil
					case <-ctx.Done():
						return ctx.Err()
					}
				},
			})
			col := NewCollector(s)
			for _, f := range frames {
				if err := s.Submit(context.Background(), f); err != nil {
					errs <- fmt.Errorf("session %d submit: %w", sid, err)
					return
				}
			}
			if err := waitForDrop(s); err != nil {
				errs <- fmt.Errorf("session %d: %w", sid, err)
				s.Cancel()
				s.Close()
				return
			}
			close(gate)
			if err := s.Close(); err != nil {
				errs <- fmt.Errorf("session %d close: %w", sid, err)
				return
			}
			results := col.Wait()
			drops := 0
			for i, r := range results {
				if r.Seq != i {
					errs <- fmt.Errorf("session %d: result %d has seq %d", sid, i, r.Seq)
					return
				}
				if r.Dropped {
					drops++
					if r.Stats.Type != codec.PFrame {
						errs <- fmt.Errorf("session %d dropped a %v frame", sid, r.Stats.Type)
						return
					}
				} else if i%3 == 0 && r.Stats.Type != codec.IFrame {
					errs <- fmt.Errorf("session %d: frame %d should open a GOP, got %v", sid, i, r.Stats.Type)
					return
				}
			}
			if len(results) != nFrames {
				errs <- fmt.Errorf("session %d: %d results", sid, len(results))
				return
			}
			if drops == 0 {
				errs <- fmt.Errorf("session %d: no drops under full congestion", sid)
				return
			}
			m := s.Metrics()
			for _, q := range m.Queues {
				if q.MaxDepth > 2 {
					errs <- fmt.Errorf("session %d: queue %s watermark %d exceeds capacity", sid, q.Name, q.MaxDepth)
					return
				}
			}
			if m.Delivered+m.Dropped != nFrames {
				errs <- fmt.Errorf("session %d: delivered %d + dropped %d != %d", sid, m.Delivered, m.Dropped, nFrames)
			}
		}(sid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Paced transmission actually spends wall time proportional to the
// modelled link latency, so a paced congested session backpressures in
// real time (smoke-level check; precise pacing is not asserted).
func TestPacedTransmitSmoke(t *testing.T) {
	frames := testFrames(t, 3)
	s := New(context.Background(), Config{
		Options: testOptions(codec.IntraOnly),
		Link:    congested,
		Pace:    0.001, // 1 ms real per simulated second
	})
	col := NewCollector(s)
	start := time.Now()
	for _, f := range frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	col.Wait()
	if elapsed := time.Since(start); elapsed <= 0 {
		t.Fatalf("elapsed = %v", elapsed)
	}
	if m := s.Metrics(); m.LinkTime <= 0 {
		t.Fatalf("no link time accounted: %+v", m)
	}
}

// Lookahead > 1 runs concurrent geometry workers; the wire stream must stay
// byte-identical to the sequential encode (in-order collector, GOP reference
// handoff intact) and the summed geometry ledgers must stay populated.
func TestLookaheadMatchesSequentialStream(t *testing.T) {
	frames := testFrames(t, 9)
	opts := testOptions(codec.IntraInterV1)

	var seq bytes.Buffer
	vw := core.NewVideoWriter(&seq, edgesim.NewXavier(edgesim.Mode15W), opts)
	for _, f := range frames {
		if _, err := vw.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := vw.Close(); err != nil {
		t.Fatal(err)
	}

	for _, look := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("lookahead=%d", look), func(t *testing.T) {
			var piped bytes.Buffer
			s := New(context.Background(), Config{Options: opts, Lookahead: look, Output: &piped})
			col := NewCollector(s)
			for _, f := range frames {
				if err := s.Submit(context.Background(), f); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			results := col.Wait()
			if drops := checkOrdered(t, results, len(frames)); drops != 0 {
				t.Fatalf("%d drops under the Block policy", drops)
			}
			if !bytes.Equal(seq.Bytes(), piped.Bytes()) {
				t.Fatalf("lookahead=%d stream (%d B) differs from sequential stream (%d B)",
					look, piped.Len(), seq.Len())
			}
			m := s.Metrics()
			if m.GeometrySim <= 0 || m.AttrSim <= 0 {
				t.Fatalf("device ledgers empty: geom=%v attr=%v", m.GeometrySim, m.AttrSim)
			}
		})
	}
}

// A lookahead session must also cancel cleanly while geometry workers are
// mid-flight (the collector and dispatcher drain without deadlock).
func TestLookaheadCancelMidStream(t *testing.T) {
	frames := testFrames(t, 8)
	s := New(context.Background(), Config{
		Options:   testOptions(codec.IntraOnly),
		Lookahead: 3,
	})
	col := NewCollector(s)
	for i, f := range frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
		if i == 4 {
			s.Cancel()
			break
		}
	}
	_ = s.Close()
	col.Wait() // must terminate
}
