package paroctree

// Serial per-tile octree serialization for the tiled encode path.
//
// A tile is a contiguous range of the frame's sorted, deduplicated leaf
// codes. The octree restricted to that subset still roots at code 0 (every
// leaf's depth-D ancestor is the whole-space root), so its BFS occupancy
// stream is decodable by the ordinary Deserialize with the frame's depth —
// each tile's geometry slab is self-contained. The construction here is
// deliberately serial: tiles are the unit of parallelism (the codec fans T
// of these out across the edgesim worker pool inside one frame), so the
// per-tile body must be a pool LEAF — plain straight-line code with no
// nested kernel dispatch.
//
// For the full leaf set the emitted stream is byte-identical to
// Build + SerializeInto (differential-tested), because both produce the
// same BFS mask sequence: per-level child masks, root first, levels in
// order, nodes within a level in ascending Morton order.

import (
	"fmt"

	"repro/internal/morton"
)

// TileScratch is the reusable arena for serial subtree serialization: one
// code and one mask buffer per level, grown to the largest tile built and
// then reused. A scratch must not be shared by concurrent tiles — the
// tiled encoder holds one per worker slot.
type TileScratch struct {
	codes [][]morton.Code
	masks [][]byte
}

func (s *TileScratch) ensure(depth uint) {
	for len(s.codes) <= int(depth) {
		s.codes = append(s.codes, nil)
	}
	for len(s.masks) <= int(depth) {
		s.masks = append(s.masks, nil)
	}
}

// SerializeSubtree appends the BFS occupancy stream of the octree over the
// given sorted, strictly-ascending leaf codes to dst and returns it. The
// leaves must be a subset of a depth-deep lattice (codes < 8^depth);
// Deserialize(stream, depth) recovers exactly these leaves.
func (s *TileScratch) SerializeSubtree(leaves []morton.Code, depth uint, dst []byte) ([]byte, error) {
	if len(leaves) == 0 {
		return nil, ErrNoPoints
	}
	if depth == 0 || depth > 21 {
		return nil, fmt.Errorf("paroctree: depth %d out of range [1,21]", depth)
	}
	s.ensure(depth)
	child := leaves
	total := 0
	for d := depth; d >= 1; d-- {
		pc := s.codes[d-1][:0]
		pm := s.masks[d-1][:0]
		for i, c := range child {
			if d == depth && i > 0 && c <= child[i-1] {
				return nil, fmt.Errorf("paroctree: leaf codes not strictly ascending at %d", i)
			}
			p := c.Parent()
			if len(pc) == 0 || pc[len(pc)-1] != p {
				pc = append(pc, p)
				pm = append(pm, 0)
			}
			pm[len(pm)-1] |= 1 << uint(c&7)
		}
		s.codes[d-1], s.masks[d-1] = pc, pm
		total += len(pm)
		child = pc
	}
	if len(s.codes[0]) != 1 || s.codes[0][0] != 0 {
		return nil, fmt.Errorf("paroctree: subtree did not converge to the root (got %v)", s.codes[0])
	}
	if dst == nil {
		dst = make([]byte, 0, total)
	}
	for d := uint(0); d < depth; d++ {
		dst = append(dst, s.masks[d]...)
	}
	return dst, nil
}

// DeserializeSerial reconstructs leaf codes from a BFS occupancy stream on
// the calling goroutine, with no device kernels — the per-tile decode
// counterpart of SerializeSubtree (tile decode bodies must also be pool
// leaves). Semantically identical to Deserialize.
func DeserializeSerial(stream []byte, depth uint) ([]morton.Code, error) {
	if depth == 0 || depth > 21 {
		return nil, fmt.Errorf("paroctree: depth %d out of range [1,21]", depth)
	}
	if len(stream) == 0 {
		return nil, nil
	}
	codes := []morton.Code{0}
	pos := 0
	for d := uint(0); d < depth; d++ {
		if pos+len(codes) > len(stream) {
			return nil, ErrBadStream
		}
		masks := stream[pos : pos+len(codes)]
		pos += len(codes)
		n := 0
		for i, m := range masks {
			if m == 0 {
				return nil, fmt.Errorf("paroctree: zero occupancy mask at depth %d node %d", d, i)
			}
			n += popcount8(m)
		}
		next := make([]morton.Code, 0, n)
		for i, m := range masks {
			base := codes[i] << 3
			for b := uint(0); b < 8; b++ {
				if m>>b&1 == 1 {
					next = append(next, base|morton.Code(b))
				}
			}
		}
		codes = next
	}
	if pos != len(stream) {
		return nil, fmt.Errorf("paroctree: %d trailing bytes", len(stream)-pos)
	}
	return codes, nil
}
