package morton

import (
	"repro/internal/edgesim"
	"repro/internal/geom"
)

// Slab (batch) Morton paths. Every pipeline stage consumes codes in bulk —
// octree build, sort keying, interframe lookup, code→voxel expansion — so
// these entry points process whole coordinate slices with the byte-wise LUT
// spread inlined in the loop, instead of a per-point call through Encode.
// The codes are identical to Encode/EncodeLUT (the differential tests pin
// this), so swapping a call site is byte-inert for every stream format.

// lut11 spreads an 11-bit chunk (2048 x 8 B = 16 KB, initialized from the
// canonical part1By2). Two lookups cover a full 21-bit coordinate — the
// fewest table hits per coordinate that still keeps the table L1/L2-sized,
// and measurably faster than both the byte-wise LUT (3 hits) and the inline
// magic-bits sequence in the slab loops.
var lut11 [2048]uint64

func init() {
	for i := range lut11 {
		lut11[i] = part1By2(uint64(i))
	}
}

// lutSpread3 interleaves one coordinate via two LUT lookups (bits 0-10 and
// 11-20; Encode masks to 21 bits, so higher bits are ignored identically).
func lutSpread3(v uint32) uint64 {
	return lut11[v&0x7FF] | lut11[v>>11&0x3FF]<<33
}

// EncodeBatch fills dst[i] = Encode(xs[i], ys[i], zs[i]) over the whole
// slab using the LUT path. All four slices must have equal length. When
// pool is non-nil the slab is chunk-parallelized over the kernel worker
// pool; pass nil from inside a kernel body (pool tasks must stay leaves).
func EncodeBatch(pool *edgesim.Pool, dst []Code, xs, ys, zs []uint32) {
	body := func(lo, hi int) {
		encodeRange(dst[lo:hi], xs[lo:hi], ys[lo:hi], zs[lo:hi])
	}
	if pool != nil {
		pool.Ranges(pool.Workers(), len(dst), body)
		return
	}
	body(0, len(dst))
}

func encodeRange(dst []Code, xs, ys, zs []uint32) {
	if len(dst) == 0 {
		return
	}
	_ = xs[len(dst)-1]
	_ = ys[len(dst)-1]
	_ = zs[len(dst)-1]
	for i := range dst {
		dst[i] = Code(lutSpread3(xs[i]) | lutSpread3(ys[i])<<1 | lutSpread3(zs[i])<<2)
	}
}

// DecodeBatch splits codes[i] into xs[i], ys[i], zs[i] over the whole slab.
// All four slices must have equal length. When pool is non-nil the slab is
// chunk-parallelized; pass nil from inside a kernel body.
func DecodeBatch(pool *edgesim.Pool, codes []Code, xs, ys, zs []uint32) {
	body := func(lo, hi int) {
		decodeRange(codes[lo:hi], xs[lo:hi], ys[lo:hi], zs[lo:hi])
	}
	if pool != nil {
		pool.Ranges(pool.Workers(), len(codes), body)
		return
	}
	body(0, len(codes))
}

func decodeRange(codes []Code, xs, ys, zs []uint32) {
	if len(codes) == 0 {
		return
	}
	_ = xs[len(codes)-1]
	_ = ys[len(codes)-1]
	_ = zs[len(codes)-1]
	for i, c := range codes {
		xs[i] = uint32(compact1By2(uint64(c)))
		ys[i] = uint32(compact1By2(uint64(c) >> 1))
		zs[i] = uint32(compact1By2(uint64(c) >> 2))
	}
}

// EncodeKeyed fills dst[i] = {Code(vs[i]), vs[i]} for a voxel slab (LUT
// path, serial). Kernel bodies hand it their [start, end) range so the
// parallel decomposition stays with the launching kernel.
func EncodeKeyed(dst []Keyed, vs []geom.Voxel) {
	if len(vs) == 0 {
		return
	}
	_ = dst[len(vs)-1]
	for i, v := range vs {
		dst[i] = Keyed{
			Code:  Code(lutSpread3(v.X) | lutSpread3(v.Y)<<1 | lutSpread3(v.Z)<<2),
			Voxel: v,
		}
	}
}

// EncodeVoxels fills dst[i] = Code(vs[i]) for a voxel slab (LUT path,
// serial) — the code-column-only sibling of EncodeKeyed.
func EncodeVoxels(dst []Code, vs []geom.Voxel) {
	if len(vs) == 0 {
		return
	}
	_ = dst[len(vs)-1]
	for i, v := range vs {
		dst[i] = Code(lutSpread3(v.X) | lutSpread3(v.Y)<<1 | lutSpread3(v.Z)<<2)
	}
}

// DecodeVoxels fills dst[i] with the coordinates of codes[i] (colors are
// left zero), the slab form of Code.Decode for code→voxel expansion.
func DecodeVoxels(dst []geom.Voxel, codes []Code) {
	if len(codes) == 0 {
		return
	}
	_ = dst[len(codes)-1]
	for i, c := range codes {
		dst[i] = geom.Voxel{
			X: uint32(compact1By2(uint64(c))),
			Y: uint32(compact1By2(uint64(c) >> 1)),
			Z: uint32(compact1By2(uint64(c) >> 2)),
		}
	}
}

// EncodeCloudInto is EncodeCloud writing into a reusable buffer: the whole
// cloud is keyed through the batched LUT path in one slab.
func EncodeCloudInto(dst []Keyed, vc *geom.VoxelCloud) []Keyed {
	if cap(dst) < len(vc.Voxels) {
		dst = make([]Keyed, len(vc.Voxels))
	} else {
		dst = dst[:len(vc.Voxels)]
	}
	if len(dst) > 0 {
		EncodeKeyed(dst, vc.Voxels)
	}
	return dst
}
