package pcc

import (
	"bytes"
	"io"
	"testing"
)

func testVideo(t testing.TB) *Video {
	t.Helper()
	v, err := NewVideoChecked("redandblack", 0.015)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVideoNames(t *testing.T) {
	names := VideoNames()
	if len(names) != 6 {
		t.Fatalf("videos = %v", names)
	}
	if _, err := NewVideoChecked("bogus", 1); err == nil {
		t.Fatal("bogus name must fail")
	}
}

func TestNewVideoPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewVideo must panic on unknown name")
		}
	}()
	NewVideo("bogus", 1)
}

func TestEncodeDecodeAllDesigns(t *testing.T) {
	v := testVideo(t)
	f0, err := v.Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := v.Frame(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Designs() {
		o := DefaultOptions(d)
		o.IntraAttr.Segments = 400
		o.Inter.Segments = 600
		o.Inter.Candidates = 30
		enc := NewEncoderOptions(o)
		dec := NewDecoder(o)
		for _, f := range []*PointCloud{f0, f1} {
			bits, st, err := enc.Encode(f)
			if err != nil {
				t.Fatalf("%v encode: %v", d, err)
			}
			if st.SizeBytes <= 0 || st.TotalTime <= 0 || st.EnergyJ <= 0 {
				t.Fatalf("%v stats: %+v", d, st)
			}
			out, err := dec.Decode(bits)
			if err != nil {
				t.Fatalf("%v decode: %v", d, err)
			}
			psnr, err := GeometryPSNR(f, out)
			if err != nil {
				t.Fatal(err)
			}
			if psnr < 55 {
				t.Fatalf("%v geometry PSNR %.1f dB", d, psnr)
			}
		}
		if enc.Device().SimTime() <= 0 || dec.Device().SimTime() <= 0 {
			t.Fatalf("%v device accounting missing", d)
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	v := testVideo(t)
	o := DefaultOptions(IntraInterV1)
	o.IntraAttr.Segments = 300
	o.Inter.Segments = 500
	o.Inter.Candidates = 20

	var buf bytes.Buffer
	w := NewStreamWriter(&buf, o)
	for i := 0; i < 3; i++ {
		f, err := v.Frame(i)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Frames() != 3 || w.CompressedBytes() <= 0 || len(w.Stats()) != 3 {
		t.Fatalf("writer state: %d frames, %d bytes", w.Frames(), w.CompressedBytes())
	}

	r, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Options().Design != IntraInterV1 {
		t.Fatalf("stream design = %v", r.Options().Design)
	}
	n := 0
	for {
		vc, ef, err := r.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if vc.Len() != int(ef.NumPoints) {
			t.Fatal("point count mismatch")
		}
		n++
	}
	if n != 3 {
		t.Fatalf("read %d frames", n)
	}
}

func TestEncoderReset(t *testing.T) {
	v := testVideo(t)
	f, _ := v.Frame(0)
	o := DefaultOptions(IntraInterV2)
	o.IntraAttr.Segments = 300
	o.Inter.Segments = 400
	enc := NewEncoderOptions(o)
	b1, _, err := enc.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := enc.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Type != b2.Type {
		enc.Reset()
		b3, _, err := enc.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		if b3.Type != b1.Type {
			t.Fatal("Reset must restart the GOP with an I-frame")
		}
	}
}

func TestPowerModes(t *testing.T) {
	v := testVideo(t)
	f, _ := v.Frame(0)
	run := func(mode PowerMode) float64 {
		dev := NewDevice(mode)
		o := DefaultOptions(IntraOnly)
		o.IntraAttr.Segments = 300
		enc := NewEncoderOn(dev, o)
		if _, _, err := enc.Encode(f); err != nil {
			t.Fatal(err)
		}
		return dev.SimTime().Seconds()
	}
	t15, t10 := run(Mode15W), run(Mode10W)
	ratio := t10 / t15
	if ratio < 1.2 || ratio > 1.4 {
		t.Fatalf("10W/15W = %.3f, want ~1.29 (Sec. VI-C)", ratio)
	}
}

func TestVoxelizeExported(t *testing.T) {
	rc := &RawCloud{Points: []RawPoint{{X: 1, Y: 2, Z: 3, C: Color{R: 9}}}}
	vc, err := Voxelize(rc, 10)
	if err != nil || vc.Len() != 1 {
		t.Fatalf("Voxelize: %v %v", vc, err)
	}
}

func TestCompressionRatioExported(t *testing.T) {
	if CompressionRatio(100, 10) != 10 {
		t.Fatal("ratio")
	}
}
