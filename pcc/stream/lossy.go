package stream

// LossyPipe wires a Session's packet output to a Receiver through a
// linksim.FaultyLink, entirely in process — the harness for loss-sweep
// experiments and deterministic recovery tests:
//
//	Session ──PacketOut──▶ FaultyLink ──▶ Receiver
//	   ▲                                    │
//	   └────────── HandleControl ◀──────────┘  (NACK / refresh)
//
// Time is virtual: the pipe starts a clock at zero and advances it by the
// modelled link latency of every send (data and control), and the
// Receiver's NACK timeouts read that clock. Combined with the FaultyLink's
// seeded PRNG, an entire lossy session — faults, timeouts, retransmits,
// concealments — replays identically from the seed alone.
//
// The reverse (control) path is delivered reliably: data-plane recovery
// already tolerates a lost NACK by re-NACKing on the next timeout, so
// faulting the control plane only slows convergence without exercising
// anything new.

import (
	"context"
	"sync"
	"time"

	"repro/internal/linksim"
)

// LossyPipe is an in-process lossy transport between one sender and one
// Receiver. Create with NewLossyPipe, set the sender's PacketOut to
// pipe.PacketOut, then Attach the Session (or AttachServer the Server
// owning the viewer) before submitting frames.
type LossyPipe struct {
	fl *linksim.FaultyLink
	rx *Receiver
	// ctrl is the sender's control entry point: Session.HandleControl, or
	// Server.HandleControl (which routes by the message's stream id).
	ctrl interface{ HandleControl(Control) error }

	mu  sync.Mutex
	now time.Time
}

// NewLossyPipe builds the receiver side over the given faulty link. The
// pipe overrides rcfg's clock (Now) and control path (SendControl).
func NewLossyPipe(fl *linksim.FaultyLink, rcfg ReceiverConfig) *LossyPipe {
	p := &LossyPipe{fl: fl, now: time.Unix(0, 0)}
	rcfg.Now = p.Now
	rcfg.SendControl = p.control
	p.rx = NewReceiver(rcfg)
	return p
}

// Attach wires the sender side so receiver control messages reach it.
func (p *LossyPipe) Attach(s *Session) { p.ctrl = s }

// AttachServer wires a fan-out Server as the sender side: control messages
// route to the viewer whose stream id they carry.
func (p *LossyPipe) AttachServer(sv *Server) { p.ctrl = sv }

// Receiver returns the pipe's receive side.
func (p *LossyPipe) Receiver() *Receiver { return p.rx }

// FaultyLink returns the pipe's link fault injector.
func (p *LossyPipe) FaultyLink() *linksim.FaultyLink { return p.fl }

// Now is the pipe's virtual clock, advanced by modelled link latency.
func (p *LossyPipe) Now() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.now
}

func (p *LossyPipe) advance(d time.Duration) {
	p.mu.Lock()
	p.now = p.now.Add(d)
	p.mu.Unlock()
}

// PacketOut is the Session.Config.PacketOut implementation: the packet
// crosses the faulty link and whatever survives (copies, reordered
// releases) is ingested by the receiver. Re-entrant — NACKs triggered by
// a delivery retransmit through this same path.
func (p *LossyPipe) PacketOut(_ context.Context, pkt []byte) error {
	out, cost, err := p.fl.Send(pkt)
	if err != nil {
		return err
	}
	p.advance(cost.Latency)
	for _, raw := range out {
		p.rx.Ingest(raw)
	}
	return nil
}

// control carries a receiver control message back to the sender, charging
// the (fault-free) reverse path's latency to the virtual clock.
func (p *LossyPipe) control(c Control) error {
	raw := MarshalControl(c)
	if cost, err := p.fl.Link().Transmit(int64(len(raw))); err == nil {
		p.advance(cost.Latency)
	}
	if p.ctrl == nil {
		return nil
	}
	return p.ctrl.HandleControl(c)
}

// Finish ends the session on the receive side after the sender has closed:
// any reorder-held packet is released, then the receiver resolves its tail
// (final NACK rounds, then conceal/skip). totalFrames is the sender-side
// submitted frame count.
func (p *LossyPipe) Finish(totalFrames int) error {
	for _, raw := range p.fl.Flush() {
		p.rx.Ingest(raw)
	}
	return p.rx.Finish(totalFrames)
}
