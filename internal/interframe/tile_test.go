package interframe

import (
	"testing"

	"repro/internal/attr"
)

// TestTilePDecodeExact pins the tiled inter invariant: splitting the
// P-frame's blocks into contiguous tile windows and coding each window
// independently (with the global grids) reproduces exactly the untiled
// decoder's output, with identical per-tile reuse statistics.
func TestTilePDecodeExact(t *testing.T) {
	d := dev()
	iF := sortedFrame(11, 6000)
	pF := jitterColors(iF, 12, 12)
	for _, tc := range []struct {
		p     Params
		tiles int
	}{
		{Params{Segments: 200, Candidates: 40, Threshold: 45, QStep: 4}, 4},
		{Params{Segments: 200, Candidates: 40, Threshold: -1, QStep: 1}, 3},  // all delta
		{Params{Segments: 200, Candidates: 40, Threshold: 1e9, QStep: 4}, 8}, // all reuse
	} {
		full, fullSt, err := EncodeP(d, iF, pF, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := DecodeP(d, full, iF)
		if err != nil {
			t.Fatal(err)
		}

		p := tc.p.normalized()
		pBounds := attr.SegmentBounds(len(pF), p.Segments)
		iBounds := attr.SegmentBounds(len(iF), p.Segments)
		nBlocks := len(pBounds) - 1
		cuts := attr.SegmentBounds(nBlocks, tc.tiles)
		var sc PTileScratch
		var sum Stats
		next := 0
		for ti := 0; ti+1 < len(cuts); ti++ {
			bLo, bHi := cuts[ti], cuts[ti+1]
			if bLo == bHi {
				continue
			}
			stream, st, err := EncodePTile(iF, pF, tc.p, pBounds, iBounds, bLo, bHi-bLo, &sc)
			if err != nil {
				t.Fatal(err)
			}
			sum.Blocks += st.Blocks
			sum.DirectReuse += st.DirectReuse
			sum.DeltaBlocks += st.DeltaBlocks
			colors, lo, hi, err := DecodePTile(stream, iF)
			if err != nil {
				t.Fatalf("tiles=%d tile %d: %v", tc.tiles, ti, err)
			}
			if lo != next || hi-lo != len(colors) || lo != pBounds[bLo] || hi != pBounds[bHi] {
				t.Fatalf("tiles=%d tile %d: range [%d,%d) len %d, expected start %d", tc.tiles, ti, lo, hi, len(colors), next)
			}
			for i, c := range colors {
				if c != want[lo+i] {
					t.Fatalf("tiles=%d tile %d: colour %d differs: %v vs %v", tc.tiles, ti, lo+i, c, want[lo+i])
				}
			}
			next = hi
		}
		if next != len(pF) {
			t.Fatalf("tiles=%d: covered %d of %d points", tc.tiles, next, len(pF))
		}
		if sum != fullSt {
			t.Fatalf("tiles=%d: stats %+v != untiled %+v", tc.tiles, sum, fullSt)
		}
	}
}

func TestTilePErrors(t *testing.T) {
	iF := sortedFrame(21, 500)
	pF := jitterColors(iF, 22, 5)
	p := Params{Segments: 50, Candidates: 10, Threshold: 45, QStep: 4}.normalized()
	pBounds := attr.SegmentBounds(len(pF), p.Segments)
	iBounds := attr.SegmentBounds(len(iF), p.Segments)
	var sc PTileScratch
	if _, _, err := EncodePTile(iF, pF, p, pBounds, iBounds, 48, 5, &sc); err == nil {
		t.Fatal("window past end must error")
	}
	if _, _, err := EncodePTile(nil, pF, p, pBounds, attr.SegmentBounds(0, p.Segments), 0, 1, &sc); err == nil {
		t.Fatal("empty reference must error")
	}
	if _, _, _, err := DecodePTile(nil, iF); err == nil {
		t.Fatal("empty stream must error")
	}
	stream, _, err := EncodePTile(iF, pF, p, pBounds, iBounds, 0, 5, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecodePTile(stream, nil); err == nil {
		t.Fatal("missing reference must error")
	}
	for cut := 1; cut < len(stream); cut++ {
		if _, _, _, err := DecodePTile(stream[:cut], iF); err == nil {
			t.Fatalf("truncated stream (len %d) must error", cut)
		}
	}
}
