// Package codec assembles the building blocks into the five end-to-end
// designs the paper evaluates (Sec. VI-B):
//
//	TMC13        — BASELINE intra: sequential octree geometry (lossless,
//	               entropy coded) + RAHT attributes.
//	CWIPC        — BASELINE inter: sequential octree geometry per frame +
//	               macro-block-tree motion estimation on 4 CPU threads;
//	               attributes entropy-coded raw.
//	IntraOnly    — CONTRIBUTION intra: Morton-parallel octree geometry +
//	               segment Base+Deltas attributes (2-layer, no entropy).
//	IntraInterV1 — IntraOnly for I-frames + inter-frame block-match
//	               attribute compression for P-frames at the
//	               quality-oriented reuse threshold (the paper's "300").
//	IntraInterV2 — same at the compression-oriented threshold ("1200").
//
// Frames are coded in an IPP group-of-pictures (one I followed by two P,
// Sec. V-B) for the inter designs; intra designs treat every frame as I.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/paroctree"
)

// FrameType distinguishes intra-coded and predicted frames.
type FrameType byte

const (
	// IFrame is intra-coded (self-contained).
	IFrame FrameType = 0
	// PFrame is predicted from the preceding I-frame.
	PFrame FrameType = 1
)

func (t FrameType) String() string {
	if t == PFrame {
		return "P"
	}
	return "I"
}

// EncodedFrame is one compressed frame: a geometry stream and an attribute
// stream plus the header fields the decoder needs.
type EncodedFrame struct {
	Type      FrameType
	Depth     uint8
	NumPoints uint32
	// Rescale carries the tight-cuboid transform for designs whose
	// geometry path re-scales (zero value = identity/absent).
	HasRescale bool
	Rescale    paroctree.Rescale
	// Tiles, when non-empty, marks the frame as tiled: Geometry and Attr
	// are concatenations of per-tile self-contained chunks, sliced by the
	// directory's byte lengths. NumPoints stays the FULL frame total even
	// when tiles are omitted.
	Tiles []TileInfo
	// Layer, when non-nil, marks the frame as layered: every unit's
	// geometry and attribute chunks are concatenations of per-layer
	// slices, recorded in the layer directory (see layer.go).
	Layer    *LayerDir
	Geometry []byte
	Attr     []byte
}

// Tiled reports whether the frame carries a tile directory.
func (f *EncodedFrame) Tiled() bool { return len(f.Tiles) > 0 }

// Size returns the total compressed size in bytes (the Fig. 8c metric),
// including the container header.
func (f *EncodedFrame) Size() int64 {
	n := int64(frameHeaderSize(f.HasRescale)) + int64(tileDirSize(len(f.Tiles))) +
		int64(len(f.Geometry)) + int64(len(f.Attr))
	if f.Layered() {
		n += int64(layerDirSize(layerUnits(len(f.Tiles)), int(f.Layer.Layers)))
	}
	return n
}

const frameMagic = "PCVF"

func frameHeaderSize(hasRescale bool) int {
	n := 4 + 1 + 1 + 1 + 4 + 4 + 4 // magic, type, depth, flags, numPoints, geomLen, attrLen
	if hasRescale {
		n += 3*4 + 3*8
	}
	return n
}

// MaxTiles caps the tile count per frame: per-viewer tile masks are 64-bit
// words throughout the streaming layer.
const MaxTiles = 64

// Tile flag bits in the container's tile directory.
const (
	// TileOmitted marks a tile stripped from the frame entirely (per-viewer
	// viewport culling); its geometry and attribute lengths are zero.
	TileOmitted = 1 << 0
	// TileCoarse marks a tile kept for geometry but stripped of attributes
	// (the frustum-margin "coarsened" representation); the decoder renders
	// it with zero colours.
	TileCoarse = 1 << 1
)

// TileInfo is one entry of a tiled frame's directory: the tile's flags, its
// FULL point count (unchanged by per-viewer stripping, so the decoder can
// keep global indexing for the inter-frame reference), the byte lengths of
// its self-contained geometry and attribute chunks within the frame's
// concatenated streams, and its axis-aligned bounding box in the ORIGINAL
// lattice (pre-rescale), which the sender tests against each viewer's
// frustum.
type TileInfo struct {
	Flags   uint8
	Points  uint32
	GeomLen uint32
	AttrLen uint32
	Min     [3]uint32
	Max     [3]uint32
}

// Omitted reports whether the tile was stripped from the frame.
func (ti TileInfo) Omitted() bool { return ti.Flags&TileOmitted != 0 }

// Coarse reports whether the tile carries geometry but no attributes.
func (ti TileInfo) Coarse() bool { return ti.Flags&TileCoarse != 0 }

// tileRecordSize is one directory entry: flags, points, geomLen, attrLen,
// and the 6-coordinate AABB.
const tileRecordSize = 1 + 4 + 4 + 4 + 6*4

// tileDirSize returns the directory's wire size: a u16 tile count followed
// by the records. Zero for untiled frames (no directory at all).
func tileDirSize(tiles int) int {
	if tiles == 0 {
		return 0
	}
	return 2 + tiles*tileRecordSize
}

// ErrBadContainer reports a malformed frame container.
var ErrBadContainer = errors.New("codec: bad frame container")

// FrameLayout maps a tiled and/or layered frame's serialized form (as
// written by WriteTo) without copying it: where the container header ends,
// where each unit's geometry and attribute chunks sit, and the directories
// needed to rewrite the frame per viewer. The streaming layer uses it to
// slice per-tile and per-layer payload spans straight out of an immutable
// published buffer.
type FrameLayout struct {
	Type FrameType
	// HeaderLen is the byte length of the container header including the
	// directories and the trailing geomLen/attrLen fields — the offset
	// of the first geometry byte.
	HeaderLen int
	// DirOff is the offset of the first tile directory record (after the
	// u16 tile count); meaningless when Tiles is empty.
	DirOff int
	Tiles  []TileInfo
	// GeomOff / AttrOff hold units+1 absolute byte offsets (units =
	// max(len(Tiles), 1)): unit u's geometry chunk is
	// wire[GeomOff[u]:GeomOff[u+1]], attributes likewise.
	GeomOff []int
	AttrOff []int
	// Layered-frame fields (Layers == 0 when unlayered): the directory
	// prologue values, the prologue's offset, and the unit-major per-layer
	// byte lengths (len = units*Layers each).
	Layers      int
	Sub         int
	BaseLevel   int
	LayerDirOff int
	LayerGeom   []uint32
	LayerAttr   []uint32
}

// Layered reports whether the frame carries a layer directory.
func (l *FrameLayout) Layered() bool { return l.Layers != 0 }

// LayerUnits returns the layer directory's unit count.
func (l *FrameLayout) LayerUnits() int { return layerUnits(len(l.Tiles)) }

// ParseFrameLayout parses a serialized frame's tile/layer layout in place.
// Returns nil for plain (untiled, unlayered) frames and for anything
// inconsistent — callers treat nil as "not sliceable" and fall back to
// whole-frame handling.
func ParseFrameLayout(wire []byte) *FrameLayout {
	const fixed = 4 + 1 + 1 + 1 + 4
	if len(wire) < fixed || string(wire[:4]) != frameMagic {
		return nil
	}
	// Mirror ReadFrameFrom's structural checks exactly: a layout must never
	// accept a container the reader rejects (the sender would slice and ship
	// frames no receiver can parse). FuzzParseLayerDirectory pins this.
	typ, depth, flags := FrameType(wire[4]), wire[5], wire[6]
	if typ != IFrame && typ != PFrame {
		return nil
	}
	if depth == 0 || depth > 21 {
		return nil
	}
	if flags&(2|4) == 0 {
		return nil
	}
	const maxReasonable = 1 << 30
	numPoints := binary.LittleEndian.Uint32(wire[7:11])
	if numPoints > maxReasonable {
		return nil
	}
	off := fixed
	if flags&1 == 1 {
		off += 3*4 + 3*8
		if len(wire) < off {
			return nil
		}
		if binary.LittleEndian.Uint64(wire[fixed+12:fixed+20]) == 0 ||
			binary.LittleEndian.Uint64(wire[fixed+20:fixed+28]) == 0 ||
			binary.LittleEndian.Uint64(wire[fixed+28:fixed+36]) == 0 {
			return nil
		}
	}
	l := &FrameLayout{Type: typ}
	if flags&2 == 2 {
		if len(wire) < off+2 {
			return nil
		}
		tiles := int(binary.LittleEndian.Uint16(wire[off:]))
		if tiles < 1 || tiles > MaxTiles {
			return nil
		}
		l.DirOff = off + 2
		if len(wire) < l.DirOff+tiles*tileRecordSize {
			return nil
		}
		l.Tiles = make([]TileInfo, tiles)
		var psum uint64
		for t := range l.Tiles {
			rec := wire[l.DirOff+t*tileRecordSize:]
			ti := TileInfo{
				Flags:   rec[0],
				Points:  binary.LittleEndian.Uint32(rec[1:5]),
				GeomLen: binary.LittleEndian.Uint32(rec[5:9]),
				AttrLen: binary.LittleEndian.Uint32(rec[9:13]),
			}
			for a := 0; a < 3; a++ {
				ti.Min[a] = binary.LittleEndian.Uint32(rec[13+4*a : 17+4*a])
				ti.Max[a] = binary.LittleEndian.Uint32(rec[25+4*a : 29+4*a])
			}
			if ti.Flags&^uint8(TileOmitted|TileCoarse) != 0 || ti.Points == 0 {
				return nil
			}
			if ti.Omitted() && (ti.GeomLen != 0 || ti.AttrLen != 0) {
				return nil
			}
			if !ti.Omitted() && ti.Coarse() && ti.AttrLen != 0 {
				return nil
			}
			for a := 0; a < 3; a++ {
				if ti.Min[a] > ti.Max[a] {
					return nil
				}
			}
			psum += uint64(ti.Points)
			l.Tiles[t] = ti
		}
		if psum != uint64(numPoints) {
			return nil
		}
		off = l.DirOff + tiles*tileRecordSize
	}
	units := layerUnits(len(l.Tiles))
	if flags&4 == 4 {
		if len(wire) < off+3 {
			return nil
		}
		l.LayerDirOff = off
		l.Layers = int(wire[off])
		l.Sub = int(wire[off+1])
		l.BaseLevel = int(wire[off+2])
		if l.Layers < 2 || l.Layers > MaxLayers || l.Sub < 1 || l.Sub > l.Layers {
			return nil
		}
		if l.BaseLevel < 1 || l.BaseLevel != int(depth)-l.Layers+1 {
			return nil
		}
		recs := off + 3
		off = recs + units*l.Layers*8
		if len(wire) < off {
			return nil
		}
		l.LayerGeom = make([]uint32, units*l.Layers)
		l.LayerAttr = make([]uint32, units*l.Layers)
		for i := range l.LayerGeom {
			l.LayerGeom[i] = binary.LittleEndian.Uint32(wire[recs+i*8:])
			l.LayerAttr[i] = binary.LittleEndian.Uint32(wire[recs+i*8+4:])
		}
	}
	headerLen := off + 8
	if len(wire) < headerLen {
		return nil
	}
	l.HeaderLen = headerLen
	geomLen := binary.LittleEndian.Uint32(wire[headerLen-8 : headerLen-4])
	attrLen := binary.LittleEndian.Uint32(wire[headerLen-4 : headerLen])
	if geomLen > maxReasonable || attrLen > maxReasonable {
		return nil
	}
	if len(wire) != headerLen+int(geomLen)+int(attrLen) {
		return nil
	}
	if len(l.Tiles) > 0 {
		var gsum, asum uint64
		for _, ti := range l.Tiles {
			gsum += uint64(ti.GeomLen)
			asum += uint64(ti.AttrLen)
		}
		if gsum != uint64(geomLen) || asum != uint64(attrLen) {
			return nil
		}
	}
	if l.Layered() {
		for u := 0; u < units; u++ {
			ug, ua := uint64(geomLen), uint64(attrLen)
			omitted := false
			if len(l.Tiles) > 0 {
				ug, ua = uint64(l.Tiles[u].GeomLen), uint64(l.Tiles[u].AttrLen)
				omitted = l.Tiles[u].Omitted()
			}
			var gs, as uint64
			for lay := 0; lay < l.Layers; lay++ {
				g, a := l.LayerGeom[u*l.Layers+lay], l.LayerAttr[u*l.Layers+lay]
				if lay >= l.Sub && (g != 0 || a != 0) {
					return nil
				}
				if lay < l.Sub && !omitted && g == 0 {
					return nil
				}
				gs += uint64(g)
				as += uint64(a)
			}
			if gs != ug || as != ua {
				return nil
			}
		}
	}
	l.GeomOff = make([]int, units+1)
	l.AttrOff = make([]int, units+1)
	l.GeomOff[0] = headerLen
	l.AttrOff[0] = headerLen + int(geomLen)
	for u := 0; u < units; u++ {
		glen, alen := int(geomLen), int(attrLen)
		if len(l.Tiles) > 0 {
			glen, alen = int(l.Tiles[u].GeomLen), int(l.Tiles[u].AttrLen)
		}
		l.GeomOff[u+1] = l.GeomOff[u] + glen
		l.AttrOff[u+1] = l.AttrOff[u] + alen
	}
	return l
}

// RewriteHeader returns a fresh copy of the frame's container header with
// the given tiles marked omitted or coarse: their directory lengths zeroed
// and the header's geometry/attribute totals patched to the kept sums.
// Combined with the kept tiles' payload spans (GeomOff/AttrOff slices of
// the original wire) this is the complete per-viewer culled frame — no
// re-encode, no payload copy. Point counts stay at the FULL values, so the
// receiver's decoder keeps global indexing for reference concealment.
func (l *FrameLayout) RewriteHeader(wire []byte, omit, coarse uint64) []byte {
	return l.RewriteHeaderSub(wire, omit, coarse, 0)
}

// RewriteHeaderSub is RewriteHeader for layered frames: besides the tile
// masks it truncates the frame to its first sub layers (0 = keep all),
// patching the directory's Sub byte, the per-layer records, the tile
// lengths, and the totals so the result validates as a self-contained
// partial frame. Omitted units drop every layer; coarse units keep
// geometry layers but drop all attribute bytes.
func (l *FrameLayout) RewriteHeaderSub(wire []byte, omit, coarse uint64, sub uint8) []byte {
	head := append([]byte(nil), wire[:l.HeaderLen]...)
	var gsum, asum uint32
	if !l.Layered() {
		for t, ti := range l.Tiles {
			rec := head[l.DirOff+t*tileRecordSize:]
			bit := uint64(1) << uint(t)
			g, a := ti.GeomLen, ti.AttrLen
			switch {
			case ti.Omitted() || omit&bit != 0:
				rec[0] = ti.Flags | TileOmitted
				g, a = 0, 0
			case ti.Coarse() || coarse&bit != 0:
				rec[0] = ti.Flags | TileCoarse
				a = 0
			}
			binary.LittleEndian.PutUint32(rec[5:9], g)
			binary.LittleEndian.PutUint32(rec[9:13], a)
			gsum += g
			asum += a
		}
		binary.LittleEndian.PutUint32(head[l.HeaderLen-8:l.HeaderLen-4], gsum)
		binary.LittleEndian.PutUint32(head[l.HeaderLen-4:l.HeaderLen], asum)
		return head
	}
	subEff := int(sub)
	if subEff == 0 || subEff > l.Layers {
		subEff = l.Layers
	}
	head[l.LayerDirOff+1] = byte(subEff)
	for u := 0; u < l.LayerUnits(); u++ {
		unitOmit, unitCoarse := false, false
		if len(l.Tiles) > 0 {
			ti := l.Tiles[u]
			bit := uint64(1) << uint(u)
			unitOmit = ti.Omitted() || omit&bit != 0
			unitCoarse = !unitOmit && (ti.Coarse() || coarse&bit != 0)
		}
		var ug, ua uint32
		for lay := 0; lay < l.Layers; lay++ {
			g, a := l.LayerGeom[u*l.Layers+lay], l.LayerAttr[u*l.Layers+lay]
			if lay >= subEff || unitOmit {
				g, a = 0, 0
			}
			if unitCoarse {
				a = 0
			}
			rec := head[l.LayerDirOff+3+(u*l.Layers+lay)*8:]
			binary.LittleEndian.PutUint32(rec[0:4], g)
			binary.LittleEndian.PutUint32(rec[4:8], a)
			ug += g
			ua += a
		}
		if len(l.Tiles) > 0 {
			rec := head[l.DirOff+u*tileRecordSize:]
			switch {
			case unitOmit:
				rec[0] = l.Tiles[u].Flags | TileOmitted
			case unitCoarse:
				rec[0] = l.Tiles[u].Flags | TileCoarse
			}
			binary.LittleEndian.PutUint32(rec[5:9], ug)
			binary.LittleEndian.PutUint32(rec[9:13], ua)
		}
		gsum += ug
		asum += ua
	}
	binary.LittleEndian.PutUint32(head[l.HeaderLen-8:l.HeaderLen-4], gsum)
	binary.LittleEndian.PutUint32(head[l.HeaderLen-4:l.HeaderLen], asum)
	return head
}

// WriteTo serializes the frame. Implements io.WriterTo.
func (f *EncodedFrame) WriteTo(w io.Writer) (int64, error) {
	layerDir := 0
	if f.Layered() {
		layerDir = layerDirSize(layerUnits(len(f.Tiles)), int(f.Layer.Layers))
	}
	hdr := make([]byte, 0, frameHeaderSize(f.HasRescale)+tileDirSize(len(f.Tiles))+layerDir)
	hdr = append(hdr, frameMagic...)
	hdr = append(hdr, byte(f.Type), f.Depth)
	var flags byte
	if f.HasRescale {
		flags |= 1
	}
	if f.Tiled() {
		flags |= 2
	}
	if f.Layered() {
		flags |= 4
	}
	hdr = append(hdr, flags)
	hdr = binary.LittleEndian.AppendUint32(hdr, f.NumPoints)
	if f.HasRescale {
		hdr = binary.LittleEndian.AppendUint32(hdr, f.Rescale.MinX)
		hdr = binary.LittleEndian.AppendUint32(hdr, f.Rescale.MinY)
		hdr = binary.LittleEndian.AppendUint32(hdr, f.Rescale.MinZ)
		hdr = binary.LittleEndian.AppendUint64(hdr, f.Rescale.ScaleX)
		hdr = binary.LittleEndian.AppendUint64(hdr, f.Rescale.ScaleY)
		hdr = binary.LittleEndian.AppendUint64(hdr, f.Rescale.ScaleZ)
	}
	if f.Tiled() {
		hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(f.Tiles)))
		for _, ti := range f.Tiles {
			hdr = append(hdr, ti.Flags)
			hdr = binary.LittleEndian.AppendUint32(hdr, ti.Points)
			hdr = binary.LittleEndian.AppendUint32(hdr, ti.GeomLen)
			hdr = binary.LittleEndian.AppendUint32(hdr, ti.AttrLen)
			for a := 0; a < 3; a++ {
				hdr = binary.LittleEndian.AppendUint32(hdr, ti.Min[a])
			}
			for a := 0; a < 3; a++ {
				hdr = binary.LittleEndian.AppendUint32(hdr, ti.Max[a])
			}
		}
	}
	if f.Layered() {
		ld := f.Layer
		hdr = append(hdr, ld.Layers, ld.Sub, ld.BaseLevel)
		for _, spans := range ld.Units {
			for _, s := range spans {
				hdr = binary.LittleEndian.AppendUint32(hdr, s.GeomLen)
				hdr = binary.LittleEndian.AppendUint32(hdr, s.AttrLen)
			}
		}
	}
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(f.Geometry)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(f.Attr)))
	var total int64
	for _, chunk := range [][]byte{hdr, f.Geometry, f.Attr} {
		n, err := w.Write(chunk)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadFrameFrom deserializes one frame written by WriteTo.
func ReadFrameFrom(r io.Reader) (*EncodedFrame, error) {
	fixed := make([]byte, 4+1+1+1+4)
	if _, err := io.ReadFull(r, fixed); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrBadContainer
	}
	if string(fixed[:4]) != frameMagic {
		return nil, ErrBadContainer
	}
	f := &EncodedFrame{
		Type:      FrameType(fixed[4]),
		Depth:     fixed[5],
		NumPoints: binary.LittleEndian.Uint32(fixed[7:11]),
	}
	if f.Type != IFrame && f.Type != PFrame {
		return nil, fmt.Errorf("codec: bad frame type %d", f.Type)
	}
	if f.Depth == 0 || f.Depth > 21 {
		return nil, fmt.Errorf("codec: bad depth %d", f.Depth)
	}
	if fixed[6]&1 == 1 {
		f.HasRescale = true
		rb := make([]byte, 3*4+3*8)
		if _, err := io.ReadFull(r, rb); err != nil {
			return nil, ErrBadContainer
		}
		f.Rescale = paroctree.Rescale{
			MinX:   binary.LittleEndian.Uint32(rb[0:4]),
			MinY:   binary.LittleEndian.Uint32(rb[4:8]),
			MinZ:   binary.LittleEndian.Uint32(rb[8:12]),
			ScaleX: binary.LittleEndian.Uint64(rb[12:20]),
			ScaleY: binary.LittleEndian.Uint64(rb[20:28]),
			ScaleZ: binary.LittleEndian.Uint64(rb[28:36]),
		}
		if f.Rescale.ScaleX == 0 || f.Rescale.ScaleY == 0 || f.Rescale.ScaleZ == 0 {
			return nil, ErrBadContainer
		}
	}
	if fixed[6]&2 == 2 {
		cnt := make([]byte, 2)
		if _, err := io.ReadFull(r, cnt); err != nil {
			return nil, ErrBadContainer
		}
		tiles := int(binary.LittleEndian.Uint16(cnt))
		if tiles < 1 || tiles > MaxTiles {
			return nil, fmt.Errorf("codec: bad tile count %d", tiles)
		}
		dir := make([]byte, tiles*tileRecordSize)
		if _, err := io.ReadFull(r, dir); err != nil {
			return nil, ErrBadContainer
		}
		f.Tiles = make([]TileInfo, tiles)
		for t := range f.Tiles {
			rec := dir[t*tileRecordSize:]
			ti := TileInfo{
				Flags:   rec[0],
				Points:  binary.LittleEndian.Uint32(rec[1:5]),
				GeomLen: binary.LittleEndian.Uint32(rec[5:9]),
				AttrLen: binary.LittleEndian.Uint32(rec[9:13]),
			}
			for a := 0; a < 3; a++ {
				ti.Min[a] = binary.LittleEndian.Uint32(rec[13+4*a : 17+4*a])
				ti.Max[a] = binary.LittleEndian.Uint32(rec[25+4*a : 29+4*a])
			}
			if ti.Flags&^uint8(TileOmitted|TileCoarse) != 0 || ti.Points == 0 {
				return nil, ErrBadContainer
			}
			if ti.Omitted() && (ti.GeomLen != 0 || ti.AttrLen != 0) {
				return nil, ErrBadContainer
			}
			if !ti.Omitted() && ti.Coarse() && ti.AttrLen != 0 {
				return nil, ErrBadContainer
			}
			for a := 0; a < 3; a++ {
				if ti.Min[a] > ti.Max[a] {
					return nil, ErrBadContainer
				}
			}
			f.Tiles[t] = ti
		}
	}
	if fixed[6]&4 == 4 {
		pro := make([]byte, 3)
		if _, err := io.ReadFull(r, pro); err != nil {
			return nil, ErrBadContainer
		}
		layers, sub, base := int(pro[0]), int(pro[1]), int(pro[2])
		if layers < 2 || layers > MaxLayers || sub < 1 || sub > layers {
			return nil, ErrBadContainer
		}
		if base < 1 || base != int(f.Depth)-layers+1 {
			return nil, ErrBadContainer
		}
		units := layerUnits(len(f.Tiles))
		dir := make([]byte, units*layers*8)
		if _, err := io.ReadFull(r, dir); err != nil {
			return nil, ErrBadContainer
		}
		ld := &LayerDir{Layers: pro[0], Sub: pro[1], BaseLevel: pro[2], Units: make([][]LayerSpan, units)}
		for u := 0; u < units; u++ {
			spans := make([]LayerSpan, layers)
			for l := range spans {
				rec := dir[(u*layers+l)*8:]
				spans[l] = LayerSpan{
					GeomLen: binary.LittleEndian.Uint32(rec[0:4]),
					AttrLen: binary.LittleEndian.Uint32(rec[4:8]),
				}
			}
			ld.Units[u] = spans
		}
		f.Layer = ld
	}
	lens := make([]byte, 8)
	if _, err := io.ReadFull(r, lens); err != nil {
		return nil, ErrBadContainer
	}
	geomLen := binary.LittleEndian.Uint32(lens[0:4])
	attrLen := binary.LittleEndian.Uint32(lens[4:8])
	const maxReasonable = 1 << 30
	if geomLen > maxReasonable || attrLen > maxReasonable || f.NumPoints > maxReasonable {
		return nil, ErrBadContainer
	}
	if f.Tiled() {
		var pts, gsum, asum uint64
		for _, ti := range f.Tiles {
			pts += uint64(ti.Points)
			gsum += uint64(ti.GeomLen)
			asum += uint64(ti.AttrLen)
		}
		if pts != uint64(f.NumPoints) || gsum != uint64(geomLen) || asum != uint64(attrLen) {
			return nil, ErrBadContainer
		}
	}
	if f.Layered() {
		// Every unit's kept-layer spans must sum to its chunk lengths, the
		// stripped layers (l >= Sub) must be all-zero, and every kept layer
		// of a non-omitted unit carries at least its geometry mode byte.
		sub := int(f.Layer.Sub)
		for u, spans := range f.Layer.Units {
			ug, ua := uint64(geomLen), uint64(attrLen)
			omitted := false
			if f.Tiled() {
				ug, ua = uint64(f.Tiles[u].GeomLen), uint64(f.Tiles[u].AttrLen)
				omitted = f.Tiles[u].Omitted()
			}
			var gs, as uint64
			for l, s := range spans {
				if l >= sub && (s.GeomLen != 0 || s.AttrLen != 0) {
					return nil, ErrBadContainer
				}
				if l < sub && !omitted && s.GeomLen == 0 {
					return nil, ErrBadContainer
				}
				gs += uint64(s.GeomLen)
				as += uint64(s.AttrLen)
			}
			if gs != ug || as != ua {
				return nil, ErrBadContainer
			}
		}
	}
	f.Geometry = make([]byte, geomLen)
	if _, err := io.ReadFull(r, f.Geometry); err != nil {
		return nil, ErrBadContainer
	}
	f.Attr = make([]byte, attrLen)
	if _, err := io.ReadFull(r, f.Attr); err != nil {
		return nil, ErrBadContainer
	}
	return f, nil
}
