package codec

// Layered encode-once, multi-rate serving (the PR 10 tentpole).
//
// A layered frame splits every unit's streams — a unit is one tile of a
// tiled frame, or the whole frame otherwise — into a base layer plus
// enhancement layers, each a self-contained byte range recorded in the
// container directory next to the tile records. Quality then becomes a
// per-viewer DROP decision: the streaming layer slices any subscription
// zero-copy out of the published wire, and a full subscription is
// byte-identical to the unlayered send.
//
// Geometry cut rule: the BFS occupancy stream is level-ordered, so a byte
// prefix is a complete coarse octree (pcc/progressive.go). With L layers
// over a depth-D tree, BaseLevel = D-L+1: layer 0 carries mask levels
// [0, BaseLevel), and enhancement layer l carries exactly mask level
// BaseLevel+l-1 — each enhancement refines the cloud by one octree level.
// Every layer is wrapped [mode][payload] like the unlayered geometry chunk
// (0 = raw, 1 = entropy). Entropy, when enabled, is coded PER LAYER: that
// is the per-level flush point progressive decode needs — base-layer
// decode touches only base-layer bytes, never the tail of a frame-wide
// entropy stream.
//
// Attribute cut rule: the top layer carries the unit's complete original
// attribute chunk verbatim (full-subscription decode is exactly the
// unlayered decode); layer 0 carries one RGB median per base-level cell
// (mode byte 2, attr.EncodeBaseMedians) computed from the CURRENT frame's
// colours, so a partial subscription decodes standalone — P-frames
// included, no reference needed; middle layers carry no attribute bytes.

import (
	"math/bits"

	"repro/internal/attr"
	"repro/internal/entropy"
	"repro/internal/geom"
	"repro/internal/morton"
	"repro/internal/paroctree"
)

// MaxLayers caps the layer count per frame: subscriptions travel as one
// byte on the wire and the layer directory grows with units x layers.
const MaxLayers = 8

// LayerSpan is one unit x layer directory entry: the byte lengths of that
// layer's slice of the unit's geometry and attribute chunks.
type LayerSpan struct {
	GeomLen uint32
	AttrLen uint32
}

// LayerDir is a layered frame's directory. Within a unit, the geometry
// chunk is the concatenation of the L per-layer geometry slices in layer
// order, and likewise for attributes.
type LayerDir struct {
	// Layers is the total layer count L (2..MaxLayers).
	Layers uint8
	// Sub is how many leading layers this serialized copy carries
	// (1..Layers). Published frames have Sub == Layers; a per-viewer
	// partial copy keeps the first Sub layers' bytes and zeroes the
	// directory entries of the rest.
	Sub uint8
	// BaseLevel is the octree level of the base layer's cells:
	// BaseLevel == Depth-Layers+1, so each enhancement layer refines by
	// exactly one level.
	BaseLevel uint8
	// Units is unit-major: Units[u][l] is unit u's layer-l spans. A unit
	// is tile u for tiled frames and the whole frame otherwise.
	Units [][]LayerSpan
}

// Layered reports whether the frame carries a layer directory.
func (f *EncodedFrame) Layered() bool { return f.Layer != nil }

// layerUnits returns the unit count of a frame with the given tile count.
func layerUnits(tiles int) int {
	if tiles == 0 {
		return 1
	}
	return tiles
}

// layerDirSize returns the directory's wire size: the L/Sub/BaseLevel
// prologue plus one 8-byte span per unit x layer. Zero when unlayered.
func layerDirSize(units, layers int) int {
	if layers == 0 {
		return 0
	}
	return 3 + units*layers*8
}

// layersFor returns the effective layer count for a frame of this depth:
// Options.Layers clamped so every layer refines by a whole octree level,
// or 0 when the frame stays unlayered.
func (o Options) layersFor(depth uint) int {
	l := o.Layers
	if l > int(depth) {
		l = int(depth)
	}
	if l < 2 {
		return 0
	}
	return l
}

// levelOffsets walks a BFS occupancy stream and returns each level's first
// byte offset: off[d] is where level d's masks start (off has depth+1
// entries, off[depth] == len(stream)). This is how the layerizer finds the
// per-level cut points without retaining any octree state.
func levelOffsets(stream []byte, depth uint) ([]int, error) {
	off := make([]int, depth+1)
	nodes, pos := 1, 0
	for d := uint(0); d < depth; d++ {
		off[d] = pos
		if pos+nodes > len(stream) {
			return nil, ErrBadContainer
		}
		next := 0
		for _, m := range stream[pos : pos+nodes] {
			next += bits.OnesCount8(m)
		}
		pos += nodes
		nodes = next
	}
	off[depth] = pos
	if pos != len(stream) {
		return nil, ErrBadContainer
	}
	return off, nil
}

// layerize rewrites a freshly encoded proposed-design frame in place into
// its layered form: per-unit geometry sliced at the level cuts (with
// per-layer entropy when enabled), base-median + verbatim-top attribute
// layers, and the filled directory. Called at the end of the attribute
// phase for both the untiled and tiled paths; a no-op unless
// Options.Layers is set and the frame is deep enough for two layers.
func (e *Encoder) layerize(frame *EncodedFrame, sorted []morton.Keyed) error {
	depth := uint(frame.Depth)
	l := e.opts.layersFor(depth)
	if l == 0 {
		return nil
	}
	baseLevel := int(depth) - l + 1
	units := layerUnits(len(frame.Tiles))
	ld := &LayerDir{
		Layers:    uint8(l),
		Sub:       uint8(l),
		BaseLevel: uint8(baseLevel),
		Units:     make([][]LayerSpan, units),
	}
	var err error
	var geomOut, attrOut []byte
	e.dev.Stage("Layer", func() {
		gOff, aOff, pOff := 0, 0, 0
		for u := 0; u < units; u++ {
			glen, alen, pts := len(frame.Geometry), len(frame.Attr), len(sorted)
			if frame.Tiled() {
				ti := frame.Tiles[u]
				glen, alen, pts = int(ti.GeomLen), int(ti.AttrLen), int(ti.Points)
			}
			gchunk := frame.Geometry[gOff : gOff+glen]
			achunk := frame.Attr[aOff : aOff+alen]
			leaves := sorted[pOff : pOff+pts]
			gOff, aOff, pOff = gOff+glen, aOff+alen, pOff+pts

			// Layered encodes force raw geometry chunks (entropy moves
			// per-layer), so the mask stream is directly sliceable.
			if len(gchunk) == 0 || gchunk[0] != 0 {
				err = ErrBadContainer
				return
			}
			raw := gchunk[1:]
			var offs []int
			if offs, err = levelOffsets(raw, depth); err != nil {
				return
			}
			spans := make([]LayerSpan, l)
			gBase := len(geomOut)
			if e.opts.EntropyGeometry {
				e.dev.CPUSerial("GeomEntropy", len(raw), costEntropyByte, func() {
					for lay := 0; lay < l; lay++ {
						lo, hi := layerCut(offs, baseLevel, lay)
						geomOut = append(geomOut, 1)
						geomOut = entropy.AppendCompressBytes(geomOut, raw[lo:hi])
						spans[lay].GeomLen = uint32(len(geomOut) - gBase)
						gBase = len(geomOut)
					}
				})
			} else {
				for lay := 0; lay < l; lay++ {
					lo, hi := layerCut(offs, baseLevel, lay)
					geomOut = append(geomOut, 0)
					geomOut = append(geomOut, raw[lo:hi]...)
					spans[lay].GeomLen = uint32(1 + hi - lo)
				}
			}

			// Attribute base layer: one median per base-level cell of this
			// unit's leaves; top layer: the original chunk verbatim.
			shift := 3 * uint(l-1)
			e.layerRuns = e.layerRuns[:0]
			e.layerCols = grow(e.layerCols, len(leaves))
			var prev morton.Code
			for i, k := range leaves {
				e.layerCols[i] = k.Voxel.C
				if anc := k.Code >> shift; i == 0 || anc != prev {
					e.layerRuns = append(e.layerRuns, i)
					prev = anc
				}
			}
			e.layerRuns = append(e.layerRuns, len(leaves))
			base := append([]byte{2}, attr.EncodeBaseMedians(e.layerCols, e.layerRuns)...)
			spans[0].AttrLen = uint32(len(base))
			spans[l-1].AttrLen = uint32(len(achunk))
			attrOut = append(attrOut, base...)
			attrOut = append(attrOut, achunk...)

			if frame.Tiled() {
				var gs, as uint32
				for _, s := range spans {
					gs += s.GeomLen
					as += s.AttrLen
				}
				frame.Tiles[u].GeomLen = gs
				frame.Tiles[u].AttrLen = as
			}
			ld.Units[u] = spans
		}
	})
	if err != nil {
		return err
	}
	frame.Geometry = geomOut
	frame.Attr = attrOut
	frame.Layer = ld
	return nil
}

// layerCut returns layer lay's byte range within a raw occupancy stream
// whose level offsets are offs: layer 0 is the whole prefix below
// baseLevel, enhancement layer l is exactly mask level baseLevel+l-1.
func layerCut(offs []int, baseLevel, lay int) (lo, hi int) {
	if lay == 0 {
		return 0, offs[baseLevel]
	}
	return offs[baseLevel+lay-1], offs[baseLevel+lay]
}

// decodeLayered decodes a layered frame. A full subscription (Sub ==
// Layers) reassembles every unit's original chunks and delegates to the
// unlayered decoders — bit-exact output and reference handling. A partial
// subscription decodes the geometry prefix to level BaseLevel+Sub-1,
// paints each cell with its base-cell median, and upscales to the full
// lattice exactly like DecodeProgressive; it never touches or installs the
// GOP reference (partial P-frames are standalone, and a partial I-frame
// cannot serve as a reference, so it clears any stale one).
func (d *Decoder) decodeLayered(f *EncodedFrame) (*geom.VoxelCloud, error) {
	ld := f.Layer
	l, sub := int(ld.Layers), int(ld.Sub)
	depth := uint(f.Depth)
	if l < 2 || l > MaxLayers || sub < 1 || sub > l || int(ld.BaseLevel) != int(depth)-l+1 || ld.BaseLevel < 1 {
		return nil, ErrBadContainer
	}
	units := layerUnits(len(f.Tiles))
	if len(ld.Units) != units {
		return nil, ErrBadContainer
	}
	// Unit chunk bounds + structural directory validation (frames arriving
	// via ReadFrameFrom are already checked; in-memory frames get the same
	// treatment).
	gUnit := make([]int, units+1)
	aUnit := make([]int, units+1)
	for u := 0; u < units; u++ {
		glen, alen := len(f.Geometry), len(f.Attr)
		if f.Tiled() {
			glen, alen = int(f.Tiles[u].GeomLen), int(f.Tiles[u].AttrLen)
		}
		gUnit[u+1] = gUnit[u] + glen
		aUnit[u+1] = aUnit[u] + alen
		spans := ld.Units[u]
		if len(spans) != l {
			return nil, ErrBadContainer
		}
		omitted := f.Tiled() && f.Tiles[u].Omitted()
		var gs, as uint64
		for lay, s := range spans {
			if lay >= sub && (s.GeomLen != 0 || s.AttrLen != 0) {
				return nil, ErrBadContainer
			}
			if lay < sub && !omitted && s.GeomLen == 0 {
				return nil, ErrBadContainer
			}
			gs += uint64(s.GeomLen)
			as += uint64(s.AttrLen)
		}
		if gs != uint64(glen) || as != uint64(alen) {
			return nil, ErrBadContainer
		}
	}
	if gUnit[units] != len(f.Geometry) || aUnit[units] != len(f.Attr) {
		return nil, ErrBadContainer
	}
	if sub == l {
		return d.decodeLayeredFull(f, gUnit, aUnit)
	}
	return d.decodeLayeredPartial(f, gUnit, aUnit)
}

// decodeLayeredFull strips the layering: per unit, concatenate the
// decompressed geometry layers back into one raw chunk and take the top
// attribute layer verbatim, then hand the reassembled unlayered frame to
// the regular decoders.
func (d *Decoder) decodeLayeredFull(f *EncodedFrame, gUnit, aUnit []int) (*geom.VoxelCloud, error) {
	ld := f.Layer
	l := int(ld.Layers)
	clone := *f
	clone.Layer = nil
	if f.Tiled() {
		clone.Tiles = append([]TileInfo(nil), f.Tiles...)
	}
	var geomOut, attrOut []byte
	for u := range ld.Units {
		spans := ld.Units[u]
		pos := gUnit[u]
		gBase := len(geomOut)
		started := false
		for _, s := range spans {
			if s.GeomLen == 0 {
				continue
			}
			chunk := f.Geometry[pos : pos+int(s.GeomLen)]
			pos += int(s.GeomLen)
			payload := chunk[1:]
			switch chunk[0] {
			case 0:
			case 1:
				var err error
				if payload, err = entropy.DecompressBytes(payload); err != nil {
					return nil, err
				}
			default:
				return nil, ErrBadContainer
			}
			if !started {
				geomOut = append(geomOut, 0)
				started = true
			}
			geomOut = append(geomOut, payload...)
		}
		// Top attribute layer sits after all lower layers' attr bytes.
		aPos := aUnit[u]
		for _, s := range spans[:l-1] {
			aPos += int(s.AttrLen)
		}
		aBase := len(attrOut)
		attrOut = append(attrOut, f.Attr[aPos:aPos+int(spans[l-1].AttrLen)]...)
		if f.Tiled() {
			clone.Tiles[u].GeomLen = uint32(len(geomOut) - gBase)
			clone.Tiles[u].AttrLen = uint32(len(attrOut) - aBase)
		}
	}
	clone.Geometry = geomOut
	clone.Attr = attrOut
	if clone.Tiled() {
		return d.decodeTiledProposed(&clone)
	}
	return d.decodeProposed(&clone)
}

// decodeLayeredPartial decodes the first Sub layers: geometry to level
// BaseLevel+Sub-1, colours from the base-layer medians (zero for coarse
// tiles), cells upscaled to the full lattice at their centres.
func (d *Decoder) decodeLayeredPartial(f *EncodedFrame, gUnit, aUnit []int) (*geom.VoxelCloud, error) {
	ld := f.Layer
	sub := int(ld.Sub)
	depth := uint(f.Depth)
	level := uint(int(ld.BaseLevel) + sub - 1)
	shift := 3 * (level - uint(ld.BaseLevel))
	var allCodes []morton.Code
	var allColors []geom.Color
	var last morton.Code
	have := false
	for u := range ld.Units {
		if f.Tiled() && f.Tiles[u].Omitted() {
			continue
		}
		spans := ld.Units[u]
		// Reassemble the kept geometry prefix.
		var raw []byte
		pos := gUnit[u]
		for _, s := range spans[:sub] {
			chunk := f.Geometry[pos : pos+int(s.GeomLen)]
			pos += int(s.GeomLen)
			payload := chunk[1:]
			switch chunk[0] {
			case 0:
			case 1:
				var err error
				if payload, err = entropy.DecompressBytes(payload); err != nil {
					return nil, err
				}
			default:
				return nil, ErrBadContainer
			}
			raw = append(raw, payload...)
		}
		lod, err := paroctree.DeserializeLoD(d.dev, raw, depth, level)
		if err != nil {
			return nil, err
		}
		if lod.PrefixBytes != len(raw) || len(lod.Codes) == 0 {
			return nil, ErrBadContainer
		}
		codes := lod.Codes
		cols := make([]geom.Color, len(codes))
		if coarse := f.Tiled() && f.Tiles[u].Coarse(); !coarse {
			achunk := f.Attr[aUnit[u] : aUnit[u]+int(spans[0].AttrLen)]
			if len(achunk) == 0 || achunk[0] != 2 {
				return nil, ErrBadContainer
			}
			meds, err := attr.DecodeBaseMedians(achunk[1:])
			if err != nil {
				return nil, err
			}
			// Paint each level cell with its base-cell median: cells of one
			// base cell are contiguous in Morton order.
			run := -1
			var prev morton.Code
			for i, c := range codes {
				if anc := c >> shift; run < 0 || anc != prev {
					run++
					prev = anc
				}
				if run >= len(meds) {
					return nil, ErrBadContainer
				}
				cols[i] = meds[run]
			}
			if run+1 != len(meds) {
				return nil, ErrBadContainer
			}
		}
		// Merge across units: strictly ascending, except that adjacent
		// tiles may share the boundary cell their cut splits — drop the
		// duplicate (the first tile's median wins).
		if have && len(codes) > 0 {
			if codes[0] < last {
				return nil, ErrBadContainer
			}
			if codes[0] == last {
				codes, cols = codes[1:], cols[1:]
			}
		}
		if len(codes) > 0 {
			last = codes[len(codes)-1]
			have = true
		}
		allCodes = append(allCodes, codes...)
		allColors = append(allColors, cols...)
	}
	if f.Type == IFrame {
		// A partial I-frame cannot serve as a GOP reference; drop any
		// stale one so a malformed stream cannot pair it with a full P.
		d.refSorted = nil
	}
	if len(allCodes) == 0 {
		return &geom.VoxelCloud{Depth: depth}, nil
	}
	lr := &paroctree.LoDResult{Level: level, Codes: allCodes}
	voxels := lr.UpscaleToLattice(d.dev, depth)
	for i := range voxels {
		voxels[i].C = allColors[i]
	}
	if f.HasRescale {
		out := make([]geom.Voxel, len(voxels))
		r := f.Rescale
		d.dev.GPUKernelIdx("InverseRescale", len(voxels), costRescale, func(i int) {
			out[i] = r.Invert(voxels[i])
		})
		voxels = out
	}
	return &geom.VoxelCloud{Depth: depth, Voxels: voxels}, nil
}
