package linksim

import (
	"bytes"
	"fmt"
	"testing"
)

// collect pushes n numbered packets through f and returns the delivered
// sequence (by packet number) after a final Flush.
func collect(t *testing.T, f *FaultyLink, n int) []int {
	t.Helper()
	var got []int
	push := func(pkts [][]byte) {
		for _, p := range pkts {
			var id int
			if _, err := fmt.Sscanf(string(p), "pkt-%d", &id); err != nil {
				t.Fatalf("bad packet %q", p)
			}
			got = append(got, id)
		}
	}
	for i := 0; i < n; i++ {
		out, cost, err := f.Send([]byte(fmt.Sprintf("pkt-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if cost.Latency <= 0 {
			t.Fatalf("packet %d: no radio cost charged", i)
		}
		push(out)
	}
	push(f.Flush())
	return got
}

func TestFaultyLinkNoFaultsIsTransparent(t *testing.T) {
	f := NewFaultyLink(WiFi, FaultProfile{})
	got := collect(t, f, 50)
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50", len(got))
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("packet %d delivered as %d", i, id)
		}
	}
}

func TestFaultyLinkDeterministic(t *testing.T) {
	prof := FaultProfile{DropRate: 0.1, DupRate: 0.05, ReorderRate: 0.1, BurstEvery: 40, BurstLen: 3, Seed: 7}
	a := collect(t, NewFaultyLink(WiFi, prof), 200)
	b := collect(t, NewFaultyLink(WiFi, prof), 200)
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at delivery %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := collect(t, NewFaultyLink(WiFi, FaultProfile{DropRate: 0.1, DupRate: 0.05, ReorderRate: 0.1, BurstEvery: 40, BurstLen: 3, Seed: 8}), 200)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestFaultyLinkRates(t *testing.T) {
	const n = 20000
	prof := FaultProfile{DropRate: 0.05, DupRate: 0.02, ReorderRate: 0.03, Seed: 1}
	f := NewFaultyLink(WiFi, prof)
	for i := 0; i < n; i++ {
		if _, _, err := f.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	f.Flush()
	st := f.Stats()
	if st.Sent != n {
		t.Fatalf("sent %d, want %d", st.Sent, n)
	}
	// Within ±30% of the configured rates at this sample size.
	checkRate := func(name string, got int64, want float64) {
		t.Helper()
		r := float64(got) / n
		if r < want*0.7 || r > want*1.3 {
			t.Fatalf("%s rate %.4f, want ~%.4f", name, r, want)
		}
	}
	checkRate("drop", st.Dropped, prof.DropRate)
	checkRate("dup", st.Duplicated, prof.DupRate)
	checkRate("reorder", st.Reordered, prof.ReorderRate)
	if st.Delivered != st.Sent-st.Dropped-st.BurstDrops+st.Duplicated {
		t.Fatalf("delivery accounting: %+v", st)
	}
}

func TestFaultyLinkBurst(t *testing.T) {
	f := NewFaultyLink(WiFi, FaultProfile{BurstEvery: 20, BurstLen: 5, Seed: 3})
	got := collect(t, f, 200)
	st := f.Stats()
	if st.Bursts == 0 || st.BurstDrops == 0 {
		t.Fatalf("no bursts fired: %+v", st)
	}
	if st.BurstDrops < st.Bursts*4 {
		t.Fatalf("bursts too short: %+v", st)
	}
	if len(got)+int(st.BurstDrops) != 200 {
		t.Fatalf("delivered %d + burst-dropped %d != 200", len(got), st.BurstDrops)
	}
	// Burst losses are consecutive: the delivered ids must contain a gap of
	// at least BurstLen.
	maxGap := 0
	for i := 1; i < len(got); i++ {
		if g := got[i] - got[i-1] - 1; g > maxGap {
			maxGap = g
		}
	}
	if maxGap < 5 {
		t.Fatalf("largest delivery gap %d, want >= burst length 5", maxGap)
	}
}

func TestFaultyLinkReorderSwaps(t *testing.T) {
	// With only reordering enabled, every packet is delivered exactly once
	// and held packets land one slot late.
	f := NewFaultyLink(WiFi, FaultProfile{ReorderRate: 0.2, Seed: 11})
	got := collect(t, f, 500)
	if len(got) != 500 {
		t.Fatalf("delivered %d of 500", len(got))
	}
	seen := make([]bool, 500)
	outOfOrder := 0
	for i, id := range got {
		if seen[id] {
			t.Fatalf("packet %d delivered twice", id)
		}
		seen[id] = true
		if i > 0 && id < got[i-1] {
			outOfOrder++
		}
	}
	if outOfOrder == 0 {
		t.Fatal("no reordering observed at 20% reorder rate")
	}
}

func TestFaultyLinkPropagatesLinkErrors(t *testing.T) {
	f := NewFaultyLink(Link{}, FaultProfile{})
	if _, _, err := f.Send(bytes.Repeat([]byte{1}, 10)); err != ErrBadLink {
		t.Fatalf("err = %v, want ErrBadLink", err)
	}
}

func TestFaultyLinkDropEvery(t *testing.T) {
	f := NewFaultyLink(WiFi, FaultProfile{DropEvery: 23})
	got := collect(t, f, 200)
	st := f.Stats()
	if want := int64(200 / 23); st.ScheduledDrops != want {
		t.Fatalf("ScheduledDrops = %d over 200 sends, want %d", st.ScheduledDrops, want)
	}
	if st.Dropped != 0 || st.GEDrops != 0 || st.BurstDrops != 0 {
		t.Fatalf("random drops fired on a DropEvery-only profile: %+v", st)
	}
	// Exactly the 1-based multiples of 23 are missing (0-based ids 22, 45, …).
	missing := make(map[int]bool)
	for want := 22; want < 200; want += 23 {
		missing[want] = true
	}
	for i, id := range got {
		if missing[id] {
			t.Fatalf("scheduled victim %d was delivered (position %d)", id, i)
		}
	}
	if len(got)+len(missing) != 200 {
		t.Fatalf("delivered %d + scheduled %d != 200", len(got), len(missing))
	}
}

// TestFaultyLinkDropEveryIsPRNGNeutral: DropEvery consumes no randomness,
// so layering it over a random profile must leave every random fault
// decision — and the burst schedule — exactly where it was.
func TestFaultyLinkDropEveryIsPRNGNeutral(t *testing.T) {
	base := FaultProfile{DropRate: 0.05, DupRate: 0.03, ReorderRate: 0.04, BurstEvery: 60, Seed: 9}
	over := base
	over.DropEvery = 17
	a := NewFaultyLink(WiFi, base)
	b := NewFaultyLink(WiFi, over)
	collect(t, a, 400)
	collect(t, b, 400)
	sa, sb := a.Stats(), b.Stats()
	if sb.ScheduledDrops == 0 {
		t.Fatal("DropEvery never fired")
	}
	// Bursts shadow everything and are PRNG-scheduled: identical. The
	// random counters can only shrink (a scheduled drop claims a packet
	// the random drop would have), never grow or shift the schedule.
	if sa.Bursts != sb.Bursts || sa.BurstDrops != sb.BurstDrops {
		t.Fatalf("burst schedule moved: %+v vs %+v", sa, sb)
	}
	if sb.Dropped > sa.Dropped {
		t.Fatalf("random drops grew under DropEvery: %d vs %d", sb.Dropped, sa.Dropped)
	}
}

func TestFaultyLinkGilbertElliott(t *testing.T) {
	const n = 20000
	prof := FaultProfile{GEBadLoss: 0.7, GEGoodToBad: 0.02, GEBadToGood: 0.25, Seed: 5}
	f := NewFaultyLink(WiFi, prof)
	for i := 0; i < n; i++ {
		if _, _, err := f.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.GEBadSpells == 0 || st.GEDrops == 0 {
		t.Fatalf("Gilbert–Elliott never faded: %+v", st)
	}
	// Stationary Bad-state share = p/(p+r) ≈ 0.074; expected loss rate
	// = share * BadLoss ≈ 0.052. Allow ±35% at this sample size.
	share := prof.GEGoodToBad / (prof.GEGoodToBad + prof.GEBadToGood)
	wantLoss := share * prof.GEBadLoss
	if r := float64(st.GEDrops) / n; r < wantLoss*0.65 || r > wantLoss*1.35 {
		t.Fatalf("GE loss rate %.4f, want ~%.4f", r, wantLoss)
	}
	// Mean fade length ≈ 1/BadToGood packets; drops per spell must reflect
	// clustering (well above the i.i.d. expectation of wantLoss per packet).
	dropsPerSpell := float64(st.GEDrops) / float64(st.GEBadSpells)
	if wantPerSpell := prof.GEBadLoss / prof.GEBadToGood; dropsPerSpell < wantPerSpell*0.65 || dropsPerSpell > wantPerSpell*1.35 {
		t.Fatalf("drops per fade %.2f, want ~%.2f (loss is not clustering)", dropsPerSpell, wantPerSpell)
	}
}

// TestFaultyLinkGilbertElliottBursty: correlated loss at the same average
// rate as an i.i.d. profile must produce longer consecutive-loss runs.
func TestFaultyLinkGilbertElliottBursty(t *testing.T) {
	longestGap := func(got []int, n int) int {
		max := 0
		prev := -1
		for _, id := range append(got, n) {
			if g := id - prev - 1; g > max {
				max = g
			}
			prev = id
		}
		return max
	}
	ge := NewFaultyLink(WiFi, FaultProfile{GEBadLoss: 0.9, GEGoodToBad: 0.01, GEBadToGood: 0.2, Seed: 17})
	geGot := collect(t, ge, 3000)
	iid := NewFaultyLink(WiFi, FaultProfile{DropRate: float64(ge.Stats().GEDrops) / 3000, Seed: 17})
	iidGot := collect(t, iid, 3000)
	geGap, iidGap := longestGap(geGot, 3000), longestGap(iidGot, 3000)
	t.Logf("GE drops=%d longest run=%d; iid drops=%d longest run=%d",
		ge.Stats().GEDrops, geGap, iid.Stats().Dropped, iidGap)
	if geGap <= iidGap {
		t.Fatalf("GE longest loss run %d not burstier than i.i.d. %d", geGap, iidGap)
	}
}

// TestFaultyLinkGEDeterministicAndIsolated: same seed replays the same GE
// run, and disabling GE leaves the base PRNG stream untouched (the base
// fault counters are identical with and without the model).
func TestFaultyLinkGEDeterministicAndIsolated(t *testing.T) {
	prof := FaultProfile{DropRate: 0.04, DupRate: 0.02, ReorderRate: 0.03,
		GEBadLoss: 0.6, GEGoodToBad: 0.02, Seed: 29}
	a := collect(t, NewFaultyLink(WiFi, prof), 600)
	b := collect(t, NewFaultyLink(WiFi, prof), 600)
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at delivery %d", i)
		}
	}

	noGE := prof
	noGE.GEBadLoss = 0
	f, g := NewFaultyLink(WiFi, prof), NewFaultyLink(WiFi, noGE)
	collect(t, f, 600)
	collect(t, g, 600)
	sf, sg := f.Stats(), g.Stats()
	// The GE draws happen after the three base draws, so the base fault
	// pattern is seed-identical; GE can only shadow a would-be random drop
	// (dup/reorder apply to surviving packets and GE changes which survive,
	// so only the schedule-independent counters must match exactly).
	if sf.Bursts != sg.Bursts {
		t.Fatalf("burst schedule moved when GE was enabled: %+v vs %+v", sf, sg)
	}
	if sg.GEDrops != 0 || sg.GEBadSpells != 0 {
		t.Fatalf("disabled GE still fired: %+v", sg)
	}
	if sf.GEDrops == 0 {
		t.Fatal("enabled GE never fired")
	}
}
