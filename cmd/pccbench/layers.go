package main

// Layered encode-once, multi-rate serving benchmark (BENCH_10.json).
//
// `pccbench layers` measures the two tentpole claims of the layered codec:
//
//   - subscription sweep: one layered Server (L = layersL), one viewer per
//     explicit subscription sub ∈ {full, 1..L-1}. Every viewer is fed from
//     the SAME encode — the per-viewer bytes are zero-copy slices of the
//     published container — so the wire bytes per subscription quantify
//     what a drop decision costs and saves. Byte counts are deterministic;
//     every truncated viewer must still decode every frame.
//   - split-link serving: the same Server feeds two viewers over separate
//     simulated links — one clean, one lossy. The lossy viewer runs the
//     per-viewer layer controller (LayerAdapt) driven by its own feedback;
//     the shared encoder has NO rate controller attached (Options.Adapt is
//     zero), so any quality movement is provably a per-viewer drop
//     decision. Gates: the clean viewer decodes >= layersGoodFloor of the
//     frames at full quality, the lossy viewer sheds >= 1 enhancement
//     layer, and the clean viewer's subscription never moves.
//
// Both halves replay identically from the link seeds and the virtual
// clock, so the results are gateable everywhere. With -benchout it writes
// BENCH_10.json; with -baseline it gates against the committed file.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/linksim"
	"repro/pcc/stream"
)

const (
	layersVideo     = "longdress"
	layersScale     = 0.05
	layersFrames    = 24
	layersL         = 3    // published layers per frame
	layersBadDrop   = 0.12 // split-link lossy viewer's packet drop rate
	layersFeedback  = 4    // receiver feedback cadence in frames
	layersGoodFloor = 0.99 // clean viewer decoded-frame ratio floor
	layersShedFloor = 1    // lossy viewer must shed at least this many layers
	layersGoodSeed  = 1
	layersBadSeed   = 7
)

// LayerSweepRow is one explicit-subscription measurement: the wire bytes
// and decode outcome of a viewer pinned at sub layers (0 = full quality).
type LayerSweepRow struct {
	Sub        int     `json:"sub"` // 0 = full subscription
	WireBytes  int64   `json:"wire_bytes"`
	Ratio      float64 `json:"ratio"` // vs the full viewer's bytes
	Decoded    int     `json:"decoded_frames"`
	MeanPoints float64 `json:"mean_points_per_frame"`
}

// LayerSplitResult is the split-link two-viewer run: per-viewer quality as
// a drop decision, with the shared encoder's knobs pinned.
type LayerSplitResult struct {
	BadDropRate     float64 `json:"bad_drop_rate"`
	GoodDecoded     int     `json:"good_decoded_frames"`
	GoodRatio       float64 `json:"good_decoded_ratio"`
	BadDecoded      int     `json:"bad_decoded_frames"`
	BadRatio        float64 `json:"bad_decoded_ratio"`
	GoodSub         int     `json:"good_sub_layers"` // must stay 0 (full)
	BadSub          int     `json:"bad_sub_layers"`
	BadShed         int     `json:"bad_shed_layers"`
	BadDownswitches int64   `json:"bad_downswitches"`
	GoodWireBytes   int64   `json:"good_wire_bytes"`
	BadWireBytes    int64   `json:"bad_wire_bytes"`
	// SharedAdaptOn records whether the shared encoder ran a rate
	// controller. Always false here: the split is served with
	// Options.Adapt zero, so the encode is bit-identical for both
	// viewers and only the per-viewer drop decision differs.
	SharedAdaptOn bool `json:"shared_adapt_on"`
}

// LayersFile is the BENCH_10.json schema.
type LayersFile struct {
	Benchmark string           `json:"benchmark"`
	Video     string           `json:"video"`
	Scale     float64          `json:"scale"`
	Frames    int              `json:"frames"`
	Layers    int              `json:"layers"`
	Sweep     []LayerSweepRow  `json:"sweep"`
	Split     LayerSplitResult `json:"split_link"`
}

func layersFrameSet() ([]*geom.VoxelCloud, error) {
	spec, err := dataset.SpecByName(layersVideo)
	if err != nil {
		return nil, err
	}
	return loadFrames(spec, layersScale, layersFrames)
}

func layersOptions() codec.Options {
	o := benchOptions(codec.IntraInterV1)
	o.Layers = layersL
	return o
}

// frameTally counts decoded frames and their sizes from a receiver's
// OnFrame callback. Callbacks run on the owning viewer's sender goroutine;
// the totals are read only after Server.Close has joined the senders.
type frameTally struct {
	mu      sync.Mutex
	decoded int
	points  int64
}

func (t *frameTally) onFrame(f stream.DecodedFrame) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f.Status == stream.FrameDecoded {
		t.decoded++
		if f.Cloud != nil {
			t.points += int64(len(f.Cloud.Voxels))
		}
	}
}

func (t *frameTally) totals() (decoded int, points int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.decoded, t.points
}

// benchLayerSweep serves one layered encode to one viewer per explicit
// subscription over clean in-process links and reports each viewer's wire
// bytes and decode outcome.
func benchLayerSweep(frames []*geom.VoxelCloud) ([]LayerSweepRow, error) {
	opts := layersOptions()
	srv := stream.NewServer(context.Background(), stream.ServerConfig{
		Options:     opts,
		ViewerQueue: len(frames) + 1,
	})
	subs := []int{0, 1, 2} // 0 = full quality; 1..L-1 = truncated
	viewers := make([]*stream.Viewer, len(subs))
	tallies := make([]*frameTally, len(subs))
	receivers := make([]*stream.Receiver, len(subs))
	for i, sub := range subs {
		tally := &frameTally{}
		rx := stream.NewReceiver(stream.ReceiverConfig{
			Options: opts,
			OnFrame: tally.onFrame,
		})
		v, err := srv.Attach(stream.ViewerConfig{
			Layers: uint8(sub),
			PacketOut: func(_ context.Context, pkt []byte) error {
				rx.Ingest(pkt)
				return nil
			},
		})
		if err != nil {
			return nil, err
		}
		viewers[i], tallies[i], receivers[i] = v, tally, rx
	}
	for _, f := range frames {
		if err := srv.Submit(context.Background(), f); err != nil {
			return nil, err
		}
	}
	if err := srv.Close(); err != nil {
		return nil, err
	}
	var fullBytes int64
	rows := make([]LayerSweepRow, len(subs))
	for i, sub := range subs {
		if err := receivers[i].Finish(len(frames)); err != nil {
			return nil, fmt.Errorf("layers sweep sub=%d: %w", sub, err)
		}
		m := viewers[i].Metrics()
		if m.FramesSent != int64(len(frames)) {
			return nil, fmt.Errorf("layers sweep sub=%d: sent %d frames, want %d",
				sub, m.FramesSent, len(frames))
		}
		decoded, points := tallies[i].totals()
		if sub == 0 {
			fullBytes = m.WireBytes
		}
		rows[i] = LayerSweepRow{
			Sub:        sub,
			WireBytes:  m.WireBytes,
			Decoded:    decoded,
			MeanPoints: round2(float64(points) / float64(len(frames))),
		}
	}
	if fullBytes == 0 {
		return nil, fmt.Errorf("layers sweep: full viewer sent no bytes")
	}
	for i := range rows {
		rows[i].Ratio = round3(float64(rows[i].WireBytes) / float64(fullBytes))
	}
	return rows, nil
}

// benchLayerSplit runs the split-link scenario: one layered Server with NO
// shared rate controller, a clean viewer and a lossy viewer on separate
// seeded links, the lossy viewer steered only by its own layer controller.
func benchLayerSplit(frames []*geom.VoxelCloud) (LayerSplitResult, error) {
	opts := layersOptions() // Options.Adapt stays zero: shared knobs pinned
	srv := stream.NewServer(context.Background(), stream.ServerConfig{
		Options:     opts,
		ViewerQueue: len(frames) + 1,
	})
	attach := func(fl *linksim.FaultyLink, cfg stream.ViewerConfig) (*stream.Viewer, *stream.LossyPipe, *frameTally, error) {
		tally := &frameTally{}
		pipe := stream.NewLossyPipe(fl, stream.ReceiverConfig{
			Options:       opts,
			OnFrame:       tally.onFrame,
			FeedbackEvery: layersFeedback,
		})
		pipe.AttachServer(srv)
		cfg.PacketOut = pipe.PacketOut
		v, err := srv.Attach(cfg)
		return v, pipe, tally, err
	}
	good, goodPipe, goodTally, err := attach(
		linksim.NewFaultyLink(linksim.WiFi, linksim.FaultProfile{Seed: layersGoodSeed}),
		stream.ViewerConfig{})
	if err != nil {
		return LayerSplitResult{}, err
	}
	bad, badPipe, badTally, err := attach(
		linksim.NewFaultyLink(linksim.WiFi, linksim.FaultProfile{DropRate: layersBadDrop, Seed: layersBadSeed}),
		stream.ViewerConfig{LayerAdapt: codec.LayerAdapt{Enabled: true}})
	if err != nil {
		return LayerSplitResult{}, err
	}
	for _, f := range frames {
		if err := srv.Submit(context.Background(), f); err != nil {
			return LayerSplitResult{}, err
		}
	}
	if err := srv.Close(); err != nil {
		return LayerSplitResult{}, err
	}
	if err := goodPipe.Finish(len(frames)); err != nil {
		return LayerSplitResult{}, fmt.Errorf("layers split: good finish: %w", err)
	}
	if err := badPipe.Finish(len(frames)); err != nil {
		return LayerSplitResult{}, fmt.Errorf("layers split: bad finish: %w", err)
	}
	gm, bm := good.Metrics(), bad.Metrics()
	goodDecoded, _ := goodTally.totals()
	badDecoded, _ := badTally.totals()
	res := LayerSplitResult{
		BadDropRate:     layersBadDrop,
		GoodDecoded:     goodDecoded,
		GoodRatio:       round3(float64(goodDecoded) / float64(len(frames))),
		BadDecoded:      badDecoded,
		BadRatio:        round3(float64(badDecoded) / float64(len(frames))),
		GoodSub:         int(gm.SubLayers),
		BadSub:          int(bm.SubLayers),
		BadDownswitches: bm.LayerDownswitches,
		GoodWireBytes:   gm.WireBytes,
		BadWireBytes:    bm.WireBytes,
	}
	if res.BadSub > 0 {
		res.BadShed = layersL - res.BadSub
	}
	return res, nil
}

// runLayers is the `layers` experiment entry point (BENCH_10.json).
func runLayers(cfg benchConfig) error {
	frames, err := layersFrameSet()
	if err != nil {
		return err
	}
	out := LayersFile{
		Benchmark: "layered-multi-rate-serving",
		Video:     layersVideo,
		Scale:     layersScale,
		Frames:    layersFrames,
		Layers:    layersL,
	}
	fmt.Printf("layered multi-rate serving: %s @ %.2f, %d frames, L=%d (encode once, slice per viewer)\n\n",
		layersVideo, layersScale, layersFrames, layersL)

	out.Sweep, err = benchLayerSweep(frames)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12s %8s %10s %14s\n", "sub", "wire bytes", "ratio", "decoded", "points/frame")
	for _, r := range out.Sweep {
		name := fmt.Sprintf("%d", r.Sub)
		if r.Sub == 0 {
			name = "full"
		}
		fmt.Printf("%-6s %12d %8.3f %10d %14.2f\n", name, r.WireBytes, r.Ratio, r.Decoded, r.MeanPoints)
	}

	out.Split, err = benchLayerSplit(frames)
	if err != nil {
		return err
	}
	sp := out.Split
	fmt.Printf("\nsplit-link serving (shared encoder knobs pinned, Options.Adapt off):\n")
	fmt.Printf("  %-14s decoded %2d/%d (%.3f), sub %d, %12d wire bytes\n",
		"clean viewer", sp.GoodDecoded, layersFrames, sp.GoodRatio, sp.GoodSub, sp.GoodWireBytes)
	fmt.Printf("  %-14s decoded %2d/%d (%.3f), sub %d (shed %d of %d, %d downswitches), %12d wire bytes\n",
		"lossy viewer", sp.BadDecoded, layersFrames, sp.BadRatio, sp.BadSub,
		sp.BadShed, layersL-1, sp.BadDownswitches, sp.BadWireBytes)
	fmt.Println()

	if *flagBenchOut != "" {
		if err := writeLayersFile(*flagBenchOut, out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *flagBenchOut)
	}

	// Hard gates — every number here is deterministic, so they hold on
	// any host.
	for _, r := range out.Sweep {
		if r.Decoded != layersFrames {
			return fmt.Errorf("layers gate: sub=%d decoded %d/%d frames over a clean link",
				r.Sub, r.Decoded, layersFrames)
		}
		if r.Sub > 0 && r.Ratio >= 1 {
			return fmt.Errorf("layers gate: sub=%d wire ratio %.3f, truncation saved nothing", r.Sub, r.Ratio)
		}
	}
	if sp.GoodRatio < layersGoodFloor {
		return fmt.Errorf("layers gate: clean viewer decoded ratio %.3f below the %.2f floor",
			sp.GoodRatio, layersGoodFloor)
	}
	if sp.GoodSub != 0 {
		return fmt.Errorf("layers gate: clean viewer's subscription moved to %d — per-viewer isolation broken", sp.GoodSub)
	}
	if sp.BadShed < layersShedFloor || sp.BadDownswitches < 1 {
		return fmt.Errorf("layers gate: lossy viewer shed %d layers (%d downswitches), want >= %d",
			sp.BadShed, sp.BadDownswitches, layersShedFloor)
	}
	if *flagBaseline != "" {
		return gateLayers(*flagBaseline, out, *flagGate)
	}
	return nil
}

func writeLayersFile(path string, f LayersFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gateLayers compares the deterministic ratios against the committed
// BENCH_10.json: each subscription's wire ratio may not grow past the
// tolerance, and the split-link decode ratios may not fall below it.
func gateLayers(path string, cur LayersFile, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("layers gate: %w", err)
	}
	var base LayersFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("layers gate: %s: %w", path, err)
	}
	fmt.Printf("regression gate vs %s (tolerance %.0f%%):\n", path, tol*100)
	var failed bool
	check := func(name string, cur, limit float64, over bool) {
		status := "ok"
		if (over && cur > limit) || (!over && cur < limit) {
			status = "REGRESSED"
			failed = true
		}
		bound := "floor"
		if over {
			bound = "cap"
		}
		fmt.Printf("  %-20s %8.3f (%s %8.3f)  %s\n", name, cur, bound, limit, status)
	}
	baseRatio := make(map[int]float64, len(base.Sweep))
	for _, r := range base.Sweep {
		baseRatio[r.Sub] = r.Ratio
	}
	for _, r := range cur.Sweep {
		if r.Sub == 0 {
			continue
		}
		if b, ok := baseRatio[r.Sub]; ok {
			check(fmt.Sprintf("sub=%d wire ratio", r.Sub), r.Ratio, b*(1+tol), true)
		}
	}
	check("clean decode ratio", cur.Split.GoodRatio, base.Split.GoodRatio*(1-tol), false)
	check("lossy decode ratio", cur.Split.BadRatio, base.Split.BadRatio*(1-tol), false)
	status := "ok"
	if cur.Split.BadShed < layersShedFloor {
		status = "REGRESSED"
		failed = true
	}
	fmt.Printf("  %-20s %8d (floor %8d)  %s\n", "lossy shed layers", cur.Split.BadShed, layersShedFloor, status)
	if failed {
		return fmt.Errorf("layers gate: regressed beyond %.0f%% tolerance", tol*100)
	}
	fmt.Println("  gate passed")
	return nil
}
