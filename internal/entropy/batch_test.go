package entropy

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// Differential property tests: every batched API must be byte-identical to
// its bit-at-a-time ancestor — same output stream, same final context
// states, same cursor positions. These are the local proofs backing the
// whole-pipeline golden-stream hashes in internal/codec.

// randProbs returns a context slab in random (but valid) adaptation states,
// produced by running random bits through scalar EncodeBit so the states are
// reachable ones.
func randProbs(rng *rand.Rand, n int) []Prob {
	e := NewEncoder()
	ps := make([]Prob, n)
	for i := range ps {
		ps[i] = NewProb()
		for k := rng.Intn(20); k > 0; k-- {
			e.EncodeBit(&ps[i], rng.Intn(2))
		}
	}
	return ps
}

func TestEncodeBitsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		base := randProbs(rng, n)
		v := rng.Uint64()

		ctxA := append([]Prob(nil), base...)
		encA := NewEncoder()
		encA.EncodeBits(ctxA, v, n)
		a := append([]byte(nil), encA.Bytes()...)

		ctxB := append([]Prob(nil), base...)
		encB := NewEncoder()
		for k := 0; k < n; k++ {
			encB.EncodeBit(&ctxB[k], int(v>>uint(n-1-k)&1))
		}
		b := encB.Bytes()

		if !bytes.Equal(a, b) {
			t.Fatalf("trial %d: EncodeBits stream differs from EncodeBit loop (n=%d)", trial, n)
		}
		for k := range ctxA {
			if ctxA[k] != ctxB[k] {
				t.Fatalf("trial %d: context %d diverged: %d vs %d", trial, k, ctxA[k], ctxB[k])
			}
		}
	}
}

func TestEncodeZeroRunMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(500)
		p0 := randProbs(rng, 1)[0]

		pa := p0
		encA := NewEncoder()
		encA.EncodeZeroRun(&pa, n)
		a := append([]byte(nil), encA.Bytes()...)

		pb := p0
		encB := NewEncoder()
		for i := 0; i < n; i++ {
			encB.EncodeBit(&pb, 0)
		}
		b := encB.Bytes()

		if !bytes.Equal(a, b) || pa != pb {
			t.Fatalf("trial %d: EncodeZeroRun(n=%d) differs from EncodeBit(p,0) loop", trial, n)
		}
	}
}

func TestEncodeDirectMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(65)
		v := rng.Uint64()

		encA := NewEncoder()
		encA.EncodeDirect(v, n)
		a := append([]byte(nil), encA.Bytes()...)

		encB := NewEncoder()
		for i := n - 1; i >= 0; i-- {
			encB.EncodeBitDirect(int(v >> uint(i) & 1))
		}
		b := encB.Bytes()

		if !bytes.Equal(a, b) {
			t.Fatalf("trial %d: EncodeDirect(n=%d) differs from EncodeBitDirect loop", trial, n)
		}
	}
}

func TestDecodeBitsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		base := randProbs(rng, n)
		v := rng.Uint64()
		if n < 64 {
			v &= 1<<uint(n) - 1
		}

		ctxE := append([]Prob(nil), base...)
		enc := NewEncoder()
		enc.EncodeBits(ctxE, v, n)
		stream := enc.Bytes()

		ctxA := append([]Prob(nil), base...)
		decA, err := NewDecoder(stream)
		if err != nil {
			t.Fatal(err)
		}
		got := decA.DecodeBits(ctxA, n)

		ctxB := append([]Prob(nil), base...)
		decB, err := NewDecoder(stream)
		if err != nil {
			t.Fatal(err)
		}
		var ref uint64
		for k := 0; k < n; k++ {
			ref = ref<<1 | uint64(decB.DecodeBit(&ctxB[k]))
		}

		if got != v || ref != v {
			t.Fatalf("trial %d: round trip broke: got=%x ref=%x want=%x", trial, got, ref, v)
		}
		if decA.pos != decB.pos || decA.code != decB.code || decA.rng != decB.rng {
			t.Fatalf("trial %d: decoder registers diverged", trial)
		}
		for k := range ctxA {
			if ctxA[k] != ctxB[k] {
				t.Fatalf("trial %d: decode context %d diverged", trial, k)
			}
		}
		if decA.Overrun() != 0 || decB.Overrun() != 0 {
			t.Fatalf("trial %d: valid stream reported overrun", trial)
		}
	}
}

func TestDecodeDirectMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(64)
		v := rng.Uint64()
		if n < 64 {
			v &= 1<<uint(n) - 1
		}
		enc := NewEncoder()
		enc.EncodeDirect(v, n)
		stream := enc.Bytes()

		decA, _ := NewDecoder(stream)
		got := decA.DecodeDirect(n)
		decB, _ := NewDecoder(stream)
		var ref uint64
		for i := 0; i < n; i++ {
			ref = ref<<1 | uint64(decB.DecodeBitDirect())
		}
		if got != v || ref != v || decA.pos != decB.pos {
			t.Fatalf("trial %d: DecodeDirect mismatch: got=%x ref=%x want=%x", trial, got, ref, v)
		}
	}
}

func TestByteModelSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, n := range []int{0, 1, 7, 256, 4096} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Intn(8)) // skewed alphabet, like occupancy bytes
		}

		mA := NewByteModel()
		encA := NewEncoder()
		mA.EncodeSlice(encA, data)
		a := append([]byte(nil), encA.Bytes()...)

		mB := NewByteModel()
		encB := NewEncoder()
		for _, b := range data {
			mB.Encode(encB, b)
		}
		if !bytes.Equal(a, encB.Bytes()) {
			t.Fatalf("n=%d: ByteModel.EncodeSlice differs from Encode loop", n)
		}
		if mA.probs != mB.probs {
			t.Fatalf("n=%d: ByteModel contexts diverged", n)
		}

		mC := NewByteModel()
		decC, _ := NewDecoder(a)
		outC := make([]byte, n)
		mC.DecodeSlice(decC, outC)

		mD := NewByteModel()
		decD, _ := NewDecoder(a)
		outD := make([]byte, n)
		for i := range outD {
			outD[i] = mD.Decode(decD)
		}
		if !bytes.Equal(outC, data) || !bytes.Equal(outD, data) {
			t.Fatalf("n=%d: ByteModel slice round trip mismatch", n)
		}
		if decC.pos != decD.pos || mC.probs != mD.probs {
			t.Fatalf("n=%d: ByteModel decode state diverged", n)
		}
	}
}

func TestUintModelSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(300)
		vs := make([]uint64, n)
		for i := range vs {
			switch rng.Intn(4) {
			case 0, 1: // zero runs are the hot case
				vs[i] = 0
			case 2:
				vs[i] = uint64(rng.Intn(100))
			default:
				vs[i] = rng.Uint64() // exercises the 64-bit length clamp
			}
		}

		mA := NewUintModel()
		encA := NewEncoder()
		mA.EncodeSlice(encA, vs)
		a := append([]byte(nil), encA.Bytes()...)

		mB := NewUintModel()
		encB := NewEncoder()
		for _, v := range vs {
			mB.Encode(encB, v)
		}
		if !bytes.Equal(a, encB.Bytes()) {
			t.Fatalf("trial %d: UintModel.EncodeSlice differs from Encode loop", trial)
		}
		if mA.lenProbs != mB.lenProbs {
			t.Fatalf("trial %d: UintModel contexts diverged", trial)
		}

		mC := NewUintModel()
		decC, _ := NewDecoder(a)
		out := make([]uint64, n)
		mC.DecodeSlice(decC, out)
		for i := range vs {
			if out[i] != vs[i] {
				t.Fatalf("trial %d: value %d: got %d want %d", trial, i, out[i], vs[i])
			}
		}
		if err := decC.Err(); err != nil {
			t.Fatalf("trial %d: valid stream: %v", trial, err)
		}
	}
}

func TestIntModelSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(300)
		vs := make([]int64, n)
		for i := range vs {
			if rng.Intn(2) == 0 {
				vs[i] = 0
			} else {
				vs[i] = int64(rng.Intn(2001) - 1000)
			}
		}

		mA := NewIntModel()
		encA := NewEncoder()
		mA.EncodeSlice(encA, vs)
		a := append([]byte(nil), encA.Bytes()...)

		mB := NewIntModel()
		encB := NewEncoder()
		for _, v := range vs {
			mB.Encode(encB, v)
		}
		if !bytes.Equal(a, encB.Bytes()) {
			t.Fatalf("trial %d: IntModel.EncodeSlice differs from Encode loop", trial)
		}

		mC := NewIntModel()
		decC, _ := NewDecoder(a)
		out := make([]int64, n)
		mC.DecodeSlice(decC, out)
		for i := range vs {
			if out[i] != vs[i] {
				t.Fatalf("trial %d: value %d: got %d want %d", trial, i, out[i], vs[i])
			}
		}
	}
}

func TestEncoderResetReuse(t *testing.T) {
	data := []byte("the encoder scratch must be rewound, not leaked, across Reset")
	fresh := CompressBytes(data)

	e := NewEncoder()
	m := NewByteModel()
	lm := NewUintModel()
	for round := 0; round < 3; round++ {
		e.Reset()
		m.Init()
		lm.Init()
		lm.Encode(e, uint64(len(data)))
		m.EncodeSlice(e, data)
		if !bytes.Equal(e.Bytes(), fresh) {
			t.Fatalf("round %d: reused encoder stream differs from fresh encoder", round)
		}
	}
}

func TestDecoderResetReuse(t *testing.T) {
	a := CompressBytes([]byte("first"))
	b := CompressBytes([]byte("second stream, different length"))
	var d Decoder
	for round := 0; round < 2; round++ {
		for _, tc := range []struct {
			stream []byte
			want   string
		}{{a, "first"}, {b, "second stream, different length"}} {
			if err := d.Reset(tc.stream); err != nil {
				t.Fatal(err)
			}
			lm := NewUintModel()
			bm := NewByteModel()
			n := lm.Decode(&d)
			out := make([]byte, n)
			bm.DecodeSlice(&d, out)
			if err := d.Err(); err != nil {
				t.Fatal(err)
			}
			if string(out) != tc.want {
				t.Fatalf("round %d: got %q want %q", round, out, tc.want)
			}
		}
	}
}

// TestValidStreamsNeverOverrun pins the invariant the corruption check rests
// on: the 5-byte flush means a decoder that stops at the last coded symbol
// never reads past the end of a complete stream.
func TestValidStreamsNeverOverrun(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(2000)
		data := make([]byte, n)
		rng.Read(data)
		stream := CompressBytes(data)

		var d Decoder
		if err := d.Reset(stream); err != nil {
			t.Fatal(err)
		}
		lm := NewUintModel()
		bm := NewByteModel()
		got := make([]byte, lm.Decode(&d))
		bm.DecodeSlice(&d, got)
		if d.Overrun() != 0 {
			t.Fatalf("trial %d: complete stream overran by %d bytes", trial, d.Overrun())
		}
		if err := d.Err(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: payload mismatch", trial)
		}
	}
}

// TestTruncatedStreamErrCorrupt pins satellite behavior: a mid-stream read
// failure (modelled by truncation — the only way a slice cursor can fail)
// surfaces as ErrCorrupt at the API boundary instead of silently decoding
// zero-filled garbage.
func TestTruncatedStreamErrCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	data := make([]byte, 1000)
	rng.Read(data)
	stream := CompressBytes(data)

	for cut := 0; cut < len(stream); cut++ {
		out, err := DecompressBytes(stream[:cut])
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted (returned %d bytes)", cut, len(stream), len(out))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: got %v, want ErrCorrupt", cut, err)
		}
	}
	if _, err := DecompressBytes(stream); err != nil {
		t.Fatalf("untruncated stream: %v", err)
	}
}

// TestEOFSynthesizesZeroBytes pins the legitimate tail behavior: reading
// past the end behaves exactly as if the stream were zero-padded — the bit
// stream stays deterministic, the overrun counter records the synthetic
// reads, and Err reports the corruption.
func TestEOFSynthesizesZeroBytes(t *testing.T) {
	enc := NewEncoder()
	p := NewProb()
	for i := 0; i < 40; i++ {
		enc.EncodeBit(&p, i%3%2)
	}
	stream := append([]byte(nil), enc.Bytes()...)
	padded := append(append([]byte(nil), stream...), make([]byte, 64)...)

	dTrunc, _ := NewDecoder(stream)
	dPad, _ := NewDecoder(padded)
	pT, pP := NewProb(), NewProb()
	for i := 0; i < 300; i++ { // way past the 40 coded bits
		bt := dTrunc.DecodeBit(&pT)
		bp := dPad.DecodeBit(&pP)
		if bt != bp {
			t.Fatalf("bit %d: truncated decoder %d != zero-padded decoder %d", i, bt, bp)
		}
	}
	if dTrunc.Overrun() == 0 {
		t.Fatal("decoding past the end did not record an overrun")
	}
	if !errors.Is(dTrunc.Err(), ErrCorrupt) {
		t.Fatalf("Err after overrun: got %v, want ErrCorrupt", dTrunc.Err())
	}
	if dPad.Overrun() != 0 || dPad.Err() != nil {
		t.Fatal("zero-padded decoder should not overrun")
	}
}

func TestAppendCompressBytesPreservesPrefix(t *testing.T) {
	prefix := []byte{0xAB, 0xCD}
	payload := []byte("payload under test")
	out := AppendCompressBytes(append([]byte(nil), prefix...), payload)
	if !bytes.Equal(out[:2], prefix) {
		t.Fatal("prefix clobbered")
	}
	if !bytes.Equal(out[2:], CompressBytes(payload)) {
		t.Fatal("appended stream differs from CompressBytes")
	}
	dec, err := AppendDecompressBytes([]byte{1, 2, 3}, out[2:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, append([]byte{1, 2, 3}, payload...)) {
		t.Fatal("AppendDecompressBytes prefix/payload mismatch")
	}
}
