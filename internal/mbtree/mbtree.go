// Package mbtree implements the BASELINE inter-frame compression the paper
// compares against: CWIPC-style macro-block motion estimation [13], [48]
// (Sec. V-A2). A frame is partitioned into fixed-size S^3 macro blocks; the
// blocks of the I-frame and P-frame are each organized into a macro-block
// tree; for every P-leaf the ENTIRE I-tree is traversed and candidate
// leaves are compared point-by-point, accepting only near-exact matches
// (which is why "only few macro blocks are matched", Sec. VI-C). The whole
// search is CPU work on a small thread pool (the paper configures 4
// matching threads) and is the multi-second-per-P-frame bottleneck Fig. 8
// charges to CWIPC.
package mbtree

import (
	"math"
	"sort"

	"repro/internal/edgesim"
	"repro/internal/geom"
)

// Calibrated CPU costs. The match cost is per (P-block, I-block) pair —
// CWIPC's matcher walks the ENTIRE I-MB-tree for every P-leaf (Sec. V-A2:
// "the entire I-MB-Tree needs to be traversed ... repeated O(N) times"), so
// total matching work is nPBlocks * nIBlocks pairs; at ~30k blocks per
// 0.7 M-point frame this lands at the paper's ~5.9 s per predicted frame on
// 4 threads.
var (
	costTreeBuild = edgesim.Cost{OpsPerItem: 120, BytesPerItem: 24} // per point
	// costMatchPoint is charged per (P-block, I-point) pair: every
	// traversed I-leaf's contents are compared point-by-point against the
	// P-block. 4.5 ops/point lands the paper's per-predicted-frame cost
	// (~5.5-5.9 s including geometry) on 4 threads for ~0.7 M-point frames.
	costMatchPoint = edgesim.Cost{OpsPerItem: 4.5, BytesPerItem: 0.6}
)

// BlockKey identifies a macro block by its lattice-block coordinates.
type BlockKey struct{ X, Y, Z uint32 }

// Block is one macro block: the indices (into the frame's voxel slice) of
// the points it contains, plus summary statistics used for matching.
type Block struct {
	Key      BlockKey
	Indices  []int32
	Centroid [3]float64
	MeanRGB  [3]float64
}

// Tree is a macro-block decomposition of one frame. Blocks are stored in a
// map (the "tree" is the implicit octree over block coordinates; top-down
// traversal is modelled by the per-level lookups the cost model charges).
type Tree struct {
	BlockShift uint // macro block side = 1 << BlockShift voxels
	Depth      uint // lattice depth
	Blocks     map[BlockKey]*Block
	Keys       []BlockKey // deterministic iteration order (sorted)
	frame      *geom.VoxelCloud
}

// Build constructs the macro-block tree of a frame. blockShift selects the
// macro block side (e.g. 4 -> 16^3-voxel blocks, the CWIPC default scale).
func Build(dev *edgesim.Device, vc *geom.VoxelCloud, blockShift uint) *Tree {
	t := &Tree{BlockShift: blockShift, Depth: vc.Depth, Blocks: make(map[BlockKey]*Block), frame: vc}
	dev.CPUSerial("MBTreeBuild", vc.Len(), costTreeBuild, func() {
		for i, v := range vc.Voxels {
			k := BlockKey{v.X >> blockShift, v.Y >> blockShift, v.Z >> blockShift}
			b, ok := t.Blocks[k]
			if !ok {
				b = &Block{Key: k}
				t.Blocks[k] = b
			}
			b.Indices = append(b.Indices, int32(i))
			b.Centroid[0] += float64(v.X)
			b.Centroid[1] += float64(v.Y)
			b.Centroid[2] += float64(v.Z)
			b.MeanRGB[0] += float64(v.C.R)
			b.MeanRGB[1] += float64(v.C.G)
			b.MeanRGB[2] += float64(v.C.B)
		}
		for k, b := range t.Blocks {
			n := float64(len(b.Indices))
			for c := 0; c < 3; c++ {
				b.Centroid[c] /= n
				b.MeanRGB[c] /= n
			}
			t.Keys = append(t.Keys, k)
		}
		sort.Slice(t.Keys, func(i, j int) bool {
			a, b := t.Keys[i], t.Keys[j]
			if a.X != b.X {
				return a.X < b.X
			}
			if a.Y != b.Y {
				return a.Y < b.Y
			}
			return a.Z < b.Z
		})
	})
	return t
}

// NumBlocks returns the number of occupied macro blocks.
func (t *Tree) NumBlocks() int { return len(t.Blocks) }

// MatchResult describes the outcome of matching one P-block against the
// I-frame tree.
type MatchResult struct {
	PKey BlockKey
	// Found reports whether a usable reference block exists.
	Found bool
	// RefKey is the matched I-block (Found only).
	RefKey BlockKey
	// Motion is the estimated translation (I -> P), in voxels.
	Motion [3]float64
	// Cost is the residual matching cost after motion compensation
	// (mean squared colour distance + weighted centroid residual).
	Cost float64
}

// MatchParams tunes the matcher.
type MatchParams struct {
	// Threads is the CPU thread count (paper: 4).
	Threads int
	// FullSearch makes every P-block scan the ENTIRE I-tree (CWIPC's
	// behaviour and its 5.9 s/P-frame cost). When false, only a
	// neighbourhood of SearchRadius blocks around the co-located block is
	// probed (a cheaper matcher used by unit tests).
	FullSearch bool
	// SearchRadius bounds the neighbourhood probe when FullSearch is off.
	SearchRadius int
	// MaxCost is the acceptance threshold on MatchResult.Cost (mean
	// per-point squared RGB distance after pairing, plus penalties).
	MaxCost float64
	// MaxDensitySkew rejects candidates whose point count differs by more
	// than this fraction — structurally-changed blocks fall back to raw
	// coding, which is why "only few macro blocks are matched" (Sec. VI-C)
	// under real motion.
	MaxDensitySkew float64
	// Exact additionally requires candidates to be EXACT geometric
	// translations of the P-block (equal count, identical voxel offsets
	// relative to the block origin) — the strictest, lossless acceptance.
	Exact bool
}

// DefaultMatchParams mirrors the paper's CWIPC configuration: approximate
// block reuse (the source of CWIPC's ~7 dB quality drop vs TMC13, Fig. 8c)
// gated by a structural-similarity filter.
func DefaultMatchParams() MatchParams {
	return MatchParams{Threads: 4, FullSearch: true, SearchRadius: 1, MaxCost: 20, MaxDensitySkew: 0.04}
}

// MatchAll matches every P-block against the I-tree. With FullSearch the
// real scan covers all I-blocks (top-down traversal per pair, as CWIPC
// does); the accounted cost is per (P,I) block pair either way. Results are
// in pTree.Keys order (deterministic).
func MatchAll(dev *edgesim.Device, iTree, pTree *Tree, p MatchParams) []MatchResult {
	if p.Threads < 1 {
		p.Threads = 1
	}
	out := make([]MatchResult, len(pTree.Keys))
	// Accounted work: per P-block, the traversal visits every I-leaf
	// (FullSearch) or a fixed neighbourhood, comparing leaf contents
	// point-by-point.
	pointsPerBlock := float64(iTree.frame.Len())
	if !p.FullSearch {
		r := float64(2*p.SearchRadius + 1)
		avg := float64(iTree.frame.Len()) / float64(max(1, len(iTree.Keys)))
		pointsPerBlock = r * r * r * avg
	}
	cost := edgesim.Cost{
		OpsPerItem:   costMatchPoint.OpsPerItem * pointsPerBlock,
		BytesPerItem: costMatchPoint.BytesPerItem * pointsPerBlock,
	}
	dev.CPUParallel("MBMatch", p.Threads, len(pTree.Keys), cost, func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = matchOne(iTree, pTree, pTree.Keys[i], p)
		}
	})
	return out
}

func matchOne(iTree, pTree *Tree, key BlockKey, p MatchParams) MatchResult {
	pb := pTree.Blocks[key]
	res := MatchResult{PKey: key}
	best := math.Inf(1)
	consider := func(ck BlockKey, ib *Block) {
		ni, np := float64(len(ib.Indices)), float64(len(pb.Indices))
		if p.MaxDensitySkew > 0 && math.Abs(ni-np) > math.Max(2, p.MaxDensitySkew*np) {
			return
		}
		if p.Exact && !exactTranslation(iTree, pTree, ib, pb) {
			return
		}
		// Cheap prefilter on block means before the per-point comparison
		// (mean distance lower-bounds nothing formally, but a block whose
		// mean colours are wildly apart cannot pass the per-point test).
		statCost, motion := blockCost(ib, pb)
		if p.MaxCost > 0 && statCost > 64*p.MaxCost {
			return
		}
		cost := perPointCost(iTree, pTree, ib, pb)
		cost += 1e-6 * (motion[0]*motion[0] + motion[1]*motion[1] + motion[2]*motion[2])
		if cost < best {
			best = cost
			res.Found = true
			res.RefKey = ck
			res.Motion = motion
			res.Cost = cost
		}
	}
	if p.FullSearch {
		for _, ck := range iTree.Keys {
			consider(ck, iTree.Blocks[ck])
		}
	} else {
		r := p.SearchRadius
		for dx := -r; dx <= r; dx++ {
			for dy := -r; dy <= r; dy++ {
				for dz := -r; dz <= r; dz++ {
					ck := BlockKey{
						X: offsetU32(key.X, dx),
						Y: offsetU32(key.Y, dy),
						Z: offsetU32(key.Z, dz),
					}
					if ib, ok := iTree.Blocks[ck]; ok {
						consider(ck, ib)
					}
				}
			}
		}
	}
	if res.Found && p.MaxCost > 0 && res.Cost > p.MaxCost {
		res.Found = false
	}
	return res
}

// exactTranslation reports whether the I-block's point set is an exact
// integer translation of the P-block's: equal counts and identical voxel
// offsets relative to the block origin. Point order within a block is the
// frame's Morton order, which translation preserves within a block, so a
// single aligned sweep suffices (with early exit on the first mismatch —
// what keeps the real scan tractable while the cost model charges the full
// comparison the original codec performs).
func exactTranslation(iTree, pTree *Tree, ib, pb *Block) bool {
	if len(ib.Indices) != len(pb.Indices) {
		return false
	}
	ishift, pshift := iTree.BlockShift, pTree.BlockShift
	for k := range ib.Indices {
		iv := iTree.frame.Voxels[ib.Indices[k]]
		pv := pTree.frame.Voxels[pb.Indices[k]]
		if iv.X-(ib.Key.X<<ishift) != pv.X-(pb.Key.X<<pshift) ||
			iv.Y-(ib.Key.Y<<ishift) != pv.Y-(pb.Key.Y<<pshift) ||
			iv.Z-(ib.Key.Z<<ishift) != pv.Z-(pb.Key.Z<<pshift) {
			return false
		}
	}
	return true
}

// perPointCost is the mean per-point squared RGB distance between the two
// blocks after index pairing — the lossy comparison whose acceptance
// produces CWIPC's block-approximation quality drop.
func perPointCost(iTree, pTree *Tree, ib, pb *Block) float64 {
	np, ni := len(pb.Indices), len(ib.Indices)
	var sum float64
	for i := 0; i < np; i++ {
		pv := pTree.frame.Voxels[pb.Indices[i]]
		iv := iTree.frame.Voxels[ib.Indices[i*ni/np]]
		sum += float64(pv.C.Dist2(iv.C))
	}
	return sum / float64(np)
}

// blockCost estimates the post-compensation residual between an I-block and
// a P-block: translation = centroid difference (the ICP translation
// estimate for two roughly-rigid point sets), cost = mean squared colour
// distance plus a density-mismatch penalty.
func blockCost(ib, pb *Block) (cost float64, motion [3]float64) {
	for c := 0; c < 3; c++ {
		motion[c] = pb.Centroid[c] - ib.Centroid[c]
	}
	var colorD float64
	for c := 0; c < 3; c++ {
		d := pb.MeanRGB[c] - ib.MeanRGB[c]
		colorD += d * d
	}
	ni, np := float64(len(ib.Indices)), float64(len(pb.Indices))
	densityPenalty := (ni - np) * (ni - np) / (ni + np)
	// Small preference for short motion vectors: they code cheaper and
	// break ties towards the co-located block.
	motionPenalty := 1e-6 * (motion[0]*motion[0] + motion[1]*motion[1] + motion[2]*motion[2])
	return colorD + densityPenalty + motionPenalty, motion
}

func offsetU32(v uint32, d int) uint32 {
	r := int64(v) + int64(d)
	if r < 0 {
		return ^uint32(0) // never present in the map
	}
	return uint32(r)
}
