package pcc

import (
	"errors"

	"repro/internal/codec"
	"repro/internal/entropy"
	"repro/internal/paroctree"
)

// Progressive decoding. The proposed designs serialize geometry
// breadth-first, so ANY PREFIX of the stream is a complete coarse frame: a
// streaming receiver can display a low-resolution cloud after the first few
// kilobytes and refine as bytes arrive. (The sequential baselines' DFS
// streams have no such cut points.)

// ErrNotProgressive is returned for frames whose geometry stream does not
// support prefix decoding (TMC13/CWIPC frames).
var ErrNotProgressive = errors.New("pcc: frame is not progressively decodable")

// DecodeProgressive decodes only the first `level` octree levels of a
// proposed-design frame (IntraOnly / IntraInter*), returning a coarse cloud
// with points at the centres of the level-`level` cells in full-lattice
// coordinates. level >= the frame's depth decodes full resolution
// (geometry only — attributes are not populated by this call).
//
// GeometryPrefixBytes in the second return is how much of the geometry
// stream a receiver must have to show this level.
func DecodeProgressive(f *EncodedFrame, level uint) (*PointCloud, int, error) {
	dev := NewDevice(Mode15W)
	if f.Tiled() {
		// Tiled geometry is per-tile streams; a frame-wide byte prefix is
		// not a coarse frame. Use the layered container for partial tiled
		// frames instead.
		return nil, 0, ErrNotProgressive
	}
	if f.Layered() {
		return decodeProgressiveLayered(f, level)
	}
	if len(f.Geometry) == 0 {
		return nil, 0, ErrNotProgressive
	}
	stream := f.Geometry[1:]
	switch f.Geometry[0] {
	case 0:
		// fast path: raw BFS stream
	case 1:
		// Entropy-coded geometry must be fully decompressed first (the
		// arithmetic stream is not prefix-decodable) — one more reason the
		// paper's fast path discards the entropy stage. Layered frames fix
		// this: entropy restarts at every layer cut, so the layered branch
		// above never decompresses past the requested level's layer.
		var err error
		stream, err = entropy.DecompressBytes(stream)
		if err != nil {
			return nil, 0, err
		}
	default:
		return nil, 0, ErrNotProgressive
	}
	lod, err := paroctree.DeserializeLoD(dev, stream, uint(f.Depth), level)
	if err != nil {
		return nil, 0, err
	}
	voxels := lod.UpscaleToLattice(dev, uint(f.Depth))
	if f.HasRescale {
		for i := range voxels {
			voxels[i] = f.Rescale.Invert(voxels[i])
		}
	}
	return &PointCloud{Depth: uint(f.Depth), Voxels: voxels}, lod.PrefixBytes, nil
}

// decodeProgressiveLayered is the layered-frame fast path: consume whole
// layers (each a self-contained entropy unit) until the requested level is
// covered, so the reported prefix is the SUM OF THE WIRE LENGTHS of the
// consumed layers — a base-layer decode reads exactly the directory's
// base-layer bytes, never the rest of the stream. Prefix granularity is
// whole layers: level cuts inside a layer round up to the layer boundary.
func decodeProgressiveLayered(f *EncodedFrame, level uint) (*PointCloud, int, error) {
	dev := NewDevice(Mode15W)
	ld := f.Layer
	depth := uint(f.Depth)
	if len(ld.Units) != 1 || int(ld.Sub) < 1 || int(ld.Sub) > int(ld.Layers) {
		return nil, 0, ErrNotProgressive
	}
	if level > depth {
		level = depth
	}
	// Layers needed: layer 0 covers levels up to BaseLevel; each
	// enhancement layer adds one level.
	need := 1 + int(level) - int(ld.BaseLevel)
	if need < 1 {
		need = 1
	}
	if need > int(ld.Sub) {
		need = int(ld.Sub)
	}
	spans := ld.Units[0]
	var raw []byte
	pos, prefix := 0, 0
	for _, s := range spans[:need] {
		chunk := f.Geometry[pos : pos+int(s.GeomLen)]
		pos += int(s.GeomLen)
		prefix += int(s.GeomLen)
		if len(chunk) == 0 {
			return nil, 0, ErrNotProgressive
		}
		payload := chunk[1:]
		switch chunk[0] {
		case 0:
		case 1:
			var err error
			if payload, err = entropy.DecompressBytes(payload); err != nil {
				return nil, 0, err
			}
		default:
			return nil, 0, ErrNotProgressive
		}
		raw = append(raw, payload...)
	}
	// The consumed layers carry mask levels up to BaseLevel+need-1; clamp
	// the decode there when the subscription cuts below the request.
	if covered := uint(int(ld.BaseLevel) + need - 1); level > covered {
		level = covered
	}
	lod, err := paroctree.DeserializeLoD(dev, raw, depth, level)
	if err != nil {
		return nil, 0, err
	}
	voxels := lod.UpscaleToLattice(dev, depth)
	if f.HasRescale {
		for i := range voxels {
			voxels[i] = f.Rescale.Invert(voxels[i])
		}
	}
	return &PointCloud{Depth: depth, Voxels: voxels}, prefix, nil
}

// interface check: EncodedFrame is the codec container type.
var _ = codec.EncodedFrame{}
