package stream

// Viewer is one attached consumer of a Server's shared encode: it owns a
// bounded send queue, a backpressure policy, a private packet sequence
// space and frame-index space, and a control loop — everything
// per-session except the encode itself, which the Server pays once per
// frame for all viewers, and the frame bytes themselves, which the
// viewer's queue holds by reference into the server's frame ring.
//
// Slow-viewer isolation: enqueueing never blocks the relay shard. A full
// queue sheds its oldest P-frame (frame-index gaps read as sender drops at
// the receiver, which stays decodable because P-frames predict from their
// GOP I-frame, not from each other). When an I-frame arrives at a full
// queue the viewer is force-resynced: the stale backlog is flushed and the
// stream restarts from that fresh keyframe — a drowning viewer jumps to
// the newest I instead of serving frames it can no longer afford to send.
//
// NACKs are answered without per-viewer packet copies: the viewer keeps
// only compact sent-records (which sequence range mapped to which ring
// frame) and rebuilds the requested fragment from its shard's retransmit
// cache on demand, so the retransmit memory for a partition is one
// refcounted frame set shared by every viewer in it.

import (
	"math/bits"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/linksim"
	"repro/internal/metrics"
	"repro/internal/viewport"
)

// ViewerConfig configures one attached viewer. The zero value of every
// field is usable: the server assigns a stream id, the queue defaults to
// the server's ViewerQueue, the MTU and retransmit buffer to the server's.
type ViewerConfig struct {
	// StreamID tags this viewer's packets (0 = server-assigned, unique).
	StreamID uint32
	// Queue is the viewer's send-queue capacity in frames.
	Queue int
	// MTU is the packet payload size for this viewer.
	MTU int
	// Link is this viewer's modelled downlink (default: the server's link).
	Link linksim.Link
	// Pace, when > 0, makes the viewer's sender sleep Pace real seconds per
	// simulated link second — the knob that turns a narrow Link into a
	// genuinely slow viewer.
	Pace float64
	// RetransmitBuffer caps the sent packets this viewer can still answer
	// NACKs for (records only; the payload bytes live in the shard cache).
	RetransmitBuffer int
	// Viewport, when non-nil, is the viewer's initial camera: tiled frames
	// are culled against it from the very first send (SetViewport updates
	// it live; a receiver drives it remotely with ControlViewport).
	Viewport *viewport.Camera
	// Layers, when > 0, is the viewer's initial explicit layer
	// subscription: layered frames ship only their first Layers layers,
	// sliced zero-copy from the published container (SetLayers updates it
	// live; a receiver drives it remotely with ControlLayers).
	Layers uint8
	// LayerAdapt, when Enabled, attaches a per-viewer layer controller:
	// this viewer's own congestion feedback sheds enhancement layers and
	// recovers them at keyframes — per-viewer quality as a drop decision,
	// with no shared-encoder knob involved. An explicit subscription
	// (Layers / SetLayers / ControlLayers) overrides the controller.
	LayerAdapt codec.LayerAdapt
	// PacketOut transmits this viewer's framed packets. It runs on the
	// viewer's sender goroutine (fresh and cached frames) and on the
	// HandleControl caller's goroutine (retransmissions). Nil builds and
	// accounts packets without sending — useful for capacity benchmarks.
	// A PacketOut error marks the viewer failed and stops its sender; it
	// never aborts the server or the other viewers.
	PacketOut PacketSendFunc
}

// ViewerMetrics is a point-in-time snapshot of one viewer's delivery state.
type ViewerMetrics struct {
	StreamID uint32
	// Queue is the send-queue gauge (depth, watermark, enqueues, drops).
	Queue metrics.QueueSnapshot
	// FramesEnqueued counts frames that entered the send queue (the size of
	// the viewer's frame-index space; queue drops leave index gaps).
	FramesEnqueued int64
	// FramesSent counts frames fully packetized and emitted.
	FramesSent int64
	// FramesDropped counts frames shed by the queue policy — queued frames
	// removed plus incoming frames rejected at a full queue.
	FramesDropped int64
	// SkippedNoRef counts P-frames skipped while the viewer had no usable
	// I-frame reference (cacheless join before the first keyframe).
	SkippedNoRef int64
	// Resyncs counts forced I-frame resyncs: overflows where the backlog
	// was flushed and the stream restarted from a fresh keyframe.
	Resyncs int64
	// CachedJoin reports that the viewer's first frame came from the
	// server's keyframe cache rather than a live encode.
	CachedJoin bool
	// JoinLatency is attach → first frame on the wire (0 until then).
	JoinLatency time.Duration
	// Packets / WireBytes total the emitted packets (headers included).
	// Packets counts data packets only; parity rides in ParitySent and its
	// bytes fold into WireBytes and the link cost.
	Packets   int64
	WireBytes int64
	// ParitySent counts FEC parity packets emitted after data packets.
	// Parity consumes no viewer sequence numbers and is never cached for
	// retransmission.
	ParitySent int64
	// Control-loop counters: NACK messages handled, packets re-sent,
	// NACKed packets no longer answerable (record or shard cache evicted),
	// refresh requests forwarded.
	NACKsReceived int64
	Retransmits   int64
	RetxMisses    int64
	Refreshes     int64
	// Congestion-feedback counters: reports this viewer's receiver sent
	// that were accepted, reports dropped as duplicate/stale, and the loss
	// rate its latest report carried (shards aggregate these across
	// viewers into the shared controller's signal).
	FeedbackReports int64
	FeedbackStale   int64
	LastLossRate    float64
	// Viewport-culling counters. TilesCulled / TilesCoarse total the tiles
	// omitted / sent geometry-only across all tiled sends; CulledBytes is
	// the payload bytes the culling kept off this viewer's wire (the gap
	// between the published frames and the culled rewrites actually sent).
	HasViewport     bool
	ViewportUpdates int64
	TilesCulled     int64
	TilesCoarse     int64
	CulledBytes     int64
	// Layer-subscription state: SubLayers is the subscription the latch
	// last applied (0 = full quality); LayerDownswitches / LayerUpswitches
	// count subscription shrinks and keyframe recoveries.
	SubLayers         uint8
	LayerDownswitches int64
	LayerUpswitches   int64
	// RetxBuffered is the packet span the sent-records currently cover —
	// how many recent sequence numbers this viewer can still answer NACKs
	// for (0 once the viewer detaches; detach frees the records).
	RetxBuffered int
	// Link totals over all sent frames.
	LinkTime  time.Duration
	TxEnergyJ float64
	RxEnergyJ float64
	// Err is the viewer's first transport error, if any.
	Err error
}

// queuedFrame is one frame waiting in a viewer's send queue, tagged with
// the viewer-local frame index assigned at enqueue time. The entry holds
// one payload reference, released after the frame is sent or shed.
type queuedFrame struct {
	idx uint32
	f   *sharedFrame
}

// sentRec records one sent frame's place in the viewer's sequence space:
// enough to rebuild any of its fragments from the shard retransmit cache
// on a NACK, without retaining per-viewer packet copies.
type sentRec struct {
	firstSeq uint32 // sequence number of fragment 0
	n        uint16 // fragment count
	frameSeq uint64 // ring publish sequence (shard cache key)
	frameIdx uint32 // viewer-local frame index
	ftype    codec.FrameType
	cached   bool // replayed join keyframe (FlagCached on rebuild)
	// tiled records a viewport-culled tiled send (FlagTiled on rebuild);
	// omit/coarse are the masks used at send time, so a NACK rebuild
	// reconstructs the identical culled frame even after the viewer's
	// camera has moved on.
	tiled        bool
	omit, coarse uint64
	// layers is the layer subscription the send was truncated to (0 = all
	// layers kept), recorded for the same deterministic-rebuild reason:
	// a retransmit must re-slice the exact bytes even after the viewer's
	// subscription has churned.
	layers uint8
}

// Viewer is one fan-out consumer. Create with Server.Attach; release with
// Server.Detach (or Close). All methods are safe for concurrent use.
type Viewer struct {
	sv    *Server
	shard *shard // owning relay shard (set by Attach before the sender starts)
	cfg   ViewerConfig
	id    uint32

	gauge    *metrics.QueueGauge
	joinedAt time.Time
	done     chan struct{}

	// joinCache is the cached keyframe handed to a late joiner, holding
	// one payload reference; shard.attach enqueues and clears it.
	joinCache *sharedFrame
	// minLiveSeq is the first ring sequence this viewer accepts live: a
	// cached join supersedes everything published up to the cached
	// keyframe, so older in-flight frames are skipped silently.
	minLiveSeq uint64

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []queuedFrame
	closed  bool // no further enqueues; sender drains then exits
	discard bool // sender exits without draining
	// lostRef marks that the viewer has no decodable I-frame reference
	// (cacheless join): P-frames are skipped until the next keyframe.
	lostRef bool
	nextIdx uint32
	pktSeq  uint32
	// cam is the viewer's viewport (nil = no culling: every tile ships).
	// The pointer is replaced wholesale on update, never mutated.
	cam *viewport.Camera
	// layersWant is the explicit subscription override (0 = none), curSub
	// the subscription the latch last applied (0 = full), lctrl the
	// per-viewer adaptive layer controller (nil = none attached).
	layersWant uint8
	curSub     uint8
	lctrl      *codec.LayerController

	framesSent    int64
	framesDropped int64
	skippedNoRef  int64
	resyncs       int64
	cachedJoin    bool
	joinLatency   time.Duration
	packets       int64
	wireBytes     int64
	paritySent    int64
	nacksRecv     int64
	retransmits   int64
	retxMisses    int64
	refreshes     int64
	// Feedback state: per-viewer report numbering is independent, so the
	// stale check lives here, not on the shard.
	lastFbReport uint32
	fbReports    int64
	fbStale      int64
	lastLoss     float64
	vpUpdates    int64
	tilesCulled  int64
	tilesCoarse  int64
	culledBytes  int64
	layerDown    int64
	layerUp      int64
	linkTime     time.Duration
	txJ, rxJ     float64
	err          error

	// records is the sent-record FIFO, ordered by firstSeq in the modular
	// uint32 sequence space (pktSeq wraps), bounded so the covered packet
	// span stays <= retxCap — which keeps modular lookups unambiguous.
	records []sentRec
	recPkts int
	recDead bool // detached: answer no further NACKs
}

func newViewer(sv *Server, cfg ViewerConfig, joinCache *sharedFrame) *Viewer {
	v := &Viewer{
		sv:        sv,
		cfg:       cfg,
		gauge:     metrics.NewQueueGauge("viewer-send"),
		joinedAt:  time.Now(),
		done:      make(chan struct{}),
		joinCache: joinCache,
		lostRef:   joinCache == nil,
	}
	if joinCache != nil {
		v.minLiveSeq = joinCache.seq + 1
	}
	if cfg.Viewport != nil && cfg.Viewport.FOVDegrees > 0 {
		cam := *cfg.Viewport
		v.cam = &cam
	}
	v.layersWant = cfg.Layers
	if cfg.LayerAdapt.Enabled {
		v.lctrl = codec.NewLayerController(cfg.LayerAdapt)
	}
	v.cond = sync.NewCond(&v.mu)
	return v
}

// SetViewport installs or replaces the viewer's camera: subsequent tiled
// frames are culled against it (tiles outside the frustum dropped, tiles
// in the widened margin sent geometry-only). A camera with FOVDegrees <= 0
// clears the viewport — the conventional "send everything" request — so a
// receiver can toggle culling with a single control message kind. Safe to
// call concurrently with a live stream; retransmits of frames already sent
// keep the masks they were sent with.
func (v *Viewer) SetViewport(cam viewport.Camera) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.vpUpdates++
	if cam.FOVDegrees <= 0 {
		v.cam = nil
		return
	}
	c := cam
	v.cam = &c
}

// ClearViewport removes the viewer's camera: every tile ships again.
func (v *Viewer) ClearViewport() { v.SetViewport(viewport.Camera{}) }

// SetLayers installs or replaces the viewer's explicit layer subscription:
// subsequent layered frames ship only their first sub layers, sliced
// zero-copy from the published container. sub == 0 clears the override,
// returning control to the adaptive layer controller (if configured) or to
// full quality. Shrinking the subscription applies on the very next send;
// growing it waits for the next keyframe (see subscriptionLocked). Safe to
// call concurrently with a live stream; retransmits of frames already sent
// keep the subscription they were sent with.
func (v *Viewer) SetLayers(sub uint8) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.layersWant = sub
}

// StreamID returns the viewer's packet stream id.
func (v *Viewer) StreamID() uint32 { return v.id }

// Close detaches the viewer from its server (Server.Detach shorthand).
func (v *Viewer) Close() { v.sv.Detach(v) }

// Err returns the viewer's first transport error, if any.
func (v *Viewer) Err() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.err
}

// Metrics snapshots the viewer's counters.
func (v *Viewer) Metrics() ViewerMetrics {
	v.mu.Lock()
	defer v.mu.Unlock()
	return ViewerMetrics{
		StreamID:          v.id,
		Queue:             v.gauge.Snapshot(),
		FramesEnqueued:    int64(v.nextIdx),
		FramesSent:        v.framesSent,
		FramesDropped:     v.framesDropped,
		SkippedNoRef:      v.skippedNoRef,
		Resyncs:           v.resyncs,
		CachedJoin:        v.cachedJoin,
		JoinLatency:       v.joinLatency,
		Packets:           v.packets,
		WireBytes:         v.wireBytes,
		ParitySent:        v.paritySent,
		NACKsReceived:     v.nacksRecv,
		Retransmits:       v.retransmits,
		RetxMisses:        v.retxMisses,
		Refreshes:         v.refreshes,
		FeedbackReports:   v.fbReports,
		FeedbackStale:     v.fbStale,
		LastLossRate:      v.lastLoss,
		HasViewport:       v.cam != nil,
		ViewportUpdates:   v.vpUpdates,
		TilesCulled:       v.tilesCulled,
		TilesCoarse:       v.tilesCoarse,
		CulledBytes:       v.culledBytes,
		SubLayers:         v.curSub,
		LayerDownswitches: v.layerDown,
		LayerUpswitches:   v.layerUp,
		RetxBuffered:      v.recPkts,
		LinkTime:          v.linkTime,
		TxEnergyJ:         v.txJ,
		RxEnergyJ:         v.rxJ,
		Err:               v.err,
	}
}

// enqueue offers one relayed frame to the viewer, retaining a payload
// reference on acceptance. It never blocks: the queue policy resolves
// overflow by shedding (see the type comment). Runs under the owning
// shard's lock, so it must stay O(queue). Returns whether the frame
// entered the queue.
func (v *Viewer) enqueue(f *sharedFrame) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return false
	}
	if !f.cached && f.seq < v.minLiveSeq {
		// Published before this viewer's cached join point: the cached
		// keyframe already supersedes it. Not a drop — the frame was
		// never part of this viewer's stream.
		return false
	}
	if v.lostRef {
		if f.ftype == codec.PFrame {
			// Undecodable without a reference; don't waste queue or wire.
			v.skippedNoRef++
			v.framesDropped++
			v.gauge.Drop()
			return false
		}
		v.lostRef = false
	}
	if len(v.queue) >= v.queueCap() {
		switch {
		case f.ftype == codec.IFrame:
			// Forced I-frame resync: the backlog is stale and a fresh
			// keyframe supersedes all of it — flush and restart from f.
			for _, qf := range v.queue {
				v.gauge.Dequeue()
				v.gauge.Drop()
				qf.f.p.release()
			}
			v.framesDropped += int64(len(v.queue))
			v.queue = v.queue[:0]
			v.resyncs++
		case v.dropOldestPLocked():
			// One slot freed; fall through to the append.
		default:
			// Queue full of I-frames: the incoming P predicts from the
			// newest queued keyframe, which will be delivered — shedding
			// the P keeps the stream decodable.
			v.framesDropped++
			v.gauge.Drop()
			return false
		}
	}
	if f.cached {
		v.cachedJoin = true
	}
	f.p.retain()
	v.queue = append(v.queue, queuedFrame{idx: v.nextIdx, f: f})
	v.nextIdx++
	v.gauge.Enqueue()
	v.cond.Signal()
	return true
}

// dropOldestPLocked removes (and releases) the oldest queued P-frame.
// Returns false when the queue holds only I-frames (which are only
// superseded, never shed).
func (v *Viewer) dropOldestPLocked() bool {
	for i, qf := range v.queue {
		if qf.f.ftype == codec.PFrame {
			qf.f.p.release()
			copy(v.queue[i:], v.queue[i+1:])
			v.queue[len(v.queue)-1] = queuedFrame{}
			v.queue = v.queue[:len(v.queue)-1]
			v.gauge.Dequeue()
			v.gauge.Drop()
			v.framesDropped++
			return true
		}
	}
	return false
}

func (v *Viewer) queueCap() int {
	if v.cfg.Queue > 0 {
		return v.cfg.Queue
	}
	return v.sv.cfg.ViewerQueue
}

// mtu returns the payload size per packet, with PacketizeFrame's clamps
// applied so NACK rebuilds fragment exactly like the original send.
func (v *Viewer) mtu() int {
	m := v.cfg.MTU
	if m < 64 {
		m = v.sv.cfg.MTU
	}
	if m > MaxPayload {
		m = MaxPayload
	}
	return m
}

func (v *Viewer) retxCap() int {
	if v.cfg.RetransmitBuffer > 0 {
		return v.cfg.RetransmitBuffer
	}
	return v.sv.cfg.RetransmitBuffer
}

// sendLoop is the viewer's sender goroutine: it drains the queue in order,
// packetizes each frame in the viewer's own sequence space, records the
// sent range for NACK rebuilds, and emits the packets through PacketOut.
func (v *Viewer) sendLoop() {
	defer close(v.done)
	for {
		v.mu.Lock()
		for len(v.queue) == 0 && !v.closed && !v.discard {
			v.cond.Wait()
		}
		if v.discard || (v.closed && len(v.queue) == 0) || v.err != nil {
			v.mu.Unlock()
			return
		}
		qf := v.queue[0]
		copy(v.queue, v.queue[1:])
		v.queue[len(v.queue)-1] = queuedFrame{}
		v.queue = v.queue[:len(v.queue)-1]
		v.gauge.Dequeue()
		firstSeq := v.pktSeq
		v.mu.Unlock()

		err := v.sendFrame(qf, firstSeq)
		qf.f.p.release() // queue entry's reference
		if err != nil {
			v.mu.Lock()
			if v.err == nil {
				v.err = err
			}
			v.mu.Unlock()
			return
		}
	}
}

// sendFrame packetizes and emits one frame. Runs only on the sender loop.
//
// With a viewport installed and a tiled frame queued, the send is culled:
// tileMasks classifies the frame's tiles against the camera, buildViewPlan
// rewrites the container header and maps the kept tiles' spans over the
// immutable ring payload, and each packet gathers its ≤MTU bytes straight
// from those spans — per-viewer culling without re-encoding or copying
// the frame. Culled packets carry FlagTiled plus the tile id their first
// byte belongs to; an unmasked send (no camera, untiled frame, or a
// camera that sees everything) is byte-identical to the plain path.
func (v *Viewer) sendFrame(qf queuedFrame, firstSeq uint32) error {
	v.mu.Lock()
	cam := v.cam
	sub := v.subscriptionLocked(qf.f)
	v.mu.Unlock()
	mtu := v.mtu()
	var plan *viewPlan
	var omit, coarse uint64
	tiledSend := false
	if l := qf.f.layout; l != nil {
		if cam != nil && len(l.Tiles) > 0 {
			omit, coarse = tileMasks(l, *cam)
		}
		if omit|coarse != 0 || sub != 0 {
			plan = buildViewPlan(l, qf.f.p.wire, omit, coarse, sub)
			tiledSend = len(l.Tiles) > 0
		}
	}
	var pkts [][]byte
	var scratch []byte
	bytes := int64(0)
	if plan != nil {
		var flags byte
		if tiledSend {
			flags |= FlagTiled
		}
		if sub != 0 {
			flags |= FlagLayered
		}
		if qf.f.cached {
			flags |= FlagCached
		}
		n := fragsAtMTU(plan.total, mtu)
		pkts = make([][]byte, 0, n)
		for i := 0; i < n; i++ {
			var tile uint16
			var layer uint8
			scratch, tile, layer = plan.gather(scratch[:0], i, mtu)
			pkts = append(pkts, MarshalPacket(PacketHeader{
				Flags:      flags,
				StreamID:   v.id,
				FrameIndex: qf.idx,
				FrameType:  qf.f.ftype,
				Frag:       uint16(i),
				FragCount:  uint16(n),
				Seq:        firstSeq + uint32(i),
				Tile:       tile,
				Layer:      layer,
			}, scratch))
		}
	} else {
		pkts = PacketizeFrame(v.id, qf.idx, qf.f.ftype, firstSeq, qf.f.p.wire, mtu)
		for _, p := range pkts {
			if qf.f.cached {
				p[3] |= FlagCached // outside the payload CRC, like FlagRetransmit
			}
		}
	}
	for _, p := range pkts {
		bytes += int64(len(p))
	}
	// Frame the parity packets (if the published frame carries a share):
	// bodies are reused verbatim at the share's MTU and rebuilt from the
	// immutable ring payload otherwise; a culled send always rebuilds from
	// its view plan, so the parity protects exactly the bytes sent. Parity
	// takes no viewer sequence numbers and no sent-record — it is never
	// NACKed or retransmitted — but its bytes ride the same link budget as
	// the data, and it never carries FlagTiled (it covers framed payloads,
	// not tile bytes).
	var parity [][]byte
	var parityEnds []int // last covered fragment index per parity packet
	if fec := qf.f.fec; fec != nil {
		groups, bodies := fec.groups, fec.bodies
		if plan != nil || mtu != fec.mtu {
			groups, bodies = parityGroups(len(pkts), fec.k, qf.f.ftype), nil
		}
		parity = make([][]byte, 0, len(groups))
		parityEnds = make([]int, 0, len(groups))
		for gi, g := range groups {
			body := []byte(nil)
			switch {
			case bodies != nil:
				body = bodies[gi]
			case plan != nil:
				body, scratch = plan.parityBody(g, mtu, scratch)
			default:
				body = buildParityBody(qf.f.p.wire, mtu, g)
			}
			p := parityPacket(v.id, qf.idx, qf.f.ftype, firstSeq, len(pkts), g, body)
			parity = append(parity, p)
			parityEnds = append(parityEnds, g.end())
			bytes += int64(len(p))
		}
	}
	cost, err := v.cfg.Link.Transmit(bytes)
	if err != nil {
		return err
	}
	// Record before the first PacketOut: a receiver NACKing from inside
	// the delivery chain (re-entrant HandleControl) must find the frame.
	v.recordSent(qf, firstSeq, len(pkts), tiledSend, omit, coarse, sub)
	// Each group's parity packet interleaves right after the group's last
	// covered data packet, so a repair trails the loss it fixes by at most
	// a group's worth of packet-times — well inside the NACK timer.
	gi := 0
	for i, p := range pkts {
		if v.cfg.PacketOut != nil {
			if err := v.cfg.PacketOut(v.sv.sess.ctx, p); err != nil {
				return err
			}
		}
		for gi < len(parity) && parityEnds[gi] <= i {
			pp := parity[gi]
			gi++
			if v.cfg.PacketOut != nil {
				if err := v.cfg.PacketOut(v.sv.sess.ctx, pp); err != nil {
					return err
				}
			}
		}
	}
	v.mu.Lock()
	v.pktSeq = firstSeq + uint32(len(pkts))
	v.framesSent++
	v.packets += int64(len(pkts))
	v.paritySent += int64(len(parity))
	v.wireBytes += bytes
	if plan != nil {
		v.tilesCulled += int64(bits.OnesCount64(omit))
		v.tilesCoarse += int64(bits.OnesCount64(coarse))
		v.culledBytes += int64(len(qf.f.p.wire) - plan.total)
	}
	v.linkTime += cost.Latency
	v.txJ += cost.TxEnergy
	v.rxJ += cost.RxEnergy
	if v.joinLatency == 0 {
		v.joinLatency = time.Since(v.joinedAt)
	}
	v.mu.Unlock()
	if v.cfg.Pace > 0 {
		pause := time.Duration(float64(cost.Latency) * v.cfg.Pace)
		select {
		case <-time.After(pause):
		case <-v.sv.sess.ctx.Done():
		}
	}
	return nil
}

// subscriptionLocked resolves the layer subscription for one outgoing
// frame and advances the viewer's latch. An explicit override (Layers /
// SetLayers / ControlLayers) wins over the adaptive controller; with
// neither, the frame ships whole. Shrinking the subscription applies
// immediately — dropping enhancement layers is always safe — but growing
// it waits for a keyframe: the decoder's reference contract only lets the
// subscription widen where a full I-frame re-anchors the GOP, so a viewer
// never receives a full P-frame against a partial I reference. Returns the
// Sub to slice at (0 = ship all layers). Caller holds v.mu.
func (v *Viewer) subscriptionLocked(f *sharedFrame) uint8 {
	l := f.layout
	if l == nil || !l.Layered() {
		return 0
	}
	effL := l.Layers
	want := effL
	switch {
	case v.layersWant != 0:
		want = int(v.layersWant)
	case v.lctrl != nil:
		want = effL - v.lctrl.Drop()
	}
	if want > effL {
		want = effL
	}
	if want < 1 {
		want = 1
	}
	cur := effL
	if v.curSub != 0 && int(v.curSub) < effL {
		cur = int(v.curSub)
	}
	switch {
	case want < cur:
		v.layerDown++
	case want > cur && f.ftype == codec.IFrame:
		v.layerUp++
	default:
		want = cur
	}
	if want >= effL {
		v.curSub = 0
		return 0
	}
	v.curSub = uint8(want)
	return uint8(want)
}

// recordSent appends one frame's sent-record, evicting the oldest records
// once the covered packet span exceeds the viewer's retransmit budget.
func (v *Viewer) recordSent(qf queuedFrame, firstSeq uint32, n int, tiled bool, omit, coarse uint64, sub uint8) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.recDead {
		return
	}
	budget := v.retxCap()
	for v.recPkts+n > budget && len(v.records) > 0 {
		v.recPkts -= int(v.records[0].n)
		v.records = v.records[1:]
	}
	if n > budget {
		return // one frame wider than the whole budget: not answerable
	}
	v.records = append(v.records, sentRec{
		firstSeq: firstSeq,
		n:        uint16(n),
		frameSeq: qf.f.seq,
		frameIdx: qf.idx,
		ftype:    qf.f.ftype,
		cached:   qf.f.cached,
		tiled:    tiled,
		omit:     omit,
		coarse:   coarse,
		layers:   sub,
	})
	v.recPkts += n
}

// findRecLocked locates the sent-record covering seq. Records are ordered
// by firstSeq in the viewer's modular sequence space, and the span they
// cover is bounded by the retransmit budget (far below 2^31), so binary
// searching on the offset from the oldest record stays correct across
// uint32 wraparound; sequences outside the window wrap to huge offsets
// and miss cleanly. Caller holds v.mu.
func (v *Viewer) findRecLocked(seq uint32) (sentRec, bool) {
	if len(v.records) == 0 {
		return sentRec{}, false
	}
	base := v.records[0].firstSeq
	want := seq - base
	lo, hi := 0, len(v.records)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.records[mid].firstSeq-base <= want {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	rec := v.records[lo-1]
	if seq-rec.firstSeq >= uint32(rec.n) {
		return sentRec{}, false
	}
	return rec, true
}

// rebuildPacket reconstructs one NACKed packet from the shard retransmit
// cache: the sent-record maps the viewer sequence number back to a ring
// frame and fragment, and the shared payload rebuilds the exact original
// packet (plus FlagRetransmit). Returns nil when the record or the cached
// frame has been evicted.
func (v *Viewer) rebuildPacket(seq uint32) []byte {
	v.mu.Lock()
	rec, ok := v.findRecLocked(seq)
	v.mu.Unlock()
	sh := v.shard
	if !ok || sh == nil {
		v.noteRetxMiss(sh)
		return nil
	}
	f := sh.cacheGet(rec.frameSeq)
	if f == nil {
		v.noteRetxMiss(sh)
		return nil
	}
	mtu := v.mtu()
	frag := seq - rec.firstSeq
	flags := FlagRetransmit
	if rec.cached {
		flags |= FlagCached
	}
	var payload []byte
	tile, layer := TileNone, LayerNone
	if rec.tiled || rec.layers != 0 {
		// A culled and/or layer-truncated send: rebuild the exact view plan
		// from the recorded masks and subscription — deterministic whatever
		// the camera or the layer latch has done since — and gather the
		// fragment from the cached frame's immutable payload.
		if f.layout == nil {
			f.p.release()
			v.noteRetxMiss(sh)
			return nil
		}
		plan := buildViewPlan(f.layout, f.p.wire, rec.omit, rec.coarse, rec.layers)
		if rec.tiled {
			flags |= FlagTiled
		}
		if rec.layers != 0 {
			flags |= FlagLayered
		}
		payload, tile, layer = plan.gather(nil, int(frag), mtu)
	} else {
		lo := int(frag) * mtu
		hi := min(lo+mtu, len(f.p.wire))
		payload = f.p.wire[lo:hi]
	}
	pkt := MarshalPacket(PacketHeader{
		Flags:      flags,
		StreamID:   v.id,
		FrameIndex: rec.frameIdx,
		FrameType:  rec.ftype,
		Frag:       uint16(frag),
		FragCount:  rec.n,
		Seq:        seq,
		Tile:       tile,
		Layer:      layer,
	}, payload)
	f.p.release()
	v.mu.Lock()
	v.retransmits++
	v.mu.Unlock()
	sh.stats.RetxHit()
	return pkt
}

func (v *Viewer) noteRetxMiss(sh *shard) {
	v.mu.Lock()
	v.retxMisses++
	v.mu.Unlock()
	if sh != nil {
		sh.stats.RetxMiss()
	}
}

// HandleControl processes one receiver→sender control message addressed to
// this viewer. NACKs are rebuilt from the owning shard's retransmit cache
// (duplicate sequence numbers within one message coalesce to a single
// retransmit); a refresh request is coalesced by the shard, then the
// server, into at most one GOP restart; a feedback report updates this
// viewer's observed loss (duplicates and reorders are dropped against the
// viewer's own report numbering), folds it into the shard's loss table,
// and triggers the server's worst-percentile reduction. Safe to call
// concurrently with a live stream, including re-entrantly from within a
// PacketOut delivery chain.
func (v *Viewer) HandleControl(c Control) error {
	switch c.Kind {
	case ControlViewport:
		// A camera with FOVDegrees <= 0 clears the viewport (see
		// SetViewport); anything else installs it for subsequent sends.
		v.SetViewport(c.Camera)
	case ControlLayers:
		// 0 clears the explicit subscription (see SetLayers); anything else
		// installs it for subsequent layered sends.
		v.SetLayers(c.Layers)
	case ControlRefresh:
		v.mu.Lock()
		v.refreshes++
		v.mu.Unlock()
		if v.shard != nil {
			v.shard.requestRefresh()
		}
	case ControlFeedback:
		fb := c.Feedback
		v.mu.Lock()
		if fb.Report == 0 || fb.Report <= v.lastFbReport {
			v.fbStale++
			v.mu.Unlock()
			return nil
		}
		v.lastFbReport = fb.Report
		v.fbReports++
		v.lastLoss = fb.LossRate()
		loss := fb.CongestionRate() // steering signal; lastLoss stays wire loss
		if v.lctrl != nil {
			// The per-viewer layer controller consumes the same congestion
			// signal, but acts only on THIS viewer's subscription — the
			// shared encoder never hears about it.
			v.lctrl.Observe(loss)
		}
		v.mu.Unlock()
		// Aggregate outside v.mu: the fold takes shard.mu, the reduction
		// every shard's mu in turn (the relay lock order).
		if v.shard != nil {
			v.shard.noteLoss(v.id, loss)
		}
		v.sv.reduceFeedback(fb)
	case ControlNACK:
		v.mu.Lock()
		v.nacksRecv++
		v.mu.Unlock()
		var seen map[uint32]struct{}
		if len(c.Seqs) > 1 {
			seen = make(map[uint32]struct{}, len(c.Seqs))
		}
		for _, seq := range c.Seqs {
			if seen != nil {
				if _, dup := seen[seq]; dup {
					continue
				}
				seen[seq] = struct{}{}
			}
			pkt := v.rebuildPacket(seq)
			if pkt == nil || v.cfg.PacketOut == nil {
				continue
			}
			if err := v.cfg.PacketOut(v.sv.sess.ctx, pkt); err != nil {
				return err
			}
		}
	}
	return nil
}

// shutdown stops the viewer: no further enqueues, the sender either drains
// the queue (clean close) or abandons it (detach/cancel), queued payload
// references are released, and the sent-records are freed. Blocks until
// the sender goroutine exits; counters remain readable through Metrics
// afterwards. Idempotent.
func (v *Viewer) shutdown(discard bool) {
	v.mu.Lock()
	v.closed = true
	if discard {
		v.discard = true
	}
	v.cond.Broadcast()
	v.mu.Unlock()
	<-v.done
	v.mu.Lock()
	for _, qf := range v.queue {
		v.gauge.Dequeue()
		qf.f.p.release()
	}
	v.queue = nil
	v.records = nil
	v.recPkts = 0
	v.recDead = true
	v.mu.Unlock()
}

// abort is Cancel's teardown: abandon the queue immediately.
func (v *Viewer) abort() { v.shutdown(true) }
