// Package core orchestrates whole point-cloud VIDEOS on top of the
// per-frame codecs in internal/codec: it defines the .pcv stream container
// (a self-describing header carrying the codec configuration, followed by
// the per-frame containers) and the reader/writer pair the CLI tools,
// examples, and the public pcc package build on.
package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/codec"
	"repro/internal/edgesim"
	"repro/internal/geom"
)

const streamMagic = "PCV1"

// ErrBadStream reports a malformed .pcv stream.
var ErrBadStream = errors.New("core: malformed video stream")

// WriteStreamHeader writes the .pcv magic plus the codec configuration —
// everything a VideoReader needs before the first frame container. It is
// used by VideoWriter and by transports (pcc/stream) that serialize frames
// themselves.
func WriteStreamHeader(w io.Writer, o codec.Options) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(streamMagic); err != nil {
		return err
	}
	if err := writeOptions(bw, o); err != nil {
		return err
	}
	return bw.Flush()
}

// writeOptions serializes the codec configuration a decoder needs.
func writeOptions(w *bufio.Writer, o codec.Options) error {
	var buf []byte
	buf = append(buf, byte(o.Design))
	buf = binary.AppendUvarint(buf, uint64(o.GOP))
	buf = binary.AppendUvarint(buf, uint64(o.IntraAttr.Segments))
	buf = binary.AppendUvarint(buf, uint64(o.IntraAttr.QStep))
	buf = append(buf, byte(o.IntraAttr.Layers), boolByte(o.IntraAttr.Entropy))
	buf = binary.AppendUvarint(buf, uint64(o.Inter.Segments))
	buf = binary.AppendUvarint(buf, uint64(o.Inter.Candidates))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.Inter.Threshold))
	buf = binary.AppendUvarint(buf, uint64(o.Inter.QStep))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.RAHTQStep))
	buf = append(buf, boolByte(o.Lossless), boolByte(o.EntropyGeometry))
	if _, err := w.Write(binary.AppendUvarint(nil, uint64(len(buf)))); err != nil {
		return err
	}
	_, err := w.Write(buf)
	return err
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

type byteReaderCounter struct {
	r *bufio.Reader
}

func (b byteReaderCounter) ReadByte() (byte, error) { return b.r.ReadByte() }

// readOptions inverts writeOptions.
func readOptions(r *bufio.Reader) (codec.Options, error) {
	n, err := binary.ReadUvarint(byteReaderCounter{r})
	if err != nil || n > 4096 {
		return codec.Options{}, ErrBadStream
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return codec.Options{}, ErrBadStream
	}
	var o codec.Options
	pos := 0
	next := func() (uint64, error) {
		v, k := binary.Uvarint(buf[pos:])
		if k <= 0 {
			return 0, ErrBadStream
		}
		pos += k
		return v, nil
	}
	nextByte := func() (byte, error) {
		if pos >= len(buf) {
			return 0, ErrBadStream
		}
		b := buf[pos]
		pos++
		return b, nil
	}
	nextU64 := func() (uint64, error) {
		if pos+8 > len(buf) {
			return 0, ErrBadStream
		}
		v := binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
		return v, nil
	}

	d, err := nextByte()
	if err != nil {
		return o, err
	}
	o.Design = codec.Design(d)
	if o.Design < codec.TMC13 || o.Design > codec.IntraInterV2 {
		return o, fmt.Errorf("core: unknown design %d", d)
	}
	vals := make([]uint64, 0, 8)
	for i := 0; i < 3; i++ {
		v, err := next()
		if err != nil {
			return o, err
		}
		vals = append(vals, v)
	}
	o.GOP = int(vals[0])
	o.IntraAttr.Segments = int(vals[1])
	o.IntraAttr.QStep = int(vals[2])
	lb, err := nextByte()
	if err != nil {
		return o, err
	}
	o.IntraAttr.Layers = int(lb)
	eb, err := nextByte()
	if err != nil {
		return o, err
	}
	o.IntraAttr.Entropy = eb == 1
	segs, err := next()
	if err != nil {
		return o, err
	}
	cands, err := next()
	if err != nil {
		return o, err
	}
	o.Inter.Segments = int(segs)
	o.Inter.Candidates = int(cands)
	th, err := nextU64()
	if err != nil {
		return o, err
	}
	o.Inter.Threshold = math.Float64frombits(th)
	iq, err := next()
	if err != nil {
		return o, err
	}
	o.Inter.QStep = int(iq)
	rq, err := nextU64()
	if err != nil {
		return o, err
	}
	o.RAHTQStep = math.Float64frombits(rq)
	losslessB, err := nextByte()
	if err != nil {
		return o, err
	}
	o.Lossless = losslessB == 1
	egB, err := nextByte()
	if err != nil {
		return o, err
	}
	o.EntropyGeometry = egB == 1
	return o, nil
}

// VideoWriter encodes frames and writes a .pcv stream.
type VideoWriter struct {
	w        *bufio.Writer
	enc      *codec.Encoder
	wroteHdr bool
	frames   int
	bytes    int64
	stats    []codec.FrameStats
}

// NewVideoWriter creates a writer encoding with the given options on dev.
func NewVideoWriter(w io.Writer, dev *edgesim.Device, opts codec.Options) *VideoWriter {
	return &VideoWriter{w: bufio.NewWriter(w), enc: codec.NewEncoder(dev, opts)}
}

// WriteFrame encodes and appends one frame.
func (vw *VideoWriter) WriteFrame(vc *geom.VoxelCloud) (codec.FrameStats, error) {
	if !vw.wroteHdr {
		if _, err := vw.w.WriteString(streamMagic); err != nil {
			return codec.FrameStats{}, err
		}
		if err := writeOptions(vw.w, vw.enc.Options()); err != nil {
			return codec.FrameStats{}, err
		}
		vw.wroteHdr = true
	}
	ef, st, err := vw.enc.EncodeFrame(vc)
	if err != nil {
		return st, err
	}
	n, err := ef.WriteTo(vw.w)
	if err != nil {
		return st, err
	}
	vw.frames++
	vw.bytes += n
	vw.stats = append(vw.stats, st)
	return st, nil
}

// Close flushes the stream.
func (vw *VideoWriter) Close() error { return vw.w.Flush() }

// Frames returns the number of frames written.
func (vw *VideoWriter) Frames() int { return vw.frames }

// Bytes returns the compressed bytes written (excluding the stream header).
func (vw *VideoWriter) Bytes() int64 { return vw.bytes }

// Stats returns per-frame encode statistics.
func (vw *VideoWriter) Stats() []codec.FrameStats { return vw.stats }

// VideoReader decodes a .pcv stream.
type VideoReader struct {
	r    *bufio.Reader
	dec  *codec.Decoder
	opts codec.Options
}

// NewVideoReader parses the stream header and prepares a decoder on dev.
func NewVideoReader(r io.Reader, dev *edgesim.Device) (*VideoReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, ErrBadStream
	}
	if string(magic) != streamMagic {
		return nil, ErrBadStream
	}
	opts, err := readOptions(br)
	if err != nil {
		return nil, err
	}
	return &VideoReader{r: br, dec: codec.NewDecoder(dev, opts), opts: opts}, nil
}

// Options returns the stream's codec configuration.
func (vr *VideoReader) Options() codec.Options { return vr.opts }

// ReadFrame decodes the next frame; io.EOF at end of stream.
func (vr *VideoReader) ReadFrame() (*geom.VoxelCloud, *codec.EncodedFrame, error) {
	ef, err := codec.ReadFrameFrom(vr.r)
	if err != nil {
		return nil, nil, err
	}
	vc, err := vr.dec.DecodeFrame(ef)
	if err != nil {
		return nil, nil, err
	}
	return vc, ef, nil
}
