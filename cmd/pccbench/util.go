package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/morton"
	"repro/internal/trace"
)

// csvDir, when set via -csv, receives one CSV file per emitted table.
var csvDir string

// emit prints a table and optionally writes it as CSV.
func emit(tb *trace.Table) {
	fmt.Print(tb)
	if csvDir == "" {
		return
	}
	slug := slugify(tb.Title)
	path := filepath.Join(csvDir, slug+".csv")
	if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pccbench: csv %s: %v\n", path, err)
	}
}

func slugify(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && !strings.HasSuffix(b.String(), "-"):
			b.WriteRune('-')
		}
	}
	out := strings.Trim(b.String(), "-")
	if len(out) > 60 {
		out = out[:60]
	}
	return out
}

// frameCache avoids regenerating frames across experiments in `all` runs.
var frameCache = map[string][]*geom.VoxelCloud{}

// loadFrames generates (or returns cached) frames of one video.
func loadFrames(spec dataset.VideoSpec, scale float64, n int) ([]*geom.VoxelCloud, error) {
	key := fmt.Sprintf("%s/%g/%d", spec.Name, scale, n)
	if fs, ok := frameCache[key]; ok {
		return fs, nil
	}
	g := dataset.NewGenerator(spec, scale)
	if n > spec.Frames {
		n = spec.Frames
	}
	out := make([]*geom.VoxelCloud, n)
	for i := range out {
		f, err := g.Frame(i)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	frameCache[key] = out
	return out, nil
}

// scaledOptions shrinks the paper's segment counts proportionally to the
// dataset scale so blocks keep their per-block point population.
func scaledOptions(d codec.Design, scale float64) codec.Options {
	o := codec.OptionsFor(d)
	o.IntraAttr.Segments = max(8, int(float64(o.IntraAttr.Segments)*scale))
	o.Inter.Segments = max(8, int(float64(o.Inter.Segments)*scale))
	return o
}

// sortedVoxels Morton-sorts and dedups a frame (the locality studies need
// the sorted view).
func sortedVoxels(vc *geom.VoxelCloud) []geom.Voxel {
	k := morton.EncodeCloud(vc)
	morton.Sort(k)
	k = morton.Dedup(k)
	return morton.Voxels(k)
}

// videoRun is the measured outcome of encoding (and decoding) a few frames
// of one video under one design.
type videoRun struct {
	Video   string
	Design  codec.Design
	Frames  int
	RawMB   float64
	SizeMB  float64
	GeoMS   float64 // mean per-frame simulated geometry latency
	AttrMS  float64
	TotalMS float64
	EnergyJ float64 // mean per-frame energy
	DecMS   float64 // mean per-frame decode latency
	// AttrPSNR is the mean attribute PSNR over lossy frames (dB);
	// GeoPSNR is the worst-frame geometry PSNR (dB, capped at 120
	// for lossless).
	AttrPSNR float64
	GeoPSNR  float64
	Reuse    float64 // mean direct-reuse fraction over P-frames
}

// runVideo encodes cfg.Frames frames of one video under one design and
// gathers all metrics.
func runVideo(spec dataset.VideoSpec, scale float64, nFrames int, design codec.Design) (videoRun, error) {
	frames, err := loadFrames(spec, scale, nFrames)
	if err != nil {
		return videoRun{}, err
	}
	opts := scaledOptions(design, scale)
	encDev := edgesim.NewXavier(edgesim.Mode15W)
	decDev := edgesim.NewXavier(edgesim.Mode15W)
	enc := codec.NewEncoder(encDev, opts)
	dec := codec.NewDecoder(decDev, opts)

	r := videoRun{Video: spec.Name, Design: design, Frames: len(frames), GeoPSNR: math.Inf(1)}
	var attrSum float64
	var attrN, pFrames int
	for _, f := range frames {
		ef, st, err := enc.EncodeFrame(f)
		if err != nil {
			return r, err
		}
		out, err := dec.DecodeFrame(ef)
		if err != nil {
			return r, err
		}
		r.RawMB += float64(f.RawBytes()) / 1e6
		r.SizeMB += float64(st.SizeBytes) / 1e6
		r.GeoMS += st.GeometryTime.Seconds() * 1000
		r.AttrMS += st.AttrTime.Seconds() * 1000
		r.TotalMS += st.TotalTime.Seconds() * 1000
		r.EnergyJ += st.EnergyJ
		if st.Type == codec.PFrame {
			pFrames++
			r.Reuse += st.Inter.ReuseFraction()
		}

		gp, ap := frameQuality(f, out)
		if gp < r.GeoPSNR {
			r.GeoPSNR = gp
		}
		if !math.IsInf(ap, 1) {
			attrSum += ap
			attrN++
		}
	}
	n := float64(len(frames))
	r.GeoMS /= n
	r.AttrMS /= n
	r.TotalMS /= n
	r.EnergyJ /= n
	r.DecMS = decDev.SimTime().Seconds() * 1000 / n
	if pFrames > 0 {
		r.Reuse /= float64(pFrames)
	}
	if attrN > 0 {
		r.AttrPSNR = attrSum / float64(attrN)
	} else {
		r.AttrPSNR = math.Inf(1)
	}
	if math.IsInf(r.GeoPSNR, 1) || r.GeoPSNR > 120 {
		r.GeoPSNR = 120
	}
	if math.IsInf(r.AttrPSNR, 1) || r.AttrPSNR > 120 {
		r.AttrPSNR = 120
	}
	return r, nil
}

// frameQuality computes geometry PSNR and nearest-neighbour attribute PSNR
// of a decoded frame against its original.
func frameQuality(orig, decoded *geom.VoxelCloud) (geoPSNR, attrPSNR float64) {
	gp, err := metrics.GeometryPSNR(orig, decoded)
	if err != nil {
		return 0, 0
	}
	idx := geom.NewGridIndex(decoded, 2)
	var mse float64
	for _, v := range orig.Voxels {
		j, _ := idx.Nearest(v)
		mse += float64(v.C.Dist2(decoded.Voxels[j].C)) / 3
	}
	mse /= float64(orig.Len())
	return gp, metrics.PSNRFromMSE(mse, 255)
}
