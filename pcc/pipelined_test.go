package pcc_test

import (
	"bytes"
	"testing"

	"repro/pcc"
)

// The pipelined writer must emit the exact bytes of the sequential
// StreamWriter, and the stream must round-trip through StreamReader.
func TestPipelinedWriterMatchesStreamWriter(t *testing.T) {
	video := pcc.NewVideo("loot", 0.02)
	const n = 4
	frames := make([]*pcc.PointCloud, n)
	for i := range frames {
		f, err := video.Frame(i)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}
	opts := pcc.DefaultOptions(pcc.IntraInterV1)
	opts.IntraAttr.Segments = 64
	opts.Inter.Segments = 96

	var seq bytes.Buffer
	w := pcc.NewStreamWriter(&seq, opts)
	for _, f := range frames {
		if _, err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var piped bytes.Buffer
	pw := pcc.NewPipelinedWriter(&piped, opts)
	for _, f := range frames {
		if err := pw.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	results, err := pw.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	if !bytes.Equal(seq.Bytes(), piped.Bytes()) {
		t.Fatalf("pipelined stream (%d B) != sequential stream (%d B)", piped.Len(), seq.Len())
	}

	r, err := pcc.NewStreamReader(bytes.NewReader(piped.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		frame, _, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if frame.Len() == 0 {
			t.Fatalf("frame %d decoded empty", i)
		}
	}
}
