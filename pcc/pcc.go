// Package pcc is the public API of this repository: a point-cloud
// compression library reproducing "Pushing Point Cloud Compression to the
// Edge" (MICRO 2022).
//
// It offers five end-to-end codecs — the paper's two proposals
// (Morton-parallel intra-frame compression, and intra+inter with
// block-match attribute reuse at two operating points) and the two
// state-of-the-art baselines they are evaluated against (a TMC13-like
// octree+RAHT intra codec and a CWIPC-like macro-block inter codec) — plus
// the synthetic dynamic point-cloud dataset, the edge-device model that
// reports simulated Jetson-class latency and energy alongside real
// execution, and the quality metrics used in the paper's evaluation.
//
// Quick start:
//
//	enc := pcc.NewEncoder(pcc.IntraOnly)
//	frame, _ := pcc.NewVideo("loot", 0.05).Frame(0)
//	bits, stats, _ := enc.Encode(frame)
//	dec := pcc.NewDecoder(enc.Options())
//	decoded, _ := dec.Decode(bits)
package pcc

import (
	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/metrics"
)

// Core data types.
type (
	// PointCloud is one voxelized point-cloud frame.
	PointCloud = geom.VoxelCloud
	// Point is a single voxel: lattice coordinates plus colour.
	Point = geom.Voxel
	// Color is an 8-bit-per-channel RGB attribute.
	Color = geom.Color
	// RawCloud is an unquantized (float-coordinate) frame.
	RawCloud = geom.Cloud
	// RawPoint is a float-coordinate captured point.
	RawPoint = geom.Point
)

// Voxelize quantizes a raw float-coordinate cloud into a 2^depth lattice
// (the paper's datasets use depth 10, i.e. 1024^3).
func Voxelize(c *RawCloud, depth uint) (*PointCloud, error) { return geom.Voxelize(c, depth) }

// Design selects a codec design.
type Design = codec.Design

// The five designs of the paper's evaluation (Sec. VI-B).
const (
	// TMC13 is the intra-frame baseline: sequential octree + RAHT.
	TMC13 = codec.TMC13
	// CWIPC is the inter-frame baseline: octree + macro-block matching.
	CWIPC = codec.CWIPC
	// IntraOnly is the paper's Morton-parallel intra proposal.
	IntraOnly = codec.IntraOnly
	// IntraInterV1 adds inter-frame reuse, quality-oriented threshold.
	IntraInterV1 = codec.IntraInterV1
	// IntraInterV2 adds inter-frame reuse, compression-oriented threshold.
	IntraInterV2 = codec.IntraInterV2
)

// Designs returns all five designs in the paper's order.
func Designs() []Design { return codec.Designs() }

// Options configures a codec; zero values are filled with the paper's
// configuration for the design.
type Options = codec.Options

// DefaultOptions returns the paper's configuration for a design.
func DefaultOptions(d Design) Options { return codec.OptionsFor(d) }

// RateControl closes the loop on the inter-frame direct-reuse threshold to
// hit a target compressed rate (bits/point) — the online form of the
// paper's Sec. VI-E tuning knob. Set it on Options.Rate.
type RateControl = codec.RateControl

// AdaptiveRate enables the closed-loop congestion controller: receiver
// feedback (stream.ReceiverConfig.FeedbackEvery) and local pipeline
// pressure steer the GOP length, attribute quantization, and reuse
// threshold. Set it on Options.Adapt; the zero Enabled field leaves the
// codec byte-for-byte identical to a non-adaptive one.
type AdaptiveRate = codec.AdaptiveRate

// EncodedFrame is one compressed frame.
type EncodedFrame = codec.EncodedFrame

// FrameStats reports per-frame latency/energy/size metrics from the edge
// device model.
type FrameStats = codec.FrameStats

// PowerMode selects the modelled edge board's power budget.
type PowerMode = edgesim.PowerMode

// Power modes of the Jetson AGX Xavier model (Sec. VI-C).
const (
	Mode15W = edgesim.Mode15W
	Mode10W = edgesim.Mode10W
)

// Device is the edge-SoC execution model; it accumulates simulated latency,
// energy, per-stage and per-kernel ledgers while the codecs really run.
type Device = edgesim.Device

// NewDevice creates a Jetson-AGX-Xavier-class device model.
func NewDevice(mode PowerMode) *Device { return edgesim.NewXavier(mode) }

// Encoder compresses a stream of frames under one design.
type Encoder struct {
	enc *codec.Encoder
	dev *Device
}

// NewEncoder creates an encoder with the paper's default configuration for
// the design, on a fresh 15 W device model.
func NewEncoder(d Design) *Encoder { return NewEncoderOptions(DefaultOptions(d)) }

// NewEncoderOptions creates an encoder with explicit options.
func NewEncoderOptions(o Options) *Encoder {
	dev := NewDevice(Mode15W)
	return &Encoder{enc: codec.NewEncoder(dev, o), dev: dev}
}

// NewEncoderOn creates an encoder running on a caller-supplied device
// (e.g. a 10 W model, or a shared device accumulating a whole video).
func NewEncoderOn(dev *Device, o Options) *Encoder {
	return &Encoder{enc: codec.NewEncoder(dev, o), dev: dev}
}

// Encode compresses the next frame of the stream.
func (e *Encoder) Encode(vc *PointCloud) (*EncodedFrame, FrameStats, error) {
	return e.enc.EncodeFrame(vc)
}

// Options returns the encoder's normalized configuration.
func (e *Encoder) Options() Options { return e.enc.Options() }

// Device returns the underlying device model (latency/energy ledgers).
func (e *Encoder) Device() *Device { return e.dev }

// Reset restarts the GOP (the next frame will be an I-frame).
func (e *Encoder) Reset() { e.enc.Reset() }

// Threshold returns the current inter-frame direct-reuse threshold (it
// moves over time when rate control is enabled).
func (e *Encoder) Threshold() float64 { return e.enc.Threshold() }

// Decoder reconstructs frames encoded with matching Options.
type Decoder struct {
	dec *codec.Decoder
	dev *Device
}

// NewDecoder creates a decoder on a fresh 15 W device model.
func NewDecoder(o Options) *Decoder {
	dev := NewDevice(Mode15W)
	return &Decoder{dec: codec.NewDecoder(dev, o), dev: dev}
}

// NewDecoderOn creates a decoder on a caller-supplied device.
func NewDecoderOn(dev *Device, o Options) *Decoder {
	return &Decoder{dec: codec.NewDecoder(dev, o), dev: dev}
}

// Decode reconstructs a frame. Frames must be decoded in stream order for
// inter designs.
func (d *Decoder) Decode(f *EncodedFrame) (*PointCloud, error) { return d.dec.DecodeFrame(f) }

// Device returns the underlying device model.
func (d *Decoder) Device() *Device { return d.dev }

// Reset clears inter-frame reference state.
func (d *Decoder) Reset() { d.dec.Reset() }

// Video is a synthetic dynamic point-cloud video (the stand-in for the
// 8iVFB/MVUB captures in the paper's Table I).
type Video struct {
	gen *dataset.Generator
}

// VideoNames lists the six Table I presets.
func VideoNames() []string {
	specs := dataset.TableI()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// NewVideo opens a Table I preset at the given scale (1.0 reproduces the
// paper's per-frame point count; smaller scales generate proportionally
// smaller frames for quick experiments). Unknown names panic — use
// VideoNames to enumerate; use NewVideoChecked to handle errors.
func NewVideo(name string, scale float64) *Video {
	v, err := NewVideoChecked(name, scale)
	if err != nil {
		panic(err)
	}
	return v
}

// NewVideoChecked is NewVideo with an error return.
func NewVideoChecked(name string, scale float64) (*Video, error) {
	spec, err := dataset.SpecByName(name)
	if err != nil {
		return nil, err
	}
	return &Video{gen: dataset.NewGenerator(spec, scale)}, nil
}

// Name returns the video's name.
func (v *Video) Name() string { return v.gen.Spec.Name }

// Frames returns the video length.
func (v *Video) Frames() int { return v.gen.Spec.Frames }

// TargetPoints returns the (scaled) per-frame voxel target.
func (v *Video) TargetPoints() int { return v.gen.TargetPoints() }

// Frame generates frame t.
func (v *Video) Frame(t int) (*PointCloud, error) { return v.gen.Frame(t) }

// Quality metrics (as computed by MPEG's pc_error).

// GeometryPSNR is the symmetric point-to-point geometry PSNR in dB
// (+Inf when lossless).
func GeometryPSNR(orig, decoded *PointCloud) (float64, error) {
	return metrics.GeometryPSNR(orig, decoded)
}

// AttributePSNR compares colours of order-aligned clouds, returning luma
// and RGB PSNR in dB.
func AttributePSNR(orig, decoded []Color) (lumaDB, rgbDB float64, err error) {
	return metrics.AttributePSNR(orig, decoded)
}

// CompressionRatio is rawBytes/compressedBytes.
func CompressionRatio(rawBytes, compressedBytes int64) float64 {
	return metrics.CompressionRatio(rawBytes, compressedBytes)
}
