package morton

import (
	"math/rand"
	"testing"

	"repro/internal/edgesim"
	"repro/internal/geom"
)

// Differential property tests pinning the slab Morton paths against the
// scalar Encode/EncodeLUT/Decode ancestors — batching a call site must be
// byte-inert for every stream format.

func randCoords(rng *rand.Rand, n int) (xs, ys, zs []uint32) {
	xs = make([]uint32, n)
	ys = make([]uint32, n)
	zs = make([]uint32, n)
	for i := 0; i < n; i++ {
		// Full 21-bit coordinate range, with boundary values mixed in.
		switch rng.Intn(8) {
		case 0:
			xs[i], ys[i], zs[i] = 0, 0, 0
		case 1:
			xs[i], ys[i], zs[i] = 1<<21-1, 1<<21-1, 1<<21-1
		default:
			xs[i] = rng.Uint32() & (1<<21 - 1)
			ys[i] = rng.Uint32() & (1<<21 - 1)
			zs[i] = rng.Uint32() & (1<<21 - 1)
		}
	}
	return
}

func TestEncodeBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pool := edgesim.DefaultPool()
	for _, n := range []int{0, 1, 2, 63, 1000, 10007} {
		xs, ys, zs := randCoords(rng, n)
		serial := make([]Code, n)
		pooled := make([]Code, n)
		EncodeBatch(nil, serial, xs, ys, zs)
		EncodeBatch(pool, pooled, xs, ys, zs)
		for i := 0; i < n; i++ {
			want := Encode(xs[i], ys[i], zs[i])
			if lut := EncodeLUT(xs[i], ys[i], zs[i]); lut != want {
				t.Fatalf("n=%d i=%d: EncodeLUT %x != Encode %x", n, i, lut, want)
			}
			if serial[i] != want {
				t.Fatalf("n=%d i=%d: serial EncodeBatch %x != Encode %x", n, i, serial[i], want)
			}
			if pooled[i] != want {
				t.Fatalf("n=%d i=%d: pooled EncodeBatch %x != Encode %x", n, i, pooled[i], want)
			}
		}
	}
}

func TestDecodeBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pool := edgesim.DefaultPool()
	for _, n := range []int{0, 1, 2, 63, 1000, 10007} {
		xs, ys, zs := randCoords(rng, n)
		codes := make([]Code, n)
		EncodeBatch(nil, codes, xs, ys, zs)

		sx, sy, sz := make([]uint32, n), make([]uint32, n), make([]uint32, n)
		px, py, pz := make([]uint32, n), make([]uint32, n), make([]uint32, n)
		DecodeBatch(nil, codes, sx, sy, sz)
		DecodeBatch(pool, codes, px, py, pz)
		for i := 0; i < n; i++ {
			wx, wy, wz := codes[i].Decode()
			if sx[i] != wx || sy[i] != wy || sz[i] != wz {
				t.Fatalf("n=%d i=%d: serial DecodeBatch != Code.Decode", n, i)
			}
			if px[i] != wx || py[i] != wy || pz[i] != wz {
				t.Fatalf("n=%d i=%d: pooled DecodeBatch != Code.Decode", n, i)
			}
			if wx != xs[i] || wy != ys[i] || wz != zs[i] {
				t.Fatalf("n=%d i=%d: round trip lost coordinates", n, i)
			}
		}
	}
}

func TestVoxelSlabsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	xs, ys, zs := randCoords(rng, 5000)
	vs := make([]geom.Voxel, len(xs))
	for i := range vs {
		vs[i] = geom.Voxel{X: xs[i], Y: ys[i], Z: zs[i],
			C: geom.Color{R: uint8(i), G: uint8(i >> 8), B: uint8(i >> 16)}}
	}

	keyed := make([]Keyed, len(vs))
	EncodeKeyed(keyed, vs)
	codes := make([]Code, len(vs))
	EncodeVoxels(codes, vs)
	for i, v := range vs {
		want := Encode(v.X, v.Y, v.Z)
		if keyed[i].Code != want || keyed[i].Voxel != v {
			t.Fatalf("i=%d: EncodeKeyed mismatch", i)
		}
		if codes[i] != want {
			t.Fatalf("i=%d: EncodeVoxels %x != Encode %x", i, codes[i], want)
		}
	}

	decoded := make([]geom.Voxel, len(codes))
	DecodeVoxels(decoded, codes)
	for i, c := range codes {
		x, y, z := c.Decode()
		if decoded[i] != (geom.Voxel{X: x, Y: y, Z: z}) {
			t.Fatalf("i=%d: DecodeVoxels != Code.Decode (colors must stay zero)", i)
		}
	}

	vc := &geom.VoxelCloud{Depth: 21, Voxels: vs}
	fresh := EncodeCloudInto(nil, vc)
	reused := EncodeCloudInto(make([]Keyed, 0, len(vs)+100), vc)
	if len(fresh) != len(vs) || len(reused) != len(vs) {
		t.Fatal("EncodeCloudInto length mismatch")
	}
	for i := range fresh {
		if fresh[i] != keyed[i] || reused[i] != keyed[i] {
			t.Fatalf("i=%d: EncodeCloudInto != EncodeKeyed", i)
		}
	}
}

func TestEncodeCloudIntoEmpty(t *testing.T) {
	vc := &geom.VoxelCloud{Depth: 10}
	if got := EncodeCloudInto(nil, vc); len(got) != 0 {
		t.Fatalf("empty cloud keyed to %d entries", len(got))
	}
}

func BenchmarkMortonScalar1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs, ys, zs := randCoords(rng, 1<<20)
	dst := make([]Code, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dst {
			dst[j] = Encode(xs[j], ys[j], zs[j])
		}
	}
}

func BenchmarkMortonBatchSerial1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs, ys, zs := randCoords(rng, 1<<20)
	dst := make([]Code, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeBatch(nil, dst, xs, ys, zs)
	}
}

func BenchmarkMortonBatchPool1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs, ys, zs := randCoords(rng, 1<<20)
	dst := make([]Code, len(xs))
	pool := edgesim.DefaultPool()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeBatch(pool, dst, xs, ys, zs)
	}
}
