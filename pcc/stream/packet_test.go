package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/codec"
	"repro/internal/viewport"
)

func TestPacketRoundTrip(t *testing.T) {
	h := PacketHeader{
		Flags:      FlagRetransmit,
		StreamID:   7,
		FrameIndex: 42,
		FrameType:  codec.PFrame,
		Frag:       3,
		FragCount:  9,
		Seq:        1234,
	}
	payload := []byte("point cloud bits")
	raw := MarshalPacket(h, payload)
	if len(raw) != PacketHeaderSize+len(payload) {
		t.Fatalf("packet length %d, want %d", len(raw), PacketHeaderSize+len(payload))
	}
	pkt, err := ParsePacket(raw)
	if err != nil {
		t.Fatalf("ParsePacket: %v", err)
	}
	if pkt.Header != h {
		t.Errorf("header round trip: got %+v want %+v", pkt.Header, h)
	}
	if !bytes.Equal(pkt.Payload, payload) {
		t.Errorf("payload round trip: got %q", pkt.Payload)
	}
}

func TestParsePacketRejects(t *testing.T) {
	good := MarshalPacket(PacketHeader{StreamID: 1, FrameType: codec.IFrame, FragCount: 1}, []byte("x"))
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"short", good[:PacketHeaderSize-1], ErrBadPacket},
		{"empty", nil, ErrBadPacket},
		{"magic", mut(func(b []byte) { b[0] = 'X' }), ErrBadPacket},
		{"version", mut(func(b []byte) { b[2] = 99 }), ErrBadPacket},
		{"truncated payload", good[:len(good)-1], ErrBadPacket},
		{"trailing junk", append(append([]byte(nil), good...), 0), ErrBadPacket},
		{"payload bit flip", mut(func(b []byte) { b[PacketHeaderSize] ^= 0x40 }), ErrChecksum},
		{"crc bit flip", mut(func(b []byte) { b[23] ^= 1 }), ErrChecksum},
		{"zero frag count", mut(func(b []byte) { b[15], b[16] = 0, 0 }), ErrBadPacket},
		{"frag out of range", mut(func(b []byte) { b[13] = 5 }), ErrBadPacket},
		{"bad frame type", mut(func(b []byte) { b[12] = 7 }), ErrBadPacket},
	}
	for _, tc := range cases {
		if _, err := ParsePacket(tc.raw); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestPacketizeFrame(t *testing.T) {
	wire := make([]byte, 3500)
	for i := range wire {
		wire[i] = byte(i)
	}
	pkts := PacketizeFrame(9, 4, codec.IFrame, 100, wire, 1400)
	if len(pkts) != 3 {
		t.Fatalf("got %d packets, want 3", len(pkts))
	}
	var got []byte
	for i, raw := range pkts {
		p, err := ParsePacket(raw)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		h := p.Header
		if h.StreamID != 9 || h.FrameIndex != 4 || h.FrameType != codec.IFrame {
			t.Errorf("packet %d header: %+v", i, h)
		}
		if int(h.Frag) != i || h.FragCount != 3 || h.Seq != 100+uint32(i) {
			t.Errorf("packet %d frag/seq: %+v", i, h)
		}
		if h.Seq-uint32(h.Frag) != 100 {
			t.Errorf("packet %d: firstSeq derivation broken", i)
		}
		got = append(got, p.Payload...)
	}
	if !bytes.Equal(got, wire) {
		t.Error("reassembled payload differs from wire bytes")
	}

	// An empty frame still ships one (empty) packet.
	one := PacketizeFrame(9, 5, codec.PFrame, 200, nil, 1400)
	if len(one) != 1 {
		t.Fatalf("empty frame: got %d packets, want 1", len(one))
	}
	p, err := ParsePacket(one[0])
	if err != nil || len(p.Payload) != 0 || p.Header.FragCount != 1 {
		t.Fatalf("empty frame packet: %+v, %v", p, err)
	}
}

func TestControlRoundTrip(t *testing.T) {
	for _, c := range []Control{
		{Kind: ControlNACK, StreamID: 3, Seqs: []uint32{1, 5, 1 << 30}},
		{Kind: ControlNACK, StreamID: 3}, // empty NACK is legal framing
		{Kind: ControlRefresh, StreamID: 3, FrameIndex: 17},
	} {
		raw := MarshalControl(c)
		pkt, err := ParsePacket(raw)
		if err != nil {
			t.Fatalf("%v: ParsePacket: %v", c.Kind, err)
		}
		if pkt.Header.Flags&FlagControl == 0 {
			t.Fatalf("%v: FlagControl not set", c.Kind)
		}
		got, err := ParseControl(pkt)
		if err != nil {
			t.Fatalf("%v: ParseControl: %v", c.Kind, err)
		}
		if got.Kind != c.Kind || got.StreamID != c.StreamID || got.FrameIndex != c.FrameIndex {
			t.Errorf("control round trip: got %+v want %+v", got, c)
		}
		if len(got.Seqs) != len(c.Seqs) {
			t.Fatalf("seqs round trip: got %v want %v", got.Seqs, c.Seqs)
		}
		for i := range c.Seqs {
			if got.Seqs[i] != c.Seqs[i] {
				t.Errorf("seq %d: got %d want %d", i, got.Seqs[i], c.Seqs[i])
			}
		}
	}
}

func TestParseControlRejects(t *testing.T) {
	data := MarshalPacket(PacketHeader{StreamID: 1, FrameType: codec.IFrame, FragCount: 1}, nil)
	pkt, err := ParsePacket(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseControl(pkt); !errors.Is(err, ErrBadPacket) {
		t.Errorf("data packet as control: got %v", err)
	}

	// A NACK whose payload length is not a multiple of 4 is malformed.
	raw := MarshalPacket(PacketHeader{Flags: FlagControl, StreamID: 1, FrameType: codec.FrameType(ControlNACK), FragCount: 1}, []byte{1, 2, 3})
	pkt, err = ParsePacket(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseControl(pkt); !errors.Is(err, ErrBadPacket) {
		t.Errorf("ragged NACK payload: got %v", err)
	}

	raw = MarshalPacket(PacketHeader{Flags: FlagControl, StreamID: 1, FrameType: 99, FragCount: 1}, nil)
	pkt, err = ParsePacket(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseControl(pkt); !errors.Is(err, ErrBadPacket) {
		t.Errorf("unknown control kind: got %v", err)
	}
}

// FuzzParsePacket hammers the packet parser with arbitrary bytes: it must
// never panic, and structurally valid packets must re-marshal to identical
// bytes.
func FuzzParsePacket(f *testing.F) {
	f.Add([]byte{})
	f.Add(MarshalPacket(PacketHeader{StreamID: 1, FrameType: codec.IFrame, FragCount: 1}, []byte("seed")))
	f.Add(MarshalPacket(PacketHeader{Flags: FlagRetransmit, StreamID: 2, FrameIndex: 3, FrameType: codec.PFrame, Frag: 1, FragCount: 2, Seq: 9}, nil))
	f.Add(MarshalControl(Control{Kind: ControlNACK, StreamID: 1, Seqs: []uint32{4, 5}}))
	f.Add(MarshalControl(Control{Kind: ControlRefresh, StreamID: 1, FrameIndex: 6}))
	f.Add(MarshalPacket(PacketHeader{Flags: FlagTiled, StreamID: 7, FrameType: codec.IFrame, FragCount: 3, Frag: 1, Tile: 2}, []byte("tiled")))
	f.Add(MarshalControl(Control{Kind: ControlViewport, StreamID: 8, Camera: viewport.Camera{Pos: [3]float64{1, 2, 3}, FOVDegrees: 60}}))
	f.Add(MarshalPacket(PacketHeader{Flags: FlagLayered, StreamID: 9, FrameType: codec.PFrame, FragCount: 2, Frag: 0, Layer: 1}, []byte("layered")))
	f.Add(MarshalPacket(PacketHeader{Flags: FlagTiled | FlagLayered, StreamID: 9, FrameType: codec.IFrame, FragCount: 4, Frag: 2, Tile: 3, Layer: LayerNone}, []byte("both ids")))
	f.Add(MarshalControl(Control{Kind: ControlLayers, StreamID: 9, Layers: 2}))
	// Truncated inside the layer id: the extension bytes must be validated.
	trunc := MarshalPacket(PacketHeader{Flags: FlagLayered, StreamID: 9, FrameType: codec.IFrame, FragCount: 1}, nil)
	f.Add(trunc[:PacketHeaderSize])
	long := bytes.Repeat([]byte{0xA5}, 2048)
	f.Add(PacketizeFrame(1, 0, codec.IFrame, 0, long, 700)[1])

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := ParsePacket(data)
		if err != nil {
			return
		}
		back := MarshalPacket(pkt.Header, pkt.Payload)
		if !bytes.Equal(back, data) {
			t.Fatalf("re-marshal mismatch:\n in=%x\nout=%x", data, back)
		}
		if pkt.Header.Flags&FlagControl != 0 {
			// Control payloads must parse or fail cleanly, never panic.
			if c, err := ParseControl(pkt); err == nil && c.Kind == ControlNACK {
				if len(c.Seqs) != len(pkt.Payload)/4 {
					t.Fatalf("NACK seq count %d for %d payload bytes", len(c.Seqs), len(pkt.Payload))
				}
			}
		}
	})
}

// TestSeqFieldOffset pins the byte offset HandleControl patches when it
// sets FlagRetransmit on a buffered packet (flags live outside the CRC).
func TestSeqFieldOffset(t *testing.T) {
	raw := MarshalPacket(PacketHeader{StreamID: 1, FrameType: codec.IFrame, FragCount: 1, Seq: 0xDEADBEEF}, []byte("p"))
	if got := binary.LittleEndian.Uint32(raw[17:21]); got != 0xDEADBEEF {
		t.Fatalf("seq field not at offset 17: %#x", got)
	}
	raw[3] |= FlagRetransmit
	pkt, err := ParsePacket(raw)
	if err != nil {
		t.Fatalf("retransmit-flagged packet must still parse: %v", err)
	}
	if pkt.Header.Flags&FlagRetransmit == 0 {
		t.Fatal("flag did not stick")
	}
}
