package pcc

import "testing"

func TestCaptureRenderExtras(t *testing.T) {
	v := testVideo(t)
	truth, err := v.Frame(0)
	if err != nil {
		t.Fatal(err)
	}

	// Capture.
	rig := FrontalCaptureRig(2, 1024)
	raw, err := rig.Capture(truth)
	if err != nil {
		t.Fatal(err)
	}
	captured, err := Voxelize(raw, 10)
	if err != nil {
		t.Fatal(err)
	}
	if captured.Len() == 0 {
		t.Fatal("capture produced nothing")
	}

	// Render.
	o := DefaultRenderOptions()
	o.Width, o.Height = 64, 64
	o.View = ViewSide
	img, err := RenderFrame(captured, o)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 64 {
		t.Fatal("render size")
	}

	// Links.
	c, err := Link5G.Transmit(1_000_000)
	if err != nil || c.Latency <= 0 {
		t.Fatalf("link: %v %v", c, err)
	}
	if LinkWiFi.BandwidthMbps <= Link5G.BandwidthMbps {
		t.Fatal("WiFi should be the fastest preset")
	}
	if LinkLTE.TxNanojoulePerByte <= Link5G.TxNanojoulePerByte {
		t.Fatal("LTE should cost the most energy per byte")
	}
}

func TestCullViewportExtras(t *testing.T) {
	v := testVideo(t)
	f, _ := v.Frame(0)
	// Use the decoded canonical order: encode/decode round trip sorts it.
	o := DefaultOptions(IntraOnly)
	o.IntraAttr.Segments = 200
	enc := NewEncoderOptions(o)
	bits, _, err := enc.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(o)
	sortedCloud, err := dec.Decode(bits)
	if err != nil {
		t.Fatal(err)
	}
	cam := ViewCamera{Pos: [3]float64{512, 512, -1024}, Dir: [3]float64{0, 0, 1}, FOVDegrees: 360}
	kept, mask, res := CullViewport(sortedCloud.Voxels, 100, cam)
	if len(kept) != sortedCloud.Len() || res.CulledFraction() != 0 {
		t.Fatalf("360-degree cull dropped points: %d of %d", len(kept), sortedCloud.Len())
	}
	if len(mask) != res.Blocks {
		t.Fatal("mask length mismatch")
	}
}
