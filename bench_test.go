// Package repro's root benchmark suite maps one testing.B benchmark onto
// every table and figure of the paper's evaluation (see DESIGN.md's
// per-experiment index). Each benchmark executes the same code path the
// pccbench experiment uses and reports the simulated edge-board metrics
// (sim-ms/frame, J/frame, compression ratio, ...) via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the paper's measurement set.
//
// Benchmarks run at a small dataset scale for wall-clock sanity; the device
// model scales linearly with point count, so every reported RATIO matches
// the full-scale experiments (run `pccbench -scale 1 all` for the
// paper-sized absolute numbers).
package repro

import (
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/interframe"
	"repro/internal/metrics"
	"repro/internal/morton"
)

const benchScale = 0.03

var (
	benchOnce   sync.Once
	benchFrames []*geom.VoxelCloud // redandblack frames 0..2
	lootFrames  []*geom.VoxelCloud // loot frames 0..1
)

func load(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		rb, err := dataset.SpecByName("redandblack")
		if err != nil {
			panic(err)
		}
		g := dataset.NewGenerator(rb, benchScale)
		for i := 0; i < 3; i++ {
			f, err := g.Frame(i)
			if err != nil {
				panic(err)
			}
			benchFrames = append(benchFrames, f)
		}
		loot, err := dataset.SpecByName("loot")
		if err != nil {
			panic(err)
		}
		lg := dataset.NewGenerator(loot, benchScale)
		for i := 0; i < 2; i++ {
			f, err := lg.Frame(i)
			if err != nil {
				panic(err)
			}
			lootFrames = append(lootFrames, f)
		}
	})
}

func benchOpts(d codec.Design) codec.Options {
	o := codec.OptionsFor(d)
	o.IntraAttr.Segments = int(30000 * benchScale)
	o.Inter.Segments = int(50000 * benchScale)
	return o
}

func sortedVox(vc *geom.VoxelCloud) []geom.Voxel {
	k := morton.EncodeCloud(vc)
	morton.Sort(k)
	k = morton.Dedup(k)
	return morton.Voxels(k)
}

// BenchmarkTable1Dataset regenerates Table I's rows: synthetic frame
// generation for each of the six videos.
func BenchmarkTable1Dataset(b *testing.B) {
	for _, spec := range dataset.TableI() {
		b.Run(spec.Name, func(b *testing.B) {
			g := dataset.NewGenerator(spec, 0.01)
			b.ResetTimer()
			var pts int
			for i := 0; i < b.N; i++ {
				f, err := g.Frame(i % spec.Frames)
				if err != nil {
					b.Fatal(err)
				}
				pts = f.Len()
			}
			b.ReportMetric(float64(pts), "points/frame")
		})
	}
}

// BenchmarkFig2Breakdown regenerates Fig. 2: the baseline TMC13-like
// pipeline whose stage split (octree ~1/3, RAHT ~2/3) the figure shows.
func BenchmarkFig2Breakdown(b *testing.B) {
	load(b)
	dev := edgesim.NewXavier(edgesim.Mode15W)
	enc := codec.NewEncoder(dev, benchOpts(codec.TMC13))
	b.ResetTimer()
	var st codec.FrameStats
	for i := 0; i < b.N; i++ {
		var err error
		_, st, err = enc.EncodeFrame(benchFrames[0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.GeometryTime.Seconds()*1e3, "sim-geo-ms")
	b.ReportMetric(st.AttrTime.Seconds()*1e3, "sim-attr-ms")
}

// BenchmarkFig3SpatialLocality regenerates Fig. 3a's statistic: per-segment
// attribute ranges over a Morton-sorted frame.
func BenchmarkFig3SpatialLocality(b *testing.B) {
	load(b)
	sorted := sortedVox(benchFrames[0])
	b.ResetTimer()
	var med float64
	for i := 0; i < b.N; i++ {
		cdf := metrics.NewCDF(metrics.SegmentAttributeRanges(sorted, len(sorted)/20, 0))
		med = cdf.Median()
	}
	b.ReportMetric(med, "median-range")
}

// BenchmarkFig3TemporalLocality regenerates Fig. 3b's statistic: best-match
// temporal block deltas between consecutive frames.
func BenchmarkFig3TemporalLocality(b *testing.B) {
	load(b)
	iF := sortedVox(benchFrames[0])
	pF := sortedVox(benchFrames[1])
	b.ResetTimer()
	var med float64
	for i := 0; i < b.N; i++ {
		cdf := metrics.NewCDF(metrics.SegmentTemporalDeltas(iF, pF, 1000, 10))
		med = cdf.Median()
	}
	b.ReportMetric(med, "median-delta")
}

// BenchmarkFig8Latency regenerates Fig. 8a: per-design encode latency.
func BenchmarkFig8Latency(b *testing.B) {
	load(b)
	for _, d := range codec.Designs() {
		b.Run(d.String(), func(b *testing.B) {
			dev := edgesim.NewXavier(edgesim.Mode15W)
			enc := codec.NewEncoder(dev, benchOpts(d))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range benchFrames {
					if _, _, err := enc.EncodeFrame(f); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(dev.SimTime().Seconds()*1e3/float64(3*b.N), "sim-ms/frame")
		})
	}
}

// BenchmarkFig8Energy regenerates Fig. 8b: per-design encode energy.
func BenchmarkFig8Energy(b *testing.B) {
	load(b)
	for _, d := range codec.Designs() {
		b.Run(d.String(), func(b *testing.B) {
			dev := edgesim.NewXavier(edgesim.Mode15W)
			enc := codec.NewEncoder(dev, benchOpts(d))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range benchFrames {
					if _, _, err := enc.EncodeFrame(f); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(dev.EnergyJ()/float64(3*b.N), "sim-J/frame")
		})
	}
}

// BenchmarkFig8Compression regenerates Fig. 8c: per-design compressed size.
func BenchmarkFig8Compression(b *testing.B) {
	load(b)
	for _, d := range codec.Designs() {
		b.Run(d.String(), func(b *testing.B) {
			dev := edgesim.NewXavier(edgesim.Mode15W)
			enc := codec.NewEncoder(dev, benchOpts(d))
			var size, raw int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc.Reset()
				size, raw = 0, 0
				for _, f := range benchFrames {
					_, st, err := enc.EncodeFrame(f)
					if err != nil {
						b.Fatal(err)
					}
					size += st.SizeBytes
					raw += f.RawBytes()
				}
			}
			b.ReportMetric(float64(raw)/float64(size), "ratio")
			b.ReportMetric(float64(size)/float64(raw)*100, "size-%of-raw")
		})
	}
}

// BenchmarkFig9KernelEnergy regenerates Fig. 9: inter-frame attribute
// kernel energy attribution on Loot.
func BenchmarkFig9KernelEnergy(b *testing.B) {
	load(b)
	iF := sortedVox(lootFrames[0])
	pF := sortedVox(lootFrames[1])
	p := interframe.DefaultParamsV1()
	p.Segments = int(50000 * benchScale)
	dev := edgesim.NewXavier(edgesim.Mode15W)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := interframe.EncodeP(dev, iF, pF, p); err != nil {
			b.Fatal(err)
		}
	}
	var diff, total float64
	for _, k := range dev.Kernels() {
		total += k.EnergyJ
		if k.Name == "Diff_Squared" {
			diff = k.EnergyJ
		}
	}
	b.ReportMetric(diff/total*100, "Diff_Squared-%")
}

// BenchmarkFig10Sensitivity regenerates Fig. 10b: the reuse-threshold knob.
func BenchmarkFig10Sensitivity(b *testing.B) {
	load(b)
	for _, th := range []float64{20, 90, 400} {
		b.Run(thName(th), func(b *testing.B) {
			o := benchOpts(codec.IntraInterV2)
			o.Inter.Threshold = th
			var reuse float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc := codec.NewEncoder(edgesim.NewXavier(edgesim.Mode15W), o)
				reuse = 0
				for _, f := range benchFrames {
					_, st, err := enc.EncodeFrame(f)
					if err != nil {
						b.Fatal(err)
					}
					if st.Type == codec.PFrame {
						reuse += st.Inter.ReuseFraction() / 2
					}
				}
			}
			b.ReportMetric(reuse*100, "reuse-%")
		})
	}
}

func thName(th float64) string {
	switch {
	case th < 50:
		return "tight"
	case th < 200:
		return "default"
	default:
		return "loose"
	}
}

// BenchmarkPowerModes regenerates the Sec. VI-C 15 W vs 10 W comparison.
func BenchmarkPowerModes(b *testing.B) {
	load(b)
	for _, mode := range []edgesim.PowerMode{edgesim.Mode15W, edgesim.Mode10W} {
		b.Run(mode.String(), func(b *testing.B) {
			dev := edgesim.NewXavier(mode)
			enc := codec.NewEncoder(dev, benchOpts(codec.IntraInterV2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range lootFrames {
					if _, _, err := enc.EncodeFrame(f); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(dev.SimTime().Seconds()*1e3/float64(2*b.N), "sim-ms/frame")
		})
	}
}

// BenchmarkDecodeLatency regenerates the Sec. VI-C decode observation
// (proposed designs decode faster than they encode, ~70 ms at full scale).
func BenchmarkDecodeLatency(b *testing.B) {
	load(b)
	for _, d := range []codec.Design{codec.TMC13, codec.IntraOnly, codec.IntraInterV1} {
		b.Run(d.String(), func(b *testing.B) {
			opts := benchOpts(d)
			enc := codec.NewEncoder(edgesim.NewXavier(edgesim.Mode15W), opts)
			var efs []*codec.EncodedFrame
			for _, f := range benchFrames {
				ef, _, err := enc.EncodeFrame(f)
				if err != nil {
					b.Fatal(err)
				}
				efs = append(efs, ef)
			}
			dev := edgesim.NewXavier(edgesim.Mode15W)
			dec := codec.NewDecoder(dev, opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec.Reset()
				for _, ef := range efs {
					if _, err := dec.DecodeFrame(ef); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(dev.SimTime().Seconds()*1e3/float64(3*b.N), "sim-ms/frame")
		})
	}
}

// BenchmarkEntropyAblation regenerates the Sec. IV-B3 ablation: the
// optional entropy stage trades ~2x geometry size for serial coding time.
func BenchmarkEntropyAblation(b *testing.B) {
	load(b)
	for _, entropy := range []bool{false, true} {
		name := "fast-path"
		if entropy {
			name = "with-entropy"
		}
		b.Run(name, func(b *testing.B) {
			o := benchOpts(codec.IntraOnly)
			o.EntropyGeometry = entropy
			dev := edgesim.NewXavier(edgesim.Mode15W)
			enc := codec.NewEncoder(dev, o)
			var geoBytes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ef, _, err := enc.EncodeFrame(benchFrames[0])
				if err != nil {
					b.Fatal(err)
				}
				geoBytes = len(ef.Geometry)
			}
			b.ReportMetric(dev.SimTime().Seconds()*1e3/float64(b.N), "sim-ms/frame")
			b.ReportMetric(float64(geoBytes)/1e3, "geo-KB")
		})
	}
}
