// Package viewport implements viewpoint-dependent transmission in the
// style of ViVo [24], which the paper's related-work section singles out as
// the key volumetric-streaming optimization: "only send the 3D tiles within
// the user's field of view". It composes naturally with the proposed
// codecs' Morton-block structure — the same macro blocks the attribute
// pipelines use become the visibility tiles — so a streaming sender can
// skip encoding/transmitting blocks the viewer cannot see.
package viewport

import (
	"math"

	"repro/internal/attr"
	"repro/internal/geom"
)

// Camera is a simple perspective viewer: position, view direction, and a
// conical field of view.
type Camera struct {
	// Pos is the eye position in lattice coordinates.
	Pos [3]float64
	// Dir is the (not necessarily normalized) view direction.
	Dir [3]float64
	// FOVDegrees is the full cone angle of the view frustum.
	FOVDegrees float64
	// MaxDist culls blocks beyond this distance (0 = unlimited).
	MaxDist float64
}

// DefaultCamera looks at the lattice centre from the front with a 60° FOV.
func DefaultCamera(gridSize uint32) Camera {
	g := float64(gridSize)
	return Camera{
		Pos:        [3]float64{g / 2, g / 2, -g},
		Dir:        [3]float64{0, 0, 1},
		FOVDegrees: 60,
	}
}

// sees reports whether the point is inside the camera's cone.
func (c Camera) sees(x, y, z float64) bool {
	dx, dy, dz := x-c.Pos[0], y-c.Pos[1], z-c.Pos[2]
	dist := math.Sqrt(dx*dx + dy*dy + dz*dz)
	if dist == 0 {
		return true
	}
	if c.MaxDist > 0 && dist > c.MaxDist {
		return false
	}
	dl := math.Sqrt(c.Dir[0]*c.Dir[0] + c.Dir[1]*c.Dir[1] + c.Dir[2]*c.Dir[2])
	if dl == 0 {
		return true
	}
	cosA := (dx*c.Dir[0] + dy*c.Dir[1] + dz*c.Dir[2]) / (dist * dl)
	return cosA >= math.Cos(c.FOVDegrees/2*math.Pi/180)
}

// Result summarizes one culling pass.
type Result struct {
	Blocks        int
	VisibleBlocks int
	TotalPoints   int
	VisiblePoints int
}

// CulledFraction is the fraction of points removed.
func (r Result) CulledFraction() float64 {
	if r.TotalPoints == 0 {
		return 0
	}
	return 1 - float64(r.VisiblePoints)/float64(r.TotalPoints)
}

// Cull partitions a Morton-sorted frame into `segments` blocks (the same
// partition the attribute codecs use) and keeps only blocks whose centroid
// falls inside the camera cone. Returns the visible sub-frame (preserving
// sorted order, so it feeds straight into the attribute codecs) and the
// per-block visibility mask.
func Cull(sorted []geom.Voxel, segments int, cam Camera) ([]geom.Voxel, []bool, Result) {
	bounds := attr.SegmentBounds(len(sorted), segments)
	nBlocks := len(bounds) - 1
	mask := make([]bool, nBlocks)
	res := Result{Blocks: nBlocks, TotalPoints: len(sorted)}
	var out []geom.Voxel
	for b := 0; b < nBlocks; b++ {
		lo, hi := bounds[b], bounds[b+1]
		if lo == hi {
			continue
		}
		var cx, cy, cz float64
		for _, v := range sorted[lo:hi] {
			cx += float64(v.X)
			cy += float64(v.Y)
			cz += float64(v.Z)
		}
		n := float64(hi - lo)
		if cam.sees(cx/n, cy/n, cz/n) {
			mask[b] = true
			res.VisibleBlocks++
			res.VisiblePoints += hi - lo
			out = append(out, sorted[lo:hi]...)
		}
	}
	return out, mask, res
}
