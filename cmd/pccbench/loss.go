package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/linksim"
	"repro/internal/trace"
	"repro/pcc/stream"
)

// lossDecodedFloor is the checked-in acceptance floor for the loss sweep:
// at up to 5% packet loss the recovery protocol must still decode at least
// this fraction of frames. CI fails the experiment if a run regresses.
const lossDecodedFloor = 0.95

// lossFECDecodedFloor replaces lossDecodedFloor when -fec arms parity:
// single losses inside an XOR group repair from the trailing parity packet
// with zero retransmit round trips, so at up to 5% random loss essentially
// every frame must decode.
const lossFECDecodedFloor = 0.99

// lossFECGroupLen is the static parity group size the -fec sweep uses: one
// XOR parity packet per 4 data packets (25% overhead), the same operating
// point the adaptive knob converges to near 5% loss.
const lossFECGroupLen = 4

// lossSeed fixes the fault injector so every sweep replays the same drops.
const lossSeed = 42

// runLoss sweeps packet-loss rates over the lossy transport (real packet
// framing → seeded FaultyLink → receiver with NACK/conceal/refresh
// recovery) and reports the decoded-frame ratio and the recovery latency
// each loss rate costs. The final row trades the i.i.d. dropper for a
// Gilbert–Elliott bursty link at a comparable average rate, where parity
// groups take multi-loss hits and the NACK fallback carries more of the
// repair. Random-loss rates at or below 5% enforce the decoded floor —
// lossFECDecodedFloor with -fec, lossDecodedFloor without.
func runLoss(cfg benchConfig) error {
	spec := cfg.Videos[0]
	nFrames := cfg.Frames
	if nFrames < 12 {
		nFrames = 12 // at least four IPP GOPs so I-frame recovery matters
	}
	frames, err := loadFrames(spec, cfg.Scale, nFrames)
	if err != nil {
		return err
	}
	opts := scaledOptions(codec.IntraInterV1, cfg.Scale)

	fec := stream.FECConfig{GroupLen: -1} // hard off: byte-identical to a pre-FEC sender
	floor, mode := lossDecodedFloor, "FEC off"
	if cfg.FEC {
		fec = stream.FECConfig{GroupLen: lossFECGroupLen}
		floor, mode = lossFECDecodedFloor, fmt.Sprintf("FEC group %d", lossFECGroupLen)
	}

	tb := trace.NewTable(
		fmt.Sprintf("Loss resilience — %s, %d frames, GOP %d, %s, WiFi + fault injection (seed %d)",
			spec.Name, len(frames), opts.GOP, mode, lossSeed),
		"drop", "decoded", "concealed", "skipped", "ratio", "nacks", "retx", "repairs", "recov ms")

	type sweep struct {
		label string
		prof  linksim.FaultProfile
		gated bool
	}
	var sweeps []sweep
	for _, rate := range []float64{0, 0.01, 0.05, 0.10} {
		prof := linksim.FaultProfile{
			DropRate:    rate,
			ReorderRate: 0.03,
			DupRate:     0.01,
			Seed:        lossSeed,
		}
		if rate == 0 {
			prof.ReorderRate, prof.DupRate = 0, 0
		}
		sweeps = append(sweeps, sweep{
			label: fmt.Sprintf("%.0f%%", rate*100),
			prof:  prof,
			gated: rate <= 0.05,
		})
	}
	// Gilbert–Elliott burst row: ~4.4% average loss (0.02/0.27 of the time
	// in the bad state, dropping 60% there), arriving in spells of ~2-3
	// packets instead of i.i.d. singles. Ungated — bursts are exactly the
	// regime where single-repair parity hands off to the NACK fallback.
	sweeps = append(sweeps, sweep{
		label: "GE burst",
		prof: linksim.FaultProfile{
			GEBadLoss:   0.6,
			ReorderRate: 0.03,
			DupRate:     0.01,
			Seed:        lossSeed,
		},
	})

	type point struct {
		label string
		ratio float64
		gated bool
	}
	var points []point
	for _, sw := range sweeps {
		fl := linksim.NewFaultyLink(linksim.WiFi, sw.prof)
		var recovered time.Duration
		var recoveredN int
		pipe := stream.NewLossyPipe(fl, stream.ReceiverConfig{
			Options: opts,
			OnFrame: func(f stream.DecodedFrame) {
				if f.Status == stream.FrameDecoded && f.Delay > 0 {
					recovered += f.Delay
					recoveredN++
				}
			},
		})
		s := stream.New(context.Background(), stream.Config{
			Options:   opts,
			FEC:       fec,
			PacketOut: pipe.PacketOut,
		})
		pipe.Attach(s)
		col := stream.NewCollector(s)
		for _, f := range frames {
			if err := s.Submit(context.Background(), f); err != nil {
				return err
			}
		}
		if err := s.Close(); err != nil {
			return err
		}
		col.Wait()
		if err := pipe.Finish(len(frames)); err != nil {
			return err
		}

		rs := pipe.Receiver().Metrics()
		ratio := rs.DecodedRatio()
		meanRecov := 0.0
		if recoveredN > 0 {
			meanRecov = recovered.Seconds() * 1000 / float64(recoveredN)
		}
		tb.Row(sw.label,
			fmt.Sprintf("%d/%d", rs.FramesDecoded, rs.Frames()),
			fmt.Sprintf("%d", rs.FramesConcealed),
			fmt.Sprintf("%d", rs.FramesSkipped),
			fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%d", rs.NACKsSent),
			fmt.Sprintf("%d", rs.RetransmitsReceived),
			fmt.Sprintf("%d", rs.FEC.ParityRepairs),
			meanRecov)
		points = append(points, point{sw.label, ratio, sw.gated})
	}
	emit(tb)
	fmt.Println("recov ms = mean first-to-last-packet delay of decoded frames (reassembly plus")
	fmt.Println("recovery); the rise over the 0% row is the latency the loss rate costs.")
	fmt.Println("repairs = packets rebuilt from XOR parity before the NACK timer fired; the GE")
	fmt.Println("burst row averages ~4.4% loss but in spells, so multi-loss groups fall back to NACKs.")
	fmt.Println("concealed frames repeat the last good frame, skipped frames had no usable reference.")

	for _, p := range points {
		if p.gated && p.ratio < floor {
			return fmt.Errorf("loss sweep: decoded ratio %.3f at %s drop is below the %.2f floor",
				p.ratio, p.label, floor)
		}
	}
	return nil
}
