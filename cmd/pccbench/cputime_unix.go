//go:build unix

package main

import (
	"syscall"
	"time"
)

// processCPUTime returns the process's cumulative user+system CPU time.
// The fanout-scale sweep differences it across a serving run to price the
// relay work itself, independent of sleeps and scheduler idle time.
func processCPUTime() (time.Duration, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano()), true
}
