package entropy

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bits := make([]int, 10000)
	for i := range bits {
		// Skewed source: mostly zeros.
		if rng.Intn(10) == 0 {
			bits[i] = 1
		}
	}
	e := NewEncoder()
	p := NewProb()
	for _, b := range bits {
		e.EncodeBit(&p, b)
	}
	data := e.Bytes()
	if len(data) >= len(bits)/8 {
		t.Errorf("skewed bits did not compress: %d bytes for %d bits", len(data), len(bits))
	}
	d, err := NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	q := NewProb()
	for i, want := range bits {
		if got := d.DecodeBit(&q); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestDirectBitsRoundTrip(t *testing.T) {
	e := NewEncoder()
	vals := []uint64{0, 1, 0xDEAD, 0xFFFFFFFF, 12345}
	widths := []int{1, 4, 16, 32, 20}
	for i, v := range vals {
		e.EncodeDirect(v, widths[i])
	}
	d, err := NewDecoder(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		if got := d.DecodeDirect(widths[i]); got != want {
			t.Fatalf("direct %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestByteModelRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		e := NewEncoder()
		m := NewByteModel()
		for _, b := range data {
			m.Encode(e, b)
		}
		d, err := NewDecoder(e.Bytes())
		if err != nil {
			return false
		}
		m2 := NewByteModel()
		for _, want := range data {
			if m2.Decode(d) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNibbleModelRoundTrip(t *testing.T) {
	e := NewEncoder()
	m := NewNibbleModel()
	vals := make([]byte, 500)
	rng := rand.New(rand.NewSource(5))
	for i := range vals {
		vals[i] = byte(rng.Intn(16))
		m.Encode(e, vals[i])
	}
	d, err := NewDecoder(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewNibbleModel()
	for i, want := range vals {
		if got := m2.Decode(d); got != want {
			t.Fatalf("nibble %d = %d, want %d", i, got, want)
		}
	}
}

func TestUintModelRoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		e := NewEncoder()
		m := NewUintModel()
		for _, v := range vals {
			m.Encode(e, v)
		}
		d, err := NewDecoder(e.Bytes())
		if err != nil {
			return false
		}
		m2 := NewUintModel()
		for _, want := range vals {
			if m2.Decode(d) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUintModelBoundaries(t *testing.T) {
	vals := []uint64{0, 1, 2, 3, 255, 256, 1 << 20, 1<<63 - 1, 1 << 63, ^uint64(0)}
	e := NewEncoder()
	m := NewUintModel()
	for _, v := range vals {
		m.Encode(e, v)
	}
	d, err := NewDecoder(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewUintModel()
	for _, want := range vals {
		if got := m2.Decode(d); got != want {
			t.Fatalf("boundary %d: got %d", want, got)
		}
	}
}

func TestZigZag(t *testing.T) {
	cases := map[int64]uint64{0: 0, -1: 1, 1: 2, -2: 3, 2: 4, -64: 127}
	for v, want := range cases {
		if got := ZigZag(v); got != want {
			t.Errorf("ZigZag(%d) = %d, want %d", v, got, want)
		}
	}
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntModelRoundTrip(t *testing.T) {
	vals := []int64{0, -1, 1, 127, -128, 1 << 40, -(1 << 40)}
	e := NewEncoder()
	m := NewIntModel()
	for _, v := range vals {
		m.Encode(e, v)
	}
	d, err := NewDecoder(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewIntModel()
	for _, want := range vals {
		if got := m2.Decode(d); got != want {
			t.Fatalf("int %d: got %d", want, got)
		}
	}
}

func TestCompressBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		out, err := DecompressBytes(CompressBytes(data))
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCompressBytesShrinksRedundantData(t *testing.T) {
	data := bytes.Repeat([]byte{0, 0, 0, 1}, 4096)
	c := CompressBytes(data)
	if len(c) > len(data)/4 {
		t.Errorf("redundant data compressed to %d/%d bytes", len(c), len(data))
	}
}

func TestCompressBytesEmpty(t *testing.T) {
	out, err := DecompressBytes(CompressBytes(nil))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty round trip: %v, %v", out, err)
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	if _, err := NewDecoder(nil); err == nil {
		t.Error("nil stream must fail")
	}
	if _, err := NewDecoder([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("stream not starting with 0 must fail")
	}
	if _, err := NewDecoder([]byte{0, 1}); err == nil {
		t.Error("truncated stream must fail")
	}
}

func TestDecompressRejectsHugeLength(t *testing.T) {
	e := NewEncoder()
	m := NewUintModel()
	m.Encode(e, 1<<40) // absurd claimed length
	if _, err := DecompressBytes(e.Bytes()); err == nil {
		t.Error("absurd length must be rejected")
	}
}

func TestEncoderLen(t *testing.T) {
	e := NewEncoder()
	if e.Len() != 0 {
		t.Error("fresh encoder has nonzero Len")
	}
	m := NewByteModel()
	for i := 0; i < 1000; i++ {
		m.Encode(e, byte(i))
	}
	if e.Len() == 0 {
		t.Error("Len must grow as bytes are emitted")
	}
}

func BenchmarkCompressBytes64K(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(rng.Intn(8)) // skewed
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompressBytes(data)
	}
}
