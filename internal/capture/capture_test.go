package capture

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func body(t testing.TB) *geom.VoxelCloud {
	t.Helper()
	spec, err := dataset.SpecByName("andrew10")
	if err != nil {
		t.Fatal(err)
	}
	vc, err := dataset.NewGenerator(spec, 0.02).Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	return vc
}

func TestEmptyRigAndCloud(t *testing.T) {
	if _, err := (Rig{}).Capture(&geom.VoxelCloud{Depth: 10, Voxels: []geom.Voxel{{X: 1}}}); err != ErrNoCameras {
		t.Fatalf("err = %v", err)
	}
	if _, err := FrontalRig(4, 1024).Capture(&geom.VoxelCloud{Depth: 10}); err == nil {
		t.Fatal("empty truth must fail")
	}
}

func TestFrontalRigCaptures(t *testing.T) {
	truth := body(t)
	cloud, err := FrontalRig(4, 1024).Capture(truth)
	if err != nil {
		t.Fatal(err)
	}
	if cloud.Len() == 0 {
		t.Fatal("no points captured")
	}
	// Voxelizing the capture must give a plausible frame.
	vc, err := geom.Voxelize(cloud, 10)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Len() < truth.Len()/20 {
		t.Fatalf("capture too sparse: %d voxels from %d truth", vc.Len(), truth.Len())
	}
}

func TestFrontalCaptureIsSingleSided(t *testing.T) {
	// A frontal rig must not see the back of the subject: at EQUAL sensor
	// resolution, a full orbit covers strictly more surface than the same
	// number of frontal cameras.
	truth := body(t)
	front := FrontalRig(4, 1024)
	orbit := OrbitRig(4, 1024)
	for i := range front.Cams {
		front.Cams[i].Width, front.Cams[i].Height = 256, 256
	}
	fc, err := front.Capture(truth)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := orbit.Capture(truth)
	if err != nil {
		t.Fatal(err)
	}
	// The frontal cameras sit at low Z looking towards +Z, so their capture
	// is biased towards the subject's front (low-Z) surfaces; the orbit
	// capture is balanced. Compare mean captured Z.
	if fz, oz := meanZ(fc), meanZ(oc); fz >= oz-3 {
		t.Fatalf("frontal mean z %.1f not in front of orbit mean z %.1f — no single-sidedness", fz, oz)
	}
}

func meanZ(c *geom.Cloud) float64 {
	var s float64
	for _, p := range c.Points {
		s += float64(p.Z)
	}
	return s / float64(len(c.Points))
}

func TestCapturedPointsNearSurface(t *testing.T) {
	// Every captured point must lie close to SOME ground-truth voxel
	// (within the depth quantization + pixel footprint).
	truth := body(t)
	cloud, err := OrbitRig(8, 1024).Capture(truth)
	if err != nil {
		t.Fatal(err)
	}
	idx := geom.NewGridIndex(truth, 4)
	maxD2 := 0.0
	for i := 0; i < len(cloud.Points); i += 37 { // sample
		p := cloud.Points[i]
		v := geom.Voxel{X: clampU(p.X), Y: clampU(p.Y), Z: clampU(p.Z)}
		_, d2 := idx.Nearest(v)
		if d2 > maxD2 {
			maxD2 = d2
		}
	}
	// Pixel footprint at ~1.6*1024 distance with 256px/50° is ~5-6 voxels;
	// allow some slack.
	if maxD2 > 400 {
		t.Fatalf("captured point %v voxels away from surface", math.Sqrt(maxD2))
	}
}

func clampU(v float32) uint32 {
	if v < 0 {
		return 0
	}
	if v > 1023 {
		return 1023
	}
	return uint32(v)
}

func TestDepthQuantization(t *testing.T) {
	// A single voxel imaged by one camera: the back-projected depth must
	// be quantized to DepthStep.
	truth := &geom.VoxelCloud{Depth: 10, Voxels: []geom.Voxel{
		{X: 512, Y: 512, Z: 512, C: geom.Color{R: 10}},
	}}
	cam := Cam{
		Pos: [3]float64{512, 512, 0}, LookAt: [3]float64{512, 512, 512},
		FOVDegrees: 40, Width: 64, Height: 64, DepthStep: 8,
	}
	out := &geom.Cloud{}
	cam.capture(truth, out)
	if len(out.Points) != 1 {
		t.Fatalf("captured %d points, want 1", len(out.Points))
	}
	z := float64(out.Points[0].Z)
	if math.Mod(z, 8) > 1e-3 && math.Mod(z, 8) < 8-1e-3 {
		t.Fatalf("depth %v not quantized to step 8", z)
	}
}

func TestColorBias(t *testing.T) {
	truth := &geom.VoxelCloud{Depth: 10, Voxels: []geom.Voxel{
		{X: 512, Y: 512, Z: 512, C: geom.Color{R: 100, G: 100, B: 100}},
	}}
	cam := Cam{
		Pos: [3]float64{512, 512, 0}, LookAt: [3]float64{512, 512, 512},
		FOVDegrees: 40, Width: 32, Height: 32, ColorBias: 5,
	}
	out := &geom.Cloud{}
	cam.capture(truth, out)
	if len(out.Points) != 1 || out.Points[0].C.R != 105 {
		t.Fatalf("captured = %+v", out.Points)
	}
}

func TestOcclusion(t *testing.T) {
	// Two voxels on the same ray: only the nearer is captured.
	truth := &geom.VoxelCloud{Depth: 10, Voxels: []geom.Voxel{
		{X: 512, Y: 512, Z: 400, C: geom.Color{R: 1}},
		{X: 512, Y: 512, Z: 800, C: geom.Color{R: 2}},
	}}
	cam := Cam{
		Pos: [3]float64{512, 512, 0}, LookAt: [3]float64{512, 512, 512},
		FOVDegrees: 40, Width: 16, Height: 16,
	}
	out := &geom.Cloud{}
	cam.capture(truth, out)
	if len(out.Points) != 1 {
		t.Fatalf("captured %d points, want 1 (occlusion)", len(out.Points))
	}
	if out.Points[0].C.R != 1 {
		t.Fatalf("captured the occluded voxel (R=%d)", out.Points[0].C.R)
	}
}

// End to end: capture -> voxelize -> the capture output feeds the codecs.
func TestCaptureFeedsPipeline(t *testing.T) {
	truth := body(t)
	cloud, err := FrontalRig(4, 1024).Capture(truth)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := geom.Voxelize(cloud, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := vc.Validate(); err != nil {
		t.Fatal(err)
	}
}
