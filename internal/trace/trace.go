// Package trace formats the experiment harness's result tables: aligned
// plain-text tables and simple horizontal bar charts, so every figure and
// table of the paper prints as rows/series on stdout (deliverable (d)).
package trace

import (
	"fmt"
	"strings"
)

// Table accumulates rows and prints with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(x float64) string {
	switch {
	case x != x: // NaN
		return "-"
	case x >= 1e9 || x <= -1e9:
		return fmt.Sprintf("%.3g", x)
	case x == float64(int64(x)) && x < 1e7 && x > -1e7:
		return fmt.Sprintf("%d", int64(x))
	case x >= 100 || x <= -100:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3g", x)
	}
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			sb.WriteString(c + strings.Repeat(" ", pad))
		}
		sb.WriteString("\n")
	}
	line(t.headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

// CSV renders the table as RFC-4180-ish comma-separated values (header row
// first), so harness outputs can feed external plotting.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Bars renders a labelled horizontal bar chart (for breakdown figures).
type Bars struct {
	Title string
	items []barItem
	unit  string
}

type barItem struct {
	label string
	value float64
}

// NewBars creates a bar chart; unit is appended to values.
func NewBars(title, unit string) *Bars { return &Bars{Title: title, unit: unit} }

// Add appends one bar.
func (b *Bars) Add(label string, value float64) { b.items = append(b.items, barItem{label, value}) }

// String renders the chart with bars scaled to the maximum value.
func (b *Bars) String() string {
	var sb strings.Builder
	if b.Title != "" {
		sb.WriteString(b.Title + "\n")
	}
	maxV, maxL := 0.0, 0
	for _, it := range b.items {
		if it.value > maxV {
			maxV = it.value
		}
		if len(it.label) > maxL {
			maxL = len(it.label)
		}
	}
	const width = 40
	var total float64
	for _, it := range b.items {
		total += it.value
	}
	for _, it := range b.items {
		n := 0
		if maxV > 0 {
			n = int(it.value / maxV * width)
		}
		pct := 0.0
		if total > 0 {
			pct = it.value / total * 100
		}
		sb.WriteString(fmt.Sprintf("%-*s |%-*s %s%s (%.1f%%)\n",
			maxL, it.label, width, strings.Repeat("#", n), formatFloat(it.value), b.unit, pct))
	}
	return sb.String()
}
