package stream

// Layered multi-rate serving tests. The acceptance claims under test:
//
//   - wire framing: FlagLayered packets round-trip their layer id (after
//     any tile id), unlayered packets spend no extra bytes, and
//     ControlLayers round-trips a 1-byte subscription;
//   - full-subscription identity: a viewer with the layer machinery
//     attached but at full subscription emits the exact packet stream of
//     a viewer with no layer config at all — the layered path costs
//     nothing until a layer is actually dropped;
//   - adaptive shed: a viewer's own congestion feedback sheds enhancement
//     layers immediately and recovers them only at a keyframe, with no
//     shared-encoder knob involved;
//   - churn safety: viewers flapping layer subscriptions mid-GOP across
//     every control path (config, SetLayers, in-band ControlLayers) while
//     tiled layered frames stream with FEC never corrupt a decode, and
//     NACK rebuilds of layer-truncated sends are byte-deterministic.

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/codec"
)

func layeredTestOptions(tiles int) codec.Options {
	o := testOptions(codec.IntraInterV1)
	o.Tiles = tiles
	o.Layers = 3
	return o
}

func TestPacketLayeredHeader(t *testing.T) {
	payload := []byte("layer payload")
	h := PacketHeader{
		Flags: FlagLayered, StreamID: 9, FrameIndex: 3, FrameType: codec.IFrame,
		Frag: 1, FragCount: 4, Seq: 77, Layer: 2,
	}
	pkt := MarshalPacket(h, payload)
	if len(pkt) != PacketHeaderSize+LayerIDSize+len(payload) {
		t.Fatalf("layered packet is %d bytes, want %d", len(pkt), PacketHeaderSize+LayerIDSize+len(payload))
	}
	got, err := ParsePacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != h || !bytes.Equal(got.Payload, payload) {
		t.Fatalf("round-trip mismatch: %+v", got.Header)
	}
	// A tiled AND layered packet carries both ids, tile first.
	h.Flags = FlagTiled | FlagLayered
	h.Tile, h.Layer = 5, 1
	pkt = MarshalPacket(h, payload)
	if len(pkt) != PacketHeaderSize+TileIDSize+LayerIDSize+len(payload) {
		t.Fatalf("tiled+layered packet is %d bytes, want %d",
			len(pkt), PacketHeaderSize+TileIDSize+LayerIDSize+len(payload))
	}
	if got, err = ParsePacket(pkt); err != nil || got.Header != h {
		t.Fatalf("tiled+layered round-trip: %+v, %v", got.Header, err)
	}
	// LayerNone round-trips (header fragments).
	h.Layer = LayerNone
	if got, err = ParsePacket(MarshalPacket(h, payload)); err != nil || got.Header.Layer != LayerNone {
		t.Fatalf("LayerNone round-trip: %+v, %v", got.Header, err)
	}
	// An unlayered packet spends no bytes on the layer id.
	h.Flags, h.Tile, h.Layer = 0, 0, 0
	if pkt = MarshalPacket(h, payload); len(pkt) != PacketHeaderSize+len(payload) {
		t.Fatalf("unlayered packet is %d bytes, want %d", len(pkt), PacketHeaderSize+len(payload))
	}
	// A layered packet truncated inside its layer id is structurally bad.
	h.Flags = FlagTiled | FlagLayered
	pkt = MarshalPacket(h, nil)
	if _, err := ParsePacket(pkt[:PacketHeaderSize+TileIDSize]); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("truncated layered packet: %v, want ErrBadPacket", err)
	}
}

func TestControlLayersRoundTrip(t *testing.T) {
	for _, sub := range []uint8{0, 1, 3, 255} {
		want := Control{Kind: ControlLayers, StreamID: 12, Layers: sub}
		pkt, err := ParsePacket(MarshalControl(want))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseControl(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != ControlLayers || got.StreamID != want.StreamID || got.Layers != sub {
			t.Fatalf("round-trip mismatch: %+v", got)
		}
	}
	// Anything but exactly one payload byte is malformed.
	for _, payload := range [][]byte{nil, {1, 2}} {
		pkt, err := ParsePacket(MarshalPacket(PacketHeader{
			Flags: FlagControl, FrameType: codec.FrameType(ControlLayers), FragCount: 1,
		}, payload))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseControl(pkt); !errors.Is(err, ErrBadPacket) {
			t.Fatalf("layers payload %d bytes parsed: %v", len(payload), err)
		}
	}
}

// layerWatch wraps a viewerSink's PacketOut, tallying layered packets and
// keeping copies of the data packets by sequence number (for the NACK
// rebuild determinism check). Concurrency-safe: PacketOut runs on the
// sender goroutine and, for retransmits, on HandleControl callers.
type layerWatch struct {
	sink *viewerSink

	mu             sync.Mutex
	data, layered  int
	parity         int
	bySeq          map[uint32][]byte
	layeredByFrame map[uint32]bool
}

func newLayerWatch(opts codec.Options) *layerWatch {
	return &layerWatch{
		sink:           newViewerSink(opts),
		bySeq:          make(map[uint32][]byte),
		layeredByFrame: make(map[uint32]bool),
	}
}

func (w *layerWatch) packetOut(ctx context.Context, pkt []byte) error {
	p, err := ParsePacket(pkt)
	if err == nil && p.Header.Flags&FlagControl == 0 {
		w.mu.Lock()
		switch {
		case p.Header.Flags&FlagParity != 0:
			w.parity++
		case p.Header.Flags&FlagRetransmit == 0:
			w.data++
			if p.Header.Flags&FlagLayered != 0 {
				w.layered++
				w.layeredByFrame[p.Header.FrameIndex] = true
			}
			w.bySeq[p.Header.Seq] = append([]byte(nil), pkt...)
		}
		w.mu.Unlock()
	}
	return w.sink.packetOut(ctx, pkt)
}

func (w *layerWatch) counts() (data, layered, parity int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.data, w.layered, w.parity
}

// TestServerLayeredFullSubByteIdentical: with a layered encode published,
// a viewer whose layer controller never sheds emits the exact packets of a
// viewer with no layer machinery at all — same headers (modulo stream id),
// same payload bytes, no FlagLayered anywhere.
func TestServerLayeredFullSubByteIdentical(t *testing.T) {
	frames := testFrames(t, 6)
	opts := layeredTestOptions(0)
	srv := NewServer(context.Background(), ServerConfig{Options: opts, ViewerQueue: 32})

	watches := [2]*layerWatch{newLayerWatch(opts), newLayerWatch(opts)}
	cfgs := [2]ViewerConfig{
		{PacketOut: watches[0].packetOut}, // no layer config at all
		{PacketOut: watches[1].packetOut, LayerAdapt: codec.LayerAdapt{Enabled: true}},
	}
	views := [2]*Viewer{}
	for i, cfg := range cfgs {
		v, err := srv.Attach(cfg)
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}

	for _, f := range frames {
		if err := srv.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i, w := range watches {
		for _, f := range w.sink.finish(t, len(frames)) {
			if f.Status != FrameDecoded {
				t.Fatalf("viewer %d frame %d: %v (%v)", i, f.Index, f.Status, f.Err)
			}
		}
		if _, layered, _ := w.counts(); layered != 0 {
			t.Fatalf("viewer %d emitted %d FlagLayered packets at full subscription", i, layered)
		}
		if m := views[i].Metrics(); m.SubLayers != 0 || m.LayerDownswitches != 0 {
			t.Fatalf("viewer %d latch moved at full subscription: %+v", i, m)
		}
	}
	// Byte identity, packet by packet: both viewers number their own
	// sequence spaces from 0 over the same frames, so only the stream id
	// bytes (header offsets 4..8) may differ.
	d0, _, _ := watches[0].counts()
	d1, _, _ := watches[1].counts()
	if d0 != d1 || d0 == 0 {
		t.Fatalf("packet counts differ: %d vs %d", d0, d1)
	}
	for seq := uint32(0); seq < uint32(d0); seq++ {
		a, b := watches[0].bySeq[seq], watches[1].bySeq[seq]
		if a == nil || b == nil {
			t.Fatalf("seq %d missing from a capture", seq)
		}
		if !bytes.Equal(a[:4], b[:4]) || !bytes.Equal(a[8:], b[8:]) {
			t.Fatalf("seq %d: packets differ beyond the stream id", seq)
		}
	}
}

// TestViewerLayerAdaptSheds drives the per-viewer layer controller with
// synthetic feedback: congestion sheds an enhancement layer on the very
// next send, recovery restores it only at the next keyframe, and the
// shared encoder is never involved (the server has no Controller).
func TestViewerLayerAdaptSheds(t *testing.T) {
	frames := testFrames(t, 9) // GOP 3: I at frames 0, 3, 6
	opts := layeredTestOptions(0)
	srv := NewServer(context.Background(), ServerConfig{Options: opts, ViewerQueue: 32})
	w := newLayerWatch(opts)
	v, err := srv.Attach(ViewerConfig{PacketOut: w.packetOut, LayerAdapt: codec.LayerAdapt{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}

	submit := func(lo, hi int) {
		t.Helper()
		for _, f := range frames[lo:hi] {
			if err := srv.Submit(context.Background(), f); err != nil {
				t.Fatal(err)
			}
		}
		waitOutcomes(t, w.sink, hi)
	}
	feedback := func(report, received, lost, nacks uint32) {
		t.Helper()
		if err := v.HandleControl(Control{Kind: ControlFeedback, StreamID: v.StreamID(),
			Feedback: Feedback{Report: report, Received: received, Lost: lost, NACKs: nacks}}); err != nil {
			t.Fatal(err)
		}
	}

	// Clean start: the full GOP ships whole.
	submit(0, 3)
	// One congested report (rate 20/70 ≈ 0.29 ≥ DropThreshold): the next
	// send — an I-frame, then its GOP — is truncated immediately.
	feedback(1, 50, 10, 10)
	submit(3, 6)
	if m := v.Metrics(); m.SubLayers != 2 || m.LayerDownswitches != 1 {
		t.Fatalf("after congestion: SubLayers=%d down=%d, want 2/1", m.SubLayers, m.LayerDownswitches)
	}
	// Four consecutive clean reports restore the layer, but the upswitch
	// waits for the keyframe at frame 6.
	for r := uint32(2); r <= 5; r++ {
		feedback(r, 100, 0, 0)
	}
	submit(6, 9)
	if m := v.Metrics(); m.SubLayers != 0 || m.LayerUpswitches != 1 || m.LayerDownswitches != 1 {
		t.Fatalf("after recovery: %+v", m)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for _, f := range w.sink.finish(t, len(frames)) {
		if f.Status != FrameDecoded {
			t.Fatalf("frame %d: %v (%v)", f.Index, f.Status, f.Err)
		}
	}
	// Exactly the shed GOP's frames were layer-truncated.
	w.mu.Lock()
	defer w.mu.Unlock()
	for idx := uint32(0); idx < uint32(len(frames)); idx++ {
		want := idx >= 3 && idx < 6
		if w.layeredByFrame[idx] != want {
			t.Fatalf("frame %d layered=%v, want %v", idx, w.layeredByFrame[idx], want)
		}
	}
}

// TestServerLayerChurn flips layer subscriptions mid-GOP from racing
// goroutines — via SetLayers and in-band ControlLayers, with out-of-range
// values — while tiled layered frames stream with FEC to four viewers.
// Every frame still decodes on every viewer; the fixed-subscription
// viewer's wire is smaller than the full viewer's; and a NACK rebuild of a
// layer-truncated send reproduces the original packet byte for byte. Run
// under -race in CI.
func TestServerLayerChurn(t *testing.T) {
	frames := testFrames(t, 12)
	opts := layeredTestOptions(4)
	srv := NewServer(context.Background(), ServerConfig{
		Options: opts, ViewerQueue: 64, FEC: FECConfig{GroupLen: 4},
	})

	const nViewers = 4
	watches := make([]*layerWatch, nViewers)
	views := make([]*Viewer, nViewers)
	for i := range watches {
		watches[i] = newLayerWatch(opts)
		cfg := ViewerConfig{PacketOut: watches[i].packetOut}
		if i == 1 {
			cfg.Layers = 1 // base-only from the very first send
		}
		v, err := srv.Attach(cfg)
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 2; i < nViewers; i++ {
		wg.Add(1)
		go func(v *Viewer, i int) {
			defer wg.Done()
			subs := []uint8{1, 2, 3, 0, 200} // 200 exercises the over-clamp
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				sub := subs[(n+i)%len(subs)]
				if i == 2 {
					v.SetLayers(sub)
				} else if err := v.HandleControl(Control{Kind: ControlLayers, StreamID: v.StreamID(), Layers: sub}); err != nil {
					t.Error(err)
					return
				}
				_ = v.Metrics()
			}
		}(views[i], i)
	}

	for _, f := range frames {
		if err := srv.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}

	// NACK rebuild determinism: re-slice the newest layer-truncated send of
	// the base-only viewer from its recorded subscription and compare with
	// the captured original, modulo the retransmit flag.
	v := views[1]
	v.mu.Lock()
	if len(v.records) == 0 {
		v.mu.Unlock()
		t.Fatal("viewer 1 has no sent records")
	}
	rec := v.records[len(v.records)-1]
	v.mu.Unlock()
	if rec.layers != 1 {
		t.Fatalf("viewer 1's last record has layers=%d, want 1", rec.layers)
	}
	for frag := uint32(0); frag < uint32(rec.n); frag++ {
		pkt := v.rebuildPacket(rec.firstSeq + frag)
		if pkt == nil {
			t.Fatalf("rebuildPacket returned nil for cached fragment %d", frag)
		}
		if pkt[3]&FlagRetransmit == 0 {
			t.Fatalf("rebuilt fragment %d lacks FlagRetransmit", frag)
		}
		pkt[3] &^= FlagRetransmit
		watches[1].mu.Lock()
		orig := watches[1].bySeq[rec.firstSeq+frag]
		watches[1].mu.Unlock()
		if !bytes.Equal(pkt, orig) {
			t.Fatalf("rebuilt fragment %d differs from the original send", frag)
		}
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	for i, w := range watches {
		for _, f := range w.sink.finish(t, len(frames)) {
			if f.Status != FrameDecoded {
				t.Fatalf("viewer %d frame %d: %v (%v)", i, f.Index, f.Status, f.Err)
			}
		}
		if err := views[i].Err(); err != nil {
			t.Fatalf("viewer %d: %v", i, err)
		}
	}
	// The no-config viewer: untouched stream, no FlagLayered anywhere.
	if _, layered, _ := watches[0].counts(); layered != 0 {
		t.Fatalf("full viewer saw %d layered packets", layered)
	}
	m0, m1 := views[0].Metrics(), views[1].Metrics()
	if m0.SubLayers != 0 {
		t.Fatalf("full viewer latched a subscription: %+v", m0)
	}
	// The base-only viewer: every data packet layered, strictly less wire.
	d1, layered1, parity1 := watches[1].counts()
	if layered1 != d1 || d1 == 0 {
		t.Fatalf("viewer 1: %d of %d data packets layered", layered1, d1)
	}
	if parity1 == 0 {
		t.Fatal("viewer 1 sent no parity")
	}
	if m1.SubLayers != 1 || m1.LayerDownswitches == 0 {
		t.Fatalf("viewer 1 subscription state: %+v", m1)
	}
	if m1.WireBytes >= m0.WireBytes {
		t.Fatalf("viewer 1 wire bytes %d not below full %d", m1.WireBytes, m0.WireBytes)
	}
}
