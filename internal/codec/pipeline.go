package codec

// Split-phase encoding for the streaming pipeline (pcc/stream).
//
// EncodeFrame runs both halves of a frame back to back on the encoder's
// device. The split-phase API below separates them so a pipeline can
// overlap the geometry encode of frame N+1 with the attribute encode of
// frame N — the frame-granularity analogue of the paper's intra-frame
// parallelism (the geometry half touches no mutable encoder state, while
// the attribute half owns the GOP position and the I-frame reference).

import (
	"fmt"

	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/interframe"
	"repro/internal/morton"
)

// GeometryIntermediate carries the geometry phase's output into the
// attribute phase. It is produced by EncodeGeometryOn and consumed exactly
// once by FinishFrame.
type GeometryIntermediate struct {
	// cloud is retained for designs whose encode cannot be split; their
	// whole frame is coded inside FinishFrame.
	cloud  *geom.VoxelCloud
	frame  *EncodedFrame
	sorted []morton.Keyed
	// stageDelta is the "Geometry" stage cost alone (FrameStats.GeometryTime);
	// phaseDelta additionally includes the optional geometry entropy pass.
	stageDelta edgesim.Snapshot
	phaseDelta edgesim.Snapshot
	split      bool
	// gs is the geometry arena backing sorted; FinishFrame returns it to
	// the encoder's pool once the frame is complete.
	gs *geomScratch
	// plan is the frame's tile partition (empty cuts = untiled). Its slices
	// alias gs and are valid until FinishFrame releases the arena.
	plan tilePlan
}

// Points returns the frame's (deduplicated) point count, or the raw count
// for designs without a split geometry phase.
func (g *GeometryIntermediate) Points() int {
	if g.split {
		return len(g.sorted)
	}
	return g.cloud.Len()
}

// EncodeGeometryOn runs the geometry half of the next frame on dev, which
// may be a different device from the encoder's own (the pipeline gives each
// stage its own device so concurrent stages keep independent ledgers).
//
// For the proposed designs this executes the parallel geometry pipeline;
// the baselines (TMC13, CWIPC) interleave geometry and attribute state, so
// for them this only captures the input and the whole frame is coded in
// FinishFrame. It is safe to call concurrently with FinishFrame of an
// earlier frame.
func (e *Encoder) EncodeGeometryOn(dev *edgesim.Device, vc *geom.VoxelCloud) (*GeometryIntermediate, error) {
	if vc.Len() == 0 {
		return nil, ErrEmptyFrame
	}
	switch e.opts.Design {
	case IntraOnly, IntraInterV1, IntraInterV2:
		return e.proposedGeometry(dev, vc)
	case TMC13, CWIPC:
		return &GeometryIntermediate{cloud: vc}, nil
	default:
		return nil, fmt.Errorf("codec: unknown design %v", e.opts.Design)
	}
}

// FinishFrame completes a frame started by EncodeGeometryOn: it runs the
// attribute half on the encoder's own device, decides I vs P from the GOP
// position, and performs the reference-frame handoff under the encoder's
// lock. Frames MUST be finished in their submission order (P-frames
// predict from the preceding I); only one FinishFrame may run at a time.
func (e *Encoder) FinishFrame(g *GeometryIntermediate) (*EncodedFrame, FrameStats, error) {
	e.applyKnobs()
	isP := e.opts.Design.UsesInter() && e.frameIdx%e.opts.GOP != 0 && e.hasRef()
	if e.takeForceI() {
		isP = false
		e.frameIdx = 0 // restart the GOP so the following frames predict from this I
	}

	var (
		frame     *EncodedFrame
		geomDelta edgesim.Snapshot
		attrDelta edgesim.Snapshot
		total     edgesim.Snapshot
		err       error
	)
	if g.split {
		frame, attrDelta, err = e.proposedAttr(g, isP)
		e.releaseGeom(g)
		geomDelta = g.stageDelta
		// phaseDelta already contains the geometry stage (plus the optional
		// entropy pass); the frame total is both phases end to end.
		total = edgesim.Snapshot{
			SimTime: g.phaseDelta.SimTime + attrDelta.SimTime,
			EnergyJ: g.phaseDelta.EnergyJ + attrDelta.EnergyJ,
		}
	} else {
		start := e.dev.Snapshot()
		switch e.opts.Design {
		case TMC13:
			frame, geomDelta, attrDelta, err = e.encodeTMC13(g.cloud)
		case CWIPC:
			frame, geomDelta, attrDelta, err = e.encodeCWIPC(g.cloud, isP)
		default:
			return nil, FrameStats{}, fmt.Errorf("codec: unknown design %v", e.opts.Design)
		}
		total = e.dev.Since(start)
	}
	if err != nil {
		return nil, FrameStats{}, err
	}

	st := FrameStats{
		Type:         frame.Type,
		Points:       int(frame.NumPoints),
		SizeBytes:    frame.Size(),
		GeometryTime: geomDelta.SimTime,
		AttrTime:     attrDelta.SimTime,
		TotalTime:    total.SimTime,
		EnergyJ:      total.EnergyJ,
		Inter:        e.lastInterStats,
	}
	e.lastInterStats = interframe.Stats{}
	e.frameIdx++
	e.applyRateControl(st)
	return frame, st, nil
}
