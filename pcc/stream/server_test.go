package stream

// Fan-out server tests: one shared encode broadcast to N viewers, each
// with its own receiver, queue, sequence space, and retransmit buffer.
// The acceptance claims under test:
//
//   - encode-once: with N viewers attached the shared pipeline encodes
//     each submitted frame exactly once (no per-viewer re-encode);
//   - late join: a viewer attached mid-GOP starts from the cached
//     keyframe and decodes immediately, with zero encoder refreshes;
//   - coalescing: duplicate NACK seqs answer once per viewer, and
//     concurrent refresh requests cost at most one GOP restart;
//   - isolation: a slow viewer's overflow resolves inside its own queue
//     (forced I-frame resync) while the stream stays decodable.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
)

// viewerSink wires one viewer's packet stream into its own Receiver,
// collecting frame fates. PacketOut runs on the viewer's sender goroutine
// (and, for retransmits, on whichever goroutine calls HandleControl), so
// ingest is serialized by a mutex.
type viewerSink struct {
	mu       sync.Mutex
	recv     *Receiver
	outcomes []DecodedFrame
}

func newViewerSink(opts codec.Options) *viewerSink {
	vs := &viewerSink{}
	vs.recv = NewReceiver(ReceiverConfig{
		Options: opts,
		OnFrame: func(f DecodedFrame) {
			vs.outcomes = append(vs.outcomes, f)
		},
	})
	return vs
}

func (vs *viewerSink) packetOut(_ context.Context, pkt []byte) error {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	vs.recv.Ingest(pkt)
	return nil
}

func (vs *viewerSink) finish(t *testing.T, totalFrames int) []DecodedFrame {
	t.Helper()
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if err := vs.recv.Finish(totalFrames); err != nil {
		t.Fatalf("receiver finish: %v", err)
	}
	return vs.outcomes
}

// With N viewers attached, every submitted frame is encoded exactly once
// and every viewer decodes the full stream byte-correct — the fan-out
// amortization claim.
func TestServerEncodeOnceFanOut(t *testing.T) {
	frames := testFrames(t, 9)
	opts := testOptions(codec.IntraInterV1)
	const nViewers = 4

	srv := NewServer(context.Background(), ServerConfig{Options: opts, ViewerQueue: 32})
	sinks := make([]*viewerSink, nViewers)
	views := make([]*Viewer, nViewers)
	for i := range sinks {
		sinks[i] = newViewerSink(opts)
		v, err := srv.Attach(ViewerConfig{PacketOut: sinks[i].packetOut})
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}

	for _, f := range frames {
		if err := srv.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	m := srv.Metrics()
	if m.FramesEncoded != int64(len(frames)) {
		t.Fatalf("FramesEncoded = %d with %d viewers, want %d (encode-once)",
			m.FramesEncoded, nViewers, len(frames))
	}
	if m.Viewers != nViewers {
		t.Fatalf("Viewers = %d, want %d", m.Viewers, nViewers)
	}
	for i, vs := range sinks {
		outcomes := vs.finish(t, len(frames))
		if len(outcomes) != len(frames) {
			t.Fatalf("viewer %d: %d outcomes, want %d", i, len(outcomes), len(frames))
		}
		for _, f := range outcomes {
			if f.Status != FrameDecoded {
				t.Fatalf("viewer %d frame %d: %v (%v), want decoded", i, f.Index, f.Status, f.Err)
			}
		}
		vm := views[i].Metrics()
		if vm.FramesSent != int64(len(frames)) {
			t.Fatalf("viewer %d FramesSent = %d, want %d", i, vm.FramesSent, len(frames))
		}
		if vm.FramesDropped != 0 {
			t.Fatalf("viewer %d dropped %d frames on an uncontended queue", i, vm.FramesDropped)
		}
	}
	// Distinct sequence spaces: every viewer numbers its own packets from 0.
	for i, v := range views {
		if vm := v.Metrics(); vm.Packets == 0 {
			t.Fatalf("viewer %d sent no packets", i)
		}
	}
}

// A viewer attached mid-GOP receives the cached keyframe as its frame 0
// (packets marked FlagCached), decodes from it immediately, and triggers
// no encoder refresh — the late-join claim.
func TestServerLateJoinCachedKeyframe(t *testing.T) {
	frames := testFrames(t, 9)
	opts := testOptions(codec.IntraInterV1)

	srv := NewServer(context.Background(), ServerConfig{Options: opts, ViewerQueue: 32})

	// Stream the first six frames (I P P I P P) to completion.
	for _, f := range frames[:6] {
		if err := srv.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().FramesEncoded < 6 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the first six frames to encode")
		}
		time.Sleep(time.Millisecond)
	}

	// Late join: the cache holds the I-frame at source index 3.
	sink := newViewerSink(opts)
	v, err := srv.Attach(ViewerConfig{PacketOut: sink.packetOut})
	if err != nil {
		t.Fatal(err)
	}

	for _, f := range frames[6:] {
		if err := srv.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	vm := v.Metrics()
	// Cached I + the three live frames (I P P) after the join.
	if vm.FramesEnqueued != 4 {
		t.Fatalf("FramesEnqueued = %d, want 4 (cached I + 3 live)", vm.FramesEnqueued)
	}
	if !vm.CachedJoin {
		t.Fatal("CachedJoin = false, want true")
	}
	outcomes := sink.finish(t, int(vm.FramesEnqueued))
	if len(outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	if outcomes[0].Index != 0 || outcomes[0].Type != codec.IFrame {
		t.Fatalf("first frame = index %d type %v, want the cached I-frame at viewer index 0",
			outcomes[0].Index, outcomes[0].Type)
	}
	for _, f := range outcomes {
		if f.Status != FrameDecoded {
			t.Fatalf("frame %d: %v (%v), want decoded — the cached join must be decodable",
				f.Index, f.Status, f.Err)
		}
	}
	if rm := sink.recv.Metrics(); rm.CachedReceived == 0 {
		t.Fatal("receiver saw no FlagCached packets")
	}

	m := srv.Metrics()
	if m.CachedJoins != 1 {
		t.Fatalf("CachedJoins = %d, want 1", m.CachedJoins)
	}
	if m.Refreshes != 0 {
		t.Fatalf("Refreshes = %d, want 0 — a cached join must not force a re-encode", m.Refreshes)
	}
	if m.FramesEncoded != int64(len(frames)) {
		t.Fatalf("FramesEncoded = %d, want %d — the late join re-encoded", m.FramesEncoded, len(frames))
	}
}

// Two viewers NACKing the same lost fragment (with duplicated seqs inside
// each message) get exactly one retransmit each, and their simultaneous
// refresh requests coalesce into a single GOP restart.
func TestServerControlCoalescing(t *testing.T) {
	frames := testFrames(t, 7) // I P P I P P I; the next frame would be P
	opts := testOptions(codec.IntraInterV1)

	srv := NewServer(context.Background(), ServerConfig{Options: opts, ViewerQueue: 32})
	type capture struct {
		mu   sync.Mutex
		pkts [][]byte
	}
	caps := [2]*capture{{}, {}}
	views := [2]*Viewer{}
	for i := range views {
		c := caps[i]
		v, err := srv.Attach(ViewerConfig{PacketOut: func(_ context.Context, p []byte) error {
			c.mu.Lock()
			c.pkts = append(c.pkts, append([]byte(nil), p...))
			c.mu.Unlock()
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}

	for _, f := range frames {
		if err := srv.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for both senders to drain so the retransmit buffers are full
	// and no encode is in flight (the server must still be live: detach
	// frees the retransmit buffer).
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, v := range views {
			if v.Metrics().FramesSent < int64(len(frames)) {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for senders to drain")
		}
		time.Sleep(time.Millisecond)
	}

	// Both viewers NACK the same sequence number, tripled: one retransmit
	// per viewer, answered from each viewer's own buffer.
	for i, v := range views {
		caps[i].mu.Lock()
		before := len(caps[i].pkts)
		caps[i].mu.Unlock()
		if err := srv.HandleControl(Control{Kind: ControlNACK, StreamID: v.StreamID(),
			Seqs: []uint32{2, 2, 2}}); err != nil {
			t.Fatal(err)
		}
		vm := v.Metrics()
		if vm.Retransmits != 1 {
			t.Fatalf("viewer %d Retransmits = %d after NACK [2,2,2], want 1", i, vm.Retransmits)
		}
		if vm.NACKsReceived != 1 {
			t.Fatalf("viewer %d NACKsReceived = %d, want 1", i, vm.NACKsReceived)
		}
		caps[i].mu.Lock()
		after := len(caps[i].pkts)
		retx := caps[i].pkts[after-1]
		caps[i].mu.Unlock()
		if after-before != 1 {
			t.Fatalf("viewer %d emitted %d packets for NACK [2,2,2], want 1", i, after-before)
		}
		if retx[3]&FlagRetransmit == 0 {
			t.Fatalf("viewer %d retransmit lacks FlagRetransmit", i)
		}
	}

	// Both viewers request a refresh back-to-back: the first arms the
	// encoder, the second coalesces; the next submitted frame opens a
	// fresh GOP exactly once.
	for _, v := range views {
		if err := srv.HandleControl(Control{Kind: ControlRefresh, StreamID: v.StreamID()}); err != nil {
			t.Fatal(err)
		}
	}
	m := srv.Metrics()
	if m.RefreshesCoalesced != 1 {
		t.Fatalf("RefreshesCoalesced = %d after two concurrent refreshes, want 1", m.RefreshesCoalesced)
	}
	if m.Refreshes != 1 {
		t.Fatalf("Refreshes = %d, want 1 — the second request must not restart the GOP again", m.Refreshes)
	}
	iBefore := m.IFrames

	extra := testFrames(t, 8)[7]
	if err := srv.Submit(context.Background(), extra); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	m = srv.Metrics()
	if m.IFrames != iBefore+1 {
		t.Fatalf("IFrames = %d after the refresh, want %d (frame 7 forced to I)", m.IFrames, iBefore+1)
	}

	// Control messages for a detached stream id are dropped, not routed.
	views[0].Close()
	if err := srv.HandleControl(Control{Kind: ControlNACK, StreamID: views[0].StreamID(),
		Seqs: []uint32{2}}); err != nil {
		t.Fatal(err)
	}
	if vm := views[0].Metrics(); vm.NACKsReceived != 1 {
		t.Fatalf("detached viewer NACKsReceived = %d, want 1 (message dropped)", vm.NACKsReceived)
	}
	if vm := views[0].Metrics(); vm.RetxBuffered != 0 {
		t.Fatalf("detached viewer RetxBuffered = %d, want 0 (buffer freed)", vm.RetxBuffered)
	}
}

// Attaching and detaching viewers mid-GOP while the stream runs must be
// race-free: joins see either the cached keyframe or a skipped-P prefix,
// detaches free the retransmit buffer, and nothing panics or deadlocks.
// Run under -race.
func TestServerViewerChurn(t *testing.T) {
	frames := testFrames(t, 9)
	opts := testOptions(codec.IntraInterV1)

	srv := NewServer(context.Background(), ServerConfig{Options: opts, ViewerQueue: 4})
	stable, err := srv.Attach(ViewerConfig{}) // nil PacketOut: account only
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := srv.Attach(ViewerConfig{})
				if err != nil {
					return // server closed while we were attaching
				}
				time.Sleep(100 * time.Microsecond)
				v.Close()
				if vm := v.Metrics(); vm.RetxBuffered != 0 {
					t.Errorf("detached viewer retains %d packets", vm.RetxBuffered)
					return
				}
			}
		}()
	}

	for _, f := range frames {
		if err := srv.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	m := srv.Metrics()
	if m.FramesEncoded != int64(len(frames)) {
		t.Fatalf("FramesEncoded = %d, want %d — churn must not re-encode", m.FramesEncoded, len(frames))
	}
	if sm := stable.Metrics(); sm.FramesSent == 0 {
		t.Fatal("stable viewer sent nothing")
	}
	if _, err := srv.Attach(ViewerConfig{}); err == nil {
		t.Fatal("Attach after Close succeeded")
	}
}

// A slow viewer whose queue overflows is force-resynced: incoming
// I-frames flush the stale backlog, P-frames shed oldest-first, and the
// delivered subset still decodes — slow-viewer isolation in one queue.
func TestServerSlowViewerOverflowResync(t *testing.T) {
	frames := testFrames(t, 9) // I P P I P P I P P
	opts := testOptions(codec.IntraInterV1)

	srv := NewServer(context.Background(), ServerConfig{Options: opts})

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	sink := newViewerSink(opts)
	gated := func(ctx context.Context, p []byte) error {
		once.Do(func() {
			close(entered)
			<-release
		})
		return sink.packetOut(ctx, p)
	}
	v, err := srv.Attach(ViewerConfig{Queue: 2, PacketOut: gated})
	if err != nil {
		t.Fatal(err)
	}

	// Frame 0 reaches the sender, which blocks inside PacketOut with the
	// queue empty — from here the enqueue trace is deterministic.
	if err := srv.Submit(context.Background(), frames[0]); err != nil {
		t.Fatal(err)
	}
	<-entered
	for _, f := range frames[1:] {
		if err := srv.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().FramesEncoded < int64(len(frames)) {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the encode to finish")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue cap 2, sender stuck on frame 0. The broadcast order I P P I P
	// P I P P yields: [1 2] → I3 flushes → [3] → [3 4] → P5 sheds P4 →
	// [3 5] → I6 flushes → [6] → [6 7] → P8 sheds P7 → [6 8].
	close(release)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	vm := v.Metrics()
	if vm.FramesSent != 3 {
		t.Fatalf("FramesSent = %d, want 3 (frames 0, 6, 8)", vm.FramesSent)
	}
	if vm.FramesDropped != 6 {
		t.Fatalf("FramesDropped = %d, want 6", vm.FramesDropped)
	}
	if vm.Resyncs != 2 {
		t.Fatalf("Resyncs = %d, want 2 (one per I-frame hitting the full queue)", vm.Resyncs)
	}
	if vm.FramesEnqueued != int64(len(frames)) {
		t.Fatalf("FramesEnqueued = %d, want %d", vm.FramesEnqueued, len(frames))
	}

	// The surviving subset — I0, I6, P8 — decodes; the shed frames read as
	// sender drops (frame-index gaps without sequence gaps), not loss.
	outcomes := sink.finish(t, len(frames))
	decoded := 0
	for _, f := range outcomes {
		switch f.Index {
		case 0, 6, 8:
			if f.Status != FrameDecoded {
				t.Fatalf("frame %d: %v (%v), want decoded", f.Index, f.Status, f.Err)
			}
			decoded++
		}
	}
	if decoded != 3 {
		t.Fatalf("decoded %d of the surviving frames, want 3", decoded)
	}

	// The shared pipeline itself shed nothing: isolation means the slow
	// viewer's drops stay in the viewer's queue.
	if m := srv.Metrics(); m.Pipeline.Dropped != 0 {
		t.Fatalf("shared pipeline dropped %d frames, want 0", m.Pipeline.Dropped)
	}
}

// A viewer whose transport fails is isolated: its sender stops with the
// error while the server and the healthy viewers finish the stream.
func TestServerViewerErrorIsolation(t *testing.T) {
	frames := testFrames(t, 6)
	opts := testOptions(codec.IntraInterV1)

	srv := NewServer(context.Background(), ServerConfig{Options: opts, ViewerQueue: 32})
	sink := newViewerSink(opts)
	good, err := srv.Attach(ViewerConfig{PacketOut: sink.packetOut})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := srv.Attach(ViewerConfig{PacketOut: func(context.Context, []byte) error {
		return context.DeadlineExceeded // any transport error
	}})
	if err != nil {
		t.Fatal(err)
	}

	for _, f := range frames {
		if err := srv.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if bad.Err() == nil {
		t.Fatal("failed viewer reports no error")
	}
	if srv.Err() != nil {
		t.Fatalf("server failed with a viewer-local error: %v", srv.Err())
	}
	if gm := good.Metrics(); gm.FramesSent != int64(len(frames)) {
		t.Fatalf("healthy viewer sent %d frames, want %d", gm.FramesSent, len(frames))
	}
	outcomes := sink.finish(t, len(frames))
	for _, f := range outcomes {
		if f.Status != FrameDecoded {
			t.Fatalf("healthy viewer frame %d: %v, want decoded", f.Index, f.Status)
		}
	}
}

// Session.HandleControl coalesces duplicate sequence numbers within one
// NACK message: [s, s, s] answers with exactly one retransmit.
func TestSessionNACKDuplicateSeqsCoalesce(t *testing.T) {
	frames := testFrames(t, 3)
	opts := testOptions(codec.IntraOnly)

	var mu sync.Mutex
	var pkts [][]byte
	s := New(context.Background(), Config{Options: opts,
		PacketOut: func(_ context.Context, p []byte) error {
			mu.Lock()
			pkts = append(pkts, append([]byte(nil), p...))
			mu.Unlock()
			return nil
		}})
	col := NewCollector(s)
	for _, f := range frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	col.Wait()

	mu.Lock()
	before := len(pkts)
	mu.Unlock()
	if err := s.HandleControl(Control{Kind: ControlNACK, Seqs: []uint32{1, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	emitted := len(pkts) - before
	mu.Unlock()
	if emitted != 1 {
		t.Fatalf("NACK [1,1,1] emitted %d packets, want 1", emitted)
	}
	if m := s.Metrics(); m.Retransmits != 1 {
		t.Fatalf("Retransmits = %d, want 1", m.Retransmits)
	}
}
