package dataset

import (
	"bytes"
	"testing"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/morton"
)

const testScale = 0.03 // small frames keep the suite fast

func TestTableIPresets(t *testing.T) {
	specs := TableI()
	if len(specs) != 6 {
		t.Fatalf("Table I has %d videos, want 6", len(specs))
	}
	want := map[string][2]int{
		"redandblack": {300, 727070},
		"longdress":   {300, 834315},
		"loot":        {300, 793821},
		"soldier":     {300, 1075299},
		"andrew10":    {318, 1298699},
		"phil10":      {245, 1486648},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected video %q", s.Name)
			continue
		}
		if s.Frames != w[0] || s.PointsPerFrame != w[1] {
			t.Errorf("%s: (%d frames, %d pts), want (%d, %d)", s.Name, s.Frames, s.PointsPerFrame, w[0], w[1])
		}
		if (s.Dataset == "MVUB") != s.UpperBody {
			t.Errorf("%s: MVUB videos are the upper-body captures", s.Name)
		}
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("loot")
	if err != nil || s.Name != "loot" {
		t.Fatalf("SpecByName(loot): %v %v", s, err)
	}
	if _, err := SpecByName("nosuch"); err == nil {
		t.Fatal("unknown name must fail")
	}
}

func TestFrameCountNearTarget(t *testing.T) {
	for _, name := range []string{"redandblack", "andrew10"} {
		spec, _ := SpecByName(name)
		g := NewGenerator(spec, testScale)
		vc, err := g.Frame(0)
		if err != nil {
			t.Fatal(err)
		}
		target := g.TargetPoints()
		if vc.Len() < target*80/100 || vc.Len() > target*120/100 {
			t.Errorf("%s: %d voxels, want within 20%% of %d", name, vc.Len(), target)
		}
		if err := vc.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if vc.Depth != Depth {
			t.Errorf("%s: depth %d, want %d", name, vc.Depth, Depth)
		}
	}
}

func TestFrameRangeChecked(t *testing.T) {
	g := NewGenerator(TableI()[0], testScale)
	if _, err := g.Frame(-1); err == nil {
		t.Error("negative frame must fail")
	}
	if _, err := g.Frame(g.Spec.Frames); err == nil {
		t.Error("past-the-end frame must fail")
	}
}

func TestDeterminism(t *testing.T) {
	spec, _ := SpecByName("loot")
	a, err := NewGenerator(spec, testScale).Frame(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(spec, testScale).Frame(3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("nondeterministic count: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Voxels {
		if a.Voxels[i] != b.Voxels[i] {
			t.Fatalf("nondeterministic voxel %d", i)
		}
	}
}

func TestVideosDiffer(t *testing.T) {
	a, _ := NewGenerator(TableI()[0], testScale).Frame(0)
	b, _ := NewGenerator(TableI()[2], testScale).Frame(0)
	if a.Len() == b.Len() {
		same := true
		for i := range a.Voxels {
			if a.Voxels[i] != b.Voxels[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different videos produced identical frames")
		}
	}
}

// The generator must produce the spatial attribute locality Fig. 3a relies
// on: finer Morton segmentation gives smaller attribute ranges.
func TestSpatialLocalityPresent(t *testing.T) {
	spec, _ := SpecByName("redandblack")
	vc, err := NewGenerator(spec, testScale).Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	keyed := morton.EncodeCloud(vc)
	morton.Sort(keyed)
	sorted := morton.Voxels(keyed)
	coarse := metrics.NewCDF(metrics.SegmentAttributeRanges(sorted, 10, 0))
	fine := metrics.NewCDF(metrics.SegmentAttributeRanges(sorted, 2000, 0))
	if fine.Median() >= coarse.Median() {
		t.Fatalf("no spatial locality: fine median %v >= coarse %v", fine.Median(), coarse.Median())
	}
	if fine.Median() > 40 {
		t.Fatalf("fine-grain attribute range median %v too large — texture not smooth enough", fine.Median())
	}
}

// The generator must produce temporal locality: consecutive frames'
// Morton-sorted blocks are similar (small best-match deltas).
func TestTemporalLocalityPresent(t *testing.T) {
	spec, _ := SpecByName("loot")
	g := NewGenerator(spec, testScale)
	f0, err := g.Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := g.Frame(1)
	if err != nil {
		t.Fatal(err)
	}
	sortVox := func(vc *geom.VoxelCloud) []geom.Voxel {
		k := morton.EncodeCloud(vc)
		morton.Sort(k)
		return morton.Voxels(k)
	}
	i := sortVox(f0)
	p := sortVox(f1)
	deltas := metrics.NewCDF(metrics.SegmentTemporalDeltas(i, p, 1000, 10))
	// Most blocks should have small mean squared colour distance to their
	// best match in the previous frame.
	if m := deltas.Median(); m > 400 {
		t.Fatalf("temporal delta median %v too large — consecutive frames too different", m)
	}
	// And a quarter-period-away frame (maximum pose difference — the
	// motion is periodic, so half/full periods return to the same pose)
	// must be worse than a consecutive pair.
	fFar, err := g.Frame(int(g.Spec.MotionPeriod) / 4)
	if err != nil {
		t.Fatal(err)
	}
	far := metrics.NewCDF(metrics.SegmentTemporalDeltas(i, sortVox(fFar), 1000, 10))
	if far.Median() <= deltas.Median() {
		t.Fatalf("quarter-period deltas %v <= consecutive %v: motion model produces no drift",
			far.Median(), deltas.Median())
	}
}

func TestUpperBodyHasNoLegs(t *testing.T) {
	spec, _ := SpecByName("phil10")
	vc, err := NewGenerator(spec, testScale).Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	// Upper-body frames should have no voxels in the lower ~quarter of the
	// occupied Y range (legs would be there).
	minY, maxY := ^uint32(0), uint32(0)
	for _, v := range vc.Voxels {
		if v.Y < minY {
			minY = v.Y
		}
		if v.Y > maxY {
			maxY = v.Y
		}
	}
	full, _ := SpecByName("soldier")
	fvc, err := NewGenerator(full, testScale).Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	fminY := ^uint32(0)
	for _, v := range fvc.Voxels {
		if v.Y < fminY {
			fminY = v.Y
		}
	}
	// The full body reaches much lower than the upper-body capture within
	// the same normalized lattice. (Voxelize rescales, so compare spans.)
	span := float64(maxY - minY)
	if span <= 0 {
		t.Fatal("degenerate Y span")
	}
}

func TestFrameIORoundTrip(t *testing.T) {
	spec, _ := SpecByName("loot")
	vc, err := NewGenerator(spec, 0.01).Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, vc); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Depth != vc.Depth || got.Len() != vc.Len() {
		t.Fatalf("header mismatch: %d/%d vs %d/%d", got.Depth, got.Len(), vc.Depth, vc.Len())
	}
	for i := range vc.Voxels {
		if got.Voxels[i] != vc.Voxels[i] {
			t.Fatalf("voxel %d mismatch", i)
		}
	}
}

func TestReadFrameErrors(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := ReadFrame(bytes.NewReader([]byte("XXXX\x0a\x00\x00\x00\x00"))); err == nil {
		t.Error("bad magic must fail")
	}
	// Truncated body.
	var buf bytes.Buffer
	vc := &geom.VoxelCloud{Depth: 5, Voxels: []geom.Voxel{{X: 1}, {Y: 2}}}
	if err := WriteFrame(&buf, vc); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadFrame(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated body must fail")
	}
	// Implausible count.
	bad := append([]byte{}, raw[:5]...)
	bad = append(bad, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Error("absurd count must fail")
	}
}

func BenchmarkGenerateFrame(b *testing.B) {
	spec, _ := SpecByName("redandblack")
	g := NewGenerator(spec, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Frame(i % spec.Frames); err != nil {
			b.Fatal(err)
		}
	}
}
