package geom

import "math"

// GridIndex is a uniform spatial hash over a voxel cloud, used for
// nearest-neighbour queries (geometry PSNR needs point-to-point distances
// between the original and the decoded cloud).
//
// Cells are cubes of side 2^cellShift lattice units; each cell stores the
// indices of the voxels it contains. Queries expand ring-by-ring around the
// query point's cell until a hit is found, then one extra ring to guarantee
// the true nearest neighbour.
type GridIndex struct {
	cloud     *VoxelCloud
	cellShift uint
	cells     map[uint64][]int32
}

// NewGridIndex builds an index over cloud. cellShift picks the cell size;
// 4 (16-voxel cells) is a good default for 1024^3 human-body frames.
func NewGridIndex(cloud *VoxelCloud, cellShift uint) *GridIndex {
	g := &GridIndex{
		cloud:     cloud,
		cellShift: cellShift,
		cells:     make(map[uint64][]int32, len(cloud.Voxels)/8+1),
	}
	for i, v := range cloud.Voxels {
		k := g.cellKey(v.X, v.Y, v.Z)
		g.cells[k] = append(g.cells[k], int32(i))
	}
	return g
}

func (g *GridIndex) cellKey(x, y, z uint32) uint64 {
	return uint64(x>>g.cellShift)<<42 | uint64(y>>g.cellShift)<<21 | uint64(z>>g.cellShift)
}

// Nearest returns the index of the voxel nearest to q and the squared
// distance. Returns (-1, 0) for an empty cloud.
func (g *GridIndex) Nearest(q Voxel) (idx int, dist2 float64) {
	if len(g.cloud.Voxels) == 0 {
		return -1, 0
	}
	cx := int64(q.X >> g.cellShift)
	cy := int64(q.Y >> g.cellShift)
	cz := int64(q.Z >> g.cellShift)

	best := -1
	bestD := math.Inf(1)
	scan := func(ring int64) {
		for dx := -ring; dx <= ring; dx++ {
			for dy := -ring; dy <= ring; dy++ {
				for dz := -ring; dz <= ring; dz++ {
					// Only the shell of the ring: interior rings already scanned.
					if ring > 0 && abs64(dx) != ring && abs64(dy) != ring && abs64(dz) != ring {
						continue
					}
					x, y, z := cx+dx, cy+dy, cz+dz
					if x < 0 || y < 0 || z < 0 {
						continue
					}
					key := uint64(x)<<42 | uint64(y)<<21 | uint64(z)
					for _, i := range g.cells[key] {
						d := q.Dist2(g.cloud.Voxels[i])
						if d < bestD {
							bestD = d
							best = int(i)
						}
					}
				}
			}
		}
	}

	// Expand until a hit, then one guard ring (a closer point can live in
	// the next shell when the hit sits near a cell corner). An exact hit
	// cannot be beaten, so skip the guard ring for it — the common case
	// when comparing a cloud against a lossless reconstruction.
	maxRing := int64(g.cloud.GridSize()>>g.cellShift) + 1
	for ring := int64(0); ring <= maxRing; ring++ {
		scan(ring)
		if best >= 0 {
			if bestD > 0 {
				scan(ring + 1)
			}
			break
		}
	}
	return best, bestD
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
