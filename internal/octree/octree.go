// Package octree implements the BASELINE sequential octree geometry codec
// (PCL [72] / TMC13 [56] style, Sec. IV-A1): points are inserted one by one,
// each insertion updating the global tree under what the paper calls a
// "macro lock" — the data structure after point i depends on points 0..i-1,
// so the construction cannot be parallelized. Serialization then walks the
// finished tree depth-first, emitting one occupancy byte per internal node.
//
// Two variants are provided:
//
//   - Tree: fixed-depth tree over an already-voxelized lattice. This is what
//     the TMC13-like codec in internal/codec uses (lossless geometry).
//   - DynamicTree: the PCL-flavoured tree whose bounding cube starts at the
//     first point and expands by powers of two as out-of-box points arrive
//     (the Fig. 5 worked example).
package octree

import (
	"errors"
	"fmt"

	"repro/internal/geom"
)

// Node is one octree node. Children are indexed by octant: bit 0 = x half,
// bit 1 = y half, bit 2 = z half (the Morton digit convention, so a DFS in
// child order visits leaves in Morton order).
type Node struct {
	Children [8]*Node
}

// Occupancy returns the 8-bit occupancy mask of the node (bit i set iff
// child i exists).
func (n *Node) Occupancy() byte {
	var b byte
	for i, c := range n.Children {
		if c != nil {
			b |= 1 << uint(i)
		}
	}
	return b
}

// Tree is a fixed-depth sequential octree over a 2^Depth lattice.
type Tree struct {
	Depth     uint
	Root      *Node
	NumPoints int // inserted points (duplicates counted once)
	NumNodes  int // total nodes including root and leaves
	// LevelNodes[l] is the node count at level l (0 = root). Used by the
	// cost model: serialization visits every node.
	LevelNodes []int
}

// NewTree returns an empty tree of the given depth (1..21).
func NewTree(depth uint) (*Tree, error) {
	if depth == 0 || depth > 21 {
		return nil, fmt.Errorf("octree: depth %d out of range [1,21]", depth)
	}
	return &Tree{
		Depth:      depth,
		Root:       &Node{},
		NumNodes:   1,
		LevelNodes: make([]int, depth+1),
	}, nil
}

// octant returns the child index of (x,y,z) at tree level `level`, where
// level 0 examines the highest coordinate bit.
func octant(x, y, z uint32, depth, level uint) int {
	shift := depth - 1 - level
	return int(x>>shift&1) | int(y>>shift&1)<<1 | int(z>>shift&1)<<2
}

// Insert adds one voxel, updating the tree point-by-point (the sequential
// bottleneck this paper attacks). Inserting a duplicate voxel is a no-op
// for the structure. Reports whether a new leaf was created.
func (t *Tree) Insert(x, y, z uint32) bool {
	if t.LevelNodes == nil {
		t.LevelNodes = make([]int, t.Depth+1)
	}
	if t.LevelNodes[0] == 0 {
		t.LevelNodes[0] = 1
	}
	n := t.Root
	created := false
	for level := uint(0); level < t.Depth; level++ {
		o := octant(x, y, z, t.Depth, level)
		if n.Children[o] == nil {
			n.Children[o] = &Node{}
			t.NumNodes++
			t.LevelNodes[level+1]++
			created = true
		}
		n = n.Children[o]
	}
	if created {
		t.NumPoints++
	}
	return created
}

// Build constructs a tree from a voxel cloud by sequential insertion.
func Build(vc *geom.VoxelCloud) (*Tree, error) {
	t, err := NewTree(vc.Depth)
	if err != nil {
		return nil, err
	}
	for _, v := range vc.Voxels {
		t.Insert(v.X, v.Y, v.Z)
	}
	return t, nil
}

// Serialize walks the tree depth-first (pre-order, children in octant
// order) and emits one occupancy byte per internal node. Together with the
// depth this is a complete, lossless description of the occupied voxel set.
func (t *Tree) Serialize() []byte {
	out := make([]byte, 0, t.NumNodes)
	var walk func(n *Node, level uint)
	walk = func(n *Node, level uint) {
		if level == t.Depth {
			return
		}
		out = append(out, n.Occupancy())
		for i := 0; i < 8; i++ {
			if c := n.Children[i]; c != nil {
				walk(c, level+1)
			}
		}
	}
	walk(t.Root, 0)
	return out
}

// ErrTruncated reports a serialized stream that ended early.
var ErrTruncated = errors.New("octree: truncated occupancy stream")

// Deserialize reconstructs the voxel set from an occupancy stream produced
// by Serialize. Voxels are returned in Morton order (the DFS order).
func Deserialize(stream []byte, depth uint) ([]geom.Voxel, error) {
	if depth == 0 || depth > 21 {
		return nil, fmt.Errorf("octree: depth %d out of range [1,21]", depth)
	}
	var out []geom.Voxel
	pos := 0
	var walk func(x, y, z uint32, level uint) error
	walk = func(x, y, z uint32, level uint) error {
		if level == depth {
			out = append(out, geom.Voxel{X: x, Y: y, Z: z})
			return nil
		}
		if pos >= len(stream) {
			return ErrTruncated
		}
		occ := stream[pos]
		pos++
		if occ == 0 {
			return fmt.Errorf("octree: internal node with zero occupancy at byte %d", pos-1)
		}
		shift := depth - 1 - level
		for i := uint32(0); i < 8; i++ {
			if occ>>i&1 == 0 {
				continue
			}
			cx := x | ((i & 1) << shift)
			cy := y | ((i >> 1 & 1) << shift)
			cz := z | ((i >> 2 & 1) << shift)
			if err := walk(cx, cy, cz, level+1); err != nil {
				return err
			}
		}
		return nil
	}
	if len(stream) == 0 {
		return nil, nil // empty tree
	}
	if err := walk(0, 0, 0, 0); err != nil {
		return nil, err
	}
	if pos != len(stream) {
		return nil, fmt.Errorf("octree: %d trailing bytes in occupancy stream", len(stream)-pos)
	}
	return out, nil
}

// CountLevels recomputes per-level node counts by traversal (cross-check
// for the incrementally-maintained LevelNodes).
func (t *Tree) CountLevels() []int {
	counts := make([]int, t.Depth+1)
	var walk func(n *Node, level uint)
	walk = func(n *Node, level uint) {
		counts[level]++
		if level == t.Depth {
			return
		}
		for _, c := range n.Children {
			if c != nil {
				walk(c, level+1)
			}
		}
	}
	walk(t.Root, 0)
	return counts
}
