package codec

import "testing"

func TestRateControlUpdateDirection(t *testing.T) {
	rc := RateControl{TargetBitsPerPoint: 20}.normalized()
	// Over budget -> threshold must rise (more reuse).
	if got := rc.update(100, 40); got <= 100 {
		t.Fatalf("over budget: threshold %v did not rise", got)
	}
	// Under budget -> threshold must fall (better quality).
	if got := rc.update(100, 10); got >= 100 {
		t.Fatalf("under budget: threshold %v did not fall", got)
	}
	// On target -> unchanged.
	if got := rc.update(100, 20); got != 100 {
		t.Fatalf("on target: threshold %v changed", got)
	}
	// Clamps.
	if got := rc.update(1, 1); got < 1 {
		t.Fatalf("below MinThreshold: %v", got)
	}
	rc.MaxThreshold = 150
	if got := rc.update(140, 1e9); got > 150 {
		t.Fatalf("above MaxThreshold: %v", got)
	}
	// Degenerate achieved rate is a no-op.
	if got := rc.update(100, 0); got != 100 {
		t.Fatalf("zero rate: %v", got)
	}
}

func TestRateControlDisabledByDefault(t *testing.T) {
	if (RateControl{}).Enabled() {
		t.Fatal("zero value must be disabled")
	}
	o := OptionsFor(IntraInterV2)
	if o.Rate.Enabled() {
		t.Fatal("paper defaults must not enable rate control")
	}
}

func TestRateControlConvergesOnStream(t *testing.T) {
	fs := frames(t, 3)
	// Establish the open-loop rates of the two extreme thresholds, then
	// target in between and check the controller steers the threshold.
	openLoop := func(th float64) float64 {
		o := scaledOpts(IntraInterV2, fs[0].Len())
		o.Inter.Threshold = th
		enc := NewEncoder(dev(), o)
		var bits, pts float64
		for gop := 0; gop < 2; gop++ {
			for _, f := range fs {
				_, st, err := enc.EncodeFrame(f)
				if err != nil {
					t.Fatal(err)
				}
				if st.Type == PFrame {
					bits += float64(st.SizeBytes) * 8
					pts += float64(st.Points)
				}
			}
		}
		return bits / pts
	}
	loose := openLoop(2000) // heavy reuse, low rate
	tight := openLoop(2)    // no reuse, high rate
	if loose >= tight {
		t.Fatalf("rate landscape inverted: loose %v >= tight %v", loose, tight)
	}
	target := (loose + tight) / 2

	o := scaledOpts(IntraInterV2, fs[0].Len())
	o.Inter.Threshold = 2 // start far from the answer
	o.Rate = RateControl{TargetBitsPerPoint: target, Gain: 0.5}
	enc := NewEncoder(dev(), o)
	var lastBPP float64
	for gop := 0; gop < 8; gop++ {
		for _, f := range fs {
			_, st, err := enc.EncodeFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			if st.Type == PFrame {
				lastBPP = float64(st.SizeBytes) * 8 / float64(st.Points)
			}
		}
	}
	if enc.Threshold() == 2 {
		t.Fatal("controller never moved the threshold")
	}
	// Converged within 25% of target.
	if lastBPP < target*0.75 || lastBPP > target*1.25 {
		t.Fatalf("achieved %.1f bpp, target %.1f (threshold %.1f)", lastBPP, target, enc.Threshold())
	}
}
