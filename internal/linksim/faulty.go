package linksim

// FaultyLink injects packet-level faults — drops, duplicates, reordering,
// and burst outages — into a modelled Link. The paper's transmit stage
// (Sec. II-A) assumes a wireless hop, and wireless hops lose packets: this
// is the adversary the pcc/stream packet framing and receiver recovery are
// built against.
//
// All faults are driven by one seeded PRNG, so a given (Link, FaultProfile)
// pair replays the exact same fault sequence every run — failures found in
// CI or a loss sweep reproduce from the seed alone.

import (
	"math/rand"
	"sync"
)

// FaultProfile configures the fault injector. The zero value injects no
// faults (a FaultyLink then behaves like its underlying Link, packet by
// packet).
type FaultProfile struct {
	// DropRate is the independent per-packet loss probability in [0,1).
	DropRate float64
	// DupRate is the probability a delivered packet arrives twice.
	DupRate float64
	// ReorderRate is the probability a packet is held back and delivered
	// after its successor (a one-slot swap, the common wireless reorder).
	ReorderRate float64
	// BurstEvery, when > 0, schedules a burst outage roughly every
	// BurstEvery packets (uniform in [BurstEvery/2, 3*BurstEvery/2]).
	BurstEvery int
	// BurstLen is the number of consecutive packets lost per burst
	// (default 4 when BurstEvery > 0).
	BurstLen int
	// DropEvery, when > 0, deterministically drops every DropEvery-th send
	// attempt (1-based), consuming no randomness — the PRNG stream is
	// identical with and without it. It is the fixture for FEC tests that
	// need exactly one loss per parity group at a known spacing.
	DropEvery int
	// Gilbert–Elliott correlated loss: a two-state Markov channel (Good,
	// loss-free; Bad, lossy) layered under the independent DropRate — the
	// standard model for wireless burst loss, where fades cluster drops
	// instead of spreading them uniformly. GEBadLoss > 0 enables the model.
	//
	// GEGoodToBad is the per-packet probability of falling into a fade
	// (default 0.02 when enabled); GEBadToGood of climbing out (default
	// 0.25, i.e. mean fade length 4 packets); GEBadLoss the loss
	// probability while faded. Enabled, every packet draws exactly two
	// extra floats (state transition, then loss-in-state), always in the
	// same order, so GE runs replay from the seed like every other fault.
	GEGoodToBad float64
	GEBadToGood float64
	GEBadLoss   float64
	// Seed seeds the fault PRNG; equal seeds replay equal fault sequences.
	Seed int64
}

// FaultStats counts the injector's decisions since creation.
type FaultStats struct {
	Sent           int64 // packets offered to the link (radio send attempts)
	Delivered      int64 // packet copies handed to the receiver
	Dropped        int64 // packets lost to independent drops
	BurstDrops     int64 // packets lost to burst outages
	ScheduledDrops int64 // packets lost to DropEvery
	GEDrops        int64 // packets lost in the Gilbert–Elliott Bad state
	GEBadSpells    int64 // fades entered (Good → Bad transitions)
	Duplicated     int64 // extra copies delivered
	Reordered      int64 // packets held back one slot
	Bursts         int64 // burst outages begun
}

// FaultyLink wraps a Link with deterministic fault injection. Create with
// NewFaultyLink. Safe for concurrent use, but the fault sequence is only
// reproducible when packets are sent from one goroutine in a fixed order.
type FaultyLink struct {
	link Link
	prof FaultProfile

	mu         sync.Mutex
	rng        *rand.Rand
	held       [][]byte // packet (plus any dup) delayed by a reorder
	untilBurst int      // packets until the next burst begins; <0 = never
	burstLeft  int      // packets remaining in the current burst
	geBad      bool     // Gilbert–Elliott state (false = Good)
	stats      FaultStats
}

// NewFaultyLink wraps l with the given fault profile.
func NewFaultyLink(l Link, p FaultProfile) *FaultyLink {
	if p.BurstEvery > 0 && p.BurstLen <= 0 {
		p.BurstLen = 4
	}
	if p.GEBadLoss > 0 {
		if p.GEGoodToBad <= 0 {
			p.GEGoodToBad = 0.02
		}
		if p.GEBadToGood <= 0 {
			p.GEBadToGood = 0.25
		}
	}
	f := &FaultyLink{link: l, prof: p, rng: rand.New(rand.NewSource(p.Seed))}
	f.untilBurst = -1
	if p.BurstEvery > 0 {
		f.untilBurst = f.nextBurstGap()
	}
	return f
}

func (f *FaultyLink) nextBurstGap() int {
	return f.prof.BurstEvery/2 + f.rng.Intn(f.prof.BurstEvery+1)
}

// Link returns the underlying fault-free link model.
func (f *FaultyLink) Link() Link { return f.link }

// Profile returns the fault profile in effect.
func (f *FaultyLink) Profile() FaultProfile {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.prof
}

// SetDropRate changes the independent per-packet loss probability mid-run —
// the step input for congestion-adaptation experiments. The PRNG stream is
// untouched (every packet draws the same floats regardless of the rate),
// so a run with a scheduled rate step is exactly as reproducible as a
// fixed-rate run.
func (f *FaultyLink) SetDropRate(r float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.prof.DropRate = r
}

// Stats snapshots the injector's counters.
func (f *FaultyLink) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Send offers one packet to the link. It returns the packet copies that
// reach the receiver — zero (dropped), one, or two (duplicated) — in
// arrival order, possibly including an earlier packet released from a
// reorder hold. The Cost is the radio cost of the send attempt, charged
// whether or not the packet survives (the transmitter spent the energy
// either way).
func (f *FaultyLink) Send(pkt []byte) ([][]byte, Cost, error) {
	cost, err := f.link.Transmit(int64(len(pkt)))
	if err != nil {
		return nil, Cost{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Sent++

	// Draw every fault decision each packet so the random sequence — and
	// therefore every later packet's fate — is independent of which
	// branches were taken. The Gilbert–Elliott draws are likewise
	// unconditional while the model is enabled: transition first, then
	// loss in the resulting state, so a packet can be lost by the very
	// fade it opens.
	pDrop, pDup, pReorder := f.rng.Float64(), f.rng.Float64(), f.rng.Float64()
	geDrop := false
	if f.prof.GEBadLoss > 0 {
		pState, pLoss := f.rng.Float64(), f.rng.Float64()
		if f.geBad {
			if pState < f.prof.GEBadToGood {
				f.geBad = false
			}
		} else if pState < f.prof.GEGoodToBad {
			f.geBad = true
			f.stats.GEBadSpells++
		}
		geDrop = f.geBad && pLoss < f.prof.GEBadLoss
	}

	dropped := true
	switch {
	case f.burstLeft > 0:
		f.burstLeft--
		f.stats.BurstDrops++
	case f.prof.DropEvery > 0 && f.stats.Sent%int64(f.prof.DropEvery) == 0:
		f.stats.ScheduledDrops++
	case geDrop:
		f.stats.GEDrops++
	case pDrop < f.prof.DropRate:
		f.stats.Dropped++
	default:
		dropped = false
	}
	if f.untilBurst > 0 {
		f.untilBurst--
		if f.untilBurst == 0 {
			f.burstLeft = f.prof.BurstLen
			f.stats.Bursts++
			f.untilBurst = f.nextBurstGap()
		}
	}

	var out [][]byte
	if !dropped {
		cur := [][]byte{pkt}
		if pDup < f.prof.DupRate {
			cur = append(cur, pkt)
			f.stats.Duplicated++
		}
		if pReorder < f.prof.ReorderRate && f.held == nil {
			f.held = cur
			f.stats.Reordered++
		} else {
			out = cur
		}
	}
	// A held packet is released after the next surviving packet, which
	// realizes the one-slot swap.
	if f.held != nil && len(out) > 0 {
		out = append(out, f.held...)
		f.held = nil
	}
	f.stats.Delivered += int64(len(out))
	return out, cost, nil
}

// Flush releases any packet still delayed by a reorder hold. Call it when
// the sender finishes, or a held final packet would never arrive.
func (f *FaultyLink) Flush() [][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.held
	f.held = nil
	f.stats.Delivered += int64(len(out))
	return out
}
