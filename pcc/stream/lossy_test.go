package stream

// End-to-end lossy-transport tests: a full Session streams real packets
// through a seeded linksim.FaultyLink into a Receiver, and every frame's
// fate is checked against the clean stream. These are the acceptance tests
// for the recovery design:
//
//   - at 5% random loss plus reordering, a 60-frame GOP-3 session decodes
//     ≥ 95% of frames;
//   - every delivered frame is either byte-correct or explicitly reported
//     concealed/skipped (no silent corruption);
//   - the whole run is deterministic from the fault seed.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/linksim"
	"repro/internal/metrics"
)

// lossyFrames generates n frames at an independent scale (the 60-frame
// acceptance run uses smaller clouds than the 6-frame pipeline tests).
func lossyFrames(t testing.TB, n int, scale float64) []*geom.VoxelCloud {
	t.Helper()
	spec, err := dataset.SpecByName("loot")
	if err != nil {
		t.Fatal(err)
	}
	g := dataset.NewGenerator(spec, scale)
	out := make([]*geom.VoxelCloud, n)
	for i := range out {
		if out[i], err = g.Frame(i); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

type lossyRun struct {
	outcomes []DecodedFrame
	recovery metrics.RecoverySnapshot
	sender   Metrics
	faults   linksim.FaultStats
	// reference holds the clean decode of the sender's own .pcv output —
	// the ground truth a byte-correct receiver must match.
	reference []*geom.VoxelCloud
}

// runLossy streams frames through cfg with the given fault profile and
// collects every outcome. It fails the test on any pipeline error.
func runLossy(t *testing.T, frames []*geom.VoxelCloud, prof linksim.FaultProfile, cfg Config) lossyRun {
	t.Helper()
	fl := linksim.NewFaultyLink(cfg.normalized().Link, prof)
	var run lossyRun
	pipe := NewLossyPipe(fl, ReceiverConfig{
		Options: cfg.Options,
		Mode:    cfg.Mode,
		// Feedback rides the reliable control path (no fault-PRNG draws),
		// so enabling it here keeps every run seed-deterministic while
		// letting adaptive sessions close the congestion loop.
		FeedbackEvery: 4,
		OnFrame:       func(f DecodedFrame) { run.outcomes = append(run.outcomes, f) },
	})
	var wire bytes.Buffer
	cfg.PacketOut = pipe.PacketOut
	cfg.Output = &wire

	s := New(context.Background(), cfg)
	pipe.Attach(s)
	col := NewCollector(s)
	for _, f := range frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	col.Wait()
	if err := pipe.Finish(len(frames)); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	run.recovery = pipe.Receiver().Metrics()
	run.sender = s.Metrics()
	run.faults = fl.Stats()

	vr, err := core.NewVideoReader(bytes.NewReader(wire.Bytes()), edgesim.NewXavier(cfg.Mode))
	if err != nil {
		t.Fatalf("reference stream: %v", err)
	}
	for {
		vc, _, err := vr.ReadFrame()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("reference decode: %v", err)
		}
		run.reference = append(run.reference, vc)
	}
	return run
}

func cloudsEqual(a, b *geom.VoxelCloud) bool {
	if a == nil || b == nil || a.Depth != b.Depth || len(a.Voxels) != len(b.Voxels) {
		return false
	}
	for i := range a.Voxels {
		if a.Voxels[i] != b.Voxels[i] {
			return false
		}
	}
	return true
}

// checkOutcomes asserts the core no-silent-corruption contract: one
// outcome per frame, in order, each either byte-correct against the
// reference stream or explicitly concealed/skipped with a typed error.
func checkOutcomes(t *testing.T, run lossyRun, total int) (decoded int) {
	t.Helper()
	if len(run.outcomes) != total {
		t.Fatalf("got %d frame outcomes, want %d", len(run.outcomes), total)
	}
	for i, f := range run.outcomes {
		if f.Index != i {
			t.Fatalf("outcome %d reports frame %d: out of order", i, f.Index)
		}
		switch f.Status {
		case FrameDecoded:
			decoded++
			if i >= len(run.reference) || !cloudsEqual(f.Cloud, run.reference[i]) {
				t.Errorf("frame %d: decoded cloud differs from clean reference (silent corruption)", i)
			}
		case FrameConcealed:
			if f.Err == nil {
				t.Errorf("frame %d concealed without an error", i)
			}
		case FrameSkipped:
			if f.Err == nil {
				t.Errorf("frame %d skipped without an error", i)
			}
			if f.Cloud != nil {
				t.Errorf("frame %d skipped but carries a cloud", i)
			}
		default:
			t.Fatalf("frame %d has unknown status %v", i, f.Status)
		}
	}
	rs := run.recovery
	if got := rs.FramesDecoded + rs.FramesConcealed + rs.FramesSkipped; got != int64(total) {
		t.Errorf("recovery counters account for %d frames, want %d (%+v)", got, total, rs)
	}
	return decoded
}

// TestLossyStreamNoFaults: a fault-free FaultyLink must decode every frame
// byte-correct with no recovery traffic.
func TestLossyStreamNoFaults(t *testing.T) {
	frames := lossyFrames(t, 9, 0.015)
	run := runLossy(t, frames, linksim.FaultProfile{}, Config{Options: testOptions(codec.IntraInterV1)})
	if decoded := checkOutcomes(t, run, len(frames)); decoded != len(frames) {
		t.Fatalf("decoded %d/%d frames on a clean link", decoded, len(frames))
	}
	if run.recovery.NACKsSent != 0 || run.sender.Retransmits != 0 || run.recovery.RefreshRequests != 0 {
		t.Errorf("recovery traffic on a clean link: %+v", run.recovery)
	}
}

// TestLossyStreamRecovers5PercentLoss is the headline acceptance run: 60
// frames, GOP 3, 5% independent loss plus reordering and duplication.
func TestLossyStreamRecovers5PercentLoss(t *testing.T) {
	const total = 60
	frames := lossyFrames(t, total, 0.008)
	prof := linksim.FaultProfile{
		DropRate:    0.05,
		ReorderRate: 0.03,
		DupRate:     0.01,
		Seed:        42,
	}
	run := runLossy(t, frames, prof, Config{Options: testOptions(codec.IntraInterV1)})

	decoded := checkOutcomes(t, run, total)
	ratio := float64(decoded) / float64(total)
	t.Logf("decoded %d/%d (%.1f%%), concealed %d, skipped %d; faults: %+v; sender: retx=%d miss=%d refresh=%d",
		decoded, total, 100*ratio, run.recovery.FramesConcealed, run.recovery.FramesSkipped,
		run.faults, run.sender.Retransmits, run.sender.RetxMisses, run.sender.Refreshes)
	if ratio < 0.95 {
		t.Fatalf("decoded ratio %.3f below the 0.95 acceptance floor", ratio)
	}
	if run.faults.Dropped == 0 {
		t.Fatal("fault injector dropped nothing: test is vacuous")
	}
	if run.recovery.NACKsSent == 0 || run.sender.Retransmits == 0 {
		t.Errorf("losses occurred but no NACK/retransmit traffic: %+v", run.recovery)
	}
}

// TestLossyStreamDeterministic: the same seed must replay the exact same
// per-frame outcomes and counters; a different seed must diverge somewhere
// in the packet counters.
func TestLossyStreamDeterministic(t *testing.T) {
	frames := lossyFrames(t, 18, 0.008)
	prof := linksim.FaultProfile{
		DropRate:    0.08,
		ReorderRate: 0.05,
		DupRate:     0.02,
		BurstEvery:  300,
		BurstLen:    3,
		Seed:        7,
	}
	cfg := Config{Options: testOptions(codec.IntraInterV1)}
	a := runLossy(t, frames, prof, cfg)
	b := runLossy(t, frames, prof, cfg)
	if len(a.outcomes) != len(b.outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a.outcomes), len(b.outcomes))
	}
	for i := range a.outcomes {
		fa, fb := a.outcomes[i], b.outcomes[i]
		if fa.Status != fb.Status || fa.Type != fb.Type || fa.Delay != fb.Delay {
			t.Errorf("frame %d diverged across identical runs: %+v vs %+v", i, fa, fb)
		}
	}
	if a.recovery != b.recovery {
		t.Errorf("recovery counters diverged:\n a=%+v\n b=%+v", a.recovery, b.recovery)
	}
	if a.faults != b.faults {
		t.Errorf("fault stats diverged:\n a=%+v\n b=%+v", a.faults, b.faults)
	}

	prof.Seed = 8
	c := runLossy(t, frames, prof, cfg)
	if c.faults == a.faults {
		t.Error("different seeds produced identical fault sequences")
	}
}

// TestLossyStreamIFrameLossForcesRefresh kills every packet of one I-frame
// (including retransmits) with a targeted filter: the receiver must skip
// it, request a GOP refresh, resynchronize at the next I-frame the sender
// forces, and decode cleanly from there on.
func TestLossyStreamIFrameLossForcesRefresh(t *testing.T) {
	const total = 12
	frames := lossyFrames(t, total, 0.01)
	const victim = 3 // with GOP 3, frame 3 is the second I-frame

	fl := linksim.NewFaultyLink(linksim.WiFi, linksim.FaultProfile{})
	var mu sync.Mutex
	var outcomes []DecodedFrame
	pipe := NewLossyPipe(fl, ReceiverConfig{
		Options: testOptions(codec.IntraInterV1),
		OnFrame: func(f DecodedFrame) {
			mu.Lock()
			outcomes = append(outcomes, f)
			mu.Unlock()
		},
	})
	cfg := Config{Options: testOptions(codec.IntraInterV1)}
	cfg.PacketOut = func(ctx context.Context, pkt []byte) error {
		if p, err := ParsePacket(pkt); err == nil && p.Header.FrameIndex == victim {
			return nil // the void eats frame 3, first send and every retransmit
		}
		return pipe.PacketOut(ctx, pkt)
	}
	s := New(context.Background(), cfg)
	pipe.Attach(s)
	col := NewCollector(s)
	for _, f := range frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	col.Wait()
	if err := pipe.Finish(total); err != nil {
		t.Fatal(err)
	}

	if len(outcomes) != total {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), total)
	}
	if outcomes[victim].Status != FrameSkipped {
		t.Fatalf("victim I-frame reported %v, want skipped", outcomes[victim].Status)
	}
	if pipe.Receiver().Metrics().RefreshRequests == 0 {
		t.Fatal("no GOP refresh was requested for a lost I-frame")
	}
	if s.Metrics().Refreshes == 0 {
		t.Fatal("sender never honoured the refresh request")
	}
	// After the refresh lands, the stream must resynchronize: once a frame
	// past the victim decodes, every later frame decodes too.
	resync := -1
	for i := victim + 1; i < total; i++ {
		if outcomes[i].Status == FrameDecoded {
			resync = i
			break
		}
		if outcomes[i].Status != FrameSkipped {
			t.Errorf("frame %d: %v before resync (want skipped: no reference)", i, outcomes[i].Status)
		}
		if !errors.Is(outcomes[i].Err, codec.ErrMissingReference) && !errors.Is(outcomes[i].Err, ErrFrameLost) {
			t.Errorf("frame %d skipped with unexpected error %v", i, outcomes[i].Err)
		}
	}
	if resync < 0 {
		t.Fatal("stream never resynchronized after I-frame loss")
	}
	if outcomes[resync].Type != codec.IFrame {
		t.Errorf("resync frame %d is %v, want a forced I-frame", resync, outcomes[resync].Type)
	}
	for i := resync; i < total; i++ {
		if outcomes[i].Status != FrameDecoded {
			t.Errorf("frame %d after resync: %v", i, outcomes[i].Status)
		}
	}
	for i := 0; i < victim; i++ {
		if outcomes[i].Status != FrameDecoded {
			t.Errorf("frame %d before the loss: %v", i, outcomes[i].Status)
		}
	}
}

// TestReceiverSenderDropIsNotLoss: frames shed by the DropOldestP policy
// leave a frame-index gap but no sequence gap — the receiver must report
// them as sender drops without NACKing anything.
func TestReceiverSenderDropIsNotLoss(t *testing.T) {
	frames := lossyFrames(t, 10, 0.01)
	fl := linksim.NewFaultyLink(congested, linksim.FaultProfile{})
	var outcomes []DecodedFrame
	pipe := NewLossyPipe(fl, ReceiverConfig{
		Options: testOptions(codec.IntraInterV1),
		OnFrame: func(f DecodedFrame) { outcomes = append(outcomes, f) },
	})
	cfg := Config{
		Options:   testOptions(codec.IntraInterV1),
		Link:      congested,
		Policy:    DropOldestP,
		Queue:     2,
		Pace:      0.002, // real backpressure so the queue actually sheds
		PacketOut: pipe.PacketOut,
	}
	s := New(context.Background(), cfg)
	pipe.Attach(s)
	col := NewCollector(s)
	for _, f := range frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	results := col.Wait()
	if err := pipe.Finish(len(frames)); err != nil {
		t.Fatal(err)
	}

	senderDrops := 0
	for _, r := range results {
		if r.Dropped {
			senderDrops++
		}
	}
	if len(outcomes) != len(frames) {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), len(frames))
	}
	reported := 0
	for _, f := range outcomes {
		if errors.Is(f.Err, ErrSenderDropped) {
			reported++
			if f.Status != FrameSkipped {
				t.Errorf("frame %d: sender drop reported as %v", f.Index, f.Status)
			}
		}
	}
	if reported != senderDrops {
		t.Errorf("receiver reported %d sender drops, sender recorded %d", reported, senderDrops)
	}
	if nacks := pipe.Receiver().Metrics().NACKsSent; nacks != 0 {
		t.Errorf("lossless link but %d NACKs sent: sender drops mistaken for loss", nacks)
	}
}
