package predlift

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/morton"
)

func dev() *edgesim.Device { return edgesim.NewXavier(edgesim.Mode15W) }

// smoothFrame builds a Morton-sorted frame with spatially smooth colours.
func smoothFrame(seed int64, n int) []morton.Keyed {
	rng := rand.New(rand.NewSource(seed))
	seen := map[morton.Code]bool{}
	var keyed []morton.Keyed
	for len(keyed) < n {
		x, y, z := uint32(rng.Intn(256)), uint32(rng.Intn(256)), uint32(rng.Intn(256))
		c := morton.Encode(x, y, z)
		if seen[c] {
			continue
		}
		seen[c] = true
		keyed = append(keyed, morton.Keyed{Code: c, Voxel: geom.Voxel{
			X: x, Y: y, Z: z,
			C: geom.Color{R: uint8(x), G: uint8(y), B: uint8((x + y + z) / 3)},
		}})
	}
	morton.Sort(keyed)
	return keyed
}

func TestRoundTripLossless(t *testing.T) {
	sorted := smoothFrame(1, 2000)
	d := dev()
	p := DefaultParams() // QStep 1
	data, err := Encode(d, sorted, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(d, data, sorted, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sorted {
		if got[i] != sorted[i].Voxel.C {
			t.Fatalf("point %d: %v != %v", i, got[i], sorted[i].Voxel.C)
		}
	}
}

func TestRoundTripQuantized(t *testing.T) {
	sorted := smoothFrame(2, 1500)
	d := dev()
	p := DefaultParams()
	p.QStep = 6
	data, err := Encode(d, sorted, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(d, data, sorted, p)
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i := range sorted {
		dr, dg, db := got[i].Sub(sorted[i].Voxel.C)
		mse += float64(dr*dr+dg*dg+db*db) / 3
	}
	mse /= float64(len(sorted))
	if psnr := 10 * math.Log10(255*255/mse); psnr < 35 {
		t.Fatalf("quantized PSNR %.1f dB too low", psnr)
	}
}

func TestPredictionCompressesSmoothData(t *testing.T) {
	// Dense frame: neighbours are close, so prediction works well.
	rng := rand.New(rand.NewSource(3))
	seen := map[morton.Code]bool{}
	var sorted []morton.Keyed
	for len(sorted) < 4000 {
		x, y, z := uint32(rng.Intn(32)), uint32(rng.Intn(32)), uint32(rng.Intn(32))
		c := morton.Encode(x, y, z)
		if seen[c] {
			continue
		}
		seen[c] = true
		sorted = append(sorted, morton.Keyed{Code: c, Voxel: geom.Voxel{
			X: x, Y: y, Z: z,
			C: geom.Color{R: uint8(4 * x), G: uint8(4 * y), B: uint8(4 * z)},
		}})
	}
	morton.Sort(sorted)
	d := dev()
	data, err := Encode(d, sorted, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	raw := 3 * len(sorted)
	if len(data) >= raw*2/3 {
		t.Fatalf("predicted stream %d >= 2/3 raw %d", len(data), raw*2/3)
	}
}

func TestEmptyFrame(t *testing.T) {
	d := dev()
	data, err := Encode(d, nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(d, data, nil, DefaultParams())
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
}

func TestGeometryMismatchDetected(t *testing.T) {
	sorted := smoothFrame(4, 100)
	d := dev()
	data, err := Encode(d, sorted, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(d, data, sorted[:50], DefaultParams()); err != ErrGeometryMismatch {
		t.Fatalf("err = %v, want ErrGeometryMismatch", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(dev(), nil, nil, DefaultParams()); err == nil {
		t.Fatal("nil stream must fail")
	}
}

func TestParamsNormalization(t *testing.T) {
	p := Params{}.normalized()
	if p.Neighbors < 1 || p.Window < p.Neighbors || p.QStep < 1 {
		t.Fatalf("normalized params invalid: %+v", p)
	}
}

func TestPredictFirstPointUsesPrior(t *testing.T) {
	sorted := smoothFrame(5, 10)
	pred := predict(sorted, make([][3]int32, len(sorted)), 0, DefaultParams().normalized())
	if pred != [3]int32{128, 128, 128} {
		t.Fatalf("first-point prior = %v", pred)
	}
}

func TestSerialAccounting(t *testing.T) {
	sorted := smoothFrame(6, 500)
	d := dev()
	if _, err := Encode(d, sorted, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	for _, k := range d.Kernels() {
		if k.Engine != edgesim.EngineCPU {
			t.Fatalf("kernel %s must be CPU work", k.Name)
		}
	}
}

func BenchmarkPredEncode5K(b *testing.B) {
	sorted := smoothFrame(7, 5000)
	d := dev()
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(d, sorted, p); err != nil {
			b.Fatal(err)
		}
	}
}
