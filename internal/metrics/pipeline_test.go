package metrics

import (
	"sync"
	"testing"
)

func TestQueueGaugeSequential(t *testing.T) {
	g := NewQueueGauge("tx")
	g.Enqueue()
	g.Enqueue()
	g.Drop()
	g.Dequeue()
	s := g.Snapshot()
	if s.Name != "tx" {
		t.Fatalf("name = %q", s.Name)
	}
	if s.Depth != 1 || s.MaxDepth != 2 || s.Enqueued != 2 || s.Dequeued != 1 || s.Dropped != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

// The gauge is updated from every pipeline stage concurrently; totals must
// balance and the watermark must never exceed the true peak. Run with -race.
func TestQueueGaugeConcurrent(t *testing.T) {
	g := NewQueueGauge("q")
	const producers, perProducer = 8, 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				g.Enqueue()
				g.Dequeue()
			}
		}()
	}
	wg.Wait()
	s := g.Snapshot()
	if s.Depth != 0 {
		t.Fatalf("depth = %d after balanced ops", s.Depth)
	}
	if s.Enqueued != producers*perProducer || s.Dequeued != producers*perProducer {
		t.Fatalf("enqueued/dequeued = %d/%d", s.Enqueued, s.Dequeued)
	}
	if s.MaxDepth < 1 || s.MaxDepth > producers {
		t.Fatalf("maxDepth = %d, want within [1,%d]", s.MaxDepth, producers)
	}
}
