package edgesim

import (
	"runtime"
	"sync"
)

// Persistent kernel worker pool.
//
// Every kernel launch used to spawn fresh goroutines (~20 launches/frame ×
// 30 fps × N sessions), so steady-state serving paid goroutine-create cost
// on every launch. The pool below is created once per process (the modelled
// board has one set of cores, shared by every Device the way N sessions
// share one SoC) and parks one worker per GOMAXPROCS core on a channel;
// a kernel launch is then a channel wake, not a goroutine spawn.
//
// Pool tasks are leaves: a body handed to the pool must not itself submit
// to the pool (the compound-kernel APIs — GPUCompute, ScanFlags, GatherFlags
// — keep that invariant by running orchestration on the calling goroutine).
// As a defensive backstop, submission never blocks: when every worker is
// busy and the queue is full, the chunk runs inline on the caller, so the
// pool cannot deadlock even under pathological nesting.

// Pool is a fixed set of persistent worker goroutines executing contiguous
// index ranges.
type Pool struct {
	workers int
	tasks   chan poolTask
}

type poolTask struct {
	body   func(start, end int)
	lo, hi int
	done   *sync.WaitGroup
}

var (
	poolOnce   sync.Once
	sharedPool *Pool
)

// newSharedPool returns the process-wide kernel worker pool, creating it
// (with one worker per GOMAXPROCS core) on first use.
func newSharedPool() *Pool {
	poolOnce.Do(func() {
		w := runtime.GOMAXPROCS(0)
		if w < 1 {
			w = 1
		}
		p := &Pool{workers: w, tasks: make(chan poolTask, 4*w)}
		for i := 0; i < w; i++ {
			go p.worker()
		}
		sharedPool = p
	})
	return sharedPool
}

func (p *Pool) worker() {
	for t := range p.tasks {
		t.body(t.lo, t.hi)
		t.done.Done()
	}
}

// Workers returns the pool's worker count (the real-execution core budget).
func (p *Pool) Workers() int { return p.workers }

// DefaultPool returns the process-wide kernel worker pool, creating it on
// first use.
func DefaultPool() *Pool { return newSharedPool() }

// Ranges is the exported form of the pool's range decomposition, for
// algorithm packages (e.g. the radix sort) that orchestrate their own
// phases. body must be a leaf task (it must not submit to the pool). The
// decomposition is deterministic: workers is clamped to the pool size and
// to items, chunks are ceil(items/workers) long, and each body invocation
// receives one chunk [lo, hi) with lo a multiple of the chunk length.
func (p *Pool) Ranges(workers, items int, body func(start, end int)) {
	p.ranges(workers, items, body)
}

// ranges splits [0, items) into one contiguous chunk per worker and runs
// body over all chunks: up to workers-1 on pool workers, the rest (always at
// least one) inline on the caller. It returns once every chunk completes.
// The chunk decomposition is identical to the old spawn-per-launch code, so
// kernel bodies see the same ranges.
func (p *Pool) ranges(workers, items int, body func(start, end int)) {
	if items <= 0 {
		return
	}
	if workers > p.workers {
		workers = p.workers
	}
	if workers > items {
		workers = items
	}
	if workers <= 1 {
		body(0, items)
		return
	}
	chunk := (items + workers - 1) / workers
	var wg sync.WaitGroup
	// Submit all chunks but the first; the caller runs chunk 0 itself so a
	// launch always makes progress even with every worker busy.
	for w := 1; w < workers; w++ {
		lo := w * chunk
		if lo >= items {
			break
		}
		hi := lo + chunk
		if hi > items {
			hi = items
		}
		wg.Add(1)
		select {
		case p.tasks <- poolTask{body: body, lo: lo, hi: hi, done: &wg}:
		default:
			// Queue full: run inline rather than block (no-deadlock backstop).
			body(lo, hi)
			wg.Done()
		}
	}
	body(0, min(chunk, items))
	wg.Wait()
}

// run executes a set of independent closures on the pool (the same
// wake-don't-spawn discipline for irregular task sets, e.g. the per-pass
// phases of the radix sort). fns must be leaf tasks.
func (p *Pool) run(fns []func()) {
	if len(fns) == 0 {
		return
	}
	if len(fns) == 1 || p.workers <= 1 {
		for _, f := range fns {
			f()
		}
		return
	}
	var wg sync.WaitGroup
	for i := 1; i < len(fns); i++ {
		f := fns[i]
		wg.Add(1)
		select {
		case p.tasks <- poolTask{body: func(int, int) { f() }, done: &wg}:
		default:
			f()
			wg.Done()
		}
	}
	fns[0]()
	wg.Wait()
}

// Pool exposes the device's kernel worker pool (shared process-wide).
func (d *Device) Pool() *Pool { return d.pool }

// Workers returns the number of real-execution workers kernels run over.
func (d *Device) Workers() int { return d.pool.Workers() }

// ParallelFor runs body over [0, items) on the worker pool without any
// accounting — the raw real-execution primitive for use inside compound
// kernels (GPUCompute) whose cost is accounted once at the kernel level.
func (d *Device) ParallelFor(items int, body func(start, end int)) {
	d.pool.ranges(d.pool.workers, items, body)
}

// ScanFlags computes, in parallel, the compaction ranks of a flag vector:
// ranks[i] = (number of set flags in flags[0..i]) - 1, returning the total
// number of set flags. This is the GPU scan primitive behind every
// flag→scan→compact stage (level build, dedup); output is identical to the
// serial loop it replaces.
func (d *Device) ScanFlags(flags, ranks []int32) int {
	n := len(flags)
	if n == 0 {
		return 0
	}
	w := d.pool.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		var r int32 = -1
		for i, f := range flags {
			r += f & 1
			ranks[i] = r
		}
		return int(r + 1)
	}
	chunk := (n + w - 1) / w
	counts := make([]int32, w)
	// Phase 1: per-chunk set counts.
	d.pool.ranges(w, n, func(lo, hi int) {
		var c int32
		for _, f := range flags[lo:hi] {
			c += f & 1
		}
		counts[lo/chunk] = c
	})
	// Phase 2: serial exclusive prefix over w chunk counts.
	var total int32
	for i, c := range counts {
		counts[i] = total
		total += c
	}
	// Phase 3: per-chunk rank fill.
	d.pool.ranges(w, n, func(lo, hi int) {
		r := counts[lo/chunk] - 1
		for i := lo; i < hi; i++ {
			r += flags[i] & 1
			ranks[i] = r
		}
	})
	return int(total)
}

// GatherFlags compacts flagged elements in parallel: for every i with
// flags[i] set, dst[ranks[i]] = get(i). ranks must come from ScanFlags over
// the same flags; dst must hold at least the returned total.
func GatherFlags[T any](d *Device, flags, ranks []int32, dst []T, get func(i int) T) {
	d.ParallelFor(len(flags), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if flags[i]&1 == 1 {
				dst[ranks[i]] = get(i)
			}
		}
	})
}
