// Package dataset generates deterministic synthetic dynamic point-cloud
// videos that stand in for the 8iVFB [18] and MVUB [8] captures the paper
// evaluates on (Table I). We do not have those captures, so each video is
// an articulated parametric human body, surface-sampled on a fixed (u,v)
// grid, voxelized into the same 1024^3 lattice, with:
//
//   - smooth, surface-anchored RGB attribute fields (clothing bands, skin,
//     deterministic noise), giving the SPATIAL attribute locality that
//     Fig. 3a measures, and
//   - frame-to-frame articulated motion (arm/leg swing, torso sway) with
//     colours attached to surface coordinates, giving the TEMPORAL block
//     locality that Fig. 3b measures and the inter-frame codec exploits.
//
// Everything is a closed-form function of (video seed, frame index), so
// every experiment is reproducible bit-for-bit.
package dataset

import (
	"math"

	"repro/internal/geom"
)

// vec is a small 3-vector helper.
type vec struct{ X, Y, Z float64 }

func (a vec) add(b vec) vec       { return vec{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }
func (a vec) sub(b vec) vec       { return vec{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }
func (a vec) scale(s float64) vec { return vec{a.X * s, a.Y * s, a.Z * s} }
func (a vec) dot(b vec) float64   { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }
func (a vec) cross(b vec) vec {
	return vec{a.Y*b.Z - a.Z*b.Y, a.Z*b.X - a.X*b.Z, a.X*b.Y - a.Y*b.X}
}
func (a vec) norm() float64 { return math.Sqrt(a.dot(a)) }
func (a vec) unit() vec {
	n := a.norm()
	if n == 0 {
		return vec{1, 0, 0}
	}
	return a.scale(1 / n)
}

// rotateY rotates p around the Y axis through origin o by angle a.
func rotateY(p, o vec, a float64) vec {
	s, c := math.Sin(a), math.Cos(a)
	d := p.sub(o)
	return vec{o.X + d.X*c + d.Z*s, p.Y, o.Z - d.X*s + d.Z*c}
}

// rotateZ rotates p around the Z axis through origin o by angle a.
func rotateZ(p, o vec, a float64) vec {
	s, c := math.Sin(a), math.Cos(a)
	d := p.sub(o)
	return vec{o.X + d.X*c - d.Y*s, o.Y + d.X*s + d.Y*c, p.Z}
}

// hash2 is a deterministic integer hash of surface coordinates, used as
// attribute texture noise (no RNG state: same (part,u,v) always gives the
// same value, which is what anchors colours to the surface across frames).
func hash2(part uint32, ui, vi int) uint32 {
	h := part*0x9E3779B9 ^ uint32(ui)*0x85EBCA6B ^ uint32(vi)*0xC2B2AE35
	h ^= h >> 16
	h *= 0x7FEB352D
	h ^= h >> 15
	h *= 0x846CA68B
	h ^= h >> 16
	return h
}

// noise returns a deterministic value in [-1, 1).
func noise(part uint32, ui, vi int) float64 {
	return float64(hash2(part, ui, vi)%2048)/1024 - 1
}

// surfacePoint is an emitted sample: position plus colour.
type surfacePoint struct {
	pos vec
	col geom.Color
}

// texture computes a part's colour at grid coordinates (ui, vi): a base
// palette colour, banded variation along the surface, static hash noise
// (surface detail), and per-frame sensor noise. The static terms are
// anchored to the surface — they move with the body and give temporal
// locality — while the sensor term re-rolls every frame (tSalt), modelling
// the capture noise of the RGB(D) rigs that produced 8iVFB/MVUB; it is what
// makes cross-frame block reuse inherently lossy.
type texture struct {
	base      geom.Color
	bandAmp   float64 // amplitude of the band pattern
	bandFreq  float64 // bands per unit v
	noiseAmp  float64 // static surface-detail noise
	sensorAmp float64 // per-frame capture noise (per channel)
	tSalt     uint32  // frame-dependent salt for the sensor term
	id        uint32
}

func (t texture) at(ui, vi int, u, v float64) geom.Color {
	band := t.bandAmp * math.Sin(v*t.bandFreq+u*1.7)
	n := t.noiseAmp * noise(t.id, ui, vi)
	d := int(band + n)
	dr, dg, db := d, d/2, d
	if t.sensorAmp > 0 {
		s := t.id ^ t.tSalt
		dr += int(t.sensorAmp * noise(s^0xA511E9B3, ui, vi))
		dg += int(t.sensorAmp * noise(s^0x2545F491, ui, vi))
		db += int(t.sensorAmp * noise(s^0x8F1BBCDC, ui, vi))
	}
	return t.base.Add(dr, dg, db)
}

// ellipsoid samples an ellipsoid surface on an nu x nv grid.
func ellipsoid(out []surfacePoint, c vec, rx, ry, rz float64, nu, nv int, tex texture) []surfacePoint {
	for ui := 0; ui < nu; ui++ {
		u := math.Pi * (float64(ui) + 0.5) / float64(nu)
		su, cu := math.Sin(u), math.Cos(u)
		for vi := 0; vi < nv; vi++ {
			v := 2 * math.Pi * float64(vi) / float64(nv)
			p := vec{c.X + rx*su*math.Cos(v), c.Y + ry*cu, c.Z + rz*su*math.Sin(v)}
			out = append(out, surfacePoint{p, tex.at(ui, vi, u, v)})
		}
	}
	return out
}

// capsule samples a cylinder with hemispherical caps from p0 to p1.
func capsule(out []surfacePoint, p0, p1 vec, r float64, nh, nv int, tex texture) []surfacePoint {
	axis := p1.sub(p0)
	dir := axis.unit()
	// Orthonormal frame around the axis.
	ref := vec{0, 0, 1}
	if math.Abs(dir.dot(ref)) > 0.9 {
		ref = vec{1, 0, 0}
	}
	n1 := dir.cross(ref).unit()
	n2 := dir.cross(n1).unit()
	for hi := 0; hi < nh; hi++ {
		h := (float64(hi) + 0.5) / float64(nh)
		base := p0.add(axis.scale(h))
		for vi := 0; vi < nv; vi++ {
			v := 2 * math.Pi * float64(vi) / float64(nv)
			p := base.add(n1.scale(r * math.Cos(v))).add(n2.scale(r * math.Sin(v)))
			out = append(out, surfacePoint{p, tex.at(hi, vi, h, v)})
		}
	}
	// End caps (hemispheres), sampled sparsely.
	capRes := nv / 2
	if capRes < 4 {
		capRes = 4
	}
	for _, end := range []struct {
		c    vec
		sign float64
	}{{p0, -1}, {p1, 1}} {
		for ui := 0; ui < capRes/2; ui++ {
			u := (math.Pi / 2) * (float64(ui) + 0.5) / float64(capRes/2)
			for vi := 0; vi < capRes; vi++ {
				v := 2 * math.Pi * float64(vi) / float64(capRes)
				radial := n1.scale(math.Cos(v)).add(n2.scale(math.Sin(v))).scale(r * math.Sin(u))
				p := end.c.add(radial).add(dir.scale(end.sign * r * math.Cos(u)))
				out = append(out, surfacePoint{p, tex.at(ui+1000, vi, u, v)})
			}
		}
	}
	return out
}
