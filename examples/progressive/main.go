// Progressive: stream one encoded frame byte-by-byte and show how the
// proposed design's breadth-first geometry layout lets a receiver display
// coarse previews long before the full frame arrives — a level-of-detail
// property the sequential baselines' depth-first streams cannot offer.
package main

import (
	"fmt"
	"log"

	"repro/pcc"
)

func main() {
	video := pcc.NewVideo("soldier", 0.08)
	frame, err := video.Frame(0)
	if err != nil {
		log.Fatal(err)
	}
	opts := pcc.DefaultOptions(pcc.IntraOnly)
	opts.IntraAttr.Segments = 2500
	enc := pcc.NewEncoderOptions(opts)
	bits, stats, err := enc.Encode(frame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame: %d points, geometry stream %.1f KB (total %.1f KB)\n\n",
		frame.Len(), float64(len(bits.Geometry))/1e3, float64(stats.SizeBytes)/1e3)

	fmt.Printf("%7s %9s %14s %16s\n", "level", "points", "bytes needed", "% of geometry")
	for level := uint(2); level <= uint(bits.Depth); level++ {
		coarse, prefix, err := pcc.DecodeProgressive(bits, level)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d %9d %14d %15.1f%%\n",
			level, coarse.Len(), prefix, float64(prefix)/float64(len(bits.Geometry)-1)*100)
	}
	fmt.Println("\na receiver shows a recognizable body after a few percent of the stream,")
	fmt.Println("then refines level by level as the remaining bytes arrive.")
}
