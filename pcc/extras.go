package pcc

import (
	"image"

	"repro/internal/capture"
	"repro/internal/linksim"
	"repro/internal/render"
	"repro/internal/viewport"
)

// Stages of the paper's Fig. 1 pipeline that sit around the codec:
// capture (3D content generation), transmission links, viewport culling,
// and rendering — re-exported so library users can assemble the full
// capture → encode → transmit → decode → render chain.

// Capture (Fig. 1 stage 1).
type (
	// CaptureCam is a virtual pinhole RGB-D camera.
	CaptureCam = capture.Cam
	// CaptureRig is a set of cameras imaging one subject.
	CaptureRig = capture.Rig
)

// FrontalCaptureRig arranges n cameras in a frontal arc (the MVUB setup
// uses 4).
func FrontalCaptureRig(n int, gridSize uint32) CaptureRig {
	return capture.FrontalRig(n, gridSize)
}

// OrbitCaptureRig arranges n cameras on a full circle (8iVFB uses 42).
func OrbitCaptureRig(n int, gridSize uint32) CaptureRig {
	return capture.OrbitRig(n, gridSize)
}

// Transmission (Fig. 1 stage 3).
type (
	// Link is a wireless-link model with bandwidth/RTT/energy figures.
	Link = linksim.Link
	// LinkCost is the latency/energy of one transmission.
	LinkCost = linksim.Cost
)

// Preset links.
var (
	// LinkWiFi is an indoor Wi-Fi 5/6 link.
	LinkWiFi = linksim.WiFi
	// Link5G is a mid-band 5G uplink.
	Link5G = linksim.NR5G
	// LinkLTE is an LTE uplink.
	LinkLTE = linksim.LTE
)

// Viewport culling (ViVo-style viewpoint-dependent transmission).
type (
	// ViewCamera is the viewer's pose and field of view.
	ViewCamera = viewport.Camera
	// CullResult summarizes a culling pass.
	CullResult = viewport.Result
)

// CullViewport keeps only the Morton blocks of a sorted frame that fall in
// the viewer's field of view.
func CullViewport(sorted []Point, segments int, cam ViewCamera) ([]Point, []bool, CullResult) {
	return viewport.Cull(sorted, segments, cam)
}

// Rendering (Fig. 1 stage 5).
type (
	// RenderOptions configures the splat renderer.
	RenderOptions = render.Options
)

// View axes for RenderOptions.
const (
	ViewFront = render.FrontZ
	ViewSide  = render.SideX
	ViewTop   = render.TopY
)

// DefaultRenderOptions renders a 512x512 frontal view.
func DefaultRenderOptions() RenderOptions { return render.DefaultOptions() }

// RenderFrame draws a frame into an RGBA image (z-buffered point splats).
func RenderFrame(vc *PointCloud, o RenderOptions) (*image.RGBA, error) {
	return render.Render(vc, o)
}
