package attr

import (
	"bytes"

	"repro/internal/geom"
)

// Base-layer attribute medians for the layered (encode-once, multi-rate)
// container: the coarsest attribute representation is one RGB triple per
// base-level octree cell — the per-channel lower median of the cell's leaf
// colours, the same "Mid" statistic the Base+Deltas intra codec computes
// per segment. The stream is self-contained and reference-free, so a
// partial layer subscription decodes every frame standalone, P-frames
// included.
//
// Wire format: uvarint cell count, then 3 bytes (R, G, B) per cell, in the
// cells' Morton order.

// EncodeBaseMedians encodes one RGB median per cell. runs holds the cell
// boundaries over colors: cell c covers colors[runs[c]:runs[c+1]]
// (len(runs) == cells+1, first element 0, last element len(colors),
// strictly increasing — every cell non-empty).
func EncodeBaseMedians(colors []geom.Color, runs []int) []byte {
	var buf bytes.Buffer
	cells := len(runs) - 1
	if cells < 0 {
		cells = 0
	}
	writeUvarint(&buf, uint64(cells))
	scratch := medianScratch.Get().(*[]int32)
	var r, g, b []int32
	for c := 0; c < cells; c++ {
		lo, hi := runs[c], runs[c+1]
		n := hi - lo
		r, g, b = grow(r, n), grow(g, n), grow(b, n)
		for i, col := range colors[lo:hi] {
			r[i], g[i], b[i] = int32(col.R), int32(col.G), int32(col.B)
		}
		buf.WriteByte(byte(medianOf(r, scratch)))
		buf.WriteByte(byte(medianOf(g, scratch)))
		buf.WriteByte(byte(medianOf(b, scratch)))
	}
	medianScratch.Put(scratch)
	return buf.Bytes()
}

// DecodeBaseMedians inverts EncodeBaseMedians, returning one colour per
// cell. The stream must be exactly consumed.
func DecodeBaseMedians(data []byte) ([]geom.Color, error) {
	r := bytes.NewReader(data)
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(data)) || uint64(r.Len()) != 3*n {
		return nil, ErrBadStream
	}
	out := make([]geom.Color, n)
	for i := range out {
		cr, _ := r.ReadByte()
		cg, _ := r.ReadByte()
		cb, _ := r.ReadByte()
		out[i] = geom.Color{R: cr, G: cg, B: cb}
	}
	return out, nil
}
