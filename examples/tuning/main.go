// Tuning: the Sec. VI-E knob exploration as a library user would run it.
// The direct-reuse threshold of the inter-frame codec trades compression
// ratio against quality; this example sweeps it on one video and prints the
// trade-off curve, so an application can pick its own operating point
// between the paper's V1 (quality) and V2 (compression) presets.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/pcc"
)

func main() {
	video := pcc.NewVideo("soldier", 0.06)
	const nFrames = 6
	frames := make([]*pcc.PointCloud, nFrames)
	var err error
	for i := range frames {
		if frames[i], err = video.Frame(i); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("direct-reuse threshold sweep (Sec. VI-E), soldier, IPP GOP:")
	fmt.Printf("%10s %8s %8s %12s %10s\n", "threshold", "reuse%", "ratio", "attrPSNR(dB)", "ms/frame")
	for _, th := range []float64{5, 20, 45, 90, 180, 400, 2000} {
		opts := pcc.DefaultOptions(pcc.IntraInterV1)
		opts.IntraAttr.Segments = 2000
		opts.Inter.Segments = 3000
		opts.Inter.Threshold = th
		enc := pcc.NewEncoderOptions(opts)
		dec := pcc.NewDecoder(opts)

		var raw, cmp, reuse, msSum float64
		var pFrames int
		var mseSum float64
		var mseN int
		for _, f := range frames {
			bits, st, err := enc.Encode(f)
			if err != nil {
				log.Fatal(err)
			}
			out, err := dec.Decode(bits)
			if err != nil {
				log.Fatal(err)
			}
			raw += float64(f.RawBytes())
			cmp += float64(st.SizeBytes)
			msSum += st.TotalTime.Seconds() * 1000
			if st.Inter.Blocks > 0 {
				reuse += st.Inter.ReuseFraction()
				pFrames++
			}
			// Order-aligned attribute comparison: the decoded cloud is in
			// canonical order; compare colour-by-nearest-position.
			mse := colourMSE(f, out)
			if mse > 0 {
				mseSum += mse
				mseN++
			}
		}
		psnr := math.Inf(1)
		if mseN > 0 {
			psnr = 10 * math.Log10(255*255/(mseSum/float64(mseN)))
		}
		if pFrames > 0 {
			reuse /= float64(pFrames)
		}
		fmt.Printf("%10.0f %7.0f%% %8.2f %12.1f %10.2f\n",
			th, reuse*100, raw/cmp, math.Min(psnr, 99), msSum/nFrames)
	}
	fmt.Println("\nhigher threshold -> more blocks reused -> better ratio, lower PSNR (paper Fig. 10b).")
}

// colourMSE compares attributes via nearest-neighbour lookup (robust to the
// codec's canonical reordering and sub-voxel geometry shifts).
func colourMSE(orig, decoded *pcc.PointCloud) float64 {
	idx := newIndex(decoded)
	var mse float64
	for _, v := range orig.Voxels {
		n := idx.nearest(v)
		mse += float64(v.C.Dist2(n.C)) / 3
	}
	return mse / float64(orig.Len())
}

// newIndex builds a tiny grid hash for NN colour lookup.
type gridIdx struct {
	cells map[uint64][]pcc.Point
}

func newIndex(vc *pcc.PointCloud) *gridIdx {
	g := &gridIdx{cells: make(map[uint64][]pcc.Point)}
	for _, v := range vc.Voxels {
		g.cells[g.key(v.X, v.Y, v.Z)] = append(g.cells[g.key(v.X, v.Y, v.Z)], v)
	}
	return g
}

func (g *gridIdx) key(x, y, z uint32) uint64 {
	return uint64(x>>4)<<42 | uint64(y>>4)<<21 | uint64(z>>4)
}

func (g *gridIdx) nearest(q pcc.Point) pcc.Point {
	best := q
	bestD := math.Inf(1)
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				k := uint64(int64(q.X>>4)+int64(dx))<<42 |
					uint64(int64(q.Y>>4)+int64(dy))<<21 |
					uint64(int64(q.Z>>4)+int64(dz))
				for _, v := range g.cells[k] {
					if d := q.Dist2(v); d < bestD {
						bestD = d
						best = v
					}
				}
			}
		}
	}
	return best
}
