package stream

// Sender-side forward error correction: XOR parity groups appended after
// each frame's data packets, shared by the single-receiver Session path
// (stream.go) and the relay tree's viewer fan-out (viewer.go).
//
// Group layout. A frame of n fragments with parity group size K gets:
//
//   - P-frames: consecutive stride-1 groups of up to K fragments — one
//     parity packet per group, repairing any single loss in the group.
//   - I-frames: each span of 2K fragments is covered by TWO interleaved
//     stride-2 groups (even offsets and odd offsets), so two consecutive
//     losses land in different groups and both repair. I-frames get the
//     deeper protection because the whole GOP references them: one
//     unrecovered I-frame fragment costs a refresh round trip and skips
//     every dependent P-frame.
//
// Parity packets ride the same PacketOut path as data but consume no
// sequence numbers: the receiver's gap detector never sees them, they are
// never NACKed, and they are not buffered for retransmission. The relay
// tree builds each group's XOR body once per published frame (reading the
// immutable ring payload in place — frame bytes are never copied) and
// every viewer at the server MTU reuses it under its own header.

import (
	"repro/internal/codec"
)

// FECConfig configures sender-side parity emission.
type FECConfig struct {
	// GroupLen, when > 0, statically emits one parity packet per GroupLen
	// data packets (clamped to [1, MaxParityGroup]). When 0, parity is
	// emitted only while the adaptive controller's parity knob is raised,
	// with the group size the knob implies — zero overhead on clean links.
	// Negative disables parity entirely, adaptive knob included, making
	// the packet stream byte-identical to a pre-FEC sender.
	GroupLen int
}

// groupLen resolves the effective parity group size: the static
// configuration and the controller's adaptive knob, with the stronger
// (smaller group) winning. 0 means no parity.
func (c FECConfig) groupLen(ctrl *codec.Controller) int {
	if c.GroupLen < 0 {
		return 0
	}
	k := c.GroupLen
	if k > MaxParityGroup {
		k = MaxParityGroup
	}
	if ctrl != nil {
		if a := ctrl.Knobs().ParityGroupLen(); a > 0 && (k == 0 || a < k) {
			k = a
		}
	}
	return k
}

// groupSpec is one parity group in fragment-index space.
type groupSpec struct {
	base   int // first covered fragment index
	count  int
	stride int
}

// end returns the last covered fragment index. Senders emit a group's
// parity packet right after this fragment, interleaved with the frame's
// data, so the repair reaches the receiver as few packet-times as possible
// behind the loss it fixes — well inside the NACK timer.
func (g groupSpec) end() int { return g.base + (g.count-1)*g.stride }

// parityGroups lays out the XOR groups covering n fragments with group
// size k: stride-1 runs for P-frames, interleaved stride-2 pairs per 2k
// span for I-frames (spans of ≤ 2 fragments fall back to one stride-1
// group — interleaving needs at least 3 to beat it).
func parityGroups(n, k int, ftype codec.FrameType) []groupSpec {
	if k < 1 || n < 1 {
		return nil
	}
	var out []groupSpec
	if ftype == codec.IFrame && k >= 2 {
		for at := 0; at < n; at += 2 * k {
			span := min(2*k, n-at)
			if span <= 2 {
				out = append(out, groupSpec{base: at, count: span, stride: 1})
				continue
			}
			out = append(out,
				groupSpec{base: at, count: (span + 1) / 2, stride: 2},
				groupSpec{base: at + 1, count: span / 2, stride: 2})
		}
		return out
	}
	for at := 0; at < n; at += k {
		out = append(out, groupSpec{base: at, count: min(k, n-at), stride: 1})
	}
	return out
}

// parityShare is one published frame's parity build, computed once at the
// server MTU and attached to the sharedFrame: every viewer whose MTU
// matches reuses the XOR bodies under its own headers; viewers at other
// MTUs rebuild from the immutable ring payload. Bodies are read-only after
// build (parityPacket copies them into the framed payload).
type parityShare struct {
	k      int // effective parity group size at build time
	mtu    int // payload MTU the bodies were split at
	groups []groupSpec
	bodies [][]byte
}

// buildParityShare XORs every parity group body for wire at the given MTU.
// Returns nil when k means no parity.
func buildParityShare(wire []byte, mtu, k int, ftype codec.FrameType) *parityShare {
	if k < 1 {
		return nil
	}
	mtu = payloadMTU(mtu)
	groups := parityGroups(fragsAtMTU(len(wire), mtu), k, ftype)
	if len(groups) == 0 {
		return nil
	}
	ps := &parityShare{k: k, mtu: mtu, groups: groups, bodies: make([][]byte, len(groups))}
	for i, g := range groups {
		ps.bodies[i] = buildParityBody(wire, mtu, g)
	}
	return ps
}

// fragsAtMTU is PacketizeFrame's fragment count for a wire length: ceil
// division, with an empty frame still shipping one (empty) packet.
func fragsAtMTU(wireLen, mtu int) int {
	n := (wireLen + mtu - 1) / mtu
	if n == 0 {
		n = 1
	}
	return n
}

// payloadMTU mirrors PacketizeFrame's MTU clamping so parity group
// geometry matches the data packets it covers.
func payloadMTU(mtu int) int {
	if mtu < 1 {
		return 1400
	}
	if mtu > MaxPayload {
		return MaxPayload
	}
	return mtu
}

// buildParityBody XORs the group's covered fragments of wire (split at
// mtu, exactly as PacketizeFrame splits it) into a fresh body. wire is
// only read — ring payloads are immutable after publish.
func buildParityBody(wire []byte, mtu int, g groupSpec) []byte {
	width := 0
	for i := 0; i < g.count; i++ {
		lo := (g.base + i*g.stride) * mtu
		hi := min(lo+mtu, len(wire))
		if hi < lo {
			hi = lo
		}
		if hi-lo > width {
			width = hi - lo
		}
	}
	body := make([]byte, 2+width)
	for i := 0; i < g.count; i++ {
		lo := (g.base + i*g.stride) * mtu
		hi := min(lo+mtu, len(wire))
		if hi < lo {
			hi = lo
		}
		xorRecord(body, wire[lo:hi])
	}
	return body
}

// parityPacket frames one group's parity packet in the receiver's
// sequence space. The header Seq mirrors the group's base sequence for
// observability, but parity packets occupy no slot in the data sequence
// stream.
func parityPacket(streamID, frameIndex uint32, ftype codec.FrameType, firstSeq uint32, fragCount int, g groupSpec, body []byte) []byte {
	base := firstSeq + uint32(g.base)
	payload := AppendParity(make([]byte, 0, ParityHeaderSize+len(body)), ParityGroup{
		BaseSeq:       base,
		Count:         uint8(g.count),
		Stride:        uint8(g.stride),
		FrameFirstSeq: firstSeq,
		FragCount:     uint16(fragCount),
		Body:          body,
	})
	return MarshalPacket(PacketHeader{
		Flags:      FlagParity,
		StreamID:   streamID,
		FrameIndex: frameIndex,
		FrameType:  ftype,
		Frag:       0,
		FragCount:  1,
		Seq:        base,
	}, payload)
}
