package metrics

// Congestion-controller instrumentation (internal/codec.Controller): every
// knob actuation and congestion-state transition is counted here, so a live
// session's adaptation behaviour can be scraped — and asserted in tests —
// without peeking at controller internals. Everything is atomic: the
// controller is driven concurrently from the transmit stage (local signals)
// and from HandleControl callers (receiver feedback).

import "sync/atomic"

// ControllerCounters tracks a congestion controller's actuations and state
// transitions. The zero value is ready to use. All methods are safe for
// concurrent use.
type ControllerCounters struct {
	feedbackReports atomic.Int64
	localSignals    atomic.Int64
	// Knob actuations.
	gopShrinks      atomic.Int64
	gopGrows        atomic.Int64
	qualityDrops    atomic.Int64
	qualityRaises   atomic.Int64
	thresholdBoosts atomic.Int64
	thresholdEases  atomic.Int64
	// Congestion-state transitions.
	congestedEnters atomic.Int64
	congestedExits  atomic.Int64
}

func (c *ControllerCounters) FeedbackReport() { c.feedbackReports.Add(1) }
func (c *ControllerCounters) LocalSignal()    { c.localSignals.Add(1) }
func (c *ControllerCounters) GOPShrink()      { c.gopShrinks.Add(1) }
func (c *ControllerCounters) GOPGrow()        { c.gopGrows.Add(1) }
func (c *ControllerCounters) QualityDrop()    { c.qualityDrops.Add(1) }
func (c *ControllerCounters) QualityRaise()   { c.qualityRaises.Add(1) }
func (c *ControllerCounters) ThresholdBoost() { c.thresholdBoosts.Add(1) }
func (c *ControllerCounters) ThresholdEase()  { c.thresholdEases.Add(1) }
func (c *ControllerCounters) CongestedEnter() { c.congestedEnters.Add(1) }
func (c *ControllerCounters) CongestedExit()  { c.congestedExits.Add(1) }

// AdaptSnapshot is a point-in-time copy of a ControllerCounters.
type AdaptSnapshot struct {
	FeedbackReports int64
	LocalSignals    int64
	GOPShrinks      int64
	GOPGrows        int64
	QualityDrops    int64
	QualityRaises   int64
	ThresholdBoosts int64
	ThresholdEases  int64
	CongestedEnters int64
	CongestedExits  int64
}

// Transitions returns the total number of knob actuations plus congestion
// state changes — the "did anything move" aggregate the adapt sweep tracks.
func (s AdaptSnapshot) Transitions() int64 {
	return s.GOPShrinks + s.GOPGrows + s.QualityDrops + s.QualityRaises +
		s.ThresholdBoosts + s.ThresholdEases + s.CongestedEnters + s.CongestedExits
}

// Snapshot copies the counters. Taken while the session is live, fields are
// individually — not mutually — consistent.
func (c *ControllerCounters) Snapshot() AdaptSnapshot {
	return AdaptSnapshot{
		FeedbackReports: c.feedbackReports.Load(),
		LocalSignals:    c.localSignals.Load(),
		GOPShrinks:      c.gopShrinks.Load(),
		GOPGrows:        c.gopGrows.Load(),
		QualityDrops:    c.qualityDrops.Load(),
		QualityRaises:   c.qualityRaises.Load(),
		ThresholdBoosts: c.thresholdBoosts.Load(),
		ThresholdEases:  c.thresholdEases.Load(),
		CongestedEnters: c.congestedEnters.Load(),
		CongestedExits:  c.congestedExits.Load(),
	}
}
