// Telepresence: a budget-planning exercise for the paper's motivating
// application (Sec. I-II). Given a telepresence session's per-frame
// latency budget (~100 ms for interactive streaming [19]) and a battery
// budget, compare all five designs on a full-body capture and report which
// ones fit — reproducing the paper's argument that only the proposed
// designs are edge-deployable (and its closing remark that even they sit
// slightly beyond hard real-time at full capture scale).
package main

import (
	"fmt"
	"log"

	"repro/pcc"
)

const (
	scale         = 0.08
	nFrames       = 6
	latencyMS     = 100.0        // real-time bound the paper targets (Sec. I)
	batteryJ      = 18000.0      // ~5 Wh phone battery budget for the session
	sessionFrames = 30 * 60 * 10 // 10 minutes at 30 fps
)

func main() {
	video := pcc.NewVideo("redandblack", scale)
	frames := make([]*pcc.PointCloud, nFrames)
	var err error
	for i := range frames {
		if frames[i], err = video.Frame(i); err != nil {
			log.Fatal(err)
		}
	}
	fullScalePts := float64(video.TargetPoints()) / scale
	scaleUp := fullScalePts / float64(frames[0].Len())

	fmt.Printf("telepresence planning: %s, %d pts/frame at full capture scale\n",
		video.Name(), int(fullScalePts))
	fmt.Printf("budget: %.0f ms/frame, %.0f J battery for a 10-minute session\n\n", latencyMS, batteryJ)
	fmt.Printf("%-15s %12s %12s %10s %9s %s\n",
		"design", "ms/frame*", "J/frame*", "session-J", "ratio", "verdict")

	for _, d := range pcc.Designs() {
		opts := pcc.DefaultOptions(d)
		opts.IntraAttr.Segments = 2500
		opts.Inter.Segments = 4000
		enc := pcc.NewEncoderOptions(opts)
		var msSum, jSum, rawB, cmpB float64
		for _, f := range frames {
			_, st, err := enc.Encode(f)
			if err != nil {
				log.Fatal(err)
			}
			msSum += st.TotalTime.Seconds() * 1000
			jSum += st.EnergyJ
			rawB += float64(f.RawBytes())
			cmpB += float64(st.SizeBytes)
		}
		// The device model scales linearly with point count; extrapolate
		// the sub-scale run to the full capture size.
		msFull := msSum / float64(nFrames) * scaleUp
		jFull := jSum / float64(nFrames) * scaleUp
		sessionJ := jFull * sessionFrames
		verdict := "real-time capable"
		switch {
		case msFull > latencyMS*4:
			verdict = "too slow (not interactive)"
		case msFull > latencyMS:
			verdict = "near real-time (paper: slightly beyond 100ms)"
		}
		if sessionJ > batteryJ {
			verdict += "; drains battery"
		}
		fmt.Printf("%-15s %12.1f %12.3f %10.0f %8.1fx %s\n",
			d, msFull, jFull, sessionJ, rawB/cmpB, verdict)
	}
	fmt.Println("\n* simulated Jetson-AGX-Xavier (15W) numbers extrapolated to full capture scale")
}
