package codec

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadFrameFrom drives the frame-container parser with arbitrary bytes.
func FuzzReadFrameFrom(f *testing.F) {
	// Seed with a valid container.
	ef := &EncodedFrame{Type: PFrame, Depth: 10, NumPoints: 3, Geometry: []byte{1, 2}, Attr: []byte{3}}
	var buf bytes.Buffer
	if _, err := ef.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	rs := &EncodedFrame{Type: IFrame, Depth: 10, NumPoints: 1, HasRescale: true}
	rs.Rescale.ScaleX, rs.Rescale.ScaleY, rs.Rescale.ScaleZ = 1<<16, 1<<16, 1<<16
	buf.Reset()
	if _, err := rs.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PCVF"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadFrameFrom(bytes.NewReader(data))
		if err != nil {
			if err != io.EOF && g != nil {
				t.Fatal("error with non-nil frame")
			}
			return
		}
		// A parsed frame must re-serialize.
		var out bytes.Buffer
		if _, err := g.WriteTo(&out); err != nil {
			t.Fatalf("reserialize: %v", err)
		}
	})
}

// FuzzParseLayerDirectory drives the zero-copy layout parser with arbitrary
// bytes and holds it to a DIFFERENTIAL invariant against the container
// reader: whenever ParseFrameLayout accepts a buffer, ReadFrameFrom must
// accept the same bytes, re-serialize them identically, and the layout's
// directory view must match the parsed frame's. On layered layouts the
// per-viewer truncation must also produce a frame the reader accepts.
func FuzzParseLayerDirectory(f *testing.F) {
	// Seed with real layered containers, tiled and untiled, plus mutations
	// the parser must reject structurally.
	for _, tiles := range []int{0, 4} {
		opts := scaledOpts(IntraInterV1, frames(f, 1)[0].Len())
		opts.Tiles = tiles
		opts.Layers = 3
		enc := NewEncoder(dev(), opts)
		ef, _, err := enc.EncodeFrame(frames(f, 1)[0])
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ef.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		wire := buf.Bytes()
		f.Add(append([]byte(nil), wire...))
		f.Add(append([]byte(nil), wire[:len(wire)/2]...))
		for _, off := range []int{6, 20, 40, len(wire) - 1} {
			mut := append([]byte(nil), wire...)
			mut[off] ^= 0x41
			f.Add(mut)
		}
	}
	f.Add([]byte("PCVF"))

	f.Fuzz(func(t *testing.T, data []byte) {
		l := ParseFrameLayout(data)
		if l == nil {
			return
		}
		ef, err := ReadFrameFrom(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("layout accepted but reader rejected: %v", err)
		}
		var out bytes.Buffer
		if _, err := ef.WriteTo(&out); err != nil {
			t.Fatalf("reserialize: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatal("layout-accepted container does not round-trip byte-identically")
		}
		if len(l.Tiles) != len(ef.Tiles) {
			t.Fatalf("layout has %d tiles, frame has %d", len(l.Tiles), len(ef.Tiles))
		}
		for i := range l.Tiles {
			if l.Tiles[i] != ef.Tiles[i] {
				t.Fatalf("tile %d mismatch", i)
			}
		}
		if l.Layered() != ef.Layered() {
			t.Fatal("layered-ness disagreement")
		}
		if !l.Layered() {
			return
		}
		if l.Layers != int(ef.Layer.Layers) || l.Sub != int(ef.Layer.Sub) ||
			l.BaseLevel != int(ef.Layer.BaseLevel) {
			t.Fatal("layer prologue mismatch")
		}
		for u := 0; u < l.LayerUnits(); u++ {
			for lay := 0; lay < l.Layers; lay++ {
				s := ef.Layer.Units[u][lay]
				if l.LayerGeom[u*l.Layers+lay] != s.GeomLen || l.LayerAttr[u*l.Layers+lay] != s.AttrLen {
					t.Fatalf("unit %d layer %d span mismatch", u, lay)
				}
			}
		}
		// The base-only truncation must itself be a valid container.
		part := l.RewriteHeaderSub(data, 0, 0, 1)
		for u := 0; u < l.LayerUnits(); u++ {
			if len(l.Tiles) > 0 && l.Tiles[u].Omitted() {
				continue
			}
			n := int(l.LayerGeom[u*l.Layers])
			part = append(part, data[l.GeomOff[u]:l.GeomOff[u]+n]...)
		}
		for u := 0; u < l.LayerUnits(); u++ {
			if len(l.Tiles) > 0 && (l.Tiles[u].Omitted() || l.Tiles[u].Coarse()) {
				continue
			}
			n := int(l.LayerAttr[u*l.Layers])
			part = append(part, data[l.AttrOff[u]:l.AttrOff[u]+n]...)
		}
		if _, err := ReadFrameFrom(bytes.NewReader(part)); err != nil {
			t.Fatalf("base-only truncation rejected: %v", err)
		}
	})
}
