// Package stream is a concurrent, bounded-channel streaming pipeline for
// point-cloud video: ingest → geometry encode → attribute encode →
// packetize → link transmit, with every stage running in its own goroutine
// so stages overlap across frames (the geometry encode of frame N+1 runs
// while frame N's attributes are still being coded — the frame-granularity
// analogue of the paper's intra-frame parallelism, Sec. IV).
//
// GOP I/P dependencies are respected: the attribute stage finishes frames
// strictly in submission order and performs the encoder's reference-frame
// handoff, so P-frames always predict from the correct I-frame. When the
// modelled link congests, a configurable backpressure policy keeps latency
// bounded: Block stalls the producer, DropOldestP sacrifices the oldest
// queued P-frame (never an I-frame) so the stream stays decodable.
//
// Sessions are isolated — each owns its encoder, its per-stage edge-device
// ledgers, and its queues — so any number of them can run in parallel
// (multi-viewer edge serving). Per-stage queue depths and drop counters are
// surfaced through internal/metrics queue gauges.
package stream

import (
	"bytes"
	"context"
	"io"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/linksim"
	"repro/internal/metrics"
)

// Policy selects the backpressure behaviour when the transmit queue fills.
type Policy int

const (
	// Block stalls the pipeline (and ultimately Submit) until the link
	// drains — lossless, unbounded latency.
	Block Policy = iota
	// DropOldestP marks the oldest queued P-frame as dropped to bound
	// queueing latency. I-frames are never dropped; a queue holding only
	// I-frames blocks instead.
	DropOldestP
)

func (p Policy) String() string {
	if p == DropOldestP {
		return "drop-oldest-P"
	}
	return "block"
}

// SendFunc optionally transmits a packetized frame over a real transport
// (the wire bytes are one .pcv frame container). It runs in the transmit
// stage, in frame order; returning an error aborts the session. The
// context is the session's: implementations must return (with any error)
// once it is cancelled, or Close cannot drain the pipeline. The wire slice
// is only valid for the duration of the call — the session recycles its
// backing buffer for a later frame; implementations that retain the bytes
// must copy them.
type SendFunc func(ctx context.Context, seq int, wire []byte) error

// PacketSendFunc transmits one framed packet (packet.go layout) over a
// datagram-style transport. It runs in the transmit stage for fresh
// packets and on the HandleControl caller's goroutine for retransmissions;
// returning an error aborts the session. Implementations must tolerate
// re-entrant invocation: an in-process receiver can NACK from within the
// delivery of an earlier packet.
type PacketSendFunc func(ctx context.Context, pkt []byte) error

// FrameSendFunc receives each undropped frame's type and wire bytes, in
// transmit order — the fan-out hook a Server uses to broadcast one encode
// to many viewers. It runs in the transmit stage; returning an error aborts
// the session. The wire slice is only valid for the duration of the call
// (the session recycles its backing buffer); implementations that retain
// the bytes must copy them.
type FrameSendFunc func(ctx context.Context, seq int, ftype codec.FrameType, wire []byte) error

// Config configures a Session. The zero value of every field is usable:
// paper-default codec options require only Options.Design, the link
// defaults to Wi-Fi, queues to depth 4, packets to a 1400-byte MTU.
type Config struct {
	// Options selects and configures the codec (as codec.OptionsFor).
	Options codec.Options
	// Mode selects the modelled edge board's power budget.
	Mode edgesim.PowerMode
	// Link is the modelled wireless uplink (default linksim.WiFi).
	Link linksim.Link
	// Queue is the per-stage queue capacity (default 4).
	Queue int
	// Lookahead is how many frames the geometry stage may encode ahead of
	// the in-order attribute stage (default 1 = classic two-stage overlap).
	// Values > 1 run that many concurrent geometry workers, each with its
	// own device ledger; frames still reach the attribute stage — and the
	// GOP reference handoff — strictly in submission order.
	Lookahead int
	// Policy is the transmit-queue backpressure policy.
	Policy Policy
	// MTU is the packet payload size used by the packetize stage
	// (default 1400 bytes).
	MTU int
	// Pace, when > 0, makes the transmit stage sleep Pace real seconds per
	// simulated link second, so a congested link really backpressures the
	// pipeline (0 = transmit at full speed, accounting latency only).
	Pace float64
	// Send, when set, transmits each undropped frame's wire bytes (e.g.
	// over TCP). Dropped frames are skipped.
	Send SendFunc
	// Output, when set, receives the .pcv stream (header + surviving
	// frames, in order); a core.VideoReader on the other end decodes it.
	// The byte slice passed to Write is recycled after the call returns, so
	// writers that buffer asynchronously must copy (io.Writer's contract).
	Output io.Writer
	// FrameOut, when set, receives each undropped frame's encoded wire
	// bytes in transmit order, before Send/Output/PacketOut emission. A
	// Server uses it to broadcast one encode to many viewers.
	FrameOut FrameSendFunc
	// StreamID tags every packet emitted through PacketOut (default 1).
	StreamID uint32
	// PacketOut, when set, emits each undropped frame as framed packets
	// (packet.go) with consecutive per-stream sequence numbers, retaining
	// them in a bounded retransmit buffer so HandleControl can answer
	// receiver NACKs. Sequence numbers are assigned at transmit time, so
	// frames shed by the backpressure policy leave a frame-index gap but
	// no sequence gap — a receiver tells sender drops from network loss.
	PacketOut PacketSendFunc
	// RetransmitBuffer caps how many sent packets are retained for NACK
	// retransmission (default 1024; oldest evicted first).
	RetransmitBuffer int
	// FEC configures forward-error-correction parity emission over
	// PacketOut (see fec.go). The zero value emits no parity unless the
	// congestion controller's adaptive parity knob raises it; either way
	// the .pcv wire output (Send/Output/FrameOut) is untouched — parity
	// exists only in the packet stream.
	FEC FECConfig
}

func (c Config) normalized() Config {
	if c.Queue < 1 {
		c.Queue = 4
	}
	if c.Lookahead < 1 {
		c.Lookahead = 1
	}
	if c.MTU < 64 {
		c.MTU = 1400
	}
	if c.Link.BandwidthMbps <= 0 {
		c.Link = linksim.WiFi
	}
	if c.StreamID == 0 {
		c.StreamID = 1
	}
	if c.RetransmitBuffer < 1 {
		c.RetransmitBuffer = 1024
	}
	return c
}

// job is one frame flowing through the pipeline; stages fill and then
// release their fields so a queued frame holds only what later stages need.
type job struct {
	seq   int
	cloud *geom.VoxelCloud
	g     *codec.GeometryIntermediate
	frame *codec.EncodedFrame
	ftype codec.FrameType
	stats codec.FrameStats
	wire  []byte
	// wbuf is the pooled buffer backing wire; the transmit stage recycles
	// it once the frame has been emitted (or dropped).
	wbuf    *bytes.Buffer
	packets int
	dropped bool
}

// wireBufs pools the per-frame wire serialization buffers so steady-state
// packetization allocates nothing beyond the frame payload itself.
var wireBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Result reports the fate of one submitted frame, delivered in submission
// order on Session.Results.
type Result struct {
	Seq   int
	Stats codec.FrameStats
	// Dropped frames were encoded but sacrificed by the backpressure
	// policy before transmission (always P-frames).
	Dropped bool
	// Packets and WireBytes describe the packetized frame container.
	Packets   int
	WireBytes int64
	// Link is the modelled transmission cost (zero for dropped frames).
	Link linksim.Cost
}

// Metrics is a point-in-time snapshot of a session's pipeline state.
type Metrics struct {
	Submitted, Delivered, Dropped int64
	// Queues are the per-stage queue gauges in pipeline order:
	// ingest, geometry, packetize, transmit.
	Queues []metrics.QueueSnapshot
	// GeometrySim/AttrSim are the per-stage device ledgers (the two encode
	// stages run on separate modelled engines so they can overlap).
	GeometrySim     time.Duration
	GeometryEnergyJ float64
	AttrSim         time.Duration
	AttrEnergyJ     float64
	// Link totals over all transmitted frames.
	LinkTime  time.Duration
	TxEnergyJ float64
	RxEnergyJ float64
	WireBytes int64
	Packets   int64
	// Lossy-transport counters (PacketOut sessions): packets re-sent in
	// answer to NACKs, NACKed packets already evicted from the retransmit
	// buffer, and receiver-requested I-frame refreshes honoured.
	Retransmits int64
	RetxMisses  int64
	Refreshes   int64
	// Congestion-feedback counters: receiver reports consumed by the
	// controller, and reports rejected as duplicate or out of order.
	FeedbackReports int64
	FeedbackStale   int64
	// Adapt is the congestion controller's state (zero value when
	// Options.Adapt is disabled).
	Adapt codec.ControllerSnapshot
	// FEC counts the session's parity emission (ParitySent; the receive
	// side lives in the Receiver's RecoverySnapshot).
	FEC metrics.FECSnapshot
}

// Session is one live streaming pipeline. Create with New, feed frames with
// Submit (single producer), consume Results, then Close to drain. Cancel —
// or cancelling the context passed to New — aborts mid-stream.
type Session struct {
	cfg Config
	enc *codec.Encoder
	// geomDevs holds one device per geometry worker (len = Lookahead), so
	// concurrent geometry phases keep per-frame stage deltas exact.
	geomDevs []*edgesim.Device
	attrDev  *edgesim.Device

	ctx    context.Context
	cancel context.CancelFunc

	in      chan *job
	gq      chan *job
	pq      chan *job
	txq     *frameQueue
	results chan Result

	gaugeIn, gaugeGeom, gaugePkt, gaugeTx *metrics.QueueGauge

	nextSeq   int
	closeOnce sync.Once
	closeErr  error
	wg        sync.WaitGroup

	errOnce  sync.Once
	firstErr error

	mu          sync.Mutex
	submitted   int64
	delivered   int64
	droppedN    int64
	linkTime    time.Duration
	txJ, rxJ    float64
	wireBytes   int64
	packets     int64
	retransmits int64
	retxMisses  int64
	refreshes   int64
	// Feedback bookkeeping: the highest report number consumed (reports are
	// numbered monotonically by the receiver; lower-or-equal ones are
	// duplicates or reorders and must not double-steer the controller).
	feedbackReports int64
	staleFeedback   int64
	lastFbReport    uint32
	wroteHdr        bool

	// Retransmit buffer: sent packets by sequence number, FIFO-evicted.
	// pktSeq is only touched by the transmit stage; the buffer is shared
	// with HandleControl callers.
	pktSeq   uint32
	retxMu   sync.Mutex
	retx     map[uint32][]byte
	retxFIFO []uint32

	// fec counts parity packets emitted (transmit stage only writes;
	// Metrics reads atomically).
	fec metrics.FECCounters
}

// New starts a session's stage goroutines. Cancelling ctx aborts the
// session (Submit and Close return the cancellation error).
func New(ctx context.Context, cfg Config) *Session {
	cfg = cfg.normalized()
	sctx, cancel := context.WithCancel(ctx)
	s := &Session{
		cfg:       cfg,
		attrDev:   edgesim.NewXavier(cfg.Mode),
		ctx:       sctx,
		cancel:    cancel,
		in:        make(chan *job, cfg.Queue),
		gq:        make(chan *job, cfg.Queue),
		pq:        make(chan *job, cfg.Queue),
		results:   make(chan Result, cfg.Queue),
		gaugeIn:   metrics.NewQueueGauge("ingest"),
		gaugeGeom: metrics.NewQueueGauge("geometry"),
		gaugePkt:  metrics.NewQueueGauge("packetize"),
		gaugeTx:   metrics.NewQueueGauge("transmit"),
		retx:      make(map[uint32][]byte),
	}
	s.geomDevs = make([]*edgesim.Device, cfg.Lookahead)
	for i := range s.geomDevs {
		s.geomDevs[i] = edgesim.NewXavier(cfg.Mode)
	}
	s.enc = codec.NewEncoder(s.attrDev, cfg.Options)
	s.txq = newFrameQueue(cfg.Queue, cfg.Policy, s.gaugeTx)

	// Propagate context cancellation into the cond-based transmit queue.
	go func() {
		<-sctx.Done()
		s.txq.cancelQ()
	}()

	s.wg.Add(4)
	go s.geometryStage()
	go s.attrStage()
	go s.packetizeStage()
	go s.transmitStage()
	return s
}

// fail records the session's first error and aborts the pipeline.
func (s *Session) fail(err error) {
	s.errOnce.Do(func() {
		s.firstErr = err
		s.cancel()
	})
}

// Submit hands the pipeline the next frame. It blocks when the ingest
// queue is full (backpressure reaches the producer under the Block policy).
// Submit is single-producer: frames take sequence numbers in call order.
func (s *Session) Submit(ctx context.Context, vc *geom.VoxelCloud) error {
	if vc == nil || vc.Len() == 0 {
		return codec.ErrEmptyFrame
	}
	j := &job{seq: s.nextSeq, cloud: vc}
	select {
	case s.in <- j:
		s.nextSeq++
		s.gaugeIn.Enqueue()
		s.mu.Lock()
		s.submitted++
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.ctx.Done():
		if err := s.Err(); err != nil {
			return err
		}
		return s.ctx.Err()
	}
}

// Results delivers one Result per submitted frame, in submission order,
// including dropped frames. The channel closes once the pipeline drains
// after Close (or aborts). Consume it concurrently with Submit: an unread
// Results channel eventually backpressures the transmit stage.
func (s *Session) Results() <-chan Result { return s.results }

// Close stops accepting frames, drains every stage, and returns the first
// pipeline error (nil on a clean drain, the cancellation error if the
// session was aborted). Results must be consumed for Close to finish.
// Close is idempotent: later calls return the first call's result.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		close(s.in)
		s.wg.Wait()
		err := s.ctx.Err() // read before the self-cancel below
		s.cancel()         // release the context watcher; no-op on drained queues
		s.closeErr = err
		if s.firstErr != nil {
			s.closeErr = s.firstErr
		}
	})
	return s.closeErr
}

// Cancel aborts the session immediately: queued frames are discarded and
// in-flight stage work is abandoned at the next handoff.
func (s *Session) Cancel() { s.cancel() }

// Err returns the first pipeline error, if any.
func (s *Session) Err() error {
	s.errOnce.Do(func() {}) // synchronize with fail
	return s.firstErr
}

// Options returns the encoder's normalized configuration.
func (s *Session) Options() codec.Options { return s.enc.Options() }

// Metrics snapshots the session's pipeline counters and device ledgers.
func (s *Session) Metrics() Metrics {
	s.mu.Lock()
	m := Metrics{
		Submitted:       s.submitted,
		Delivered:       s.delivered,
		Dropped:         s.droppedN,
		LinkTime:        s.linkTime,
		TxEnergyJ:       s.txJ,
		RxEnergyJ:       s.rxJ,
		WireBytes:       s.wireBytes,
		Packets:         s.packets,
		Retransmits:     s.retransmits,
		RetxMisses:      s.retxMisses,
		Refreshes:       s.refreshes,
		FeedbackReports: s.feedbackReports,
		FeedbackStale:   s.staleFeedback,
	}
	s.mu.Unlock()
	m.FEC = s.fec.Snapshot()
	if ctrl := s.enc.Controller(); ctrl != nil {
		m.Adapt = ctrl.Snapshot()
	}
	m.Queues = []metrics.QueueSnapshot{
		s.gaugeIn.Snapshot(),
		s.gaugeGeom.Snapshot(),
		s.gaugePkt.Snapshot(),
		s.gaugeTx.Snapshot(),
	}
	for _, d := range s.geomDevs {
		m.GeometrySim += d.SimTime()
		m.GeometryEnergyJ += d.EnergyJ()
	}
	m.AttrSim = s.attrDev.SimTime()
	m.AttrEnergyJ = s.attrDev.EnergyJ()
	return m
}

// geometryStage encodes geometry up to cfg.Lookahead frames ahead of the
// in-order attribute stage: a dispatcher feeds a fixed set of workers (one
// device each — geometry touches no mutable encoder state, so frames
// encode concurrently), and an in-order collector forwards completed
// frames to attrStage strictly in submission order, preserving the GOP
// reference handoff.
func (s *Session) geometryStage() {
	defer s.wg.Done()
	defer close(s.gq)
	type pending struct {
		j    *job
		err  error
		done chan struct{}
	}
	look := s.cfg.Lookahead
	work := make(chan *pending)
	order := make(chan *pending, look) // bounds in-flight geometry
	var wwg sync.WaitGroup
	wwg.Add(look)
	for w := 0; w < look; w++ {
		dev := s.geomDevs[w]
		go func() {
			defer wwg.Done()
			for p := range work {
				if err := s.ctx.Err(); err != nil {
					p.err = err
				} else {
					p.j.g, p.err = s.enc.EncodeGeometryOn(dev, p.j.cloud)
				}
				close(p.done)
			}
		}()
	}
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for p := range order {
			<-p.done
			if p.err != nil {
				// Suppress the cancellation pseudo-error workers report
				// while draining an aborted session.
				if s.ctx.Err() == nil {
					s.fail(p.err)
				}
				continue
			}
			p.j.cloud = nil
			select {
			case s.gq <- p.j:
				s.gaugeGeom.Enqueue()
			case <-s.ctx.Done():
			}
		}
	}()
	for j := range s.in {
		s.gaugeIn.Dequeue()
		if s.ctx.Err() != nil {
			continue // drain remaining submissions without encoding
		}
		p := &pending{j: j, done: make(chan struct{})}
		order <- p
		work <- p
	}
	close(work)
	wwg.Wait()
	close(order)
	<-collectorDone
}

// attrStage finishes frames strictly in order: it owns the GOP position and
// the I-frame reference handoff inside the encoder.
func (s *Session) attrStage() {
	defer s.wg.Done()
	defer close(s.pq)
	for j := range s.gq {
		s.gaugeGeom.Dequeue()
		if s.ctx.Err() != nil {
			continue
		}
		frame, st, err := s.enc.FinishFrame(j.g)
		if err != nil {
			s.fail(err)
			continue
		}
		j.g, j.frame, j.ftype, j.stats = nil, frame, frame.Type, st
		select {
		case s.pq <- j:
			s.gaugePkt.Enqueue()
		case <-s.ctx.Done():
		}
	}
}

// packetizeStage serializes each frame into its wire container, splits it
// into MTU-sized packets, and pushes it into the policy-governed transmit
// queue — the point where backpressure resolves into blocking or dropping.
func (s *Session) packetizeStage() {
	defer s.wg.Done()
	defer s.txq.closeQ()
	for j := range s.pq {
		s.gaugePkt.Dequeue()
		if s.ctx.Err() != nil {
			continue
		}
		buf := wireBufs.Get().(*bytes.Buffer)
		buf.Reset()
		if _, err := j.frame.WriteTo(buf); err != nil {
			wireBufs.Put(buf)
			s.fail(err)
			continue
		}
		j.frame = nil
		j.wire = buf.Bytes()
		j.wbuf = buf
		j.packets = (len(j.wire) + s.cfg.MTU - 1) / s.cfg.MTU
		if err := s.txq.push(j); err != nil {
			continue // canceled
		}
	}
}

// transmitStage drains the transmit queue in order, charging the modelled
// link for surviving frames and reporting every frame's fate.
func (s *Session) transmitStage() {
	defer s.wg.Done()
	defer close(s.results)
	for {
		j, ok := s.txq.pop()
		if !ok {
			return
		}
		res := Result{
			Seq:       j.seq,
			Stats:     j.stats,
			Dropped:   j.dropped,
			Packets:   j.packets,
			WireBytes: int64(len(j.wire)),
		}
		if j.dropped {
			s.mu.Lock()
			s.droppedN++
			s.mu.Unlock()
			s.observeLocal(linksim.Cost{}, true)
		} else {
			cost, err := s.cfg.Link.Transmit(int64(len(j.wire)))
			if err != nil {
				s.fail(err)
				return
			}
			res.Link = cost
			s.observeLocal(cost, false)
			s.mu.Lock()
			s.delivered++
			s.linkTime += cost.Latency
			s.txJ += cost.TxEnergy
			s.rxJ += cost.RxEnergy
			s.wireBytes += int64(len(j.wire))
			s.packets += int64(j.packets)
			s.mu.Unlock()
			if s.cfg.Pace > 0 {
				pause := time.Duration(float64(cost.Latency) * s.cfg.Pace)
				select {
				case <-time.After(pause):
				case <-s.ctx.Done():
					return
				}
			}
			if s.cfg.FrameOut != nil {
				if err := s.cfg.FrameOut(s.ctx, j.seq, j.ftype, j.wire); err != nil {
					s.fail(err)
					return
				}
			}
			if err := s.emitWire(j); err != nil {
				s.fail(err)
				return
			}
			if s.cfg.PacketOut != nil {
				if err := s.emitPackets(j); err != nil {
					s.fail(err)
					return
				}
			}
		}
		if j.wbuf != nil {
			// Packets and outputs copy the wire bytes, so the buffer is
			// free for a later frame once emission is done.
			j.wire = nil
			wireBufs.Put(j.wbuf)
			j.wbuf = nil
		}
		select {
		case s.results <- res:
		case <-s.ctx.Done():
			return
		}
	}
}

// Collector drains a session's Results in the background, so producers
// that only care about the final tally can Submit then Close without
// plumbing their own consumer goroutine.
type Collector struct {
	done    chan struct{}
	results []Result
}

// NewCollector starts draining s.Results.
func NewCollector(s *Session) *Collector {
	c := &Collector{done: make(chan struct{})}
	go func() {
		defer close(c.done)
		for r := range s.Results() {
			c.results = append(c.results, r)
		}
	}()
	return c
}

// Wait blocks until the session's Results channel closes (i.e. after
// Session.Close or Cancel) and returns every result in delivery order.
func (c *Collector) Wait() []Result {
	<-c.done
	return c.results
}

// emitPackets frames one transmitted frame into real packets, assigns its
// sequence-number range, buffers each packet for retransmission, and sends
// it through PacketOut. Runs only on the transmit stage.
func (s *Session) emitPackets(j *job) error {
	first := s.pktSeq
	pkts := PacketizeFrame(s.cfg.StreamID, uint32(j.seq), j.ftype, first, j.wire, s.cfg.MTU)
	s.pktSeq += uint32(len(pkts))
	var groups []groupSpec
	if k := s.cfg.FEC.groupLen(s.enc.Controller()); k > 0 {
		groups = parityGroups(len(pkts), k, j.ftype)
	}
	gi := 0
	mtu := payloadMTU(s.cfg.MTU)
	for i, p := range pkts {
		s.bufferPacket(first+uint32(i), p)
		if err := s.cfg.PacketOut(s.ctx, p); err != nil {
			return err
		}
		// Parity interleaves with data: each group's XOR packet goes out
		// right after the group's last covered fragment, so a repair trails
		// the loss it fixes by at most a group's worth of packet-times and
		// lands well inside the receiver's NACK timer even on long frames.
		// Parity consumes no sequence numbers and is not buffered for
		// retransmission — a lost parity packet costs only its own repair
		// power, never a NACK round trip.
		for gi < len(groups) && groups[gi].end() <= i {
			g := groups[gi]
			gi++
			body := buildParityBody(j.wire, mtu, g)
			pkt := parityPacket(s.cfg.StreamID, uint32(j.seq), j.ftype, first, len(pkts), g, body)
			s.fec.ParitySent()
			if err := s.cfg.PacketOut(s.ctx, pkt); err != nil {
				return err
			}
		}
	}
	return nil
}

// bufferPacket retains one sent packet for NACK retransmission, evicting
// the oldest once the buffer is full.
func (s *Session) bufferPacket(seq uint32, pkt []byte) {
	s.retxMu.Lock()
	if len(s.retxFIFO) >= s.cfg.RetransmitBuffer {
		delete(s.retx, s.retxFIFO[0])
		s.retxFIFO = s.retxFIFO[1:]
	}
	s.retx[seq] = pkt
	s.retxFIFO = append(s.retxFIFO, seq)
	s.retxMu.Unlock()
}

// Controller returns the session's congestion controller, nil unless
// Options.Adapt is enabled.
func (s *Session) Controller() *codec.Controller { return s.enc.Controller() }

// observeLocal feeds the congestion controller one per-frame observation
// from the transmit stage: transmit-queue fill, whether the backpressure
// policy shed the frame, and the frame's modelled link time against the
// controller's real-time budget.
func (s *Session) observeLocal(cost linksim.Cost, shed bool) {
	ctrl := s.enc.Controller()
	if ctrl == nil {
		return
	}
	ctrl.ObserveLocal(codec.LocalSignal{
		QueueFill:   float64(s.gaugeTx.Depth()) / float64(s.cfg.Queue),
		Shed:        shed,
		Utilization: float64(cost.Latency) / float64(ctrl.Config().FrameBudget),
	})
}

// HandleControl processes a receiver→sender control message. NACKs are
// answered by re-sending the buffered packets (with FlagRetransmit set)
// through PacketOut; sequence numbers already evicted are counted as
// misses and ignored — the receiver's retry budget will conceal or skip.
// ControlRefresh forces the encoder's next frame to be an I-frame,
// restarting the GOP for a receiver that lost its reference.
// ControlFeedback reports steer the congestion controller (when
// Options.Adapt is enabled); duplicated or reordered reports — the report
// number is not strictly increasing — are dropped as stale so a replayed
// report can never double-steer the knobs. Feedback is counted even with
// the controller disabled, so a misconfigured pairing is visible in
// Metrics.
//
// Safe to call concurrently with a running pipeline, including
// re-entrantly from within a PacketOut delivery chain (in-process
// transports): the retransmit buffer lock is never held across PacketOut.
func (s *Session) HandleControl(c Control) error {
	switch c.Kind {
	case ControlRefresh:
		s.enc.ForceIFrame()
		s.mu.Lock()
		s.refreshes++
		s.mu.Unlock()
	case ControlFeedback:
		fb := c.Feedback
		s.mu.Lock()
		if fb.Report == 0 || fb.Report <= s.lastFbReport {
			s.staleFeedback++
			s.mu.Unlock()
			return nil
		}
		s.lastFbReport = fb.Report
		s.feedbackReports++
		s.mu.Unlock()
		if ctrl := s.enc.Controller(); ctrl != nil {
			ctrl.ObserveFeedback(codec.Signal{
				LossRate:  fb.CongestionRate(),
				NACKs:     int(fb.NACKs),
				Concealed: int(fb.Concealed),
				Skipped:   int(fb.Skipped),
			})
		}
	case ControlNACK:
		var seen map[uint32]struct{}
		if len(c.Seqs) > 1 {
			seen = make(map[uint32]struct{}, len(c.Seqs))
		}
		for _, seq := range c.Seqs {
			// Coalesce duplicate sequence numbers within one NACK (a
			// receiver retry race, or a hostile message): each is answered
			// at most once per control message.
			if seen != nil {
				if _, dup := seen[seq]; dup {
					continue
				}
				seen[seq] = struct{}{}
			}
			s.retxMu.Lock()
			buf, ok := s.retx[seq]
			var cp []byte
			if ok {
				cp = append([]byte(nil), buf...)
				cp[3] |= FlagRetransmit // flags are outside the payload CRC
			}
			s.retxMu.Unlock()
			s.mu.Lock()
			if ok {
				s.retransmits++
			} else {
				s.retxMisses++
			}
			s.mu.Unlock()
			if !ok || s.cfg.PacketOut == nil {
				continue
			}
			if err := s.cfg.PacketOut(s.ctx, cp); err != nil {
				return err
			}
		}
	}
	return nil
}

// emitWire hands the frame's wire bytes to the configured transports.
func (s *Session) emitWire(j *job) error {
	if s.cfg.Send != nil {
		if err := s.cfg.Send(s.ctx, j.seq, j.wire); err != nil {
			return err
		}
	}
	if s.cfg.Output != nil {
		if !s.wroteHdr {
			if err := core.WriteStreamHeader(s.cfg.Output, s.enc.Options()); err != nil {
				return err
			}
			s.wroteHdr = true
		}
		if _, err := s.cfg.Output.Write(j.wire); err != nil {
			return err
		}
	}
	return nil
}
