package pcc

import (
	"errors"

	"repro/internal/codec"
	"repro/internal/entropy"
	"repro/internal/paroctree"
)

// Progressive decoding. The proposed designs serialize geometry
// breadth-first, so ANY PREFIX of the stream is a complete coarse frame: a
// streaming receiver can display a low-resolution cloud after the first few
// kilobytes and refine as bytes arrive. (The sequential baselines' DFS
// streams have no such cut points.)

// ErrNotProgressive is returned for frames whose geometry stream does not
// support prefix decoding (TMC13/CWIPC frames).
var ErrNotProgressive = errors.New("pcc: frame is not progressively decodable")

// DecodeProgressive decodes only the first `level` octree levels of a
// proposed-design frame (IntraOnly / IntraInter*), returning a coarse cloud
// with points at the centres of the level-`level` cells in full-lattice
// coordinates. level >= the frame's depth decodes full resolution
// (geometry only — attributes are not populated by this call).
//
// GeometryPrefixBytes in the second return is how much of the geometry
// stream a receiver must have to show this level.
func DecodeProgressive(f *EncodedFrame, level uint) (*PointCloud, int, error) {
	dev := NewDevice(Mode15W)
	if len(f.Geometry) == 0 {
		return nil, 0, ErrNotProgressive
	}
	stream := f.Geometry[1:]
	switch f.Geometry[0] {
	case 0:
		// fast path: raw BFS stream
	case 1:
		// Entropy-coded geometry must be fully decompressed first (the
		// arithmetic stream is not prefix-decodable) — one more reason the
		// paper's fast path discards the entropy stage.
		var err error
		stream, err = entropy.DecompressBytes(stream)
		if err != nil {
			return nil, 0, err
		}
	default:
		return nil, 0, ErrNotProgressive
	}
	lod, err := paroctree.DeserializeLoD(dev, stream, uint(f.Depth), level)
	if err != nil {
		return nil, 0, err
	}
	voxels := lod.UpscaleToLattice(dev, uint(f.Depth))
	if f.HasRescale {
		for i := range voxels {
			voxels[i] = f.Rescale.Invert(voxels[i])
		}
	}
	return &PointCloud{Depth: uint(f.Depth), Voxels: voxels}, lod.PrefixBytes, nil
}

// interface check: EncodedFrame is the codec container type.
var _ = codec.EncodedFrame{}
