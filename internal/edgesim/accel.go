package edgesim

import "time"

// Accelerator support: the paper's architectural-insights section
// (Sec. VI-D) identifies Diff_Squared and Squared_Sum as the dominant
// energy consumers of the inter-frame pipeline and proposes, as future
// work, "replacing GPU with ASIC" for the first and "customizing the
// accelerator (e.g., number of layers of the tree-structured adder)" for
// the second. This file models that hypothetical fixed-function unit so the
// projection can be evaluated (pccbench `future`).

// AccelConfig describes the modelled fixed-function unit.
type AccelConfig struct {
	// Gops is the unit's aggregate effective throughput. Fixed-function
	// datapaths avoid instruction overheads; 8x the achieved GPU
	// throughput for these regular kernels is a conservative ASIC figure.
	Gops float64
	// ActiveMW is the unit's power while streaming.
	ActiveMW float64
	// LaunchOverhead is the per-invocation setup cost (DMA descriptors).
	LaunchOverhead time.Duration
}

// DefaultAccel is the paper-projected ASIC: a squared-difference datapath
// feeding a tree-structured adder.
func DefaultAccel() AccelConfig {
	return AccelConfig{Gops: 160, ActiveMW: 280, LaunchOverhead: 8 * time.Microsecond}
}

// WithAccelerator returns a copy of the config with the fixed-function unit
// attached.
func WithAccelerator(c Config, a AccelConfig) Config {
	c.Name += "+ASIC"
	c.Accel = a
	return c
}

// HasAccel reports whether an accelerator is configured.
func (c Config) HasAccel() bool { return c.Accel.Gops > 0 }

// accelTime models one invocation over n items.
func (d *Device) accelTime(items int64, c Cost) time.Duration {
	agg := d.cfg.Accel.Gops * 1e9 * d.cfg.SpeedScale
	bw := d.cfg.MemBandwidthGBs * 1e9 * d.cfg.SpeedScale
	compute := c.OpsPerItem * float64(items) / agg
	mem := c.BytesPerItem * float64(items) / bw
	t := compute
	if mem > t {
		t = mem
	}
	launch := time.Duration(float64(d.cfg.Accel.LaunchOverhead) / d.cfg.SpeedScale)
	return launch + time.Duration(t*float64(time.Second))
}

// AccelKernel runs body with real parallelism (like GPUKernel) but accounts
// the work on the fixed-function unit. Falls back to GPU accounting when no
// accelerator is configured, so pipelines can pass the flag through
// unconditionally.
func (d *Device) AccelKernel(name string, items int, c Cost, body func(start, end int)) {
	if !d.cfg.HasAccel() {
		d.GPUKernel(name, items, c, body)
		return
	}
	start := time.Now()
	d.pool.ranges(d.workers, items, body)
	wall := time.Since(start)
	d.account(name, EngineAccel, int64(items), c, d.accelTime(int64(items), c), wall, 0, d.workers)
}

// AccelNoop accounts accelerator work whose computation already happened
// inside another call.
func (d *Device) AccelNoop(name string, items int, c Cost) {
	if !d.cfg.HasAccel() {
		d.GPUNoop(name, items, c)
		return
	}
	d.account(name, EngineAccel, int64(items), c, d.accelTime(int64(items), c), 0, 0, 0)
}
