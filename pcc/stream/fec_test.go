package stream

// Forward-error-correction tests: parity group layout, XOR repair
// algebra, the parity wire format (including its fuzz target), and the
// end-to-end zero-RTT repair claims:
//
//   - a single loss per parity group decodes with zero NACK round trips
//     on the deterministic virtual-clock LossyPipe;
//   - parity survives drop/dup/reorder and Gilbert–Elliott burst faults
//     without ever corrupting a frame silently;
//   - with FEC disabled the packet stream and .pcv output are
//     byte-identical to a sender with no FEC at all;
//   - the relay tree fans parity out per viewer, reusing the published
//     XOR bodies at the server MTU and rebuilding at other MTUs;
//   - feedback windows net recovered packets out of the loss they report.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/codec"
	"repro/internal/linksim"
)

func TestParityGroupsLayout(t *testing.T) {
	cases := []struct {
		name  string
		n, k  int
		ftype codec.FrameType
		want  []groupSpec
	}{
		{"no parity", 10, 0, codec.PFrame, nil},
		{"no fragments", 0, 4, codec.PFrame, nil},
		{"p-frame exact runs", 6, 3, codec.PFrame, []groupSpec{
			{base: 0, count: 3, stride: 1}, {base: 3, count: 3, stride: 1}}},
		{"p-frame ragged tail", 7, 3, codec.PFrame, []groupSpec{
			{base: 0, count: 3, stride: 1}, {base: 3, count: 3, stride: 1},
			{base: 6, count: 1, stride: 1}}},
		{"p-frame single", 1, 4, codec.PFrame, []groupSpec{
			{base: 0, count: 1, stride: 1}}},
		{"i-frame interleaved even span", 8, 4, codec.IFrame, []groupSpec{
			{base: 0, count: 4, stride: 2}, {base: 1, count: 4, stride: 2}}},
		{"i-frame interleaved odd span", 7, 4, codec.IFrame, []groupSpec{
			{base: 0, count: 4, stride: 2}, {base: 1, count: 3, stride: 2}}},
		{"i-frame short second span falls back", 10, 4, codec.IFrame, []groupSpec{
			{base: 0, count: 4, stride: 2}, {base: 1, count: 4, stride: 2},
			{base: 8, count: 2, stride: 1}}},
		{"i-frame tiny span falls back", 9, 4, codec.IFrame, []groupSpec{
			{base: 0, count: 4, stride: 2}, {base: 1, count: 4, stride: 2},
			{base: 8, count: 1, stride: 1}}},
		{"i-frame k=1 stays stride-1", 4, 1, codec.IFrame, []groupSpec{
			{base: 0, count: 1, stride: 1}, {base: 1, count: 1, stride: 1},
			{base: 2, count: 1, stride: 1}, {base: 3, count: 1, stride: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := parityGroups(tc.n, tc.k, tc.ftype)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d groups %+v, want %+v", len(got), got, tc.want)
			}
			covered := make(map[int]int)
			for i, g := range got {
				if g != tc.want[i] {
					t.Errorf("group %d = %+v, want %+v", i, g, tc.want[i])
				}
				if g.end() >= tc.n {
					t.Errorf("group %d end %d beyond fragment count %d", i, g.end(), tc.n)
				}
				for j := 0; j < g.count; j++ {
					covered[g.base+j*g.stride]++
				}
			}
			// Every fragment is covered by exactly one group: one parity
			// packet repairs one loss, and no loss is uncovered.
			for f := 0; f < tc.n; f++ {
				if tc.k > 0 && covered[f] != 1 {
					t.Errorf("fragment %d covered %d times", f, covered[f])
				}
			}
		})
	}
	// Adjacent-loss property: with interleaved I-frame parity, any two
	// consecutive fragments inside a span land in different groups.
	for _, g := range [][]groupSpec{parityGroups(8, 4, codec.IFrame)} {
		owner := make(map[int]int)
		for gi, gr := range g {
			for j := 0; j < gr.count; j++ {
				owner[gr.base+j*gr.stride] = gi
			}
		}
		for f := 0; f+1 < 8; f++ {
			if owner[f] == owner[f+1] {
				t.Errorf("fragments %d and %d share group %d: burst pair unrepairable", f, f+1, owner[f])
			}
		}
	}
}

// xorOthers folds every group member except miss into a copy of the
// parity body — the receiver's reconstruction step.
func xorOthers(body []byte, wire []byte, mtu int, g groupSpec, miss int) []byte {
	acc := append([]byte(nil), body...)
	for i := 0; i < g.count; i++ {
		if i == miss {
			continue
		}
		lo := (g.base + i*g.stride) * mtu
		hi := min(lo+mtu, len(wire))
		xorRecord(acc, wire[lo:hi])
	}
	return acc
}

func TestParityBodyRecoversAnyMember(t *testing.T) {
	wire := make([]byte, 1000)
	for i := range wire {
		wire[i] = byte(i*7 + 3)
	}
	const mtu = 96 // 1000/96 = 11 fragments, ragged 40-byte tail
	n := fragsAtMTU(len(wire), mtu)
	for _, ftype := range []codec.FrameType{codec.PFrame, codec.IFrame} {
		for _, g := range parityGroups(n, 4, ftype) {
			body := buildParityBody(wire, mtu, g)
			for miss := 0; miss < g.count; miss++ {
				acc := xorOthers(body, wire, mtu, g, miss)
				lo := (g.base + miss*g.stride) * mtu
				hi := min(lo+mtu, len(wire))
				plen := int(binary.LittleEndian.Uint16(acc[:2]))
				if plen != hi-lo {
					t.Fatalf("%v group %+v miss %d: recovered length %d, want %d",
						ftype, g, miss, plen, hi-lo)
				}
				if !bytes.Equal(acc[2:2+plen], wire[lo:hi]) {
					t.Fatalf("%v group %+v miss %d: recovered bytes differ", ftype, g, miss)
				}
			}
			// With no member missing, folding every record back in must
			// cancel the body to zero (the "nothing to repair" detector).
			acc := xorOthers(body, wire, mtu, g, -1)
			for _, b := range acc {
				if b != 0 {
					t.Fatalf("%v group %+v: full fold-in is nonzero", ftype, g)
				}
			}
		}
	}
}

func TestParityPacketRoundTrip(t *testing.T) {
	wire := bytes.Repeat([]byte{0xA5, 0x5A, 7}, 200)
	const mtu, firstSeq = 128, 1000
	g := parityGroups(fragsAtMTU(len(wire), mtu), 3, codec.PFrame)[1]
	body := buildParityBody(wire, mtu, g)
	raw := parityPacket(9, 4, codec.PFrame, firstSeq, 5, g, body)

	pkt, err := ParsePacket(raw)
	if err != nil {
		t.Fatal(err)
	}
	h := pkt.Header
	if h.Flags&FlagParity == 0 || h.StreamID != 9 || h.FrameIndex != 4 ||
		h.FrameType != codec.PFrame || h.Seq != firstSeq+uint32(g.base) {
		t.Fatalf("parity header %+v", h)
	}
	pg, err := ParseParity(pkt.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if pg.BaseSeq != firstSeq+uint32(g.base) || int(pg.Count) != g.count ||
		int(pg.Stride) != g.stride || pg.FrameFirstSeq != firstSeq ||
		pg.FragCount != 5 || !bytes.Equal(pg.Body, body) {
		t.Fatalf("parity payload %+v", pg)
	}
}

func TestParseParityRejects(t *testing.T) {
	valid := func() ParityGroup {
		return ParityGroup{BaseSeq: 100, Count: 4, Stride: 1,
			FrameFirstSeq: 100, FragCount: 8, Body: make([]byte, 10)}
	}
	cases := []struct {
		name string
		mut  func(*ParityGroup)
	}{
		{"count zero", func(p *ParityGroup) { p.Count = 0 }},
		{"count over max", func(p *ParityGroup) { p.Count = MaxParityGroup + 1 }},
		{"stride zero", func(p *ParityGroup) { p.Stride = 0 }},
		{"stride over max", func(p *ParityGroup) { p.Stride = MaxParityStride + 1 }},
		{"fragcount zero", func(p *ParityGroup) { p.FragCount = 0 }},
		{"base before frame", func(p *ParityGroup) { p.BaseSeq = 99 }},
		{"base beyond frame", func(p *ParityGroup) { p.BaseSeq = 108 }},
		{"last beyond frame", func(p *ParityGroup) { p.Stride = 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pg := valid()
			tc.mut(&pg)
			if _, err := ParseParity(AppendParity(nil, pg)); !errors.Is(err, ErrBadPacket) {
				t.Errorf("err = %v, want ErrBadPacket", err)
			}
		})
	}
	for _, n := range []int{0, 1, ParityHeaderSize, ParityHeaderSize + 1} {
		if _, err := ParseParity(make([]byte, n)); !errors.Is(err, ErrBadPacket) {
			t.Errorf("%d zero bytes: err = %v, want ErrBadPacket", n, err)
		}
	}
	if _, err := ParseParity(AppendParity(nil, valid())); err != nil {
		t.Fatalf("valid parity rejected: %v", err)
	}
}

// FuzzParseParity: ParseParity must never panic, and every accepted
// payload must re-encode byte-identical through AppendParity.
func FuzzParseParity(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, ParityHeaderSize+2))
	f.Add(AppendParity(nil, ParityGroup{BaseSeq: 40, Count: 3, Stride: 2,
		FrameFirstSeq: 38, FragCount: 9, Body: []byte{4, 0, 1, 2, 3, 4}}))
	wire := bytes.Repeat([]byte{1, 2, 3}, 500)
	for _, g := range parityGroups(fragsAtMTU(len(wire), 256), 4, codec.IFrame) {
		pkt, err := ParsePacket(parityPacket(1, 0, codec.IFrame, 10, 6, g, buildParityBody(wire, 256, g)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(pkt.Payload)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pg, err := ParseParity(data)
		if err != nil {
			if !errors.Is(err, ErrBadPacket) {
				t.Fatalf("non-ErrBadPacket failure: %v", err)
			}
			return
		}
		if out := AppendParity(nil, pg); !bytes.Equal(out, data) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data, out)
		}
		base := pg.BaseSeq - pg.FrameFirstSeq
		if last := base + uint32(pg.Count-1)*uint32(pg.Stride); last >= uint32(pg.FragCount) {
			t.Fatalf("accepted group overruns its frame: %+v", pg)
		}
	})
}

// TestFECRepairsSingleLossWithoutRetransmit is the zero-RTT acceptance
// regression: a deterministic one-in-23 scheduled drop never puts two
// losses in one parity group, so every loss repairs from parity alone —
// all frames decode and the receiver never sends a single NACK.
func TestFECRepairsSingleLossWithoutRetransmit(t *testing.T) {
	const total = 30
	frames := lossyFrames(t, total, 0.008)
	cfg := Config{Options: testOptions(codec.IntraInterV1), FEC: FECConfig{GroupLen: 4}}
	run := runLossy(t, frames, linksim.FaultProfile{DropEvery: 23}, cfg)

	decoded := checkOutcomes(t, run, total)
	fec := run.recovery.FEC
	t.Logf("decoded %d/%d; scheduled drops %d; parity sent=%d recv=%d repairs=%d wasted=%d; nacks=%d retx=%d",
		decoded, total, run.faults.ScheduledDrops, run.sender.FEC.ParitySent,
		fec.ParityReceived, fec.ParityRepairs, fec.ParityWasted,
		run.recovery.NACKsSent, run.sender.Retransmits)
	if run.faults.ScheduledDrops == 0 {
		t.Fatal("no scheduled drops: test is vacuous")
	}
	if decoded != total {
		t.Fatalf("decoded %d/%d: single-loss groups must fully repair", decoded, total)
	}
	if run.recovery.NACKsSent != 0 || run.sender.Retransmits != 0 || run.recovery.RetransmitsReceived != 0 {
		t.Fatalf("retransmit traffic with repairable losses: nacks=%d retx=%d",
			run.recovery.NACKsSent, run.sender.Retransmits)
	}
	if fec.ParityRepairs == 0 {
		t.Fatal("losses healed but no parity repairs counted")
	}
	// Every feedback-visible loss netted out: lifetime counters must agree
	// that whatever was counted lost was recovered.
	if run.recovery.PacketsLost != run.recovery.PacketsRecovered {
		t.Errorf("PacketsLost=%d PacketsRecovered=%d: zero-RTT repairs leaked into the loss signal",
			run.recovery.PacketsLost, run.recovery.PacketsRecovered)
	}
}

// TestFECReassemblyUnderFaults drives the repair path through the full
// fault gamut: independent loss with duplication and reordering, and two
// Gilbert–Elliott bursty-radio profiles. The no-silent-corruption
// contract must hold throughout and parity must buy real repairs.
func TestFECReassemblyUnderFaults(t *testing.T) {
	const total = 40
	frames := lossyFrames(t, total, 0.008)
	cases := []struct {
		name  string
		prof  linksim.FaultProfile
		floor float64
	}{
		{"iid loss dup reorder", linksim.FaultProfile{
			DropRate: 0.05, DupRate: 0.02, ReorderRate: 0.03, Seed: 11}, 0.97},
		{"gilbert-elliott mild", linksim.FaultProfile{
			GEBadLoss: 0.5, GEGoodToBad: 0.01, GEBadToGood: 0.4, Seed: 12}, 0.90},
		{"gilbert-elliott deep fades", linksim.FaultProfile{
			GEBadLoss: 0.8, GEGoodToBad: 0.015, GEBadToGood: 0.25, Seed: 13}, 0.80},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Options: testOptions(codec.IntraInterV1), FEC: FECConfig{GroupLen: 4}}
			run := runLossy(t, frames, tc.prof, cfg)
			decoded := checkOutcomes(t, run, total)
			ratio := float64(decoded) / float64(total)
			fec := run.recovery.FEC
			t.Logf("decoded %d/%d (%.2f); faults %+v; repairs=%d wasted=%d nacks=%d",
				decoded, total, ratio, run.faults, fec.ParityRepairs, fec.ParityWasted,
				run.recovery.NACKsSent)
			if run.faults.Dropped+run.faults.GEDrops == 0 {
				t.Fatal("fault injector dropped nothing: test is vacuous")
			}
			if ratio < tc.floor {
				t.Errorf("decoded ratio %.3f below %.2f floor", ratio, tc.floor)
			}
			if fec.ParityRepairs == 0 {
				t.Error("no parity repairs under loss: FEC path never engaged")
			}
			if tc.prof.GEBadLoss > 0 && run.faults.GEBadSpells == 0 {
				t.Error("Gilbert–Elliott profile never entered a fade")
			}
		})
	}
}

// TestFECDeterministic: identical seeds with Gilbert–Elliott faults and
// FEC enabled must replay identical outcomes, fault stats, and FEC
// counters; a different seed must diverge.
func TestFECDeterministic(t *testing.T) {
	frames := lossyFrames(t, 15, 0.008)
	prof := linksim.FaultProfile{
		DropRate: 0.03, ReorderRate: 0.02, GEBadLoss: 0.6, GEGoodToBad: 0.02, Seed: 21}
	cfg := Config{Options: testOptions(codec.IntraInterV1), FEC: FECConfig{GroupLen: 4}}
	a := runLossy(t, frames, prof, cfg)
	b := runLossy(t, frames, prof, cfg)
	if a.recovery != b.recovery {
		t.Errorf("recovery counters diverged:\n a=%+v\n b=%+v", a.recovery, b.recovery)
	}
	if a.faults != b.faults {
		t.Errorf("fault stats diverged:\n a=%+v\n b=%+v", a.faults, b.faults)
	}
	prof.Seed = 22
	if c := runLossy(t, frames, prof, cfg); c.faults == a.faults {
		t.Error("different seeds produced identical fault sequences")
	}
}

// capturePackets streams frames through a faultless session, returning
// every emitted packet and the .pcv bytes.
func capturePackets(t *testing.T, frames int, fec FECConfig) (pkts [][]byte, pcv []byte) {
	t.Helper()
	cfg := Config{Options: testOptions(codec.IntraInterV1), FEC: fec}
	cfg.PacketOut = func(_ context.Context, p []byte) error {
		pkts = append(pkts, append([]byte(nil), p...))
		return nil
	}
	var wire bytes.Buffer
	cfg.Output = &wire
	s := New(context.Background(), cfg)
	col := NewCollector(s)
	for _, f := range lossyFrames(t, frames, 0.01) {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	col.Wait()
	return pkts, wire.Bytes()
}

// TestFECOffByteIdentical: disabling FEC yields a packet stream and .pcv
// output byte-identical to a pre-FEC sender, and enabling it only ever
// ADDS parity packets — the data packets are untouched.
func TestFECOffByteIdentical(t *testing.T) {
	off, pcvOff := capturePackets(t, 6, FECConfig{GroupLen: -1})
	zero, pcvZero := capturePackets(t, 6, FECConfig{})
	on, pcvOn := capturePackets(t, 6, FECConfig{GroupLen: 4})

	if !bytes.Equal(pcvOff, pcvZero) || !bytes.Equal(pcvOff, pcvOn) {
		t.Fatal("FEC setting changed the encoded .pcv output")
	}
	if len(off) != len(zero) {
		t.Fatalf("zero-value FECConfig emitted extra packets without a controller: %d vs %d", len(zero), len(off))
	}
	for i := range off {
		if !bytes.Equal(off[i], zero[i]) {
			t.Fatalf("packet %d differs between off and zero-value FEC", i)
		}
	}
	var data [][]byte
	parity := 0
	for _, p := range on {
		pkt, err := ParsePacket(p)
		if err != nil {
			t.Fatal(err)
		}
		if pkt.Header.Flags&FlagParity != 0 {
			parity++
			continue
		}
		data = append(data, p)
	}
	if parity == 0 {
		t.Fatal("static FEC emitted no parity packets")
	}
	if len(data) != len(off) {
		t.Fatalf("FEC-on data packet count %d, FEC-off %d", len(data), len(off))
	}
	for i := range data {
		if !bytes.Equal(data[i], off[i]) {
			t.Fatalf("data packet %d differs with FEC on (parity must be purely additive)", i)
		}
	}
}

// TestServerFECParityFanout: the relay tree emits per-viewer parity —
// reusing the published XOR bodies at the server MTU, rebuilding at other
// MTUs — and each viewer's parity verifies against its own data packets.
func TestServerFECParityFanout(t *testing.T) {
	frames := testFrames(t, 6)
	opts := testOptions(codec.IntraInterV1)
	srv := NewServer(context.Background(), ServerConfig{
		Options: opts, ViewerQueue: 32, FEC: FECConfig{GroupLen: 4}})

	type capture struct {
		sink *viewerSink
		pkts [][]byte
	}
	caps := make([]*capture, 2)
	views := make([]*Viewer, 2)
	for i, mtu := range []int{0, 300} { // server MTU and a rebuilt-path MTU
		c := &capture{sink: newViewerSink(opts)}
		caps[i] = c
		v, err := srv.Attach(ViewerConfig{MTU: mtu, PacketOut: func(ctx context.Context, p []byte) error {
			c.pkts = append(c.pkts, append([]byte(nil), p...))
			return c.sink.packetOut(ctx, p)
		}})
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}
	for _, f := range frames {
		if err := srv.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	for i, c := range caps {
		outcomes := c.sink.finish(t, len(frames))
		for _, f := range outcomes {
			if f.Status != FrameDecoded {
				t.Errorf("viewer %d frame %d: %v on a clean link", i, f.Index, f.Status)
			}
		}
		if got := views[i].Metrics().ParitySent; got == 0 {
			t.Errorf("viewer %d reports zero parity sent", i)
		}
		// XOR-verify every parity packet against the viewer's own data
		// packets: folding each covered payload into the body must cancel
		// it to zero.
		data := make(map[uint32][]byte) // stream seq -> payload
		parity := 0
		for _, raw := range c.pkts {
			pkt, err := ParsePacket(raw)
			if err != nil {
				t.Fatal(err)
			}
			if pkt.Header.Flags&FlagParity == 0 {
				data[pkt.Header.Seq] = pkt.Payload
				continue
			}
			parity++
			pg, err := ParseParity(pkt.Payload)
			if err != nil {
				t.Fatal(err)
			}
			acc := append([]byte(nil), pg.Body...)
			for j := uint32(0); j < uint32(pg.Count); j++ {
				payload, ok := data[pg.BaseSeq+j*uint32(pg.Stride)]
				if !ok {
					t.Fatalf("viewer %d: parity group %+v covers an unsent seq", i, pg)
				}
				xorRecord(acc, payload)
			}
			for _, b := range acc {
				if b != 0 {
					t.Fatalf("viewer %d: parity body does not cancel against its data packets", i)
				}
			}
		}
		if parity == 0 {
			t.Errorf("viewer %d emitted no parity packets", i)
		}
	}
}

// TestFeedbackNetsRecoveredLosses: a packet counted lost at its first
// NACK timeout but healed by the retransmit must be netted back out of
// the feedback window — the reports carry the round trip in NACKs, never
// a phantom loss.
func TestFeedbackNetsRecoveredLosses(t *testing.T) {
	const total = 12
	frames := lossyFrames(t, total, 0.01)
	fl := linksim.NewFaultyLink(linksim.WiFi, linksim.FaultProfile{})
	var outcomes []DecodedFrame
	pipe := NewLossyPipe(fl, ReceiverConfig{
		Options:       testOptions(codec.IntraInterV1),
		FeedbackEvery: 3,
		OnFrame:       func(f DecodedFrame) { outcomes = append(outcomes, f) },
	})
	cfg := Config{Options: testOptions(codec.IntraInterV1)}
	dropped := false
	cfg.PacketOut = func(ctx context.Context, pkt []byte) error {
		if !dropped {
			if p, err := ParsePacket(pkt); err == nil &&
				p.Header.Flags&(FlagControl|FlagParity) == 0 && p.Header.Seq == 5 {
				dropped = true
				return nil // one targeted loss; the retransmit goes through
			}
		}
		return pipe.PacketOut(ctx, pkt)
	}
	s := New(context.Background(), cfg)
	var reports []Feedback
	pipe.Attach(s)
	pipe.ctrl = controlFunc(func(c Control) error {
		if c.Kind == ControlFeedback {
			reports = append(reports, c.Feedback)
		}
		return s.HandleControl(c)
	})
	col := NewCollector(s)
	for _, f := range frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	col.Wait()
	if err := pipe.Finish(total); err != nil {
		t.Fatal(err)
	}

	rec := pipe.Receiver().Metrics()
	if !dropped {
		t.Fatal("targeted packet never sent: test is vacuous")
	}
	if rec.PacketsLost != 1 || rec.PacketsRecovered != 1 {
		t.Fatalf("PacketsLost=%d PacketsRecovered=%d, want 1 and 1", rec.PacketsLost, rec.PacketsRecovered)
	}
	if len(reports) == 0 {
		t.Fatal("no feedback reports captured")
	}
	var nacks uint32
	for i, fb := range reports {
		if fb.Lost != 0 {
			t.Errorf("report %d carries Lost=%d for a recovered packet", i, fb.Lost)
		}
		nacks += fb.NACKs
	}
	if nacks == 0 {
		t.Error("no report carried the NACK round trip")
	}
	for i, f := range outcomes {
		if f.Status != FrameDecoded {
			t.Errorf("frame %d: %v after a recovered single loss", i, f.Status)
		}
	}
}

// TestAdaptiveParityEngagesUnderLoss: with a zero FECConfig and the
// adaptive controller attached, parity is absent on a clean link and
// appears once reported loss raises the parity knob.
func TestAdaptiveParityEngagesUnderLoss(t *testing.T) {
	frames := lossyFrames(t, 24, 0.008)
	cfg := Config{Options: adaptOptions(codec.IntraInterV2)}
	clean := runLossy(t, frames, linksim.FaultProfile{}, cfg)
	if clean.sender.FEC.ParitySent != 0 {
		t.Fatalf("clean link emitted %d parity packets at zero overhead setting", clean.sender.FEC.ParitySent)
	}
	lossy := runLossy(t, frames, linksim.FaultProfile{DropRate: 0.12, Seed: 33}, cfg)
	if lossy.sender.FEC.ParitySent == 0 {
		t.Fatal("sustained loss never raised the parity knob")
	}
	checkOutcomes(t, lossy, len(frames))
	snap := clean.sender.FEC
	t.Logf("clean parity=%d, lossy parity=%d repairs=%d", snap.ParitySent,
		lossy.sender.FEC.ParitySent, lossy.recovery.FEC.ParityRepairs)
}
