// Command pcc encodes and decodes point-cloud videos with any of the five
// designs the paper evaluates.
//
// Encode a set of .pcf frames (from cmd/pccgen) into one .pcv stream:
//
//	pcc encode -design intra-inter-v1 -o video.pcv frames/loot-*.pcf
//
// Decode a .pcv stream back into .pcf frames:
//
//	pcc decode -o ./decoded video.pcv
//
// Both directions print the device model's simulated edge-board latency and
// energy alongside compression statistics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/edgesim"
	"repro/internal/geom"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "encode":
		cmdEncode(os.Args[2:])
	case "decode":
		cmdDecode(os.Args[2:])
	case "stat":
		cmdStat(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pcc encode [-design d] [-mode 15w|10w] [-gop n] -o out.pcv frame.{pcf|ply}...
  pcc decode [-mode 15w|10w] [-o dir] in.pcv
  pcc stat in.pcv
designs: tmc13, cwipc, intra, intra-inter-v1, intra-inter-v2`)
	os.Exit(2)
}

func parseDesign(s string) (codec.Design, error) {
	switch strings.ToLower(s) {
	case "tmc13":
		return codec.TMC13, nil
	case "cwipc":
		return codec.CWIPC, nil
	case "intra", "intra-only":
		return codec.IntraOnly, nil
	case "intra-inter-v1", "v1":
		return codec.IntraInterV1, nil
	case "intra-inter-v2", "v2":
		return codec.IntraInterV2, nil
	}
	return 0, fmt.Errorf("unknown design %q", s)
}

func parseMode(s string) (edgesim.PowerMode, error) {
	switch strings.ToLower(s) {
	case "15w", "":
		return edgesim.Mode15W, nil
	case "10w":
		return edgesim.Mode10W, nil
	}
	return 0, fmt.Errorf("unknown power mode %q", s)
}

func cmdEncode(args []string) {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	designStr := fs.String("design", "intra", "codec design")
	modeStr := fs.String("mode", "15w", "device power mode (15w or 10w)")
	gop := fs.Int("gop", 3, "group-of-pictures length for inter designs")
	segments := fs.Int("segments", 0, "override intra segment count (0 = paper default)")
	out := fs.String("o", "out.pcv", "output .pcv path")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("no input frames"))
	}
	design, err := parseDesign(*designStr)
	if err != nil {
		fatal(err)
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	opts := codec.OptionsFor(design)
	opts.GOP = *gop
	if *segments > 0 {
		opts.IntraAttr.Segments = *segments
		opts.Inter.Segments = *segments
	}

	outF, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer outF.Close()
	dev := edgesim.NewXavier(mode)
	vw := core.NewVideoWriter(outF, dev, opts)
	var rawBytes int64
	for _, path := range fs.Args() {
		vc, err := readPCF(path)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		rawBytes += vc.RawBytes()
		st, err := vw.WriteFrame(vc)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		fmt.Printf("%-30s %s-frame %8d pts  %8.2f KB  sim %7.2f ms  %.3f J\n",
			filepath.Base(path), st.Type, st.Points,
			float64(st.SizeBytes)/1e3, st.TotalTime.Seconds()*1000, st.EnergyJ)
	}
	if err := vw.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("\n%d frames -> %s: %.2f MB compressed (%.1fx ratio), simulated %s on %s: %v, %.2f J\n",
		vw.Frames(), *out, float64(vw.Bytes())/1e6,
		float64(rawBytes)/float64(vw.Bytes()), design, dev.Config().Name,
		dev.SimTime().Round(1e6), dev.EnergyJ())
}

func cmdDecode(args []string) {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	modeStr := fs.String("mode", "15w", "device power mode")
	out := fs.String("o", ".", "output directory for decoded .pcf frames")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("need exactly one input .pcv"))
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	inF, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer inF.Close()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	dev := edgesim.NewXavier(mode)
	vr, err := core.NewVideoReader(inF, dev)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stream design: %v\n", vr.Options().Design)
	i := 0
	for {
		vc, ef, err := vr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("decoded-%03d.pcf", i))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := dataset.WriteFrame(f, vc); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		fmt.Printf("%s: %s-frame, %d points\n", path, ef.Type, vc.Len())
		i++
	}
	fmt.Printf("\ndecoded %d frames, simulated decode on %s: %v, %.2f J\n",
		i, dev.Config().Name, dev.SimTime().Round(1e6), dev.EnergyJ())
}

// cmdStat prints the bitstream anatomy of a .pcv: per-frame type, point
// count, geometry/attribute split, and stream totals.
func cmdStat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("need exactly one input .pcv"))
	}
	inF, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer inF.Close()
	dev := edgesim.NewXavier(edgesim.Mode15W)
	vr, err := core.NewVideoReader(inF, dev)
	if err != nil {
		fatal(err)
	}
	o := vr.Options()
	fmt.Printf("design %v, GOP %d, intra segments %d (q=%d, %d layers), inter segments %d (threshold %.0f)\n\n",
		o.Design, o.GOP, o.IntraAttr.Segments, o.IntraAttr.QStep, o.IntraAttr.Layers,
		o.Inter.Segments, o.Inter.Threshold)
	fmt.Printf("%5s %4s %9s %12s %12s %12s %10s\n",
		"frame", "type", "points", "geometry B", "attr B", "total B", "bits/pt")
	var frames int
	var geoB, attrB, totB, pts int64
	for {
		vc, ef, err := vr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%5d %4s %9d %12d %12d %12d %10.2f\n",
			frames, ef.Type, vc.Len(), len(ef.Geometry), len(ef.Attr), ef.Size(),
			float64(ef.Size())*8/float64(vc.Len()))
		frames++
		geoB += int64(len(ef.Geometry))
		attrB += int64(len(ef.Attr))
		totB += ef.Size()
		pts += int64(vc.Len())
	}
	if frames == 0 {
		fmt.Println("(empty stream)")
		return
	}
	fmt.Printf("\ntotal: %d frames, %d points, %.2f MB (%.1f%% geometry / %.1f%% attributes), %.2f bits/point\n",
		frames, pts, float64(totB)/1e6,
		float64(geoB)/float64(totB)*100, float64(attrB)/float64(totB)*100,
		float64(totB)*8/float64(pts))
}

// readPCF loads one input frame; .ply files (e.g. real 8iVFB captures) are
// parsed and voxelized to depth 10, everything else is read as .pcf.
func readPCF(path string) (*geom.VoxelCloud, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".ply") {
		return dataset.ReadPLY(f, dataset.Depth)
	}
	return dataset.ReadFrame(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcc:", err)
	os.Exit(1)
}
