package attr

import (
	"testing"

	"repro/internal/geom"
)

func TestBaseMediansRoundTrip(t *testing.T) {
	colors := []geom.Color{
		{R: 10, G: 20, B: 30},
		{R: 12, G: 18, B: 33},
		{R: 11, G: 19, B: 31},
		{R: 200, G: 0, B: 255},
		{R: 100, G: 50, B: 25},
		{R: 150, G: 60, B: 20},
	}
	runs := []int{0, 3, 4, 6}
	wire := EncodeBaseMedians(colors, runs)
	meds, err := DecodeBaseMedians(wire)
	if err != nil {
		t.Fatal(err)
	}
	want := []geom.Color{
		// cell 0: lower medians of {10,12,11}, {20,18,19}, {30,33,31}
		{R: 11, G: 19, B: 31},
		// cell 1: singleton
		{R: 200, G: 0, B: 255},
		// cell 2: even count — lower median of {100,150}, {50,60}, {25,20}
		{R: 100, G: 50, B: 20},
	}
	if len(meds) != len(want) {
		t.Fatalf("got %d cells, want %d", len(meds), len(want))
	}
	for i := range want {
		if meds[i] != want[i] {
			t.Errorf("cell %d: got %v, want %v", i, meds[i], want[i])
		}
	}
}

func TestBaseMediansEmpty(t *testing.T) {
	wire := EncodeBaseMedians(nil, []int{0})
	meds, err := DecodeBaseMedians(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(meds) != 0 {
		t.Fatalf("got %d cells from empty encode", len(meds))
	}
}

func TestBaseMediansBadStreams(t *testing.T) {
	good := EncodeBaseMedians(
		[]geom.Color{{R: 1}, {R: 2}}, []int{0, 1, 2})
	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-1],
		"trailing":  append(append([]byte(nil), good...), 0),
		"huge":      {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
	}
	for name, b := range cases {
		if _, err := DecodeBaseMedians(b); err == nil {
			t.Errorf("%s: decode accepted a malformed stream", name)
		}
	}
}
