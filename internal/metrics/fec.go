package metrics

// Forward-error-correction instrumentation, shared by every component
// that touches parity: senders count parity packets emitted, receivers
// count parity arrivals and what each one bought (a repair, or wasted
// overhead), and the congestion controller counts probing-upswitch
// outcomes. Each component holds its own FECCounters and uses the subset
// that applies to it.

import "sync/atomic"

// FECCounters tracks parity traffic and probe outcomes. The zero value is
// ready to use; all methods are safe for concurrent use.
type FECCounters struct {
	// Parity traffic.
	paritySent     atomic.Int64
	parityReceived atomic.Int64
	parityRepairs  atomic.Int64
	parityWasted   atomic.Int64
	// Probing upswitch.
	probes       atomic.Int64
	probeWins    atomic.Int64
	probeReverts atomic.Int64
}

// ParitySent records one parity packet emitted by a sender.
func (c *FECCounters) ParitySent() { c.paritySent.Add(1) }

// ParityReceived records one well-formed parity packet at the receiver.
func (c *FECCounters) ParityReceived() { c.parityReceived.Add(1) }

// ParityRepair records a data packet reconstructed from parity — a loss
// healed with zero retransmit round trips.
func (c *FECCounters) ParityRepair() { c.parityRepairs.Add(1) }

// ParityWasted records a parity group that bought nothing: every covered
// packet already arrived, or its frame resolved before the group could
// repair anything.
func (c *FECCounters) ParityWasted() { c.parityWasted.Add(1) }

// Probe records the controller launching a probing upswitch (a
// provisional ease whose echo the next feedback report judges).
func (c *FECCounters) Probe() { c.probes.Add(1) }

// ProbeWin records a probe whose echo came back clean: the eased knobs
// are kept.
func (c *FECCounters) ProbeWin() { c.probeWins.Add(1) }

// ProbeRevert records a probe whose echo came back congested: the
// provisional ease is rolled back and the probe cadence backs off.
func (c *FECCounters) ProbeRevert() { c.probeReverts.Add(1) }

// FECSnapshot is a point-in-time copy of an FECCounters.
type FECSnapshot struct {
	ParitySent     int64
	ParityReceived int64
	ParityRepairs  int64
	ParityWasted   int64
	Probes         int64
	ProbeWins      int64
	ProbeReverts   int64
}

// Snapshot copies the counters. Taken live, fields are individually — not
// mutually — consistent.
func (c *FECCounters) Snapshot() FECSnapshot {
	return FECSnapshot{
		ParitySent:     c.paritySent.Load(),
		ParityReceived: c.parityReceived.Load(),
		ParityRepairs:  c.parityRepairs.Load(),
		ParityWasted:   c.parityWasted.Load(),
		Probes:         c.probes.Load(),
		ProbeWins:      c.probeWins.Load(),
		ProbeReverts:   c.probeReverts.Load(),
	}
}
