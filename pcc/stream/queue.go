package stream

import (
	"errors"
	"sync"

	"repro/internal/codec"
	"repro/internal/metrics"
)

// errCanceled is returned by queue operations after the session aborts.
var errCanceled = errors.New("stream: session canceled")

// frameQueue is the bounded transmit queue where the backpressure policy
// acts. Unlike the channel-backed stage queues, a full push can resolve by
// dropping: under DropOldestP the oldest still-pending P-frame is marked
// dropped (its payload is released and the transmitter skips the link for
// it), which bounds queueing latency without ever reordering frames or
// sacrificing an I-frame. I-frames are never dropped; a queue full of
// I-frames blocks the producer instead.
type frameQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []*job
	capacity int
	policy   Policy
	gauge    *metrics.QueueGauge
	closed   bool
	canceled bool
}

func newFrameQueue(capacity int, policy Policy, gauge *metrics.QueueGauge) *frameQueue {
	q := &frameQueue{capacity: capacity, policy: policy, gauge: gauge}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends j, waiting while the queue is full. Under DropOldestP a full
// queue first sacrifices (at most) one pending P-frame per push attempt.
// Returns errCanceled if the session aborted while waiting.
func (q *frameQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	marked := false
	for {
		if q.canceled {
			return errCanceled
		}
		if len(q.items) < q.capacity {
			q.items = append(q.items, j)
			q.gauge.Enqueue()
			q.cond.Broadcast()
			return nil
		}
		if q.policy == DropOldestP && !marked {
			marked = q.dropOldestPLocked()
		}
		q.cond.Wait()
	}
}

// dropOldestPLocked marks the oldest undropped P-frame as dropped and
// releases its payload. Returns false when the queue holds only I-frames
// (which are never dropped) or already-dropped items.
func (q *frameQueue) dropOldestPLocked() bool {
	for _, j := range q.items {
		if !j.dropped && j.stats.Type == codec.PFrame {
			j.dropped = true
			j.wire = nil
			q.gauge.Drop()
			// Wake the transmitter: a dropped frame pops without link time,
			// so the slot this push is waiting for frees up quickly.
			q.cond.Broadcast()
			return true
		}
	}
	return false
}

// pop removes the head item in FIFO order, waiting while empty. The second
// return is false once the queue is drained after close (or canceled).
func (q *frameQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.canceled {
			return nil, false
		}
		if len(q.items) > 0 {
			j := q.items[0]
			copy(q.items, q.items[1:])
			q.items[len(q.items)-1] = nil
			q.items = q.items[:len(q.items)-1]
			q.gauge.Dequeue()
			q.cond.Broadcast()
			return j, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// closeQ marks the producer side finished; pops drain the remainder.
func (q *frameQueue) closeQ() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// cancelQ aborts all waiters immediately, discarding queued items.
func (q *frameQueue) cancelQ() {
	q.mu.Lock()
	q.canceled = true
	q.items = nil
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth returns the instantaneous queue length.
func (q *frameQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
