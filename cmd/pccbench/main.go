// Command pccbench regenerates every table and figure of the paper's
// evaluation (Sec. VI) on the synthetic dataset and the edge-device model:
//
//	pccbench table1            Table I   dataset summary
//	pccbench fig2              Fig. 2    baseline stage latency breakdown
//	pccbench fig3a             Fig. 3a   spatial attribute locality CDFs
//	pccbench fig3b             Fig. 3b   temporal attribute locality CDFs
//	pccbench fig8              Figs. 8a-c latency / energy / size+PSNR,
//	                                      five designs x six videos
//	pccbench fig9              Fig. 9    inter-frame kernel energy breakdown
//	pccbench fig10b            Fig. 10b  reuse-threshold sensitivity
//	pccbench power             Sec. VI-C 15 W vs 10 W mode
//	pccbench decode            Sec. VI-C decode latency
//	pccbench ablation          Sec. IV-B3 entropy / layers / segments
//	pccbench pipeline          Sec. IV    concurrent streaming pipeline
//	pccbench loss              lossy-transport recovery sweep
//	pccbench adapt             closed-loop congestion adaptation step response
//	pccbench bench             steady-state encode throughput (BENCH_3.json)
//	pccbench hotpath           entropy/Morton hot-loop micros + sparse row (BENCH_8.json)
//	pccbench fanout            multi-viewer serving fan-out (stream.Server)
//	pccbench fanout-scale      relay-tree viewer scaling 64 → 16k (BENCH_6.json)
//	pccbench tiles             tile-parallel encode sweep + viewport egress (BENCH_9.json)
//	pccbench layers            layered multi-rate serving + split-link run (BENCH_10.json)
//	pccbench all               everything above (except bench, fanout, fanout-scale)
//
// Flags:
//
//	-scale f    dataset scale (fraction of Table I points/frame; default 0.1)
//	-frames n   frames per video per experiment (default 3)
//	-videos csv comma-separated subset of video names (default all six)
//	-fec        loss: arm XOR parity (group 4) and gate on the FEC floor
//
// Latency and energy are simulated Jetson-AGX-Xavier numbers from the
// device model; they scale linearly with point count, so sub-scale runs
// preserve every ratio the paper reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
)

var (
	flagScale  = flag.Float64("scale", 0.1, "dataset scale (1.0 = Table I point counts)")
	flagFrames = flag.Int("frames", 3, "frames per video per experiment")
	flagVideos = flag.String("videos", "", "comma-separated subset of videos (default: all six)")
	flagCSV    = flag.String("csv", "", "also write each result table as CSV into this directory")
	flagFEC    = flag.Bool("fec", false, "loss: arm XOR parity (group 4) and gate on the FEC decoded floor")

	// bench-experiment flags (see steady.go).
	flagBenchOut = flag.String("benchout", "", "bench: write machine-readable results to this JSON file")
	flagBaseline = flag.String("baseline", "", "bench: compare against this BENCH JSON and fail on regression")
	flagGate     = flag.Float64("gate", 0.20, "bench: regression tolerance as a fraction")

	// fanout-experiment flags (see fanout.go, fanoutscale.go).
	flagViewers    = flag.Int("viewers", 0, "fanout: viewer count (0 = sweep 1..64)")
	flagFloor      = flag.Float64("floor", 0, "fanout: fail when aggregate viewer-frames/s falls below this")
	flagMaxViewers = flag.Int("maxviewers", 0, "fanout-scale: cap the sweep (0 = full 64..16384)")
	flagCeiling    = flag.Float64("ceiling", 0, "fanout-scale: fail when per-viewer CPU cost (µs/viewer-frame) at the largest point exceeds this")
	flagRatio      = flag.Float64("ratio", 0, "fanout-scale: fail when cost(largest)/cost(smallest) exceeds this")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pccbench [flags] <experiment>\nexperiments: table1 fig2 fig3a fig3b fig8 fig9 fig10b power decode ablation future endtoend lod altcodecs viewport capture pipeline loss adapt bench hotpath fanout fanout-scale tiles layers all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	if *flagCSV != "" {
		if err := os.MkdirAll(*flagCSV, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "pccbench:", err)
			os.Exit(1)
		}
		csvDir = *flagCSV
	}
	cfg := benchConfig{
		Scale:  *flagScale,
		Frames: *flagFrames,
		Videos: selectVideos(*flagVideos),
		FEC:    *flagFEC,
	}
	if cfg.Frames < 1 {
		cfg.Frames = 1
	}

	experiments := map[string]func(benchConfig) error{
		"table1":       runTable1,
		"fig2":         runFig2,
		"fig3a":        runFig3a,
		"fig3b":        runFig3b,
		"fig8":         runFig8,
		"fig9":         runFig9,
		"fig10b":       runFig10b,
		"power":        runPower,
		"decode":       runDecode,
		"ablation":     runAblation,
		"future":       runFuture,
		"endtoend":     runEndToEnd,
		"lod":          runLoD,
		"altcodecs":    runAltCodecs,
		"viewport":     runViewport,
		"capture":      runCapture,
		"pipeline":     runPipeline,
		"loss":         runLoss,
		"adapt":        runAdapt,
		"bench":        runBench,
		"hotpath":      runHotpath,
		"fanout":       runFanout,
		"fanout-scale": runFanoutScale,
		"tiles":        runTiles,
		"layers":       runLayers,
	}
	if cmd == "all" {
		for _, name := range []string{"table1", "fig2", "fig3a", "fig3b", "fig8", "fig9", "fig10b", "power", "decode", "ablation", "future", "endtoend", "lod", "altcodecs", "viewport", "capture", "pipeline", "loss", "adapt"} {
			fmt.Printf("\n===== %s =====\n", name)
			if err := experiments[name](cfg); err != nil {
				fmt.Fprintf(os.Stderr, "pccbench %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	run, ok := experiments[cmd]
	if !ok {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pccbench %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

// benchConfig carries the experiment-wide knobs.
type benchConfig struct {
	Scale  float64
	Frames int
	Videos []dataset.VideoSpec
	FEC    bool // loss: arm sender-side XOR parity and gate on the FEC floor
}

func selectVideos(csv string) []dataset.VideoSpec {
	all := dataset.TableI()
	if csv == "" {
		return all
	}
	var out []dataset.VideoSpec
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		spec, err := dataset.SpecByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		out = append(out, spec)
	}
	return out
}
