package codec

// Tile-parallel encode (the viewport fan-out tentpole).
//
// A tiled frame partitions the sorted, deduplicated voxel sequence into up
// to Options.Tiles contiguous Morton-key ranges, balanced by point count.
// Each tile is a fully self-contained unit — its own octree subtree stream,
// its own attribute stream, its own (optional) entropy slab — so:
//
//   - the encoder fans the per-tile bodies across the persistent worker
//     pool WITHIN one frame, parallelizing exactly the stages that stay
//     serial in the untiled path (occupancy serialization's offset scan,
//     per-frame entropy coding, stream assembly);
//   - the streaming layer can drop or coarsen individual tiles per viewer
//     (viewport culling) without touching the encoder, because every
//     remaining tile still decodes on its own.
//
// Tile cuts snap to the INTERSECTION of the intra and inter attribute
// segment grids: the frame's I/P decision happens in the attribute phase,
// after the cuts are fixed, so a cut must be a macro-block boundary of
// both grids. Per-segment (and per-block) coding is independent, which
// makes tiled attribute streams decode-exact against the untiled codec —
// the canonical invariant pinned by the differential tests.

import (
	"errors"
	"sort"
	"sync"

	"repro/internal/attr"
	"repro/internal/edgesim"
	"repro/internal/entropy"
	"repro/internal/geom"
	"repro/internal/interframe"
	"repro/internal/morton"
	"repro/internal/paroctree"
)

// Calibrated tiled-path kernel costs (per point). The fan-out replaces the
// untiled LevelBuild/Occupy/Pack (geometry) and MidResidual/PackBits
// (attributes) kernels with per-tile serial bodies of the same aggregate
// work, so the per-point costs mirror the untiled totals.
var (
	costTileGeom      = edgesim.Cost{OpsPerItem: 180, BytesPerItem: 18}
	costTileIntra     = edgesim.Cost{OpsPerItem: 1500, BytesPerItem: 80}
	costTileGeomDec   = edgesim.Cost{OpsPerItem: 120, BytesPerItem: 12}
	costTileAttrDec   = edgesim.Cost{OpsPerItem: 180, BytesPerItem: 14}
	costTileInterBase = edgesim.Cost{OpsPerItem: 1200, BytesPerItem: 30} // + Candidates-proportional match term
)

// tilePlan is a frame's tile partition: point-index cuts (len tiles+1) and
// the matching segment-index windows in the intra grid and — for inter
// designs — the inter grid. The bounds slices are the grids themselves
// (intraBounds over the frame's n for IntraAttr.Segments, interBounds for
// Inter.Segments). All slices alias the geometry arena.
type tilePlan struct {
	cuts        []int
	intraSeg    []int
	interSeg    []int
	intraBounds []int
	interBounds []int
}

// tiles returns the number of tiles (0 = untiled frame).
func (p tilePlan) tiles() int {
	if len(p.cuts) == 0 {
		return 0
	}
	return len(p.cuts) - 1
}

// tileWorker bundles the per-worker-slot serial scratch arenas for the
// tile fan-out (one of each kind; pooled so concurrent tiles never share).
type tileWorker struct {
	geo   paroctree.TileScratch
	raw   []byte
	att   attr.TileScratch
	inter interframe.PTileScratch
}

var tileWorkerPool = sync.Pool{New: func() any { return new(tileWorker) }}

// planTilesIn partitions n sorted points into at most tiles contiguous
// ranges balanced by point count, with every cut snapped to the nearest
// boundary shared by the intra segment grid and (for inter designs) the
// inter segment grid. Snapping may merge adjacent targets, so the plan can
// hold fewer tiles than requested — never more, never an empty tile.
func planTilesIn(gs *geomScratch, n, tiles, segIntra, segInter int, useInter bool) tilePlan {
	gs.intraBounds = attr.SegmentBoundsIn(gs.intraBounds, n, segIntra)
	ib := gs.intraBounds
	plan := tilePlan{intraBounds: ib}

	// Common boundaries of the two grids, with their indices in each.
	cv := gs.comVal[:0]
	ci := gs.comIntra[:0]
	cj := gs.comInter[:0]
	if useInter {
		gs.interBounds = attr.SegmentBoundsIn(gs.interBounds, n, segInter)
		jb := gs.interBounds
		plan.interBounds = jb
		for i, j := 0, 0; i < len(ib) && j < len(jb); {
			switch {
			case ib[i] == jb[j]:
				cv = append(cv, ib[i])
				ci = append(ci, i)
				cj = append(cj, j)
				i++
				j++
			case ib[i] < jb[j]:
				i++
			default:
				j++
			}
		}
	} else {
		for i, v := range ib {
			cv = append(cv, v)
			ci = append(ci, i)
		}
	}
	gs.comVal, gs.comIntra, gs.comInter = cv, ci, cj

	cuts := gs.cuts[:0]
	cutI := gs.cutIntra[:0]
	cutJ := gs.cutInter[:0]
	for t := 0; t <= tiles; t++ {
		target := t * n / tiles
		k := sort.SearchInts(cv, target)
		if k >= len(cv) {
			k = len(cv) - 1
		} else if k > 0 && target-cv[k-1] <= cv[k]-target {
			k--
		}
		if len(cuts) > 0 && cv[k] <= cuts[len(cuts)-1] {
			continue
		}
		cuts = append(cuts, cv[k])
		cutI = append(cutI, ci[k])
		if useInter {
			cutJ = append(cutJ, cj[k])
		}
	}
	gs.cuts, gs.cutIntra, gs.cutInter = cuts, cutI, cutJ
	plan.cuts = cuts
	plan.intraSeg = cutI
	if useInter {
		plan.interSeg = cutJ
	}
	return plan
}

// tiledGeometry is the geometry half of the tiled encode: sort + dedup via
// the parallel front half of the octree pipeline, plan the cuts, then fan
// one self-contained subtree serialization per tile across the pool. It
// fills frame.Tiles (AttrLen left for the attribute phase), frame.Geometry
// and frame.NumPoints.
func (e *Encoder) tiledGeometry(dev *edgesim.Device, work *geom.VoxelCloud, frame *EncodedFrame, gs *geomScratch) ([]morton.Keyed, tilePlan, error) {
	sorted, leaves, err := paroctree.SortWith(dev, work, &gs.build)
	if err != nil {
		return nil, tilePlan{}, err
	}
	n := len(leaves)
	plan := planTilesIn(gs, n, e.opts.Tiles, e.opts.IntraAttr.Segments, e.opts.Inter.Segments, e.opts.Design.UsesInter())
	nT := plan.tiles()
	if cap(gs.tileGeom) < nT {
		gs.tileGeom = make([][]byte, nT)
	}
	gs.tileGeom = gs.tileGeom[:nT]
	chunks := gs.tileGeom
	frame.Tiles = make([]TileInfo, nT)
	infos := frame.Tiles
	errs := make([]error, nT)
	depth := work.Depth
	// Layered frames keep per-tile chunks raw: entropy moves into the
	// per-layer slices (layer.go).
	entropyOn := e.opts.EntropyGeometry && e.opts.layersFor(depth) == 0
	hasR, resc := frame.HasRescale, frame.Rescale
	dev.GPUCompute("TileGeometry", n, costTileGeom, func() {
		dev.ParallelFor(nT, func(t0, t1 int) {
			ws := tileWorkerPool.Get().(*tileWorker)
			for t := t0; t < t1; t++ {
				lo, hi := plan.cuts[t], plan.cuts[t+1]
				seg := leaves[lo:hi]
				chunk := chunks[t][:0]
				if entropyOn {
					ws.raw, errs[t] = ws.geo.SerializeSubtree(seg, depth, ws.raw[:0])
					if errs[t] != nil {
						continue
					}
					chunk = append(chunk, 1)
					chunk = entropy.AppendCompressBytes(chunk, ws.raw)
				} else {
					chunk = append(chunk, 0)
					chunk, errs[t] = ws.geo.SerializeSubtree(seg, depth, chunk)
					if errs[t] != nil {
						continue
					}
				}
				chunks[t] = chunk
				mn, mx, _ := morton.Bounds(seg)
				if hasR {
					vmin := resc.Invert(geom.Voxel{X: mn[0], Y: mn[1], Z: mn[2]})
					vmax := resc.Invert(geom.Voxel{X: mx[0], Y: mx[1], Z: mx[2]})
					mn = [3]uint32{vmin.X, vmin.Y, vmin.Z}
					mx = [3]uint32{vmax.X, vmax.Y, vmax.Z}
				}
				infos[t] = TileInfo{Points: uint32(hi - lo), GeomLen: uint32(len(chunk)), Min: mn, Max: mx}
			}
			tileWorkerPool.Put(ws)
		})
	})
	for _, terr := range errs {
		if terr != nil {
			return nil, tilePlan{}, terr
		}
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]byte, 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	frame.Geometry = out
	frame.NumPoints = uint32(n)
	return sorted, plan, nil
}

// tiledAttr is the attribute half of the tiled encode: one self-contained
// intra (I) or inter (P) attribute stream per tile, fanned across the pool,
// then concatenated behind the directory. The per-tile streams carry the
// GLOBAL grids, so their decoded values are exactly the untiled codec's.
func (e *Encoder) tiledAttr(g *GeometryIntermediate, isP, needRef bool) (*EncodedFrame, edgesim.Snapshot, error) {
	frame, sorted, plan := g.frame, g.sorted, g.plan
	n := len(sorted)
	nT := plan.tiles()
	chunks := make([][]byte, nT)
	errs := make([]error, nT)
	dev := e.dev
	var err error
	s1 := dev.Snapshot()
	dev.Stage("Attribute", func() {
		if isP {
			e.pvox = grow(e.pvox, n)
			for i, k := range sorted {
				e.pvox[i] = k.Voxel
			}
			pvox := e.pvox
			ref := e.ref()
			if len(ref) == 0 {
				err = errors.New("interframe: empty reference frame")
				return
			}
			inter := e.opts.Inter
			e.iBounds = attr.SegmentBoundsIn(e.iBounds, len(ref), inter.Segments)
			iBounds := e.iBounds
			stats := make([]interframe.Stats, nT)
			cost := costTileInterBase
			cand := inter.Candidates
			if cand < 1 {
				cand = 1
			}
			cost.OpsPerItem += 16 * float64(cand)
			cost.BytesPerItem += 7 * float64(cand)
			dev.GPUCompute("TileAttrInter", n, cost, func() {
				dev.ParallelFor(nT, func(t0, t1 int) {
					ws := tileWorkerPool.Get().(*tileWorker)
					for t := t0; t < t1; t++ {
						stream, st, terr := interframe.EncodePTile(ref, pvox, inter,
							plan.interBounds, iBounds,
							plan.interSeg[t], plan.interSeg[t+1]-plan.interSeg[t], &ws.inter)
						if terr != nil {
							errs[t] = terr
							continue
						}
						stats[t] = st
						chunks[t] = append([]byte{1}, stream...)
					}
					tileWorkerPool.Put(ws)
				})
			})
			var sum interframe.Stats
			for _, st := range stats {
				sum.Blocks += st.Blocks
				sum.DirectReuse += st.DirectReuse
				sum.DeltaBlocks += st.DeltaBlocks
			}
			e.lastInterStats = sum
		} else {
			e.colors = grow(e.colors, n)
			for i, k := range sorted {
				e.colors[i] = k.Voxel.C
			}
			colors := e.colors
			var recon []geom.Color
			if needRef {
				e.recon = grow(e.recon, n)
				recon = e.recon
			}
			intra := e.opts.IntraAttr
			dev.GPUCompute("TileAttrIntra", n, costTileIntra, func() {
				dev.ParallelFor(nT, func(t0, t1 int) {
					ws := tileWorkerPool.Get().(*tileWorker)
					for t := t0; t < t1; t++ {
						lo, hi := plan.cuts[t], plan.cuts[t+1]
						var rsl []geom.Color
						if recon != nil {
							rsl = recon[lo:hi]
						}
						stream, terr := attr.EncodeIntraTile(colors[lo:hi], intra, n,
							plan.intraBounds,
							plan.intraSeg[t], plan.intraSeg[t+1]-plan.intraSeg[t], &ws.att, rsl)
						if terr != nil {
							errs[t] = terr
							continue
						}
						chunks[t] = append([]byte{0}, stream...)
					}
					tileWorkerPool.Put(ws)
				})
			})
		}
	})
	attrDelta := dev.Since(s1)
	if err == nil {
		for _, terr := range errs {
			if terr != nil {
				err = terr
				break
			}
		}
	}
	if err != nil {
		return nil, edgesim.Snapshot{}, err
	}
	total := 0
	for t, c := range chunks {
		frame.Tiles[t].AttrLen = uint32(len(c))
		total += len(c)
	}
	payload := make([]byte, 0, total)
	for _, c := range chunks {
		payload = append(payload, c...)
	}
	frame.Attr = payload
	frame.Type = IFrame
	if isP {
		frame.Type = PFrame
	} else if needRef {
		which := e.refWhich
		e.refWhich ^= 1
		ref := grow(e.refBufs[which], n)
		e.refBufs[which] = ref
		for i, k := range sorted {
			ref[i] = k.Voxel
			ref[i].C = e.recon[i]
		}
		e.setRef(ref)
	}
	return frame, attrDelta, nil
}

// decodeTiledProposed inverts the tiled encode. Omitted tiles (per-viewer
// viewport culling) are simply absent from the output; coarse tiles decode
// geometry with zeroed colours. I-frames install a FULL-length reference:
// omitted ranges are concealed by clamping to the nearest included voxel,
// so P-tiles keep decoding with global indices even under a moving camera.
func (d *Decoder) decodeTiledProposed(f *EncodedFrame) (*geom.VoxelCloud, error) {
	nT := len(f.Tiles)
	geomOff := make([]int, nT+1)
	attrOff := make([]int, nT+1)
	pointOff := make([]int, nT+1)
	for t, ti := range f.Tiles {
		geomOff[t+1] = geomOff[t] + int(ti.GeomLen)
		attrOff[t+1] = attrOff[t] + int(ti.AttrLen)
		pointOff[t+1] = pointOff[t] + int(ti.Points)
	}
	if geomOff[nT] != len(f.Geometry) || attrOff[nT] != len(f.Attr) || pointOff[nT] != int(f.NumPoints) {
		return nil, ErrBadContainer
	}

	ref := d.refSorted
	codes := make([][]morton.Code, nT)
	colors := make([][]geom.Color, nT)
	errs := make([]error, nT)
	dev := d.dev
	dev.GPUCompute("TileDecode", int(f.NumPoints), costTileGeomDec, func() {
		dev.ParallelFor(nT, func(t0, t1 int) {
			for t := t0; t < t1; t++ {
				ti := f.Tiles[t]
				if ti.Omitted() {
					continue
				}
				gchunk := f.Geometry[geomOff[t]:geomOff[t+1]]
				if len(gchunk) == 0 {
					errs[t] = ErrBadContainer
					continue
				}
				raw := gchunk[1:]
				switch gchunk[0] {
				case 0:
				case 1:
					var terr error
					if raw, terr = entropy.DecompressBytes(raw); terr != nil {
						errs[t] = terr
						continue
					}
				default:
					errs[t] = ErrBadContainer
					continue
				}
				tcodes, terr := paroctree.DeserializeSerial(raw, uint(f.Depth))
				if terr != nil {
					errs[t] = terr
					continue
				}
				if len(tcodes) != int(ti.Points) {
					errs[t] = ErrBadContainer
					continue
				}
				codes[t] = tcodes
				if ti.Coarse() {
					continue // geometry only; colours stay zero
				}
				achunk := f.Attr[attrOff[t]:attrOff[t+1]]
				if len(achunk) == 0 {
					errs[t] = ErrBadContainer
					continue
				}
				switch achunk[0] {
				case 0: // intra
					tcolors, terr := attr.DecodeIntraTile(achunk[1:])
					if terr != nil {
						errs[t] = terr
						continue
					}
					if len(tcolors) != int(ti.Points) {
						errs[t] = ErrBadContainer
						continue
					}
					colors[t] = tcolors
				case 1: // inter
					if ref == nil {
						errs[t] = ErrMissingReference
						continue
					}
					tcolors, plo, phi, terr := interframe.DecodePTile(achunk[1:], ref)
					if terr != nil {
						errs[t] = terr
						continue
					}
					if plo != pointOff[t] || phi != pointOff[t+1] {
						errs[t] = ErrBadContainer
						continue
					}
					colors[t] = tcolors
				default:
					errs[t] = ErrBadContainer
				}
			}
		})
	})
	for _, terr := range errs {
		if errors.Is(terr, ErrMissingReference) {
			return nil, terr
		}
	}
	for _, terr := range errs {
		if terr != nil {
			return nil, terr
		}
	}

	// Included tiles must stay in ascending Morton order across boundaries
	// (contiguous key ranges of one sorted sequence).
	var last morton.Code
	have := false
	included := 0
	for t := range codes {
		tc := codes[t]
		if tc == nil {
			continue
		}
		if have && tc[0] <= last {
			return nil, ErrBadContainer
		}
		last = tc[len(tc)-1]
		have = true
		included += len(tc)
	}
	if included == 0 {
		return &geom.VoxelCloud{Depth: uint(f.Depth)}, nil
	}

	all := make([]morton.Code, 0, included)
	for _, tc := range codes {
		all = append(all, tc...)
	}
	voxels := paroctree.CodesToVoxels(d.dev, all, uint(f.Depth))
	idx := 0
	for t, tc := range codes {
		if tc == nil {
			continue
		}
		if tcolors := colors[t]; tcolors != nil {
			for i := range tcolors {
				voxels[idx+i].C = tcolors[i]
			}
		}
		idx += len(tc)
	}

	if f.Type == IFrame {
		// Full-length reference in coded (pre-invert) space, with omitted
		// ranges clamped to the nearest included voxel.
		newRef := make([]geom.Voxel, f.NumPoints)
		idx = 0
		for t, tc := range codes {
			if tc == nil {
				continue
			}
			copy(newRef[pointOff[t]:pointOff[t+1]], voxels[idx:idx+len(tc)])
			idx += len(tc)
		}
		fillLo := -1
		for t := range f.Tiles {
			if codes[t] != nil {
				if fillLo >= 0 {
					fill := newRef[pointOff[t]]
					for i := fillLo; i < pointOff[t]; i++ {
						newRef[i] = fill
					}
					fillLo = -1
				}
				continue
			}
			if fillLo < 0 {
				fillLo = pointOff[t]
			}
		}
		if fillLo >= 0 {
			fill := newRef[fillLo-1]
			for i := fillLo; i < int(f.NumPoints); i++ {
				newRef[i] = fill
			}
		}
		d.refSorted = newRef
	}

	if f.HasRescale {
		out := make([]geom.Voxel, len(voxels))
		r := f.Rescale
		d.dev.GPUKernelIdx("InverseRescale", len(voxels), costRescale, func(i int) {
			out[i] = r.Invert(voxels[i])
		})
		voxels = out
	}
	return &geom.VoxelCloud{Depth: uint(f.Depth), Voxels: voxels}, nil
}
