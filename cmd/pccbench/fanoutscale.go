package main

// Relay-tree viewer-scaling sweep: how much does ONE MORE viewer cost once
// the encode is amortized? The fanout experiment proves the encode is paid
// once; this one prices the fan-out itself — per-viewer CPU cost as the
// audience grows 64 → 16k — and makes the sub-linear scaling claim
// executable: encode-once is enforced at every point, and the per-viewer
// cost at the top of the sweep must stay within a small factor of the cost
// at the bottom (flat cost = a true relay tree; growth = the encode path
// leaking into the per-viewer work).
//
//	pccbench fanout-scale                         sweep 64 → 16384 viewers
//	pccbench -maxviewers 2048 fanout-scale        CI-sized sweep
//	pccbench -maxviewers 2048 -ceiling 50 fanout-scale
//	                                              fail when the largest
//	                                              point costs > 50 µs of
//	                                              CPU per viewer-frame
//	pccbench -ratio 2 fanout-scale                fail when cost(max) >
//	                                              2 x cost(min)
//	pccbench -benchout BENCH_6.json fanout-scale  tracked results file
//
// (Flags precede the experiment name.) Viewers run with nil PacketOut:
// every frame is packetized, sequence-stamped, recorded for NACK, and
// link-accounted, but nothing hits a socket — the sweep measures the
// serving machinery, not the kernel's network stack.
//
// The workload is deliberately small (redandblack @ 0.8%, 12 frames): the
// point is the per-viewer slope, not encode throughput, and 16k viewers x
// 12 frames already exercises ~200k full frame sends.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/pcc/stream"
)

// fanoutScale pins the sweep workload (overridable via -scale / -frames).
const (
	fanoutScaleScale  = 0.008
	fanoutScaleFrames = 12
)

// scalePoint is one viewer-count measurement.
type scalePoint struct {
	Viewers       int     `json:"viewers"`
	FramesEncoded int64   `json:"frames_encoded"`
	ViewerFrames  int64   `json:"viewer_frames"`
	Dropped       int64   `json:"dropped"`
	WallMs        float64 `json:"wall_ms"`
	CPUMs         float64 `json:"cpu_ms"`
	// CostUs is the headline number: CPU microseconds per delivered
	// viewer-frame — the marginal price of serving one viewer one frame.
	CostUs float64 `json:"cpu_us_per_viewer_frame"`
}

// scaleFile is the BENCH_6.json schema.
type scaleFile struct {
	Benchmark  string       `json:"benchmark"`
	Video      string       `json:"video"`
	Scale      float64      `json:"scale"`
	Frames     int          `json:"frames"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Shards     int          `json:"shards"`
	CPUSource  string       `json:"cpu_source"` // "getrusage" or "wall"
	Points     []scalePoint `json:"points"`
	// CostRatioMaxVsMin compares the per-viewer cost at the sweep's top to
	// its bottom; ~1 means fan-out cost is flat in the audience size.
	CostRatioMaxVsMin float64 `json:"cost_ratio_max_vs_min"`
	// CeilingUs echoes the -ceiling gate the run was held to, if any.
	CeilingUs float64 `json:"ceiling_us,omitempty"`
}

// fanoutScaleFrameSet builds the sweep workload at its own (small) scale.
func fanoutScaleFrameSet(scale float64, n int) ([]*geom.VoxelCloud, error) {
	spec, err := dataset.SpecByName(benchVideo)
	if err != nil {
		return nil, err
	}
	g := dataset.NewGenerator(spec, scale)
	frames := make([]*geom.VoxelCloud, n)
	for i := range frames {
		if frames[i], err = g.Frame(i % spec.Frames); err != nil {
			return nil, err
		}
	}
	return frames, nil
}

// runFanoutScalePoint serves the workload to n viewers and prices it.
// Attachment happens before the clock starts: the sweep measures
// steady-state serving, and joins are priced by the churn tests instead.
func runFanoutScalePoint(n int, frames []*geom.VoxelCloud) (scalePoint, bool, error) {
	srv := stream.NewServer(context.Background(), stream.ServerConfig{
		Options:     benchOptions(codec.IntraInterV1),
		ViewerQueue: 64,
	})
	for i := 0; i < n; i++ {
		if _, err := srv.Attach(stream.ViewerConfig{}); err != nil {
			return scalePoint{}, false, err
		}
	}
	cpu0, haveCPU := processCPUTime()
	start := time.Now()
	for _, f := range frames {
		if err := srv.Submit(context.Background(), f); err != nil {
			return scalePoint{}, false, err
		}
	}
	if err := srv.Close(); err != nil {
		return scalePoint{}, false, err
	}
	wall := time.Since(start)
	cpu := wall
	if haveCPU {
		cpu1, _ := processCPUTime()
		cpu = cpu1 - cpu0
	}

	m := srv.Metrics()
	pt := scalePoint{
		Viewers:       n,
		FramesEncoded: m.FramesEncoded,
		WallMs:        round2(float64(wall.Microseconds()) / 1e3),
		CPUMs:         round2(float64(cpu.Microseconds()) / 1e3),
	}
	for _, vm := range m.PerViewer {
		pt.ViewerFrames += vm.FramesSent
		pt.Dropped += vm.FramesDropped
	}
	if pt.FramesEncoded != int64(len(frames)) {
		return pt, haveCPU, fmt.Errorf(
			"fanout-scale: encoded %d frames for %d viewers, want %d (encode-once violated)",
			pt.FramesEncoded, n, len(frames))
	}
	if pt.ViewerFrames == 0 {
		return pt, haveCPU, fmt.Errorf("fanout-scale: %d viewers delivered zero frames", n)
	}
	pt.CostUs = round3(float64(cpu.Microseconds()) / float64(pt.ViewerFrames))
	return pt, haveCPU, nil
}

// runFanoutScale is the `fanout-scale` experiment entry point.
func runFanoutScale(cfg benchConfig) error {
	scale, nframes := fanoutScaleScale, fanoutScaleFrames
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "scale":
			scale = cfg.Scale
		case "frames":
			nframes = cfg.Frames
		}
	})
	frames, err := fanoutScaleFrameSet(scale, nframes)
	if err != nil {
		return err
	}

	sweep := []int{64, 256, 1024, 2048, 4096, 16384}
	if *flagViewers > 0 {
		sweep = []int{*flagViewers}
	} else if *flagMaxViewers > 0 {
		kept := sweep[:0]
		for _, n := range sweep {
			if n <= *flagMaxViewers {
				kept = append(kept, n)
			}
		}
		sweep = kept
	}
	if len(sweep) == 0 {
		return fmt.Errorf("fanout-scale: -maxviewers %d leaves no sweep points", *flagMaxViewers)
	}

	out := scaleFile{
		Benchmark:  "fanout-scale",
		Video:      benchVideo,
		Scale:      scale,
		Frames:     nframes,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Shards:     runtime.NumCPU(),
		CPUSource:  "getrusage",
		CeilingUs:  *flagCeiling,
	}
	fmt.Printf("fanout-scale: %s @ %.3f, %d frames, %d relay shards, GOMAXPROCS=%d\n\n",
		benchVideo, scale, len(frames), out.Shards, out.GoMaxProcs)
	fmt.Printf("%8s %12s %14s %10s %10s %16s\n",
		"viewers", "enc-frames", "viewer-frames", "wall ms", "cpu ms", "cpu µs/vframe")

	for _, n := range sweep {
		pt, haveCPU, err := runFanoutScalePoint(n, frames)
		if err != nil {
			return err
		}
		if !haveCPU {
			out.CPUSource = "wall"
		}
		out.Points = append(out.Points, pt)
		fmt.Printf("%8d %12d %14d %10.1f %10.1f %16.3f\n",
			n, pt.FramesEncoded, pt.ViewerFrames, pt.WallMs, pt.CPUMs, pt.CostUs)
	}

	lo, hi := out.Points[0], out.Points[len(out.Points)-1]
	if lo.CostUs > 0 {
		out.CostRatioMaxVsMin = round3(hi.CostUs / lo.CostUs)
		fmt.Printf("\nper-viewer cost %d → %d viewers: %.3f → %.3f µs/vframe (ratio %.2fx)\n",
			lo.Viewers, hi.Viewers, lo.CostUs, hi.CostUs, out.CostRatioMaxVsMin)
	}

	if *flagBenchOut != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*flagBenchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *flagBenchOut)
	}
	if *flagCeiling > 0 && hi.CostUs > *flagCeiling {
		return fmt.Errorf("fanout-scale: %.3f µs/viewer-frame at %d viewers exceeds ceiling %.3f",
			hi.CostUs, hi.Viewers, *flagCeiling)
	}
	if *flagCeiling > 0 {
		fmt.Printf("ceiling passed: %.3f µs/vframe <= %.3f at %d viewers\n",
			hi.CostUs, *flagCeiling, hi.Viewers)
	}
	if *flagRatio > 0 && len(out.Points) > 1 {
		if out.CostRatioMaxVsMin > *flagRatio {
			return fmt.Errorf("fanout-scale: cost ratio %.2fx (%d vs %d viewers) exceeds %.2fx",
				out.CostRatioMaxVsMin, hi.Viewers, lo.Viewers, *flagRatio)
		}
		fmt.Printf("ratio passed: %.2fx <= %.2fx\n", out.CostRatioMaxVsMin, *flagRatio)
	}
	return nil
}
