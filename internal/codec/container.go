// Package codec assembles the building blocks into the five end-to-end
// designs the paper evaluates (Sec. VI-B):
//
//	TMC13        — BASELINE intra: sequential octree geometry (lossless,
//	               entropy coded) + RAHT attributes.
//	CWIPC        — BASELINE inter: sequential octree geometry per frame +
//	               macro-block-tree motion estimation on 4 CPU threads;
//	               attributes entropy-coded raw.
//	IntraOnly    — CONTRIBUTION intra: Morton-parallel octree geometry +
//	               segment Base+Deltas attributes (2-layer, no entropy).
//	IntraInterV1 — IntraOnly for I-frames + inter-frame block-match
//	               attribute compression for P-frames at the
//	               quality-oriented reuse threshold (the paper's "300").
//	IntraInterV2 — same at the compression-oriented threshold ("1200").
//
// Frames are coded in an IPP group-of-pictures (one I followed by two P,
// Sec. V-B) for the inter designs; intra designs treat every frame as I.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/paroctree"
)

// FrameType distinguishes intra-coded and predicted frames.
type FrameType byte

const (
	// IFrame is intra-coded (self-contained).
	IFrame FrameType = 0
	// PFrame is predicted from the preceding I-frame.
	PFrame FrameType = 1
)

func (t FrameType) String() string {
	if t == PFrame {
		return "P"
	}
	return "I"
}

// EncodedFrame is one compressed frame: a geometry stream and an attribute
// stream plus the header fields the decoder needs.
type EncodedFrame struct {
	Type      FrameType
	Depth     uint8
	NumPoints uint32
	// Rescale carries the tight-cuboid transform for designs whose
	// geometry path re-scales (zero value = identity/absent).
	HasRescale bool
	Rescale    paroctree.Rescale
	// Tiles, when non-empty, marks the frame as tiled: Geometry and Attr
	// are concatenations of per-tile self-contained chunks, sliced by the
	// directory's byte lengths. NumPoints stays the FULL frame total even
	// when tiles are omitted.
	Tiles    []TileInfo
	Geometry []byte
	Attr     []byte
}

// Tiled reports whether the frame carries a tile directory.
func (f *EncodedFrame) Tiled() bool { return len(f.Tiles) > 0 }

// Size returns the total compressed size in bytes (the Fig. 8c metric),
// including the container header.
func (f *EncodedFrame) Size() int64 {
	return int64(frameHeaderSize(f.HasRescale)) + int64(tileDirSize(len(f.Tiles))) +
		int64(len(f.Geometry)) + int64(len(f.Attr))
}

const frameMagic = "PCVF"

func frameHeaderSize(hasRescale bool) int {
	n := 4 + 1 + 1 + 1 + 4 + 4 + 4 // magic, type, depth, flags, numPoints, geomLen, attrLen
	if hasRescale {
		n += 3*4 + 3*8
	}
	return n
}

// MaxTiles caps the tile count per frame: per-viewer tile masks are 64-bit
// words throughout the streaming layer.
const MaxTiles = 64

// Tile flag bits in the container's tile directory.
const (
	// TileOmitted marks a tile stripped from the frame entirely (per-viewer
	// viewport culling); its geometry and attribute lengths are zero.
	TileOmitted = 1 << 0
	// TileCoarse marks a tile kept for geometry but stripped of attributes
	// (the frustum-margin "coarsened" representation); the decoder renders
	// it with zero colours.
	TileCoarse = 1 << 1
)

// TileInfo is one entry of a tiled frame's directory: the tile's flags, its
// FULL point count (unchanged by per-viewer stripping, so the decoder can
// keep global indexing for the inter-frame reference), the byte lengths of
// its self-contained geometry and attribute chunks within the frame's
// concatenated streams, and its axis-aligned bounding box in the ORIGINAL
// lattice (pre-rescale), which the sender tests against each viewer's
// frustum.
type TileInfo struct {
	Flags   uint8
	Points  uint32
	GeomLen uint32
	AttrLen uint32
	Min     [3]uint32
	Max     [3]uint32
}

// Omitted reports whether the tile was stripped from the frame.
func (ti TileInfo) Omitted() bool { return ti.Flags&TileOmitted != 0 }

// Coarse reports whether the tile carries geometry but no attributes.
func (ti TileInfo) Coarse() bool { return ti.Flags&TileCoarse != 0 }

// tileRecordSize is one directory entry: flags, points, geomLen, attrLen,
// and the 6-coordinate AABB.
const tileRecordSize = 1 + 4 + 4 + 4 + 6*4

// tileDirSize returns the directory's wire size: a u16 tile count followed
// by the records. Zero for untiled frames (no directory at all).
func tileDirSize(tiles int) int {
	if tiles == 0 {
		return 0
	}
	return 2 + tiles*tileRecordSize
}

// ErrBadContainer reports a malformed frame container.
var ErrBadContainer = errors.New("codec: bad frame container")

// FrameLayout maps a tiled frame's serialized form (as written by WriteTo)
// without copying it: where the container header ends, where each tile's
// geometry and attribute chunks sit, and the directory needed to rewrite
// the frame per viewer. The streaming layer uses it to slice per-tile
// payload spans straight out of an immutable published buffer.
type FrameLayout struct {
	Type FrameType
	// HeaderLen is the byte length of the container header including the
	// tile directory and the trailing geomLen/attrLen fields — the offset
	// of the first geometry byte.
	HeaderLen int
	// DirOff is the offset of the first directory record (after the u16
	// tile count).
	DirOff int
	Tiles  []TileInfo
	// GeomOff / AttrOff hold len(Tiles)+1 absolute byte offsets: tile t's
	// geometry chunk is wire[GeomOff[t]:GeomOff[t+1]], attributes likewise.
	GeomOff []int
	AttrOff []int
}

// ParseFrameLayout parses a serialized frame's tile layout in place.
// Returns nil for untiled frames and for anything inconsistent — callers
// treat nil as "not sliceable" and fall back to whole-frame handling.
func ParseFrameLayout(wire []byte) *FrameLayout {
	const fixed = 4 + 1 + 1 + 1 + 4
	if len(wire) < fixed || string(wire[:4]) != frameMagic {
		return nil
	}
	flags := wire[6]
	if flags&2 == 0 {
		return nil
	}
	off := fixed
	if flags&1 == 1 {
		off += 3*4 + 3*8
	}
	if len(wire) < off+2 {
		return nil
	}
	tiles := int(binary.LittleEndian.Uint16(wire[off:]))
	if tiles < 1 || tiles > MaxTiles {
		return nil
	}
	dirOff := off + 2
	headerLen := dirOff + tiles*tileRecordSize + 8
	if len(wire) < headerLen {
		return nil
	}
	l := &FrameLayout{
		Type:      FrameType(wire[4]),
		HeaderLen: headerLen,
		DirOff:    dirOff,
		Tiles:     make([]TileInfo, tiles),
		GeomOff:   make([]int, tiles+1),
		AttrOff:   make([]int, tiles+1),
	}
	var gsum, asum uint64
	for t := range l.Tiles {
		rec := wire[dirOff+t*tileRecordSize:]
		ti := TileInfo{
			Flags:   rec[0],
			Points:  binary.LittleEndian.Uint32(rec[1:5]),
			GeomLen: binary.LittleEndian.Uint32(rec[5:9]),
			AttrLen: binary.LittleEndian.Uint32(rec[9:13]),
		}
		for a := 0; a < 3; a++ {
			ti.Min[a] = binary.LittleEndian.Uint32(rec[13+4*a : 17+4*a])
			ti.Max[a] = binary.LittleEndian.Uint32(rec[25+4*a : 29+4*a])
		}
		l.Tiles[t] = ti
		gsum += uint64(ti.GeomLen)
		asum += uint64(ti.AttrLen)
	}
	geomLen := binary.LittleEndian.Uint32(wire[headerLen-8 : headerLen-4])
	attrLen := binary.LittleEndian.Uint32(wire[headerLen-4 : headerLen])
	if gsum != uint64(geomLen) || asum != uint64(attrLen) {
		return nil
	}
	if len(wire) != headerLen+int(geomLen)+int(attrLen) {
		return nil
	}
	l.GeomOff[0] = headerLen
	for t, ti := range l.Tiles {
		l.GeomOff[t+1] = l.GeomOff[t] + int(ti.GeomLen)
	}
	l.AttrOff[0] = headerLen + int(geomLen)
	for t, ti := range l.Tiles {
		l.AttrOff[t+1] = l.AttrOff[t] + int(ti.AttrLen)
	}
	return l
}

// RewriteHeader returns a fresh copy of the frame's container header with
// the given tiles marked omitted or coarse: their directory lengths zeroed
// and the header's geometry/attribute totals patched to the kept sums.
// Combined with the kept tiles' payload spans (GeomOff/AttrOff slices of
// the original wire) this is the complete per-viewer culled frame — no
// re-encode, no payload copy. Point counts stay at the FULL values, so the
// receiver's decoder keeps global indexing for reference concealment.
func (l *FrameLayout) RewriteHeader(wire []byte, omit, coarse uint64) []byte {
	head := append([]byte(nil), wire[:l.HeaderLen]...)
	var gsum, asum uint32
	for t, ti := range l.Tiles {
		rec := head[l.DirOff+t*tileRecordSize:]
		bit := uint64(1) << uint(t)
		g, a := ti.GeomLen, ti.AttrLen
		switch {
		case ti.Omitted() || omit&bit != 0:
			rec[0] = ti.Flags | TileOmitted
			g, a = 0, 0
		case coarse&bit != 0:
			rec[0] = ti.Flags | TileCoarse
			a = 0
		}
		binary.LittleEndian.PutUint32(rec[5:9], g)
		binary.LittleEndian.PutUint32(rec[9:13], a)
		gsum += g
		asum += a
	}
	binary.LittleEndian.PutUint32(head[l.HeaderLen-8:l.HeaderLen-4], gsum)
	binary.LittleEndian.PutUint32(head[l.HeaderLen-4:l.HeaderLen], asum)
	return head
}

// WriteTo serializes the frame. Implements io.WriterTo.
func (f *EncodedFrame) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, 0, frameHeaderSize(f.HasRescale)+tileDirSize(len(f.Tiles)))
	hdr = append(hdr, frameMagic...)
	hdr = append(hdr, byte(f.Type), f.Depth)
	var flags byte
	if f.HasRescale {
		flags |= 1
	}
	if f.Tiled() {
		flags |= 2
	}
	hdr = append(hdr, flags)
	hdr = binary.LittleEndian.AppendUint32(hdr, f.NumPoints)
	if f.HasRescale {
		hdr = binary.LittleEndian.AppendUint32(hdr, f.Rescale.MinX)
		hdr = binary.LittleEndian.AppendUint32(hdr, f.Rescale.MinY)
		hdr = binary.LittleEndian.AppendUint32(hdr, f.Rescale.MinZ)
		hdr = binary.LittleEndian.AppendUint64(hdr, f.Rescale.ScaleX)
		hdr = binary.LittleEndian.AppendUint64(hdr, f.Rescale.ScaleY)
		hdr = binary.LittleEndian.AppendUint64(hdr, f.Rescale.ScaleZ)
	}
	if f.Tiled() {
		hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(f.Tiles)))
		for _, ti := range f.Tiles {
			hdr = append(hdr, ti.Flags)
			hdr = binary.LittleEndian.AppendUint32(hdr, ti.Points)
			hdr = binary.LittleEndian.AppendUint32(hdr, ti.GeomLen)
			hdr = binary.LittleEndian.AppendUint32(hdr, ti.AttrLen)
			for a := 0; a < 3; a++ {
				hdr = binary.LittleEndian.AppendUint32(hdr, ti.Min[a])
			}
			for a := 0; a < 3; a++ {
				hdr = binary.LittleEndian.AppendUint32(hdr, ti.Max[a])
			}
		}
	}
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(f.Geometry)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(f.Attr)))
	var total int64
	for _, chunk := range [][]byte{hdr, f.Geometry, f.Attr} {
		n, err := w.Write(chunk)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadFrameFrom deserializes one frame written by WriteTo.
func ReadFrameFrom(r io.Reader) (*EncodedFrame, error) {
	fixed := make([]byte, 4+1+1+1+4)
	if _, err := io.ReadFull(r, fixed); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrBadContainer
	}
	if string(fixed[:4]) != frameMagic {
		return nil, ErrBadContainer
	}
	f := &EncodedFrame{
		Type:      FrameType(fixed[4]),
		Depth:     fixed[5],
		NumPoints: binary.LittleEndian.Uint32(fixed[7:11]),
	}
	if f.Type != IFrame && f.Type != PFrame {
		return nil, fmt.Errorf("codec: bad frame type %d", f.Type)
	}
	if f.Depth == 0 || f.Depth > 21 {
		return nil, fmt.Errorf("codec: bad depth %d", f.Depth)
	}
	if fixed[6]&1 == 1 {
		f.HasRescale = true
		rb := make([]byte, 3*4+3*8)
		if _, err := io.ReadFull(r, rb); err != nil {
			return nil, ErrBadContainer
		}
		f.Rescale = paroctree.Rescale{
			MinX:   binary.LittleEndian.Uint32(rb[0:4]),
			MinY:   binary.LittleEndian.Uint32(rb[4:8]),
			MinZ:   binary.LittleEndian.Uint32(rb[8:12]),
			ScaleX: binary.LittleEndian.Uint64(rb[12:20]),
			ScaleY: binary.LittleEndian.Uint64(rb[20:28]),
			ScaleZ: binary.LittleEndian.Uint64(rb[28:36]),
		}
		if f.Rescale.ScaleX == 0 || f.Rescale.ScaleY == 0 || f.Rescale.ScaleZ == 0 {
			return nil, ErrBadContainer
		}
	}
	if fixed[6]&2 == 2 {
		cnt := make([]byte, 2)
		if _, err := io.ReadFull(r, cnt); err != nil {
			return nil, ErrBadContainer
		}
		tiles := int(binary.LittleEndian.Uint16(cnt))
		if tiles < 1 || tiles > MaxTiles {
			return nil, fmt.Errorf("codec: bad tile count %d", tiles)
		}
		dir := make([]byte, tiles*tileRecordSize)
		if _, err := io.ReadFull(r, dir); err != nil {
			return nil, ErrBadContainer
		}
		f.Tiles = make([]TileInfo, tiles)
		for t := range f.Tiles {
			rec := dir[t*tileRecordSize:]
			ti := TileInfo{
				Flags:   rec[0],
				Points:  binary.LittleEndian.Uint32(rec[1:5]),
				GeomLen: binary.LittleEndian.Uint32(rec[5:9]),
				AttrLen: binary.LittleEndian.Uint32(rec[9:13]),
			}
			for a := 0; a < 3; a++ {
				ti.Min[a] = binary.LittleEndian.Uint32(rec[13+4*a : 17+4*a])
				ti.Max[a] = binary.LittleEndian.Uint32(rec[25+4*a : 29+4*a])
			}
			if ti.Flags&^uint8(TileOmitted|TileCoarse) != 0 || ti.Points == 0 {
				return nil, ErrBadContainer
			}
			if ti.Omitted() && (ti.GeomLen != 0 || ti.AttrLen != 0) {
				return nil, ErrBadContainer
			}
			if !ti.Omitted() && ti.Coarse() && ti.AttrLen != 0 {
				return nil, ErrBadContainer
			}
			for a := 0; a < 3; a++ {
				if ti.Min[a] > ti.Max[a] {
					return nil, ErrBadContainer
				}
			}
			f.Tiles[t] = ti
		}
	}
	lens := make([]byte, 8)
	if _, err := io.ReadFull(r, lens); err != nil {
		return nil, ErrBadContainer
	}
	geomLen := binary.LittleEndian.Uint32(lens[0:4])
	attrLen := binary.LittleEndian.Uint32(lens[4:8])
	const maxReasonable = 1 << 30
	if geomLen > maxReasonable || attrLen > maxReasonable || f.NumPoints > maxReasonable {
		return nil, ErrBadContainer
	}
	if f.Tiled() {
		var pts, gsum, asum uint64
		for _, ti := range f.Tiles {
			pts += uint64(ti.Points)
			gsum += uint64(ti.GeomLen)
			asum += uint64(ti.AttrLen)
		}
		if pts != uint64(f.NumPoints) || gsum != uint64(geomLen) || asum != uint64(attrLen) {
			return nil, ErrBadContainer
		}
	}
	f.Geometry = make([]byte, geomLen)
	if _, err := io.ReadFull(r, f.Geometry); err != nil {
		return nil, ErrBadContainer
	}
	f.Attr = make([]byte, attrLen)
	if _, err := io.ReadFull(r, f.Attr); err != nil {
		return nil, ErrBadContainer
	}
	return f, nil
}
