// Package render implements the final stage of the paper's end-to-end
// pipeline (Fig. 1: "Render and Display"): an orthographic point-splat
// renderer with a z-buffer, used by the examples and the pccview tool to
// turn decoded frames into images — which is also how the repository
// reproduces the paper's visual comparison (Fig. 10a: raw vs decoded PCs).
package render

import (
	"errors"
	"image"
	"image/color"
	"math"

	"repro/internal/geom"
)

// Axis selects the viewing direction of the orthographic camera.
type Axis int

const (
	// FrontZ looks down the +Z axis (the paper's figures show frontal
	// views of the body captures).
	FrontZ Axis = iota
	// SideX looks down the +X axis.
	SideX
	// TopY looks down the -Y axis.
	TopY
)

// Options configures a render.
type Options struct {
	// Width and Height of the output image in pixels.
	Width, Height int
	// View selects the camera axis.
	View Axis
	// SplatRadius draws each point as a (2r+1)^2 square splat; 0 draws
	// single pixels. Sparse clouds need r >= 1 to look solid.
	SplatRadius int
	// Background is the clear colour (default black).
	Background color.RGBA
	// Shade darkens points with depth for a cheap depth cue.
	Shade bool
}

// DefaultOptions renders a 512x512 frontal view with 1-pixel splats.
func DefaultOptions() Options {
	return Options{Width: 512, Height: 512, View: FrontZ, SplatRadius: 1, Shade: true}
}

// ErrEmpty is returned when rendering an empty cloud.
var ErrEmpty = errors.New("render: empty cloud")

// project maps a voxel to (u, v, depth) in lattice units for the view.
func project(v geom.Voxel, view Axis, grid float64) (u, vv, depth float64) {
	x, y, z := float64(v.X), float64(v.Y), float64(v.Z)
	switch view {
	case SideX:
		return z, grid - 1 - y, x
	case TopY:
		return x, z, grid - 1 - y
	default: // FrontZ
		return x, grid - 1 - y, z
	}
}

// Render draws the cloud into a new RGBA image.
func Render(vc *geom.VoxelCloud, o Options) (*image.RGBA, error) {
	if vc.Len() == 0 {
		return nil, ErrEmpty
	}
	if o.Width <= 0 || o.Height <= 0 {
		return nil, errors.New("render: non-positive image size")
	}
	img := image.NewRGBA(image.Rect(0, 0, o.Width, o.Height))
	bg := o.Background
	if bg == (color.RGBA{}) {
		bg = color.RGBA{A: 255}
	}
	for i := 0; i < len(img.Pix); i += 4 {
		img.Pix[i+0] = bg.R
		img.Pix[i+1] = bg.G
		img.Pix[i+2] = bg.B
		img.Pix[i+3] = 255
	}

	grid := float64(vc.GridSize())
	// Fit the occupied projected bounding box into the image with a small
	// margin, preserving aspect.
	minU, minV := math.Inf(1), math.Inf(1)
	maxU, maxV := math.Inf(-1), math.Inf(-1)
	for _, v := range vc.Voxels {
		u, vv, _ := project(v, o.View, grid)
		minU, maxU = math.Min(minU, u), math.Max(maxU, u)
		minV, maxV = math.Min(minV, vv), math.Max(maxV, vv)
	}
	spanU := math.Max(maxU-minU, 1)
	spanV := math.Max(maxV-minV, 1)
	margin := 0.04
	scale := math.Min(
		float64(o.Width)*(1-2*margin)/spanU,
		float64(o.Height)*(1-2*margin)/spanV,
	)
	offU := (float64(o.Width) - spanU*scale) / 2
	offV := (float64(o.Height) - spanV*scale) / 2

	zbuf := make([]float64, o.Width*o.Height)
	for i := range zbuf {
		zbuf[i] = math.Inf(1)
	}
	r := o.SplatRadius
	for _, v := range vc.Voxels {
		u, vv, depth := project(v, o.View, grid)
		px := int((u-minU)*scale + offU)
		py := int((vv-minV)*scale + offV)
		c := v.C
		if o.Shade {
			// Darken by normalized depth (points further from the camera).
			f := 1 - 0.35*depth/grid
			c = geom.Color{
				R: uint8(float64(c.R) * f),
				G: uint8(float64(c.G) * f),
				B: uint8(float64(c.B) * f),
			}
		}
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				x, y := px+dx, py+dy
				if x < 0 || y < 0 || x >= o.Width || y >= o.Height {
					continue
				}
				idx := y*o.Width + x
				if depth >= zbuf[idx] {
					continue
				}
				zbuf[idx] = depth
				p := idx * 4
				img.Pix[p+0] = c.R
				img.Pix[p+1] = c.G
				img.Pix[p+2] = c.B
				img.Pix[p+3] = 255
			}
		}
	}
	return img, nil
}

// Coverage reports the fraction of image pixels covered by splats — a
// cheap structural check used by tests and the visual-comparison harness.
func Coverage(img *image.RGBA, background color.RGBA) float64 {
	if background == (color.RGBA{}) {
		background = color.RGBA{A: 255}
	}
	covered, total := 0, 0
	for i := 0; i < len(img.Pix); i += 4 {
		total++
		if img.Pix[i] != background.R || img.Pix[i+1] != background.G || img.Pix[i+2] != background.B {
			covered++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// DiffImage renders the per-pixel absolute colour difference of two images
// of equal size (white = large error), the Fig. 10a-style visual diff.
func DiffImage(a, b *image.RGBA) (*image.RGBA, error) {
	if a.Bounds() != b.Bounds() {
		return nil, errors.New("render: image size mismatch")
	}
	out := image.NewRGBA(a.Bounds())
	for i := 0; i < len(a.Pix); i += 4 {
		d := absDiff(a.Pix[i], b.Pix[i]) + absDiff(a.Pix[i+1], b.Pix[i+1]) + absDiff(a.Pix[i+2], b.Pix[i+2])
		v := uint8(min(255, d))
		out.Pix[i+0] = v
		out.Pix[i+1] = v
		out.Pix[i+2] = v
		out.Pix[i+3] = 255
	}
	return out, nil
}

func absDiff(a, b uint8) int {
	if a > b {
		return int(a - b)
	}
	return int(b - a)
}
