package paroctree

import (
	"bytes"
	"testing"

	"repro/internal/attr"
	"repro/internal/morton"
)

// TestSerializeSubtreeMatchesParallel pins the tiled geometry invariant:
// over the FULL leaf set, the serial subtree serializer emits exactly the
// bytes Build + SerializeInto emits — so a T=1 "tiled" stream is the
// untiled stream, and per-tile streams use the same BFS grammar.
func TestSerializeSubtreeMatchesParallel(t *testing.T) {
	d := dev()
	for _, n := range []int{1, 7, 500, 20000} {
		vc := randomCloud(int64(n), n, 10)
		br, err := Build(d, vc)
		if err != nil {
			t.Fatal(err)
		}
		want := br.Tree.Serialize(d)
		var s TileScratch
		got, err := s.SerializeSubtree(br.Tree.Leaves(), vc.Depth, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d: serial subtree stream differs from parallel (len %d vs %d)", n, len(got), len(want))
		}
	}
}

// TestSubtreeTilesRoundTrip splits the sorted leaves into contiguous
// Morton-range tiles, serializes each independently, and checks that
// decoding the tiles (with both decoders) and concatenating reproduces
// the full leaf set exactly.
func TestSubtreeTilesRoundTrip(t *testing.T) {
	d := dev()
	vc := randomCloud(42, 30000, 10)
	br, err := Build(d, vc)
	if err != nil {
		t.Fatal(err)
	}
	leaves := br.Tree.Leaves()
	for _, tiles := range []int{2, 3, 8} {
		bounds := attr.SegmentBounds(len(leaves), tiles)
		var s TileScratch
		var got []uint64
		for ti := 0; ti < tiles; ti++ {
			lo, hi := bounds[ti], bounds[ti+1]
			if lo == hi {
				continue
			}
			stream, err := s.SerializeSubtree(leaves[lo:hi], vc.Depth, nil)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := Deserialize(d, stream, vc.Depth)
			if err != nil {
				t.Fatalf("tiles=%d tile %d: %v", tiles, ti, err)
			}
			ser, err := DeserializeSerial(stream, vc.Depth)
			if err != nil {
				t.Fatalf("tiles=%d tile %d serial: %v", tiles, ti, err)
			}
			if len(dec) != len(ser) {
				t.Fatalf("decoder mismatch: %d vs %d codes", len(dec), len(ser))
			}
			for i := range dec {
				if dec[i] != ser[i] {
					t.Fatalf("decoder mismatch at %d", i)
				}
			}
			if len(dec) != hi-lo {
				t.Fatalf("tiles=%d tile %d: decoded %d codes, want %d", tiles, ti, len(dec), hi-lo)
			}
			for _, c := range dec {
				got = append(got, uint64(c))
			}
		}
		if len(got) != len(leaves) {
			t.Fatalf("tiles=%d: %d total codes, want %d", tiles, len(got), len(leaves))
		}
		for i, c := range leaves {
			if uint64(c) != got[i] {
				t.Fatalf("tiles=%d: code %d differs", tiles, i)
			}
		}
	}
}

func TestSerializeSubtreeErrors(t *testing.T) {
	var s TileScratch
	if _, err := s.SerializeSubtree(nil, 10, nil); err == nil {
		t.Fatal("empty leaves must error")
	}
	if _, err := s.SerializeSubtree([]morton.Code{3, 2}, 10, nil); err == nil {
		t.Fatal("descending leaves must error")
	}
	if _, err := s.SerializeSubtree([]morton.Code{1}, 0, nil); err == nil {
		t.Fatal("depth 0 must error")
	}
	if _, err := DeserializeSerial([]byte{0}, 1); err == nil {
		t.Fatal("zero mask must error")
	}
	if _, err := DeserializeSerial([]byte{1, 1}, 1); err == nil {
		t.Fatal("trailing bytes must error")
	}
}
