package octree

// DynamicTree is the PCL-flavoured octree whose bounding cube is grown
// point-by-point: it starts empty, wraps the first point in a small cube,
// and whenever a later point falls outside, the cube doubles (re-rooting the
// tree with the old root as one octant of the new root) until the point
// fits. This reproduces the behaviour the paper's Fig. 5 walks through and
// is the reason the baseline construction is inherently sequential: the
// shape of the global tree is unknown until the last point is inserted.
//
// Coordinates are signed integers (unit = one voxel).
type DynamicTree struct {
	root *Node
	// Cube origin (inclusive) and side length; side is a power of two.
	ox, oy, oz int64
	side       int64
	numPoints  int
	numNodes   int
	expansions int // how many times the cube doubled (Fig. 5's growth)
}

// NewDynamicTree returns an empty tree.
func NewDynamicTree() *DynamicTree { return &DynamicTree{} }

// Side returns the current bounding-cube side length (0 while empty).
func (t *DynamicTree) Side() int64 { return t.side }

// Origin returns the bounding cube's minimum corner.
func (t *DynamicTree) Origin() (x, y, z int64) { return t.ox, t.oy, t.oz }

// NumPoints returns the number of distinct unit cells occupied.
func (t *DynamicTree) NumPoints() int { return t.numPoints }

// NumNodes returns the number of tree nodes.
func (t *DynamicTree) NumNodes() int { return t.numNodes }

// Expansions returns how many times the bounding cube doubled.
func (t *DynamicTree) Expansions() int { return t.expansions }

func (t *DynamicTree) contains(x, y, z int64) bool {
	return x >= t.ox && x < t.ox+t.side &&
		y >= t.oy && y < t.oy+t.side &&
		z >= t.oz && z < t.oz+t.side
}

// grow doubles the cube towards (x, y, z): the existing cube becomes one
// octant of the doubled cube, chosen per axis so the cube extends towards
// the out-of-box point.
func (t *DynamicTree) grow(x, y, z int64) {
	oldOct := 0
	if x < t.ox {
		// Extend downwards: old cube sits in the upper x half.
		t.ox -= t.side
		oldOct |= 1
	}
	if y < t.oy {
		t.oy -= t.side
		oldOct |= 2
	}
	if z < t.oz {
		t.oz -= t.side
		oldOct |= 4
	}
	newRoot := &Node{}
	newRoot.Children[oldOct] = t.root
	t.root = newRoot
	t.side <<= 1
	t.numNodes++
	t.expansions++
}

// Insert adds the unit cell (x, y, z), expanding the cube as needed.
// Reports whether a new cell was created.
func (t *DynamicTree) Insert(x, y, z int64) bool {
	if t.root == nil {
		// First point: wrap it in a side-2 cube anchored at the even
		// lattice point below it (step-size 2^1, as in Fig. 5).
		t.root = &Node{}
		t.numNodes = 1
		t.side = 2
		t.ox, t.oy, t.oz = x&^1, y&^1, z&^1
	}
	for !t.contains(x, y, z) {
		t.grow(x, y, z)
	}
	n := t.root
	ox, oy, oz := t.ox, t.oy, t.oz
	created := false
	for side := t.side; side > 1; side >>= 1 {
		half := side >> 1
		o := 0
		if x >= ox+half {
			o |= 1
			ox += half
		}
		if y >= oy+half {
			o |= 2
			oy += half
		}
		if z >= oz+half {
			o |= 4
			oz += half
		}
		if n.Children[o] == nil {
			n.Children[o] = &Node{}
			t.numNodes++
			created = true
		}
		n = n.Children[o]
	}
	if created {
		t.numPoints++
	}
	return created
}

// Cells returns all occupied unit cells in DFS (Morton-within-cube) order.
func (t *DynamicTree) Cells() [][3]int64 {
	if t.root == nil {
		return nil
	}
	var out [][3]int64
	var walk func(n *Node, ox, oy, oz, side int64)
	walk = func(n *Node, ox, oy, oz, side int64) {
		if side == 1 {
			out = append(out, [3]int64{ox, oy, oz})
			return
		}
		half := side >> 1
		for i := 0; i < 8; i++ {
			c := n.Children[i]
			if c == nil {
				continue
			}
			walk(c,
				ox+int64(i&1)*half,
				oy+int64(i>>1&1)*half,
				oz+int64(i>>2&1)*half,
				half)
		}
	}
	walk(t.root, t.ox, t.oy, t.oz, t.side)
	return out
}

// Contains reports whether the unit cell (x, y, z) is occupied.
func (t *DynamicTree) Contains(x, y, z int64) bool {
	if t.root == nil || !t.contains(x, y, z) {
		return false
	}
	n := t.root
	ox, oy, oz := t.ox, t.oy, t.oz
	for side := t.side; side > 1; side >>= 1 {
		half := side >> 1
		o := 0
		if x >= ox+half {
			o |= 1
			ox += half
		}
		if y >= oy+half {
			o |= 2
			oy += half
		}
		if z >= oz+half {
			o |= 4
			oz += half
		}
		if n.Children[o] == nil {
			return false
		}
		n = n.Children[o]
	}
	return true
}
