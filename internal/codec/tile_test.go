package codec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/edgesim"
)

// TestTiledT1ByteIdentical pins the tentpole's compatibility contract:
// Tiles 0 and 1 take the untiled path and must reproduce the golden stream
// hashes bit for bit.
func TestTiledT1ByteIdentical(t *testing.T) {
	frames := goldenFrames(t)
	for _, d := range []Design{IntraOnly, IntraInterV1} {
		for _, tiles := range []int{0, 1} {
			opts := OptionsFor(d)
			opts.IntraAttr.Segments = 1500
			opts.Inter.Segments = 2500
			opts.Tiles = tiles
			enc := NewEncoder(edgesim.NewXavier(edgesim.Mode15W), opts)
			h := sha256.New()
			for _, f := range frames {
				ef, _, err := enc.EncodeFrame(f)
				if err != nil {
					t.Fatal(err)
				}
				if ef.Tiled() {
					t.Fatalf("%v Tiles=%d produced a tiled frame", d, tiles)
				}
				if _, err := ef.WriteTo(h); err != nil {
					t.Fatal(err)
				}
			}
			if got := hex.EncodeToString(h.Sum(nil)); got != goldenStreamHashes[d] {
				t.Errorf("%v Tiles=%d stream diverged from golden:\n got  %s\n want %s",
					d, tiles, got, goldenStreamHashes[d])
			}
		}
	}
}

// TestTiledDecodeExact is the differential guard for T>1: the per-tile
// streams carry the GLOBAL segment grids, so per-segment/per-block values
// are the untiled codec's — only the framing differs. Every tiled decode
// must therefore be exactly (voxel- and colour-) equal to the untiled one.
func TestTiledDecodeExact(t *testing.T) {
	frames := goldenFrames(t)
	for _, d := range []Design{IntraOnly, IntraInterV1} {
		for _, tiles := range []int{2, 4, 8} {
			opts := OptionsFor(d)
			opts.IntraAttr.Segments = 1500
			opts.Inter.Segments = 2500

			ref := opts
			enc := NewEncoder(edgesim.NewXavier(edgesim.Mode15W), ref)
			dec := NewDecoder(edgesim.NewXavier(edgesim.Mode15W), ref)

			opts.Tiles = tiles
			tenc := NewEncoder(edgesim.NewXavier(edgesim.Mode15W), opts)
			tdec := NewDecoder(edgesim.NewXavier(edgesim.Mode15W), opts)

			for fi, f := range frames {
				ef, _, err := enc.EncodeFrame(f)
				if err != nil {
					t.Fatal(err)
				}
				tf, _, err := tenc.EncodeFrame(f)
				if err != nil {
					t.Fatal(err)
				}
				if !tf.Tiled() {
					t.Fatalf("%v T=%d frame %d not tiled", d, tiles, fi)
				}
				if got := len(tf.Tiles); got > tiles {
					t.Fatalf("%v T=%d frame %d: %d tiles", d, tiles, fi, got)
				}
				if tf.Type != ef.Type || tf.NumPoints != ef.NumPoints {
					t.Fatalf("%v T=%d frame %d: header mismatch", d, tiles, fi)
				}
				want, err := dec.DecodeFrame(ef)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tdec.DecodeFrame(tf)
				if err != nil {
					t.Fatalf("%v T=%d frame %d: tiled decode: %v", d, tiles, fi, err)
				}
				if !sameCloud(want, got) {
					t.Fatalf("%v T=%d frame %d: tiled decode differs from untiled", d, tiles, fi)
				}
			}
		}
	}
}

// TestTiledContainerRoundTrip exercises WriteTo/ReadFrameFrom on real tiled
// frames, including per-viewer stripping (omitted and coarse tiles) done
// exactly the way the streaming layer rewrites a frame.
func TestTiledContainerRoundTrip(t *testing.T) {
	frames := goldenFrames(t)
	opts := OptionsFor(IntraInterV1)
	opts.IntraAttr.Segments = 1500
	opts.Inter.Segments = 2500
	opts.Tiles = 4
	enc := NewEncoder(edgesim.NewXavier(edgesim.Mode15W), opts)
	ef, _, err := enc.EncodeFrame(frames[0])
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := ef.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != ef.Size() {
		t.Fatalf("Size()=%d but WriteTo wrote %d", ef.Size(), buf.Len())
	}
	rt, err := ReadFrameFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Tiles) != len(ef.Tiles) {
		t.Fatalf("round-trip tile count %d != %d", len(rt.Tiles), len(ef.Tiles))
	}
	for i := range rt.Tiles {
		if rt.Tiles[i] != ef.Tiles[i] {
			t.Fatalf("tile %d round-trip mismatch: %+v vs %+v", i, rt.Tiles[i], ef.Tiles[i])
		}
	}
	if !bytes.Equal(rt.Geometry, ef.Geometry) || !bytes.Equal(rt.Attr, ef.Attr) {
		t.Fatal("payload round-trip mismatch")
	}

	// Strip tile 1 (omitted) and coarsen tile 2, the streaming layer's
	// rewrite: drop the byte ranges, adjust the directory, keep Points.
	if len(ef.Tiles) < 3 {
		t.Fatalf("need >=3 tiles, got %d", len(ef.Tiles))
	}
	stripped := stripTiles(ef, map[int]uint8{1: TileOmitted, 2: TileCoarse})
	buf.Reset()
	if _, err := stripped.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rt2, err := ReadFrameFrom(&buf)
	if err != nil {
		t.Fatalf("stripped frame rejected: %v", err)
	}
	dec := NewDecoder(edgesim.NewXavier(edgesim.Mode15W), opts)
	vc, err := dec.DecodeFrame(rt2)
	if err != nil {
		t.Fatalf("stripped frame decode: %v", err)
	}
	wantPts := 0
	for i, ti := range rt2.Tiles {
		if i != 1 {
			wantPts += int(ti.Points)
		}
	}
	if vc.Len() != wantPts {
		t.Fatalf("stripped decode has %d points, want %d", vc.Len(), wantPts)
	}
	// The coarse tile's points decode with zero colour.
	full := NewDecoder(edgesim.NewXavier(edgesim.Mode15W), opts)
	fvc, err := full.DecodeFrame(ef)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Len() >= fvc.Len() {
		t.Fatal("stripped decode not smaller than full decode")
	}
}

// TestTiledConcealedReference pins the GOP behaviour under viewport culling:
// after decoding an I-frame with an omitted tile, following P-frames (full
// or equally culled) must still decode without error — the decoder conceals
// the missing reference range by clamping to the nearest included voxel.
func TestTiledConcealedReference(t *testing.T) {
	frames := goldenFrames(t)
	opts := OptionsFor(IntraInterV1)
	opts.IntraAttr.Segments = 1500
	opts.Inter.Segments = 2500
	opts.Tiles = 4
	enc := NewEncoder(edgesim.NewXavier(edgesim.Mode15W), opts)
	dec := NewDecoder(edgesim.NewXavier(edgesim.Mode15W), opts)
	for fi, f := range frames[:3] { // one GOP: I P P
		ef, _, err := enc.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		culled := stripTiles(ef, map[int]uint8{0: TileOmitted})
		vc, err := dec.DecodeFrame(culled)
		if err != nil {
			t.Fatalf("frame %d (%v) with culled tile: %v", fi, ef.Type, err)
		}
		want := int(ef.NumPoints) - int(ef.Tiles[0].Points)
		if vc.Len() != want {
			t.Fatalf("frame %d: %d points, want %d", fi, vc.Len(), want)
		}
	}
}

// TestFrameLayoutRewrite pins the zero-copy path the streaming layer uses:
// ParseFrameLayout over the serialized frame, then RewriteHeader plus the
// kept tiles' payload spans must concatenate to exactly the bytes that
// stripTiles+WriteTo produce for the same omit/coarse marks.
func TestFrameLayoutRewrite(t *testing.T) {
	frames := goldenFrames(t)
	opts := OptionsFor(IntraInterV1)
	opts.IntraAttr.Segments = 1500
	opts.Inter.Segments = 2500
	opts.Tiles = 4
	enc := NewEncoder(edgesim.NewXavier(edgesim.Mode15W), opts)
	for fi, f := range frames[:2] { // I and P
		ef, _, err := enc.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ef.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		wire := buf.Bytes()
		l := ParseFrameLayout(wire)
		if l == nil {
			t.Fatalf("frame %d: ParseFrameLayout returned nil", fi)
		}
		if l.Type != ef.Type || len(l.Tiles) != len(ef.Tiles) {
			t.Fatalf("frame %d: layout header mismatch", fi)
		}
		for i := range l.Tiles {
			if l.Tiles[i] != ef.Tiles[i] {
				t.Fatalf("frame %d tile %d: %+v vs %+v", fi, i, l.Tiles[i], ef.Tiles[i])
			}
		}
		if l.GeomOff[len(l.Tiles)]-l.GeomOff[0] != len(ef.Geometry) ||
			l.AttrOff[len(l.Tiles)]-l.AttrOff[0] != len(ef.Attr) {
			t.Fatalf("frame %d: span totals mismatch", fi)
		}

		const omit, coarse = uint64(1 << 1), uint64(1 << 2)
		got := l.RewriteHeader(wire, omit, coarse)
		for ti := range l.Tiles {
			if omit&(1<<uint(ti)) != 0 {
				continue
			}
			got = append(got, wire[l.GeomOff[ti]:l.GeomOff[ti+1]]...)
		}
		for ti := range l.Tiles {
			if (omit|coarse)&(1<<uint(ti)) != 0 {
				continue
			}
			got = append(got, wire[l.AttrOff[ti]:l.AttrOff[ti+1]]...)
		}
		stripped := stripTiles(ef, map[int]uint8{1: TileOmitted, 2: TileCoarse})
		buf.Reset()
		if _, err := stripped.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf.Bytes()) {
			t.Fatalf("frame %d: layout rewrite differs from stripTiles+WriteTo", fi)
		}
		// The rewritten frame must parse and decode.
		if _, err := ReadFrameFrom(bytes.NewReader(got)); err != nil {
			t.Fatalf("frame %d: rewritten frame rejected: %v", fi, err)
		}
		// Untiled frames must yield nil, not a bogus layout.
		uopts := opts
		uopts.Tiles = 0
		uenc := NewEncoder(edgesim.NewXavier(edgesim.Mode15W), uopts)
		uef, _, err := uenc.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		if _, err := uef.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if ParseFrameLayout(buf.Bytes()) != nil {
			t.Fatalf("frame %d: untiled frame produced a layout", fi)
		}
	}
}

// stripTiles returns a copy of a tiled frame with the given tiles omitted
// or coarsened, rewriting the concatenated streams and the directory the
// way the per-viewer fan-out does.
func stripTiles(f *EncodedFrame, marks map[int]uint8) *EncodedFrame {
	out := &EncodedFrame{
		Type: f.Type, Depth: f.Depth, NumPoints: f.NumPoints,
		HasRescale: f.HasRescale, Rescale: f.Rescale,
		Tiles: make([]TileInfo, len(f.Tiles)),
	}
	goff, aoff := 0, 0
	for i, ti := range f.Tiles {
		g := f.Geometry[goff : goff+int(ti.GeomLen)]
		a := f.Attr[aoff : aoff+int(ti.AttrLen)]
		goff += int(ti.GeomLen)
		aoff += int(ti.AttrLen)
		nt := ti
		switch marks[i] {
		case TileOmitted:
			nt.Flags |= TileOmitted
			nt.GeomLen, nt.AttrLen = 0, 0
		case TileCoarse:
			nt.Flags |= TileCoarse
			nt.AttrLen = 0
			out.Geometry = append(out.Geometry, g...)
		default:
			out.Geometry = append(out.Geometry, g...)
			out.Attr = append(out.Attr, a...)
		}
		out.Tiles[i] = nt
	}
	return out
}
