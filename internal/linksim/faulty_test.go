package linksim

import (
	"bytes"
	"fmt"
	"testing"
)

// collect pushes n numbered packets through f and returns the delivered
// sequence (by packet number) after a final Flush.
func collect(t *testing.T, f *FaultyLink, n int) []int {
	t.Helper()
	var got []int
	push := func(pkts [][]byte) {
		for _, p := range pkts {
			var id int
			if _, err := fmt.Sscanf(string(p), "pkt-%d", &id); err != nil {
				t.Fatalf("bad packet %q", p)
			}
			got = append(got, id)
		}
	}
	for i := 0; i < n; i++ {
		out, cost, err := f.Send([]byte(fmt.Sprintf("pkt-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if cost.Latency <= 0 {
			t.Fatalf("packet %d: no radio cost charged", i)
		}
		push(out)
	}
	push(f.Flush())
	return got
}

func TestFaultyLinkNoFaultsIsTransparent(t *testing.T) {
	f := NewFaultyLink(WiFi, FaultProfile{})
	got := collect(t, f, 50)
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50", len(got))
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("packet %d delivered as %d", i, id)
		}
	}
}

func TestFaultyLinkDeterministic(t *testing.T) {
	prof := FaultProfile{DropRate: 0.1, DupRate: 0.05, ReorderRate: 0.1, BurstEvery: 40, BurstLen: 3, Seed: 7}
	a := collect(t, NewFaultyLink(WiFi, prof), 200)
	b := collect(t, NewFaultyLink(WiFi, prof), 200)
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at delivery %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := collect(t, NewFaultyLink(WiFi, FaultProfile{DropRate: 0.1, DupRate: 0.05, ReorderRate: 0.1, BurstEvery: 40, BurstLen: 3, Seed: 8}), 200)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestFaultyLinkRates(t *testing.T) {
	const n = 20000
	prof := FaultProfile{DropRate: 0.05, DupRate: 0.02, ReorderRate: 0.03, Seed: 1}
	f := NewFaultyLink(WiFi, prof)
	for i := 0; i < n; i++ {
		if _, _, err := f.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	f.Flush()
	st := f.Stats()
	if st.Sent != n {
		t.Fatalf("sent %d, want %d", st.Sent, n)
	}
	// Within ±30% of the configured rates at this sample size.
	checkRate := func(name string, got int64, want float64) {
		t.Helper()
		r := float64(got) / n
		if r < want*0.7 || r > want*1.3 {
			t.Fatalf("%s rate %.4f, want ~%.4f", name, r, want)
		}
	}
	checkRate("drop", st.Dropped, prof.DropRate)
	checkRate("dup", st.Duplicated, prof.DupRate)
	checkRate("reorder", st.Reordered, prof.ReorderRate)
	if st.Delivered != st.Sent-st.Dropped-st.BurstDrops+st.Duplicated {
		t.Fatalf("delivery accounting: %+v", st)
	}
}

func TestFaultyLinkBurst(t *testing.T) {
	f := NewFaultyLink(WiFi, FaultProfile{BurstEvery: 20, BurstLen: 5, Seed: 3})
	got := collect(t, f, 200)
	st := f.Stats()
	if st.Bursts == 0 || st.BurstDrops == 0 {
		t.Fatalf("no bursts fired: %+v", st)
	}
	if st.BurstDrops < st.Bursts*4 {
		t.Fatalf("bursts too short: %+v", st)
	}
	if len(got)+int(st.BurstDrops) != 200 {
		t.Fatalf("delivered %d + burst-dropped %d != 200", len(got), st.BurstDrops)
	}
	// Burst losses are consecutive: the delivered ids must contain a gap of
	// at least BurstLen.
	maxGap := 0
	for i := 1; i < len(got); i++ {
		if g := got[i] - got[i-1] - 1; g > maxGap {
			maxGap = g
		}
	}
	if maxGap < 5 {
		t.Fatalf("largest delivery gap %d, want >= burst length 5", maxGap)
	}
}

func TestFaultyLinkReorderSwaps(t *testing.T) {
	// With only reordering enabled, every packet is delivered exactly once
	// and held packets land one slot late.
	f := NewFaultyLink(WiFi, FaultProfile{ReorderRate: 0.2, Seed: 11})
	got := collect(t, f, 500)
	if len(got) != 500 {
		t.Fatalf("delivered %d of 500", len(got))
	}
	seen := make([]bool, 500)
	outOfOrder := 0
	for i, id := range got {
		if seen[id] {
			t.Fatalf("packet %d delivered twice", id)
		}
		seen[id] = true
		if i > 0 && id < got[i-1] {
			outOfOrder++
		}
	}
	if outOfOrder == 0 {
		t.Fatal("no reordering observed at 20% reorder rate")
	}
}

func TestFaultyLinkPropagatesLinkErrors(t *testing.T) {
	f := NewFaultyLink(Link{}, FaultProfile{})
	if _, _, err := f.Send(bytes.Repeat([]byte{1}, 10)); err != ErrBadLink {
		t.Fatalf("err = %v, want ErrBadLink", err)
	}
}
