package codec

import "testing"

func TestRateControlUpdateDirection(t *testing.T) {
	rc := RateControl{TargetBitsPerPoint: 20}.normalized()
	// Over budget -> threshold must rise (more reuse).
	if got := rc.update(100, 40); got <= 100 {
		t.Fatalf("over budget: threshold %v did not rise", got)
	}
	// Under budget -> threshold must fall (better quality).
	if got := rc.update(100, 10); got >= 100 {
		t.Fatalf("under budget: threshold %v did not fall", got)
	}
	// On target -> unchanged.
	if got := rc.update(100, 20); got != 100 {
		t.Fatalf("on target: threshold %v changed", got)
	}
	// Clamps.
	if got := rc.update(1, 1); got < 1 {
		t.Fatalf("below MinThreshold: %v", got)
	}
	rc.MaxThreshold = 150
	if got := rc.update(140, 1e9); got > 150 {
		t.Fatalf("above MaxThreshold: %v", got)
	}
	// Degenerate achieved rate is a no-op.
	if got := rc.update(100, 0); got != 100 {
		t.Fatalf("zero rate: %v", got)
	}
}

func TestRateControlDisabledByDefault(t *testing.T) {
	if (RateControl{}).Enabled() {
		t.Fatal("zero value must be disabled")
	}
	o := OptionsFor(IntraInterV2)
	if o.Rate.Enabled() {
		t.Fatal("paper defaults must not enable rate control")
	}
}

func TestRateControlConvergesOnStream(t *testing.T) {
	fs := frames(t, 3)
	// Establish the open-loop rates of the two extreme thresholds, then
	// target in between and check the controller steers the threshold.
	openLoop := func(th float64) float64 {
		o := scaledOpts(IntraInterV2, fs[0].Len())
		o.Inter.Threshold = th
		enc := NewEncoder(dev(), o)
		var bits, pts float64
		for gop := 0; gop < 2; gop++ {
			for _, f := range fs {
				_, st, err := enc.EncodeFrame(f)
				if err != nil {
					t.Fatal(err)
				}
				if st.Type == PFrame {
					bits += float64(st.SizeBytes) * 8
					pts += float64(st.Points)
				}
			}
		}
		return bits / pts
	}
	loose := openLoop(2000) // heavy reuse, low rate
	tight := openLoop(2)    // no reuse, high rate
	if loose >= tight {
		t.Fatalf("rate landscape inverted: loose %v >= tight %v", loose, tight)
	}
	target := (loose + tight) / 2

	o := scaledOpts(IntraInterV2, fs[0].Len())
	o.Inter.Threshold = 2 // start far from the answer
	o.Rate = RateControl{TargetBitsPerPoint: target, Gain: 0.5}
	enc := NewEncoder(dev(), o)
	var lastBPP float64
	for gop := 0; gop < 8; gop++ {
		for _, f := range fs {
			_, st, err := enc.EncodeFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			if st.Type == PFrame {
				lastBPP = float64(st.SizeBytes) * 8 / float64(st.Points)
			}
		}
	}
	if enc.Threshold() == 2 {
		t.Fatal("controller never moved the threshold")
	}
	// Converged within 25% of target.
	if lastBPP < target*0.75 || lastBPP > target*1.25 {
		t.Fatalf("achieved %.1f bpp, target %.1f (threshold %.1f)", lastBPP, target, enc.Threshold())
	}
}

// adaptOpts builds normalized options with the congestion controller on.
func adaptOpts(mut func(*Options)) Options {
	o := OptionsFor(IntraInterV2)
	o.Adapt = AdaptiveRate{Enabled: true}
	if mut != nil {
		mut(&o)
	}
	return o.normalized()
}

// feedLoss pushes n feedback reports with a fixed loss rate.
func feedLoss(c *Controller, rate float64, n int) {
	for i := 0; i < n; i++ {
		c.ObserveFeedback(Signal{LossRate: rate})
	}
}

func TestAdaptiveRateDefaults(t *testing.T) {
	a := AdaptiveRate{Enabled: true}.normalized(3)
	if a.HighLoss <= a.LowLoss || a.LowLoss <= 0 {
		t.Fatalf("loss band inverted: low %v high %v", a.LowLoss, a.HighLoss)
	}
	if a.MinGOP != 1 || a.MaxGOP != 12 {
		t.Fatalf("GOP clamps = [%d, %d], want [1, 12]", a.MinGOP, a.MaxGOP)
	}
	if a.MaxQScale != 8 || a.MaxBoost != 8 || a.CleanHold != 2 {
		t.Fatalf("defaults: MaxQScale %d MaxBoost %v CleanHold %d", a.MaxQScale, a.MaxBoost, a.CleanHold)
	}
	if a.LocalPeriod != 8 || a.FrameBudget <= 0 {
		t.Fatalf("defaults: LocalPeriod %d FrameBudget %v", a.LocalPeriod, a.FrameBudget)
	}
}

func TestControllerInertWithoutSignals(t *testing.T) {
	o := adaptOpts(nil)
	c := newController(o)
	k := c.Knobs()
	if k.GOP != o.GOP || k.QScale != 1 || k.Threshold != o.Inter.Threshold {
		t.Fatalf("fresh knobs %+v differ from options (GOP %d, threshold %v)", k, o.GOP, o.Inter.Threshold)
	}
	if n := c.Snapshot().Counters.Transitions(); n != 0 {
		t.Fatalf("%d transitions before any signal", n)
	}
}

// TestControllerStepResponse drives the fused state machine through the
// directions the ISSUE pins down: rising loss degrades every knob the
// right way, a clean hold eases them back, and the hysteresis band between
// the two holds everything still.
func TestControllerStepResponse(t *testing.T) {
	t.Run("rising loss shrinks GOP and quality", func(t *testing.T) {
		c := newController(adaptOpts(nil))
		c.ObserveFeedback(Signal{LossRate: 0.5}) // EWMA 0.25 >= HighLoss
		k := c.Knobs()
		if k.GOP >= 3 {
			t.Fatalf("GOP %d did not shrink under loss", k.GOP)
		}
		if k.QScale <= 1 {
			t.Fatalf("QScale %d did not degrade under loss", k.QScale)
		}
		if k.Threshold <= c.baseThreshold {
			t.Fatalf("threshold %v did not boost under loss", k.Threshold)
		}
		s := c.Snapshot()
		if s.Counters.GOPShrinks == 0 || s.Counters.QualityDrops == 0 || s.Counters.ThresholdBoosts == 0 {
			t.Fatalf("missing actuation counters: %+v", s.Counters)
		}
		if s.Counters.CongestedEnters != 1 || !s.Congested {
			t.Fatalf("congested transition not recorded: %+v", s)
		}
	})

	t.Run("falling loss eases after CleanHold", func(t *testing.T) {
		c := newController(adaptOpts(nil))
		feedLoss(c, 0.5, 2) // deep congestion: GOP -> 1, QScale -> 4
		degraded := c.Knobs()
		feedLoss(c, 0, 10) // loss EWMA decays below LowLoss, then holds clean
		eased := c.Knobs()
		if eased.QScale >= degraded.QScale {
			t.Fatalf("QScale %d did not ease from %d", eased.QScale, degraded.QScale)
		}
		if eased.GOP <= degraded.GOP {
			t.Fatalf("GOP %d did not grow from %d", eased.GOP, degraded.GOP)
		}
		if eased.Threshold >= degraded.Threshold {
			t.Fatalf("threshold %v did not ease from %v", eased.Threshold, degraded.Threshold)
		}
		s := c.Snapshot().Counters
		if s.QualityRaises == 0 || s.GOPGrows == 0 || s.ThresholdEases == 0 {
			t.Fatalf("missing ease counters: %+v", s)
		}
	})

	t.Run("hysteresis band holds the knobs", func(t *testing.T) {
		// ProbeAfter -1: the band-hold invariant is the NON-probing
		// behavior — the probing upswitch deliberately breaks it (that is
		// the feature) and has its own tests below.
		c := newController(adaptOpts(func(o *Options) { o.Adapt.ProbeAfter = -1 }))
		c.ObserveFeedback(Signal{LossRate: 0.5})
		feedLoss(c, 0, 3) // decay the loss EWMA down into the band
		s := c.Snapshot()
		if s.LossEWMA <= c.cfg.LowLoss || s.LossEWMA >= c.cfg.HighLoss {
			t.Fatalf("EWMA %v not inside the band (%v, %v)", s.LossEWMA, c.cfg.LowLoss, c.cfg.HighLoss)
		}
		k0 := c.Knobs()
		// Feeding the EWMA's own value is its fixed point: the state stays
		// in the band however many reports arrive, and no knob may move.
		feedLoss(c, s.LossEWMA, 6)
		if k := c.Knobs(); k != k0 {
			t.Fatalf("knobs moved inside the hysteresis band: %+v -> %+v", k0, k)
		}
	})

	t.Run("local congestion degrades quality but not GOP", func(t *testing.T) {
		c := newController(adaptOpts(nil))
		// Saturated link, full queue: every LocalPeriod-th observation steps.
		for i := 0; i < c.cfg.LocalPeriod; i++ {
			c.ObserveLocal(LocalSignal{QueueFill: 1, Shed: true, Utilization: 3})
		}
		k := c.Knobs()
		if k.QScale <= 1 {
			t.Fatalf("QScale %d did not degrade under local congestion", k.QScale)
		}
		if k.GOP != 3 {
			t.Fatalf("GOP %d moved without receiver loss", k.GOP)
		}
		s := c.Snapshot()
		if s.Counters.LocalSignals != int64(c.cfg.LocalPeriod) {
			t.Fatalf("local signals %d, want %d", s.Counters.LocalSignals, c.cfg.LocalPeriod)
		}
	})
}

// TestControllerClampsAndAntiWindup drives the controller far past every
// clamp and checks (a) no knob escapes its bounds and (b) recovery begins
// on the very first ease — saturation accumulated no hidden integrator.
func TestControllerClampsAndAntiWindup(t *testing.T) {
	c := newController(adaptOpts(nil))
	feedLoss(c, 1, 50) // way past saturation
	k := c.Knobs()
	if k.GOP != c.cfg.MinGOP {
		t.Fatalf("GOP %d, want clamp %d", k.GOP, c.cfg.MinGOP)
	}
	if k.QScale != c.cfg.MaxQScale {
		t.Fatalf("QScale %d, want clamp %d", k.QScale, c.cfg.MaxQScale)
	}
	if max := c.baseThreshold * c.cfg.MaxBoost; k.Threshold != max {
		t.Fatalf("threshold %v, want clamp %v", k.Threshold, max)
	}
	s := c.Snapshot().Counters
	// Saturated steps must not keep counting actuations.
	if s.QualityDrops > 3 || s.GOPShrinks > 2 || s.ThresholdBoosts > 3 {
		t.Fatalf("actuations counted past the clamps: %+v", s)
	}

	// Anti-windup: the FIRST clean hold must ease — 50 saturated reports
	// must not have buried the recovery under accumulated error.
	feedLoss(c, 0, 20)
	e := c.Knobs()
	if e.QScale == c.cfg.MaxQScale && e.GOP == c.cfg.MinGOP {
		t.Fatalf("knobs still pinned after clean holds: %+v", e)
	}
	// And a long clean run must restore (and clamp at) the configured ends.
	feedLoss(c, 0, 200)
	r := c.Knobs()
	if r.QScale != 1 || r.Threshold != c.baseThreshold {
		t.Fatalf("quality/threshold did not recover: %+v", r)
	}
	if r.GOP != c.cfg.MaxGOP {
		t.Fatalf("GOP %d did not stretch to MaxGOP %d on a clean link", r.GOP, c.cfg.MaxGOP)
	}
}

// TestControllerRateLoopOwnsThreshold: with RateControl enabled the
// congestion controller must keep its hands off the threshold knob.
func TestControllerRateLoopOwnsThreshold(t *testing.T) {
	c := newController(adaptOpts(func(o *Options) {
		o.Rate = RateControl{TargetBitsPerPoint: 20}
	}))
	feedLoss(c, 1, 10)
	if got := c.Knobs().Threshold; got != c.baseThreshold {
		t.Fatalf("controller moved the threshold (%v) while the rate loop owns it", got)
	}
	if n := c.Snapshot().Counters.ThresholdBoosts; n != 0 {
		t.Fatalf("%d threshold boosts recorded while rate loop active", n)
	}
}

// TestRateControlNoOpFrames: the per-frame rate loop must ignore I-frames
// and degenerate Points==0 stats entirely.
func TestRateControlNoOpFrames(t *testing.T) {
	o := OptionsFor(IntraInterV2)
	o.Rate = RateControl{TargetBitsPerPoint: 1} // tiny target: any P would move it
	e := NewEncoder(dev(), o)
	before := e.Threshold()
	e.applyRateControl(FrameStats{Type: IFrame, Points: 1000, SizeBytes: 1 << 20})
	if e.Threshold() != before {
		t.Fatal("I-frame moved the rate loop")
	}
	e.applyRateControl(FrameStats{Type: PFrame, Points: 0, SizeBytes: 1 << 20})
	if e.Threshold() != before {
		t.Fatal("Points==0 frame moved the rate loop")
	}
	e.applyRateControl(FrameStats{Type: PFrame, Points: 1000, SizeBytes: 1 << 20})
	if e.Threshold() == before {
		t.Fatal("control P-frame did not move the rate loop (test harness broken)")
	}
}

// TestParityKnobTracksLoss: loss-driven degradation must raise the parity
// knob toward the observed loss (times the safety factor), easing must
// decay it back to MinParity, and the group-size mapping must honour its
// clamps.
func TestParityKnobTracksLoss(t *testing.T) {
	c := newController(adaptOpts(nil))
	if p := c.Knobs().Parity; p != 0 {
		t.Fatalf("fresh parity knob %v, want 0", p)
	}
	feedLoss(c, 0.5, 2)
	k := c.Knobs()
	if k.Parity != c.cfg.MaxParity {
		t.Fatalf("deep loss: parity %v, want clamp %v", k.Parity, c.cfg.MaxParity)
	}
	if g := k.ParityGroupLen(); g != 2 {
		t.Fatalf("parity %v maps to group %d, want 2", k.Parity, g)
	}
	if !c.Snapshot().Congested {
		t.Fatal("controller not congested under 50% loss")
	}
	feedLoss(c, 0, 200)
	if p := c.Knobs().Parity; p != 0 {
		t.Fatalf("parity %v did not decay to zero on a clean link", p)
	}
	if !c.AtBaseline() {
		t.Fatalf("not at baseline after a long clean run: %+v", c.Knobs())
	}

	// A configured MinParity is the always-on floor, not zero.
	c = newController(adaptOpts(func(o *Options) { o.Adapt.MinParity = 0.1 }))
	if p := c.Knobs().Parity; p != 0.1 {
		t.Fatalf("fresh parity knob %v, want the 0.1 floor", p)
	}
	feedLoss(c, 0.5, 2)
	feedLoss(c, 0, 200)
	if p := c.Knobs().Parity; p != 0.1 {
		t.Fatalf("parity %v did not decay to the 0.1 floor", p)
	}
	if !c.AtBaseline() {
		t.Fatal("MinParity floor must count as baseline")
	}
}

func TestParityGroupLenMapping(t *testing.T) {
	cases := []struct {
		parity float64
		want   int
	}{
		{0, 0},
		{0.01, 0},      // below the 1/32 floor: off
		{1.0 / 32, 16}, // 1/k = 32 clamps to 16
		{0.0625, 16},
		{0.2, 5},
		{0.25, 4},
		{0.5, 2},
		{1, 2}, // 1/k = 1 clamps to 2
	}
	for _, tc := range cases {
		if got := (Knobs{Parity: tc.parity}).ParityGroupLen(); got != tc.want {
			t.Errorf("Parity %v: group %d, want %d", tc.parity, got, tc.want)
		}
	}
}

// degradeDeep drives the controller to full degradation and returns once
// the loss EWMA is saturated.
func degradeDeep(c *Controller) {
	feedLoss(c, 0.5, 4)
}

// reportsToBaseline feeds clean reports until AtBaseline, returning how
// many it took (capped to keep a broken controller from spinning).
func reportsToBaseline(t *testing.T, c *Controller) int {
	t.Helper()
	for n := 1; n <= 100; n++ {
		c.ObserveFeedback(Signal{LossRate: 0})
		if c.AtBaseline() {
			return n
		}
	}
	t.Fatalf("no baseline within 100 clean reports: %+v", c.Knobs())
	return -1
}

// TestProbingUpswitchBeatsPassiveDecay: after congestion clears, the
// probing controller must return every knob to baseline in strictly fewer
// feedback windows than the passive CleanHold decay (ProbeAfter -1), with
// the probe outcome counters telling the story.
func TestProbingUpswitchBeatsPassiveDecay(t *testing.T) {
	passive := newController(adaptOpts(func(o *Options) { o.Adapt.ProbeAfter = -1 }))
	degradeDeep(passive)
	passiveN := reportsToBaseline(t, passive)

	probing := newController(adaptOpts(nil))
	degradeDeep(probing)
	probingN := reportsToBaseline(t, probing)

	t.Logf("recovery: probing %d reports, passive %d", probingN, passiveN)
	if probingN >= passiveN {
		t.Fatalf("probing recovery (%d reports) not faster than passive (%d)", probingN, passiveN)
	}
	s := probing.Snapshot()
	if s.FEC.Probes == 0 || s.FEC.ProbeWins == 0 {
		t.Fatalf("probe counters missing the upswitch: %+v", s.FEC)
	}
	if s.FEC.ProbeReverts != 0 {
		t.Fatalf("%d reverts on a clean recovery", s.FEC.ProbeReverts)
	}
	if ps := passive.Snapshot(); ps.FEC.Probes != 0 {
		t.Fatalf("ProbeAfter -1 still probed %d times", ps.FEC.Probes)
	}
}

// probeNow decays the controller into the hysteresis band and feeds band
// reports until a probe launches.
func probeNow(t *testing.T, c *Controller) {
	t.Helper()
	for i := 0; i < 50; i++ {
		s := c.Snapshot()
		rate := s.LossEWMA // EWMA fixed point: holds the band state
		if rate >= c.cfg.HighLoss {
			rate = 0 // still above the band: decay
		}
		c.ObserveFeedback(Signal{LossRate: rate})
		if c.Snapshot().Probing {
			return
		}
	}
	t.Fatalf("no probe launched: %+v", c.Snapshot())
}

// TestProbeRevertBacksOff: a probe answered by a congested echo must roll
// the provisional ease back and double the probe interval, capped at
// ProbeBackoffMax.
func TestProbeRevertBacksOff(t *testing.T) {
	c := newController(adaptOpts(nil))
	degradeDeep(c)
	probeNow(t, c)
	preEcho := c.Knobs()
	interval0 := c.probeInterval

	c.ObserveFeedback(Signal{LossRate: 1}) // congested echo
	k := c.Knobs()
	if k.QScale < preEcho.QScale || k.GOP > preEcho.GOP {
		t.Fatalf("congested echo did not revert the probe: %+v -> %+v", preEcho, k)
	}
	s := c.Snapshot()
	if s.Probing {
		t.Fatal("still probing after a congested echo")
	}
	if s.FEC.ProbeReverts != 1 {
		t.Fatalf("ProbeReverts = %d, want 1", s.FEC.ProbeReverts)
	}
	if c.probeInterval != 2*interval0 {
		t.Fatalf("probe interval %d after revert, want %d", c.probeInterval, 2*interval0)
	}

	// Every further failed probe doubles again, saturating at the cap.
	for i := 0; i < 8; i++ {
		probeNow(t, c)
		c.ObserveFeedback(Signal{LossRate: 1})
	}
	if c.probeInterval != c.cfg.ProbeBackoffMax {
		t.Fatalf("probe interval %d, want cap %d", c.probeInterval, c.cfg.ProbeBackoffMax)
	}
}

// TestProbeTimeoutQuietKeep: a probe that never hears a feedback echo (a
// local-signal-only session) must resolve as a quiet keep after
// probeTimeout steps instead of wedging the prober.
func TestProbeTimeoutQuietKeep(t *testing.T) {
	c := newController(adaptOpts(nil))
	degradeDeep(c)
	probeNow(t, c)
	post := c.Knobs()
	// Local steps in the hysteresis band: no echo verdict, just age.
	for i := 0; i < probeTimeout*c.cfg.LocalPeriod; i++ {
		c.ObserveLocal(LocalSignal{Utilization: 0.7})
	}
	s := c.Snapshot()
	if s.Probing {
		t.Fatal("probe still pending after the timeout")
	}
	if k := c.Knobs(); k != post {
		t.Fatalf("quiet keep moved the knobs: %+v -> %+v", post, k)
	}
	if s.FEC.ProbeWins != 0 || s.FEC.ProbeReverts != 0 {
		t.Fatalf("timeout resolved as a verdict: %+v", s.FEC)
	}
}

// TestProbeRespectsRateLoop: the probe's fast ease must leave the
// threshold knob alone while the RateControl loop owns it.
func TestProbeRespectsRateLoop(t *testing.T) {
	c := newController(adaptOpts(func(o *Options) {
		o.Rate = RateControl{TargetBitsPerPoint: 20}
	}))
	degradeDeep(c)
	probeNow(t, c)
	if got := c.Knobs().Threshold; got != c.baseThreshold {
		t.Fatalf("probe moved the threshold (%v) while the rate loop owns it", got)
	}
	if n := c.Snapshot().Counters.ThresholdEases; n != 0 {
		t.Fatalf("%d threshold eases recorded while rate loop active", n)
	}
}

// TestControllerIFrameOnlyStream: an all-intra design with the controller
// on still adapts quality, but the GOP knob is irrelevant and the encoder
// must keep producing I-frames only.
func TestControllerIFrameOnlyStream(t *testing.T) {
	fs := frames(t, 2)
	o := scaledOpts(IntraOnly, fs[0].Len())
	o.Adapt = AdaptiveRate{Enabled: true}
	enc := NewEncoder(dev(), o)
	enc.Controller().ObserveFeedback(Signal{LossRate: 0.5})
	for i := 0; i < 4; i++ {
		_, st, err := enc.EncodeFrame(fs[i%2])
		if err != nil {
			t.Fatal(err)
		}
		if st.Type != IFrame {
			t.Fatalf("frame %d: type %v in an intra-only stream", i, st.Type)
		}
	}
}
