package stream

// Server is the encode-once fan-out, restructured as a two-level relay
// tree so one process serves 10k+ viewers: one capture feed drives a
// single shared encode pipeline (a Session with its geometry lookahead
// and scratch-arena hot path), the pipeline publishes each frame's wire
// bytes exactly once into an immutable refcounted frame ring, and S
// relay shards (default one per core) each fan the ring out to their own
// partition of viewers. N viewers cost ONE encode and ONE payload copy
// per frame; the encode goroutine's fan-out work is O(1) in the viewer
// count (a ring publish), and the O(N) per-viewer work spreads across
// the shard workers.
//
//	capture ─▶ [shared Session: geometry ∥ attr ∥ packetize ∥ transmit]
//	                            │ FrameOut (one encode per frame)
//	                      [frame ring]  immutable, refcounted
//	              ┌─────────────┼──────────────┐
//	          shard 0        shard 1   …   shard S-1     one worker each:
//	        retx cache      retx cache     retx cache    relay, NACK cache,
//	        loss table      loss table     loss table    refresh coalesce,
//	        ┌───┼───┐       ┌──┼──┐        ┌──┼──┐       feedback reduce
//	       V0  VS  V2S …   V1 … …         … … …
//	      queue+seq per viewer; senders drain independently
//
// Viewer churn, NACK storms, and slow readers touch only their shard —
// never the encode goroutine. Feedback reduces viewer → shard loss table
// → worst-percentile signal before reaching the rate controller, and
// I-frame refresh requests coalesce twice (shard arm, then server arm)
// into at most one GOP restart.
//
// Keyframe cache: the server retains the last encoded I-frame's payload,
// so a late-joining viewer starts from a decodable keyframe immediately
// (packets marked FlagCached) instead of forcing a mid-GOP re-encode.
// Receiver-requested refreshes — and cacheless mid-stream joins — are
// coalesced into at most one GOP restart.
//
// Lock order: sv.mu > shard.mu > viewer.mu (see shard.go for the audit).

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/linksim"
	"repro/internal/metrics"
)

// ErrServerClosed reports an operation on a closed Server.
var ErrServerClosed = errors.New("stream: server closed")

// ServerConfig configures a Server. The zero value of every field is
// usable: paper-default codec options require only Options.Design; the
// per-viewer defaults mirror Session's.
type ServerConfig struct {
	// Options selects and configures the shared codec (as codec.OptionsFor).
	Options codec.Options
	// Mode selects the modelled edge board's power budget.
	Mode edgesim.PowerMode
	// Queue is the shared pipeline's per-stage queue capacity (default 4).
	Queue int
	// Lookahead is the shared pipeline's concurrent geometry depth.
	Lookahead int
	// Shards is the relay-tree width: how many shard workers partition
	// the viewers (default runtime.NumCPU()). Viewer id % Shards picks
	// the owning shard, so every viewer maps to exactly one.
	Shards int
	// Ring is the frame ring's capacity in frames (default 64). The
	// encode path blocks only when a shard falls a full ring behind.
	Ring int
	// Link is the default per-viewer downlink (default linksim.WiFi); a
	// ViewerConfig.Link overrides it per viewer.
	Link linksim.Link
	// MTU is the default per-viewer packet payload size (default 1400).
	MTU int
	// ViewerQueue is the default per-viewer send-queue capacity in frames
	// (default 8).
	ViewerQueue int
	// RetransmitBuffer is the per-shard retransmit-cache budget in
	// packets (default 1024): each shard retains the most recent frames
	// covering that many packets — shared by every viewer in the
	// partition — and rebuilds NACKed fragments from them on demand. It
	// also caps the per-viewer span of answerable sequence numbers.
	RetransmitBuffer int
	// FeedbackQuantile picks the per-viewer loss rate fed to the shared
	// congestion controller (Options.Adapt): with N reporting viewers the
	// controller sees the ceil(q·N)-th worst loss (default 0.9). 1 tracks
	// the single worst viewer; lower values let outliers resolve through
	// their own queue shedding while fleet-wide loss adapts the encode.
	FeedbackQuantile float64
	// FEC configures parity emission for every viewer. The XOR bodies are
	// built once per published frame at the server MTU and shared; viewers
	// at other MTUs rebuild from the immutable ring payload.
	FEC FECConfig
}

func (c ServerConfig) normalized() ServerConfig {
	if c.Link.BandwidthMbps <= 0 {
		c.Link = linksim.WiFi
	}
	if c.MTU < 64 {
		c.MTU = 1400
	}
	if c.Shards < 1 {
		c.Shards = runtime.NumCPU()
	}
	if c.Ring < 2 {
		c.Ring = 64
	}
	if c.ViewerQueue < 1 {
		c.ViewerQueue = 8
	}
	if c.RetransmitBuffer < 1 {
		c.RetransmitBuffer = 1024
	}
	if c.FeedbackQuantile <= 0 || c.FeedbackQuantile > 1 {
		c.FeedbackQuantile = 0.9
	}
	return c
}

// ServerMetrics is a point-in-time snapshot of the fan-out state.
type ServerMetrics struct {
	// FramesEncoded counts frames the shared pipeline encoded AND every
	// shard finished relaying — one per submitted frame, however many
	// viewers are attached.
	FramesEncoded int64
	// IFrames counts the keyframes among them (GOP opens plus restarts).
	IFrames int64
	// Refreshes counts GOP restarts actually applied by the encoder;
	// RefreshesCoalesced counts refresh requests absorbed by an
	// already-armed restart (at the shard or the server).
	Refreshes          int64
	RefreshesCoalesced int64
	// CachedJoins counts viewers whose first frame came from the keyframe
	// cache; KeyframeCached reports whether the cache currently holds one.
	CachedJoins    int64
	KeyframeCached bool
	// Viewers is the current attachment count; Shards the relay width.
	Viewers int
	Shards  int
	// Pipeline is the shared Session's snapshot (queues, device ledgers).
	Pipeline Metrics
	// PerShard lists every relay shard's counters, by shard index.
	PerShard []metrics.ShardSnapshot
	// PerViewer lists every attached viewer's snapshot, by StreamID.
	PerViewer []ViewerMetrics
}

// Server fans one encode out to N viewers through the relay tree. Create
// with NewServer, attach viewers with Attach (before or during the
// stream), feed frames with Submit, then Close to drain. All methods are
// safe for concurrent use.
type Server struct {
	cfg    ServerConfig
	sess   *Session
	done   chan struct{} // results collector finished
	ring   *frameRing
	shards []*shard

	nextID      atomic.Uint32
	relayed     atomic.Int64 // frames fully fanned out by every shard
	iFrames     atomic.Int64
	coalesced   atomic.Int64 // refresh requests absorbed (shard + server)
	cachedJoins atomic.Int64

	mu           sync.Mutex
	cache        *sharedFrame // latest I-frame, payload retained
	refreshArmed bool
	closed       bool
}

// NewServer starts the shared encode pipeline and the shard workers.
// Cancelling ctx aborts them.
func NewServer(ctx context.Context, cfg ServerConfig) *Server {
	cfg = cfg.normalized()
	sv := &Server{
		cfg:  cfg,
		done: make(chan struct{}),
		ring: newFrameRing(cfg.Ring, cfg.Shards),
	}
	sv.shards = make([]*shard, cfg.Shards)
	for i := range sv.shards {
		sv.shards[i] = newShard(sv, i)
	}
	sv.sess = New(ctx, Config{
		Options:   cfg.Options,
		Mode:      cfg.Mode,
		Queue:     cfg.Queue,
		Lookahead: cfg.Lookahead,
		MTU:       cfg.MTU,
		// The shared pipeline never sheds frames; per-viewer queues are
		// where slowness resolves, in isolation.
		Policy:   Block,
		FrameOut: sv.publish,
	})
	for _, sh := range sv.shards {
		go sh.run()
	}
	// The session's Results channel must drain for the pipeline to flow;
	// the publish hook does the accounting, so the fates are discarded.
	go func() {
		defer close(sv.done)
		for range sv.sess.Results() {
		}
	}()
	return sv
}

// Options returns the shared encoder's normalized configuration (e.g. for
// building matching ReceiverConfigs).
func (sv *Server) Options() codec.Options { return sv.sess.Options() }

// Submit hands the shared pipeline the next captured frame. It blocks when
// the pipeline's ingest queue is full. Single producer, like
// Session.Submit.
func (sv *Server) Submit(ctx context.Context, vc *geom.VoxelCloud) error {
	return sv.sess.Submit(ctx, vc)
}

// publish is the shared session's FrameOut hook: copy the frame's wire
// bytes ONCE into a refcounted ring slot and refresh the keyframe cache.
// Runs on the transmit stage; its cost is O(1) in the viewer count — the
// shard workers do the O(N) fan-out.
func (sv *Server) publish(_ context.Context, seq int, ftype codec.FrameType, wire []byte) error {
	f := &sharedFrame{index: seq, ftype: ftype, p: newFramePayload(wire)}
	// Parse the tile layout against the ring's own copy so every span a
	// viewer slices aliases the immutable published payload.
	f.layout = codec.ParseFrameLayout(f.p.wire)
	if k := sv.cfg.FEC.groupLen(sv.sess.Controller()); k > 0 {
		// Build the parity bodies once, here on the O(1) encode path, so
		// the O(N) viewer fan-out only copies them under per-viewer headers.
		f.fec = buildParityShare(f.p.wire, sv.cfg.MTU, k, ftype)
	}
	f.pending.Store(int32(len(sv.shards)))
	if !sv.ring.publish(f) {
		f.p.release() // canceled mid-publish; the session is aborting
		return nil
	}
	if ftype == codec.IFrame {
		f.p.retain() // cache reference
		sv.mu.Lock()
		old := sv.cache
		sv.cache = f
		sv.refreshArmed = false // the pending restart (if any) just landed
		sv.mu.Unlock()
		if old != nil {
			old.p.release()
		}
	}
	return nil
}

// frameRelayed is called by the last shard to finish fanning a frame out.
func (sv *Server) frameRelayed(f *sharedFrame) {
	sv.relayed.Add(1)
	if f.ftype == codec.IFrame {
		sv.iFrames.Add(1)
	}
}

// shardOf maps a viewer id to its owning shard — the partition function:
// deterministic, total, and one shard per id.
func (sv *Server) shardOf(id uint32) *shard {
	return sv.shards[int(id%uint32(len(sv.shards)))]
}

// Attach adds a viewer to its shard's partition and starts its sender.
// When the keyframe cache holds an I-frame the viewer's stream opens with
// it (frame 0, packets marked FlagCached), so a mid-GOP join decodes
// immediately without a re-encode; a cacheless mid-stream join instead
// arms a (coalesced) I-frame restart and skips P-frames until the
// keyframe arrives. Only the owning shard's lock is taken — attaching
// never touches the encode path or the other partitions.
func (sv *Server) Attach(cfg ViewerConfig) (*Viewer, error) {
	if cfg.Link.BandwidthMbps <= 0 {
		cfg.Link = sv.cfg.Link
	}
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return nil, ErrServerClosed
	}
	var joinCache *sharedFrame
	if c := sv.cache; c != nil {
		c.p.retain() // creation reference, released by shard.attach
		joinCache = &sharedFrame{seq: c.seq, index: c.index, ftype: c.ftype, cached: true, p: c.p, layout: c.layout}
	}
	sv.mu.Unlock()

	v := newViewer(sv, cfg, joinCache)
	var sh *shard
	for {
		id := cfg.StreamID
		if id == 0 {
			id = sv.nextID.Add(1)
			if id == 0 { // wrapped
				continue
			}
		}
		v.id = id
		sh = sv.shardOf(id)
		if sh.attach(v) {
			break
		}
		if cfg.StreamID != 0 {
			if joinCache != nil {
				joinCache.p.release()
			}
			return nil, fmt.Errorf("stream: viewer id %d already attached", cfg.StreamID)
		}
		// Server-assigned id collided with an explicitly chosen one: skip.
	}
	v.shard = sh

	// Re-check closed: Close snapshots the partitions after setting the
	// flag, so a viewer inserted later must tear itself down. The sender
	// goroutine was never started, so close v.done here — shutdown (ours,
	// or a racing Close's that snapshotted this viewer) waits on it and
	// would otherwise block forever on a sendLoop that will never run.
	sv.mu.Lock()
	closed := sv.closed
	sv.mu.Unlock()
	if closed {
		sh.detach(v)
		close(v.done)
		v.shutdown(true)
		// The flag is set only after the shard workers exit, so the retx
		// reference attach just took (the join keyframe) may have landed
		// after the closing side's drain; drain again to drop it.
		sh.drainCache()
		return nil, ErrServerClosed
	}

	needRestart := joinCache == nil && sv.ring.published() > 0
	if joinCache != nil {
		sv.cachedJoins.Add(1)
	}
	if needRestart {
		// Mid-stream join with an empty cache (nothing but P-frames so
		// far would be unusual, but possible after a server restart):
		// fall back to a coalesced GOP restart.
		sh.requestRefresh()
	}
	go v.sendLoop()
	return v, nil
}

// Detach removes a viewer from its shard: its queue is abandoned, its
// sender stops, and its retransmit records are freed. Counters stay
// readable via the returned Viewer's Metrics. Detaching an unknown (or
// already detached) viewer is a no-op.
func (sv *Server) Detach(v *Viewer) {
	if v.shard == nil || !v.shard.detach(v) {
		return
	}
	v.shutdown(true)
}

// HandleControl routes a receiver→sender control message to the viewer
// that owns its stream id (e.g. from a shared control socket), through
// the owning shard. Messages for unknown stream ids — a viewer that just
// detached — are dropped.
func (sv *Server) HandleControl(c Control) error {
	v := sv.shardOf(c.StreamID).lookup(c.StreamID)
	if v == nil {
		return nil
	}
	return v.HandleControl(c)
}

// reduceFeedback is the root of the feedback reduction tree: after one
// viewer's report lands in its shard's loss table, reduce the S shard
// tables to the FeedbackQuantile-th worst loss and feed the shared
// controller. Per-viewer queues already isolate one congested viewer;
// the shared encode only reacts when the quantile-th worst viewer sees
// loss, so the controller tracks sustained fleet-wide congestion, not a
// single outlier (unless the quantile is set to 1). No viewer lock is
// taken: the reduction reads S shard tables, not N viewers.
func (sv *Server) reduceFeedback(fb Feedback) {
	ctrl := sv.sess.Controller()
	if ctrl == nil {
		return
	}
	losses := make([]float64, 0, 64)
	for _, sh := range sv.shards {
		losses = sh.appendLosses(losses)
	}
	if len(losses) == 0 {
		return
	}
	sort.Float64s(losses)
	idx := int(math.Ceil(sv.cfg.FeedbackQuantile*float64(len(losses)))) - 1
	if idx < 0 {
		idx = 0
	}
	ctrl.ObserveFeedback(codec.Signal{
		LossRate:  losses[idx],
		NACKs:     int(fb.NACKs),
		Concealed: int(fb.Concealed),
		Skipped:   int(fb.Skipped),
	})
}

// Controller returns the shared pipeline's congestion controller, nil
// unless Options.Adapt is enabled.
func (sv *Server) Controller() *codec.Controller { return sv.sess.Controller() }

// noteCoalescedRefresh counts a refresh request absorbed by a shard's
// already-armed restart.
func (sv *Server) noteCoalescedRefresh() { sv.coalesced.Add(1) }

// requestIFrame arms one coalesced GOP restart at the server level: the
// first caller forces the encoder, every caller before the next I-frame
// lands rides along.
func (sv *Server) requestIFrame() {
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return
	}
	armed := sv.refreshArmed
	sv.refreshArmed = true
	sv.mu.Unlock()
	if armed {
		sv.coalesced.Add(1)
		return
	}
	// ControlRefresh never touches PacketOut, so no error can surface.
	_ = sv.sess.HandleControl(Control{Kind: ControlRefresh})
}

// Metrics snapshots the server, the shared pipeline, every shard, and
// every attached viewer (sorted by stream id).
func (sv *Server) Metrics() ServerMetrics {
	sv.mu.Lock()
	cached := sv.cache != nil
	sv.mu.Unlock()
	m := ServerMetrics{
		FramesEncoded:      sv.relayed.Load(),
		IFrames:            sv.iFrames.Load(),
		RefreshesCoalesced: sv.coalesced.Load(),
		CachedJoins:        sv.cachedJoins.Load(),
		KeyframeCached:     cached,
		Shards:             len(sv.shards),
	}
	var vs []*Viewer
	for _, sh := range sv.shards {
		m.PerShard = append(m.PerShard, sh.stats.Snapshot())
		vs = append(vs, sh.snapshotViewers()...)
	}
	m.Viewers = len(vs)
	m.Pipeline = sv.sess.Metrics()
	m.Refreshes = m.Pipeline.Refreshes
	for _, v := range vs {
		m.PerViewer = append(m.PerViewer, v.Metrics())
	}
	sort.Slice(m.PerViewer, func(i, j int) bool {
		return m.PerViewer[i].StreamID < m.PerViewer[j].StreamID
	})
	return m
}

// Err returns the shared pipeline's first error, if any.
func (sv *Server) Err() error { return sv.sess.Err() }

// Close stops accepting frames, drains the shared pipeline (every frame
// reaches the ring), waits for every shard to finish relaying, then
// drains and stops every viewer's sender. Idempotent; returns the
// pipeline's close error. Attached viewers' counters stay readable
// afterwards.
func (sv *Server) Close() error {
	err := sv.sess.Close()
	<-sv.done
	sv.ring.close()
	for _, sh := range sv.shards {
		<-sh.done
	}
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return err
	}
	sv.closed = true
	cache := sv.cache
	sv.cache = nil
	sv.mu.Unlock()
	for _, sh := range sv.shards {
		for _, v := range sh.snapshotViewers() {
			v.shutdown(err != nil) // drain on a clean close, discard on abort
		}
	}
	for _, sh := range sv.shards {
		sh.drainCache()
	}
	if cache != nil {
		cache.p.release()
	}
	sv.ring.drain()
	return err
}

// Cancel aborts the shared pipeline, the shard workers, and every viewer
// immediately, then releases every cached payload reference (ring slots,
// shard retransmit caches, keyframe cache) so the buffers return to the
// pool. The server is closed afterwards: Attach fails, Close stays safe.
func (sv *Server) Cancel() {
	sv.sess.Cancel()
	sv.ring.cancel()
	for _, sh := range sv.shards {
		<-sh.done
	}
	sv.mu.Lock()
	sv.closed = true
	cache := sv.cache
	sv.cache = nil
	sv.mu.Unlock()
	for _, sh := range sv.shards {
		for _, v := range sh.snapshotViewers() {
			v.abort()
		}
	}
	for _, sh := range sv.shards {
		sh.drainCache()
	}
	if cache != nil {
		cache.p.release()
	}
	sv.ring.drain()
}
