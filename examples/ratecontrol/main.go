// Ratecontrol: the online form of the paper's Sec. VI-E threshold knob.
// Instead of hand-picking V1 (quality) or V2 (compression), the encoder is
// given a bits/point budget and steers the direct-reuse threshold itself,
// frame by frame — the way a streaming deployment under a bandwidth cap
// would run the codec. The program prints the controller's trajectory.
package main

import (
	"fmt"
	"log"

	"repro/pcc"
)

func main() {
	video := pcc.NewVideo("longdress", 0.06)
	const nFrames = 36 // twelve IPP groups

	opts := pcc.DefaultOptions(pcc.IntraInterV1)
	opts.IntraAttr.Segments = 2000
	opts.Inter.Segments = 3000
	opts.Inter.Threshold = 5 // deliberately far off target
	opts.Rate = pcc.RateControl{TargetBitsPerPoint: 21, Gain: 0.7}
	enc := pcc.NewEncoderOptions(opts)

	fmt.Printf("target: %.1f bits/point on P-frames; initial threshold %.0f\n\n",
		opts.Rate.TargetBitsPerPoint, opts.Inter.Threshold)
	fmt.Printf("%6s %5s %10s %10s %8s\n", "frame", "type", "bits/pt", "threshold", "reuse%")
	for i := 0; i < nFrames; i++ {
		frame, err := video.Frame(i)
		if err != nil {
			log.Fatal(err)
		}
		_, st, err := enc.Encode(frame)
		if err != nil {
			log.Fatal(err)
		}
		bpp := float64(st.SizeBytes) * 8 / float64(st.Points)
		fmt.Printf("%6d %5s %10.2f %10.1f %7.0f%%\n",
			i, st.Type, bpp, enc.Threshold(), st.Inter.ReuseFraction()*100)
	}
	fmt.Println("\nthe threshold climbs until P-frames meet the budget, then holds —")
	fmt.Println("Fig. 10b's static trade-off, driven closed-loop.")
}
