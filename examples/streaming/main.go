// Streaming: the paper's end-to-end pipeline (Fig. 1) over a real network
// socket. A "capture" goroutine encodes an IPP video with Intra-Inter-V1
// and streams it over TCP; a "display" goroutine receives, decodes, and
// reports per-frame quality and the simulated edge budget on both sides —
// demonstrating that the .pcv stream is self-describing and that the
// proposed design sustains interactive rates on the modelled board.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"repro/pcc"
)

const (
	videoName = "redandblack"
	scale     = 0.08
	nFrames   = 9 // three IPP groups
)

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	video := pcc.NewVideo(videoName, scale)
	// The display side needs the originals only to score quality.
	originals := make([]*pcc.PointCloud, nFrames)
	for i := range originals {
		if originals[i], err = video.Frame(i); err != nil {
			log.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(2)

	// Capture + encode side.
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()

		opts := pcc.DefaultOptions(pcc.IntraInterV1)
		opts.IntraAttr.Segments = 2500
		opts.Inter.Segments = 4000
		w := pcc.NewStreamWriter(conn, opts)
		for i, f := range originals {
			st, err := w.WriteFrame(f)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[capture] frame %d: %s, %6.1f KB, sim %6.2f ms, reuse %3.0f%%\n",
				i, st.Type, float64(st.SizeBytes)/1e3,
				st.TotalTime.Seconds()*1000, st.Inter.ReuseFraction()*100)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[capture] stream: %.2f MB for %d frames, encoder sim %v / %.2f J\n",
			float64(w.CompressedBytes())/1e6, w.Frames(),
			w.Device().SimTime().Round(1e5), w.Device().EnergyJ())
	}()

	// Receive + decode side.
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()

		r, err := pcc.NewStreamReader(conn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[display] receiving %v stream\n", r.Options().Design)
		for i := 0; ; i++ {
			frame, _, err := r.ReadFrame()
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			psnr, err := pcc.GeometryPSNR(originals[i], frame)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[display] frame %d: %6d pts, geometry PSNR %5.1f dB\n",
				i, frame.Len(), min(psnr, 120))
		}
		fmt.Printf("[display] decoder sim %v / %.2f J\n",
			r.Device().SimTime().Round(1e5), r.Device().EnergyJ())
	}()

	wg.Wait()
}
