package predlift

import (
	"math"
	"testing"

	"repro/internal/edgesim"
)

func liftPSNR(t *testing.T, n int, p LiftParams) (psnr float64, bytes int) {
	t.Helper()
	sorted := smoothFrame(11, n)
	d := dev()
	data, err := EncodeLifting(d, sorted, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLifting(d, data, sorted, p)
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i := range sorted {
		dr, dg, db := got[i].Sub(sorted[i].Voxel.C)
		mse += float64(dr*dr+dg*dg+db*db) / 3
	}
	mse /= float64(len(sorted))
	return 10 * math.Log10(255*255/math.Max(mse, 1e-9)), len(data)
}

func TestLiftingRoundTripNearLossless(t *testing.T) {
	// Lifting with quantization propagates bounded coarse error through
	// the prediction (standard for lifting schemes); q=1 must stay well
	// above 45 dB.
	psnr, _ := liftPSNR(t, 2000, DefaultLiftParams())
	if psnr < 45 {
		t.Fatalf("lifting q=1 PSNR %.1f dB", psnr)
	}
}

func TestLiftingQuantizationTradeoff(t *testing.T) {
	p := DefaultLiftParams()
	psnr1, bytes1 := liftPSNR(t, 2000, p)
	p.QStep = 8
	psnr8, bytes8 := liftPSNR(t, 2000, p)
	if bytes8 >= bytes1 {
		t.Fatalf("coarser quantization must shrink the stream: %d vs %d", bytes8, bytes1)
	}
	if psnr8 >= psnr1 {
		t.Fatalf("coarser quantization must cost quality: %.1f vs %.1f", psnr8, psnr1)
	}
	if psnr8 < 30 {
		t.Fatalf("q=8 PSNR %.1f dB unreasonably low", psnr8)
	}
}

func TestLiftingCompresses(t *testing.T) {
	sorted := smoothFrame(12, 3000)
	d := dev()
	data, err := EncodeLifting(d, sorted, DefaultLiftParams())
	if err != nil {
		t.Fatal(err)
	}
	raw := 3 * len(sorted)
	if len(data) >= raw {
		t.Fatalf("lifting stream %d >= raw %d", len(data), raw)
	}
}

func TestLiftingEmptyAndTiny(t *testing.T) {
	d := dev()
	for _, n := range []int{0, 1, 2, 7, 9} {
		sorted := smoothFrame(13, n)
		data, err := EncodeLifting(d, sorted, DefaultLiftParams())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := DecodeLifting(d, data, sorted, DefaultLiftParams())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d", n, len(got))
		}
		for i := range sorted {
			dr, dg, db := got[i].Sub(sorted[i].Voxel.C)
			if abs(dr) > 1 || abs(dg) > 1 || abs(db) > 1 {
				t.Fatalf("n=%d point %d: error too large (%d,%d,%d)", n, i, dr, dg, db)
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestLiftingMismatch(t *testing.T) {
	sorted := smoothFrame(14, 64)
	d := dev()
	data, err := EncodeLifting(d, sorted, DefaultLiftParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeLifting(d, data, sorted[:32], DefaultLiftParams()); err != ErrLiftMismatch {
		t.Fatalf("err = %v", err)
	}
	if _, err := DecodeLifting(d, nil, sorted, DefaultLiftParams()); err == nil {
		t.Fatal("nil stream must fail")
	}
}

func TestLevelSplit(t *testing.T) {
	even, odd := levelSplit([]int32{0, 1, 2, 3, 4})
	if len(even) != 3 || len(odd) != 2 || even[0] != 0 || odd[0] != 1 {
		t.Fatalf("split = %v %v", even, odd)
	}
	e2, o2 := levelSplit(nil)
	if len(e2) != 0 || len(o2) != 0 {
		t.Fatal("empty split")
	}
}

func TestLiftingSerialAccounting(t *testing.T) {
	sorted := smoothFrame(15, 300)
	d := dev()
	if _, err := EncodeLifting(d, sorted, DefaultLiftParams()); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range d.Kernels() {
		if k.Name == "LiftTransform" {
			found = true
			if k.Engine != edgesim.EngineCPU {
				t.Fatal("lifting must be CPU-serial")
			}
		}
	}
	if !found {
		t.Fatal("LiftTransform missing from ledger")
	}
}
