package attr

// YCoCg-R: a reversible integer colour transform (as used by modern video
// codecs and G-PCC's attribute path). Decorrelating RGB into one luma and
// two chroma channels concentrates the energy into Y, so the per-segment
// residuals of the chroma channels shrink — a pure-win knob for the
// Base+Deltas codec on natural textures, exposed as Params.YCoCg and
// evaluated in the ablation experiments.

// rgbToYCoCg converts one colour to (Y, Co, Cg). Y is in [0,255]; Co and
// Cg are signed with magnitude <= 255 (lossless, integer-exact).
func rgbToYCoCg(r, g, b int32) (y, co, cg int32) {
	co = r - b
	t := b + (co >> 1)
	cg = g - t
	y = t + (cg >> 1)
	return y, co, cg
}

// yCoCgToRGB inverts rgbToYCoCg exactly.
func yCoCgToRGB(y, co, cg int32) (r, g, b int32) {
	t := y - (cg >> 1)
	g = cg + t
	b = t - (co >> 1)
	r = b + co
	return r, g, b
}
