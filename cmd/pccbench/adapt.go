package main

import (
	"context"
	"fmt"

	"repro/internal/codec"
	"repro/internal/linksim"
	"repro/internal/trace"
	"repro/pcc/stream"
)

// Checked-in convergence contract for the adapt experiment — CI's
// adapt-smoke job fails the build when a change regresses either bound.
const (
	// adaptStepRate is the packet-drop step applied a third of the way in.
	adaptStepRate = 0.15
	// adaptConvergeBudget is how many frames after the step the controller
	// has to shrink the GOP below its pre-step value.
	adaptConvergeBudget = 24
	// adaptDecodedFloor is the minimum decoded-frame ratio over the final
	// third of the run, once the controller has settled.
	adaptDecodedFloor = 0.70
	// adaptSeed fixes the fault injector; the whole closed loop is
	// deterministic, so the printed trajectory replays exactly.
	adaptSeed = 42
	// adaptFeedbackEvery is the receiver's report cadence in frames.
	adaptFeedbackEvery = 4
)

// runAdapt drives the closed-loop congestion controller through a drop-rate
// step: a clean link for the first third of the run, then adaptStepRate
// packet loss for the rest. Frames go through the real lossy transport
// (packet framing → seeded FaultyLink → receiver recovery) LOCKSTEP — one
// frame's full encode→transmit→feedback cycle completes before the next
// encode reads the knobs — so the printed step response is deterministic.
// The run fails if the GOP does not shrink within adaptConvergeBudget
// frames of the step or the settled decoded ratio drops below
// adaptDecodedFloor.
func runAdapt(cfg benchConfig) error {
	spec := cfg.Videos[0]
	nFrames := cfg.Frames
	if nFrames < 36 {
		nFrames = 36 // room for stretch, step, and a settled tail
	}
	frames, err := loadFrames(spec, cfg.Scale, nFrames)
	if err != nil {
		return err
	}
	nFrames = len(frames)
	stepAt := nFrames / 3

	opts := scaledOptions(codec.IntraInterV2, cfg.Scale)
	opts.Adapt = codec.AdaptiveRate{Enabled: true}

	fl := linksim.NewFaultyLink(linksim.WiFi, linksim.FaultProfile{Seed: adaptSeed})
	statuses := make([]stream.FrameStatus, 0, nFrames)
	pipe := stream.NewLossyPipe(fl, stream.ReceiverConfig{
		Options:       opts,
		FeedbackEvery: adaptFeedbackEvery,
		OnFrame: func(f stream.DecodedFrame) {
			statuses = append(statuses, f.Status)
		},
	})
	s := stream.New(context.Background(), stream.Config{
		Options:   opts,
		PacketOut: pipe.PacketOut,
	})
	pipe.Attach(s)

	tb := trace.NewTable(
		fmt.Sprintf("Congestion adaptation — %s, %d frames, %.0f%% drop step at frame %d (seed %d)",
			spec.Name, nFrames, adaptStepRate*100, stepAt, adaptSeed),
		"frames", "drop", "gop", "qscale", "boost", "loss ewma", "ok", "conceal", "skip")

	gops := make([]int, 0, nFrames)
	results := s.Results()
	winStart := 0
	flushWindow := func(end int) {
		snap := s.Controller().Snapshot()
		rate := 0.0
		if winStart >= stepAt {
			rate = adaptStepRate
		}
		var ok, conceal, skip int
		for _, st := range statuses[min(winStart, len(statuses)):min(end, len(statuses))] {
			switch st {
			case stream.FrameDecoded:
				ok++
			case stream.FrameConcealed:
				conceal++
			case stream.FrameSkipped:
				skip++
			}
		}
		tb.Row(fmt.Sprintf("%d-%d", winStart, end-1),
			fmt.Sprintf("%.0f%%", rate*100),
			snap.Knobs.GOP, snap.Knobs.QScale,
			fmt.Sprintf("%.0fx", snap.Knobs.Threshold/opts.Inter.Threshold),
			fmt.Sprintf("%.3f", snap.LossEWMA),
			ok, conceal, skip)
		winStart = end
	}
	for i, f := range frames {
		if i == stepAt {
			fl.SetDropRate(adaptStepRate)
		}
		if err := s.Submit(context.Background(), f); err != nil {
			return err
		}
		if _, open := <-results; !open {
			return fmt.Errorf("adapt: pipeline failed at frame %d: %v", i, s.Err())
		}
		gops = append(gops, s.Controller().Knobs().GOP)
		if (i+1)%adaptFeedbackEvery == 0 {
			flushWindow(i + 1)
		}
	}
	if err := s.Close(); err != nil {
		return err
	}
	if err := pipe.Finish(nFrames); err != nil {
		return err
	}
	if winStart < nFrames {
		flushWindow(nFrames)
	}
	emit(tb)

	snap := s.Controller().Snapshot()
	fmt.Printf("controller: %d feedback reports, %d stale; gop %d->%d->%d, qscale x%d; "+
		"shrinks %d, drops %d, boosts %d, congested enters %d\n",
		s.Metrics().FeedbackReports, s.Metrics().FeedbackStale,
		gops[0], gops[stepAt-1], gops[nFrames-1], snap.Knobs.QScale,
		snap.Counters.GOPShrinks, snap.Counters.QualityDrops,
		snap.Counters.ThresholdBoosts, snap.Counters.CongestedEnters)

	// Convergence contract.
	shrunkAt := -1
	for i := stepAt; i < nFrames; i++ {
		if gops[i] < gops[stepAt-1] {
			shrunkAt = i
			break
		}
	}
	switch {
	case shrunkAt < 0:
		return fmt.Errorf("adapt: GOP never shrank after the %.0f%% drop step", adaptStepRate*100)
	case shrunkAt-stepAt > adaptConvergeBudget:
		return fmt.Errorf("adapt: GOP took %d frames to react, budget is %d",
			shrunkAt-stepAt, adaptConvergeBudget)
	}
	tail := statuses[len(statuses)-nFrames/3:]
	decoded := 0
	for _, st := range tail {
		if st == stream.FrameDecoded {
			decoded++
		}
	}
	ratio := float64(decoded) / float64(len(tail))
	fmt.Printf("converged %d frames after the step; settled decoded ratio %.3f (floor %.2f)\n",
		shrunkAt-stepAt, ratio, adaptDecodedFloor)
	if ratio < adaptDecodedFloor {
		return fmt.Errorf("adapt: settled decoded ratio %.3f below the %.2f floor",
			ratio, adaptDecodedFloor)
	}
	return nil
}
