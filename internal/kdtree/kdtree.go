// Package kdtree implements the OTHER tree-structured geometry codec the
// paper lists among state-of-the-art G-PCC pipelines (Sec. I: "tree
// structures like Octree [63] or kd-tree [62]"): a Gandoin–Devillers-style
// kd geometry coder as used by PCL's kd module and Draco.
//
// The coder recursively halves the bounding cell along its longest axis and
// arithmetic-codes how many points fall in the lower half; cells shrink
// until they are single voxels. Like the sequential octree, the recursion
// is a serial, data-dependent walk — it serves as an additional baseline
// for the geometry-codec ablation (size and latency vs the proposed
// parallel pipeline).
package kdtree

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/edgesim"
	"repro/internal/entropy"
	"repro/internal/geom"
)

// costCode is the calibrated serial CPU cost per point-level step of the
// recursive coder (comparable to the sequential octree's insert cost).
var costCode = edgesim.Cost{OpsPerItem: 210, BytesPerItem: 14}

// ErrBadStream reports a malformed kd stream.
var ErrBadStream = errors.New("kdtree: malformed stream")

type cell struct {
	minX, minY, minZ    uint32
	sizeX, sizeY, sizeZ uint32 // cell side lengths (powers of two)
}

func (c cell) single() bool { return c.sizeX == 1 && c.sizeY == 1 && c.sizeZ == 1 }

// longestAxis returns 0/1/2 for x/y/z, preferring x on ties (both sides of
// the channel derive the identical split sequence).
func (c cell) longestAxis() int {
	if c.sizeX >= c.sizeY && c.sizeX >= c.sizeZ {
		return 0
	}
	if c.sizeY >= c.sizeZ {
		return 1
	}
	return 2
}

// split halves the cell along axis, returning the lower and upper halves.
func (c cell) split(axis int) (lo, hi cell) {
	lo, hi = c, c
	switch axis {
	case 0:
		lo.sizeX /= 2
		hi.sizeX /= 2
		hi.minX += lo.sizeX
	case 1:
		lo.sizeY /= 2
		hi.sizeY /= 2
		hi.minY += lo.sizeY
	default:
		lo.sizeZ /= 2
		hi.sizeZ /= 2
		hi.minZ += lo.sizeZ
	}
	return lo, hi
}

func axisCoord(v geom.Voxel, axis int) uint32 {
	switch axis {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

func axisMid(c cell, axis int) uint32 {
	switch axis {
	case 0:
		return c.minX + c.sizeX/2
	case 1:
		return c.minY + c.sizeY/2
	default:
		return c.minZ + c.sizeZ/2
	}
}

// Encode compresses the geometry of a voxel cloud (positions only;
// duplicates are removed). The stream decodes with Decode given the depth.
func Encode(dev *edgesim.Device, vc *geom.VoxelCloud) ([]byte, error) {
	if vc.Depth == 0 || vc.Depth > 21 {
		return nil, fmt.Errorf("kdtree: depth %d out of range", vc.Depth)
	}
	// Deduplicate via sort.
	pts := make([]geom.Voxel, len(vc.Voxels))
	copy(pts, vc.Voxels)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		if pts[i].Y != pts[j].Y {
			return pts[i].Y < pts[j].Y
		}
		return pts[i].Z < pts[j].Z
	})
	w := 0
	for i, p := range pts {
		if i == 0 || p.X != pts[w-1].X || p.Y != pts[w-1].Y || p.Z != pts[w-1].Z {
			pts[w] = p
			w++
		}
	}
	pts = pts[:w]

	enc := entropy.NewEncoder()
	countModel := entropy.NewUintModel()
	countModel.Encode(enc, uint64(len(pts)))

	root := cell{sizeX: vc.GridSize(), sizeY: vc.GridSize(), sizeZ: vc.GridSize()}
	dev.CPUSerial("KDEncode", len(pts)*int(vc.Depth)*3, costCode, func() {
		// Two passes: the recursion partitions and collects the per-cell
		// counts, then the whole count column goes through the batched
		// entropy slab in one call (same symbol order, byte-identical).
		counts := collectCells(pts, root, make([]uint64, 0, 2*len(pts)))
		countModel.EncodeSlice(enc, counts)
	})
	return enc.Bytes(), nil
}

// collectCells recursively partitions and appends each coded cell's
// lower-half count in DFS order — the exact symbol sequence the historical
// interleaved encoder produced.
func collectCells(pts []geom.Voxel, c cell, counts []uint64) []uint64 {
	if len(pts) == 0 || c.single() {
		return counts
	}
	axis := c.longestAxis()
	mid := axisMid(c, axis)
	// Partition in place: stable order not needed, the decoder only needs
	// counts.
	lo := 0
	for i := range pts {
		if axisCoord(pts[i], axis) < mid {
			pts[lo], pts[i] = pts[i], pts[lo]
			lo++
		}
	}
	counts = append(counts, uint64(lo))
	l, h := c.split(axis)
	counts = collectCells(pts[:lo], l, counts)
	return collectCells(pts[lo:], h, counts)
}

// Decode reconstructs the voxel positions from a kd stream.
func Decode(dev *edgesim.Device, data []byte, depth uint) ([]geom.Voxel, error) {
	if depth == 0 || depth > 21 {
		return nil, fmt.Errorf("kdtree: depth %d out of range", depth)
	}
	dec, err := entropy.NewDecoder(data)
	if err != nil {
		return nil, err
	}
	countModel := entropy.NewUintModel()
	total := countModel.Decode(dec)
	const maxReasonable = 1 << 27
	if total > maxReasonable {
		return nil, ErrBadStream
	}
	out := make([]geom.Voxel, 0, total)
	grid := uint32(1) << depth
	root := cell{sizeX: grid, sizeY: grid, sizeZ: grid}
	var decodeErr error
	dev.CPUSerial("KDDecode", int(total)*int(depth)*3, costCode, func() {
		decodeErr = decodeCell(dec, countModel, int(total), root, &out)
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	// A truncated stream makes the cursor run off the end (zero-filled
	// bits); surface that as corruption instead of returning garbage.
	if err := dec.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func decodeCell(dec *entropy.Decoder, m *entropy.UintModel, n int, c cell, out *[]geom.Voxel) error {
	if n == 0 {
		return nil
	}
	if c.single() {
		if n != 1 {
			return fmt.Errorf("kdtree: %d points in a unit cell", n)
		}
		*out = append(*out, geom.Voxel{X: c.minX, Y: c.minY, Z: c.minZ})
		return nil
	}
	axis := c.longestAxis()
	lo64 := m.Decode(dec)
	if lo64 > uint64(n) {
		return ErrBadStream
	}
	lo := int(lo64)
	l, h := c.split(axis)
	if err := decodeCell(dec, m, lo, l, out); err != nil {
		return err
	}
	return decodeCell(dec, m, n-lo, h, out)
}
