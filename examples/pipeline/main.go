// Pipeline: the complete Fig. 1 chain, end to end, with every stage this
// repository implements:
//
//	3D content generation  — a virtual 4-camera RGB-D rig images the
//	                         articulated body (internal/capture)
//	PC encoding            — the proposed Intra-Inter-V1 design
//	data transmission      — a modelled 5G uplink
//	PC decoding            — on the receiver's device model
//	render and display     — splat-rendered to a PNG
//
// The program prints the per-stage latency/energy budget and writes
// pipeline-decoded.png next to the working directory.
package main

import (
	"bytes"
	"fmt"
	"image/png"
	"log"
	"os"

	"repro/pcc"
)

func main() {
	// Stage 0: the scene — ground truth from the synthetic dataset.
	video := pcc.NewVideo("redandblack", 0.08)
	truth := make([]*pcc.PointCloud, 3)
	var err error
	for i := range truth {
		if truth[i], err = video.Frame(i); err != nil {
			log.Fatal(err)
		}
	}

	// Stage 1: capture with a frontal RGB-D rig (the MVUB arrangement).
	rig := pcc.FrontalCaptureRig(4, 1024)
	captured := make([]*pcc.PointCloud, len(truth))
	for i, tf := range truth {
		raw, err := rig.Capture(tf)
		if err != nil {
			log.Fatal(err)
		}
		if captured[i], err = pcc.Voxelize(raw, 10); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("capture: %d-camera rig, %d -> %d voxels/frame (single-sided)\n",
		4, truth[0].Len(), captured[0].Len())

	// Stage 2: encode an IPP stream with the proposed design.
	opts := pcc.DefaultOptions(pcc.IntraInterV1)
	opts.IntraAttr.Segments = 2500
	opts.Inter.Segments = 4000
	var wire bytes.Buffer
	w := pcc.NewStreamWriter(&wire, opts)
	for _, f := range captured {
		if _, err := w.WriteFrame(f); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encode:  %.2f MB compressed (%.1fx), sim %v / %.2f J on %s\n",
		float64(w.CompressedBytes())/1e6,
		float64(captured[0].RawBytes()*3)/float64(w.CompressedBytes()),
		w.Device().SimTime().Round(1e5), w.Device().EnergyJ(), "Jetson-AGX-Xavier")

	// Stage 3: transmit over 5G.
	cost, err := pcc.Link5G.Transmit(w.CompressedBytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link:    %s uplink, %v, %.3f J radio\n",
		pcc.Link5G.Name, cost.Latency.Round(1e5), cost.TxEnergy+cost.RxEnergy)

	// Stage 4: decode on the receiver.
	r, err := pcc.NewStreamReader(&wire)
	if err != nil {
		log.Fatal(err)
	}
	var last *pcc.PointCloud
	for i := 0; ; i++ {
		frame, _, err := r.ReadFrame()
		if err != nil {
			break
		}
		last = frame
	}
	fmt.Printf("decode:  %d frames, sim %v / %.2f J\n",
		3, r.Device().SimTime().Round(1e5), r.Device().EnergyJ())

	// Stage 5: render the final decoded frame.
	img, err := pcc.RenderFrame(last, pcc.DefaultRenderOptions())
	if err != nil {
		log.Fatal(err)
	}
	out, err := os.Create("pipeline-decoded.png")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := png.Encode(out, img); err != nil {
		log.Fatal(err)
	}
	fmt.Println("render:  wrote pipeline-decoded.png")

	// Quality check against the captured (pre-codec) frame.
	psnr, err := pcc.GeometryPSNR(captured[2], last)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quality: geometry PSNR %.1f dB vs the captured frame\n", min(psnr, 120))
}
