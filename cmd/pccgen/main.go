// Command pccgen generates frames of the synthetic Table-I videos as .pcf
// files, the raw-frame interchange format consumed by cmd/pcc.
//
//	pccgen -video loot -scale 0.1 -frames 10 -out ./frames
//
// writes ./frames/loot-000.pcf .. ./frames/loot-009.pcf.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
)

func main() {
	var (
		video  = flag.String("video", "loot", "Table I video name")
		scale  = flag.Float64("scale", 0.1, "point-count scale (1.0 = paper size)")
		frames = flag.Int("frames", 10, "number of frames to generate")
		start  = flag.Int("start", 0, "first frame index")
		out    = flag.String("out", ".", "output directory")
		format = flag.String("format", "pcf", "output format: pcf or ply")
		list   = flag.Bool("list", false, "list available videos and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range append(dataset.TableI(), dataset.SparsePresets()...) {
			fmt.Printf("%-12s %-6s %3d frames, %7d pts/frame\n", s.Name, s.Dataset, s.Frames, s.PointsPerFrame)
		}
		return
	}
	spec, err := dataset.SpecByName(*video)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	g := dataset.NewGenerator(spec, *scale)
	for i := 0; i < *frames; i++ {
		t := *start + i
		vc, err := g.Frame(t)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("%s-%03d.%s", spec.Name, t, *format))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		var werr error
		switch *format {
		case "ply":
			werr = dataset.WritePLY(f, vc)
		case "pcf":
			werr = dataset.WriteFrame(f, vc)
		default:
			f.Close()
			fatal(fmt.Errorf("unknown format %q", *format))
		}
		if werr != nil {
			f.Close()
			fatal(werr)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d points\n", path, vc.Len())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pccgen:", err)
	os.Exit(1)
}
