package codec

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/dataset"
	"repro/internal/edgesim"
	"repro/internal/geom"
)

// goldenStreamHashes pins the exact encoded bytes of every design over a
// deterministic 6-frame (two-GOP) redandblack sequence at 5% scale. Any
// refactor of the encode hot path (worker pools, scratch arenas, parallel
// scan/compact) must keep the wire format byte-identical; a hash change here
// means the change is NOT a pure performance optimization.
//
// Captured from the pre-worker-pool implementation (PR 2 tree) and verified
// unchanged after the steady-state throughput overhaul.
var goldenStreamHashes = map[Design]string{
	TMC13:        "338364b6aba6eac46c62fa5beb98d102ccec1332343f92db369099285e65ee77",
	CWIPC:        "e71b0067b84f60b8b5d05b660964816a9d14c6b6c334b727321eb2b8f2edb730",
	IntraOnly:    "9d1b26ec0e7f32b087b28e65a8c282bf3f9cec631647e12ed00afaf2fb8f9199",
	IntraInterV1: "3fd2f932928b37e14bb6f79f1ccf11514858e8c9e7d3d94fd6d5979f819b8ba5",
	IntraInterV2: "fcfc6cc2577c5a27b80e55dbf2d16e086a5412b90b518f706718d8d363593652",
}

func goldenFrames(t testing.TB) []*geom.VoxelCloud {
	t.Helper()
	spec, err := dataset.SpecByName("redandblack")
	if err != nil {
		t.Fatal(err)
	}
	g := dataset.NewGenerator(spec, 0.05)
	frames := make([]*geom.VoxelCloud, 6)
	for i := range frames {
		if frames[i], err = g.Frame(i); err != nil {
			t.Fatal(err)
		}
	}
	return frames
}

// TestGoldenStreams asserts byte-identical encoded output across the
// performance refactors of the encode hot path.
func TestGoldenStreams(t *testing.T) {
	frames := goldenFrames(t)
	for _, d := range Designs() {
		t.Run(d.String(), func(t *testing.T) {
			opts := OptionsFor(d)
			opts.IntraAttr.Segments = 1500
			opts.Inter.Segments = 2500
			enc := NewEncoder(edgesim.NewXavier(edgesim.Mode15W), opts)
			h := sha256.New()
			for _, f := range frames {
				ef, _, err := enc.EncodeFrame(f)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ef.WriteTo(h); err != nil {
					t.Fatal(err)
				}
			}
			got := hex.EncodeToString(h.Sum(nil))
			want := goldenStreamHashes[d]
			if got != want {
				t.Errorf("encoded stream hash changed:\n got  %s\n want %s", got, want)
			}
		})
	}
}

// TestGoldenStreamsSplitPhase asserts the split-phase (pipeline) API
// produces the same bytes as EncodeFrame for the proposed designs.
func TestGoldenStreamsSplitPhase(t *testing.T) {
	frames := goldenFrames(t)
	for _, d := range []Design{IntraOnly, IntraInterV1} {
		t.Run(d.String(), func(t *testing.T) {
			opts := OptionsFor(d)
			opts.IntraAttr.Segments = 1500
			opts.Inter.Segments = 2500
			enc := NewEncoder(edgesim.NewXavier(edgesim.Mode15W), opts)
			geomDev := edgesim.NewXavier(edgesim.Mode15W)
			h := sha256.New()
			for _, f := range frames {
				g, err := enc.EncodeGeometryOn(geomDev, f)
				if err != nil {
					t.Fatal(err)
				}
				ef, _, err := enc.FinishFrame(g)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ef.WriteTo(h); err != nil {
					t.Fatal(err)
				}
			}
			got := hex.EncodeToString(h.Sum(nil))
			want := goldenStreamHashes[d]
			if got != want {
				t.Errorf("split-phase stream hash differs from EncodeFrame golden:\n got  %s\n want %s", got, want)
			}
		})
	}
}

// TestGoldenStreamsControlLoopInert proves the adaptive control loop is
// byte-inert when it has nothing to say: with the congestion controller
// ATTACHED but never fed a signal, and with the rate loop disabled
// (TargetBitsPerPoint == 0), the encoded stream must equal the golden
// hashes bit for bit. Adaptation must be a pure overlay — attaching it
// cannot perturb the wire format.
func TestGoldenStreamsControlLoopInert(t *testing.T) {
	frames := goldenFrames(t)
	for _, d := range Designs() {
		t.Run(d.String(), func(t *testing.T) {
			opts := OptionsFor(d)
			opts.IntraAttr.Segments = 1500
			opts.Inter.Segments = 2500
			opts.Adapt = AdaptiveRate{Enabled: true} // attached, silent
			enc := NewEncoder(edgesim.NewXavier(edgesim.Mode15W), opts)
			if enc.Controller() == nil {
				t.Fatal("controller not attached")
			}
			h := sha256.New()
			for _, f := range frames {
				ef, _, err := enc.EncodeFrame(f)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ef.WriteTo(h); err != nil {
					t.Fatal(err)
				}
			}
			got := hex.EncodeToString(h.Sum(nil))
			if want := goldenStreamHashes[d]; got != want {
				t.Errorf("silent controller changed the stream:\n got  %s\n want %s", got, want)
			}
			if n := enc.Controller().Snapshot().Counters.Transitions(); n != 0 {
				t.Errorf("%d controller transitions without any signal", n)
			}
		})
	}
}
