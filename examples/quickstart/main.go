// Quickstart: encode one synthetic frame with the paper's intra-frame
// design, decode it, and report size, quality, and the simulated
// edge-board cost — the smallest complete tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro/pcc"
)

func main() {
	// A frame of the "loot" sequence at 10% of the paper's point count.
	video := pcc.NewVideo("loot", 0.1)
	frame, err := video.Frame(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame 0 of %s: %d points (%.1f MB raw)\n",
		video.Name(), frame.Len(), float64(frame.RawBytes())/1e6)

	// Encode with the Morton-parallel intra-frame design (Sec. IV).
	opts := pcc.DefaultOptions(pcc.IntraOnly)
	opts.IntraAttr.Segments = 3000 // paper uses 30000 at full scale
	enc := pcc.NewEncoderOptions(opts)
	bits, stats, err := enc.Encode(frame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed: %.1f KB (%.1fx ratio)\n",
		float64(stats.SizeBytes)/1e3,
		pcc.CompressionRatio(frame.RawBytes(), stats.SizeBytes))
	fmt.Printf("simulated edge encode: %.1f ms (geometry %.1f + attributes %.1f), %.3f J\n",
		stats.TotalTime.Seconds()*1000,
		stats.GeometryTime.Seconds()*1000,
		stats.AttrTime.Seconds()*1000,
		stats.EnergyJ)

	// Decode and measure quality.
	dec := pcc.NewDecoder(enc.Options())
	decoded, err := dec.Decode(bits)
	if err != nil {
		log.Fatal(err)
	}
	psnr, err := pcc.GeometryPSNR(frame, decoded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded %d points, geometry PSNR %.1f dB, simulated decode %.1f ms\n",
		decoded.Len(), psnr, dec.Device().SimTime().Seconds()*1000)
}
