package entropy

import "sync"

// ByteModel is an adaptive order-0 byte model: a bit-tree of 255 binary
// contexts, one per internal node of the 8-level decision tree. It adapts to
// the symbol distribution as it codes — occupancy-byte streams (whose
// distribution is heavily skewed towards few-children nodes) compress well
// under it.
type ByteModel struct {
	probs [256]Prob
}

// NewByteModel returns a fresh, unbiased model.
func NewByteModel() *ByteModel {
	m := &ByteModel{}
	m.Init()
	return m
}

// Init resets every context to the unbiased state (for pooled reuse).
func (m *ByteModel) Init() {
	for i := range m.probs {
		m.probs[i] = probInit
	}
}

// Encode codes one byte with e under this model.
func (m *ByteModel) Encode(e *Encoder, b byte) {
	ctx := 1
	for i := 7; i >= 0; i-- {
		bit := int(b >> uint(i) & 1)
		e.EncodeBit(&m.probs[ctx], bit)
		ctx = ctx<<1 | bit
	}
}

// Decode decodes one byte with d under this model.
func (m *ByteModel) Decode(d *Decoder) byte {
	ctx := 1
	for i := 0; i < 8; i++ {
		ctx = ctx<<1 | d.DecodeBit(&m.probs[ctx])
	}
	return byte(ctx & 0xFF)
}

// EncodeSlice codes every byte of data in order — the byte-tree fast path.
// It is byte-identical to calling Encode per byte; the tree walk and the
// range registers stay local across the whole slab.
func (m *ByteModel) EncodeSlice(e *Encoder, data []byte) {
	probs := &m.probs
	rng := e.rng
	for _, b := range data {
		ctx := 1
		for i := 7; i >= 0; i-- {
			bit := int(b >> uint(i) & 1)
			p := probs[ctx]
			bound := (rng >> probBits) * uint32(p)
			if bit == 0 {
				rng = bound
				probs[ctx] = p + (1<<probBits-p)>>probMoves
			} else {
				e.low += uint64(bound)
				rng -= bound
				probs[ctx] = p - p>>probMoves
			}
			ctx = ctx<<1 | bit
			if rng < topValue {
				rng <<= 8
				e.shiftLow()
			}
		}
	}
	e.rng = rng
}

// DecodeSlice fills dst by decoding len(dst) bytes — the decode-side
// byte-tree fast path, bit-exact with per-byte Decode calls.
func (m *ByteModel) DecodeSlice(d *Decoder, dst []byte) {
	probs := &m.probs
	code, rng := d.code, d.rng
	data, pos := d.data, d.pos
	for j := range dst {
		ctx := 1
		for i := 0; i < 8; i++ {
			p := probs[ctx]
			bound := (rng >> probBits) * uint32(p)
			if code < bound {
				rng = bound
				probs[ctx] = p + (1<<probBits-p)>>probMoves
				ctx <<= 1
			} else {
				code -= bound
				rng -= bound
				probs[ctx] = p - p>>probMoves
				ctx = ctx<<1 | 1
			}
			if rng < topValue {
				rng <<= 8
				var nb byte
				if pos < len(data) {
					nb = data[pos]
					pos++
				} else {
					d.overrun++
				}
				code = code<<8 | uint32(nb)
			}
		}
		dst[j] = byte(ctx & 0xFF)
	}
	d.code, d.rng, d.pos = code, rng, pos
}

// NibbleModel is a 4-bit bit-tree model (15 contexts), used where symbols
// are small (e.g. quantized residual magnitudes).
type NibbleModel struct {
	probs [16]Prob
}

// NewNibbleModel returns a fresh model.
func NewNibbleModel() *NibbleModel {
	m := &NibbleModel{}
	for i := range m.probs {
		m.probs[i] = NewProb()
	}
	return m
}

// Encode codes the low 4 bits of v.
func (m *NibbleModel) Encode(e *Encoder, v byte) {
	ctx := 1
	for i := 3; i >= 0; i-- {
		bit := int(v >> uint(i) & 1)
		e.EncodeBit(&m.probs[ctx], bit)
		ctx = ctx<<1 | bit
	}
}

// Decode decodes 4 bits.
func (m *NibbleModel) Decode(d *Decoder) byte {
	ctx := 1
	for i := 0; i < 4; i++ {
		ctx = ctx<<1 | d.DecodeBit(&m.probs[ctx])
	}
	return byte(ctx & 0x0F)
}

// UintModel codes unsigned integers with an adaptive Elias-gamma-like
// scheme: a unary-coded bit-length under adaptive contexts followed by the
// mantissa bits at fixed probability. Good for residuals/counts with
// geometric-ish distributions.
type UintModel struct {
	lenProbs [64]Prob
}

// NewUintModel returns a fresh model.
func NewUintModel() *UintModel {
	m := &UintModel{}
	m.Init()
	return m
}

// Init resets every context to the unbiased state (for pooled reuse).
func (m *UintModel) Init() {
	for i := range m.lenProbs {
		m.lenProbs[i] = probInit
	}
}

func bitLen(v uint64) int {
	n := 0
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}

// Encode codes v >= 0. The unary length prefix goes through the batched
// EncodeBits slab (byte-identical to the historical per-bit loop).
func (m *UintModel) Encode(e *Encoder, v uint64) {
	n := bitLen(v)
	if n < len(m.lenProbs) {
		// n one-bits then the zero terminator: (n+1)-bit word 111...10.
		e.EncodeBits(m.lenProbs[:n+1], (1<<uint(n)-1)<<1, n+1)
	} else {
		e.EncodeBits(m.lenProbs[:], ^uint64(0), len(m.lenProbs))
	}
	if n > 1 {
		// Top bit is implied by the length.
		e.EncodeDirect(v&(1<<uint(n-1)-1), n-1)
	}
}

// EncodeSlice codes each value of vs in order, collapsing runs of zeros
// (which cost one zero bit each under the same context) into the zero-run
// fast path. Byte-identical to per-value Encode calls.
func (m *UintModel) EncodeSlice(e *Encoder, vs []uint64) {
	i := 0
	for i < len(vs) {
		if vs[i] == 0 {
			j := i + 1
			for j < len(vs) && vs[j] == 0 {
				j++
			}
			e.EncodeZeroRun(&m.lenProbs[0], j-i)
			i = j
			continue
		}
		m.Encode(e, vs[i])
		i++
	}
}

// Decode decodes one unsigned integer.
func (m *UintModel) Decode(d *Decoder) uint64 {
	n := 0
	for n < len(m.lenProbs) && d.DecodeBit(&m.lenProbs[n]) == 1 {
		n++
	}
	if n == 0 {
		return 0
	}
	v := uint64(1) << uint(n-1)
	if n > 1 {
		v |= d.DecodeDirect(n - 1)
	}
	return v
}

// DecodeSlice fills dst by decoding len(dst) values, bit-exact with
// per-value Decode calls.
func (m *UintModel) DecodeSlice(d *Decoder, dst []uint64) {
	for i := range dst {
		dst[i] = m.Decode(d)
	}
}

// ZigZag maps signed to unsigned so small magnitudes stay small
// (0,-1,1,-2,2 -> 0,1,2,3,4).
func ZigZag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// IntModel codes signed integers via ZigZag + UintModel.
type IntModel struct {
	u UintModel
}

// NewIntModel returns a fresh model.
func NewIntModel() *IntModel { return &IntModel{u: *NewUintModel()} }

// Encode codes a signed integer.
func (m *IntModel) Encode(e *Encoder, v int64) { m.u.Encode(e, ZigZag(v)) }

// EncodeSlice codes each value of vs in order, collapsing zero runs (the
// common case for quantized residuals) into the zero-run fast path.
// Byte-identical to per-value Encode calls.
func (m *IntModel) EncodeSlice(e *Encoder, vs []int64) {
	i := 0
	for i < len(vs) {
		if vs[i] == 0 {
			j := i + 1
			for j < len(vs) && vs[j] == 0 {
				j++
			}
			e.EncodeZeroRun(&m.u.lenProbs[0], j-i)
			i = j
			continue
		}
		m.u.Encode(e, ZigZag(vs[i]))
		i++
	}
}

// Decode decodes a signed integer.
func (m *IntModel) Decode(d *Decoder) int64 { return UnZigZag(m.u.Decode(d)) }

// DecodeSlice fills dst by decoding len(dst) signed values, bit-exact with
// per-value Decode calls.
func (m *IntModel) DecodeSlice(d *Decoder, dst []int64) {
	for i := range dst {
		dst[i] = UnZigZag(m.u.Decode(d))
	}
}

// byteCodec bundles the coder and the models CompressBytes/DecompressBytes
// need, so the whole per-call working set comes from one pool hit.
type byteCodec struct {
	enc Encoder
	dec Decoder
	lm  UintModel
	bm  ByteModel
}

var byteCodecPool = sync.Pool{New: func() any { return new(byteCodec) }}

// CompressBytes entropy-codes a byte slice with an adaptive order-0 model,
// prefixing the length. This is the generic "Entropy Encoding" stage the
// baseline pipelines apply to their serialized streams.
func CompressBytes(data []byte) []byte {
	return AppendCompressBytes(nil, data)
}

// AppendCompressBytes appends the entropy-coded form of data to dst and
// returns the extended slice. The coder and models come from a pool, so the
// only allocation in steady state is dst's own growth.
func AppendCompressBytes(dst, data []byte) []byte {
	c := byteCodecPool.Get().(*byteCodec)
	c.enc.Reset()
	c.lm.Init()
	c.bm.Init()
	c.lm.Encode(&c.enc, uint64(len(data)))
	c.bm.EncodeSlice(&c.enc, data)
	dst = append(dst, c.enc.Bytes()...)
	byteCodecPool.Put(c)
	return dst
}

// DecompressBytes inverts CompressBytes. A stream that ends before the
// declared payload has been decoded — the decoder cursor running off the
// end of data — is reported as ErrCorrupt rather than silently returning
// zero-filled garbage.
func DecompressBytes(data []byte) ([]byte, error) {
	return AppendDecompressBytes(nil, data)
}

// AppendDecompressBytes appends the decoded payload to dst and returns the
// extended slice (pooled decoder/models, same corruption checks as
// DecompressBytes).
func AppendDecompressBytes(dst, data []byte) ([]byte, error) {
	c := byteCodecPool.Get().(*byteCodec)
	defer byteCodecPool.Put(c)
	if err := c.dec.Reset(data); err != nil {
		return nil, err
	}
	c.lm.Init()
	c.bm.Init()
	n := c.lm.Decode(&c.dec)
	const maxReasonable = 1 << 31
	if n > maxReasonable {
		return nil, ErrCorrupt
	}
	base := len(dst)
	if cap(dst)-base < int(n) {
		grown := make([]byte, base+int(n))
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:base+int(n)]
	}
	c.bm.DecodeSlice(&c.dec, dst[base:])
	if err := c.dec.Err(); err != nil {
		return nil, err
	}
	return dst, nil
}
