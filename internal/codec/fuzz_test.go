package codec

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadFrameFrom drives the frame-container parser with arbitrary bytes.
func FuzzReadFrameFrom(f *testing.F) {
	// Seed with a valid container.
	ef := &EncodedFrame{Type: PFrame, Depth: 10, NumPoints: 3, Geometry: []byte{1, 2}, Attr: []byte{3}}
	var buf bytes.Buffer
	if _, err := ef.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	rs := &EncodedFrame{Type: IFrame, Depth: 10, NumPoints: 1, HasRescale: true}
	rs.Rescale.ScaleX, rs.Rescale.ScaleY, rs.Rescale.ScaleZ = 1<<16, 1<<16, 1<<16
	buf.Reset()
	if _, err := rs.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PCVF"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadFrameFrom(bytes.NewReader(data))
		if err != nil {
			if err != io.EOF && g != nil {
				t.Fatal("error with non-nil frame")
			}
			return
		}
		// A parsed frame must re-serialize.
		var out bytes.Buffer
		if _, err := g.WriteTo(&out); err != nil {
			t.Fatalf("reserialize: %v", err)
		}
	})
}
