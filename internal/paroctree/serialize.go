package paroctree

import (
	"errors"
	"fmt"

	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/morton"
)

// Serialize emits the occupancy stream in breadth-first (level) order:
// all depth-0 masks, then depth-1, and so on down to depth Depth-1 (leaf
// nodes carry no mask). Within a level nodes are in ascending Morton order,
// which is exactly the order a level-wise decoder regenerates, so the
// stream is self-describing given the depth.
//
// BFS order (rather than the baseline's DFS) is what makes the DECODER
// parallelizable too (Sec. IV-B3 notes decompression also runs in parallel):
// each level's masks expand independently once the previous level's node
// list is known.
func (t *Tree) Serialize(dev *edgesim.Device) []byte {
	return t.SerializeInto(dev, nil)
}

// SerializeInto is Serialize into a reusable buffer (grown as needed).
func (t *Tree) SerializeInto(dev *edgesim.Device, dst []byte) []byte {
	internal := t.LevelOffsets[t.Depth] // nodes below this index have children
	out := grow(dst, internal)
	dev.GPUKernelIdx("SerializePack", internal, costPack, func(i int) {
		out[i] = t.Occupy[i]
	})
	return out
}

// ErrBadStream reports a malformed occupancy stream.
var ErrBadStream = errors.New("paroctree: malformed occupancy stream")

// Deserialize reconstructs the leaf Morton codes from a BFS occupancy
// stream. The expansion proceeds level by level; within a level every node
// expands independently (flag/scan/compact again), which the device ledger
// records as the parallel decode path.
func Deserialize(dev *edgesim.Device, stream []byte, depth uint) ([]morton.Code, error) {
	if depth == 0 || depth > 21 {
		return nil, fmt.Errorf("paroctree: depth %d out of range [1,21]", depth)
	}
	if len(stream) == 0 {
		return nil, nil
	}
	// The per-level offset scan is serial in this implementation; the
	// paper's decode is similarly "sub-optimal" (Sec. IV-B3, ~70 ms/frame
	// end-to-end for Redandblack).
	dev.CPUSerial("DecodeScan", len(stream), edgesim.Cost{OpsPerItem: 25, BytesPerItem: 2}, func() {})
	codes := []morton.Code{0} // root
	pos := 0
	for d := uint(0); d < depth; d++ {
		if pos+len(codes) > len(stream) {
			return nil, ErrBadStream
		}
		masks := stream[pos : pos+len(codes)]
		pos += len(codes)

		// Exclusive scan of child counts gives each node its write offset.
		offsets := make([]int, len(codes)+1)
		for i, m := range masks {
			if m == 0 {
				return nil, fmt.Errorf("paroctree: zero occupancy mask at depth %d node %d", d, i)
			}
			offsets[i+1] = offsets[i] + popcount8(m)
		}
		next := make([]morton.Code, offsets[len(codes)])
		parent := codes
		dev.GPUKernelIdx("DecodeExpand", len(parent), edgesim.Cost{OpsPerItem: 30, BytesPerItem: 10}, func(i int) {
			w := offsets[i]
			base := parent[i] << 3
			for b := uint(0); b < 8; b++ {
				if masks[i]>>b&1 == 1 {
					next[w] = base | morton.Code(b)
					w++
				}
			}
		})
		codes = next
	}
	if pos != len(stream) {
		return nil, fmt.Errorf("paroctree: %d trailing bytes", len(stream)-pos)
	}
	return codes, nil
}

func popcount8(b byte) int {
	n := 0
	for b != 0 {
		n += int(b & 1)
		b >>= 1
	}
	return n
}

// CodesToVoxels decodes Morton leaf codes into voxel positions (attributes
// zeroed; the attribute decoder fills them in).
func CodesToVoxels(dev *edgesim.Device, codes []morton.Code, depth uint) []geom.Voxel {
	out := make([]geom.Voxel, len(codes))
	dev.GPUKernel("MortonDecode", len(codes), costMortonGen, func(lo, hi int) {
		morton.DecodeVoxels(out[lo:hi], codes[lo:hi])
	})
	return out
}

// Rescale models the quality cost of the paper's parallel pipeline
// (Sec. IV-B3): the parallel build computes a tight per-axis bounding
// cuboid and maps it onto the lattice, so decoded coordinates can shift
// slightly relative to the original lattice (their Fig. 5 example decodes
// P0 = [0,0,0] as [-0.43,0,0]). Applying Rescale before building and
// InverseRescale after decoding reproduces this sub-voxel geometry error
// (keeping geometry PSNR high but finite, >70 dB at depth 10).
type Rescale struct {
	MinX, MinY, MinZ uint32
	// Per-axis scales mapping original coordinates into the tight cuboid
	// (fixed-point, 16 fractional bits). FitRescale uses one UNIFORM scale
	// (the paper's cuboid is translated and fit by its longest side, Fig. 5
	// — stretching the short axes independently would inflate the octree's
	// occupied-node count and hurt the compressed size); the three fields
	// exist so the container format also supports anisotropic transforms.
	ScaleX, ScaleY, ScaleZ uint64
}

// FitRescale computes the tight-cuboid transform for a cloud.
func FitRescale(vc *geom.VoxelCloud) Rescale {
	ident := uint64(1 << 16)
	if vc.Len() == 0 {
		return Rescale{ScaleX: ident, ScaleY: ident, ScaleZ: ident}
	}
	minX, minY, minZ := ^uint32(0), ^uint32(0), ^uint32(0)
	var maxX, maxY, maxZ uint32
	for _, v := range vc.Voxels {
		minX = min(minX, v.X)
		minY = min(minY, v.Y)
		minZ = min(minZ, v.Z)
		maxX = max(maxX, v.X)
		maxY = max(maxY, v.Y)
		maxZ = max(maxZ, v.Z)
	}
	grid := (uint32(1) << vc.Depth) - 1
	extent := max(maxX-minX, max(maxY-minY, maxZ-minZ))
	scale := ident
	if extent > 0 {
		scale = uint64(grid) << 16 / uint64(extent)
	}
	return Rescale{
		MinX: minX, MinY: minY, MinZ: minZ,
		ScaleX: scale, ScaleY: scale, ScaleZ: scale,
	}
}

// Identity reports whether the transform is a no-op.
func (r Rescale) Identity() bool {
	const ident = 1 << 16
	return r.MinX == 0 && r.MinY == 0 && r.MinZ == 0 &&
		r.ScaleX == ident && r.ScaleY == ident && r.ScaleZ == ident
}

func applyAxis(c, mn uint32, scale uint64) uint32 {
	return uint32((uint64(c-mn)*scale + 1<<15) >> 16)
}

func invertAxis(c, mn uint32, scale uint64) uint32 {
	return mn + uint32((uint64(c)<<16+scale/2)/scale)
}

// Apply maps a voxel into the tight cuboid lattice (round-to-nearest).
func (r Rescale) Apply(v geom.Voxel) geom.Voxel {
	return geom.Voxel{
		X: applyAxis(v.X, r.MinX, r.ScaleX),
		Y: applyAxis(v.Y, r.MinY, r.ScaleY),
		Z: applyAxis(v.Z, r.MinZ, r.ScaleZ),
		C: v.C,
	}
}

// Invert maps a tight-lattice voxel back to original coordinates
// (round-to-nearest; the source of the sub-voxel error).
func (r Rescale) Invert(v geom.Voxel) geom.Voxel {
	return geom.Voxel{
		X: invertAxis(v.X, r.MinX, r.ScaleX),
		Y: invertAxis(v.Y, r.MinY, r.ScaleY),
		Z: invertAxis(v.Z, r.MinZ, r.ScaleZ),
		C: v.C,
	}
}
