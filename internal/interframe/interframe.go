// Package interframe implements the paper's CONTRIBUTION inter-frame
// attribute compression (Sec. V): both the I-frame and the P-frame are
// Morton-sorted (reusing the geometry pipeline's codes) and segmented into
// macro blocks; each P-block is matched against a small window of candidate
// I-blocks by the 2-norm attribute distance of Equ. 2; sufficiently-similar
// blocks are stored as a mere POINTER to their reference block ("direct
// reuse"), the rest store per-point deltas against the best reference,
// compressed with the intra Base+Deltas technique.
//
// Because the points are sorted, the candidate window is a contiguous run
// of I-block indices around the P-block's own index — this is the paper's
// "search space minimization" (Sec. VI-C) that replaces CWIPC's full
// I-MB-tree traversal, and no ICP runs for matched blocks (a pointer
// suffices).
package interframe

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/attr"
	"repro/internal/edgesim"
	"repro/internal/geom"
)

// Params configures the inter-frame codec.
type Params struct {
	// Segments is the number of macro blocks per frame (paper: 50000).
	Segments int
	// Candidates is the size of the candidate window per P-block
	// (paper: 100).
	Candidates int
	// Threshold is the direct-reuse acceptance bound on the Equ. 2
	// 2-norm distance, normalized per point (mean squared RGB distance of
	// the block). The paper uses block-sum thresholds of 300 (V1) and 1200
	// (V2) at ~16 points/block; we normalize so the knob is independent of
	// segment count and frame scale, and pick defaults that land the same
	// reuse fractions on the synthetic dataset (whose per-frame sensor
	// noise sets the distance floor).
	Threshold float64
	// QStep quantizes the residuals of post-intra-encoded delta blocks.
	QStep int
}

// DefaultParamsV1 mirrors the paper's quality-oriented Intra-Inter-V1.
func DefaultParamsV1() Params {
	return Params{Segments: 50000, Candidates: 100, Threshold: 45, QStep: 4}
}

// DefaultParamsV2 mirrors the compression-oriented Intra-Inter-V2.
func DefaultParamsV2() Params {
	p := DefaultParamsV1()
	p.Threshold = 90
	return p
}

func (p Params) normalized() Params {
	if p.Segments < 1 {
		p.Segments = 1
	}
	if p.Candidates < 1 {
		p.Candidates = 1
	}
	if p.QStep < 1 {
		p.QStep = 1
	}
	return p
}

// Stats summarizes one encoded P-frame (feeds the Fig. 10b sensitivity
// study: % direct-reuse blocks vs quality vs ratio).
type Stats struct {
	Blocks      int
	DirectReuse int
	DeltaBlocks int
}

// ReuseFraction returns the fraction of blocks stored as pointers.
func (s Stats) ReuseFraction() float64 {
	if s.Blocks == 0 {
		return 0
	}
	return float64(s.DirectReuse) / float64(s.Blocks)
}

// Calibrated kernel costs. Proportions reproduce the Fig. 9 energy
// breakdown (Diff_Squared ~35%, Squared_Sum ~16%, AddressGen ~32% of the
// inter-frame attribute energy).
var (
	costDiffSquared = edgesim.Cost{OpsPerItem: 11, BytesPerItem: 6}    // per candidate pair-point
	costSquaredSum  = edgesim.Cost{OpsPerItem: 5, BytesPerItem: 1}     // per candidate pair-point
	costReuseDecide = edgesim.Cost{OpsPerItem: 85, BytesPerItem: 8}    // per block
	costAddressGen  = edgesim.Cost{OpsPerItem: 1000, BytesPerItem: 12} // per P point
	costDeltaQuant  = edgesim.Cost{OpsPerItem: 85, BytesPerItem: 8}    // per P point
	costPack        = edgesim.Cost{OpsPerItem: 110, BytesPerItem: 3}   // per P point
)

// ErrBadStream reports a malformed inter-frame stream.
var ErrBadStream = errors.New("interframe: malformed stream")

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// pairIndex maps the i-th point of a Kp-point P-block onto a point of a
// Ki-point I-block (deterministic on both sides of the channel).
func pairIndex(i, kp, ki int) int {
	if ki == 0 {
		return -1
	}
	return i * ki / kp
}

// blockDiff computes the Equ. 2 distance between a P-block and an I-block:
// the squared RGB distance over paired points, normalized by the block size
// (unpaired density mismatch shows up through the pairing itself).
func blockDiff(iv, pv []geom.Voxel) float64 {
	kp, ki := len(pv), len(iv)
	if kp == 0 || ki == 0 {
		return math.Inf(1)
	}
	var sum float64
	for i := 0; i < kp; i++ {
		sum += float64(pv[i].C.Dist2(iv[pairIndex(i, kp, ki)].C))
	}
	return sum / float64(kp)
}

// EncodeScratch is the inter-frame encoder's reusable arena: segment
// bounds, block-match state, the reuse bitmap and the per-block delta
// payload buffers. Buffers grow to the largest frame encoded and are then
// reused, so steady-state P-frame encoding allocates only the escaping
// payload. A scratch must not be shared by concurrent encodes.
type EncodeScratch struct {
	buf      bytes.Buffer
	pBounds  []int
	iBounds  []int
	bestIdx  []int32
	bestDiff []float64
	reuse    []bool
	bitmap   []byte
	streams  [][]byte
}

func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// EncodeP compresses the attributes of a P-frame against a reference
// I-frame with a fresh scratch. Hot paths should hold an EncodeScratch and
// call EncodePWith.
func EncodeP(dev *edgesim.Device, iFrame, pFrame []geom.Voxel, p Params) ([]byte, Stats, error) {
	return EncodePWith(dev, iFrame, pFrame, p, new(EncodeScratch))
}

// EncodePWith compresses the attributes of a P-frame against a reference
// I-frame, reusing the scratch arena. Both frames must be Morton-sorted,
// deduplicated voxel slices (the geometry pipeline's output order). The
// P-frame's geometry is coded separately by the intra geometry pipeline.
func EncodePWith(dev *edgesim.Device, iFrame, pFrame []geom.Voxel, p Params, sc *EncodeScratch) ([]byte, Stats, error) {
	p = p.normalized()
	nP, nI := len(pFrame), len(iFrame)
	buf := &sc.buf
	buf.Reset()
	writeUvarint(buf, uint64(nP))
	writeUvarint(buf, uint64(p.Segments))
	writeUvarint(buf, uint64(p.QStep))
	if nP == 0 {
		return append([]byte(nil), buf.Bytes()...), Stats{}, nil
	}
	if nI == 0 {
		return nil, Stats{}, errors.New("interframe: empty reference frame")
	}
	sc.pBounds = attr.SegmentBoundsIn(sc.pBounds, nP, p.Segments)
	sc.iBounds = attr.SegmentBoundsIn(sc.iBounds, nI, p.Segments)
	pBounds, iBounds := sc.pBounds, sc.iBounds
	nBlocks := len(pBounds) - 1
	nIBlocks := len(iBounds) - 1

	// Block match: for each P-block, scan the candidate window.
	sc.bestIdx = grow(sc.bestIdx, nBlocks)
	sc.bestDiff = grow(sc.bestDiff, nBlocks)
	bestIdx, bestDiff := sc.bestIdx, sc.bestDiff
	pairItems := nP * p.Candidates
	// Diff_Squared and Squared_Sum run on the fixed-function unit when one
	// is configured (the paper's Sec. VI-D future-work projection); on the
	// plain Xavier model AccelKernel falls back to GPU accounting.
	dev.AccelKernel("Diff_Squared", nBlocks, edgesim.Cost{
		OpsPerItem:   costDiffSquared.OpsPerItem * float64(pairItems) / float64(nBlocks),
		BytesPerItem: costDiffSquared.BytesPerItem * float64(pairItems) / float64(nBlocks),
	}, func(b0, b1 int) {
		for j := b0; j < b1; j++ {
			pv := pFrame[pBounds[j]:pBounds[j+1]]
			// Candidate window centred on the corresponding I index
			// (Morton order aligns similar body regions across frames).
			center := j * nIBlocks / nBlocks
			lo := center - p.Candidates/2
			if lo < 0 {
				lo = 0
			}
			hi := lo + p.Candidates
			if hi > nIBlocks {
				hi = nIBlocks
				if lo = hi - p.Candidates; lo < 0 {
					lo = 0
				}
			}
			best := math.Inf(1)
			bi := int32(center)
			for c := lo; c < hi; c++ {
				iv := iFrame[iBounds[c]:iBounds[c+1]]
				d := blockDiff(iv, pv)
				// Ties break towards the window centre: the co-located
				// block is the most likely true correspondence and its
				// pointer is the cheapest to predict.
				if d < best || (d == best && absInt(c-center) < absInt(int(bi)-center)) {
					best = d
					bi = int32(c)
				}
			}
			bestIdx[j] = bi
			bestDiff[j] = best
		}
	})
	// The per-pair reduction is a separate kernel on the GPU (Fig. 9
	// names it Squared_Sum); the work happened inside the scan above, so
	// it is accounted without a second execution.
	dev.AccelNoop("Squared_Sum", pairItems, costSquaredSum)

	// Reuse decision per block.
	sc.reuse = grow(sc.reuse, nBlocks)
	reuse := sc.reuse
	st := Stats{Blocks: nBlocks}
	dev.GPUKernelIdx("ReuseDecide", nBlocks, costReuseDecide, func(j int) {
		reuse[j] = bestDiff[j] <= p.Threshold
	})
	for _, r := range reuse {
		if r {
			st.DirectReuse++
		} else {
			st.DeltaBlocks++
		}
	}

	// Emit: reuse bitmap, then per block the reference pointer (offset from
	// the window centre; the paper notes few bits suffice for 100
	// candidates), then delta payloads for non-reuse blocks.
	sc.bitmap = grow(sc.bitmap, (nBlocks+7)/8)
	bitmap := sc.bitmap
	clear(bitmap)
	for j, r := range reuse {
		if r {
			bitmap[j/8] |= 1 << uint(j%8)
		}
	}
	buf.Write(bitmap)
	for j := 0; j < nBlocks; j++ {
		center := j * nIBlocks / nBlocks
		writeVarint(buf, int64(bestIdx[j])-int64(center))
	}
	dev.GPUNoop("Reuse_Pointer", nBlocks, edgesim.Cost{OpsPerItem: 20, BytesPerItem: 2})

	// Address generation + delta quantization + packing for delta blocks.
	// Delta payloads append into per-block scratch buffers (reused across
	// frames) so parallel workers write independently with no per-block
	// allocation in the steady state.
	dev.GPUNoop("AddressGen", nP, costAddressGen)
	if cap(sc.streams) < nBlocks {
		sc.streams = make([][]byte, nBlocks)
	}
	deltaStreams := sc.streams[:nBlocks]
	dev.GPUKernel("Delta_Quantize", nBlocks, edgesim.Cost{
		OpsPerItem:   (costDeltaQuant.OpsPerItem + costPack.OpsPerItem) * float64(nP) / float64(nBlocks),
		BytesPerItem: (costDeltaQuant.BytesPerItem + costPack.BytesPerItem) * float64(nP) / float64(nBlocks),
	}, func(b0, b1 int) {
		ds := deltaPool.Get().(*deltaScratch)
		for j := b0; j < b1; j++ {
			if reuse[j] {
				deltaStreams[j] = deltaStreams[j][:0]
				continue
			}
			deltaStreams[j] = encodeDeltaBlock(deltaStreams[j][:0],
				iFrame[iBounds[bestIdx[j]]:iBounds[bestIdx[j]+1]],
				pFrame[pBounds[j]:pBounds[j+1]],
				int32(p.QStep), ds)
		}
		deltaPool.Put(ds)
	})
	for _, s := range deltaStreams {
		buf.Write(s)
	}
	return append([]byte(nil), buf.Bytes()...), st, nil
}

// deltaScratch holds one worker's per-block delta/residual buffers.
type deltaScratch struct {
	deltas, resid, med []int32
}

var deltaPool = sync.Pool{New: func() any { return new(deltaScratch) }}

// encodeDeltaBlock appends one block's per-point, per-channel deltas versus
// its reference, as Base (median delta) + quantized residuals — the intra
// Base+Deltas technique applied to the delta values (Sec. V-A2 "Reuse").
func encodeDeltaBlock(out []byte, iv, pv []geom.Voxel, q int32, ds *deltaScratch) []byte {
	kp, ki := len(pv), len(iv)
	if cap(ds.deltas) < kp {
		ds.deltas = make([]int32, kp)
		ds.resid = make([]int32, kp)
	}
	deltas, resid := ds.deltas[:kp], ds.resid[:kp]
	for ch := 0; ch < 3; ch++ {
		for i := 0; i < kp; i++ {
			ic := iv[pairIndex(i, kp, ki)].C
			pc := pv[i].C
			switch ch {
			case 0:
				deltas[i] = int32(pc.R) - int32(ic.R)
			case 1:
				deltas[i] = int32(pc.G) - int32(ic.G)
			default:
				deltas[i] = int32(pc.B) - int32(ic.B)
			}
		}
		base := medianI32(deltas, &ds.med)
		out = appendVarint(out, int64(base))
		for i, d := range deltas {
			resid[i] = quantizeI32(d-base, q)
		}
		out = appendResiduals(out, resid)
	}
	return out
}

// DecodeP reconstructs the P-frame's attribute column. iFrame is the
// decoded (sorted) reference frame; nP must match the decoded P geometry's
// point count.
func DecodeP(dev *edgesim.Device, data []byte, iFrame []geom.Voxel) ([]geom.Color, error) {
	r := bytes.NewReader(data)
	nP64, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, ErrBadStream
	}
	segs64, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, ErrBadStream
	}
	q64, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, ErrBadStream
	}
	if nP64 == 0 {
		return nil, nil
	}
	const maxReasonable = 1 << 30
	if nP64 > maxReasonable || segs64 > maxReasonable || q64 > 1<<20 {
		return nil, ErrBadStream
	}
	nP, segs, q := int(nP64), int(segs64), int32(q64)
	nI := len(iFrame)
	if nI == 0 {
		return nil, errors.New("interframe: empty reference frame")
	}
	pBounds := attr.SegmentBounds(nP, segs)
	iBounds := attr.SegmentBounds(nI, segs)
	nBlocks := len(pBounds) - 1
	nIBlocks := len(iBounds) - 1

	bitmap := make([]byte, (nBlocks+7)/8)
	if _, err := io_ReadFull(r, bitmap); err != nil {
		return nil, ErrBadStream
	}
	refs := make([]int32, nBlocks)
	for j := 0; j < nBlocks; j++ {
		off, err := readVarint(r)
		if err != nil {
			return nil, ErrBadStream
		}
		center := j * nIBlocks / nBlocks
		ref := int64(center) + off
		if ref < 0 || ref >= int64(nIBlocks) {
			return nil, fmt.Errorf("interframe: reference block %d out of range", ref)
		}
		refs[j] = int32(ref)
	}

	out := make([]geom.Color, nP)
	dev.CPUSerial("InterParse", nP, edgesim.Cost{OpsPerItem: 40, BytesPerItem: 3}, func() {})
	// Delta payloads are sequential in the stream; parse serially, then
	// reconstruct blocks in parallel.
	type deltaBlock struct {
		bases [3]int32
		resid [3][]int32
	}
	deltas := make([]*deltaBlock, nBlocks)
	for j := 0; j < nBlocks; j++ {
		if bitmap[j/8]>>uint(j%8)&1 == 1 {
			continue
		}
		kp := pBounds[j+1] - pBounds[j]
		db := &deltaBlock{}
		for ch := 0; ch < 3; ch++ {
			base, err := readVarint(r)
			if err != nil {
				return nil, ErrBadStream
			}
			db.bases[ch] = int32(base)
			resid, err := unpackResiduals(r, kp)
			if err != nil {
				return nil, err
			}
			db.resid[ch] = resid
		}
		deltas[j] = db
	}

	dev.GPUKernel("ReconstructP", nBlocks, edgesim.Cost{
		OpsPerItem:   costDeltaQuant.OpsPerItem * float64(nP) / float64(nBlocks),
		BytesPerItem: costDeltaQuant.BytesPerItem * float64(nP) / float64(nBlocks),
	}, func(b0, b1 int) {
		for j := b0; j < b1; j++ {
			lo, hi := pBounds[j], pBounds[j+1]
			kp := hi - lo
			ilo, ihi := iBounds[refs[j]], iBounds[refs[j]+1]
			ki := ihi - ilo
			db := deltas[j]
			for i := 0; i < kp; i++ {
				ic := iFrame[ilo+pairIndex(i, kp, ki)].C
				if db == nil {
					out[lo+i] = ic // direct reuse
					continue
				}
				out[lo+i] = ic.Add(
					int(db.bases[0]+db.resid[0][i]*q),
					int(db.bases[1]+db.resid[1][i]*q),
					int(db.bases[2]+db.resid[2][i]*q),
				)
			}
		}
	})
	return out, nil
}
