package pcc

import "testing"

func TestDecodeProgressiveLevels(t *testing.T) {
	v := testVideo(t)
	f, err := v.Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions(IntraOnly)
	o.IntraAttr.Segments = 300
	enc := NewEncoderOptions(o)
	bits, _, err := enc.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	prevPoints, prevBytes := 0, 0
	for level := uint(1); level <= uint(bits.Depth); level++ {
		coarse, prefix, err := DecodeProgressive(bits, level)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if coarse.Len() < prevPoints {
			t.Fatalf("level %d: point count decreased (%d < %d)", level, coarse.Len(), prevPoints)
		}
		if prefix <= prevBytes {
			t.Fatalf("level %d: prefix not growing", level)
		}
		if err := coarse.Validate(); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		prevPoints, prevBytes = coarse.Len(), prefix
	}
	// Full-level decode must have as many points as the decoded frame.
	dec := NewDecoder(o)
	full, err := dec.Decode(bits)
	if err != nil {
		t.Fatal(err)
	}
	if prevPoints != full.Len() {
		t.Fatalf("full-level progressive %d points != full decode %d", prevPoints, full.Len())
	}
}

func TestDecodeProgressiveCoarseIsClose(t *testing.T) {
	v := testVideo(t)
	f, _ := v.Frame(0)
	o := DefaultOptions(IntraOnly)
	o.IntraAttr.Segments = 300
	enc := NewEncoderOptions(o)
	bits, _, err := enc.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	coarse, _, err := DecodeProgressive(bits, uint(bits.Depth)-3)
	if err != nil {
		t.Fatal(err)
	}
	// A level-(D-3) decode is within ~8 voxels of the original everywhere:
	// geometry PSNR must still be substantial.
	psnr, err := GeometryPSNR(f, coarse)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 40 {
		t.Fatalf("coarse PSNR %.1f dB too low", psnr)
	}
}

func TestDecodeProgressiveEntropyVariant(t *testing.T) {
	v := testVideo(t)
	f, _ := v.Frame(0)
	o := DefaultOptions(IntraOnly)
	o.IntraAttr.Segments = 300
	o.EntropyGeometry = true
	enc := NewEncoderOptions(o)
	bits, _, err := enc.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	coarse, _, err := DecodeProgressive(bits, 4)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Len() == 0 {
		t.Fatal("entropy-coded stream must still LoD-decode (after full decompression)")
	}
}

// TestDecodeProgressiveLayered pins the layered fast path: the reported
// prefix is the sum of the consumed layers' wire lengths straight from the
// layer directory — a base-level decode reads exactly the base layer's
// bytes, never the rest of the stream — and the full-subscription decode
// matches the regular full decode's geometry.
func TestDecodeProgressiveLayered(t *testing.T) {
	v := testVideo(t)
	f, err := v.Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions(IntraOnly)
	o.IntraAttr.Segments = 300
	o.Layers = 3
	enc := NewEncoderOptions(o)
	bits, _, err := enc.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Layered() {
		t.Fatal("frame not layered")
	}
	ld := bits.Layer
	spans := ld.Units[0]

	// Base decode: the prefix must be the directory's layer-0 geometry
	// length, byte-exact.
	base, prefix, err := DecodeProgressive(bits, uint(ld.BaseLevel))
	if err != nil {
		t.Fatal(err)
	}
	if prefix != int(spans[0].GeomLen) {
		t.Fatalf("base prefix %d bytes, directory says layer 0 is %d", prefix, spans[0].GeomLen)
	}
	if base.Len() == 0 {
		t.Fatal("base decode produced no points")
	}

	// Each enhancement level consumes exactly one more layer's bytes.
	want, prevPoints := int(spans[0].GeomLen), base.Len()
	for l := 1; l < int(ld.Layers); l++ {
		want += int(spans[l].GeomLen)
		coarse, prefix, err := DecodeProgressive(bits, uint(ld.BaseLevel)+uint(l))
		if err != nil {
			t.Fatalf("layer %d: %v", l, err)
		}
		if prefix != want {
			t.Fatalf("layer %d: prefix %d bytes, directory sum is %d", l, prefix, want)
		}
		if coarse.Len() < prevPoints {
			t.Fatalf("layer %d: point count decreased (%d < %d)", l, coarse.Len(), prevPoints)
		}
		prevPoints = coarse.Len()
	}

	// Full-subscription progressive geometry == the regular full decode's.
	full, err := NewDecoder(o).Decode(bits)
	if err != nil {
		t.Fatal(err)
	}
	if prevPoints != full.Len() {
		t.Fatalf("full-level layered progressive %d points != full decode %d", prevPoints, full.Len())
	}

	// A level request cut inside the base rounds up to the base layer, not
	// down to a partial entropy unit.
	_, p1, err := DecodeProgressive(bits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != int(spans[0].GeomLen) {
		t.Fatalf("level-1 prefix %d, want whole base layer %d", p1, spans[0].GeomLen)
	}

	// Tiled layered frames have per-tile streams: no frame-wide prefix.
	o.Tiles = 4
	tbits, _, err := NewEncoderOptions(o).Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if tbits.Tiled() {
		if _, _, err := DecodeProgressive(tbits, 4); err != ErrNotProgressive {
			t.Fatalf("tiled layered frame: got %v, want ErrNotProgressive", err)
		}
	}
}

func TestDecodeProgressiveRejectsBaseline(t *testing.T) {
	v := testVideo(t)
	f, _ := v.Frame(0)
	enc := NewEncoderOptions(DefaultOptions(TMC13))
	bits, _, err := enc.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeProgressive(bits, 4); err == nil {
		t.Fatal("TMC13 stream must not progressively decode")
	}
}
