package metrics

import (
	"sync"
	"testing"
)

func TestShardCountersPeakViewers(t *testing.T) {
	c := NewShardCounters(3)
	if c.Shard() != 3 {
		t.Fatalf("Shard()=%d, want 3", c.Shard())
	}
	for i := 0; i < 5; i++ {
		c.ViewerAttached()
	}
	c.ViewerDetached()
	c.ViewerDetached()
	c.ViewerAttached()
	s := c.Snapshot()
	if s.Viewers != 4 || s.PeakViewers != 5 {
		t.Fatalf("viewers=%d peak=%d, want 4/5", s.Viewers, s.PeakViewers)
	}
}

func TestShardCountersPeakConcurrent(t *testing.T) {
	c := NewShardCounters(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.ViewerAttached()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Viewers != 800 || s.PeakViewers != 800 {
		t.Fatalf("viewers=%d peak=%d, want 800/800", s.Viewers, s.PeakViewers)
	}
}

func TestShardCountersRelayAndCache(t *testing.T) {
	c := NewShardCounters(1)
	c.FrameRelayed(10)
	c.FrameRelayed(7)
	c.CacheResize(3, 48)
	c.CacheResize(2, 32) // gauges overwrite, not accumulate
	c.RetxHit()
	c.RetxHit()
	c.RetxMiss()
	c.RefreshCoalesced()
	c.FeedbackReport()
	s := c.Snapshot()
	if s.FramesRelayed != 2 || s.Enqueues != 17 {
		t.Fatalf("relayed=%d enqueues=%d, want 2/17", s.FramesRelayed, s.Enqueues)
	}
	if s.CacheFrames != 2 || s.CachePackets != 32 {
		t.Fatalf("cache gauges %d/%d, want 2/32", s.CacheFrames, s.CachePackets)
	}
	if s.RetxHits != 2 || s.RetxMisses != 1 {
		t.Fatalf("retx %d/%d, want 2/1", s.RetxHits, s.RetxMisses)
	}
	if s.RefreshesCoalesced != 1 || s.FeedbackReports != 1 {
		t.Fatalf("coalesced=%d reports=%d, want 1/1", s.RefreshesCoalesced, s.FeedbackReports)
	}
}
