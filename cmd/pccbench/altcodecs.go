package main

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/edgesim"
	"repro/internal/entropy"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/morton"
	"repro/internal/octree"
	"repro/internal/paroctree"
	"repro/internal/predlift"
	"repro/internal/raht"
	"repro/internal/trace"
)

// runAltCodecs compares the full family of geometry and attribute codecs
// the paper situates itself against (Sec. II-B: octree vs kd-tree
// structures; RAHT vs Predicting Transform vs the proposed Base+Deltas) on
// one frame — size, simulated latency, and whether the codec parallelizes.
func runAltCodecs(cfg benchConfig) error {
	spec := cfg.Videos[0]
	frames, err := loadFrames(spec, cfg.Scale, 1)
	if err != nil {
		return err
	}
	vc := frames[0]
	keyed := morton.EncodeCloud(vc)
	morton.Sort(keyed)
	keyed = morton.Dedup(keyed)
	sortedCloud := &geom.VoxelCloud{Depth: vc.Depth, Voxels: morton.Voxels(keyed)}
	rawGeoBytes := 12 * len(keyed)
	rawAttrBytes := 3 * len(keyed)

	// --- geometry codecs ---
	gt := trace.NewTable(
		fmt.Sprintf("Geometry codecs, %s, %d pts (raw coordinates %.0f KB)",
			spec.Name, len(keyed), float64(rawGeoBytes)/1e3),
		"codec", "execution", "bytes", "%of-raw", "sim ms")

	{ // sequential octree + entropy (TMC13's structure)
		dev := edgesim.NewXavier(edgesim.Mode15W)
		enc := newBenchEncoder(dev, cfg)
		ef, _, err := enc.tmc13Geometry(sortedCloud)
		if err != nil {
			return err
		}
		gt.Row("octree (sequential, entropy)", "CPU serial", len(ef), pct(len(ef), rawGeoBytes), simMS(dev))
	}
	{ // kd-tree coder
		dev := edgesim.NewXavier(edgesim.Mode15W)
		data, err := kdtree.Encode(dev, sortedCloud)
		if err != nil {
			return err
		}
		got, err := kdtree.Decode(edgesim.NewXavier(edgesim.Mode15W), data, vc.Depth)
		if err != nil || len(got) != len(keyed) {
			return fmt.Errorf("kdtree round trip: %d pts, %v", len(got), err)
		}
		gt.Row("kd-tree (Gandoin-Devillers)", "CPU serial", len(data), pct(len(data), rawGeoBytes), simMS(dev))
	}
	{ // proposed parallel octree, fast path
		dev := edgesim.NewXavier(edgesim.Mode15W)
		res, err := paroctree.Build(dev, sortedCloud)
		if err != nil {
			return err
		}
		stream := res.Tree.Serialize(dev)
		gt.Row("parallel octree (proposed)", "GPU parallel", len(stream), pct(len(stream), rawGeoBytes), simMS(dev))
	}
	emit(gt)
	fmt.Println()

	// --- attribute codecs ---
	at := trace.NewTable(
		fmt.Sprintf("Attribute codecs, %s (raw attributes %.0f KB)", spec.Name, float64(rawAttrBytes)/1e3),
		"codec", "execution", "bytes", "%of-raw", "sim ms")
	codes := morton.Codes(keyed)
	colors := make([]geom.Color, len(keyed))
	for i, k := range keyed {
		colors[i] = k.Voxel.C
	}
	{ // RAHT
		dev := edgesim.NewXavier(edgesim.Mode15W)
		data, err := raht.Codec{QStep: 2}.Encode(dev, codes, colors, vc.Depth)
		if err != nil {
			return err
		}
		at.Row("RAHT (TMC13)", "CPU serial", len(data), pct(len(data), rawAttrBytes), simMS(dev))
	}
	{ // Predicting Transform
		dev := edgesim.NewXavier(edgesim.Mode15W)
		data, err := predlift.Encode(dev, keyed, predlift.DefaultParams())
		if err != nil {
			return err
		}
		at.Row("Predicting Transform (G-PCC)", "CPU serial", len(data), pct(len(data), rawAttrBytes), simMS(dev))
	}
	{ // Lifting Transform
		dev := edgesim.NewXavier(edgesim.Mode15W)
		data, err := predlift.EncodeLifting(dev, keyed, predlift.DefaultLiftParams())
		if err != nil {
			return err
		}
		at.Row("Lifting Transform (G-PCC)", "CPU serial", len(data), pct(len(data), rawAttrBytes), simMS(dev))
	}
	{ // proposed Base+Deltas
		dev := edgesim.NewXavier(edgesim.Mode15W)
		p := attr.DefaultParams()
		p.Segments = max(8, int(float64(p.Segments)*cfg.Scale))
		data, err := attr.Encode(dev, colors, p)
		if err != nil {
			return err
		}
		at.Row("Base+Deltas (proposed)", "GPU parallel", len(data), pct(len(data), rawAttrBytes), simMS(dev))
	}
	emit(at)
	fmt.Println("the sequential codecs compress harder; the proposed codecs are orders of magnitude faster —")
	fmt.Println("the latency/ratio trade the paper argues is the right one at the edge.")
	return nil
}

func pct(n, raw int) string { return fmt.Sprintf("%.1f%%", float64(n)/float64(raw)*100) }

func simMS(dev *edgesim.Device) float64 { return dev.SimTime().Seconds() * 1000 }

// benchEncoder adapts the codec package's internal geometry path for the
// table above.
type benchEncoder struct {
	dev *edgesim.Device
	cfg benchConfig
}

func newBenchEncoder(dev *edgesim.Device, cfg benchConfig) *benchEncoder {
	return &benchEncoder{dev: dev, cfg: cfg}
}

// tmc13Geometry runs the baseline sequential geometry pipeline standalone.
func (b *benchEncoder) tmc13Geometry(vc *geom.VoxelCloud) ([]byte, int, error) {
	tr, err := octree.Build(vc)
	if err != nil {
		return nil, 0, err
	}
	b.dev.CPUSerial("OctreeConstruct", vc.Len()*int(vc.Depth), edgesim.Cost{OpsPerItem: 197, BytesPerItem: 12}, func() {})
	var stream []byte
	b.dev.CPUSerial("OctreeSerialize", tr.NumNodes, edgesim.Cost{OpsPerItem: 100, BytesPerItem: 16}, func() {
		stream = tr.Serialize()
	})
	var packed []byte
	b.dev.CPUSerial("GeomEntropy", len(stream), edgesim.Cost{OpsPerItem: 150, BytesPerItem: 2}, func() {
		packed = entropy.CompressBytes(stream)
	})
	return packed, tr.NumNodes, nil
}
