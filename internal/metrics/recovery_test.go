package metrics

import (
	"sync"
	"testing"
)

func TestRecoveryCountersSnapshot(t *testing.T) {
	var c RecoveryCounters
	c.PacketReceived()
	c.PacketReceived()
	c.PacketCorrupt()
	c.PacketDuplicate()
	c.RetransmitReceived()
	c.NACKSent(3)
	c.NACKSent(1)
	c.NACKGiveUp()
	c.RefreshRequest()
	c.FrameDecoded()
	c.FrameDecoded()
	c.FrameConcealed()
	c.FrameSkipped()

	s := c.Snapshot()
	want := RecoverySnapshot{
		PacketsReceived:     2,
		PacketsCorrupt:      1,
		PacketsDuplicate:    1,
		RetransmitsReceived: 1,
		NACKsSent:           2,
		NACKSeqs:            4,
		NACKGiveUps:         1,
		RefreshRequests:     1,
		FramesDecoded:       2,
		FramesConcealed:     1,
		FramesSkipped:       1,
	}
	if s != want {
		t.Errorf("snapshot %+v, want %+v", s, want)
	}
	if s.Frames() != 4 {
		t.Errorf("Frames() = %d, want 4", s.Frames())
	}
	if got := s.DecodedRatio(); got != 0.5 {
		t.Errorf("DecodedRatio() = %v, want 0.5", got)
	}
	if got := (RecoverySnapshot{}).DecodedRatio(); got != 1 {
		t.Errorf("empty DecodedRatio() = %v, want 1", got)
	}
}

// Counters must be scrape-safe while a transport goroutine is updating.
func TestRecoveryCountersConcurrent(t *testing.T) {
	var c RecoveryCounters
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.PacketReceived()
				c.FrameDecoded()
				_ = c.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.PacketsReceived != 4000 || s.FramesDecoded != 4000 {
		t.Errorf("lost updates: %+v", s)
	}
}
