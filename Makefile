# Common targets for the pcc reproduction.

GO ?= go

.PHONY: all build test race bench vet fmt fmt-check fuzz-smoke ci experiments experiments-full fanout fanout-scale adapt fec layers clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Fails when any file needs gofmt (the CI drift check).
fmt-check:
	@drift=$$(gofmt -l .); if [ -n "$$drift" ]; then \
		echo "gofmt drift in:" >&2; echo "$$drift" >&2; exit 1; fi

# 20 s of fuzzing per hardened decoder entry point.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=20s ./internal/attr
	$(GO) test -run='^$$' -fuzz=FuzzReadFrameFrom -fuzztime=20s ./internal/codec
	$(GO) test -run='^$$' -fuzz=FuzzParseLayerDirectory -fuzztime=20s ./internal/codec
	$(GO) test -run='^$$' -fuzz=FuzzParseFeedback -fuzztime=20s ./pcc/stream
	$(GO) test -run='^$$' -fuzz=FuzzParseParity -fuzztime=20s ./pcc/stream
	$(GO) test -run='^$$' -fuzz=FuzzParsePacket -fuzztime=20s ./pcc/stream

# Everything the CI gate runs (see .github/workflows/ci.yml), including the
# fan-out serving smoke (8 viewers against the aggregate frames/s floor)
# and the CI-sized relay-tree viewer-scaling gate.
ci: build vet fmt-check test race fuzz-smoke fec adapt fanout-scale layers
	$(GO) run ./cmd/pccbench -scale 0.05 all
	$(GO) run ./cmd/pccbench -viewers 8 -frames 20 -floor 80 fanout

# One benchmark per paper table/figure (simulated edge-board metrics).
bench:
	$(GO) test -bench=. -benchmem ./...

# Quick sweep of every experiment at 10% dataset scale (~2 min).
experiments:
	$(GO) run ./cmd/pccbench -scale 0.1 all

# Multi-viewer serving fan-out sweep, 1 -> 64 viewers (pccbench fanout).
fanout:
	$(GO) run ./cmd/pccbench fanout

# Relay-tree viewer-scaling gate, CI-sized (64 -> 2048 viewers) with the
# per-viewer CPU-cost ceiling and max/min cost-ratio budgets CI enforces.
# The full 64 -> 16k sweep that maintains BENCH_6.json is
#   go run ./cmd/pccbench -ratio 2 -ceiling 100 -benchout BENCH_6.json fanout-scale
fanout-scale:
	$(GO) test -race -count=1 -run 'TestServerShardChurn1k|TestServerCloseDuringChurn|TestServerDetachInFlight|TestRingFrozenBytes|TestServerShardPartition' ./pcc/stream
	$(GO) run ./cmd/pccbench -maxviewers 2048 -ceiling 100 -ratio 2 fanout-scale

# Congestion-adaptation step response against the checked-in convergence
# contract (GOP reacts within 24 frames of the loss step, the probing
# upswitch returns every knob to baseline within 30 frames of the loss
# clearing — at most half the passive decay, measured against a probing-off
# control run — and the settled decoded ratio stays >= 0.70).
adapt:
	$(GO) run ./cmd/pccbench -scale 0.008 -frames 96 adapt

# Zero-RTT FEC loss-repair gate: the parity/repair unit and integration
# tests under the race detector, then the loss sweep with parity armed
# (decoded ratio >= 0.99 at up to 5% random loss, single losses repaired
# with zero retransmit round trips).
fec:
	$(GO) test -race -count=1 -run 'TestParity|TestParseParity|TestFEC|TestServerFEC|TestFeedbackNetsRecoveredLosses|TestAdaptiveParity' ./pcc/stream
	$(GO) test -race -count=1 -run 'TestParityKnob|TestParityGroupLen|TestProbe' ./internal/codec
	$(GO) test -race -count=1 -run 'TestFaultyLink' ./internal/linksim
	$(GO) run ./cmd/pccbench -scale 0.008 -frames 60 -fec loss

# Layered multi-rate serving gate: the differential layer-conformance and
# per-viewer subscription tests under the race detector, then the layers
# experiment against the committed BENCH_10.json (subscription sweep wire
# ratios plus the split-link run: clean viewer >= 0.99 decoded at full
# quality while the lossy viewer sheds >= 1 layer, shared encoder pinned).
layers:
	$(GO) test -race -count=1 -run 'Layer' ./internal/codec ./pcc/stream ./pcc
	$(GO) run ./cmd/pccbench -baseline BENCH_10.json layers

# Paper-scale canonical run (~30-45 min); regenerates results_full_scale.txt.
experiments-full:
	$(GO) run ./cmd/pccbench -scale 1.0 -frames 3 -csv results_csv all | tee results_full_scale.txt

clean:
	rm -rf results_csv
