package interframe

import "testing"

// FuzzDecodeP drives the inter-frame decoder with arbitrary bytes against a
// fixed reference frame: errors are fine, panics and runaway allocations
// are not.
func FuzzDecodeP(f *testing.F) {
	d := dev()
	iF := sortedFrame(41, 300)
	pF := jitterColors(iF, 42, 6)
	for _, th := range []float64{-1, 50, 1e9} {
		data, _, err := EncodeP(d, iF, pF, Params{Segments: 20, Candidates: 10, Threshold: th, QStep: 2})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecodeP(d, data, iF)
		if err != nil {
			return
		}
		if len(out) > 1<<22 {
			t.Fatalf("decoder produced %d colours from %d bytes", len(out), len(data))
		}
	})
}
