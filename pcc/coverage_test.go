package pcc

import (
	"bytes"
	"testing"
)

func TestOnVariantsShareDevice(t *testing.T) {
	v := testVideo(t)
	f, _ := v.Frame(0)
	dev := NewDevice(Mode15W)
	o := DefaultOptions(IntraOnly)
	o.IntraAttr.Segments = 200

	var buf bytes.Buffer
	w := NewStreamWriterOn(&buf, dev, o)
	if _, err := w.WriteFrame(f); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Device() != dev || dev.SimTime() <= 0 {
		t.Fatal("writer must account on the supplied device")
	}

	rdev := NewDevice(Mode10W)
	r, err := NewStreamReaderOn(&buf, rdev)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if r.Device() != rdev || rdev.SimTime() <= 0 {
		t.Fatal("reader must account on the supplied device")
	}

	ddev := NewDevice(Mode15W)
	dec := NewDecoderOn(ddev, o)
	if dec.Device() != ddev {
		t.Fatal("NewDecoderOn device")
	}
	dec.Reset()
}

func TestStreamReaderRejectsGarbage(t *testing.T) {
	if _, err := NewStreamReader(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage stream must fail")
	}
	if _, err := NewStreamReaderOn(bytes.NewReader(nil), NewDevice(Mode15W)); err == nil {
		t.Fatal("empty stream must fail")
	}
}

func TestAttributePSNRWrapper(t *testing.T) {
	a := []Color{{R: 10}, {R: 20}}
	luma, rgb, err := AttributePSNR(a, a)
	if err != nil || luma < 100 || rgb < 100 {
		t.Fatalf("identical colours: %v %v %v", luma, rgb, err)
	}
	if _, _, err := AttributePSNR(a, a[:1]); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestVideoAccessors(t *testing.T) {
	v := testVideo(t)
	if v.Name() != "redandblack" {
		t.Fatalf("Name = %q", v.Name())
	}
	if v.Frames() != 300 {
		t.Fatalf("Frames = %d", v.Frames())
	}
	if v.TargetPoints() <= 0 {
		t.Fatal("TargetPoints")
	}
}

func TestDesignsExported(t *testing.T) {
	seen := map[Design]bool{}
	for _, d := range Designs() {
		seen[d] = true
	}
	for _, d := range []Design{TMC13, CWIPC, IntraOnly, IntraInterV1, IntraInterV2} {
		if !seen[d] {
			t.Fatalf("design %v missing from Designs()", d)
		}
	}
}
