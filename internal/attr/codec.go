package attr

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/edgesim"
	"repro/internal/entropy"
	"repro/internal/geom"
)

// Params configures the intra-frame attribute codec.
type Params struct {
	// Segments is the number of macro blocks per frame (paper: 30000 for
	// intra-only, Sec. VI-B).
	Segments int
	// QStep is the residual quantization step (1 = lossless residuals).
	QStep int
	// Layers selects 1- or 2-layer encoding (paper: 2).
	Layers int
	// Entropy additionally arithmetic-codes the packed stream. The paper
	// discards this stage in the fast path (Sec. IV-B3); it exists here for
	// the ablation experiment.
	Entropy bool
	// YCoCg applies the reversible YCoCg-R colour transform before
	// segmentation (decorrelated channels -> smaller residuals).
	YCoCg bool
}

// DefaultParams mirrors the paper's intra-only configuration.
func DefaultParams() Params {
	return Params{Segments: 30000, QStep: 4, Layers: 2}
}

func (p Params) normalized() Params {
	if p.Segments < 1 {
		p.Segments = 1
	}
	if p.QStep < 1 {
		p.QStep = 1
	}
	if p.Layers != 2 {
		p.Layers = 1
	}
	return p
}

// Calibrated kernel costs (per point, per channel-layer); they land the
// full two-layer encode at the paper's ~53 ms for ~0.8 M points.
var (
	costMedianBase  = edgesim.Cost{OpsPerItem: 178, BytesPerItem: 8}
	costResidualQ   = edgesim.Cost{OpsPerItem: 59, BytesPerItem: 8}
	costPackBits    = edgesim.Cost{OpsPerItem: 89, BytesPerItem: 3}
	costUnpackBits  = edgesim.Cost{OpsPerItem: 40, BytesPerItem: 3}
	costReconstr    = edgesim.Cost{OpsPerItem: 30, BytesPerItem: 8}
	costEntropyByte = edgesim.Cost{OpsPerItem: 150, BytesPerItem: 2}
)

// ErrBadStream reports a malformed attribute stream.
var ErrBadStream = errors.New("attr: malformed stream")

// Encode compresses the attribute column of a Morton-sorted frame.
// colors[i] must correspond to the i-th sorted voxel.
func Encode(dev *edgesim.Device, colors []geom.Color, p Params) ([]byte, error) {
	p = p.normalized()
	n := len(colors)
	var buf bytes.Buffer
	writeUvarint(&buf, uint64(n))
	writeUvarint(&buf, uint64(p.Segments))
	writeUvarint(&buf, uint64(p.QStep))
	buf.WriteByte(byte(p.Layers))
	if p.YCoCg {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	if n == 0 {
		return framePayload(dev, buf.Bytes(), p)
	}
	bounds := SegmentBounds(n, p.Segments)
	nSeg := len(bounds) - 1
	perSegCost := func(c edgesim.Cost) edgesim.Cost {
		scale := float64(n) / float64(nSeg)
		return edgesim.Cost{OpsPerItem: c.OpsPerItem * scale, BytesPerItem: c.BytesPerItem * scale}
	}

	channels := extractChannels(colors, p.YCoCg)
	for ch := 0; ch < 3; ch++ {
		values := channels[ch]

		// Layer 1: Mid + Residual + Quantize, parallel over segments
		// (Sec. IV-A2: "these computations are light-weight, and can be
		// performed in parallel").
		l1 := layerData{bases: make([]int32, nSeg), qd: make([]int32, n)}
		dev.GPUKernel("MidResidual", nSeg, perSegCost(costMedianBase), func(s0, s1 int) {
			encodeLayerRange(values, bounds, int32(p.QStep), &l1, s0, s1)
		})
		dev.GPUNoop("Quantize", n, costResidualQ)

		final := l1
		var l2 layerData
		if p.Layers == 2 {
			// Layer 2: re-encode the residual stream (deltas as new
			// attributes, Sec. VI-B), losslessly (q=1).
			l2 = layerData{bases: make([]int32, nSeg), qd: make([]int32, n)}
			dev.GPUKernel("MidResidual_L2", nSeg, perSegCost(costMedianBase), func(s0, s1 int) {
				encodeLayerRange(l1.qd, bounds, 1, &l2, s0, s1)
			})
			final = l2
		}

		// Pack: bases (layer 1 [+ layer 2]) then per-segment fixed-width
		// residuals.
		packBases(&buf, l1.bases)
		if p.Layers == 2 {
			packBases(&buf, l2.bases)
		}
		segStreams := make([][]byte, nSeg)
		dev.GPUKernel("PackBits", nSeg, perSegCost(costPackBits), func(s0, s1 int) {
			for s := s0; s < s1; s++ {
				lo, hi := bounds[s], bounds[s+1]
				seg := final.qd[lo:hi]
				w := widthFor(seg)
				bw := &bitWriter{}
				for _, v := range seg {
					bw.write(uint64(zig(v)), w)
				}
				out := make([]byte, 0, 1+len(bw.buf)+1)
				out = append(out, byte(w))
				out = append(out, bw.flush()...)
				segStreams[s] = out
			}
		})
		for _, s := range segStreams {
			buf.Write(s)
		}
	}
	return framePayload(dev, buf.Bytes(), p)
}

// framePayload optionally entropy-codes the packed payload, and prefixes a
// 1-byte flag so the decoder knows.
func framePayload(dev *edgesim.Device, payload []byte, p Params) ([]byte, error) {
	if !p.Entropy {
		return append([]byte{0}, payload...), nil
	}
	var out []byte
	dev.CPUSerial("AttrEntropy", len(payload), costEntropyByte, func() {
		out = entropy.CompressBytes(payload)
	})
	return append([]byte{1}, out...), nil
}

// Decode reconstructs the attribute column for n voxels in sorted order.
func Decode(dev *edgesim.Device, data []byte) ([]geom.Color, error) {
	if len(data) == 0 {
		return nil, ErrBadStream
	}
	payload := data[1:]
	if data[0] == 1 {
		var err error
		dev.CPUSerial("AttrEntropyDecode", len(payload), costEntropyByte, func() {
			payload, err = entropy.DecompressBytes(payload)
		})
		if err != nil {
			return nil, err
		}
	} else if data[0] != 0 {
		return nil, ErrBadStream
	}

	r := bytes.NewReader(payload)
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	segs, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	qstep, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	layersB, err := r.ReadByte()
	if err != nil {
		return nil, ErrBadStream
	}
	layers := int(layersB)
	if layers != 1 && layers != 2 {
		return nil, fmt.Errorf("attr: bad layer count %d", layers)
	}
	ycocgB, err := r.ReadByte()
	if err != nil || ycocgB > 1 {
		return nil, ErrBadStream
	}
	ycocg := ycocgB == 1
	if n == 0 {
		return nil, nil
	}
	const maxReasonable = 1 << 30
	if n > maxReasonable || segs > maxReasonable || qstep > 1<<20 {
		return nil, ErrBadStream
	}
	bounds := SegmentBounds(int(n), int(segs))
	nSeg := len(bounds) - 1

	// Stream parsing walks segment headers serially (the "sub-optimal"
	// decode path the paper measures at ~70 ms/frame end-to-end).
	dev.CPUSerial("AttrParse", int(n), edgesim.Cost{OpsPerItem: 55, BytesPerItem: 3}, func() {})

	out := make([]geom.Color, n)
	decoded := make([][]int32, 3)
	for ch := 0; ch < 3; ch++ {
		bases1, err := unpackBases(r, nSeg)
		if err != nil {
			return nil, err
		}
		var bases2 []int32
		if layers == 2 {
			if bases2, err = unpackBases(r, nSeg); err != nil {
				return nil, err
			}
		}
		// Per-segment unpack (reading is sequential over the stream, so
		// splitting happens first, then reconstruction is parallel).
		qd := make([]int32, n)
		for s := 0; s < nSeg; s++ {
			lo, hi := bounds[s], bounds[s+1]
			wb, err := r.ReadByte()
			if err != nil {
				return nil, ErrBadStream
			}
			w := uint(wb)
			if w > 33 {
				return nil, ErrBadStream
			}
			nbytes := (uint(hi-lo)*w + 7) / 8
			segBytes := make([]byte, nbytes)
			if _, err := readFull(r, segBytes); err != nil {
				return nil, ErrBadStream
			}
			br := &bitReader{buf: segBytes}
			for i := lo; i < hi; i++ {
				v, ok := br.read(w)
				if !ok {
					return nil, ErrBadStream
				}
				qd[i] = unzig(uint32(v))
			}
		}
		dev.GPUNoop("UnpackBits", int(n), costUnpackBits)

		values := make([]int32, n)
		dev.GPUKernel("Reconstruct", nSeg, edgesim.Cost{
			OpsPerItem:   costReconstr.OpsPerItem * float64(n) / float64(nSeg),
			BytesPerItem: costReconstr.BytesPerItem * float64(n) / float64(nSeg),
		}, func(s0, s1 int) {
			for s := s0; s < s1; s++ {
				lo, hi := bounds[s], bounds[s+1]
				for i := lo; i < hi; i++ {
					d := qd[i]
					if layers == 2 {
						d = bases2[s] + d // invert layer 2 (q=1)
					}
					values[i] = bases1[s] + d*int32(qstep)
				}
			}
		})
		decoded[ch] = values
	}
	assembleColors(out, decoded, ycocg)
	return out, nil
}

// extractChannels splits colours into three int32 channel columns, in RGB
// or YCoCg-R space.
func extractChannels(colors []geom.Color, ycocg bool) [3][]int32 {
	n := len(colors)
	var chans [3][]int32
	for ch := range chans {
		chans[ch] = make([]int32, n)
	}
	for i, c := range colors {
		if ycocg {
			y, co, cg := rgbToYCoCg(int32(c.R), int32(c.G), int32(c.B))
			chans[0][i], chans[1][i], chans[2][i] = y, co, cg
		} else {
			chans[0][i], chans[1][i], chans[2][i] = int32(c.R), int32(c.G), int32(c.B)
		}
	}
	return chans
}

// assembleColors converts decoded channel columns back to RGB colours.
func assembleColors(out []geom.Color, chans [][]int32, ycocg bool) {
	for i := range out {
		a, b, c := chans[0][i], chans[1][i], chans[2][i]
		if ycocg {
			a, b, c = yCoCgToRGB(a, b, c)
		}
		out[i] = geom.Color{R: clampU8i(a), G: clampU8i(b), B: clampU8i(c)}
	}
}

func clampU8i(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func packBases(buf *bytes.Buffer, bases []int32) {
	w := widthFor(bases)
	buf.WriteByte(byte(w))
	bw := &bitWriter{}
	for _, b := range bases {
		bw.write(uint64(zig(b)), w)
	}
	buf.Write(bw.flush())
}

func unpackBases(r *bytes.Reader, nSeg int) ([]int32, error) {
	wb, err := r.ReadByte()
	if err != nil {
		return nil, ErrBadStream
	}
	w := uint(wb)
	if w > 33 {
		return nil, ErrBadStream
	}
	nbytes := (uint(nSeg)*w + 7) / 8
	raw := make([]byte, nbytes)
	if _, err := readFull(r, raw); err != nil {
		return nil, ErrBadStream
	}
	br := &bitReader{buf: raw}
	out := make([]int32, nSeg)
	for i := range out {
		v, ok := br.read(w)
		if !ok {
			return nil, ErrBadStream
		}
		out[i] = unzig(uint32(v))
	}
	return out, nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func readUvarint(r *bytes.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, ErrBadStream
	}
	return v, nil
}

func readFull(r *bytes.Reader, p []byte) (int, error) {
	total := 0
	for total < len(p) {
		n, err := r.Read(p[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
