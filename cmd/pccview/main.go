// Command pccview renders point-cloud frames to PNG images — the "Render
// and Display" stage of the paper's pipeline (Fig. 1), and the tool behind
// Fig. 10a-style visual comparisons of original vs decoded frames.
//
// Render a raw .pcf frame (from pccgen) or every frame of a .pcv stream:
//
//	pccview -o frame.png frames/loot-000.pcf
//	pccview -view side -splat 2 -o out video.pcv
//
// With two .pcf inputs, it renders both plus their per-pixel difference:
//
//	pccview -o cmp original.pcf decoded.pcf
package main

import (
	"flag"
	"fmt"
	"image"
	"image/png"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/render"
)

func main() {
	var (
		out   = flag.String("o", "out", "output PNG path (single input) or prefix (stream/pair)")
		size  = flag.Int("size", 512, "image width and height")
		view  = flag.String("view", "front", "camera axis: front, side, top")
		splat = flag.Int("splat", 1, "splat radius in pixels")
	)
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		fmt.Fprintln(os.Stderr, "usage: pccview [flags] frame.{pcf|ply} | video.pcv | orig.pcf decoded.pcf")
		os.Exit(2)
	}
	opts := render.DefaultOptions()
	opts.Width, opts.Height = *size, *size
	opts.SplatRadius = *splat
	switch strings.ToLower(*view) {
	case "front":
		opts.View = render.FrontZ
	case "side":
		opts.View = render.SideX
	case "top":
		opts.View = render.TopY
	default:
		fatal(fmt.Errorf("unknown view %q", *view))
	}

	if flag.NArg() == 2 {
		renderPair(flag.Arg(0), flag.Arg(1), *out, opts)
		return
	}
	path := flag.Arg(0)
	if strings.HasSuffix(path, ".pcv") {
		renderStream(path, *out, opts)
		return
	}
	vc := mustReadPCF(path)
	target := *out
	if !strings.HasSuffix(target, ".png") {
		target += ".png"
	}
	writePNGFrame(vc, target, opts)
}

func renderPair(origPath, decodedPath, prefix string, opts render.Options) {
	orig := mustReadPCF(origPath)
	decoded := mustReadPCF(decodedPath)
	a := mustRender(orig, opts)
	b := mustRender(decoded, opts)
	d, err := render.DiffImage(a, b)
	if err != nil {
		fatal(err)
	}
	writePNG(a, prefix+"-original.png")
	writePNG(b, prefix+"-decoded.png")
	writePNG(d, prefix+"-diff.png")
}

func renderStream(path, prefix string, opts render.Options) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	vr, err := core.NewVideoReader(f, edgesim.NewXavier(edgesim.Mode15W))
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(prefix+"-000.png"), 0o755); err != nil && filepath.Dir(prefix) != "." {
		fatal(err)
	}
	for i := 0; ; i++ {
		vc, _, err := vr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		writePNGFrame(vc, fmt.Sprintf("%s-%03d.png", prefix, i), opts)
	}
}

func writePNGFrame(vc *geom.VoxelCloud, path string, opts render.Options) {
	writePNG(mustRender(vc, opts), path)
}

func mustRender(vc *geom.VoxelCloud, opts render.Options) *image.RGBA {
	img, err := render.Render(vc, opts)
	if err != nil {
		fatal(err)
	}
	return img
}

func writePNG(img *image.RGBA, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := png.Encode(f, img); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

func mustReadPCF(path string) *geom.VoxelCloud {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var vc *geom.VoxelCloud
	var rerr error
	if strings.HasSuffix(strings.ToLower(path), ".ply") {
		vc, rerr = dataset.ReadPLY(f, dataset.Depth)
	} else {
		vc, rerr = dataset.ReadFrame(f)
	}
	if rerr != nil {
		fatal(fmt.Errorf("%s: %w", path, rerr))
	}
	return vc
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pccview:", err)
	os.Exit(1)
}
