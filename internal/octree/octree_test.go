package octree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/morton"
)

func randomCloud(seed int64, n int, depth uint) *geom.VoxelCloud {
	rng := rand.New(rand.NewSource(seed))
	limit := int(uint32(1) << depth)
	seen := map[[3]uint32]bool{}
	vc := &geom.VoxelCloud{Depth: depth}
	for len(vc.Voxels) < n {
		v := geom.Voxel{
			X: uint32(rng.Intn(limit)),
			Y: uint32(rng.Intn(limit)),
			Z: uint32(rng.Intn(limit)),
		}
		k := [3]uint32{v.X, v.Y, v.Z}
		if seen[k] {
			continue
		}
		seen[k] = true
		vc.Voxels = append(vc.Voxels, v)
	}
	return vc
}

func TestNewTreeValidation(t *testing.T) {
	for _, d := range []uint{0, 22} {
		if _, err := NewTree(d); err == nil {
			t.Errorf("NewTree(%d): want error", d)
		}
	}
	if _, err := NewTree(10); err != nil {
		t.Fatal(err)
	}
}

func TestInsertCountsAndDuplicates(t *testing.T) {
	tr, _ := NewTree(4)
	if !tr.Insert(1, 2, 3) {
		t.Fatal("first insert must create")
	}
	if tr.Insert(1, 2, 3) {
		t.Fatal("duplicate insert must not create")
	}
	if tr.NumPoints != 1 {
		t.Fatalf("NumPoints = %d, want 1", tr.NumPoints)
	}
	// Depth 4: root + 4 levels = 5 nodes for a single point.
	if tr.NumNodes != 5 {
		t.Fatalf("NumNodes = %d, want 5", tr.NumNodes)
	}
}

func TestLevelNodesMatchesTraversal(t *testing.T) {
	vc := randomCloud(11, 500, 6)
	tr, err := Build(vc)
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.CountLevels()
	for l, want := range counts {
		if tr.LevelNodes[l] != want {
			t.Errorf("level %d: incremental %d != traversal %d", l, tr.LevelNodes[l], want)
		}
	}
	if counts[len(counts)-1] != vc.Len() {
		t.Errorf("leaf count %d != point count %d", counts[len(counts)-1], vc.Len())
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	vc := randomCloud(3, 1000, 8)
	tr, err := Build(vc)
	if err != nil {
		t.Fatal(err)
	}
	stream := tr.Serialize()
	if len(stream) != tr.NumNodes-vc.Len() {
		t.Fatalf("stream bytes %d != internal nodes %d", len(stream), tr.NumNodes-vc.Len())
	}
	got, err := Deserialize(stream, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != vc.Len() {
		t.Fatalf("decoded %d voxels, want %d", len(got), vc.Len())
	}
	// Decoded set must equal the input set (order differs: DFS/Morton).
	want := map[[3]uint32]bool{}
	for _, v := range vc.Voxels {
		want[[3]uint32{v.X, v.Y, v.Z}] = true
	}
	for _, v := range got {
		if !want[[3]uint32{v.X, v.Y, v.Z}] {
			t.Fatalf("decoded unexpected voxel %v", v)
		}
	}
}

func TestDeserializeOrderIsMorton(t *testing.T) {
	vc := randomCloud(9, 300, 7)
	tr, _ := Build(vc)
	got, err := Deserialize(tr.Serialize(), 7)
	if err != nil {
		t.Fatal(err)
	}
	codes := make([]uint64, len(got))
	for i, v := range got {
		codes[i] = uint64(morton.Encode(v.X, v.Y, v.Z))
	}
	if !sort.SliceIsSorted(codes, func(i, j int) bool { return codes[i] < codes[j] }) {
		t.Fatal("DFS decode order is not Morton order")
	}
}

func TestDeserializeErrors(t *testing.T) {
	if _, err := Deserialize([]byte{1, 1}, 3); err == nil {
		t.Error("truncated stream must fail")
	}
	if _, err := Deserialize([]byte{0}, 3); err == nil {
		t.Error("zero-occupancy internal node must fail")
	}
	if _, err := Deserialize([]byte{1}, 0); err == nil {
		t.Error("bad depth must fail")
	}
	// Trailing garbage after a complete tree.
	tr, _ := NewTree(1)
	tr.Insert(0, 0, 0)
	s := append(tr.Serialize(), 0xFF)
	if _, err := Deserialize(s, 1); err == nil {
		t.Error("trailing bytes must fail")
	}
	// Empty stream decodes to an empty set.
	got, err := Deserialize(nil, 5)
	if err != nil || len(got) != 0 {
		t.Errorf("empty stream: %v, %v", got, err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw [][3]uint16) bool {
		const depth = 6
		tr, _ := NewTree(depth)
		want := map[[3]uint32]bool{}
		for _, r := range raw {
			x, y, z := uint32(r[0]&63), uint32(r[1]&63), uint32(r[2]&63)
			tr.Insert(x, y, z)
			want[[3]uint32{x, y, z}] = true
		}
		got, err := Deserialize(tr.Serialize(), depth)
		if err != nil {
			return len(want) == 0
		}
		if len(got) != len(want) {
			return false
		}
		for _, v := range got {
			if !want[[3]uint32{v.X, v.Y, v.Z}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestOccupancy(t *testing.T) {
	n := &Node{}
	if n.Occupancy() != 0 {
		t.Error("empty node occupancy must be 0")
	}
	n.Children[0] = &Node{}
	n.Children[7] = &Node{}
	if n.Occupancy() != 0x81 {
		t.Errorf("occupancy = %#x, want 0x81", n.Occupancy())
	}
}

// --- DynamicTree (Fig. 5 worked example) ---

func TestDynamicTreeFig5Example(t *testing.T) {
	// P0=[0,0,0], P1=[-1,0,0], P2=[3,3,3] per Fig. 5.
	tr := NewDynamicTree()
	tr.Insert(0, 0, 0)
	if tr.Side() != 2 {
		t.Fatalf("after P0: side = %d, want 2", tr.Side())
	}
	tr.Insert(-1, 0, 0)
	if tr.Side() != 4 {
		// P1 is outside [0,2)^3, so the cube must have doubled once.
		t.Fatalf("after P1: side = %d, want 4", tr.Side())
	}
	tr.Insert(3, 3, 3)
	if tr.Side() != 8 {
		// Fig. 5: including P2 forces the side to 8.
		t.Fatalf("after P2: side = %d, want 8", tr.Side())
	}
	if tr.NumPoints() != 3 {
		t.Fatalf("NumPoints = %d, want 3", tr.NumPoints())
	}
	for _, p := range [][3]int64{{0, 0, 0}, {-1, 0, 0}, {3, 3, 3}} {
		if !tr.Contains(p[0], p[1], p[2]) {
			t.Errorf("tree must contain %v", p)
		}
	}
	if tr.Contains(1, 1, 1) {
		t.Error("tree must not contain uninserted cell")
	}
	// The sequential (lossless) tree preserves all three points exactly —
	// this is the quality edge the baseline holds over the parallel build.
	cells := tr.Cells()
	if len(cells) != 3 {
		t.Fatalf("Cells = %v", cells)
	}
}

func TestDynamicTreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := NewDynamicTree()
	want := map[[3]int64]bool{}
	for i := 0; i < 2000; i++ {
		p := [3]int64{int64(rng.Intn(2000) - 1000), int64(rng.Intn(2000) - 1000), int64(rng.Intn(2000) - 1000)}
		tr.Insert(p[0], p[1], p[2])
		want[p] = true
	}
	if tr.NumPoints() != len(want) {
		t.Fatalf("NumPoints = %d, want %d", tr.NumPoints(), len(want))
	}
	for p := range want {
		if !tr.Contains(p[0], p[1], p[2]) {
			t.Fatalf("missing %v", p)
		}
	}
	cells := tr.Cells()
	if len(cells) != len(want) {
		t.Fatalf("Cells len = %d, want %d", len(cells), len(want))
	}
	for _, c := range cells {
		if !want[c] {
			t.Fatalf("unexpected cell %v", c)
		}
	}
	// Side must be a power of two covering the data.
	if tr.Side()&(tr.Side()-1) != 0 {
		t.Errorf("side %d not a power of two", tr.Side())
	}
	if tr.Side() < 2000 {
		t.Errorf("side %d cannot cover 2000-wide data", tr.Side())
	}
}

func TestDynamicTreeEmpty(t *testing.T) {
	tr := NewDynamicTree()
	if tr.Contains(0, 0, 0) {
		t.Error("empty tree contains nothing")
	}
	if tr.Cells() != nil {
		t.Error("empty tree has no cells")
	}
	if tr.Side() != 0 || tr.NumNodes() != 0 {
		t.Error("empty tree has zero side and nodes")
	}
}

func TestDynamicExpansionsCounted(t *testing.T) {
	tr := NewDynamicTree()
	tr.Insert(0, 0, 0)
	tr.Insert(1000, 0, 0) // needs several doublings
	if tr.Expansions() < 9 {
		t.Errorf("Expansions = %d, want >= 9 (2 -> 1024)", tr.Expansions())
	}
}

func BenchmarkSequentialBuild100K(b *testing.B) {
	vc := randomCloud(1, 100000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(vc); err != nil {
			b.Fatal(err)
		}
	}
}
