package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestVoxelizeEmpty(t *testing.T) {
	if _, err := Voxelize(&Cloud{}, 10); err != ErrEmptyCloud {
		t.Fatalf("Voxelize(empty) err = %v, want ErrEmptyCloud", err)
	}
}

func TestVoxelizeDepthRange(t *testing.T) {
	c := &Cloud{Points: []Point{{X: 1}}}
	for _, d := range []uint{0, 22, 100} {
		if _, err := Voxelize(c, d); err == nil {
			t.Errorf("Voxelize depth=%d: want error", d)
		}
	}
}

func TestVoxelizeSinglePoint(t *testing.T) {
	c := &Cloud{Points: []Point{{X: 5, Y: 5, Z: 5, C: Color{1, 2, 3}}}}
	vc, err := Voxelize(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", vc.Len())
	}
	if vc.Voxels[0].C != (Color{1, 2, 3}) {
		t.Errorf("colour = %v, want {1 2 3}", vc.Voxels[0].C)
	}
}

func TestVoxelizeBoundsAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := &Cloud{}
	for i := 0; i < 5000; i++ {
		c.Points = append(c.Points, Point{
			X: rng.Float32()*100 - 50,
			Y: rng.Float32() * 30,
			Z: rng.Float32() * 200,
			C: Color{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))},
		})
	}
	vc, err := Voxelize(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := vc.Validate(); err != nil {
		t.Fatal(err)
	}
	if vc.Len() == 0 || vc.Len() > c.Len() {
		t.Fatalf("voxel count %d out of range (0,%d]", vc.Len(), c.Len())
	}
	if vc.GridSize() != 1024 {
		t.Errorf("GridSize = %d, want 1024", vc.GridSize())
	}
}

func TestVoxelizeDeduplicates(t *testing.T) {
	// Two coincident points with different colours must merge to the mean.
	c := &Cloud{Points: []Point{
		{X: 0, Y: 0, Z: 0, C: Color{100, 0, 0}},
		{X: 0, Y: 0, Z: 0, C: Color{200, 0, 0}},
		{X: 10, Y: 10, Z: 10, C: Color{0, 50, 0}},
	}}
	vc, err := Voxelize(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (deduplicated)", vc.Len())
	}
	if vc.Voxels[0].C.R != 150 {
		t.Errorf("merged R = %d, want 150", vc.Voxels[0].C.R)
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	vc := &VoxelCloud{Depth: 4, Voxels: []Voxel{{X: 16}}}
	if err := vc.Validate(); err == nil {
		t.Fatal("want validation error for out-of-lattice voxel")
	}
}

func TestCloneIsDeep(t *testing.T) {
	vc := &VoxelCloud{Depth: 4, Voxels: []Voxel{{X: 1, C: Color{9, 9, 9}}}}
	cp := vc.Clone()
	cp.Voxels[0].X = 7
	if vc.Voxels[0].X != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestRawBytes(t *testing.T) {
	c := &Cloud{Points: make([]Point, 1000)}
	if c.RawBytes() != 15000 {
		t.Errorf("RawBytes = %d, want 15000", c.RawBytes())
	}
	vc := &VoxelCloud{Voxels: make([]Voxel, 4)}
	if vc.RawBytes() != 60 {
		t.Errorf("RawBytes = %d, want 60", vc.RawBytes())
	}
}

func TestToCloudRoundTrip(t *testing.T) {
	vc := &VoxelCloud{Depth: 10, Voxels: []Voxel{
		{X: 1, Y: 2, Z: 3, C: Color{4, 5, 6}},
		{X: 100, Y: 200, Z: 300, C: Color{7, 8, 9}},
	}}
	c := vc.ToCloud()
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Points[1].X != 100 || c.Points[1].C != (Color{7, 8, 9}) {
		t.Errorf("ToCloud mismatch: %+v", c.Points[1])
	}
}

func TestGridIndexNearest(t *testing.T) {
	vc := &VoxelCloud{Depth: 10}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		vc.Voxels = append(vc.Voxels, Voxel{
			X: uint32(rng.Intn(1024)), Y: uint32(rng.Intn(1024)), Z: uint32(rng.Intn(1024)),
		})
	}
	idx := NewGridIndex(vc, 5)
	// Verify against brute force for a sample of queries.
	for q := 0; q < 50; q++ {
		query := Voxel{X: uint32(rng.Intn(1024)), Y: uint32(rng.Intn(1024)), Z: uint32(rng.Intn(1024))}
		gi, gd := idx.Nearest(query)
		bd := -1.0
		for _, v := range vc.Voxels {
			d := query.Dist2(v)
			if bd < 0 || d < bd {
				bd = d
			}
		}
		if gd != bd {
			t.Fatalf("query %v: grid dist %v != brute %v (idx %d)", query, gd, bd, gi)
		}
	}
}

func TestGridIndexNearestSelf(t *testing.T) {
	vc := &VoxelCloud{Depth: 6, Voxels: []Voxel{{X: 5, Y: 5, Z: 5}, {X: 60, Y: 60, Z: 60}}}
	idx := NewGridIndex(vc, 3)
	i, d := idx.Nearest(vc.Voxels[1])
	if i != 1 || d != 0 {
		t.Errorf("Nearest(self) = (%d,%v), want (1,0)", i, d)
	}
}

func TestGridIndexEmpty(t *testing.T) {
	idx := NewGridIndex(&VoxelCloud{Depth: 4}, 2)
	if i, _ := idx.Nearest(Voxel{}); i != -1 {
		t.Errorf("Nearest on empty = %d, want -1", i)
	}
}

func TestVoxelizeRejectsNonFinite(t *testing.T) {
	nan := float32(math.NaN())
	c := &Cloud{Points: []Point{{X: nan}}}
	if _, err := Voxelize(c, 10); err == nil {
		t.Fatal("NaN coordinates must be rejected")
	}
	inf := float32(math.Inf(1))
	c = &Cloud{Points: []Point{{Y: inf}}}
	if _, err := Voxelize(c, 10); err == nil {
		t.Fatal("Inf coordinates must be rejected")
	}
}
