package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestColorLuma(t *testing.T) {
	cases := []struct {
		c    Color
		want float64
	}{
		{Color{0, 0, 0}, 0},
		{Color{255, 255, 255}, 255},
		{Color{255, 0, 0}, 0.299 * 255},
		{Color{0, 255, 0}, 0.587 * 255},
		{Color{0, 0, 255}, 0.114 * 255},
	}
	for _, tc := range cases {
		if got := tc.c.Luma(); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Luma(%v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestColorLumaRange(t *testing.T) {
	f := func(r, g, b uint8) bool {
		l := Color{r, g, b}.Luma()
		return l >= 0 && l <= 255
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColorSubAddRoundTrip(t *testing.T) {
	f := func(r1, g1, b1, r2, g2, b2 uint8) bool {
		a := Color{r1, g1, b1}
		b := Color{r2, g2, b2}
		dr, dg, db := a.Sub(b)
		return b.Add(dr, dg, db) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColorAddSaturates(t *testing.T) {
	c := Color{250, 5, 128}
	got := c.Add(100, -100, 0)
	want := Color{255, 0, 128}
	if got != want {
		t.Errorf("Add saturation = %v, want %v", got, want)
	}
}

func TestColorDist2(t *testing.T) {
	a := Color{10, 20, 30}
	b := Color{13, 16, 30}
	if got := a.Dist2(b); got != 9+16 {
		t.Errorf("Dist2 = %d, want 25", got)
	}
	if a.Dist2(a) != 0 {
		t.Error("Dist2 to self must be zero")
	}
	if a.Dist2(b) != b.Dist2(a) {
		t.Error("Dist2 must be symmetric")
	}
}

func TestVoxelDist2(t *testing.T) {
	a := Voxel{X: 0, Y: 0, Z: 0}
	b := Voxel{X: 3, Y: 4, Z: 0}
	if got := a.Dist2(b); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
}

func TestAABBExtendContains(t *testing.T) {
	b := EmptyAABB()
	if !b.Empty() {
		t.Fatal("fresh AABB must be empty")
	}
	pts := []Point{{X: 1, Y: 2, Z: 3}, {X: -4, Y: 0, Z: 10}, {X: 2, Y: 2, Z: 2}}
	for _, p := range pts {
		b.Extend(p)
	}
	if b.Empty() {
		t.Fatal("extended AABB must not be empty")
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("AABB must contain %v", p)
		}
	}
	if b.Contains(Point{X: 100}) {
		t.Error("AABB must not contain far point")
	}
	dx, dy, dz := b.Size()
	if dx != 6 || dy != 2 || dz != 8 {
		t.Errorf("Size = (%v,%v,%v), want (6,2,8)", dx, dy, dz)
	}
	if b.MaxSide() != 8 {
		t.Errorf("MaxSide = %v, want 8", b.MaxSide())
	}
}

func TestAABBEmptySize(t *testing.T) {
	b := EmptyAABB()
	dx, dy, dz := b.Size()
	if dx != 0 || dy != 0 || dz != 0 {
		t.Errorf("empty Size = (%v,%v,%v), want zeros", dx, dy, dz)
	}
}

func TestAABBContainsIsInvariantUnderExtend(t *testing.T) {
	f := func(coords [][3]float32) bool {
		b := EmptyAABB()
		pts := make([]Point, len(coords))
		for i, c := range coords {
			pts[i] = Point{X: c[0], Y: c[1], Z: c[2]}
			b.Extend(pts[i])
		}
		for _, p := range pts {
			if !b.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
