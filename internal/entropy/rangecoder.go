// Package entropy implements the entropy-coding layer used by the baseline
// codecs (TMC13/CWIPC both entropy-code their streams, Sec. IV-A1) and by
// the optional entropy stage of the proposed design (which the paper
// deliberately discards in the fast path, Sec. IV-B3 — we implement it so
// that ablation is reproducible).
//
// The coder is a binary adaptive range coder in the style used by arithmetic
// PCC codecs [35], [60]: 11-bit probabilities with exponential adaptation,
// carry-propagation via the cache/shiftLow construction. On top of it sit
// adaptive bit-tree byte models, zig-zag varints, and run-length helpers.
//
// Hot-path layout: the encoder writes into a growable []byte scratch and the
// decoder reads a []byte with an inlined position cursor — no bytes.Buffer /
// bytes.Reader method calls in the bit loops. Both sides expose batched
// entry points (EncodeBits/DecodeBits over a context slab, byte-tree slabs
// in models.go, zero-run fast paths) that keep the coder registers live
// across a whole batch while performing the exact per-bit state transitions
// of the scalar EncodeBit/DecodeBit — the output stream is byte-identical,
// which the golden-stream hashes in internal/codec pin.
package entropy

import "errors"

const (
	probBits  = 11
	probInit  = 1 << (probBits - 1) // p(0) = 0.5
	probMoves = 5                   // adaptation shift
	topValue  = 1 << 24
)

// Prob is an adaptive probability state for one binary context. The value
// is the scaled probability of the next bit being 0.
type Prob uint16

// NewProb returns an unbiased probability state.
func NewProb() Prob { return probInit }

// Encoder is a binary adaptive range encoder. It writes into an internal
// growable byte slice; Reset rewinds it for pooled reuse, so steady-state
// callers pay no per-stream allocation once the scratch has grown to the
// high-water mark.
type Encoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
}

// NewEncoder returns an encoder ready for use.
func NewEncoder() *Encoder {
	return &Encoder{rng: 0xFFFFFFFF, cacheSize: 1}
}

// Reset rewinds the encoder to its initial state, retaining the output
// scratch capacity. Any slice previously returned by Bytes aliases that
// scratch and is invalidated.
func (e *Encoder) Reset() {
	e.low = 0
	e.rng = 0xFFFFFFFF
	e.cache = 0
	e.cacheSize = 1
	e.out = e.out[:0]
}

func (e *Encoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || (e.low>>32) != 0 {
		carry := byte(e.low >> 32)
		b := e.cache
		for {
			e.out = append(e.out, b+carry)
			b = 0xFF
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

// EncodeBit encodes one bit under the adaptive context *p, updating it.
func (e *Encoder) EncodeBit(p *Prob, bit int) {
	bound := (e.rng >> probBits) * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (1<<probBits - *p) >> probMoves
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> probMoves
	}
	if e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// EncodeBits encodes the low n bits of v MSB-first, bit k (counted from the
// most significant of the n) under its own adaptive context ctxs[k]. It is
// byte-identical to n EncodeBit calls over consecutive contexts and exists
// so a whole context slab is coded with the range registers kept local.
func (e *Encoder) EncodeBits(ctxs []Prob, v uint64, n int) {
	if n <= 0 {
		return
	}
	_ = ctxs[n-1]
	rng := e.rng
	for k := 0; k < n; k++ {
		p := ctxs[k]
		bound := (rng >> probBits) * uint32(p)
		if v>>uint(n-1-k)&1 == 0 {
			rng = bound
			ctxs[k] = p + (1<<probBits-p)>>probMoves
		} else {
			e.low += uint64(bound)
			rng -= bound
			ctxs[k] = p - p>>probMoves
		}
		if rng < topValue {
			rng <<= 8
			e.shiftLow()
		}
	}
	e.rng = rng
}

// EncodeZeroRun encodes n zero bits under the single adaptive context *p —
// the shape a run of zero-valued residuals takes under UintModel. It is
// byte-identical to n EncodeBit(p, 0) calls; the adaptation and range
// updates stay in registers for the whole run.
func (e *Encoder) EncodeZeroRun(p *Prob, n int) {
	rng := e.rng
	pv := *p
	for ; n > 0; n-- {
		rng = (rng >> probBits) * uint32(pv)
		pv += (1<<probBits - pv) >> probMoves
		if rng < topValue {
			rng <<= 8
			e.shiftLow()
		}
	}
	*p = pv
	e.rng = rng
}

// EncodeBitDirect encodes one bit at fixed probability 1/2 (no context).
func (e *Encoder) EncodeBitDirect(bit int) {
	e.rng >>= 1
	if bit != 0 {
		e.low += uint64(e.rng)
	}
	if e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// EncodeDirect encodes the low n bits of v at fixed probability.
func (e *Encoder) EncodeDirect(v uint64, n int) {
	rng := e.rng
	for i := n - 1; i >= 0; i-- {
		rng >>= 1
		if v>>uint(i)&1 != 0 {
			e.low += uint64(rng)
		}
		if rng < topValue {
			rng <<= 8
			e.shiftLow()
		}
	}
	e.rng = rng
}

// Bytes flushes the coder and returns the compressed stream. The returned
// slice aliases the encoder's scratch: it is valid until the next Reset.
// After Bytes, the encoder must be Reset before coding again.
func (e *Encoder) Bytes() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// Len returns the number of bytes emitted so far (excluding unflushed
// state); useful for budget tracking mid-stream.
func (e *Encoder) Len() int { return len(e.out) }

// ErrCorrupt is returned when a decoder detects an invalid stream.
var ErrCorrupt = errors.New("entropy: corrupt stream")

// Decoder is the matching binary adaptive range decoder. It reads directly
// from the input slice through an inlined position cursor; Reset re-arms it
// over a new stream for pooled reuse.
type Decoder struct {
	rng     uint32
	code    uint32
	data    []byte
	pos     int
	overrun int
}

// NewDecoder initializes a decoder over a compressed stream.
func NewDecoder(data []byte) (*Decoder, error) {
	d := &Decoder{}
	if err := d.Reset(data); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset re-arms the decoder over a new compressed stream, validating the
// 5-byte header exactly like NewDecoder. The decoder retains a reference to
// data until the next Reset.
func (d *Decoder) Reset(data []byte) error {
	// The first emitted byte is always 0 (initial cache); it must be present
	// together with the 32-bit code window.
	if len(data) < 5 || data[0] != 0 {
		return ErrCorrupt
	}
	d.rng = 0xFFFFFFFF
	d.code = uint32(data[1])<<24 | uint32(data[2])<<16 | uint32(data[3])<<8 | uint32(data[4])
	d.data = data
	d.pos = 5
	d.overrun = 0
	return nil
}

// Err reports whether the decoder has run off the end of its stream. A
// complete stream never does: the encoder's 5-byte flush emits exactly the
// bytes the matching decode sequence loads, so the cursor reaching past the
// end means the input was truncated (or the caller decoded more symbols
// than were coded) and everything decoded since is garbage. Callers check
// this at their API boundary and surface ErrCorrupt instead of returning
// silently mis-decoded data. Bit-level behavior is unchanged — reads past
// the end still synthesize zero bytes (the legitimate tail behavior for a
// decoder that stops exactly at the last coded symbol), so valid decodes
// are byte-identical to the pre-cursor implementation.
func (d *Decoder) Err() error {
	if d.overrun > 0 {
		return ErrCorrupt
	}
	return nil
}

// Overrun returns how many zero bytes the decoder has synthesized past the
// end of the input (0 for any complete stream).
func (d *Decoder) Overrun() int { return d.overrun }

func (d *Decoder) normalize() {
	if d.rng < topValue {
		d.rng <<= 8
		var nb byte
		if d.pos < len(d.data) {
			nb = d.data[d.pos]
			d.pos++
		} else {
			d.overrun++
		}
		d.code = d.code<<8 | uint32(nb)
	}
}

// DecodeBit decodes one bit under the adaptive context *p, updating it.
func (d *Decoder) DecodeBit(p *Prob) int {
	bound := (d.rng >> probBits) * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (1<<probBits - *p) >> probMoves
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> probMoves
		bit = 1
	}
	d.normalize()
	return bit
}

// DecodeBits decodes n bits, bit k under ctxs[k], returning them packed
// MSB-first. It mirrors EncodeBits and is bit-exact with n DecodeBit calls.
func (d *Decoder) DecodeBits(ctxs []Prob, n int) uint64 {
	if n <= 0 {
		return 0
	}
	_ = ctxs[n-1]
	var v uint64
	code, rng := d.code, d.rng
	data, pos := d.data, d.pos
	for k := 0; k < n; k++ {
		p := ctxs[k]
		bound := (rng >> probBits) * uint32(p)
		var bit uint64
		if code < bound {
			rng = bound
			ctxs[k] = p + (1<<probBits-p)>>probMoves
		} else {
			code -= bound
			rng -= bound
			ctxs[k] = p - p>>probMoves
			bit = 1
		}
		v = v<<1 | bit
		if rng < topValue {
			rng <<= 8
			var nb byte
			if pos < len(data) {
				nb = data[pos]
				pos++
			} else {
				d.overrun++
			}
			code = code<<8 | uint32(nb)
		}
	}
	d.code, d.rng, d.pos = code, rng, pos
	return v
}

// DecodeBitDirect decodes one fixed-probability bit.
func (d *Decoder) DecodeBitDirect() int {
	d.rng >>= 1
	var bit int
	if d.code >= d.rng {
		d.code -= d.rng
		bit = 1
	}
	d.normalize()
	return bit
}

// DecodeDirect decodes n fixed-probability bits.
func (d *Decoder) DecodeDirect(n int) uint64 {
	var v uint64
	code, rng := d.code, d.rng
	data, pos := d.data, d.pos
	for i := 0; i < n; i++ {
		rng >>= 1
		var bit uint64
		if code >= rng {
			code -= rng
			bit = 1
		}
		v = v<<1 | bit
		if rng < topValue {
			rng <<= 8
			var nb byte
			if pos < len(data) {
				nb = data[pos]
				pos++
			} else {
				d.overrun++
			}
			code = code<<8 | uint32(nb)
		}
	}
	d.code, d.rng, d.pos = code, rng, pos
	return v
}
