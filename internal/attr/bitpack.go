// Package attr implements the paper's CONTRIBUTION intra-frame attribute
// codec (Sec. IV-C): points are already sorted in Morton order (reusing the
// geometry pipeline's intermediate codes at no extra cost), segmented into
// equal macro blocks, and each block is stored as one Base value (the
// median) plus quantized residual Deltas per channel. A second layer
// re-encodes the residual stream the same way ("2-layer encoder",
// Sec. VI-B), and everything is packed with fixed-width bit packing —
// deliberately NOT entropy coded, matching the paper's fast path
// (Sec. IV-B3); the entropy stage exists as an explicit option for the
// ablation.
package attr

// bitWriter packs values LSB-first into a byte stream.
type bitWriter struct {
	buf  []byte
	bits uint64
	n    uint
}

func (w *bitWriter) write(v uint64, width uint) {
	if width == 0 {
		return
	}
	w.bits |= (v & (1<<width - 1)) << w.n
	w.n += width
	for w.n >= 8 {
		w.buf = append(w.buf, byte(w.bits))
		w.bits >>= 8
		w.n -= 8
	}
}

func (w *bitWriter) flush() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.bits))
		w.bits = 0
		w.n = 0
	}
	return w.buf
}

// bitReader reads values LSB-first.
type bitReader struct {
	buf  []byte
	pos  int
	bits uint64
	n    uint
}

func (r *bitReader) read(width uint) (uint64, bool) {
	if width == 0 {
		return 0, true
	}
	for r.n < width {
		if r.pos >= len(r.buf) {
			return 0, false
		}
		r.bits |= uint64(r.buf[r.pos]) << r.n
		r.pos++
		r.n += 8
	}
	v := r.bits & (1<<width - 1)
	r.bits >>= width
	r.n -= width
	return v, true
}

// zig/unzig are 32-bit zig-zag maps (small magnitudes -> small codes).
func zig(v int32) uint32   { return uint32(v<<1) ^ uint32(v>>31) }
func unzig(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }

// widthFor returns the number of bits needed to represent the zig-zag code
// of every value in vs.
func widthFor(vs []int32) uint {
	var maxZ uint32
	for _, v := range vs {
		if z := zig(v); z > maxZ {
			maxZ = z
		}
	}
	w := uint(0)
	for maxZ != 0 {
		w++
		maxZ >>= 1
	}
	return w
}
