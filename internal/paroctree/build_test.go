package paroctree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/morton"
	"repro/internal/octree"
)

func dev() *edgesim.Device { return edgesim.NewXavier(edgesim.Mode15W) }

func randomCloud(seed int64, n int, depth uint) *geom.VoxelCloud {
	rng := rand.New(rand.NewSource(seed))
	limit := int(uint32(1) << depth)
	vc := &geom.VoxelCloud{Depth: depth}
	for i := 0; i < n; i++ {
		vc.Voxels = append(vc.Voxels, geom.Voxel{
			X: uint32(rng.Intn(limit)),
			Y: uint32(rng.Intn(limit)),
			Z: uint32(rng.Intn(limit)),
			C: geom.Color{R: uint8(i), G: uint8(i >> 8), B: 3},
		})
	}
	return vc
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(dev(), &geom.VoxelCloud{Depth: 10}); err != ErrNoPoints {
		t.Fatalf("err = %v, want ErrNoPoints", err)
	}
}

func TestBuildSinglePoint(t *testing.T) {
	vc := &geom.VoxelCloud{Depth: 3, Voxels: []geom.Voxel{{X: 3, Y: 3, Z: 3}}}
	res, err := Build(dev(), vc)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tree
	if tr.NumLeaves != 1 {
		t.Fatalf("NumLeaves = %d", tr.NumLeaves)
	}
	// Depth 3, single point: 4 nodes (root + 3).
	if len(tr.Codes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(tr.Codes))
	}
	if tr.Parent[0] != -1 {
		t.Fatal("root parent must be -1")
	}
	if tr.Leaves()[0] != morton.Encode(3, 3, 3) {
		t.Fatalf("leaf code = %d", tr.Leaves()[0])
	}
}

// The Fig. 5 worked example: P0=(0,0,0), P1 at low corner, P2=(3,3,3) in a
// side-8 cube (depth 3). The paper's parallel build places P0..P2 and emits
// code/parent arrays; the occupy post-processing (Algo. 1) merges children.
func TestFig5Example(t *testing.T) {
	// Shift the paper's [-1..3] coordinates into the unsigned lattice by +1:
	// P1=(0,0,0), P0=(1,1,1)? No — keep it faithful: P0=(1,0,0), P1=(0,0,0),
	// P2=(4,3,3) in a depth-3 (side-8) lattice after offsetting x by +1.
	vc := &geom.VoxelCloud{Depth: 3, Voxels: []geom.Voxel{
		{X: 1, Y: 0, Z: 0}, // P0
		{X: 0, Y: 0, Z: 0}, // P1
		{X: 4, Y: 3, Z: 3}, // P2
	}}
	res, err := Build(dev(), vc)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tree
	if tr.NumLeaves != 3 {
		t.Fatalf("NumLeaves = %d", tr.NumLeaves)
	}
	// Sorted order: P1 (code 0), P0 (code 1), P2.
	leaves := tr.Leaves()
	if leaves[0] != 0 || leaves[1] != 1 {
		t.Fatalf("leaves = %v", leaves)
	}
	// Root occupy: P0/P1 share octant 0; P2's octant differs.
	rootOcc := tr.Occupy[0]
	if popcount8(rootOcc) != 2 {
		t.Fatalf("root occupancy %08b, want 2 children", rootOcc)
	}
	// Every parent pointer must point to a node one level up whose code is
	// the child's code >> 3.
	for d := uint(1); d <= tr.Depth; d++ {
		for i := tr.LevelOffsets[d]; i < tr.LevelOffsets[d+1]; i++ {
			p := tr.Parent[i]
			if p < int32(tr.LevelOffsets[d-1]) || p >= int32(tr.LevelOffsets[d]) {
				t.Fatalf("node %d parent %d outside level %d", i, p, d-1)
			}
			if tr.Codes[p] != tr.Codes[i].Parent() {
				t.Fatalf("node %d: parent code mismatch", i)
			}
		}
	}
}

func TestParallelMatchesSequentialOctree(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		vc := randomCloud(seed, 2000, 7)
		res, err := Build(dev(), vc)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := octree.Build(vc)
		if err != nil {
			t.Fatal(err)
		}
		// Same node counts at every level.
		got := res.Tree.LevelNodes()
		want := seq.CountLevels()
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("seed %d level %d: parallel %d != sequential %d", seed, d, got[d], want[d])
			}
		}
		// Same leaf sets.
		seqVox, err := octree.Deserialize(seq.Serialize(), vc.Depth)
		if err != nil {
			t.Fatal(err)
		}
		leaves := res.Tree.Leaves()
		if len(seqVox) != len(leaves) {
			t.Fatalf("leaf count %d != %d", len(leaves), len(seqVox))
		}
		for i, v := range seqVox {
			if morton.Encode(v.X, v.Y, v.Z) != leaves[i] {
				t.Fatalf("leaf %d differs", i)
			}
		}
	}
}

func TestSerializeDeserializeRoundTrip(t *testing.T) {
	d := dev()
	vc := randomCloud(5, 3000, 8)
	res, err := Build(d, vc)
	if err != nil {
		t.Fatal(err)
	}
	stream := res.Tree.Serialize(d)
	codes, err := Deserialize(d, stream, vc.Depth)
	if err != nil {
		t.Fatal(err)
	}
	leaves := res.Tree.Leaves()
	if len(codes) != len(leaves) {
		t.Fatalf("decoded %d leaves, want %d", len(codes), len(leaves))
	}
	for i := range codes {
		if codes[i] != leaves[i] {
			t.Fatalf("leaf %d: %d != %d", i, codes[i], leaves[i])
		}
	}
	vox := CodesToVoxels(d, codes, vc.Depth)
	for i, v := range vox {
		if morton.Encode(v.X, v.Y, v.Z) != codes[i] {
			t.Fatalf("voxel %d decode mismatch", i)
		}
	}
}

func TestDeserializeErrors(t *testing.T) {
	d := dev()
	if _, err := Deserialize(d, []byte{1}, 0); err == nil {
		t.Error("bad depth must fail")
	}
	if _, err := Deserialize(d, []byte{1, 1}, 3); err == nil {
		t.Error("truncated stream must fail")
	}
	if _, err := Deserialize(d, []byte{0}, 2); err == nil {
		t.Error("zero mask must fail")
	}
	got, err := Deserialize(d, nil, 4)
	if err != nil || got != nil {
		t.Errorf("empty stream: %v %v", got, err)
	}
	// Trailing bytes.
	vc := &geom.VoxelCloud{Depth: 1, Voxels: []geom.Voxel{{X: 0}}}
	res, _ := Build(d, vc)
	s := append(res.Tree.Serialize(d), 9)
	if _, err := Deserialize(d, s, 1); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func TestBuildRejectsUnsortedInternal(t *testing.T) {
	if _, err := buildFromSorted(dev(), []morton.Code{5, 3}, 4); err == nil {
		t.Error("unsorted leaves must fail")
	}
	if _, err := buildFromSorted(dev(), []morton.Code{3, 3}, 4); err == nil {
		t.Error("duplicate leaves must fail")
	}
}

func TestBuildDeduplicatesInput(t *testing.T) {
	vc := &geom.VoxelCloud{Depth: 4, Voxels: []geom.Voxel{
		{X: 1, Y: 1, Z: 1}, {X: 1, Y: 1, Z: 1}, {X: 2, Y: 2, Z: 2},
	}}
	res, err := Build(dev(), vc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.NumLeaves != 2 {
		t.Fatalf("NumLeaves = %d, want 2", res.Tree.NumLeaves)
	}
	if len(res.Sorted) != 2 {
		t.Fatalf("Sorted len = %d, want 2", len(res.Sorted))
	}
}

func TestRoundTripProperty(t *testing.T) {
	d := dev()
	f := func(raw [][3]uint16) bool {
		if len(raw) == 0 {
			return true
		}
		const depth = 5
		vc := &geom.VoxelCloud{Depth: depth}
		want := map[morton.Code]bool{}
		for _, r := range raw {
			v := geom.Voxel{X: uint32(r[0] & 31), Y: uint32(r[1] & 31), Z: uint32(r[2] & 31)}
			vc.Voxels = append(vc.Voxels, v)
			want[morton.Encode(v.X, v.Y, v.Z)] = true
		}
		res, err := Build(d, vc)
		if err != nil {
			return false
		}
		codes, err := Deserialize(d, res.Tree.Serialize(d), depth)
		if err != nil {
			return false
		}
		if len(codes) != len(want) {
			return false
		}
		for _, c := range codes {
			if !want[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRescaleRoundTripSmallError(t *testing.T) {
	vc := randomCloud(8, 500, 10)
	// Constrain to a sub-box so rescale actually stretches.
	for i := range vc.Voxels {
		vc.Voxels[i].X = vc.Voxels[i].X%300 + 50
		vc.Voxels[i].Y = vc.Voxels[i].Y%700 + 10
		vc.Voxels[i].Z = vc.Voxels[i].Z%200 + 400
	}
	r := FitRescale(vc)
	maxErr := 0.0
	for _, v := range vc.Voxels {
		back := r.Invert(r.Apply(v))
		if d := v.Dist2(back); d > maxErr {
			maxErr = d
		}
	}
	// Sub-voxel error: squared distance at most 3 (one unit per axis).
	if maxErr > 3 {
		t.Fatalf("rescale max squared error = %v, want <= 3", maxErr)
	}
}

func TestRescaleKeepsLatticeBounds(t *testing.T) {
	f := func(coords [][3]uint16) bool {
		if len(coords) == 0 {
			return true
		}
		vc := &geom.VoxelCloud{Depth: 10}
		for _, c := range coords {
			vc.Voxels = append(vc.Voxels, geom.Voxel{
				X: uint32(c[0] & 1023), Y: uint32(c[1] & 1023), Z: uint32(c[2] & 1023)})
		}
		r := FitRescale(vc)
		for _, v := range vc.Voxels {
			a := r.Apply(v)
			if a.X > 1023 || a.Y > 1023 || a.Z > 1023 {
				return false
			}
			b := r.Invert(a)
			if b.X > 1023 || b.Y > 1023 || b.Z > 1023 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGeometrySimLatencyShape(t *testing.T) {
	// The parallel geometry pipeline must be dramatically faster in
	// simulated time than the sequential baseline at the same N — the
	// paper reports ~37x at ~0.8M points; at 50k points we accept >5x.
	vc := randomCloud(4, 50000, 10)

	dPar := dev()
	if _, err := Build(dPar, vc); err != nil {
		t.Fatal(err)
	}
	parTime := dPar.SimTime()

	dSeq := dev()
	dSeq.CPUSerial("OctreeConstruct", vc.Len()*int(vc.Depth), edgesim.Cost{OpsPerItem: 170}, func() {
		if _, err := octree.Build(vc); err != nil {
			t.Fatal(err)
		}
	})
	seqTime := dSeq.SimTime()

	if ratio := float64(seqTime) / float64(parTime); ratio < 5 {
		t.Fatalf("parallel speedup = %.1fx, want >= 5x (seq %v, par %v)", ratio, seqTime, parTime)
	}
}

func BenchmarkParallelBuild100K(b *testing.B) {
	vc := randomCloud(1, 100000, 10)
	d := dev()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(d, vc); err != nil {
			b.Fatal(err)
		}
	}
}
