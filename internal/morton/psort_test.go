package morton

import (
	"math/rand"
	"testing"
)

func TestParallelRadixSortMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, workers := range []int{1, 2, 3, 8, 16} {
		for _, n := range []int{0, 1, 2, 7, 100, 4096, 10001} {
			a := make([]Keyed, n)
			for i := range a {
				a[i].Code = Code(rng.Uint64() & 0x7FFFFFFFFFFFFFFF)
				a[i].Voxel.Y = uint32(i)
			}
			b := make([]Keyed, n)
			copy(b, a)
			ParallelRadixSort(a, workers)
			RadixSort(b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d n=%d idx=%d: %v != %v", workers, n, i, a[i], b[i])
				}
			}
		}
	}
}

func TestParallelRadixSortStability(t *testing.T) {
	// Equal codes must keep input order (stability), which the scatter
	// offsets guarantee; verify via payloads.
	a := make([]Keyed, 1000)
	for i := range a {
		a[i].Code = Code(i % 7)
		a[i].Voxel.X = uint32(i)
	}
	ParallelRadixSort(a, 4)
	for i := 1; i < len(a); i++ {
		if a[i].Code == a[i-1].Code && a[i].Voxel.X < a[i-1].Voxel.X {
			t.Fatalf("stability violated at %d", i)
		}
	}
}

func BenchmarkParallelRadixSort1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]Keyed, 1<<20)
	for i := range src {
		src[i].Code = Code(rng.Uint64() & 0x7FFFFFFFFFFFFFFF)
	}
	work := make([]Keyed, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		ParallelRadixSort(work, 8)
	}
}
