package linksim

import (
	"testing"
	"time"
)

func TestRawFrameDoesNotFitRealTime(t *testing.T) {
	// The paper's Sec. II-A motivation: a 10^6-point raw frame is 120 Mbit
	// and cannot stream at 30-60 fps over typical links.
	const rawFrame = 15_000_000 // bytes
	for _, l := range []Link{LTE, NR5G} {
		if fps := l.SustainableFPS(rawFrame); fps >= 30 {
			t.Fatalf("%s sustains %.1f fps on raw frames; motivation broken", l.Name, fps)
		}
	}
}

func TestCompressedFrameFits(t *testing.T) {
	// A ~1 MB compressed frame streams at 10+ fps over Wi-Fi/5G.
	const compressed = 1_200_000
	for _, l := range []Link{WiFi, NR5G} {
		if fps := l.SustainableFPS(compressed); fps < 10 {
			t.Fatalf("%s sustains only %.1f fps on compressed frames", l.Name, fps)
		}
	}
}

func TestTransmitCost(t *testing.T) {
	c, err := WiFi.Transmit(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// 8 Mbit over 400 Mbps = 20 ms + 2 ms RTT.
	want := 22 * time.Millisecond
	if c.Latency < want-time.Millisecond || c.Latency > want+time.Millisecond {
		t.Fatalf("latency = %v, want ~%v", c.Latency, want)
	}
	if c.TxEnergy <= 0 || c.RxEnergy <= 0 || c.TxEnergy < c.RxEnergy {
		t.Fatalf("energy: tx %v rx %v", c.TxEnergy, c.RxEnergy)
	}
	// 1 MB at 60 nJ/B = 0.06 J.
	if c.TxEnergy < 0.059 || c.TxEnergy > 0.061 {
		t.Fatalf("tx energy = %v J, want 0.06", c.TxEnergy)
	}
}

func TestBadLink(t *testing.T) {
	if _, err := (Link{}).Transmit(100); err != ErrBadLink {
		t.Fatalf("err = %v", err)
	}
	if (Link{}).SustainableFPS(100) != 0 {
		t.Fatal("zero-bandwidth fps must be 0")
	}
	if WiFi.SustainableFPS(0) != 0 {
		t.Fatal("zero-size fps must be 0")
	}
}

func TestTransmitNegativeBytes(t *testing.T) {
	// Regression: negative sizes used to yield a negative latency/energy
	// Cost instead of an error.
	if _, err := WiFi.Transmit(-1); err != ErrBadSize {
		t.Fatalf("Transmit(-1) err = %v, want ErrBadSize", err)
	}
	if c, err := WiFi.Transmit(0); err != nil || c.TxEnergy != 0 {
		t.Fatalf("Transmit(0) = %+v, %v", c, err)
	}
}

func TestPresetsOrdering(t *testing.T) {
	if len(Presets()) != 3 {
		t.Fatal("three presets")
	}
	// Radio energy per byte: WiFi < 5G < LTE.
	if !(WiFi.TxNanojoulePerByte < NR5G.TxNanojoulePerByte && NR5G.TxNanojoulePerByte < LTE.TxNanojoulePerByte) {
		t.Fatal("energy ordering broken")
	}
	// Latency floor: WiFi < 5G < LTE.
	if !(WiFi.RTTMs < NR5G.RTTMs && NR5G.RTTMs < LTE.RTTMs) {
		t.Fatal("RTT ordering broken")
	}
}

func TestShare(t *testing.T) {
	l := WiFi.Share(4)
	if l.BandwidthMbps != WiFi.BandwidthMbps/4 {
		t.Fatalf("Share(4) bandwidth = %v, want %v", l.BandwidthMbps, WiFi.BandwidthMbps/4)
	}
	// Latency floor and per-byte radio energy are per-packet properties:
	// sharing the egress radio does not change them.
	if l.RTTMs != WiFi.RTTMs || l.TxNanojoulePerByte != WiFi.TxNanojoulePerByte {
		t.Fatal("Share must only divide bandwidth")
	}
	if l.Name != "WiFi/4" {
		t.Fatalf("Share(4) name = %q", l.Name)
	}
	for _, n := range []int{0, 1, -3} {
		if got := WiFi.Share(n); got != WiFi {
			t.Fatalf("Share(%d) = %+v, want the link unchanged", n, got)
		}
	}
}
