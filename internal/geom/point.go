// Package geom provides the fundamental point-cloud data types used across
// the compression pipelines: points, colours, axis-aligned bounding boxes,
// voxel grids, and whole point clouds.
//
// The paper's pipelines operate on voxelized point clouds: each frame is
// quantized into a cubic lattice (1024^3 for 8iVFB/MVUB), every occupied
// lattice cell ("voxel") carries an RGB attribute. This package keeps both
// representations: float32 world coordinates for capture/render, and
// unsigned voxel coordinates for compression.
package geom

import (
	"fmt"
	"math"
)

// Color is an 8-bit-per-channel RGB attribute, as stored by 8iVFB/MVUB.
type Color struct {
	R, G, B uint8
}

// Luma returns the BT.601 luma of the colour in [0,255]. Attribute PSNR in
// the paper (and in MPEG's pc_error) is commonly reported on luma.
func (c Color) Luma() float64 {
	return 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
}

// Add returns the channel-wise saturating sum of c and the signed delta
// (dr, dg, db).
func (c Color) Add(dr, dg, db int) Color {
	return Color{clampU8(int(c.R) + dr), clampU8(int(c.G) + dg), clampU8(int(c.B) + db)}
}

// Sub returns the signed channel-wise difference c - o.
func (c Color) Sub(o Color) (dr, dg, db int) {
	return int(c.R) - int(o.R), int(c.G) - int(o.G), int(c.B) - int(o.B)
}

// Dist2 returns the squared Euclidean distance between two colours in RGB
// space; this is the per-point term of the paper's 2-norm attribute distance
// (Equ. 2).
func (c Color) Dist2(o Color) int {
	dr, dg, db := c.Sub(o)
	return dr*dr + dg*dg + db*db
}

func clampU8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Point is a single captured point: float world coordinates plus an RGB
// attribute. One point costs 3*4 + 3*1 = 15 bytes raw, matching the paper's
// raw-size accounting (Sec. II-A).
type Point struct {
	X, Y, Z float32
	C       Color
}

// RawPointBytes is the uncompressed storage cost of one point (Sec. II-A:
// 4 bytes per coordinate, 1 byte per colour channel).
const RawPointBytes = 15

// Voxel is a quantized point: unsigned lattice coordinates plus attribute.
// The compression pipelines operate exclusively on voxels.
type Voxel struct {
	X, Y, Z uint32
	C       Color
}

// Vec3 returns the voxel's coordinates as floats.
func (v Voxel) Vec3() (x, y, z float64) {
	return float64(v.X), float64(v.Y), float64(v.Z)
}

// Dist2 returns the squared Euclidean distance between the lattice positions
// of two voxels.
func (v Voxel) Dist2(o Voxel) float64 {
	dx := float64(v.X) - float64(o.X)
	dy := float64(v.Y) - float64(o.Y)
	dz := float64(v.Z) - float64(o.Z)
	return dx*dx + dy*dy + dz*dz
}

// String implements fmt.Stringer for debugging.
func (v Voxel) String() string {
	return fmt.Sprintf("(%d,%d,%d)#%02x%02x%02x", v.X, v.Y, v.Z, v.C.R, v.C.G, v.C.B)
}

// AABB is an axis-aligned bounding box over float coordinates.
type AABB struct {
	MinX, MinY, MinZ float32
	MaxX, MaxY, MaxZ float32
}

// EmptyAABB returns a box that contains nothing; Extend-ing it with the
// first point initializes it.
func EmptyAABB() AABB {
	inf := float32(math.Inf(1))
	return AABB{inf, inf, inf, -inf, -inf, -inf}
}

// Empty reports whether the box contains no volume (never extended).
func (b AABB) Empty() bool {
	return b.MinX > b.MaxX
}

// Extend grows the box to include p.
func (b *AABB) Extend(p Point) {
	b.MinX = min(b.MinX, p.X)
	b.MinY = min(b.MinY, p.Y)
	b.MinZ = min(b.MinZ, p.Z)
	b.MaxX = max(b.MaxX, p.X)
	b.MaxY = max(b.MaxY, p.Y)
	b.MaxZ = max(b.MaxZ, p.Z)
}

// Contains reports whether p lies inside the closed box.
func (b AABB) Contains(p Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX &&
		p.Y >= b.MinY && p.Y <= b.MaxY &&
		p.Z >= b.MinZ && p.Z <= b.MaxZ
}

// Size returns the side lengths of the box; zero for an empty box.
func (b AABB) Size() (dx, dy, dz float32) {
	if b.Empty() {
		return 0, 0, 0
	}
	return b.MaxX - b.MinX, b.MaxY - b.MinY, b.MaxZ - b.MinZ
}

// MaxSide returns the largest side length.
func (b AABB) MaxSide() float32 {
	dx, dy, dz := b.Size()
	return max(dx, max(dy, dz))
}
