package pcc

import (
	"sync"
	"testing"
)

// Independent encoder/decoder pairs must be safely usable from concurrent
// goroutines (each owns its device; the internal worker pools are shared
// only through the runtime). Run with -race.
func TestConcurrentSessions(t *testing.T) {
	v := testVideo(t)
	f0, err := v.Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := v.Frame(1)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for _, d := range Designs() {
		for rep := 0; rep < 2; rep++ {
			wg.Add(1)
			go func(d Design) {
				defer wg.Done()
				o := DefaultOptions(d)
				o.IntraAttr.Segments = 300
				o.Inter.Segments = 400
				o.Inter.Candidates = 16
				enc := NewEncoderOptions(o)
				dec := NewDecoder(o)
				for _, f := range []*PointCloud{f0, f1} {
					bits, _, err := enc.Encode(f)
					if err != nil {
						errs <- err
						return
					}
					if _, err := dec.Decode(bits); err != nil {
						errs <- err
						return
					}
				}
			}(d)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Two encoders sharing ONE device must accumulate consistent totals (the
// device is documented as single-session, but its accounting must at least
// stay race-free for the harness's sequential use).
func TestSequentialSharedDevice(t *testing.T) {
	v := testVideo(t)
	f, _ := v.Frame(0)
	dev := NewDevice(Mode15W)
	o := DefaultOptions(IntraOnly)
	o.IntraAttr.Segments = 300
	a := NewEncoderOn(dev, o)
	b := NewEncoderOn(dev, o)
	if _, _, err := a.Encode(f); err != nil {
		t.Fatal(err)
	}
	t1 := dev.SimTime()
	if _, _, err := b.Encode(f); err != nil {
		t.Fatal(err)
	}
	t2 := dev.SimTime()
	if t2 <= t1 || t2 >= 3*t1 {
		t.Fatalf("shared-device accumulation odd: %v then %v", t1, t2)
	}
}
