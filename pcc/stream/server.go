package stream

// Server is the encode-once fan-out: one capture feed drives a single
// shared encode pipeline (a Session with its geometry lookahead and
// scratch-arena hot path), and each encoded frame is broadcast to every
// attached Viewer. N viewers cost ONE encode per frame — the serving-scale
// amortization the ROADMAP's session-multiplexing item asks for — while
// per-viewer queues, sequence spaces, and retransmit buffers keep a slow
// or lossy viewer from stalling the rest.
//
//	capture ─▶ [shared Session: geometry ∥ attr ∥ packetize ∥ transmit]
//	                                │ FrameOut (one encode per frame)
//	                ┌───────────────┼────────────────┐
//	           Viewer A        Viewer B          Viewer C …
//	         queue+seq+retx  queue+seq+retx   queue+seq+retx
//	                │               │                │
//	           PacketOut       PacketOut        PacketOut
//
// Keyframe cache: the server retains the last encoded I-frame's wire
// bytes, so a late-joining viewer starts from a decodable keyframe
// immediately (packets marked FlagCached) instead of forcing a mid-GOP
// re-encode. Receiver-requested I-frame refreshes — and cacheless
// mid-stream joins — are coalesced into at most one GOP restart: the
// first request arms the encoder, later ones ride along until the next
// I-frame clears the arm.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/codec"
	"repro/internal/edgesim"
	"repro/internal/geom"
	"repro/internal/linksim"
)

// ErrServerClosed reports an operation on a closed Server.
var ErrServerClosed = errors.New("stream: server closed")

// ServerConfig configures a Server. The zero value of every field is
// usable: paper-default codec options require only Options.Design; the
// per-viewer defaults mirror Session's.
type ServerConfig struct {
	// Options selects and configures the shared codec (as codec.OptionsFor).
	Options codec.Options
	// Mode selects the modelled edge board's power budget.
	Mode edgesim.PowerMode
	// Queue is the shared pipeline's per-stage queue capacity (default 4).
	Queue int
	// Lookahead is the shared pipeline's concurrent geometry depth.
	Lookahead int
	// Link is the default per-viewer downlink (default linksim.WiFi); a
	// ViewerConfig.Link overrides it per viewer.
	Link linksim.Link
	// MTU is the default per-viewer packet payload size (default 1400).
	MTU int
	// ViewerQueue is the default per-viewer send-queue capacity in frames
	// (default 8).
	ViewerQueue int
	// RetransmitBuffer is the default per-viewer retained-packet cap
	// (default 1024).
	RetransmitBuffer int
	// FeedbackQuantile picks the per-viewer loss rate fed to the shared
	// congestion controller (Options.Adapt): with N reporting viewers the
	// controller sees the ceil(q·N)-th worst loss (default 0.9). 1 tracks
	// the single worst viewer; lower values let outliers resolve through
	// their own queue shedding while fleet-wide loss adapts the encode.
	FeedbackQuantile float64
}

func (c ServerConfig) normalized() ServerConfig {
	if c.Link.BandwidthMbps <= 0 {
		c.Link = linksim.WiFi
	}
	if c.MTU < 64 {
		c.MTU = 1400
	}
	if c.ViewerQueue < 1 {
		c.ViewerQueue = 8
	}
	if c.RetransmitBuffer < 1 {
		c.RetransmitBuffer = 1024
	}
	if c.FeedbackQuantile <= 0 || c.FeedbackQuantile > 1 {
		c.FeedbackQuantile = 0.9
	}
	return c
}

// ServerMetrics is a point-in-time snapshot of the fan-out state.
type ServerMetrics struct {
	// FramesEncoded counts frames the shared pipeline encoded — one per
	// submitted frame, however many viewers are attached.
	FramesEncoded int64
	// IFrames counts the keyframes among them (GOP opens plus restarts).
	IFrames int64
	// Refreshes counts GOP restarts actually applied by the encoder;
	// RefreshesCoalesced counts refresh requests absorbed by an
	// already-armed restart.
	Refreshes          int64
	RefreshesCoalesced int64
	// CachedJoins counts viewers whose first frame came from the keyframe
	// cache; KeyframeCached reports whether the cache currently holds one.
	CachedJoins    int64
	KeyframeCached bool
	// Viewers is the current attachment count.
	Viewers int
	// Pipeline is the shared Session's snapshot (queues, device ledgers).
	Pipeline Metrics
	// PerViewer lists every attached viewer's snapshot, by StreamID.
	PerViewer []ViewerMetrics
}

// sharedFrame is one encoded frame shared by all viewers: the wire bytes
// are copied once out of the session's recycled buffer and never mutated.
type sharedFrame struct {
	index  int // shared-pipeline frame index (viewers renumber locally)
	ftype  codec.FrameType
	wire   []byte
	cached bool // replayed from the keyframe cache (late join)
}

// Server fans one encode out to N viewers. Create with NewServer, attach
// viewers with Attach (before or during the stream), feed frames with
// Submit, then Close to drain. All methods are safe for concurrent use.
type Server struct {
	cfg  ServerConfig
	sess *Session
	done chan struct{} // results collector finished

	mu           sync.Mutex
	viewers      []*Viewer
	byID         map[uint32]*Viewer
	nextID       uint32
	cache        *sharedFrame
	refreshArmed bool
	coalesced    int64
	cachedJoins  int64
	encoded      int64
	iFrames      int64
	closed       bool
}

// NewServer starts the shared encode pipeline. Cancelling ctx aborts it.
func NewServer(ctx context.Context, cfg ServerConfig) *Server {
	cfg = cfg.normalized()
	sv := &Server{
		cfg:  cfg,
		byID: make(map[uint32]*Viewer),
		done: make(chan struct{}),
	}
	sv.sess = New(ctx, Config{
		Options:   cfg.Options,
		Mode:      cfg.Mode,
		Queue:     cfg.Queue,
		Lookahead: cfg.Lookahead,
		MTU:       cfg.MTU,
		// The shared pipeline never sheds frames; per-viewer queues are
		// where slowness resolves, in isolation.
		Policy:   Block,
		FrameOut: sv.broadcast,
	})
	// The session's Results channel must drain for the pipeline to flow;
	// the broadcast hook does the accounting, so the fates are discarded.
	go func() {
		defer close(sv.done)
		for range sv.sess.Results() {
		}
	}()
	return sv
}

// Options returns the shared encoder's normalized configuration (e.g. for
// building matching ReceiverConfigs).
func (sv *Server) Options() codec.Options { return sv.sess.Options() }

// Submit hands the shared pipeline the next captured frame. It blocks when
// the pipeline's ingest queue is full. Single producer, like
// Session.Submit.
func (sv *Server) Submit(ctx context.Context, vc *geom.VoxelCloud) error {
	return sv.sess.Submit(ctx, vc)
}

// broadcast is the shared session's FrameOut hook: copy the frame once,
// refresh the keyframe cache, and offer it to every viewer's queue. Runs
// on the transmit stage; per-viewer enqueue never blocks.
func (sv *Server) broadcast(_ context.Context, seq int, ftype codec.FrameType, wire []byte) error {
	f := &sharedFrame{index: seq, ftype: ftype, wire: append([]byte(nil), wire...)}
	sv.mu.Lock()
	sv.encoded++
	if ftype == codec.IFrame {
		sv.iFrames++
		sv.cache = f
		sv.refreshArmed = false // the pending restart (if any) just landed
	}
	for _, v := range sv.viewers {
		v.enqueue(f)
	}
	sv.mu.Unlock()
	return nil
}

// Attach adds a viewer and starts its sender. When the keyframe cache
// holds an I-frame the viewer's stream opens with it (frame 0, packets
// marked FlagCached), so a mid-GOP join decodes immediately without a
// re-encode; a cacheless mid-stream join instead arms a (coalesced)
// I-frame restart and skips P-frames until the keyframe arrives.
func (sv *Server) Attach(cfg ViewerConfig) (*Viewer, error) {
	if cfg.Link.BandwidthMbps <= 0 {
		cfg.Link = sv.cfg.Link
	}
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return nil, ErrServerClosed
	}
	id := cfg.StreamID
	if id == 0 {
		sv.nextID++
		id = sv.nextID
		for sv.byID[id] != nil { // skip explicit ids already taken
			sv.nextID++
			id = sv.nextID
		}
	} else if sv.byID[id] != nil {
		sv.mu.Unlock()
		return nil, fmt.Errorf("stream: viewer id %d already attached", id)
	}
	v := newViewer(sv, cfg, id, sv.cache != nil)
	sv.viewers = append(sv.viewers, v)
	sv.byID[id] = v
	needRestart := false
	if sv.cache != nil {
		cached := &sharedFrame{index: sv.cache.index, ftype: sv.cache.ftype,
			wire: sv.cache.wire, cached: true}
		v.enqueue(cached)
		sv.cachedJoins++
	} else if sv.encoded > 0 {
		// Mid-stream join with an empty cache (nothing but P-frames so
		// far would be unusual, but possible after a server restart):
		// fall back to a coalesced GOP restart.
		needRestart = true
	}
	sv.mu.Unlock()
	if needRestart {
		sv.requestIFrame()
	}
	go v.sendLoop()
	return v, nil
}

// Detach removes a viewer: its queue is abandoned, its sender stops, and
// its retransmit buffer is freed. Counters stay readable via the returned
// Viewer's Metrics. Detaching an unknown (or already detached) viewer is a
// no-op.
func (sv *Server) Detach(v *Viewer) {
	sv.mu.Lock()
	if _, ok := sv.byID[v.id]; !ok || sv.byID[v.id] != v {
		sv.mu.Unlock()
		return
	}
	delete(sv.byID, v.id)
	for i, w := range sv.viewers {
		if w == v {
			sv.viewers = append(sv.viewers[:i], sv.viewers[i+1:]...)
			break
		}
	}
	sv.mu.Unlock()
	v.shutdown(true)
}

// HandleControl routes a receiver→sender control message to the viewer
// that owns its stream id (e.g. from a shared control socket). Messages
// for unknown stream ids — a viewer that just detached — are dropped.
func (sv *Server) HandleControl(c Control) error {
	sv.mu.Lock()
	v := sv.byID[c.StreamID]
	sv.mu.Unlock()
	if v == nil {
		return nil
	}
	return v.HandleControl(c)
}

// observeFeedback aggregates per-viewer observed loss into the shared
// controller's signal after one viewer's report landed (fb). Per-viewer
// queues already isolate one congested viewer; the shared encode only
// reacts when the FeedbackQuantile-th worst viewer sees loss, so the
// controller tracks sustained fleet-wide congestion, not a single outlier
// (unless the quantile is set to 1). Lock order is broadcast's: sv.mu,
// then each viewer's mu.
func (sv *Server) observeFeedback(fb Feedback) {
	ctrl := sv.sess.Controller()
	if ctrl == nil {
		return
	}
	sv.mu.Lock()
	losses := make([]float64, 0, len(sv.viewers))
	for _, v := range sv.viewers {
		v.mu.Lock()
		if v.fbReports > 0 {
			losses = append(losses, v.lastLoss)
		}
		v.mu.Unlock()
	}
	sv.mu.Unlock()
	if len(losses) == 0 {
		return
	}
	sort.Float64s(losses)
	idx := int(math.Ceil(sv.cfg.FeedbackQuantile*float64(len(losses)))) - 1
	if idx < 0 {
		idx = 0
	}
	ctrl.ObserveFeedback(codec.Signal{
		LossRate:  losses[idx],
		NACKs:     int(fb.NACKs),
		Concealed: int(fb.Concealed),
		Skipped:   int(fb.Skipped),
	})
}

// Controller returns the shared pipeline's congestion controller, nil
// unless Options.Adapt is enabled.
func (sv *Server) Controller() *codec.Controller { return sv.sess.Controller() }

// requestIFrame arms one coalesced GOP restart: the first caller forces
// the encoder, every caller before the next I-frame lands rides along.
func (sv *Server) requestIFrame() {
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return
	}
	armed := sv.refreshArmed
	if armed {
		sv.coalesced++
	} else {
		sv.refreshArmed = true
	}
	sv.mu.Unlock()
	if !armed {
		// ControlRefresh never touches PacketOut, so no error can surface.
		_ = sv.sess.HandleControl(Control{Kind: ControlRefresh})
	}
}

// Metrics snapshots the server, the shared pipeline, and every attached
// viewer (sorted by stream id).
func (sv *Server) Metrics() ServerMetrics {
	sv.mu.Lock()
	m := ServerMetrics{
		FramesEncoded:      sv.encoded,
		IFrames:            sv.iFrames,
		RefreshesCoalesced: sv.coalesced,
		CachedJoins:        sv.cachedJoins,
		KeyframeCached:     sv.cache != nil,
		Viewers:            len(sv.viewers),
	}
	vs := append([]*Viewer(nil), sv.viewers...)
	sv.mu.Unlock()
	m.Pipeline = sv.sess.Metrics()
	m.Refreshes = m.Pipeline.Refreshes
	for _, v := range vs {
		m.PerViewer = append(m.PerViewer, v.Metrics())
	}
	sort.Slice(m.PerViewer, func(i, j int) bool {
		return m.PerViewer[i].StreamID < m.PerViewer[j].StreamID
	})
	return m
}

// Err returns the shared pipeline's first error, if any.
func (sv *Server) Err() error { return sv.sess.Err() }

// Close stops accepting frames, drains the shared pipeline (every
// broadcast lands in viewer queues), then drains and stops every viewer's
// sender. Idempotent; returns the pipeline's close error. Attached
// viewers' counters stay readable afterwards.
func (sv *Server) Close() error {
	err := sv.sess.Close()
	<-sv.done
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return err
	}
	sv.closed = true
	vs := append([]*Viewer(nil), sv.viewers...)
	sv.mu.Unlock()
	for _, v := range vs {
		v.shutdown(err != nil) // drain on a clean close, discard on abort
	}
	return err
}

// Cancel aborts the shared pipeline and every viewer immediately.
func (sv *Server) Cancel() {
	sv.sess.Cancel()
	sv.mu.Lock()
	vs := append([]*Viewer(nil), sv.viewers...)
	sv.mu.Unlock()
	for _, v := range vs {
		v.mu.Lock()
		v.closed, v.discard = true, true
		v.queue = nil
		v.cond.Broadcast()
		v.mu.Unlock()
	}
}
