//go:build !unix

package main

import "time"

// processCPUTime is unavailable off unix; callers fall back to wall time.
func processCPUTime() (time.Duration, bool) { return 0, false }
