// Package edgesim models the edge SoC the paper evaluates on (an NVIDIA
// Jetson AGX Xavier: 512-core Volta iGPU + 8-core ARMv8 CPU sharing LPDDR4x
// memory), replacing hardware we do not have with an execution model.
//
// Two things happen on every stage:
//
//  1. The stage's body REALLY RUNS, with real data parallelism: GPU kernels
//     execute over a goroutine worker pool using the same grid/work
//     decomposition a CUDA launch would use, so results are genuine and
//     races/ordering bugs surface in tests.
//  2. The stage is ACCOUNTED by an analytic device model: simulated latency
//     is derived from item counts, per-item operation/byte costs, core
//     counts and launch overheads; simulated energy integrates the
//     per-component power model over that latency. The model's constants
//     are calibrated so the baseline stage latencies and board powers match
//     the paper's measurements (Figs. 2, 8; Sec. VI-C), and — crucially —
//     latency scales with the same asymptotics the paper derives:
//     O(N*D) for the sequential CPU pipeline vs O(sum_i N_i/k) for the
//     k-core parallel pipeline.
//
// Both simulated time and real wall-clock time are recorded; experiment
// harnesses report simulated edge-board numbers (comparable to the paper)
// with wall time available for sanity checks.
package edgesim

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// PowerMode selects the board's power budget (Sec. VI-C evaluates 15 W and
// 10 W modes; the paper reports 10 W mode running 1.29x slower).
type PowerMode int

const (
	// Mode15W is the board configuration used for the paper's main results.
	Mode15W PowerMode = iota
	// Mode10W is the reduced-budget smartphone-comparable configuration.
	Mode10W
)

func (m PowerMode) String() string {
	if m == Mode10W {
		return "10W"
	}
	return "15W"
}

// Config describes the modelled SoC. The zero value is unusable; use
// XavierConfig for the board the paper evaluates.
type Config struct {
	Name string

	// CPU model.
	CPUCores        int     // hardware threads available to the encoder
	CPUGopsPerCore  float64 // effective scalar throughput per core (Gops/s)
	CPUIdleMW       float64 // CPU-rail power with the encoder idle
	CPUPerThreadMW  float64 // additional CPU-rail power per busy thread
	CPUSerialFactor float64 // throughput derating for pointer-chasing serial code

	// GPU model.
	GPUCores       int           // CUDA cores
	GPUGopsPerSM   float64       // effective per-core throughput for irregular kernels (Gops/s)
	GPUActiveMW    float64       // GPU-rail power while any kernel is resident
	LaunchOverhead time.Duration // per-kernel launch + sync cost

	// Shared memory system.
	MemBandwidthGBs float64 // LPDDR4x streaming bandwidth available to one engine

	// Board.
	BaseMW float64 // always-on rail (SoC fabric, DRAM refresh, regulators)

	// Accel optionally attaches the paper's projected fixed-function
	// unit (Sec. VI-D future work); zero value = no accelerator.
	Accel AccelConfig

	// SpeedScale derates all engine throughputs (<1 is slower). Used to
	// derive the 10 W mode from the 15 W calibration.
	SpeedScale float64
	// PowerScale derates active power draws.
	PowerScale float64
}

// XavierConfig returns the calibrated model of the Jetson AGX Xavier in the
// given power mode.
//
// Calibration anchors (paper, Sec. VI):
//   - TMC13-like CPU power 1687 mW (1 busy thread) -> idle 1040 + 647/thread
//   - CWIPC-like CPU power 3622 mW (4 busy threads) -> 1040 + 4*647 = 3628
//   - our GPU power 1065 mW, our CPU power 1310 mW, board total ~4 W
//   - 10 W mode runs 1.29x slower than 15 W mode
//
// Effective throughputs are fitted so the reproduced baseline stages land at
// the paper's reported latencies for ~0.8 M-point frames (Fig. 2): they are
// "achieved" throughputs for the irregular, memory-bound kernels of PCC, not
// peak FLOPs.
func XavierConfig(mode PowerMode) Config {
	c := Config{
		Name:            "Jetson-AGX-Xavier",
		CPUCores:        8,
		CPUGopsPerCore:  1.0,
		CPUIdleMW:       1040,
		CPUPerThreadMW:  647,
		CPUSerialFactor: 1.0,
		GPUCores:        512,
		GPUGopsPerSM:    0.039, // 512 cores -> ~20 Gops/s achieved on irregular kernels
		GPUActiveMW:     1065,
		LaunchOverhead:  20 * time.Microsecond,
		MemBandwidthGBs: 100,
		BaseMW:          1000,
		SpeedScale:      1.0,
		PowerScale:      1.0,
	}
	if mode == Mode10W {
		c.Name += "-10W"
		c.SpeedScale = 1.0 / 1.29
		c.PowerScale = 0.72
	}
	return c
}

// KernelRecord is one ledger entry: a named kernel (or serial stage) with
// its accounted work and simulated cost. Fig. 9 is produced directly from
// this ledger.
type KernelRecord struct {
	Name     string
	Stage    string // enclosing stage at launch time
	Engine   Engine
	Launches int
	Items    int64
	Ops      float64
	Bytes    float64
	SimTime  time.Duration
	EnergyJ  float64
	// ModelThreads is the core count the analytic model charged for CPU
	// work (0 for GPU/accel kernels, whose model uses the full engine).
	ModelThreads int
	// RealWorkers is the largest goroutine worker count the real execution
	// actually used across launches. When it is smaller than ModelThreads
	// the host clamped the launch (GOMAXPROCS below the modelled cores), so
	// wall-vs-sim comparisons for this kernel are not like-for-like.
	RealWorkers int
}

// Clamped reports whether real execution ran on fewer workers than the
// analytic model assumed — the wall-clock sanity check must not read this
// kernel's wall time as a model validation when true.
func (k KernelRecord) Clamped() bool {
	return k.ModelThreads > 0 && k.RealWorkers < k.ModelThreads
}

// StageRecord aggregates simulated time/energy for a named pipeline stage
// (Figs. 2 and 8a are stage-level breakdowns).
type StageRecord struct {
	Name    string
	SimTime time.Duration
	EnergyJ float64
}

// Engine identifies which execution engine ran a piece of work.
type Engine int

const (
	// EngineCPU work runs on the ARM cores.
	EngineCPU Engine = iota
	// EngineGPU work runs as GPU kernels.
	EngineGPU
	// EngineAccel work runs on the modelled fixed-function unit.
	EngineAccel
)

func (e Engine) String() string {
	switch e {
	case EngineGPU:
		return "GPU"
	case EngineAccel:
		return "ASIC"
	default:
		return "CPU"
	}
}

// Cost gives the model's per-item work for a kernel: arithmetic/control
// operations and bytes moved through DRAM. Constants used by the pipelines
// live next to the algorithms they describe.
type Cost struct {
	OpsPerItem   float64
	BytesPerItem float64
}

// Device is a simulated edge SoC. It is safe for use from a single encoding
// goroutine; the kernels it launches use internal worker pools.
type Device struct {
	cfg Config

	mu       sync.Mutex
	simTime  time.Duration
	energyJ  float64
	wallBusy time.Duration

	stageStack  []string
	stages      map[string]*StageRecord
	stageOrder  []string
	kernels     map[string]*KernelRecord
	kernelOrder []string

	workers int
	pool    *Pool
}

// New creates a device with the given configuration. The device attaches to
// the persistent kernel worker pool (created on the first New, shared by
// every device in the process the way concurrent sessions share one SoC),
// so kernel launches wake parked workers instead of spawning goroutines.
func New(cfg Config) *Device {
	p := newSharedPool()
	return &Device{
		cfg:     cfg,
		stages:  make(map[string]*StageRecord),
		kernels: make(map[string]*KernelRecord),
		workers: p.Workers(),
		pool:    p,
	}
}

// NewXavier is shorthand for New(XavierConfig(mode)).
func NewXavier(mode PowerMode) *Device { return New(XavierConfig(mode)) }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Reset clears all accumulated accounting (ledgers, stages, clocks).
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.simTime = 0
	d.energyJ = 0
	d.wallBusy = 0
	d.stageStack = nil
	d.stages = make(map[string]*StageRecord)
	d.stageOrder = nil
	d.kernels = make(map[string]*KernelRecord)
	d.kernelOrder = nil
}

// SimTime returns total simulated elapsed time.
func (d *Device) SimTime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.simTime
}

// EnergyJ returns total simulated energy in joules.
func (d *Device) EnergyJ() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.energyJ
}

// WallTime returns the real time spent inside device stages (for sanity
// checking the model against actual Go execution).
func (d *Device) WallTime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wallBusy
}

// BeginStage pushes a named stage; all kernels launched until the matching
// EndStage are attributed to it. Stages may nest; attribution goes to the
// innermost stage.
func (d *Device) BeginStage(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stageStack = append(d.stageStack, name)
	if _, ok := d.stages[name]; !ok {
		d.stages[name] = &StageRecord{Name: name}
		d.stageOrder = append(d.stageOrder, name)
	}
}

// EndStage pops the innermost stage.
func (d *Device) EndStage() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.stageStack) > 0 {
		d.stageStack = d.stageStack[:len(d.stageStack)-1]
	}
}

// Stage runs f inside a named stage.
func (d *Device) Stage(name string, f func()) {
	d.BeginStage(name)
	defer d.EndStage()
	f()
}

func (d *Device) currentStage() string {
	if len(d.stageStack) == 0 {
		return ""
	}
	return d.stageStack[len(d.stageStack)-1]
}

// account books simulated time/energy for a kernel under the current stage.
// threads is the core count the analytic model charged (CPU engines);
// realWorkers is the goroutine worker count the real execution used.
// Callers must NOT hold d.mu.
func (d *Device) account(name string, engine Engine, items int64, c Cost, simTime time.Duration, wall time.Duration, threads, realWorkers int) {
	power := d.powerMW(engine, threads)
	energy := power / 1000 * simTime.Seconds()

	d.mu.Lock()
	defer d.mu.Unlock()
	d.simTime += simTime
	d.energyJ += energy
	d.wallBusy += wall

	stage := d.currentStage()
	if stage != "" {
		sr := d.stages[stage]
		sr.SimTime += simTime
		sr.EnergyJ += energy
	}
	key := stage + "/" + name
	kr, ok := d.kernels[key]
	if !ok {
		kr = &KernelRecord{Name: name, Stage: stage, Engine: engine}
		d.kernels[key] = kr
		d.kernelOrder = append(d.kernelOrder, key)
	}
	kr.Launches++
	kr.Items += items
	kr.Ops += c.OpsPerItem * float64(items)
	kr.Bytes += c.BytesPerItem * float64(items)
	kr.SimTime += simTime
	kr.EnergyJ += energy
	if threads > kr.ModelThreads {
		kr.ModelThreads = threads
	}
	if realWorkers > kr.RealWorkers {
		kr.RealWorkers = realWorkers
	}
}

// powerMW returns the board power draw while the given engine executes.
func (d *Device) powerMW(engine Engine, threads int) float64 {
	p := d.cfg.BaseMW + d.cfg.CPUIdleMW
	switch engine {
	case EngineGPU:
		// Kernels still keep one CPU thread busy feeding the GPU.
		p += d.cfg.GPUActiveMW + d.cfg.CPUPerThreadMW
	case EngineAccel:
		// The fixed-function unit streams from DRAM with one CPU thread
		// feeding descriptors.
		p += d.cfg.Accel.ActiveMW + d.cfg.CPUPerThreadMW
	case EngineCPU:
		p += d.cfg.CPUPerThreadMW * float64(threads)
	}
	return d.cfg.BaseMW + (p-d.cfg.BaseMW)*d.cfg.PowerScale
}

// gpuTime models a kernel over n items: launch overhead plus the larger of
// compute time (ops over aggregate achieved throughput) and memory time
// (bytes over streaming bandwidth).
func (d *Device) gpuTime(items int64, c Cost) time.Duration {
	agg := float64(d.cfg.GPUCores) * d.cfg.GPUGopsPerSM * 1e9 * d.cfg.SpeedScale
	bw := d.cfg.MemBandwidthGBs * 1e9 * d.cfg.SpeedScale
	compute := c.OpsPerItem * float64(items) / agg
	mem := c.BytesPerItem * float64(items) / bw
	t := compute
	if mem > t {
		t = mem
	}
	launch := time.Duration(float64(d.cfg.LaunchOverhead) / d.cfg.SpeedScale)
	return launch + time.Duration(t*float64(time.Second))
}

// cpuTime models CPU execution over n items on `threads` cores.
func (d *Device) cpuTime(items int64, c Cost, threads int) time.Duration {
	if threads < 1 {
		threads = 1
	}
	agg := float64(threads) * d.cfg.CPUGopsPerCore * d.cfg.CPUSerialFactor * 1e9 * d.cfg.SpeedScale
	bw := d.cfg.MemBandwidthGBs * 1e9 * d.cfg.SpeedScale
	compute := c.OpsPerItem * float64(items) / agg
	mem := c.BytesPerItem * float64(items) / bw
	t := compute
	if mem > t {
		t = mem
	}
	return time.Duration(t * float64(time.Second))
}

// GPUKernel launches a data-parallel kernel over items elements. body is
// invoked concurrently over contiguous index ranges [start, end), mirroring
// a CUDA grid where each "thread block" owns a range. body must not write
// outside its range without its own synchronization.
func (d *Device) GPUKernel(name string, items int, c Cost, body func(start, end int)) {
	start := time.Now()
	d.pool.ranges(d.workers, items, body)
	wall := time.Since(start)
	d.account(name, EngineGPU, int64(items), c, d.gpuTime(int64(items), c), wall, 0, d.workers)
}

// GPUCompute accounts one kernel launch while running f once on the calling
// goroutine. f is a compound kernel body: it parallelizes internally through
// the device primitives (ParallelFor, ScanFlags, GatherFlags, Pool), so
// multi-phase GPU stages (sort passes, scan+compact) genuinely use every
// core while still appearing as a single ledger entry, exactly like a fused
// CUDA kernel.
func (d *Device) GPUCompute(name string, items int, c Cost, f func()) {
	start := time.Now()
	f()
	wall := time.Since(start)
	d.account(name, EngineGPU, int64(items), c, d.gpuTime(int64(items), c), wall, 0, d.workers)
}

// GPUKernelIdx is GPUKernel with a per-index body, for kernels whose items
// are independent.
func (d *Device) GPUKernelIdx(name string, items int, c Cost, body func(i int)) {
	d.GPUKernel(name, items, c, func(start, end int) {
		for i := start; i < end; i++ {
			body(i)
		}
	})
}

// GPUNoop accounts a kernel without executing a body — used when the work
// already happened as a by-product of another call but the paper's pipeline
// launches it as a distinct kernel (keeps the Fig. 9 ledger faithful).
func (d *Device) GPUNoop(name string, items int, c Cost) {
	d.account(name, EngineGPU, int64(items), c, d.gpuTime(int64(items), c), 0, 0, 0)
}

// CPUSerial runs body on one CPU thread and accounts items*cost of work.
// This is the execution mode of the baseline (sequential-update) pipelines.
func (d *Device) CPUSerial(name string, items int, c Cost, body func()) {
	start := time.Now()
	body()
	wall := time.Since(start)
	d.account(name, EngineCPU, int64(items), c, d.cpuTime(int64(items), c, 1), wall, 1, 1)
}

// CPUParallel runs body over `threads` OS-thread-like workers (the CWIPC
// baseline uses 4 matching threads). The real execution uses min(threads,
// GOMAXPROCS) pool workers while the model uses exactly `threads` cores;
// the ledger records both (KernelRecord.ModelThreads / .RealWorkers), so
// wall-vs-sim sanity checks can see when the host clamped the launch.
func (d *Device) CPUParallel(name string, threads, items int, c Cost, body func(start, end int)) {
	if threads < 1 {
		threads = 1
	}
	if threads > d.cfg.CPUCores {
		threads = d.cfg.CPUCores
	}
	start := time.Now()
	w := threads
	if w > d.workers {
		w = d.workers
	}
	d.pool.ranges(w, items, body)
	wall := time.Since(start)
	d.account(name, EngineCPU, int64(items), c, d.cpuTime(int64(items), c, threads), wall, threads, w)
}

// Stages returns stage records in first-use order.
func (d *Device) Stages() []StageRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]StageRecord, 0, len(d.stageOrder))
	for _, name := range d.stageOrder {
		out = append(out, *d.stages[name])
	}
	return out
}

// Kernels returns kernel records in first-launch order.
func (d *Device) Kernels() []KernelRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]KernelRecord, 0, len(d.kernelOrder))
	for _, key := range d.kernelOrder {
		out = append(out, *d.kernels[key])
	}
	return out
}

// KernelsByEnergy returns kernel records sorted by descending energy —
// the view Fig. 9 presents.
func (d *Device) KernelsByEnergy() []KernelRecord {
	ks := d.Kernels()
	sort.Slice(ks, func(i, j int) bool { return ks[i].EnergyJ > ks[j].EnergyJ })
	return ks
}

// Snapshot captures current totals.
type Snapshot struct {
	SimTime time.Duration
	EnergyJ float64
}

// Snapshot returns the device's current totals, for before/after deltas.
func (d *Device) Snapshot() Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Snapshot{SimTime: d.simTime, EnergyJ: d.energyJ}
}

// Since returns the totals accumulated after an earlier snapshot.
func (d *Device) Since(s Snapshot) Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Snapshot{SimTime: d.simTime - s.SimTime, EnergyJ: d.energyJ - s.EnergyJ}
}

// String summarizes the device state.
func (d *Device) String() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return fmt.Sprintf("%s: sim=%v energy=%.3fJ wall=%v", d.cfg.Name, d.simTime, d.energyJ, d.wallBusy)
}
