package main

// Fan-out serving benchmark: one stream.Server encodes the bench workload
// once while N attached viewers packetize, account, and (virtually)
// transmit it — the encode-amortization claim measured end to end.
//
//	pccbench fanout                    sweep viewers 1 → 64
//	pccbench -viewers 8 fanout         one point
//	pccbench -viewers 8 -floor 100 fanout
//	                                   CI smoke: fail when the aggregate
//	                                   delivered viewer-frames/s < 100
//
// (Flags precede the experiment name: the flag package stops parsing at
// the first positional argument.)
//
// The aggregate delivered viewer-frames/s is the serving capacity: with
// the encode paid once, it should scale near-linearly with the viewer
// count until packetization or the shared egress link saturates. The
// encode cost per viewer — the shared pipeline's simulated device time
// divided by the viewer count — is the amortization itself: it must fall
// as 1/N while per-session designs hold it constant.

import (
	"context"
	"flag"
	"fmt"
	"runtime"
	"time"

	"repro/internal/codec"
	"repro/internal/geom"
	"repro/internal/linksim"
	"repro/pcc/stream"
)

// fanoutPoint is one sweep measurement.
type fanoutPoint struct {
	Viewers       int
	Wall          time.Duration
	FramesEncoded int64
	AggVFPS       float64 // delivered viewer-frames / wall second
	EncCPUPerView time.Duration
	Dropped       int64
	Resyncs       int64
}

// runFanoutPoint streams the workload to n viewers and measures delivery.
func runFanoutPoint(n int, frames []*geom.VoxelCloud) (fanoutPoint, error) {
	srv := stream.NewServer(context.Background(), stream.ServerConfig{
		Options: benchOptions(codec.IntraInterV1),
		// One egress radio shared by all viewers.
		Link:        linksim.WiFi.Share(n),
		ViewerQueue: 64,
	})
	views := make([]*stream.Viewer, n)
	for i := range views {
		v, err := srv.Attach(stream.ViewerConfig{})
		if err != nil {
			return fanoutPoint{}, err
		}
		views[i] = v
	}
	start := time.Now()
	for _, f := range frames {
		if err := srv.Submit(context.Background(), f); err != nil {
			return fanoutPoint{}, err
		}
	}
	if err := srv.Close(); err != nil {
		return fanoutPoint{}, err
	}
	wall := time.Since(start)

	m := srv.Metrics()
	pt := fanoutPoint{
		Viewers:       n,
		Wall:          wall,
		FramesEncoded: m.FramesEncoded,
	}
	var sent int64
	for _, vm := range m.PerViewer {
		sent += vm.FramesSent
		pt.Dropped += vm.FramesDropped
		pt.Resyncs += vm.Resyncs
	}
	pt.AggVFPS = float64(sent) / wall.Seconds()
	encCPU := m.Pipeline.GeometrySim + m.Pipeline.AttrSim
	pt.EncCPUPerView = encCPU / time.Duration(n)
	return pt, nil
}

// runFanout is the `fanout` experiment entry point.
func runFanout(cfg benchConfig) error {
	// The workload is the steady-state bench set (60 frames); an explicit
	// -frames flag overrides the count for quick smoke runs.
	nframes := benchFrames
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "frames" {
			nframes = cfg.Frames
		}
	})
	frames, err := benchFrameSet()
	if err != nil {
		return err
	}
	if nframes < len(frames) {
		frames = frames[:nframes]
	}
	for len(frames) < nframes {
		frames = append(frames, frames[len(frames)%benchFrames])
	}

	sweep := []int{1, 2, 4, 8, 16, 32, 64}
	if *flagViewers > 0 {
		sweep = []int{*flagViewers}
	}

	fmt.Printf("fan-out serving: %s @ %.2f, %d frames, GOP %d, shared WiFi egress, GOMAXPROCS=%d\n\n",
		benchVideo, benchScale, len(frames), benchOptions(codec.IntraInterV1).GOP, runtime.GOMAXPROCS(0))
	fmt.Printf("%8s %10s %12s %10s %14s %8s %8s\n",
		"viewers", "enc-frames", "agg vf/s", "speedup", "enc-CPU/viewer", "drops", "resyncs")

	var base float64 // 1-viewer aggregate, when the sweep starts there
	var last fanoutPoint
	for _, n := range sweep {
		pt, err := runFanoutPoint(n, frames)
		if err != nil {
			return err
		}
		if pt.FramesEncoded != int64(len(frames)) {
			return fmt.Errorf("fanout: encoded %d frames for %d viewers, want %d (encode-once violated)",
				pt.FramesEncoded, n, len(frames))
		}
		if n == 1 {
			base = pt.AggVFPS
		}
		speedup := "-"
		if base > 0 {
			speedup = fmt.Sprintf("%.1fx", pt.AggVFPS/base)
		}
		fmt.Printf("%8d %10d %12.1f %10s %14s %8d %8d\n",
			n, pt.FramesEncoded, pt.AggVFPS, speedup,
			pt.EncCPUPerView.Round(time.Millisecond), pt.Dropped, pt.Resyncs)
		last = pt
	}

	if *flagFloor > 0 {
		if last.AggVFPS < *flagFloor {
			return fmt.Errorf("fanout: aggregate %.1f viewer-frames/s below floor %.1f",
				last.AggVFPS, *flagFloor)
		}
		fmt.Printf("\nfloor passed: %.1f viewer-frames/s >= %.1f\n", last.AggVFPS, *flagFloor)
	}
	return nil
}
