package morton

import "repro/internal/edgesim"

// Data-parallel LSD radix sort over Morton codes: the same histogram →
// exclusive-scan → scatter structure a GPU sort uses. Each pass splits the
// input into one chunk per worker; workers build local digit histograms in
// parallel, a serial scan turns them into disjoint scatter offsets (stable
// across chunks), and workers scatter in parallel into disjoint regions.
// The result is identical to RadixSort.
//
// The phases run on the persistent edgesim worker pool (channel wake, not
// goroutine spawn — this sort used to spawn 16×workers goroutines per
// frame), and every buffer lives in a reusable SortScratch so steady-state
// sorting allocates nothing.

// SortScratch holds the reusable buffers of the parallel radix sort. The
// zero value is ready to use; buffers grow to the largest frame sorted and
// are reused across frames.
type SortScratch struct {
	buf     []Keyed
	hist    [][256]int
	offsets [][256]int
}

func (s *SortScratch) ensure(n, nw int) {
	if cap(s.buf) < n {
		s.buf = make([]Keyed, n)
	}
	s.buf = s.buf[:n]
	if len(s.hist) < nw {
		s.hist = make([][256]int, nw)
		s.offsets = make([][256]int, nw)
	}
}

// Sort sorts ks by Morton code on the pool's workers, reusing the scratch
// buffers. workers caps the chunk count (≤ pool workers).
func (s *SortScratch) Sort(pool *edgesim.Pool, ks []Keyed, workers int) {
	if len(ks) < 2 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > pool.Workers() {
		workers = pool.Workers()
	}
	if workers > len(ks) {
		workers = len(ks)
	}
	// chunk mirrors the pool's own range decomposition, so lo/chunk is the
	// chunk ordinal a body invocation owns.
	chunk := (len(ks) + workers - 1) / workers
	nw := (len(ks) + chunk - 1) / chunk
	s.ensure(len(ks), nw)
	src, dst := ks, s.buf

	for shift := uint(0); shift < 64; shift += 8 {
		// Phase 1: local histograms (parallel; one chunk per worker index).
		hist := s.hist
		pool.Ranges(workers, len(src), func(lo, hi int) {
			h := &hist[lo/chunk]
			*h = [256]int{}
			for _, k := range src[lo:hi] {
				h[uint8(k.Code>>shift)]++
			}
		})

		// Phase 2: exclusive scan over (digit, chunk) — serial, 256*nw steps.
		// offset[w][d] = items with smaller digit anywhere, plus items with
		// digit d in earlier chunks (stability).
		pos := 0
		offsets := s.offsets
		for d := 0; d < 256; d++ {
			for w := 0; w < nw; w++ {
				offsets[w][d] = pos
				pos += hist[w][d]
			}
		}

		// Phase 3: scatter (parallel; write regions are disjoint by
		// construction of the offsets).
		pool.Ranges(workers, len(src), func(lo, hi int) {
			off := offsets[lo/chunk]
			for _, k := range src[lo:hi] {
				d := uint8(k.Code >> shift)
				dst[off[d]] = k
				off[d]++
			}
		})
		src, dst = dst, src
	}
	// 8 passes (even): src is ks again.
	if &src[0] != &ks[0] {
		copy(ks, src)
	}
}

// ParallelRadixSort sorts keyed voxels by Morton code with fresh scratch on
// the shared worker pool. Hot paths should hold a SortScratch and call its
// Sort method instead.
func ParallelRadixSort(ks []Keyed, workers int) {
	var s SortScratch
	s.Sort(edgesim.DefaultPool(), ks, workers)
}
