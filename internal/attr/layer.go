package attr

import "sort"

// SegmentBounds splits n points into at most segments equal blocks and
// returns the block boundary offsets (len = blocks+1, first 0, last n).
// Blocks are contiguous runs in Morton order — the "macro blocks" of
// Sec. IV-C. When n < segments every block holds one point.
func SegmentBounds(n, segments int) []int {
	if n <= 0 {
		return []int{0}
	}
	if segments < 1 {
		segments = 1
	}
	if segments > n {
		segments = n
	}
	bounds := make([]int, segments+1)
	for i := 0; i <= segments; i++ {
		bounds[i] = i * n / segments
	}
	return bounds
}

// medianOf returns the lower median of vs (vs is not modified).
func medianOf(vs []int32, scratch []int32) int32 {
	scratch = scratch[:0]
	scratch = append(scratch, vs...)
	sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
	return scratch[(len(scratch)-1)/2]
}

// layerData is one encoded Base+Deltas layer for a single channel.
type layerData struct {
	bases []int32 // one per segment (the "Mid" values)
	qd    []int32 // one quantized delta per point
}

// encodeLayer computes Base+Deltas over values with the given segmentation
// and quantization step: base = median(segment), qd = round((v-base)/q).
// Residuals are quantized symmetrically (round half away from zero).
func encodeLayer(values []int32, bounds []int, q int32) layerData {
	nSeg := len(bounds) - 1
	out := layerData{bases: make([]int32, nSeg), qd: make([]int32, len(values))}
	var scratch []int32
	for s := 0; s < nSeg; s++ {
		lo, hi := bounds[s], bounds[s+1]
		if lo == hi {
			continue
		}
		base := medianOf(values[lo:hi], scratch)
		out.bases[s] = base
		for i := lo; i < hi; i++ {
			out.qd[i] = quantize(values[i]-base, q)
		}
	}
	return out
}

// encodeLayerRange is the per-segment body of encodeLayer, exported to the
// device kernels so segments can be processed in parallel.
func encodeLayerRange(values []int32, bounds []int, q int32, out *layerData, segLo, segHi int) {
	var scratch []int32
	for s := segLo; s < segHi; s++ {
		lo, hi := bounds[s], bounds[s+1]
		if lo == hi {
			continue
		}
		base := medianOf(values[lo:hi], scratch)
		out.bases[s] = base
		for i := lo; i < hi; i++ {
			out.qd[i] = quantize(values[i]-base, q)
		}
	}
}

// decodeLayer reconstructs values from a layer: v = base + qd*q.
func decodeLayer(l layerData, bounds []int, q int32) []int32 {
	out := make([]int32, len(l.qd))
	decodeLayerRange(l, bounds, q, out, 0, len(bounds)-1)
	return out
}

// decodeLayerRange is the per-segment decode body for parallel kernels.
func decodeLayerRange(l layerData, bounds []int, q int32, out []int32, segLo, segHi int) {
	for s := segLo; s < segHi; s++ {
		lo, hi := bounds[s], bounds[s+1]
		for i := lo; i < hi; i++ {
			out[i] = l.bases[s] + l.qd[i]*q
		}
	}
}

// quantize rounds v/q half away from zero.
func quantize(v, q int32) int32 {
	if q <= 1 {
		return v
	}
	if v >= 0 {
		return (v + q/2) / q
	}
	return -((-v + q/2) / q)
}
