package predlift

import (
	"errors"
	"math"

	"repro/internal/edgesim"
	"repro/internal/entropy"
	"repro/internal/geom"
	"repro/internal/morton"
)

// Lifting Transform — the third G-PCC attribute method the paper lists
// (Sec. II-B). Like the Predicting Transform it is built on hierarchical
// nearest-neighbour interpolation, but it adds the UPDATE step of a lifting
// scheme: the signal is split level-by-level into a coarse half and a
// detail half (even/odd positions in Morton order), details are predicted
// from the coarse half and their residuals coded, and the residuals are
// fed back to smooth the coarse half before the next level. The update
// step is what makes the multi-resolution decomposition energy-compacting;
// it also makes the walk even more serial than plain prediction — another
// data point for the paper's under-parallelism diagnosis.

// costLift is the serial CPU cost per point-level visit.
var costLift = edgesim.Cost{OpsPerItem: 1100, BytesPerItem: 48}

// LiftParams configures the lifting codec.
type LiftParams struct {
	// Neighbors used for prediction at each level (G-PCC: 3).
	Neighbors int
	// QStep quantizes detail coefficients.
	QStep int
	// MinCoarse stops the recursion when a level has this few points.
	MinCoarse int
}

// DefaultLiftParams mirrors a common G-PCC configuration.
func DefaultLiftParams() LiftParams { return LiftParams{Neighbors: 3, QStep: 1, MinCoarse: 8} }

func (p LiftParams) normalized() LiftParams {
	if p.Neighbors < 1 {
		p.Neighbors = 1
	}
	if p.QStep < 1 {
		p.QStep = 1
	}
	if p.MinCoarse < 2 {
		p.MinCoarse = 2
	}
	return p
}

// levelSplit returns the index lists of one even/odd split of `idx`
// (indices into the sorted frame): evens keep Morton parity-0 positions.
func levelSplit(idx []int32) (even, odd []int32) {
	even = make([]int32, 0, (len(idx)+1)/2)
	odd = make([]int32, 0, len(idx)/2)
	for i, id := range idx {
		if i%2 == 0 {
			even = append(even, id)
		} else {
			odd = append(odd, id)
		}
	}
	return even, odd
}

// neighborsOf finds the k nearest (by position) members of `coarse` around
// sorted index position; both sides derive it from geometry alone.
func neighborsOf(sorted []morton.Keyed, coarse []int32, target int32, k int) []int32 {
	// coarse is in ascending sorted-index order; binary search the
	// insertion point and scan outwards.
	lo, hi := 0, len(coarse)
	for lo < hi {
		mid := (lo + hi) / 2
		if coarse[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	type cand struct {
		id int32
		d2 float64
	}
	best := make([]cand, 0, k)
	push := func(id int32) {
		d2 := sorted[target].Voxel.Dist2(sorted[id].Voxel)
		c := cand{id, d2}
		inserted := false
		for j := range best {
			if c.d2 < best[j].d2 {
				best = append(best[:j], append([]cand{c}, best[j:]...)...)
				inserted = true
				break
			}
		}
		if !inserted && len(best) < k {
			best = append(best, c)
		}
		if len(best) > k {
			best = best[:k]
		}
	}
	// Scan a bounded neighbourhood on both sides (Morton locality makes
	// near-index entries near in space).
	const scan = 8
	for off := 1; off <= scan; off++ {
		if i := lo - off; i >= 0 {
			push(coarse[i])
		}
		if i := lo + off - 1; i < len(coarse) {
			push(coarse[i])
		}
	}
	out := make([]int32, len(best))
	for i, c := range best {
		out[i] = c.id
	}
	return out
}

// liftPredict computes the inverse-distance-weighted prediction of target
// from vals at the neighbour indices.
func liftPredict(sorted []morton.Keyed, vals [][3]float64, nbrs []int32, target int32) ([3]float64, []float64) {
	if len(nbrs) == 0 {
		return [3]float64{128, 128, 128}, nil
	}
	weights := make([]float64, len(nbrs))
	var wsum float64
	var acc [3]float64
	for i, id := range nbrs {
		w := 1 / (1 + math.Sqrt(sorted[target].Voxel.Dist2(sorted[id].Voxel)))
		weights[i] = w
		wsum += w
		for ch := 0; ch < 3; ch++ {
			acc[ch] += w * vals[id][ch]
		}
	}
	for ch := 0; ch < 3; ch++ {
		acc[ch] /= wsum
	}
	for i := range weights {
		weights[i] /= wsum
	}
	return acc, weights
}

// ErrLiftMismatch reports geometry/stream disagreement.
var ErrLiftMismatch = errors.New("predlift: lifting stream does not match geometry")

// EncodeLifting compresses the attribute column of a Morton-sorted frame
// with the lifting transform.
func EncodeLifting(dev *edgesim.Device, sorted []morton.Keyed, p LiftParams) ([]byte, error) {
	p = p.normalized()
	enc := entropy.NewEncoder()
	nm := entropy.NewUintModel()
	nm.Encode(enc, uint64(len(sorted)))
	res := entropy.NewIntModel()

	vals := make([][3]float64, len(sorted))
	for i := range sorted {
		c := sorted[i].Voxel.C
		vals[i] = [3]float64{float64(c.R), float64(c.G), float64(c.B)}
	}
	all := make([]int32, len(sorted))
	for i := range all {
		all[i] = int32(i)
	}

	dev.CPUSerial("LiftTransform", len(sorted), costLift, func() {
		encodeLiftLevel(enc, res, sorted, vals, all, p)
	})
	return enc.Bytes(), nil
}

// encodeLiftLevel recursively codes one split level.
func encodeLiftLevel(enc *entropy.Encoder, res *entropy.IntModel, sorted []morton.Keyed, vals [][3]float64, idx []int32, p LiftParams) {
	if len(idx) <= p.MinCoarse {
		// Base level: code values directly (quantized), as one batched slab.
		q := float64(p.QStep)
		base := make([]int64, 0, 3*len(idx))
		for _, id := range idx {
			for ch := 0; ch < 3; ch++ {
				qv := int64(math.Round(vals[id][ch] / q))
				base = append(base, qv)
				vals[id][ch] = float64(qv) * q // track reconstruction
			}
		}
		res.EncodeSlice(enc, base)
		return
	}
	even, odd := levelSplit(idx)

	// PREDICT: details of odd points vs prediction from even points, and
	// UPDATE bookkeeping for the feedback pass.
	type detail struct {
		id      int32
		nbrs    []int32
		weights []float64
		qd      [3]int64
	}
	details := make([]detail, len(odd))
	q := float64(p.QStep)
	for i, id := range odd {
		nbrs := neighborsOf(sorted, even, id, p.Neighbors)
		pred, weights := liftPredict(sorted, vals, nbrs, id)
		var qd [3]int64
		for ch := 0; ch < 3; ch++ {
			d := vals[id][ch] - pred[ch]
			qd[ch] = int64(math.Round(d / q))
			// Reconstruction the decoder will compute.
			vals[id][ch] = pred[ch] + float64(qd[ch])*q
		}
		details[i] = detail{id: id, nbrs: nbrs, weights: weights, qd: qd}
	}

	// UPDATE: feed quantized details back into the even (coarse) values so
	// the next level codes a smoothed signal. Uses RECONSTRUCTED details,
	// so the decoder can invert exactly.
	for _, d := range details {
		for k, nb := range d.nbrs {
			for ch := 0; ch < 3; ch++ {
				vals[nb][ch] += 0.5 * d.weights[k] * float64(d.qd[ch]) * q
			}
		}
	}

	// Emit details AFTER the recursion so the decoder, which must undo the
	// update before predicting, reads coarse-first.
	encodeLiftLevel(enc, res, sorted, vals, even, p)
	level := make([]int64, 0, 3*len(details))
	for _, d := range details {
		level = append(level, d.qd[0], d.qd[1], d.qd[2])
	}
	res.EncodeSlice(enc, level)
}

// DecodeLifting inverts EncodeLifting given the decoded geometry.
func DecodeLifting(dev *edgesim.Device, data []byte, sorted []morton.Keyed, p LiftParams) ([]geom.Color, error) {
	p = p.normalized()
	dec, err := entropy.NewDecoder(data)
	if err != nil {
		return nil, err
	}
	nm := entropy.NewUintModel()
	if nm.Decode(dec) != uint64(len(sorted)) {
		return nil, ErrLiftMismatch
	}
	res := entropy.NewIntModel()
	vals := make([][3]float64, len(sorted))
	all := make([]int32, len(sorted))
	for i := range all {
		all[i] = int32(i)
	}
	dev.CPUSerial("LiftInverse", len(sorted), costLift, func() {
		decodeLiftLevel(dec, res, sorted, vals, all, p)
	})
	if err := dec.Err(); err != nil {
		return nil, err
	}
	out := make([]geom.Color, len(sorted))
	for i, v := range vals {
		out[i] = geom.Color{R: clampF(v[0]), G: clampF(v[1]), B: clampF(v[2])}
	}
	return out, nil
}

func decodeLiftLevel(dec *entropy.Decoder, res *entropy.IntModel, sorted []morton.Keyed, vals [][3]float64, idx []int32, p LiftParams) {
	if len(idx) <= p.MinCoarse {
		q := float64(p.QStep)
		base := make([]int64, 3*len(idx))
		res.DecodeSlice(dec, base)
		for i, id := range idx {
			for ch := 0; ch < 3; ch++ {
				vals[id][ch] = float64(base[3*i+ch]) * q
			}
		}
		return
	}
	even, odd := levelSplit(idx)
	// Coarse first (matches encoder's emit order).
	decodeLiftLevel(dec, res, sorted, vals, even, p)

	// Read details, compute neighbour sets (geometry-only, identical to the
	// encoder's), UNDO the update, then predict + add details.
	type detail struct {
		id      int32
		nbrs    []int32
		weights []float64
		qd      [3]int64
	}
	details := make([]detail, len(odd))
	q := float64(p.QStep)
	// This level's detail coefficients sit consecutively in the stream:
	// decode them as one batched slab before the geometry work.
	level := make([]int64, 3*len(odd))
	res.DecodeSlice(dec, level)
	for i, id := range odd {
		nbrs := neighborsOf(sorted, even, id, p.Neighbors)
		// Weights depend only on geometry.
		_, weights := liftPredict(sorted, vals, nbrs, id)
		qd := [3]int64{level[3*i], level[3*i+1], level[3*i+2]}
		details[i] = detail{id: id, nbrs: nbrs, weights: weights, qd: qd}
	}
	// Undo update (reverse order is unnecessary — updates are additive).
	for _, d := range details {
		for k, nb := range d.nbrs {
			for ch := 0; ch < 3; ch++ {
				vals[nb][ch] -= 0.5 * d.weights[k] * float64(d.qd[ch]) * q
			}
		}
	}
	// Predict from the restored coarse values and add details.
	for _, d := range details {
		pred, _ := liftPredict(sorted, vals, d.nbrs, d.id)
		for ch := 0; ch < 3; ch++ {
			vals[d.id][ch] = pred[ch] + float64(d.qd[ch])*q
		}
	}
}

func clampF(v float64) uint8 {
	r := math.Round(v)
	if r < 0 {
		return 0
	}
	if r > 255 {
		return 255
	}
	return uint8(r)
}
