package codec

import (
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/edgesim"
	"repro/internal/geom"
)

// steadyFrames returns a deterministic 60-frame GOP session (redandblack at
// 5% scale, frames cycling through the generator's articulation loop).
func steadyFrames(tb testing.TB, n int) []*geom.VoxelCloud {
	tb.Helper()
	spec, err := dataset.SpecByName("redandblack")
	if err != nil {
		tb.Fatal(err)
	}
	g := dataset.NewGenerator(spec, 0.05)
	frames := make([]*geom.VoxelCloud, n)
	for i := range frames {
		if frames[i], err = g.Frame(i % spec.Frames); err != nil {
			tb.Fatal(err)
		}
	}
	return frames
}

func steadyOpts(d Design) Options {
	o := OptionsFor(d)
	o.IntraAttr.Segments = 1500
	o.Inter.Segments = 2500
	return o
}

// BenchmarkEncodeSteadyState measures the real-execution encode hot path
// over a 60-frame GOP session: the workload every scaling PR (session
// multiplexing, FEC) rides on. Run with -benchmem; allocs/op divided by 60
// is allocs/frame.
func BenchmarkEncodeSteadyState(b *testing.B) {
	frames := steadyFrames(b, 60)
	for _, d := range []Design{IntraOnly, IntraInterV1} {
		b.Run(d.String(), func(b *testing.B) {
			enc := NewEncoder(edgesim.NewXavier(edgesim.Mode15W), steadyOpts(d))
			// Warm up one full session so arena buffers reach steady state.
			for _, f := range frames {
				if _, _, err := enc.EncodeFrame(f); err != nil {
					b.Fatal(err)
				}
			}
			var pts int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range frames {
					_, st, err := enc.EncodeFrame(f)
					if err != nil {
						b.Fatal(err)
					}
					pts += int64(st.Points)
				}
			}
			b.StopTimer()
			sec := b.Elapsed().Seconds()
			b.ReportMetric(float64(60*b.N)/sec, "frames/s")
			b.ReportMetric(float64(pts)/sec/1e6, "Mpts/s")
		})
	}
}

// TestSteadyStateAllocsPerFrame is the allocation-regression gate: after a
// one-session warmup, steady-state encoding must stay under a hard
// allocs/frame cap. The caps are set ~1.8x above the post-arena
// measurements (IntraOnly ~171, IntraInterV1 ~158 allocs/frame at
// 1500/2500 segments after the pooled byte-codec and Append* entropy
// call-site conversions — mostly the escaping frame payloads) so GC and
// pool noise does not flake the gate, while the pre-arena figures
// (~45k/~36k allocs/frame) fail it by two orders of magnitude.
func TestSteadyStateAllocsPerFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs full frames")
	}
	caps := map[Design]float64{
		IntraOnly:    300,
		IntraInterV1: 300,
	}
	frames := steadyFrames(t, 60)
	for d, cap := range caps {
		t.Run(d.String(), func(t *testing.T) {
			enc := NewEncoder(edgesim.NewXavier(edgesim.Mode15W), steadyOpts(d))
			for _, f := range frames { // warmup session
				if _, _, err := enc.EncodeFrame(f); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(1, func() {
				for _, f := range frames {
					if _, _, err := enc.EncodeFrame(f); err != nil {
						t.Fatal(err)
					}
				}
			})
			perFrame := allocs / 60
			t.Logf("%s: %.1f allocs/frame (cap %.0f)", d, perFrame, cap)
			if perFrame > cap {
				t.Errorf("%s steady-state allocations regressed: %.1f allocs/frame > cap %.0f", d, perFrame, cap)
			}
		})
	}
	runtime.KeepAlive(frames)
}
