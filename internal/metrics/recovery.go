package metrics

// Loss-recovery instrumentation for the lossy-transport receiver
// (pcc/stream.Receiver): packet-level arrival/corruption counters and
// frame-level recovery outcomes. Everything is atomic so a live session's
// counters can be scraped while the transport goroutine is running.

import "sync/atomic"

// RecoveryCounters tracks a receiver's packet- and frame-level recovery
// statistics. The zero value is ready to use. All methods are safe for
// concurrent use.
type RecoveryCounters struct {
	// Packet level.
	packetsReceived  atomic.Int64
	packetsCorrupt   atomic.Int64
	packetsDuplicate atomic.Int64
	packetsLost      atomic.Int64
	retransmitsRecv  atomic.Int64
	cachedRecv       atomic.Int64
	packetsRecovered atomic.Int64
	// Recovery protocol.
	nacksSent       atomic.Int64
	nackSeqs        atomic.Int64
	nackGiveUps     atomic.Int64
	refreshRequests atomic.Int64
	// Frame outcomes. Decoded frames are byte-correct; concealed frames
	// were replaced by the last good frame; skipped frames were emitted
	// with no content (lost, or undecodable without their reference).
	framesDecoded   atomic.Int64
	framesConcealed atomic.Int64
	framesSkipped   atomic.Int64
}

func (c *RecoveryCounters) PacketReceived()     { c.packetsReceived.Add(1) }
func (c *RecoveryCounters) PacketCorrupt()      { c.packetsCorrupt.Add(1) }
func (c *RecoveryCounters) PacketDuplicate()    { c.packetsDuplicate.Add(1) }
func (c *RecoveryCounters) RetransmitReceived() { c.retransmitsRecv.Add(1) }

// PacketLost records a sequence number observed lost on its first
// transmission: the NACK timeout expired without it arriving (reordered
// packets that heal before the timeout are not counted). This is the
// receiver-side loss signal the congestion feedback reports carry.
func (c *RecoveryCounters) PacketLost() { c.packetsLost.Add(1) }

// PacketRecovered records a sequence number healed AFTER it was already
// counted lost by PacketLost — a parity repair or a late retransmit
// landing after the first NACK timeout. Feedback windows net these
// against PacketsLost so the congestion controller does not keep seeing
// losses that were in fact recovered.
func (c *RecoveryCounters) PacketRecovered() { c.packetsRecovered.Add(1) }

// CachedReceived records a packet replayed from a sender-side keyframe
// cache (a late join served from the last encoded I-frame).
func (c *RecoveryCounters) CachedReceived() { c.cachedRecv.Add(1) }
func (c *RecoveryCounters) NACKSent(seqs int) {
	c.nacksSent.Add(1)
	c.nackSeqs.Add(int64(seqs))
}
func (c *RecoveryCounters) NACKGiveUp()     { c.nackGiveUps.Add(1) }
func (c *RecoveryCounters) RefreshRequest() { c.refreshRequests.Add(1) }
func (c *RecoveryCounters) FrameDecoded()   { c.framesDecoded.Add(1) }
func (c *RecoveryCounters) FrameConcealed() { c.framesConcealed.Add(1) }
func (c *RecoveryCounters) FrameSkipped()   { c.framesSkipped.Add(1) }

// RecoverySnapshot is a point-in-time copy of a RecoveryCounters.
type RecoverySnapshot struct {
	PacketsReceived     int64
	PacketsCorrupt      int64
	PacketsDuplicate    int64
	PacketsLost         int64
	RetransmitsReceived int64
	CachedReceived      int64
	PacketsRecovered    int64
	NACKsSent           int64
	NACKSeqs            int64
	NACKGiveUps         int64
	RefreshRequests     int64
	FramesDecoded       int64
	FramesConcealed     int64
	FramesSkipped       int64
	// FEC carries the receiver's parity counters when forward error
	// correction is in play (the Receiver merges its FECCounters in;
	// Snapshot alone leaves it zero).
	FEC FECSnapshot
}

// Frames returns the total number of frame outcomes recorded.
func (s RecoverySnapshot) Frames() int64 {
	return s.FramesDecoded + s.FramesConcealed + s.FramesSkipped
}

// DecodedRatio returns FramesDecoded / total frames (1 when no frames).
func (s RecoverySnapshot) DecodedRatio() float64 {
	if n := s.Frames(); n > 0 {
		return float64(s.FramesDecoded) / float64(n)
	}
	return 1
}

// Snapshot copies the counters. Taken while the transport is live, fields
// are individually — not mutually — consistent.
func (c *RecoveryCounters) Snapshot() RecoverySnapshot {
	return RecoverySnapshot{
		PacketsReceived:     c.packetsReceived.Load(),
		PacketsCorrupt:      c.packetsCorrupt.Load(),
		PacketsDuplicate:    c.packetsDuplicate.Load(),
		PacketsLost:         c.packetsLost.Load(),
		RetransmitsReceived: c.retransmitsRecv.Load(),
		CachedReceived:      c.cachedRecv.Load(),
		PacketsRecovered:    c.packetsRecovered.Load(),
		NACKsSent:           c.nacksSent.Load(),
		NACKSeqs:            c.nackSeqs.Load(),
		NACKGiveUps:         c.nackGiveUps.Load(),
		RefreshRequests:     c.refreshRequests.Load(),
		FramesDecoded:       c.framesDecoded.Load(),
		FramesConcealed:     c.framesConcealed.Load(),
		FramesSkipped:       c.framesSkipped.Load(),
	}
}
