package codec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/edgesim"
	"repro/internal/entropy"
	"repro/internal/geom"
	"repro/internal/mbtree"
	"repro/internal/morton"
	"repro/internal/octree"
	"repro/internal/raht"
)

// Calibrated serial CPU costs for the baseline pipelines; they land the
// reproduced stage latencies at the paper's Fig. 2 numbers for ~0.8 M-point
// frames (octree construct+serialize ~1.5 s, entropy ~0.15 s).
var (
	costOctreeInsert   = edgesim.Cost{OpsPerItem: 197, BytesPerItem: 12} // per point-level step
	costOctreeSerial   = edgesim.Cost{OpsPerItem: 100, BytesPerItem: 16} // per node
	costOctreeDeserial = edgesim.Cost{OpsPerItem: 120, BytesPerItem: 16} // per stream byte
	costEntropyByte    = edgesim.Cost{OpsPerItem: 150, BytesPerItem: 2}  // per payload byte
	costSortPoint      = edgesim.Cost{OpsPerItem: 45, BytesPerItem: 16}  // per point (comparison sort)
)

// sortedKeyed Morton-sorts and deduplicates a frame on the CPU (the
// baselines' internal point ordering), accounting the work serially.
func sortedKeyed(dev *edgesim.Device, vc *geom.VoxelCloud, kernel string) []morton.Keyed {
	var keyed []morton.Keyed
	dev.CPUSerial(kernel, vc.Len(), costSortPoint, func() {
		keyed = morton.EncodeCloud(vc)
		morton.Sort(keyed)
		keyed = morton.Dedup(keyed)
	})
	return keyed
}

// encodeGeometrySequential runs the baseline geometry pipeline: sequential
// octree construction, DFS serialization, entropy coding.
func (e *Encoder) encodeGeometrySequential(vc *geom.VoxelCloud) ([]byte, error) {
	var stream []byte
	var tr *octree.Tree
	var err error
	e.dev.CPUSerial("OctreeConstruct", vc.Len()*int(vc.Depth), costOctreeInsert, func() {
		tr, err = octree.Build(vc)
	})
	if err != nil {
		return nil, err
	}
	e.dev.CPUSerial("OctreeSerialize", tr.NumNodes, costOctreeSerial, func() {
		stream = tr.Serialize()
	})
	var packed []byte
	e.dev.CPUSerial("GeomEntropy", len(stream), costEntropyByte, func() {
		packed = entropy.CompressBytes(stream)
	})
	return packed, nil
}

// decodeGeometrySequential inverts encodeGeometrySequential, returning the
// voxels in Morton (DFS) order.
func (d *Decoder) decodeGeometrySequential(data []byte, depth uint) ([]geom.Voxel, error) {
	var occ []byte
	var err error
	d.dev.CPUSerial("GeomEntropyDecode", len(data), costEntropyByte, func() {
		occ, err = entropy.DecompressBytes(data)
	})
	if err != nil {
		return nil, err
	}
	var voxels []geom.Voxel
	d.dev.CPUSerial("OctreeDeserialize", len(occ), costOctreeDeserial, func() {
		voxels, err = octree.Deserialize(occ, depth)
	})
	if err != nil {
		return nil, err
	}
	return voxels, nil
}

// --- TMC13 ---

func (e *Encoder) encodeTMC13(vc *geom.VoxelCloud) (*EncodedFrame, edgesim.Snapshot, edgesim.Snapshot, error) {
	var geomBytes []byte
	var err error
	s0 := e.dev.Snapshot()
	e.dev.Stage("Geometry", func() {
		geomBytes, err = e.encodeGeometrySequential(vc)
	})
	geomDelta := e.dev.Since(s0)
	if err != nil {
		return nil, edgesim.Snapshot{}, edgesim.Snapshot{}, err
	}

	s1 := e.dev.Snapshot()
	var attrBytes []byte
	var keyed []morton.Keyed
	e.dev.Stage("Attribute", func() {
		keyed = sortedKeyed(e.dev, vc, "AttrSort")
		codes := morton.Codes(keyed)
		colors := make([]geom.Color, len(keyed))
		for i, k := range keyed {
			colors[i] = k.Voxel.C
		}
		cc := raht.Codec{QStep: e.opts.RAHTQStep}
		attrBytes, err = cc.Encode(e.dev, codes, colors, vc.Depth)
	})
	attrDelta := e.dev.Since(s1)
	if err != nil {
		return nil, edgesim.Snapshot{}, edgesim.Snapshot{}, err
	}
	return &EncodedFrame{
		Type:      IFrame,
		Depth:     uint8(vc.Depth),
		NumPoints: uint32(len(keyed)),
		Geometry:  geomBytes,
		Attr:      attrBytes,
	}, geomDelta, attrDelta, nil
}

func (d *Decoder) decodeTMC13(f *EncodedFrame) (*geom.VoxelCloud, error) {
	voxels, err := d.decodeGeometrySequential(f.Geometry, uint(f.Depth))
	if err != nil {
		return nil, err
	}
	if len(voxels) != int(f.NumPoints) {
		return nil, fmt.Errorf("codec: geometry decoded %d points, header says %d", len(voxels), f.NumPoints)
	}
	codes := make([]morton.Code, len(voxels))
	if len(voxels) > 0 {
		morton.EncodeVoxels(codes, voxels)
	}
	cc := raht.Codec{QStep: d.opts.RAHTQStep}
	colors, err := cc.Decode(d.dev, f.Attr, codes, uint(f.Depth))
	if err != nil {
		return nil, err
	}
	for i := range voxels {
		voxels[i].C = colors[i]
	}
	return &geom.VoxelCloud{Depth: uint(f.Depth), Voxels: voxels}, nil
}

// --- CWIPC ---

// cwipcBlockShift selects the macro block scale (16^3-voxel blocks).
const cwipcBlockShift = 4

func (e *Encoder) encodeCWIPC(vc *geom.VoxelCloud, isP bool) (*EncodedFrame, edgesim.Snapshot, edgesim.Snapshot, error) {
	var geomBytes []byte
	var err error
	s0 := e.dev.Snapshot()
	e.dev.Stage("Geometry", func() {
		geomBytes, err = e.encodeGeometrySequential(vc)
	})
	geomDelta := e.dev.Since(s0)
	if err != nil {
		return nil, edgesim.Snapshot{}, edgesim.Snapshot{}, err
	}

	s1 := e.dev.Snapshot()
	var attrBytes []byte
	var sorted []geom.Voxel
	e.dev.Stage("Attribute", func() {
		keyed := sortedKeyed(e.dev, vc, "AttrSort")
		sorted = morton.Voxels(keyed)
		if isP {
			attrBytes, err = e.encodeCWIPCPredicted(sorted, vc.Depth)
		} else {
			attrBytes, err = e.encodeCWIPCRaw(sorted)
		}
	})
	attrDelta := e.dev.Since(s1)
	if err != nil {
		return nil, edgesim.Snapshot{}, edgesim.Snapshot{}, err
	}

	ftype := IFrame
	if isP {
		ftype = PFrame
	} else {
		e.setRef(sorted)
	}
	return &EncodedFrame{
		Type:      ftype,
		Depth:     uint8(vc.Depth),
		NumPoints: uint32(len(sorted)),
		Geometry:  geomBytes,
		Attr:      attrBytes,
	}, geomDelta, attrDelta, nil
}

// encodeCWIPCRaw entropy-codes the raw attribute bytes (the paper notes
// CWIPC "directly applied entropy encoding to the raw attributes").
func (e *Encoder) encodeCWIPCRaw(sorted []geom.Voxel) ([]byte, error) {
	raw := make([]byte, 0, 3*len(sorted))
	for _, v := range sorted {
		raw = append(raw, v.C.R, v.C.G, v.C.B)
	}
	out := make([]byte, 1, 64+len(raw)/2)
	e.dev.CPUSerial("RawAttrEntropy", len(raw), costEntropyByte, func() {
		out = entropy.AppendCompressBytes(out, raw)
	})
	return out, nil
}

// encodeCWIPCPredicted runs macro-block motion estimation against the
// reference frame: matched blocks store a reference-block pointer, the rest
// ship raw (entropy-coded) colours.
func (e *Encoder) encodeCWIPCPredicted(sorted []geom.Voxel, depth uint) ([]byte, error) {
	iCloud := &geom.VoxelCloud{Depth: depth, Voxels: e.ref()}
	pCloud := &geom.VoxelCloud{Depth: depth, Voxels: sorted}
	iTree := mbtree.Build(e.dev, iCloud, cwipcBlockShift)
	pTree := mbtree.Build(e.dev, pCloud, cwipcBlockShift)
	results := mbtree.MatchAll(e.dev, iTree, pTree, mbtree.DefaultMatchParams())

	var head bytes.Buffer
	putUvarint(&head, uint64(len(pTree.Keys)))
	var raw []byte
	for bi, key := range pTree.Keys {
		r := results[bi]
		if r.Found {
			head.WriteByte(1)
			putUvarint(&head, uint64(r.RefKey.X))
			putUvarint(&head, uint64(r.RefKey.Y))
			putUvarint(&head, uint64(r.RefKey.Z))
		} else {
			head.WriteByte(0)
			for _, idx := range pTree.Blocks[key].Indices {
				c := sorted[idx].C
				raw = append(raw, c.R, c.G, c.B)
			}
		}
	}
	var packed []byte
	e.dev.CPUSerial("RawAttrEntropy", len(raw), costEntropyByte, func() {
		packed = entropy.AppendCompressBytes(packed, raw)
	})
	matched := 0
	for _, r := range results {
		if r.Found {
			matched++
		}
	}
	e.lastInterStats.Blocks = len(results)
	e.lastInterStats.DirectReuse = matched
	e.lastInterStats.DeltaBlocks = len(results) - matched

	out := []byte{1}
	out = append(out, head.Bytes()...)
	return append(out, packed...), nil
}

func (d *Decoder) decodeCWIPC(f *EncodedFrame) (*geom.VoxelCloud, error) {
	voxels, err := d.decodeGeometrySequential(f.Geometry, uint(f.Depth))
	if err != nil {
		return nil, err
	}
	if len(voxels) != int(f.NumPoints) {
		return nil, fmt.Errorf("codec: geometry decoded %d points, header says %d", len(voxels), f.NumPoints)
	}
	if len(f.Attr) == 0 {
		return nil, ErrBadContainer
	}
	switch f.Attr[0] {
	case 0: // raw I-frame
		var raw []byte
		d.dev.CPUSerial("RawAttrEntropyDecode", len(f.Attr), costEntropyByte, func() {
			raw, err = entropy.DecompressBytes(f.Attr[1:])
		})
		if err != nil {
			return nil, err
		}
		if len(raw) != 3*len(voxels) {
			return nil, fmt.Errorf("codec: raw attrs %d bytes for %d points", len(raw), len(voxels))
		}
		for i := range voxels {
			voxels[i].C = geom.Color{R: raw[3*i], G: raw[3*i+1], B: raw[3*i+2]}
		}
		d.refSorted = voxels
	case 1: // predicted frame
		if d.refSorted == nil {
			return nil, ErrMissingReference
		}
		if err := d.decodeCWIPCPredicted(f.Attr[1:], voxels, uint(f.Depth)); err != nil {
			return nil, err
		}
	default:
		return nil, ErrBadContainer
	}
	return &geom.VoxelCloud{Depth: uint(f.Depth), Voxels: voxels}, nil
}

func (d *Decoder) decodeCWIPCPredicted(data []byte, voxels []geom.Voxel, depth uint) error {
	// Rebuild the P macro-block partition from the decoded geometry; it is
	// a pure function of the (sorted) positions.
	pCloud := &geom.VoxelCloud{Depth: depth, Voxels: voxels}
	pTree := mbtree.Build(d.dev, pCloud, cwipcBlockShift)
	iCloud := &geom.VoxelCloud{Depth: depth, Voxels: d.refSorted}
	iTree := mbtree.Build(d.dev, iCloud, cwipcBlockShift)

	r := bytes.NewReader(data)
	nBlocks, err := binary.ReadUvarint(r)
	if err != nil || int(nBlocks) != len(pTree.Keys) {
		return fmt.Errorf("codec: block count mismatch (%d vs %d)", nBlocks, len(pTree.Keys))
	}
	type pending struct {
		key mbtree.BlockKey
		ref mbtree.BlockKey
		raw bool
	}
	plan := make([]pending, len(pTree.Keys))
	rawPoints := 0
	for bi, key := range pTree.Keys {
		flag, err := r.ReadByte()
		if err != nil {
			return ErrBadContainer
		}
		switch flag {
		case 1:
			x, err1 := binary.ReadUvarint(r)
			y, err2 := binary.ReadUvarint(r)
			z, err3 := binary.ReadUvarint(r)
			if err1 != nil || err2 != nil || err3 != nil {
				return ErrBadContainer
			}
			plan[bi] = pending{key: key, ref: mbtree.BlockKey{X: uint32(x), Y: uint32(y), Z: uint32(z)}}
		case 0:
			plan[bi] = pending{key: key, raw: true}
			rawPoints += len(pTree.Blocks[key].Indices)
		default:
			return ErrBadContainer
		}
	}
	rest, err := io.ReadAll(r)
	if err != nil {
		return ErrBadContainer
	}
	var raw []byte
	d.dev.CPUSerial("RawAttrEntropyDecode", len(rest), costEntropyByte, func() {
		raw, err = entropy.DecompressBytes(rest)
	})
	if err != nil {
		return err
	}
	if len(raw) != 3*rawPoints {
		return fmt.Errorf("codec: raw payload %d bytes for %d unmatched points", len(raw), rawPoints)
	}
	pos := 0
	for _, p := range plan {
		indices := pTree.Blocks[p.key].Indices
		if p.raw {
			for _, idx := range indices {
				voxels[idx].C = geom.Color{R: raw[pos], G: raw[pos+1], B: raw[pos+2]}
				pos += 3
			}
			continue
		}
		ib, ok := iTree.Blocks[p.ref]
		if !ok {
			return fmt.Errorf("codec: reference block %v missing", p.ref)
		}
		for i, idx := range indices {
			j := i * len(ib.Indices) / len(indices)
			voxels[idx].C = d.refSorted[ib.Indices[j]].C
		}
	}
	return nil
}

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}
